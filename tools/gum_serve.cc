// gum_serve — serve a stream of point queries against one loaded
// GraphContext (DESIGN.md §13).
//
// Builds the immutable context once (graph, partition, topology geometry,
// expand structures), then drains a query stream through batched
// bit-parallel multi-source waves: up to 64 same-kind BFS/SSSP sources per
// wave, one bit lane each (algos/multi_source.h). Per-query latency is
// simulated time from stream admission to the query's batch completion.
//
// Graph sources (pick one):
//   --graph=PATH                 text edge list ("src dst [weight]")
//   --gen=rmat|web|road|er       synthetic generator, with
//       --scale=N --edge-factor=F [--weighted] [--seed=S]      (rmat, web, er)
//       --rows=R --cols=C [--seed=S]                           (road)
//
// Query stream (pick one):
//   --sources=a,b,c              explicit source list (<= 64 per batch;
//                                longer streams split into batches)
//   --queries=N --query-seed=S   N random sources (default 64 / seed 1)
//
// Serving:
//   --algo=bfs|sssp              query kind (default bfs)
//   --batch-width=N              max queries per wave, 1..64 (default 64;
//                                1 = the sequential baseline)
//   --devices=N --partitioner=random|seg|metis
//   --host-threads=N --msg-shards=N --expand=scatter|spmv|auto
//   --contention=off|fair        interconnect contention model (default off)
//   --multipath=off|on           stripe bulk transfers across link-disjoint
//                                paths (fair contention only; per-query
//                                values never change)
//
// Fault compose (gum fault plane, DESIGN.md §11):
//   --fault-plan=SPEC --fault-seed=S
//   --fault-batch=K              run batch K under the fault plane (with
//                                --ckpt-every checkpoints); the device loss
//                                replays only that batch, all per-query
//                                results stay byte-identical
//   --ckpt-every=N
//
// Mutation plane (DESIGN.md §14) — streaming updates between query waves:
//   --mutations=SPEC             mutation plan (graph/mutation.h grammar:
//                                "ins:u-v@K[xW];del:u-v@K;delv:u@K" or
//                                "rand:EPOCHSxPER" / "rand-ins:EPOCHSxPER")
//   --mutation-seed=S            seed for rand streams (default 1)
//   --update-rate=R              serve R query batches, then apply the next
//                                mutation epoch at the barrier (default 1);
//                                apply/compaction charge lands on the
//                                stream clock, so later queries pay for it
//   --compact-every=N            fold the delta overlay back into a flat
//                                CSR every N epochs (0 = never)
//
// Output / observability:
//   --save-values=PREFIX         per-query "vertex value" files
//                                PREFIX.q<id>.txt
//   --report=PATH                schema-versioned serve report JSON
//   --metrics=PATH --trace=PATH  obs plane artifacts
//
// Soak benchmark (CI serve-smoke):
//   --bench-json=PATH            sweep batch width x host threads over the
//                                stream, writing Google-benchmark-shaped
//                                JSON: BM_Serve_batched/wW/tT vs
//                                BM_Serve_sequential/wW/tT (simulated
//                                makespan as real_time ns, plus qps and
//                                latency percentiles as extra fields)
//   --bench-widths=1,8,64 --bench-threads=1,4
//
// Example:
//   gum_serve --gen=rmat --scale=14 --queries=64 --batch-width=64

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "algos/multi_source.h"
#include "common/flags.h"
#include "common/json.h"
#include "common/random.h"
#include "core/epoch_context.h"
#include "core/graph_context.h"
#include "fault/fault_plane.h"
#include "graph/mutation.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/partition.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "serve/query_queue.h"
#include "serve/serving.h"
#include "sim/comm_plane.h"
#include "sim/topology.h"
#include "sim/transfer_plan.h"

using namespace gum;  // NOLINT(build/namespaces)

namespace {

constexpr const char* kKnownFlags[] = {
    "graph",       "gen",         "scale",       "edge-factor", "weighted",
    "seed",        "rows",        "cols",        "algo",        "devices",
    "partitioner", "host-threads", "msg-shards", "expand",      "sources",
    "queries",     "query-seed",  "batch-width", "fault-plan",  "fault-seed",
    "fault-batch", "ckpt-every",  "save-values", "report",      "metrics",
    "trace",       "bench-json",  "bench-widths", "bench-threads", "help",
    "contention",  "multipath",   "mutations",   "mutation-seed",
    "update-rate", "compact-every",
};

void PrintUsage() {
  std::cout <<
      "usage: gum_serve (--graph=PATH | --gen=rmat|web|road|er [gen flags])\n"
      "                 [--algo=bfs|sssp] [--devices=N]\n"
      "                 [--partitioner=random|seg|metis]\n"
      "                 [--sources=a,b,c | --queries=N --query-seed=S]\n"
      "                 [--batch-width=N] [--host-threads=N] "
      "[--msg-shards=N]\n"
      "                 [--expand=scatter|spmv|auto]\n"
      "                 [--contention=off|fair] [--multipath=off|on]\n"
      "                 [--fault-plan=SPEC] [--fault-seed=S] "
      "[--fault-batch=K] [--ckpt-every=N]\n"
      "                 [--mutations=SPEC] [--mutation-seed=S] "
      "[--update-rate=R] [--compact-every=N]\n"
      "                 [--save-values=PREFIX] [--report=PATH] "
      "[--metrics=PATH] [--trace=PATH]\n"
      "                 [--bench-json=PATH] [--bench-widths=LIST] "
      "[--bench-threads=LIST]\n";
}

Result<graph::EdgeList> LoadOrGenerate(const FlagParser& flags) {
  if (flags.Has("graph")) {
    return graph::LoadEdgeListText(flags.GetString("graph", ""));
  }
  const std::string gen = flags.GetString("gen", "");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  if (gen == "rmat") {
    graph::RmatOptions opt;
    opt.scale = static_cast<int>(flags.GetInt("scale", 14));
    opt.edge_factor = flags.GetDouble("edge-factor", 16);
    opt.weighted = flags.GetBool("weighted", false);
    opt.seed = seed;
    return graph::Rmat(opt);
  }
  if (gen == "web") {
    graph::WebCrawlOptions opt;
    opt.scale = static_cast<int>(flags.GetInt("scale", 14));
    opt.edge_factor = flags.GetDouble("edge-factor", 12);
    opt.weighted = flags.GetBool("weighted", false);
    opt.seed = seed;
    return graph::WebCrawl(opt);
  }
  if (gen == "road") {
    graph::RoadGridOptions opt;
    opt.rows = static_cast<uint32_t>(flags.GetInt("rows", 128));
    opt.cols = static_cast<uint32_t>(flags.GetInt("cols", 128));
    opt.seed = seed;
    return graph::RoadGrid(opt);
  }
  if (gen == "er") {
    const graph::VertexId n = graph::VertexId{1}
                              << flags.GetInt("scale", 14);
    const graph::EdgeId m = static_cast<graph::EdgeId>(
        flags.GetDouble("edge-factor", 16) * n);
    return graph::ErdosRenyi(n, m, flags.GetBool("weighted", false), seed);
  }
  return Status::InvalidArgument(
      "need --graph=PATH or --gen=rmat|web|road|er");
}

struct ServeConfig {
  std::vector<graph::VertexId> sources;
  int batch_width = 64;
  int fault_batch = -1;
  int ckpt_every = 0;
  core::EngineOptions options;  // geometry the GraphContext is built from
  const fault::FaultPlane* fault_plane = nullptr;
};

serve::QueryQueue BuildQueue(const std::vector<graph::VertexId>& sources,
                             serve::QueryKind kind) {
  serve::QueryQueue queue;
  for (size_t i = 0; i < sources.size(); ++i) {
    queue.Admit(serve::Query{static_cast<int>(i), kind, sources[i]});
  }
  return queue;
}

template <typename Traits>
serve::ServeOutcome<typename Traits::ValueType> ServeStream(
    const core::GraphContext& ctx, const ServeConfig& cfg, int batch_width,
    bool keep_values) {
  serve::ServeSession<Traits> session(&ctx);
  serve::QueryQueue queue = BuildQueue(cfg.sources, Traits::kKind);
  serve::ServeOptions opts;
  opts.batch_width = batch_width;
  opts.fault_batch = cfg.fault_batch;
  opts.fault_plane = cfg.fault_plane;
  opts.ckpt_every = cfg.ckpt_every;
  opts.keep_values = keep_values;
  return session.ServeAll(queue, opts);
}

template <typename Traits>
int RunBench(const FlagParser& flags, const graph::CsrGraph& g,
             const graph::Partition& partition, const sim::Topology& topology,
             const ServeConfig& cfg) {
  const auto widths_or = flags.GetIntList("bench-widths", {1, 8, 64});
  const auto threads_or = flags.GetIntList("bench-threads", {1, 4});
  if (!widths_or.ok() || !threads_or.ok()) {
    std::cerr << (!widths_or.ok() ? widths_or.status() : threads_or.status())
                     .ToString()
              << "\n";
    return 1;
  }

  std::ofstream out(flags.GetString("bench-json", ""));
  JsonWriter w(out, 1);
  w.BeginObject();
  w.Key("benchmarks").BeginArray();
  const auto emit = [&w](const std::string& name, double makespan_ms,
                         const serve::ServeStats& stats) {
    w.BeginObject();
    w.Key("name").Value(name);
    w.Key("run_type").Value("iteration");
    w.Key("real_time").Value(makespan_ms * 1e6);  // simulated ns
    w.Key("time_unit").Value("ns");
    w.Key("qps").Value(stats.QueriesPerSecond());
    w.Key("p50_ms").Value(stats.LatencyPercentile(0.50));
    w.Key("p99_ms").Value(stats.LatencyPercentile(0.99));
    w.EndObject();
  };

  for (const int64_t t : *threads_or) {
    core::EngineOptions options = cfg.options;
    options.num_host_threads = static_cast<int>(t);
    const core::GraphContext ctx(&g, partition, topology, options);
    // One sequential (width-1) reference per thread count, re-emitted
    // under every width suffix so --expect-faster pairs line up.
    const auto seq = ServeStream<Traits>(ctx, cfg, 1, /*keep_values=*/false);
    for (const int64_t width : *widths_or) {
      const auto batched = ServeStream<Traits>(ctx, cfg,
                                               static_cast<int>(width),
                                               /*keep_values=*/false);
      const std::string suffix =
          "/w" + std::to_string(width) + "/t" + std::to_string(t);
      emit("BM_Serve_batched" + suffix, batched.stats.makespan_ms,
           batched.stats);
      emit("BM_Serve_sequential" + suffix, seq.stats.makespan_ms, seq.stats);
      std::cout << "w=" << width << " t=" << t << ": batched "
                << batched.stats.makespan_ms << " ms, sequential "
                << seq.stats.makespan_ms << " ms, p99 "
                << batched.stats.LatencyPercentile(0.99) << " ms\n";
    }
  }
  w.EndArray();
  w.EndObject();
  out << "\n";
  return 0;
}

// Shared tail of the serve drivers: obs artifacts, report, saved values,
// and the stdout summary. `extra_config` rides along in the report's
// meta.config (mutation-plane knobs; empty for the static path, keeping
// mutations-off reports byte-identical).
template <typename ValueT>
int FinishServe(
    const FlagParser& flags, const ServeConfig& cfg,
    const graph::Partition& partition,
    const serve::ServeOutcome<ValueT>& outcome, obs::TraceSession& trace,
    const std::vector<std::pair<std::string, std::string>>& extra_config) {
  const bool want_trace = flags.Has("trace");
  const bool want_metrics = flags.Has("metrics");
  const bool want_report = flags.Has("report");
  const bool keep_values = flags.Has("save-values");
  const serve::ServeStats& stats = outcome.stats;

  if (want_metrics || want_report) obs::SetMetricsEnabled(false);
  if (want_trace) {
    trace.Stop();
    std::ofstream out(flags.GetString("trace", ""));
    trace.WriteChromeTrace(out);
  }
  if (want_metrics) {
    std::ofstream out(flags.GetString("metrics", ""));
    obs::MetricsRegistry::Global().WriteJson(out);
  }
  if (want_report) {
    obs::RunReportMeta meta;
    meta.system = "gum-serve";
    meta.algorithm = flags.GetString("algo", "bfs");
    meta.dataset = flags.Has("graph") ? flags.GetString("graph", "")
                                      : flags.GetString("gen", "");
    meta.num_devices = partition.num_parts;
    meta.config = {
        {"batch_width", std::to_string(cfg.batch_width)},
        {"host_threads", std::to_string(cfg.options.num_host_threads)},
        {"msg_shards", std::to_string(cfg.options.num_msg_shards)},
        {"expand",
         core::ExpandBackendKindName(cfg.options.expand_backend)},
        {"queries", std::to_string(cfg.sources.size())},
    };
    if (cfg.fault_plane != nullptr && cfg.fault_batch >= 0) {
      meta.config.emplace_back("fault_plan", cfg.fault_plane->Describe());
      meta.config.emplace_back("fault_batch",
                               std::to_string(cfg.fault_batch));
      meta.config.emplace_back("ckpt_every",
                               std::to_string(cfg.ckpt_every));
    }
    for (const auto& kv : extra_config) meta.config.push_back(kv);
    obs::ServeReportStats report;
    report.batch_width = cfg.batch_width;
    report.queries = stats.queries;
    report.batches = stats.batches;
    report.makespan_ms = stats.makespan_ms;
    report.queries_per_second = stats.QueriesPerSecond();
    report.p50_ms = stats.LatencyPercentile(0.50);
    report.p90_ms = stats.LatencyPercentile(0.90);
    report.p99_ms = stats.LatencyPercentile(0.99);
    report.recovery_ms = stats.recovery_ms;
    for (const serve::QueryResult& q : stats.query_results) {
      report.queries_detail.push_back(
          obs::ServeQueryReport{q.id, q.batch, q.lane, q.latency_ms});
    }
    std::ofstream out(flags.GetString("report", ""));
    obs::WriteServeReport(out, meta, report, &obs::MetricsRegistry::Global());
  }
  if (keep_values) {
    const std::string prefix = flags.GetString("save-values", "");
    for (size_t i = 0; i < stats.query_results.size(); ++i) {
      const serve::QueryResult& q = stats.query_results[i];
      std::ofstream out(prefix + ".q" + std::to_string(q.id) + ".txt");
      const auto& values = outcome.values[i];
      for (size_t v = 0; v < values.size(); ++v) {
        out << v << " " << values[v] << "\n";
      }
    }
  }

  std::cout << "queries:         " << stats.queries << "\n"
            << "batches:         " << stats.batches << "\n"
            << "batch width:     " << cfg.batch_width << "\n"
            << "makespan:        " << stats.makespan_ms << " ms\n"
            << "throughput:      " << stats.QueriesPerSecond()
            << " queries/s\n"
            << "latency p50:     " << stats.LatencyPercentile(0.50)
            << " ms\n"
            << "latency p90:     " << stats.LatencyPercentile(0.90)
            << " ms\n"
            << "latency p99:     " << stats.LatencyPercentile(0.99)
            << " ms\n";
  if (stats.recovery_ms > 0.0) {
    std::cout << "recovery:        " << stats.recovery_ms << " ms\n";
  }
  return 0;
}

template <typename Traits>
int RunServe(const FlagParser& flags, const graph::CsrGraph& g,
             const graph::Partition& partition, const sim::Topology& topology,
             const ServeConfig& cfg) {
  const bool want_trace = flags.Has("trace");
  const bool want_metrics = flags.Has("metrics");
  const bool want_report = flags.Has("report");
  obs::TraceSession trace;
  if (want_trace) trace.Start();
  if (want_metrics || want_report) obs::SetMetricsEnabled(true);

  const bool keep_values = flags.Has("save-values");
  serve::ServeOutcome<typename Traits::ValueType> outcome;
  {
    const core::GraphContext ctx(&g, partition, topology, cfg.options);
    outcome = ServeStream<Traits>(ctx, cfg, cfg.batch_width, keep_values);
  }
  return FinishServe(flags, cfg, partition, outcome, trace, {});
}

// Streaming serve: interleave mutation epochs with query batches. Every
// `update_rate` batches the stream pauses at a barrier, the next mutation
// epoch lands on the epoched context (delta overlay, optional compaction),
// both engines rebind to the rebuilt GraphContext, and the apply/compaction
// charge is added to the stream clock — later queries pay the update cost
// in their latency. Batch numbering and the clock are continuous across
// segments, so --fault-batch keeps addressing absolute batch indices.
template <typename Traits>
int RunServeMutating(const FlagParser& flags, const graph::CsrGraph& g,
                     const graph::Partition& partition,
                     const sim::Topology& topology, const ServeConfig& cfg,
                     const graph::MutationStream& stream,
                     const std::string& mutation_spec, uint64_t mutation_seed,
                     int update_rate, int compact_every) {
  const bool want_trace = flags.Has("trace");
  const bool want_metrics = flags.Has("metrics");
  const bool want_report = flags.Has("report");
  obs::TraceSession trace;
  if (want_trace) trace.Start();
  if (want_metrics || want_report) obs::SetMetricsEnabled(true);

  const bool keep_values = flags.Has("save-values");
  serve::ServeOutcome<typename Traits::ValueType> outcome;
  int epochs_applied = 0;
  int events_applied = 0;
  int noops = 0;
  int compactions = 0;
  double update_ms = 0.0;
  {
    core::EpochedGraphContext ectx(g, partition, topology, cfg.options,
                                   /*symmetric=*/false);
    serve::ServeSession<Traits> session(&ectx.ctx());
    serve::QueryQueue queue = BuildQueue(cfg.sources, Traits::kKind);
    serve::ServeOptions opts;
    opts.batch_width = cfg.batch_width;
    opts.fault_batch = cfg.fault_batch;
    opts.fault_plane = cfg.fault_plane;
    opts.ckpt_every = cfg.ckpt_every;
    opts.keep_values = keep_values;
    opts.max_batches = update_rate;

    double clock_ms = 0.0;
    int batch_index = 0;
    int epoch = 0;
    while (!queue.empty()) {
      opts.clock_base_ms = clock_ms;
      opts.first_batch_index = batch_index;
      auto seg = session.ServeAll(queue, opts);
      outcome.stats.queries += seg.stats.queries;
      outcome.stats.batches += seg.stats.batches;
      outcome.stats.recovery_ms += seg.stats.recovery_ms;
      for (auto& b : seg.stats.batch_stats) {
        outcome.stats.batch_stats.push_back(b);
      }
      for (auto& q : seg.stats.query_results) {
        outcome.stats.query_results.push_back(q);
      }
      for (auto& v : seg.values) outcome.values.push_back(std::move(v));
      clock_ms = seg.stats.makespan_ms;
      batch_index += seg.stats.batches;

      if (!queue.empty() && epoch < stream.num_epochs()) {
        ++epoch;
        const core::EpochAdvanceStats adv =
            ectx.AdvanceEpoch(stream.BatchAt(epoch), compact_every);
        session.Rebind(&ectx.ctx());
        const double epoch_ms = adv.apply_ms + adv.compact_ms;
        clock_ms += epoch_ms;
        update_ms += epoch_ms;
        ++epochs_applied;
        events_applied += adv.inserted + adv.deleted;
        noops += adv.noops;
        if (adv.compacted) ++compactions;
        std::cout << "epoch " << epoch << ": +" << adv.inserted << "/-"
                  << adv.deleted << " edges (" << adv.noops << " noop"
                  << (adv.compacted ? ", compacted" : "") << "), "
                  << epoch_ms << " ms\n";
      }
    }
    outcome.stats.makespan_ms = clock_ms;
  }

  std::cout << "updates:         " << epochs_applied << " epochs, "
            << events_applied << " applied, " << noops << " noop, "
            << compactions << " compactions, " << update_ms << " ms\n";
  const std::vector<std::pair<std::string, std::string>> extra_config = {
      {"mutations", mutation_spec},
      {"mutation_seed", std::to_string(mutation_seed)},
      {"update_rate", std::to_string(update_rate)},
      {"compact_every", std::to_string(compact_every)},
  };
  return FinishServe(flags, cfg, partition, outcome, trace, extra_config);
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  if (flags.GetBool("help", false)) {
    PrintUsage();
    return 0;
  }
  if (Status s = flags.KnownFlagsOnly(
          {std::begin(kKnownFlags), std::end(kKnownFlags)});
      !s.ok()) {
    std::cerr << s.ToString() << "\n";
    PrintUsage();
    return 1;
  }

  auto edges = LoadOrGenerate(flags);
  if (!edges.ok()) {
    std::cerr << edges.status().ToString() << "\n";
    PrintUsage();
    return 1;
  }
  const auto algo_or = flags.GetEnum("algo", "bfs", {"bfs", "sssp"});
  if (!algo_or.ok()) {
    std::cerr << algo_or.status().ToString() << "\n";
    return 1;
  }
  const std::string algo = *algo_or;
  auto g = graph::CsrGraph::FromEdgeList(*edges, {});
  if (!g.ok()) {
    std::cerr << g.status().ToString() << "\n";
    return 1;
  }
  std::cout << "graph:           " << g->num_vertices() << " vertices, "
            << g->num_edges() << " edges\n";

  const int devices = static_cast<int>(flags.GetInt("devices", 8));
  graph::PartitionOptions popt;
  const auto pname_or =
      flags.GetEnum("partitioner", "random", {"random", "seg", "metis"});
  if (!pname_or.ok()) {
    std::cerr << pname_or.status().ToString() << "\n";
    return 1;
  }
  const std::string pname = *pname_or;
  popt.kind = pname == "seg"     ? graph::PartitionerKind::kSegment
              : pname == "metis" ? graph::PartitionerKind::kMetisLike
                                 : graph::PartitionerKind::kRandom;
  auto partition = graph::PartitionGraph(*g, devices, popt);
  if (!partition.ok()) {
    std::cerr << partition.status().ToString() << "\n";
    return 1;
  }
  auto topology = sim::Topology::HybridCubeMeshSubset(devices);
  if (!topology.ok()) {
    std::cerr << topology.status().ToString() << "\n";
    return 1;
  }

  // --- query stream ---
  ServeConfig cfg;
  if (flags.Has("sources")) {
    const auto sources_or = flags.GetIntList("sources", {});
    if (!sources_or.ok()) {
      std::cerr << sources_or.status().ToString() << "\n";
      return 1;
    }
    for (const int64_t s : *sources_or) {
      if (s < 0 || s >= static_cast<int64_t>(g->num_vertices())) {
        std::cerr << "--sources vertex " << s << " out of range\n";
        return 1;
      }
      cfg.sources.push_back(static_cast<graph::VertexId>(s));
    }
    if (cfg.sources.empty()) {
      std::cerr << "--sources needs at least one vertex\n";
      return 1;
    }
  } else {
    const int num_queries = static_cast<int>(flags.GetInt("queries", 64));
    if (num_queries <= 0) {
      std::cerr << "--queries must be positive\n";
      return 1;
    }
    Rng rng(static_cast<uint64_t>(flags.GetInt("query-seed", 1)));
    for (int i = 0; i < num_queries; ++i) {
      cfg.sources.push_back(static_cast<graph::VertexId>(
          rng.NextBounded(g->num_vertices())));
    }
  }

  cfg.batch_width = static_cast<int>(flags.GetInt("batch-width", 64));
  if (cfg.batch_width < 1 || cfg.batch_width > algos::kMaxBatchLanes) {
    std::cerr << "--batch-width must be 1.." << algos::kMaxBatchLanes << "\n";
    return 1;
  }

  const auto expand_or =
      flags.GetEnum("expand", "scatter", {"scatter", "spmv", "auto"});
  if (!expand_or.ok()) {
    std::cerr << expand_or.status().ToString() << "\n";
    return 1;
  }
  core::ParseExpandBackendKind(*expand_or, &cfg.options.expand_backend);
  cfg.options.num_host_threads =
      static_cast<int>(flags.GetInt("host-threads", 0));
  cfg.options.num_msg_shards =
      static_cast<int>(flags.GetInt("msg-shards", 0));
  const auto contention =
      sim::ParseContentionModel(flags.GetString("contention", "off"));
  if (!contention.ok()) {
    std::cerr << contention.status().ToString() << "\n";
    return 1;
  }
  cfg.options.contention = *contention;
  const auto multipath =
      sim::ParseMultipathMode(flags.GetString("multipath", "off"));
  if (!multipath.ok()) {
    std::cerr << multipath.status().ToString() << "\n";
    return 1;
  }
  cfg.options.multipath = *multipath;

  // --- fault compose ---
  cfg.fault_batch = static_cast<int>(flags.GetInt("fault-batch", -1));
  cfg.ckpt_every = static_cast<int>(flags.GetInt("ckpt-every", 0));
  fault::FaultPlane fault_plane;
  {
    auto plan = fault::FaultPlan::Parse(flags.GetString("fault-plan", "none"));
    if (!plan.ok()) {
      std::cerr << plan.status().ToString() << "\n";
      return 1;
    }
    auto plane = fault::FaultPlane::Create(
        *plan, partition->num_parts,
        static_cast<uint64_t>(flags.GetInt("fault-seed", 1)));
    if (!plane.ok()) {
      std::cerr << plane.status().ToString() << "\n";
      return 1;
    }
    fault_plane = std::move(*plane);
  }
  if (fault_plane.active()) {
    if (cfg.fault_batch < 0) {
      std::cerr << "--fault-plan needs --fault-batch=K (the batch to run "
                   "under the plane)\n";
      return 1;
    }
    if (cfg.ckpt_every <= 0) cfg.ckpt_every = 2;
    cfg.fault_plane = &fault_plane;
  }

  // --- mutation compose ---
  const std::string mutation_spec = flags.GetString("mutations", "none");
  const uint64_t mutation_seed =
      static_cast<uint64_t>(flags.GetInt("mutation-seed", 1));
  graph::MutationStream mutation_stream;
  {
    auto plan = graph::MutationPlan::Parse(mutation_spec);
    if (!plan.ok()) {
      std::cerr << plan.status().ToString() << "\n";
      return 1;
    }
    if (!plan->empty()) {
      auto stream = graph::MutationStream::Create(*plan, *g, mutation_seed);
      if (!stream.ok()) {
        std::cerr << stream.status().ToString() << "\n";
        return 1;
      }
      mutation_stream = std::move(*stream);
    }
  }
  const int update_rate = static_cast<int>(flags.GetInt("update-rate", 1));
  const int compact_every = static_cast<int>(flags.GetInt("compact-every", 0));
  if (mutation_stream.active()) {
    if (update_rate < 1) {
      std::cerr << "--update-rate must be >= 1\n";
      return 1;
    }
    if (compact_every < 0) {
      std::cerr << "--compact-every must be >= 0\n";
      return 1;
    }
    if (flags.Has("bench-json")) {
      std::cerr << "--mutations does not compose with --bench-json (use "
                   "bench/mutation_throughput)\n";
      return 1;
    }
  } else if (flags.Has("update-rate") || flags.Has("compact-every")) {
    std::cerr << "--update-rate/--compact-every need an active "
                 "--mutations stream\n";
    return 1;
  }

  if (mutation_stream.active()) {
    return algo == "bfs"
               ? RunServeMutating<serve::BfsServeTraits>(
                     flags, *g, *partition, *topology, cfg, mutation_stream,
                     mutation_spec, mutation_seed, update_rate, compact_every)
               : RunServeMutating<serve::SsspServeTraits>(
                     flags, *g, *partition, *topology, cfg, mutation_stream,
                     mutation_spec, mutation_seed, update_rate, compact_every);
  }
  if (flags.Has("bench-json")) {
    return algo == "bfs" ? RunBench<serve::BfsServeTraits>(
                               flags, *g, *partition, *topology, cfg)
                         : RunBench<serve::SsspServeTraits>(
                               flags, *g, *partition, *topology, cfg);
  }
  return algo == "bfs" ? RunServe<serve::BfsServeTraits>(flags, *g, *partition,
                                                         *topology, cfg)
                       : RunServe<serve::SsspServeTraits>(
                             flags, *g, *partition, *topology, cfg);
}
