// Shared helpers for the engine test suites.

#ifndef GUM_TESTS_TEST_UTIL_H_
#define GUM_TESTS_TEST_UTIL_H_

#include <utility>

#include <gtest/gtest.h>

#include "core/engine_options.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "sim/topology.h"

namespace gum::test {

// Social-network analog, directed, unweighted.
inline graph::CsrGraph SocialGraph(int scale = 10, uint64_t seed = 2,
                                   bool weighted = false) {
  graph::RmatOptions opt;
  opt.scale = scale;
  opt.edge_factor = 8;
  opt.seed = seed;
  opt.weighted = weighted;
  auto g = graph::CsrGraph::FromEdgeList(graph::Rmat(opt));
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

// Symmetrized variant for WCC.
inline graph::CsrGraph SocialGraphSym(int scale = 10, uint64_t seed = 2) {
  graph::RmatOptions opt;
  opt.scale = scale;
  opt.edge_factor = 8;
  opt.seed = seed;
  graph::CsrBuildOptions build;
  build.symmetrize = true;
  auto g = graph::CsrGraph::FromEdgeList(graph::Rmat(opt), build);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

// Long-diameter weighted road analog.
inline graph::CsrGraph RoadGraph(uint32_t side = 28, uint64_t seed = 3) {
  graph::RoadGridOptions opt;
  opt.rows = side;
  opt.cols = side;
  opt.seed = seed;
  auto g = graph::CsrGraph::FromEdgeList(graph::RoadGrid(opt));
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

inline graph::Partition MakePartition(
    const graph::CsrGraph& g, int parts,
    graph::PartitionerKind kind = graph::PartitionerKind::kRandom,
    uint64_t seed = 1) {
  graph::PartitionOptions opt;
  opt.kind = kind;
  opt.seed = seed;
  auto p = graph::PartitionGraph(g, parts, opt);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

// The highest-out-degree vertex: a well-connected traversal source.
inline graph::VertexId MaxDegreeSource(const graph::CsrGraph& g) {
  graph::VertexId best = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(best)) best = v;
  }
  return best;
}

inline sim::Topology Topo(int n) {
  auto t = sim::Topology::HybridCubeMeshSubset(n);
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

// Engine options with thresholds lowered so stealing activates on the small
// graphs used in tests.
inline core::EngineOptions TestEngineOptions() {
  core::EngineOptions opt;
  opt.fsteal.t1_min_max_load = 64;
  opt.fsteal.t2_min_imbalance = 32;
  opt.osteal.t3_trigger_ms = 3.0;
  opt.t4_hub_in_degree = 32;
  return opt;
}

}  // namespace gum::test

#endif  // GUM_TESTS_TEST_UTIL_H_
