#include "common/status.h"

namespace gum {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnbounded:
      return "Unbounded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace gum
