// The GUM multi-GPU graph processing engine (paper §V).
//
// BSP execution with remote work stealing. Per iteration (paper Example 4):
//   Step 1  generate frontiers (apply previous messages);
//   Step 2  ownership stealing — when the previous iteration was
//           synchronization-bound, enumerate group sizes over the reduction
//           tree and possibly shrink/grow the communication group;
//   Step 3  frontier stealing — solve the Eq.-1 MILP over the cost
//           coefficient matrix (with evicted devices forbidden) and split
//           each fragment's frontier into per-worker contiguous ranges;
//   Step 4  process the frontiers — every worker expands the vertices
//           assigned to it (remote adjacency over NVLink unless hub-cached),
//           messages are combined per target vertex and forwarded to the
//           target fragment's owner.
//
// Algorithm semantics are exact; device time is accounted by the analytic
// substrate model (see DESIGN.md §1). The App concept:
//
//   struct App {
//     using Value = ...;            // per-vertex state
//     using Message = ...;          // combined per target vertex
//     std::string name() const;
//     int fixed_rounds() const;     // -1 => data-driven, else round count
//     Value InitValue(VertexId v) const;
//     bool IsInitiallyActive(VertexId v) const;
//     Message InitialAccumulator() const;  // Combine identity (fixed-rounds)
//     // Called exactly once per active vertex per iteration; may mutate the
//     // vertex value (delta-PageRank consumes its residual here). Returns
//     // the payload broadcast along the vertex's out-edges.
//     Message OnFrontier(VertexId u, Value& val, uint32_t out_degree);
//     // Per-edge message; nullopt suppresses the edge.
//     std::optional<Message> Scatter(const Message& payload, VertexId dst,
//                                    float weight) const;
//     Message Combine(const Message& a, const Message& b) const;  // assoc.
//     // Applies the combined message; true activates dst next iteration.
//     bool Apply(VertexId v, Value& val, const Message& msg) const;
//   };

#ifndef GUM_CORE_ENGINE_H_
#define GUM_CORE_ENGINE_H_

#include <algorithm>
#include <optional>
#include <vector>

#include "common/bitmap.h"
#include "common/logging.h"
#include "core/edge_cost_model.h"
#include "core/engine_options.h"
#include "core/hub_cache.h"
#include "core/run_result.h"
#include "graph/csr.h"
#include "graph/fragment.h"
#include "graph/frontier_features.h"
#include "graph/partition.h"
#include "ml/model.h"
#include "sim/kernel_cost.h"
#include "sim/reduction_schedule.h"
#include "sim/timeline.h"
#include "sim/topology.h"

namespace gum::core {

template <typename App>
class GumEngine {
 public:
  using VertexId = graph::VertexId;
  using Value = typename App::Value;
  using Message = typename App::Message;

  // `g` and `cost_model` (if non-null) must outlive the engine. A null
  // cost_model forces the exact oracle regardless of options.
  GumEngine(const graph::CsrGraph* g, graph::Partition partition,
            sim::Topology topology, EngineOptions options,
            const ml::RegressionModel* cost_model = nullptr)
      : g_(g),
        partition_(std::move(partition)),
        topology_(std::move(topology)),
        options_(options),
        schedule_(sim::ReductionSchedule::Build(topology_)),
        cost_model_(cost_model != nullptr && !options.exact_cost_oracle
                        ? EdgeCostModel::Learned(cost_model, options.device)
                        : EdgeCostModel::ExactOracle(options.device)) {
    GUM_CHECK(partition_.num_parts == topology_.num_devices())
        << "partition parts must match device count";
    if (options_.enable_hub_cache) {
      hub_cache_ = HubCache(*g_, options_.t4_hub_in_degree);
    }
  }

  // Runs the app to convergence; returns timing statistics and, optionally,
  // the final vertex values.
  RunResult Run(App& app, std::vector<Value>* values_out = nullptr) {
    const int n = partition_.num_parts;
    const VertexId num_v = g_->num_vertices();
    const sim::DeviceParams& dev = options_.device;
    const double p_ns = dev.sync_per_peer_us * 1000.0;

    RunResult result;
    result.timeline = sim::Timeline(n);
    result.link_bytes.assign(n, std::vector<double>(n, 0.0));

    std::vector<Value> values(num_v);
    for (VertexId v = 0; v < num_v; ++v) values[v] = app.InitValue(v);

    // Frontiers per fragment, sorted ascending.
    std::vector<std::vector<VertexId>> frontier(n);
    for (VertexId v = 0; v < num_v; ++v) {
      if (app.IsInitiallyActive(v)) frontier[partition_.owner[v]].push_back(v);
    }

    std::vector<Message> inbox(num_v);
    Bitmap inbox_set(num_v);

    std::vector<int> owner_of_fragment(n);
    for (int i = 0; i < n; ++i) owner_of_fragment[i] = i;
    std::vector<int> active(n);
    for (int i = 0; i < n; ++i) active[i] = i;
    int group_size = n;

    const int fixed_rounds = app.fixed_rounds();
    double prev_wall_ms = 1e18;  // first iteration never triggers OSteal
    // Eq. (4)'s p, estimated online from observed iterations (paper §IV-A:
    // "a parameter that can be estimated during previous iterations").
    double p_estimate_ns = options_.estimate_sync_online
                               ? options_.sync_prior_us * 1000.0
                               : p_ns;

    // Scratch matrices reused across iterations.
    std::vector<std::vector<double>> edges_done(n, std::vector<double>(n));
    std::vector<std::vector<double>> hub_edges(n, std::vector<double>(n));
    std::vector<std::vector<double>> agg_msgs(n, std::vector<double>(n));
    std::vector<std::vector<double>> raw_msgs(n, std::vector<double>(n));
    std::vector<double> apply_msgs(n);

    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      if (fixed_rounds >= 0) {
        if (iter >= fixed_rounds) break;
        // Stationary workload: every inner vertex is active each round.
        for (int i = 0; i < n; ++i) frontier[i] = partition_.part_vertices[i];
      }

      // --- Step 1: workload census ---
      std::vector<double> loads(n, 0.0);
      std::vector<graph::FrontierFeatures> features(n);
      std::vector<double> remote_discount(n, 1.0);
      double total_load = 0.0;
      size_t total_frontier = 0;
      for (int i = 0; i < n; ++i) {
        double hub_load = 0.0;
        for (VertexId v : frontier[i]) {
          loads[i] += g_->OutDegree(v);
          if (hub_cache_.IsHub(v)) hub_load += g_->OutDegree(v);
        }
        total_load += loads[i];
        total_frontier += frontier[i].size();
        features[i] = graph::ExtractFrontierFeatures(*g_, frontier[i]);
        if (loads[i] > 0) remote_discount[i] = 1.0 - hub_load / loads[i];
      }
      if (fixed_rounds < 0 && total_frontier == 0) break;

      IterationStats stats;
      stats.iteration = iter;
      stats.fragment_load = loads;

      // --- Step 2: ownership stealing ---
      // Evaluate OSteal when the previous iteration was latency-bound, or
      // whenever the group is already shrunk (so it can grow back as the
      // workload recovers, paper §IV-B).
      if (options_.enable_osteal && n > 1 &&
          (prev_wall_ms < options_.osteal.t3_trigger_ms ||
           group_size < n)) {
        const auto cost_full =
            BuildCostMatrix(features, remote_discount, cost_model_,
                            topology_, AllDevices(n));
        OStealDecision dec = DecideOSteal(cost_full, loads, schedule_,
                                          p_estimate_ns, options_.osteal);
        stats.osteal_evaluated = true;
        stats.osteal_decision_host_ms = dec.decision_host_ms;
        result.osteal_decision_host_ms_total += dec.decision_host_ms;
        if (dec.group_size != group_size) {
          // Migrate residual frontier status from re-owned fragments.
          for (int i = 0; i < n; ++i) {
            if (dec.owner[i] != owner_of_fragment[i] &&
                !frontier[i].empty()) {
              const double bytes =
                  static_cast<double>(frontier[i].size()) *
                  dev.bytes_per_message;
              const double ns =
                  bytes / topology_.EffectiveBandwidth(owner_of_fragment[i],
                                                       dec.owner[i]);
              result.timeline.Add(iter, dec.owner[i],
                                  sim::TimeCategory::kOverhead, ns / 1e6);
            }
          }
          group_size = dec.group_size;
          owner_of_fragment = dec.owner;
          active = dec.active;
          stats.group_size_changed = true;
          ++result.osteal_shrink_events;
        }
        // Policy generation itself costs time on the coordinator and a
        // broadcast to every worker.
        const double osteal_sim_us = 12.0 + 4.0 * n;
        for (int d : active) {
          result.timeline.Add(iter, d, sim::TimeCategory::kOverhead,
                              osteal_sim_us / 1000.0);
        }
        result.osteal_sim_overhead_ms += osteal_sim_us / 1000.0;
      }
      stats.group_size = group_size;

      // --- Step 3: frontier stealing ---
      const auto cost = BuildCostMatrix(features, remote_discount,
                                        cost_model_, topology_, active);
      FStealDecision fs;
      if (options_.enable_fsteal && group_size > 1) {
        fs = DecideFSteal(cost, loads, owner_of_fragment, active,
                          options_.fsteal);
      } else {
        fs.assignment.assign(n, std::vector<double>(n, 0.0));
        for (int i = 0; i < n; ++i) {
          fs.assignment[i][owner_of_fragment[i]] = loads[i];
        }
      }
      stats.fsteal_applied = fs.applied;
      stats.fsteal_decision_host_ms = fs.decision_host_ms;
      result.fsteal_decision_host_ms_total += fs.decision_host_ms;
      if (fs.applied) ++result.fsteal_applied_iterations;

      // --- Step 4: process the frontiers ---
      for (auto& row : edges_done) std::fill(row.begin(), row.end(), 0.0);
      for (auto& row : hub_edges) std::fill(row.begin(), row.end(), 0.0);
      for (auto& row : agg_msgs) std::fill(row.begin(), row.end(), 0.0);
      for (auto& row : raw_msgs) std::fill(row.begin(), row.end(), 0.0);
      std::fill(apply_msgs.begin(), apply_msgs.end(), 0.0);

      double stolen_edges_this_iter = 0.0;
      for (int i = 0; i < n; ++i) {
        if (frontier[i].empty()) continue;
        // Split the fragment's frontier into per-worker ranges.
        std::vector<std::pair<size_t, size_t>> ranges;
        std::vector<int> executors;
        if (fs.applied && loads[i] > 0) {
          executors = active;
          ranges = SelectStolenRanges(*g_, frontier[i], fs.assignment[i],
                                      executors);
        } else {
          executors = {owner_of_fragment[i]};
          ranges = {{0, frontier[i].size()}};
        }
        for (size_t w = 0; w < executors.size(); ++w) {
          const int j = executors[w];
          for (size_t k = ranges[w].first; k < ranges[w].second; ++k) {
            const VertexId u = frontier[i][k];
            const uint32_t deg = g_->OutDegree(u);
            const Message payload = app.OnFrontier(u, values[u], deg);
            const auto neighbors = g_->OutNeighbors(u);
            const auto weights = g_->OutWeights(u);
            for (size_t e = 0; e < neighbors.size(); ++e) {
              const VertexId v = neighbors[e];
              const float w_e = weights.empty() ? 1.0f : weights[e];
              std::optional<Message> msg = app.Scatter(payload, v, w_e);
              if (!msg.has_value()) continue;
              const int f = static_cast<int>(partition_.owner[v]);
              raw_msgs[j][f] += 1.0;
              if (inbox_set.TestAndSet(v)) {
                inbox[v] = *msg;
                agg_msgs[j][f] += 1.0;  // first writer pays the transfer
              } else {
                inbox[v] = app.Combine(inbox[v], *msg);
              }
            }
            edges_done[i][j] += deg;
            if (j != i && hub_cache_.IsHub(u)) hub_edges[i][j] += deg;
            if (j != owner_of_fragment[i]) stolen_edges_this_iter += deg;
            result.edges_processed += deg;
          }
        }
      }
      result.stolen_edges_total += stolen_edges_this_iter;
      stats.stolen_edges = stolen_edges_this_iter;

      // --- apply phase (end of superstep; next frontier) ---
      std::vector<std::vector<VertexId>> next_frontier(n);
      if (fixed_rounds >= 0) {
        for (VertexId v = 0; v < num_v; ++v) {
          const Message msg = inbox_set.Test(v) ? inbox[v]
                                                : app.InitialAccumulator();
          app.Apply(v, values[v], msg);
          apply_msgs[partition_.owner[v]] += 1.0;
        }
      } else {
        inbox_set.ForEachSet([&](size_t vi) {
          const VertexId v = static_cast<VertexId>(vi);
          if (app.Apply(v, values[v], inbox[v])) {
            next_frontier[partition_.owner[v]].push_back(v);
          }
          apply_msgs[partition_.owner[v]] += 1.0;
        });
      }
      inbox_set.Clear();

      // --- time accounting ---
      AccountTime(iter, n, dev, p_ns, features, edges_done, hub_edges,
                  agg_msgs, raw_msgs, apply_msgs, owner_of_fragment, active,
                  fs, stolen_edges_this_iter, &result);

      // Refresh the p estimate from this iteration's observed barrier cost:
      // average per-device overhead minus the (known) kernel launches,
      // divided by the group size.
      if (options_.estimate_sync_online && !active.empty()) {
        double overhead_sum = 0;
        for (const int d : active) {
          overhead_sum +=
              result.timeline.Get(iter, d, sim::TimeCategory::kOverhead);
        }
        const double per_device_ns =
            overhead_sum / active.size() * 1e6 -
            5 * dev.kernel_launch_us * 1000.0;
        const double observed_p =
            std::max(0.0, per_device_ns / active.size());
        p_estimate_ns = (1.0 - options_.sync_ewma_alpha) * p_estimate_ns +
                        options_.sync_ewma_alpha * observed_p;
      }

      const double wall = result.timeline.IterationWall(iter);
      result.total_ms += wall;
      stats.wall_ms = wall;
      stats.device_busy_ms.resize(n);
      for (int d = 0; d < n; ++d) {
        stats.device_busy_ms[d] = result.timeline.DeviceIterationTotal(iter, d);
      }
      if (options_.record_iteration_stats) {
        result.iteration_stats.push_back(std::move(stats));
      }
      prev_wall_ms = wall;
      result.iterations = iter + 1;
      frontier = std::move(next_frontier);
      if (fixed_rounds >= 0) frontier.assign(n, {});
    }

    if (values_out != nullptr) *values_out = std::move(values);
    return result;
  }

 private:
  static std::vector<int> AllDevices(int n) {
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    return all;
  }

  void AccountTime(int iter, int n, const sim::DeviceParams& dev,
                   double p_ns,
                   const std::vector<graph::FrontierFeatures>& features,
                   const std::vector<std::vector<double>>& edges_done,
                   const std::vector<std::vector<double>>& hub_edges,
                   const std::vector<std::vector<double>>& agg_msgs,
                   const std::vector<std::vector<double>>& raw_msgs,
                   const std::vector<double>& apply_msgs,
                   const std::vector<int>& owner_of_fragment,
                   const std::vector<int>& active, const FStealDecision& fs,
                   double stolen_edges, RunResult* result) {
    sim::Timeline& tl = result->timeline;
    const int m = static_cast<int>(active.size());
    for (const int j : active) {
      double compute_ns = 0, comm_ns = 0, serial_ns = 0, overhead_ns = 0;
      int kernels = 0;
      int destinations = 0;
      double worked = 0;
      for (int i = 0; i < n; ++i) {
        const double edges = edges_done[i][j];
        if (edges <= 0) continue;
        worked += edges;
        ++kernels;  // one gather kernel per source fragment
        compute_ns += edges * sim::TrueEdgeCostNs(features[i], dev);
        const double remote_edges =
            (i == j) ? 0.0 : edges - hub_edges[i][j];
        const double local_edges = edges - remote_edges;
        comm_ns += remote_edges * dev.bytes_per_remote_edge /
                   topology_.EffectiveBandwidth(i, j);
        comm_ns += local_edges * dev.bytes_per_remote_edge /
                   topology_.EffectiveBandwidth(j, j);
        result->link_bytes[i][j] +=
            remote_edges * dev.bytes_per_remote_edge;
        result->link_bytes[j][j] += local_edges * dev.bytes_per_remote_edge;
      }
      // Message forwarding to each destination fragment's owner.
      for (int f = 0; f < n; ++f) {
        const double count = options_.enable_message_aggregation
                                 ? agg_msgs[j][f]
                                 : raw_msgs[j][f];
        if (count <= 0) continue;
        const double bytes = count * dev.bytes_per_message;
        const int owner = owner_of_fragment[f];
        serial_ns += bytes / dev.serialization_gbps + 3000.0;  // binning
        ++destinations;
        if (owner != j) {
          comm_ns += bytes / topology_.EffectiveBandwidth(j, owner);
          result->link_bytes[j][owner] += bytes;
        }
      }
      // Apply kernel on the fragments this device owns.
      for (int f = 0; f < n; ++f) {
        if (owner_of_fragment[f] == j && apply_msgs[f] > 0) {
          compute_ns += apply_msgs[f] * 3.0;  // per-message update cost
          ++kernels;
        }
      }
      overhead_ns += (kernels + 2) * dev.kernel_launch_us * 1000.0;
      overhead_ns += p_ns * m;  // barrier + buffer bookkeeping, Eq. (4)
      // Id conversion for outgoing messages.
      overhead_ns += 0.5 * (worked > 0 ? 1.0 : 0.0) * destinations * 1000.0;
      if (fs.applied) {
        // Decision broadcast + stolen-status copies (Table IV overhead).
        const double fsteal_us = 18.0 + 2.5 * m;
        overhead_ns += fsteal_us * 1000.0;
        result->fsteal_sim_overhead_ms += fsteal_us / 1000.0;
      }
      tl.Add(iter, j, sim::TimeCategory::kCompute, compute_ns / 1e6);
      tl.Add(iter, j, sim::TimeCategory::kCommunication, comm_ns / 1e6);
      tl.Add(iter, j, sim::TimeCategory::kSerialization, serial_ns / 1e6);
      tl.Add(iter, j, sim::TimeCategory::kOverhead, overhead_ns / 1e6);
    }
    if (fs.applied && stolen_edges > 0) {
      result->fsteal_sim_overhead_ms +=
          stolen_edges * 0.000008;  // 8 B status copy per stolen edge, ~GB/s
    }
    for (int f = 0; f < n; ++f) {
      double sent = 0;
      for (int j = 0; j < n; ++j) sent += raw_msgs[j][f];
      result->messages_sent += static_cast<uint64_t>(sent);
    }
  }

  const graph::CsrGraph* g_;
  graph::Partition partition_;
  sim::Topology topology_;
  EngineOptions options_;
  sim::ReductionSchedule schedule_;
  EdgeCostModel cost_model_;
  HubCache hub_cache_;
};

}  // namespace gum::core

#endif  // GUM_CORE_ENGINE_H_
