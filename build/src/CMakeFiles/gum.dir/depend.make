# Empty dependencies file for gum.
# This may be replaced when dependencies are built.
