
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/dobfs.cc" "src/CMakeFiles/gum.dir/algos/dobfs.cc.o" "gcc" "src/CMakeFiles/gum.dir/algos/dobfs.cc.o.d"
  "/root/repo/src/algos/near_far_sssp.cc" "src/CMakeFiles/gum.dir/algos/near_far_sssp.cc.o" "gcc" "src/CMakeFiles/gum.dir/algos/near_far_sssp.cc.o.d"
  "/root/repo/src/algos/reference.cc" "src/CMakeFiles/gum.dir/algos/reference.cc.o" "gcc" "src/CMakeFiles/gum.dir/algos/reference.cc.o.d"
  "/root/repo/src/baselines/baselines.cc" "src/CMakeFiles/gum.dir/baselines/baselines.cc.o" "gcc" "src/CMakeFiles/gum.dir/baselines/baselines.cc.o.d"
  "/root/repo/src/baselines/groute_cc.cc" "src/CMakeFiles/gum.dir/baselines/groute_cc.cc.o" "gcc" "src/CMakeFiles/gum.dir/baselines/groute_cc.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/gum.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/gum.dir/common/flags.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/gum.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/gum.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/gum.dir/common/random.cc.o" "gcc" "src/CMakeFiles/gum.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/gum.dir/common/status.cc.o" "gcc" "src/CMakeFiles/gum.dir/common/status.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/gum.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/gum.dir/common/table_printer.cc.o.d"
  "/root/repo/src/core/fast_wcc.cc" "src/CMakeFiles/gum.dir/core/fast_wcc.cc.o" "gcc" "src/CMakeFiles/gum.dir/core/fast_wcc.cc.o.d"
  "/root/repo/src/core/fsteal.cc" "src/CMakeFiles/gum.dir/core/fsteal.cc.o" "gcc" "src/CMakeFiles/gum.dir/core/fsteal.cc.o.d"
  "/root/repo/src/core/hub_cache.cc" "src/CMakeFiles/gum.dir/core/hub_cache.cc.o" "gcc" "src/CMakeFiles/gum.dir/core/hub_cache.cc.o.d"
  "/root/repo/src/core/osteal.cc" "src/CMakeFiles/gum.dir/core/osteal.cc.o" "gcc" "src/CMakeFiles/gum.dir/core/osteal.cc.o.d"
  "/root/repo/src/core/run_result.cc" "src/CMakeFiles/gum.dir/core/run_result.cc.o" "gcc" "src/CMakeFiles/gum.dir/core/run_result.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/CMakeFiles/gum.dir/graph/csr.cc.o" "gcc" "src/CMakeFiles/gum.dir/graph/csr.cc.o.d"
  "/root/repo/src/graph/fragment.cc" "src/CMakeFiles/gum.dir/graph/fragment.cc.o" "gcc" "src/CMakeFiles/gum.dir/graph/fragment.cc.o.d"
  "/root/repo/src/graph/frontier_features.cc" "src/CMakeFiles/gum.dir/graph/frontier_features.cc.o" "gcc" "src/CMakeFiles/gum.dir/graph/frontier_features.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/gum.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/gum.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/gum.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/gum.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/CMakeFiles/gum.dir/graph/partition.cc.o" "gcc" "src/CMakeFiles/gum.dir/graph/partition.cc.o.d"
  "/root/repo/src/graph/partition_metis_like.cc" "src/CMakeFiles/gum.dir/graph/partition_metis_like.cc.o" "gcc" "src/CMakeFiles/gum.dir/graph/partition_metis_like.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/CMakeFiles/gum.dir/graph/stats.cc.o" "gcc" "src/CMakeFiles/gum.dir/graph/stats.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/CMakeFiles/gum.dir/ml/dataset.cc.o" "gcc" "src/CMakeFiles/gum.dir/ml/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/gum.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/gum.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/linear_regression.cc" "src/CMakeFiles/gum.dir/ml/linear_regression.cc.o" "gcc" "src/CMakeFiles/gum.dir/ml/linear_regression.cc.o.d"
  "/root/repo/src/ml/model.cc" "src/CMakeFiles/gum.dir/ml/model.cc.o" "gcc" "src/CMakeFiles/gum.dir/ml/model.cc.o.d"
  "/root/repo/src/ml/polynomial_regression.cc" "src/CMakeFiles/gum.dir/ml/polynomial_regression.cc.o" "gcc" "src/CMakeFiles/gum.dir/ml/polynomial_regression.cc.o.d"
  "/root/repo/src/ml/svr.cc" "src/CMakeFiles/gum.dir/ml/svr.cc.o" "gcc" "src/CMakeFiles/gum.dir/ml/svr.cc.o.d"
  "/root/repo/src/sim/bandwidth_probe.cc" "src/CMakeFiles/gum.dir/sim/bandwidth_probe.cc.o" "gcc" "src/CMakeFiles/gum.dir/sim/bandwidth_probe.cc.o.d"
  "/root/repo/src/sim/kernel_cost.cc" "src/CMakeFiles/gum.dir/sim/kernel_cost.cc.o" "gcc" "src/CMakeFiles/gum.dir/sim/kernel_cost.cc.o.d"
  "/root/repo/src/sim/reduction_schedule.cc" "src/CMakeFiles/gum.dir/sim/reduction_schedule.cc.o" "gcc" "src/CMakeFiles/gum.dir/sim/reduction_schedule.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "src/CMakeFiles/gum.dir/sim/timeline.cc.o" "gcc" "src/CMakeFiles/gum.dir/sim/timeline.cc.o.d"
  "/root/repo/src/sim/topology.cc" "src/CMakeFiles/gum.dir/sim/topology.cc.o" "gcc" "src/CMakeFiles/gum.dir/sim/topology.cc.o.d"
  "/root/repo/src/solver/milp.cc" "src/CMakeFiles/gum.dir/solver/milp.cc.o" "gcc" "src/CMakeFiles/gum.dir/solver/milp.cc.o.d"
  "/root/repo/src/solver/simplex.cc" "src/CMakeFiles/gum.dir/solver/simplex.cc.o" "gcc" "src/CMakeFiles/gum.dir/solver/simplex.cc.o.d"
  "/root/repo/src/solver/steal_problem.cc" "src/CMakeFiles/gum.dir/solver/steal_problem.cc.o" "gcc" "src/CMakeFiles/gum.dir/solver/steal_problem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
