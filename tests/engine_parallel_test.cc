// Determinism contract of the superstep runtime (DESIGN.md): for every
// num_host_threads x num_msg_shards setting the engines must produce
// bit-identical vertex values AND bit-identical simulated statistics —
// total_ms, link_bytes, messages_sent, per-iteration timelines. The
// parallel path stages each work unit's messages privately, bins them by
// destination shard, and replays every shard in canonical unit order, so
// nothing may depend on thread scheduling or the shard count.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "algos/apps.h"
#include "algos/reference.h"
#include "baselines/gunrock_like.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "tests/test_util.h"

namespace gum::core {
namespace {

using algos::BfsApp;
using algos::PageRankApp;
using algos::SsspApp;
using graph::VertexId;
using test::MakePartition;
using test::SocialGraph;
using test::TestEngineOptions;
using test::Topo;

void ExpectTimelinesIdentical(const sim::Timeline& a,
                              const sim::Timeline& b) {
  ASSERT_EQ(a.num_iterations(), b.num_iterations());
  ASSERT_EQ(a.num_devices(), b.num_devices());
  for (int it = 0; it < a.num_iterations(); ++it) {
    for (int d = 0; d < a.num_devices(); ++d) {
      for (int c = 0; c < sim::kNumTimeCategories; ++c) {
        const auto cat = static_cast<sim::TimeCategory>(c);
        EXPECT_EQ(a.Get(it, d, cat), b.Get(it, d, cat))
            << "iter " << it << " device " << d << " category " << c;
      }
    }
  }
}

void ExpectResultsIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.total_ms, b.total_ms);  // bit-identical, not just close
  EXPECT_EQ(a.edges_processed, b.edges_processed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.stolen_edges_total, b.stolen_edges_total);
  EXPECT_EQ(a.fsteal_applied_iterations, b.fsteal_applied_iterations);
  EXPECT_EQ(a.osteal_shrink_events, b.osteal_shrink_events);
  EXPECT_EQ(a.link_bytes, b.link_bytes);
  ASSERT_EQ(a.iteration_stats.size(), b.iteration_stats.size());
  for (size_t i = 0; i < a.iteration_stats.size(); ++i) {
    EXPECT_EQ(a.iteration_stats[i].wall_ms, b.iteration_stats[i].wall_ms);
    EXPECT_EQ(a.iteration_stats[i].stolen_edges,
              b.iteration_stats[i].stolen_edges);
    EXPECT_EQ(a.iteration_stats[i].group_size,
              b.iteration_stats[i].group_size);
  }
  ExpectTimelinesIdentical(a.timeline, b.timeline);
}

template <typename App>
RunResult RunGumWithThreads(const graph::CsrGraph& g, App app, int threads,
                            std::vector<typename App::Value>* values,
                            int shards = 1) {
  auto opt = TestEngineOptions();
  opt.num_host_threads = threads;
  opt.num_msg_shards = shards;
  GumEngine<App> engine(&g, MakePartition(g, 4), Topo(4), opt);
  return engine.Run(app, values);
}

// The full determinism matrix: every {threads} x {shards} combination must
// reproduce the serial single-shard run bit for bit.
template <typename App>
void ExpectGumDeterministic(const graph::CsrGraph& g, const App& app) {
  std::vector<typename App::Value> values1;
  const RunResult r1 = RunGumWithThreads(g, app, 1, &values1, 1);
  for (const int threads : {1, 2, 4, 8}) {
    for (const int shards : {1, 2, 4, 8}) {
      if (threads == 1 && shards == 1) continue;
      std::vector<typename App::Value> values_k;
      const RunResult rk =
          RunGumWithThreads(g, app, threads, &values_k, shards);
      SCOPED_TRACE(testing::Message() << "num_host_threads=" << threads
                                      << " num_msg_shards=" << shards);
      EXPECT_EQ(values1, values_k);
      ExpectResultsIdentical(r1, rk);
    }
  }
}

TEST(EngineParallelTest, ThreadPoolRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // Reusable for a second, smaller launch.
  std::atomic<int> total{0};
  pool.ParallelFor(7, [&](size_t) { ++total; });
  EXPECT_EQ(total.load(), 7);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "count 0 must not invoke"; });
}

TEST(EngineParallelTest, ThreadPoolGrainAndStaticRangeCoverEveryIndex) {
  ThreadPool pool(4);
  // Grain that does not divide the count: the last block is short.
  for (const size_t grain : {3, 64, 5000}) {
    constexpr size_t kCount = 10001;
    std::vector<std::atomic<int>> hits(kCount);
    pool.ParallelFor(
        kCount,
        [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
        grain);
    for (size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
  // Static ranges: one contiguous block per thread, count not a multiple.
  constexpr size_t kCount = 31;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelForStatic(kCount, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(EngineParallelTest, BfsBitIdenticalAcrossThreadCounts) {
  const auto g = SocialGraph(10, 7);
  BfsApp app;
  app.source = 1;
  ExpectGumDeterministic(g, app);
}

TEST(EngineParallelTest, SsspBitIdenticalAcrossThreadCounts) {
  const auto g = SocialGraph(10, 4, /*weighted=*/true);
  SsspApp app;
  app.source = 3;
  ExpectGumDeterministic(g, app);
}

TEST(EngineParallelTest, PageRankBitIdenticalAcrossThreadCounts) {
  // Fixed-rounds workload with a double-addition combiner: the merge order
  // of staged messages is the only thing standing between this test and
  // floating-point drift.
  const auto g = SocialGraph(9, 5);
  PageRankApp app;
  app.num_vertices = g.num_vertices();
  app.rounds = 12;
  ExpectGumDeterministic(g, app);
}

TEST(EngineParallelTest, WccBitIdenticalAcrossThreadCounts) {
  // All-active first iteration: every shard's merge and apply bins are
  // populated at once — the widest sharded-drain shape.
  const auto g = test::SocialGraphSym(9, 11);
  algos::WccApp app;
  ExpectGumDeterministic(g, app);
}

TEST(EngineParallelTest, ParallelRunStillMatchesReference) {
  const auto g = SocialGraph(10, 7);
  BfsApp app;
  app.source = 1;
  std::vector<uint32_t> depths;
  RunGumWithThreads(g, app, 8, &depths);
  EXPECT_EQ(depths, algos::ref::Bfs(g, 1));
}

TEST(EngineParallelTest, GunrockBitIdenticalAcrossThreadCounts) {
  const auto g = SocialGraph(10, 9);
  const auto part = MakePartition(g, 4);
  std::vector<uint32_t> values1;
  baselines::GunrockOptions opt1;
  opt1.num_host_threads = 1;
  BfsApp app;
  app.source = 5;
  const RunResult r1 =
      baselines::GunrockLikeEngine<BfsApp>(&g, part, Topo(4), opt1)
          .Run(app, &values1);
  for (const int threads : {2, 8}) {
    for (const int shards : {1, 4}) {
      SCOPED_TRACE(testing::Message() << "num_host_threads=" << threads
                                      << " num_msg_shards=" << shards);
      baselines::GunrockOptions optk;
      optk.num_host_threads = threads;
      optk.num_msg_shards = shards;
      std::vector<uint32_t> values_k;
      app.source = 5;
      const RunResult rk =
          baselines::GunrockLikeEngine<BfsApp>(&g, part, Topo(4), optk)
              .Run(app, &values_k);
      EXPECT_EQ(values1, values_k);
      EXPECT_EQ(r1.iterations, rk.iterations);
      EXPECT_EQ(r1.total_ms, rk.total_ms);
      EXPECT_EQ(r1.edges_processed, rk.edges_processed);
      EXPECT_EQ(r1.messages_sent, rk.messages_sent);
      ExpectTimelinesIdentical(r1.timeline, rk.timeline);
    }
  }
}

// Baseline equivalence: the ported GunrockLikeEngine still produces the
// results the seed engine produced — correct vertex values against the
// references and the seed's accounting invariants (per-iteration p*n
// barrier on every device, boost factor on one GPU). The relational seed
// suite in baselines_test.cc runs unchanged on top of this.
TEST(EngineParallelTest, PortedGunrockReproducesSeedBehavior) {
  const auto g = SocialGraph(10, 4, /*weighted=*/true);
  SsspApp app;
  app.source = 3;
  std::vector<float> dist;
  const RunResult r =
      baselines::GunrockLikeEngine<SsspApp>(&g, MakePartition(g, 4), Topo(4),
                                            {})
          .Run(app, &dist);
  const auto expected = algos::ref::Sssp(g, 3);
  ASSERT_EQ(dist.size(), expected.size());
  for (size_t v = 0; v < dist.size(); ++v) {
    EXPECT_EQ(dist[v], expected[v]) << "vertex " << v;
  }
  // Every device pays at least the p*n barrier in every iteration.
  const baselines::GunrockOptions defaults;
  const double barrier_ms =
      defaults.device.sync_per_peer_us * 4 / 1000.0;
  for (int it = 0; it < r.timeline.num_iterations(); ++it) {
    for (int d = 0; d < 4; ++d) {
      EXPECT_GE(r.timeline.Get(it, d, sim::TimeCategory::kOverhead),
                barrier_ms * (1.0 - 1e-12));
    }
  }
}

}  // namespace
}  // namespace gum::core
