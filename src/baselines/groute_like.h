// Groute-like baseline engine (paper §VI "Groute" comparator).
//
// Asynchronous execution model simulated with per-device local clocks and
// message events, reproducing the properties the paper attributes to
// Groute:
//   * no global barriers — a device processes its worklist as soon as work
//     is available, paying only a micro-batch launch overhead. This is why
//     the asynchronous model wins WCC on long-diameter road networks
//     (labels cross many hops per unit time, Exp-1);
//   * communication uses a single ring chosen from the NVLink topology;
//     messages to a non-neighbor hop device to device, and with an odd
//     device count one ring segment falls back to PCIe (the odd/even
//     scalability artifact of Fig. 7);
//   * static partition, no work stealing: a straggler device bounds the
//     total time because its worklist drains sequentially.
//
// Monotonic apps (BFS/SSSP/WCC min-combine; delta-PR) converge to the same
// fixpoint as the BSP engines; PageRankApp (fixed synchronous rounds) is
// not meaningful here and run as its delta variant by the benches.

#ifndef GUM_BASELINES_GROUTE_LIKE_H_
#define GUM_BASELINES_GROUTE_LIKE_H_

#include <algorithm>
#include <optional>
#include <limits>
#include <queue>
#include <vector>

#include "common/bitmap.h"
#include "common/logging.h"
#include "core/run_result.h"
#include "graph/csr.h"
#include "graph/frontier_features.h"
#include "graph/partition.h"
#include "sim/comm_plane.h"
#include "sim/device.h"
#include "sim/kernel_cost.h"
#include "sim/timeline.h"
#include "sim/topology.h"

namespace gum::baselines {

struct GrouteOptions {
  sim::DeviceParams device;
  double batch_overhead_us = 12.0;  // async micro-kernel launch + bookkeeping
  double hop_latency_us = 2.0;      // per ring hop
  double ring_gbps = sim::Topology::kNvlinkLaneGBps;
  // Groute forwards messages in fixed-size router segments; an under-filled
  // segment waits for the flush timer at EVERY store-and-forward hop. This
  // is the mechanism that makes the real system excellent on all-active
  // workloads (full segments, no barrier) yet poor on single-source
  // traversals of long-diameter graphs (tiny wavefront messages eat the
  // timeout on every hop) — the Table III / Fig. 7 road-network pattern.
  double segment_size_bytes = 16.0 * 1024;
  double flush_timeout_us = 1000.0;
  long long max_batches = 20'000'000;
  // Interconnect contention model: under kFair a store-and-forward hop
  // queues behind whatever is still draining on that ring lane; kOff keeps
  // the legacy infinitely-shareable lanes.
  sim::ContentionModel contention = sim::ContentionModel::kOff;
};

template <typename App>
class GrouteLikeEngine {
 public:
  using VertexId = graph::VertexId;
  using Value = typename App::Value;
  using Message = typename App::Message;

  GrouteLikeEngine(const graph::CsrGraph* g, graph::Partition partition,
                   GrouteOptions options)
      : g_(g), partition_(std::move(partition)), options_(options) {}

  core::RunResult Run(App& app, std::vector<Value>* values_out = nullptr) {
    const int n = partition_.num_parts;
    const VertexId num_v = g_->num_vertices();
    const sim::DeviceParams& dev = options_.device;

    core::RunResult result;
    result.timeline = sim::Timeline(n);
    // Groute's interconnect IS a ring: every transfer cost comes from the
    // plane over the ring topology (with the odd-n PCIe wrap-around, the
    // Fig. 7 odd/even artifact).
    sim::CommPlane plane(
        sim::Topology::Ring(n, options_.ring_gbps, /*pcie_odd_wrap=*/true),
        options_.contention);

    std::vector<Value> values(num_v);
    for (VertexId v = 0; v < num_v; ++v) values[v] = app.InitValue(v);

    struct Bundle {
      double arrival_ms;
      std::vector<std::pair<VertexId, Message>> messages;
      bool operator>(const Bundle& other) const {
        return arrival_ms > other.arrival_ms;
      }
    };
    std::vector<std::priority_queue<Bundle, std::vector<Bundle>,
                                    std::greater<Bundle>>> pending(n);
    std::vector<std::vector<VertexId>> active(n);
    Bitmap in_worklist(num_v);

    for (VertexId v = 0; v < num_v; ++v) {
      if (app.IsInitiallyActive(v)) {
        active[partition_.owner[v]].push_back(v);
        in_worklist.Set(v);
      }
    }

    std::vector<double> clock_ms(n, 0.0);
    std::vector<std::vector<std::pair<VertexId, Message>>> outgoing(n);
    std::vector<VertexId> batch;

    long long batches = 0;
    while (batches < options_.max_batches) {
      // Pick the device that can make progress earliest.
      int d = -1;
      double ready = std::numeric_limits<double>::infinity();
      for (int i = 0; i < n; ++i) {
        double r;
        if (!active[i].empty()) {
          r = clock_ms[i];
        } else if (!pending[i].empty()) {
          r = std::max(clock_ms[i], pending[i].top().arrival_ms);
        } else {
          continue;
        }
        if (r < ready) {
          ready = r;
          d = i;
        }
      }
      if (d == -1) break;  // quiescent: converged
      ++batches;

      const double t_start = ready;
      // Ingest all messages that have arrived by now.
      while (!pending[d].empty() &&
             pending[d].top().arrival_ms <= t_start) {
        const Bundle& bundle = pending[d].top();
        for (const auto& [v, msg] : bundle.messages) {
          if (app.Apply(v, values[v], msg) && in_worklist.TestAndSet(v)) {
            active[d].push_back(v);
          }
        }
        pending[d].pop();
      }
      if (active[d].empty()) {
        clock_ms[d] = t_start;  // messages applied but nothing activated
        continue;
      }

      batch.swap(active[d]);
      active[d].clear();
      std::sort(batch.begin(), batch.end());
      for (VertexId u : batch) in_worklist.Reset(u);

      const auto features = graph::ExtractFrontierFeatures(*g_, batch);
      const double edge_cost_ns = sim::TrueEdgeCostNs(features, dev);

      for (auto& out : outgoing) out.clear();
      double edges = 0;
      for (const VertexId u : batch) {
        const uint32_t deg = g_->OutDegree(u);
        const Message payload = app.OnFrontier(u, values[u], deg);
        const auto neighbors = g_->OutNeighbors(u);
        const auto weights = g_->OutWeights(u);
        for (size_t e = 0; e < neighbors.size(); ++e) {
          const VertexId v = neighbors[e];
          const float w_e = weights.empty() ? 1.0f : weights[e];
          std::optional<Message> msg = app.Scatter(payload, v, w_e);
          if (!msg.has_value()) continue;
          outgoing[partition_.owner[v]].emplace_back(v, *msg);
          result.messages_sent++;
        }
        edges += deg;
        result.edges_processed += deg;
      }

      const double compute_ms = edges * edge_cost_ns / 1e6;
      const double local_fetch_ms =
          plane.LaneMs(d, d, edges * dev.bytes_per_remote_edge);
      plane.ReserveLane(d, d, t_start, edges * dev.bytes_per_remote_edge);
      double serial_ms = 0;
      double send_ms = 0;
      const double overhead_ms = options_.batch_overhead_us / 1000.0;
      double t_end = t_start + overhead_ms + compute_ms + local_fetch_ms;

      // Local messages become available at the end of this batch.
      if (!outgoing[d].empty()) {
        Bundle bundle;
        bundle.arrival_ms = t_end;
        bundle.messages = std::move(outgoing[d]);
        pending[d].push(std::move(bundle));
      }
      // Remote messages hop along the ring.
      for (int f = 0; f < n; ++f) {
        if (f == d || outgoing[f].empty()) continue;
        const double bytes =
            static_cast<double>(outgoing[f].size()) * dev.bytes_per_message;
        serial_ms += bytes / dev.serialization_gbps / 1e6;
        // Under-filled segments wait (pro-rata) for the flush timer at each
        // store-and-forward hop.
        const double fill =
            std::min(1.0, bytes / options_.segment_size_bytes);
        const double flush_ms =
            options_.flush_timeout_us * (1.0 - fill) / 1000.0;
        double arrival = t_end + serial_ms;
        for (int hop = d; hop != f; hop = (hop + 1) % n) {
          const int next = (hop + 1) % n;
          const double hop_ms = plane.LaneMs(hop, next, bytes);
          if (hop == d) {
            // Under contention injection queues on the sender's ring lane.
            // Only the first hop reserves: a sender's bundles hit its lane
            // in clock order, so the FIFO is exact there. Forwarding hops
            // are pipelined by the per-link ring DMA engines and charge
            // traffic without queueing — reserving them in send order would
            // let a far-future multi-hop arrival ratchet the lane horizon
            // ahead of earlier-arriving bundles and starve ingestion.
            arrival = plane.ReserveLane(hop, next, arrival, bytes);
          } else {
            plane.RecordLinkTraffic(hop, next, bytes);
          }
          arrival += options_.hop_latency_us / 1000.0 + flush_ms + hop_ms;
        }
        send_ms += plane.LaneMs(d, (d + 1) % n, bytes);
        plane.RecordPayload(d, f, bytes);
        Bundle bundle;
        bundle.arrival_ms = arrival;
        bundle.messages = std::move(outgoing[f]);
        pending[f].push(std::move(bundle));
      }
      t_end += serial_ms + send_ms;
      clock_ms[d] = t_end;

      result.timeline.Add(0, d, sim::TimeCategory::kCompute, compute_ms);
      result.timeline.Add(0, d, sim::TimeCategory::kCommunication,
                          send_ms + local_fetch_ms);
      result.timeline.Add(0, d, sim::TimeCategory::kSerialization, serial_ms);
      result.timeline.Add(0, d, sim::TimeCategory::kOverhead, overhead_ms);
    }
    GUM_CHECK(batches < options_.max_batches)
        << "Groute-like engine hit the batch limit before quiescence";

    result.iterations = static_cast<int>(batches);
    result.total_ms = *std::max_element(clock_ms.begin(), clock_ms.end());
    result.link_bytes = plane.link_bytes();
    result.payload_bytes = plane.payload_bytes();
    result.link_busy_ms = plane.link_busy_ms();
    if (values_out != nullptr) *values_out = std::move(values);
    return result;
  }

 private:
  const graph::CsrGraph* g_;
  graph::Partition partition_;
  GrouteOptions options_;
};

}  // namespace gum::baselines

#endif  // GUM_BASELINES_GROUTE_LIKE_H_
