#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.h"
#include "graph/io.h"
#include "algos/apps.h"
#include "algos/reference.h"
#include "core/engine.h"

namespace gum::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "gum_io_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }

  void TearDown() override {
    std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                "gum_io_test");
  }
};

TEST_F(IoTest, TextRoundTrip) {
  EdgeList list;
  list.num_vertices = 5;
  list.edges = {{0, 1, 1.0f}, {1, 2, 2.5f}, {4, 0, 1.0f}};
  const std::string path = TempPath("g.txt");
  ASSERT_TRUE(SaveEdgeListText(list, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices, 5u);
  ASSERT_EQ(loaded->edges.size(), 3u);
  EXPECT_EQ(loaded->edges[1].src, 1u);
  EXPECT_EQ(loaded->edges[1].dst, 2u);
  EXPECT_FLOAT_EQ(loaded->edges[1].weight, 2.5f);
}

TEST_F(IoTest, TextCommentsAndImplicitVertexCount) {
  const std::string path = TempPath("c.txt");
  std::ofstream(path) << "# a comment\n% another\n3 7\n7 3 2.0\n";
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices, 8u);  // max id + 1
  EXPECT_EQ(loaded->edges.size(), 2u);
}

TEST_F(IoTest, TextMalformedLineFails) {
  const std::string path = TempPath("bad.txt");
  std::ofstream(path) << "1 2\nnot an edge\n";
  auto loaded = LoadEdgeListText(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, MissingFileFails) {
  auto loaded = LoadEdgeListText(TempPath("nope.txt"));
  EXPECT_FALSE(loaded.ok());
}

TEST_F(IoTest, BinaryRoundTripLargeGraph) {
  const EdgeList original = Rmat({.scale = 10, .edge_factor = 4,
                                  .weighted = true, .seed = 6});
  const std::string path = TempPath("g.bin");
  ASSERT_TRUE(SaveEdgeListBinary(original, path).ok());
  auto loaded = LoadEdgeListBinary(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->edges.size(), original.edges.size());
  EXPECT_EQ(loaded->num_vertices, original.num_vertices);
  for (size_t i = 0; i < original.edges.size(); i += 97) {
    EXPECT_EQ(loaded->edges[i].src, original.edges[i].src);
    EXPECT_EQ(loaded->edges[i].dst, original.edges[i].dst);
    EXPECT_EQ(loaded->edges[i].weight, original.edges[i].weight);
  }
}

TEST_F(IoTest, BinaryBadMagicFails) {
  const std::string path = TempPath("junk.bin");
  std::ofstream(path, std::ios::binary) << "THISISNOTAGUMFILE";
  auto loaded = LoadEdgeListBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, BinaryTruncatedFails) {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1, 1.0f}, {1, 2, 1.0f}};
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SaveEdgeListBinary(list, path).ok());
  // Chop the last 6 bytes.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 6);
  auto loaded = LoadEdgeListBinary(path);
  EXPECT_FALSE(loaded.ok());
}


TEST_F(IoTest, LoadedGraphRunsThroughTheEngine) {
  // Full pipeline: generate -> save -> load -> partition -> GUM BFS.
  const EdgeList original = Rmat({.scale = 9, .edge_factor = 6, .seed = 46});
  const std::string path = TempPath("pipeline.txt");
  ASSERT_TRUE(SaveEdgeListText(original, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  auto g = CsrGraph::FromEdgeList(*loaded);
  ASSERT_TRUE(g.ok());
  auto partition = PartitionGraph(*g, 4, {});
  ASSERT_TRUE(partition.ok());
  auto topology = gum::sim::Topology::HybridCubeMeshSubset(4);
  ASSERT_TRUE(topology.ok());
  gum::core::GumEngine<gum::algos::BfsApp> engine(&*g, *partition,
                                                  *topology, {});
  gum::algos::BfsApp app;
  app.source = 0;
  std::vector<uint32_t> depths;
  const auto result = engine.Run(app, &depths);
  EXPECT_EQ(depths, gum::algos::ref::Bfs(*g, 0));
  EXPECT_GT(result.total_ms, 0.0);
}

}  // namespace
}  // namespace gum::graph
