#include "graph/partition.h"

#include <algorithm>
#include <numeric>

#include "common/random.h"

namespace gum::graph {

const char* PartitionerName(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kSegment:
      return "seg";
    case PartitionerKind::kRandom:
      return "random";
    case PartitionerKind::kMetisLike:
      return "metis";
  }
  return "unknown";
}

double Partition::EdgeImbalance() const {
  if (part_out_edges.empty()) return 1.0;
  EdgeId total = 0, max_part = 0;
  for (EdgeId e : part_out_edges) {
    total += e;
    max_part = std::max(max_part, e);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(part_out_edges.size());
  return static_cast<double>(max_part) / mean;
}

namespace {

// seg: sweep vertices in id order, cutting whenever the running out-edge
// count reaches the per-part quota. Vertex-contiguous => locality-preserving.
std::vector<uint32_t> SegmentAssign(const CsrGraph& g, int num_parts) {
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> owner(n, 0);
  const double quota =
      static_cast<double>(g.num_edges() + n) / num_parts;  // edges + vertices
  double running = 0;
  uint32_t part = 0;
  for (VertexId v = 0; v < n; ++v) {
    owner[v] = part;
    running += g.OutDegree(v) + 1.0;
    if (running >= quota * (part + 1) &&
        part + 1 < static_cast<uint32_t>(num_parts)) {
      ++part;
    }
  }
  return owner;
}

std::vector<uint32_t> RandomAssign(const CsrGraph& g, int num_parts,
                                   uint64_t seed) {
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> owner(n);
  for (VertexId v = 0; v < n; ++v) {
    owner[v] = static_cast<uint32_t>(
        HashMix64(seed * 0x9e3779b97f4a7c15ULL + v) %
        static_cast<uint64_t>(num_parts));
  }
  return owner;
}

}  // namespace

// Defined in partition_metis_like.cc.
std::vector<uint32_t> MetisLikeAssign(const CsrGraph& g, int num_parts,
                                      const PartitionOptions& options);

Result<Partition> PartitionGraph(const CsrGraph& g, int num_parts,
                                 const PartitionOptions& options) {
  if (num_parts < 1) {
    return Status::InvalidArgument("num_parts must be >= 1, got " +
                                   std::to_string(num_parts));
  }
  if (g.num_vertices() == 0) {
    return Status::InvalidArgument("cannot partition an empty graph");
  }

  Partition p;
  p.num_parts = num_parts;
  if (num_parts == 1) {
    p.owner.assign(g.num_vertices(), 0);
  } else {
    switch (options.kind) {
      case PartitionerKind::kSegment:
        p.owner = SegmentAssign(g, num_parts);
        break;
      case PartitionerKind::kRandom:
        p.owner = RandomAssign(g, num_parts, options.seed);
        break;
      case PartitionerKind::kMetisLike:
        p.owner = MetisLikeAssign(g, num_parts, options);
        break;
    }
  }

  RefreshDerivedViews(&p, g);
  return p;
}

void RefreshDerivedViews(Partition* p, const CsrGraph& g) {
  p->part_vertices.assign(p->num_parts, {});
  p->part_out_edges.assign(p->num_parts, 0);
  p->edge_cut = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    p->part_vertices[p->owner[v]].push_back(v);
    p->part_out_edges[p->owner[v]] += g.OutDegree(v);
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (p->owner[u] != p->owner[v]) ++p->edge_cut;
    }
  }
}

}  // namespace gum::graph
