// Synthetic graph generators.
//
// The paper's Table II spans three domains — social networks (skewed degree,
// small diameter), web graphs (skewed + locality, medium diameter) and road
// networks (near-constant degree, very long diameter). The generators below
// produce scaled analogs of each domain:
//   * Rmat           — Graph500-style recursive matrix, social/web skew
//   * ErdosRenyi     — uniform random, used for cost-model training variety
//   * RoadGrid       — 2-D lattice with perturbations, long diameter
//   * SmallWorld     — Watts-Strogatz ring, training variety
// All generators are deterministic in their seed.

#ifndef GUM_GRAPH_GENERATORS_H_
#define GUM_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/types.h"

namespace gum::graph {

struct RmatOptions {
  int scale = 14;          // num_vertices = 2^scale
  double edge_factor = 16; // num_edges = edge_factor * num_vertices
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  bool permute_vertices = true;  // break the id-locality of RMAT
  bool weighted = false;         // uniform integer weights in [1, 64)
  uint64_t seed = 1;
};

// Recursive-matrix (RMAT) generator. With the Graph500 parameters above the
// result has a power-law-ish in-degree distribution (social network analog);
// with a=0.45,b=0.25,c=0.15 and permute_vertices=false the result keeps
// id-locality and deeper hubs (web graph analog).
EdgeList Rmat(const RmatOptions& options);

struct RoadGridOptions {
  uint32_t rows = 256;
  uint32_t cols = 256;
  double keep_prob = 0.97;      // drop a few lattice edges (detours)
  double shortcut_prob = 0.0;   // long-range shortcuts (0 keeps diameter long)
  bool weighted = true;         // road lengths: uniform in [1, 16)
  uint64_t seed = 1;
};

// 2-D lattice road-network analog: ~4 edges/vertex (bidirectional), diameter
// ~ rows + cols. Guaranteed connected via the baseline spanning grid rows.
EdgeList RoadGrid(const RoadGridOptions& options);

struct WebCrawlOptions {
  int scale = 14;            // total vertices = 2^scale
  double edge_factor = 12;   // edges per CORE vertex
  double tendril_fraction = 0.4;  // fraction of vertices living in chains
  uint32_t avg_chain_length = 64;
  double a = 0.45, b = 0.25, c = 0.15;  // RMAT parameters of the core
  bool weighted = false;
  uint64_t seed = 1;
};

// Web-graph analog: a locality-preserving RMAT core (the big strongly
// connected component of a crawl) plus deep tendril chains of consecutive
// ids hanging off random core vertices (deep page hierarchies). The chains
// give the long diameter that distinguishes webbase-class graphs
// (Table II: diameter 379) from social networks and produce the paper's
// long-tail iterations.
EdgeList WebCrawl(const WebCrawlOptions& options);

// Uniform random directed graph with num_edges edges (no self loops).
EdgeList ErdosRenyi(VertexId num_vertices, EdgeId num_edges, bool weighted,
                    uint64_t seed);

// Watts-Strogatz small world: ring of degree 2k, rewired with prob beta.
EdgeList SmallWorld(VertexId num_vertices, uint32_t k, double beta,
                    uint64_t seed);

}  // namespace gum::graph

#endif  // GUM_GRAPH_GENERATORS_H_
