# Empty dependencies file for gum_solver_sim_tests.
# This may be replaced when dependencies are built.
