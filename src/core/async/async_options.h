// Knobs for the asynchronous priority-driven engine mode (DESIGN.md §15).
//
// EngineMode selects between the classic BSP superstep loop (kBsp, the
// paper's engine) and the async worklist driver under src/core/async/
// (kAsync). AsyncConfig carries every async-only knob: the delta-stepping
// bucket width, the worklist flavor (plain buckets vs the stealing
// multi-queue "SMQ" family), the SMQ steal_prob / steal_batch_size pair,
// the priority-range steal thresholds, and the seed that makes an async
// run byte-reproducible (DESIGN.md §7: async relaxes bit-identity across
// thread counts to seed-determinism).

#ifndef GUM_CORE_ASYNC_ASYNC_OPTIONS_H_
#define GUM_CORE_ASYNC_ASYNC_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace gum::core {

enum class EngineMode {
  kBsp,    // barriered supersteps (the default; byte-identical to pre-mode)
  kAsync,  // priority worklists + async message drain, no global barriers
};

const char* EngineModeName(EngineMode mode);
Result<EngineMode> ParseEngineMode(const std::string& name);

enum class AsyncWorklistKind {
  kBuckets,  // delta-stepping buckets, strictly lowest-bucket-first
  kSmq,      // stealing multi-queue: sampled min-heaps with batch stealing
};

const char* AsyncWorklistKindName(AsyncWorklistKind kind);
Result<AsyncWorklistKind> ParseAsyncWorklistKind(const std::string& name);

struct AsyncConfig {
  // Bucket width for priority -> bucket mapping (also the SMQ histogram
  // granularity). <= 0 picks an app-aware default: 2x the average edge
  // weight for distance-priority apps, a residual-scaled width for
  // delta-PageRank (AsyncDefaultDelta hook).
  double delta = 0.0;

  AsyncWorklistKind worklist = AsyncWorklistKind::kBuckets;

  // --- SMQ knobs (the StealProb / stealBatchSize pair) ---
  int smq_queues = 4;            // internal queues per device worklist
  double steal_prob = 0.5;       // chance a pop also rebalances two queues
  int steal_batch_size = 8;      // entries moved per intra-worklist steal

  // Seed behind every stochastic choice (SMQ queue sampling/stealing).
  // Fixing it makes the whole run byte-reproducible for any thread and
  // shard count; changing it explores a different (still convergent)
  // execution order.
  uint64_t seed = 1;

  // --- priority-range stealing (the async generalization of FSteal) ---
  // An idle device steals a contiguous span of its victim's highest
  // (coldest) buckets instead of a frontier fragment. Disabled spans are
  // simply never extracted; correctness never depends on stealing.
  bool enable_range_steal = true;
  // A victim must hold at least this many live entries to be robbed.
  int range_steal_min_victim = 512;
  // Fraction of the victim's entries the thief aims to take (from the
  // high-priority tail downward, whole buckets at a time).
  double range_steal_fraction = 0.5;

  // Per-batch micro-kernel launch + bookkeeping charge (no barrier).
  double batch_overhead_us = 12.0;
  // Max worklist entries popped per batch.
  int max_batch = 4096;

  // --- safety rails ---
  long long max_batches = 20'000'000;
};

// Strict range validation for user-provided knobs (the CLI rejects a bad
// value loudly before anything runs). delta == 0 means "auto"; every other
// knob must sit in its documented range.
Status ValidateAsyncConfig(const AsyncConfig& config);

}  // namespace gum::core

#endif  // GUM_CORE_ASYNC_ASYNC_OPTIONS_H_
