# Empty compiler generated dependencies file for fig8_fsteal_balance.
# This may be replaced when dependencies are built.
