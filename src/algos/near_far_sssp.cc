#include "algos/near_far_sssp.h"

#include <algorithm>
#include <limits>

#include "common/bitmap.h"
#include "common/logging.h"
#include "core/async/worklist.h"
#include "graph/frontier_features.h"
#include "sim/kernel_cost.h"
#include "sim/timeline.h"

namespace gum::algos {

namespace {
using core::PriorityWorklist;
using core::WorklistEntry;
using graph::VertexId;
constexpr float kUnreached = std::numeric_limits<float>::max();
}  // namespace

// Near-far is the degenerate delta-stepping configuration of the shared
// PriorityWorklist (core/async/worklist.h): the NEAR pile is every bucket
// at or below the current band, the FAR pile is everything above it, and
// a band switch is one step of the band cursor. The bespoke two-vector
// driver loop this file used to carry lives in the worklist now; entries
// are lazy (a vertex is pushed again whenever its distance improves) and a
// dirty bitmap drops the superseded ones at pop time.
core::RunResult NearFarSssp(const graph::CsrGraph& g,
                            const graph::Partition& partition,
                            const sim::Topology& topology,
                            VertexId source, const NearFarOptions& options,
                            std::vector<float>* dist_out,
                            NearFarStats* stats_out) {
  const int n = partition.num_parts;
  const VertexId num_v = g.num_vertices();
  const sim::DeviceParams& dev = options.device;
  const double p_ns = dev.sync_per_peer_us * 1000.0;
  (void)topology;

  double delta = options.delta;
  if (delta <= 0.0) {
    // 2x average edge weight, the usual heuristic.
    double total_weight = 0;
    for (VertexId u = 0; u < num_v; ++u) {
      const auto weights = g.OutWeights(u);
      if (weights.empty()) {
        total_weight += g.OutDegree(u);
      } else {
        for (float w : weights) total_weight += w;
      }
    }
    delta = g.num_edges() > 0 ? 2.0 * total_weight / g.num_edges() : 1.0;
  }

  core::RunResult result;
  result.timeline = sim::Timeline(n);
  NearFarStats stats;

  std::vector<float> dist(num_v, kUnreached);
  dist[source] = 0.0f;
  PriorityWorklist worklist(core::AsyncWorklistKind::kBuckets, delta,
                            /*smq_queues=*/0, /*steal_prob=*/0.0,
                            /*steal_batch_size=*/0, /*seed=*/1);
  Bitmap dirty(num_v);
  dirty.Set(source);
  worklist.Push(source, 0.0);

  int64_t band = 0;  // NEAR = buckets <= band, FAR = the rest
  int step = 0;
  std::vector<WorklistEntry> pile;
  std::vector<std::vector<VertexId>> by_owner(n);

  while (!worklist.empty()) {
    pile.clear();
    worklist.Pop(band, std::numeric_limits<int>::max(), &pile);
    for (auto& owned : by_owner) owned.clear();
    size_t live = 0;
    for (const WorklistEntry& entry : pile) {
      if (!dirty.Test(entry.vertex)) continue;  // superseded push
      dirty.Reset(entry.vertex);
      by_owner[partition.owner[entry.vertex]].push_back(entry.vertex);
      ++live;
    }

    if (live == 0) {
      // Band switch: everything left sits in the far piles. The split is
      // one compaction kernel over the far pile on every device (the pile
      // is distributed by ownership).
      if (worklist.empty()) break;
      ++band;
      stats.far_pile_moves += worklist.size();
      for (int d = 0; d < n; ++d) {
        result.timeline.Add(step, d, sim::TimeCategory::kOverhead,
                            (dev.kernel_launch_us * 1000.0 +
                             worklist.size() / n * 2.0) /
                                1e6);
      }
      continue;  // next band (possible with gaps)
    }

    for (int d = 0; d < n; ++d) {
      if (by_owner[d].empty()) {
        if (n > 1) {
          result.timeline.Add(step, d, sim::TimeCategory::kOverhead,
                              p_ns * n / 1e6);
        }
        continue;
      }
      uint64_t relaxed = 0;
      for (const VertexId u : by_owner[d]) {
        const auto neighbors = g.OutNeighbors(u);
        const auto weights = g.OutWeights(u);
        for (size_t e = 0; e < neighbors.size(); ++e) {
          const VertexId v = neighbors[e];
          const float w = weights.empty() ? 1.0f : weights[e];
          const float nd = dist[u] + w;
          if (nd < dist[v]) {
            dist[v] = nd;
            dirty.Set(v);
            worklist.Push(v, nd);
          }
          ++relaxed;
        }
      }
      stats.relaxations += relaxed;
      const auto features = graph::ExtractFrontierFeatures(g, by_owner[d]);
      result.timeline.Add(step, d, sim::TimeCategory::kCompute,
                          static_cast<double>(relaxed) *
                              sim::TrueEdgeCostNs(features, dev) / 1e6);
      result.timeline.Add(
          step, d, sim::TimeCategory::kOverhead,
          (options.kernels_per_band * dev.kernel_launch_us * 1000.0 +
           p_ns * n) /
              1e6);
      result.edges_processed += relaxed;
    }
    result.total_ms += result.timeline.IterationWall(step);
    ++step;
    GUM_CHECK(step < 10 * 1000 * 1000) << "near-far failed to converge";
  }

  stats.bands = static_cast<int>(band) + 1;
  result.iterations = step;
  if (dist_out != nullptr) *dist_out = std::move(dist);
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace gum::algos
