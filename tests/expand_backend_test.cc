// Pluggable expand backends (core/expand/, DESIGN.md §12): every backend —
// frontier scatter, SpMV push/pull, and the auto density heuristic — must
// produce byte-identical vertex values for every host-thread and message-
// shard count, on every bundled algorithm. The suite lives in the parallel
// test binary so the TSan CI job watches the pull gather's shard
// parallelism and the payload pre-pass for races.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "algos/apps.h"
#include "core/engine.h"
#include "core/expand/expand_backend.h"
#include "core/vertex_state.h"
#include "tests/test_util.h"

namespace gum::core {
namespace {

using algos::BfsApp;
using algos::DeltaPageRankApp;
using algos::PageRankApp;
using algos::SsspApp;
using algos::WccApp;
using graph::VertexId;
using test::MakePartition;
using test::MaxDegreeSource;
using test::RoadGraph;
using test::SocialGraph;
using test::SocialGraphSym;
using test::TestEngineOptions;
using test::Topo;

template <typename App>
std::vector<typename App::Value> RunValues(const graph::CsrGraph& g,
                                           const graph::Partition& part,
                                           App app, ExpandBackendKind backend,
                                           int threads, int shards,
                                           RunResult* result_out = nullptr) {
  EngineOptions opt = TestEngineOptions();
  opt.expand_backend = backend;
  opt.num_host_threads = threads;
  opt.num_msg_shards = shards;
  GumEngine<App> engine(&g, part, Topo(part.num_parts), opt);
  std::vector<typename App::Value> values;
  RunResult result = engine.Run(app, &values);
  if (result_out != nullptr) *result_out = result;
  return values;
}

// Scatter at {threads=1, shards=1} is the reference: every backend at every
// point of the {1,2,4,8} threads x {1,4} shards matrix must match it bit
// for bit.
template <typename App>
void ExpectBackendMatrixIdentical(const graph::CsrGraph& g,
                                  const graph::Partition& part, App app) {
  const auto reference =
      RunValues(g, part, app, ExpandBackendKind::kScatter, 1, 1);
  for (const auto backend : {ExpandBackendKind::kScatter,
                             ExpandBackendKind::kSpmv,
                             ExpandBackendKind::kAuto}) {
    for (const int threads : {1, 2, 4, 8}) {
      for (const int shards : {1, 4}) {
        const auto values = RunValues(g, part, app, backend, threads, shards);
        EXPECT_EQ(values, reference)
            << "backend=" << ExpandBackendKindName(backend)
            << " threads=" << threads << " shards=" << shards;
      }
    }
  }
}

TEST(ExpandBackendTest, BfsByteIdenticalAcrossBackends) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 4);
  BfsApp app;
  app.source = MaxDegreeSource(g);
  ExpectBackendMatrixIdentical(g, part, app);
}

TEST(ExpandBackendTest, SsspByteIdenticalAcrossBackends) {
  const auto g = RoadGraph();
  const auto part = MakePartition(g, 4);
  SsspApp app;
  app.source = 0;
  ExpectBackendMatrixIdentical(g, part, app);
}

TEST(ExpandBackendTest, PageRankByteIdenticalAcrossBackends) {
  // Dense, every vertex active, non-associative double sums: the case the
  // canonical pull order (owner fragment asc, source vertex asc) exists
  // for. Bit-exact or nothing.
  const auto g = SocialGraph(9, 5);
  const auto part = MakePartition(g, 4);
  PageRankApp app;
  app.num_vertices = g.num_vertices();
  app.rounds = 10;
  ExpectBackendMatrixIdentical(g, part, app);
}

TEST(ExpandBackendTest, WccByteIdenticalAcrossBackends) {
  const auto g = SocialGraphSym();
  const auto part = MakePartition(g, 4);
  WccApp app;
  ExpectBackendMatrixIdentical(g, part, app);
}

TEST(ExpandBackendTest, DeltaPageRankUsesScatterFallbackPath) {
  // DeltaPageRank has no CombineAll hook (its Scatter suppresses small
  // residuals), so the pull gather runs the optional Scatter/Combine
  // fallback — still byte-identical.
  const auto g = SocialGraph(9, 5);
  const auto part = MakePartition(g, 4);
  DeltaPageRankApp app;
  app.num_vertices = g.num_vertices();
  const auto reference =
      RunValues(g, part, app, ExpandBackendKind::kScatter, 1, 1);
  for (const int threads : {1, 4}) {
    const auto values =
        RunValues(g, part, app, ExpandBackendKind::kSpmv, threads, 4);
    ASSERT_EQ(values.size(), reference.size());
    for (size_t v = 0; v < values.size(); ++v) {
      EXPECT_EQ(values[v].rank, reference[v].rank)
          << "threads=" << threads << " v=" << v;
      EXPECT_EQ(values[v].residual, reference[v].residual)
          << "threads=" << threads << " v=" << v;
    }
  }
}

TEST(ExpandBackendTest, EightDeviceMatrixWithStealingActive) {
  // 8 fragments on the full hybrid cube mesh: scatter iterations steal,
  // spmv iterations run the identity plan — values must agree anyway.
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 8);
  BfsApp app;
  app.source = MaxDegreeSource(g);
  ExpectBackendMatrixIdentical(g, part, app);
}

// --- mode selection (the auto heuristic) ---

TEST(ExpandBackendTest, SelectExpandModeThresholds) {
  SpmvConfig cfg;  // density_threshold = 0.05
  // Scatter kind never switches.
  EXPECT_EQ(SelectExpandMode(ExpandBackendKind::kScatter, 1e9, 1e9, cfg),
            ExpandMode::kScatter);
  // Spmv kind: dense -> pull, sparse -> push.
  EXPECT_EQ(SelectExpandMode(ExpandBackendKind::kSpmv, 50.0, 1000.0, cfg),
            ExpandMode::kSpmvPull);
  EXPECT_EQ(SelectExpandMode(ExpandBackendKind::kSpmv, 49.0, 1000.0, cfg),
            ExpandMode::kSpmvPush);
  // Auto: dense -> pull, sparse -> scatter (keeps frontier stealing).
  EXPECT_EQ(SelectExpandMode(ExpandBackendKind::kAuto, 50.0, 1000.0, cfg),
            ExpandMode::kSpmvPull);
  EXPECT_EQ(SelectExpandMode(ExpandBackendKind::kAuto, 49.0, 1000.0, cfg),
            ExpandMode::kScatter);
  // The switch point moves with the threshold.
  cfg.density_threshold = 0.5;
  EXPECT_EQ(SelectExpandMode(ExpandBackendKind::kSpmv, 499.0, 1000.0, cfg),
            ExpandMode::kSpmvPush);
  EXPECT_EQ(SelectExpandMode(ExpandBackendKind::kAuto, 500.0, 1000.0, cfg),
            ExpandMode::kSpmvPull);
}

TEST(ExpandBackendTest, AutoSwitchPointIsDeterministicAcrossThreads) {
  // The heuristic's inputs (census loads, total edges) are thread-
  // independent, so auto runs pick the same mode sequence — observable as
  // identical iteration counts, simulated time, and values.
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 4);
  BfsApp app;
  app.source = MaxDegreeSource(g);
  RunResult reference_result;
  const auto reference = RunValues(g, part, app, ExpandBackendKind::kAuto, 1,
                                   1, &reference_result);
  for (const int threads : {2, 4, 8}) {
    RunResult result;
    const auto values = RunValues(g, part, app, ExpandBackendKind::kAuto,
                                  threads, 4, &result);
    EXPECT_EQ(values, reference) << "threads=" << threads;
    EXPECT_EQ(result.iterations, reference_result.iterations);
    EXPECT_DOUBLE_EQ(result.total_ms, reference_result.total_ms);
    EXPECT_EQ(result.edges_processed, reference_result.edges_processed);
    EXPECT_EQ(result.messages_sent, reference_result.messages_sent);
  }
}

TEST(ExpandBackendTest, ParseExpandBackendKind) {
  ExpandBackendKind kind = ExpandBackendKind::kAuto;
  EXPECT_TRUE(ParseExpandBackendKind("scatter", &kind));
  EXPECT_EQ(kind, ExpandBackendKind::kScatter);
  EXPECT_TRUE(ParseExpandBackendKind("spmv", &kind));
  EXPECT_EQ(kind, ExpandBackendKind::kSpmv);
  EXPECT_TRUE(ParseExpandBackendKind("auto", &kind));
  EXPECT_EQ(kind, ExpandBackendKind::kAuto);
  EXPECT_FALSE(ParseExpandBackendKind("pull", &kind));
  EXPECT_EQ(kind, ExpandBackendKind::kAuto);  // untouched on failure
}

// --- SoA frontier storage ---

TEST(ExpandBackendTest, FrontierSoARoundTripsOldLayout) {
  const std::vector<std::vector<VertexId>> old_layout = {
      {0, 3, 7}, {}, {1, 2, 9}, {5}};
  FrontierSoA soa;
  soa.Assign(old_layout);
  EXPECT_EQ(soa.num_fragments(), 4);
  EXPECT_EQ(soa.TotalSize(), 7u);
  EXPECT_EQ(soa.FragmentSize(0), 3u);
  EXPECT_EQ(soa.FragmentSize(1), 0u);
  ASSERT_EQ(soa.Fragment(2).size(), 3u);
  EXPECT_EQ(soa.Fragment(2)[1], 2u);
  EXPECT_EQ(soa.ToVectors(), old_layout);
  // Flat() is the fragment-major concatenation.
  const std::vector<VertexId> flat(soa.Flat().begin(), soa.Flat().end());
  EXPECT_EQ(flat, (std::vector<VertexId>{0, 3, 7, 1, 2, 9, 5}));
}

TEST(ExpandBackendTest, FrontierSoAResetKeepsCapacityDropsContents) {
  FrontierSoA soa;
  soa.Assign({{1, 2, 3}, {4, 5}});
  soa.Reset(3);
  EXPECT_EQ(soa.num_fragments(), 3);
  EXPECT_EQ(soa.TotalSize(), 0u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(soa.FragmentSize(i), 0u);
}

TEST(ExpandBackendTest, FrontierSoABuildByOwnerMatchesPredicate) {
  const auto g = SocialGraph(8);
  const auto part = MakePartition(g, 4);
  FrontierSoA soa;
  soa.BuildByOwner(g.num_vertices(), part.owner, 4,
                   [](VertexId v) { return v % 3 == 0; });
  std::vector<std::vector<VertexId>> expected(4);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v % 3 == 0) expected[part.owner[v]].push_back(v);
  }
  EXPECT_EQ(soa.ToVectors(), expected);  // ascending per fragment
}

TEST(ExpandBackendTest, FrontierSoAAssignFromShardSegments) {
  // segments[shard][fragment]; shards are ascending vertex ranges, so
  // concatenating a fragment's segments in shard order stays ascending.
  const std::vector<std::vector<std::vector<VertexId>>> segments = {
      {{0, 2}, {1}},
      {{4}, {5, 7}},
      {{}, {9}},
  };
  FrontierSoA soa;
  soa.AssignFromShardSegments(segments, 3, 2);
  EXPECT_EQ(soa.ToVectors(), (std::vector<std::vector<VertexId>>{
                                 {0, 2, 4}, {1, 5, 7, 9}}));
}

}  // namespace
}  // namespace gum::core
