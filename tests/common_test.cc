#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/bitmap.h"
#include "common/parallel_primitives.h"
#include "common/random.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace gum {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad n");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, CopyPreservesError) {
  Status s = Status::Infeasible("no solution");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kInfeasible);
  EXPECT_EQ(t.message(), "no solution");
  EXPECT_EQ(s.message(), "no solution");  // source intact
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnbounded); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("x"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  GUM_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(77);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

// ---------- Bitmap ----------

TEST(BitmapTest, SetTestReset) {
  Bitmap bm(200);
  EXPECT_FALSE(bm.Test(63));
  bm.Set(63);
  bm.Set(64);
  bm.Set(199);
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(199));
  EXPECT_EQ(bm.Count(), 3u);
  bm.Reset(64);
  EXPECT_FALSE(bm.Test(64));
  EXPECT_EQ(bm.Count(), 2u);
}

TEST(BitmapTest, TestAndSetReportsFirstSet) {
  Bitmap bm(10);
  EXPECT_TRUE(bm.TestAndSet(3));
  EXPECT_FALSE(bm.TestAndSet(3));
  EXPECT_TRUE(bm.Test(3));
}

TEST(BitmapTest, ForEachSetAscendingOrder) {
  Bitmap bm(300);
  const std::set<size_t> expected = {0, 1, 63, 64, 65, 128, 299};
  for (size_t i : expected) bm.Set(i);
  std::vector<size_t> seen;
  bm.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(std::set<size_t>(seen.begin(), seen.end()), expected);
}

TEST(BitmapTest, ForEachSetInRangeMatchesFilteredFullScan) {
  Bitmap bm(300);
  for (size_t i : {0u, 1u, 62u, 63u, 64u, 65u, 127u, 128u, 200u, 299u}) {
    bm.Set(i);
  }
  // Aligned and mid-word boundaries, empty and past-the-end ranges.
  const std::pair<size_t, size_t> ranges[] = {
      {0, 300}, {0, 64}, {64, 128}, {1, 63}, {63, 65},
      {65, 200}, {128, 1000}, {10, 10}, {299, 300}};
  for (const auto& [begin, end] : ranges) {
    std::vector<size_t> expected;
    bm.ForEachSet([&](size_t i) {
      if (i >= begin && i < end) expected.push_back(i);
    });
    std::vector<size_t> seen;
    bm.ForEachSetInRange(begin, end, [&](size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, expected) << "range [" << begin << ", " << end << ")";
  }
}

TEST(BitmapTest, ClearAndAny) {
  Bitmap bm(100);
  EXPECT_FALSE(bm.Any());
  bm.Set(42);
  EXPECT_TRUE(bm.Any());
  bm.Clear();
  EXPECT_FALSE(bm.Any());
  EXPECT_EQ(bm.Count(), 0u);
}

// ---------- prefix sums / sorted search ----------

TEST(PrimitivesTest, ExclusivePrefixSum) {
  const std::vector<int> in = {3, 0, 5, 2};
  const auto out = ExclusivePrefixSum(in);
  EXPECT_EQ(out, (std::vector<int>{0, 3, 3, 8, 10}));
}

TEST(PrimitivesTest, InclusivePrefixSum) {
  const std::vector<int> in = {3, 0, 5, 2};
  EXPECT_EQ(InclusivePrefixSum(in), (std::vector<int>{3, 3, 8, 10}));
}

TEST(PrimitivesTest, EmptyPrefixSums) {
  EXPECT_EQ(ExclusivePrefixSum(std::vector<int>{}),
            (std::vector<int>{0}));
  EXPECT_TRUE(InclusivePrefixSum(std::vector<int>{}).empty());
}

TEST(PrimitivesTest, SortedSearchLowerBounds) {
  const std::vector<int> haystack = {2, 4, 4, 8};
  const std::vector<int> needles = {0, 2, 3, 4, 5, 8, 9};
  EXPECT_EQ(SortedSearchLower(haystack, needles),
            (std::vector<size_t>{0, 0, 1, 1, 3, 3, 4}));
}

// ---------- table printer ----------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"x", "1"});
  tp.AddRow({"longer", "2.5"});
  std::ostringstream os;
  tp.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 2.5   |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(10.0, 0), "10");
}

}  // namespace
}  // namespace gum
