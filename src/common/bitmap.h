// Fixed-size dense bitmap.
//
// Used for frontier membership, hub-vertex cache marks (paper Example 6),
// and visited sets. Word-at-a-time Count()/Clear() keep the per-iteration
// bookkeeping cheap.

#ifndef GUM_COMMON_BITMAP_H_
#define GUM_COMMON_BITMAP_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gum {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t size) { Resize(size); }

  void Resize(size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  size_t size() const { return size_; }

  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void Reset(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  // Sets bit i; returns true iff it was previously clear.
  bool TestAndSet(size_t i) {
    const uint64_t mask = 1ULL << (i & 63);
    uint64_t& word = words_[i >> 6];
    const bool was_clear = (word & mask) == 0;
    word |= mask;
    return was_clear;
  }

  void Clear() { words_.assign(words_.size(), 0); }

  size_t Count() const {
    size_t total = 0;
    for (uint64_t word : words_) total += std::popcount(word);
    return total;
  }

  bool Any() const {
    for (uint64_t word : words_) {
      if (word != 0) return true;
    }
    return false;
  }

  // Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  // Calls fn(index) for every set bit in [begin, end), in increasing index
  // order. end is clamped to size(); the range may start or end mid-word.
  template <typename Fn>
  void ForEachSetInRange(size_t begin, size_t end, Fn&& fn) const {
    end = std::min(end, size_);
    if (begin >= end) return;
    const size_t first_word = begin >> 6;
    const size_t last_word = (end - 1) >> 6;
    for (size_t w = first_word; w <= last_word; ++w) {
      uint64_t word = words_[w];
      if (w == first_word && (begin & 63) != 0) {
        word &= ~uint64_t{0} << (begin & 63);
      }
      if (w == last_word && (end & 63) != 0) {
        word &= (uint64_t{1} << (end & 63)) - 1;
      }
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace gum

#endif  // GUM_COMMON_BITMAP_H_
