#include <gtest/gtest.h>

#include <cmath>

#include "algos/apps.h"
#include "algos/reference.h"
#include "baselines/groute_cc.h"
#include "baselines/groute_like.h"
#include "baselines/gunrock_like.h"
#include "core/engine.h"
#include "tests/test_util.h"

namespace gum::baselines {
namespace {

using algos::BfsApp;
using algos::DeltaPageRankApp;
using algos::PageRankApp;
using algos::SsspApp;
using algos::WccApp;
using graph::VertexId;
using test::MakePartition;
using test::RoadGraph;
using test::SocialGraph;
using test::SocialGraphSym;
using test::Topo;

// ---------- Gunrock-like ----------

TEST(GunrockLikeTest, BfsMatchesReference) {
  const auto g = SocialGraph();
  GunrockLikeEngine<BfsApp> engine(&g, MakePartition(g, 4), Topo(4), {});
  BfsApp app;
  app.source = 1;
  std::vector<uint32_t> depths;
  engine.Run(app, &depths);
  EXPECT_EQ(depths, algos::ref::Bfs(g, 1));
}

TEST(GunrockLikeTest, SsspMatchesReference) {
  const auto g = SocialGraph(10, 4, /*weighted=*/true);
  GunrockLikeEngine<SsspApp> engine(&g, MakePartition(g, 8), Topo(8), {});
  SsspApp app;
  app.source = 3;
  std::vector<float> dist;
  engine.Run(app, &dist);
  const auto expected = algos::ref::Sssp(g, 3);
  for (size_t v = 0; v < dist.size(); ++v) EXPECT_EQ(dist[v], expected[v]);
}

TEST(GunrockLikeTest, PageRankMatchesReference) {
  const auto g = SocialGraph(9, 5);
  GunrockLikeEngine<PageRankApp> engine(&g, MakePartition(g, 4), Topo(4),
                                        {});
  PageRankApp app;
  app.num_vertices = g.num_vertices();
  app.rounds = 10;
  std::vector<double> rank;
  engine.Run(app, &rank);
  const auto expected = algos::ref::PageRank(g, 0.85, 10);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(rank[v], expected[v], 1e-9);
  }
}

TEST(GunrockLikeTest, SingleGpuBoostApplies) {
  const auto g = SocialGraph(10, 6);
  BfsApp app;
  app.source = 0;
  GunrockOptions boosted;
  boosted.single_gpu_compute_factor = 0.5;
  GunrockOptions unboosted;
  unboosted.single_gpu_compute_factor = 1.0;
  const auto r_boost =
      GunrockLikeEngine<BfsApp>(&g, MakePartition(g, 1), Topo(1), boosted)
          .Run(app);
  app.source = 0;
  const auto r_plain =
      GunrockLikeEngine<BfsApp>(&g, MakePartition(g, 1), Topo(1), unboosted)
          .Run(app);
  EXPECT_LT(r_boost.ComputeMs(), r_plain.ComputeMs());
}

TEST(GunrockLikeTest, SyncOverheadScalesWithDevices) {
  // Same graph and algorithm; overhead per iteration grows with n.
  const auto g = RoadGraph(16);
  BfsApp app;
  app.source = 0;
  const auto r2 =
      GunrockLikeEngine<BfsApp>(&g, MakePartition(g, 2), Topo(2), {})
          .Run(app);
  app.source = 0;
  const auto r8 =
      GunrockLikeEngine<BfsApp>(&g, MakePartition(g, 8), Topo(8), {})
          .Run(app);
  EXPECT_GT(r8.OverheadMs() / r8.iterations,
            r2.OverheadMs() / r2.iterations);
}


TEST(GunrockLikeTest, DeltaPageRankConverges) {
  const auto g = SocialGraph(9, 91);
  GunrockLikeEngine<DeltaPageRankApp> engine(&g, MakePartition(g, 4),
                                             Topo(4), {});
  DeltaPageRankApp app;
  app.num_vertices = g.num_vertices();
  app.epsilon = 1e-12;
  std::vector<DeltaPageRankApp::State> state;
  engine.Run(app, &state);
  const auto expected = algos::ref::PageRank(g, 0.85, 100);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(state[v].rank, expected[v], 1e-6);
  }
}

// ---------- Groute-like ----------

TEST(GrouteLikeTest, BfsConvergesToReference) {
  const auto g = SocialGraph();
  GrouteLikeEngine<BfsApp> engine(&g, MakePartition(g, 4), {});
  BfsApp app;
  app.source = 1;
  std::vector<uint32_t> depths;
  engine.Run(app, &depths);
  EXPECT_EQ(depths, algos::ref::Bfs(g, 1));
}

TEST(GrouteLikeTest, SsspConvergesToReference) {
  const auto g = SocialGraph(10, 4, /*weighted=*/true);
  GrouteLikeEngine<SsspApp> engine(&g, MakePartition(g, 3), {});
  SsspApp app;
  app.source = 3;
  std::vector<float> dist;
  engine.Run(app, &dist);
  const auto expected = algos::ref::Sssp(g, 3);
  for (size_t v = 0; v < dist.size(); ++v) EXPECT_EQ(dist[v], expected[v]);
}

TEST(GrouteLikeTest, WccConvergesToReference) {
  const auto g = SocialGraphSym(9, 4);
  GrouteLikeEngine<WccApp> engine(&g, MakePartition(g, 4), {});
  WccApp app;
  std::vector<VertexId> labels;
  engine.Run(app, &labels);
  EXPECT_EQ(labels, algos::ref::Wcc(g));
}

TEST(GrouteLikeTest, DeltaPageRankConverges) {
  const auto g = SocialGraph(9, 5);
  GrouteLikeEngine<DeltaPageRankApp> engine(&g, MakePartition(g, 2), {});
  DeltaPageRankApp app;
  app.num_vertices = g.num_vertices();
  app.epsilon = 1e-12;
  std::vector<DeltaPageRankApp::State> state;
  engine.Run(app, &state);
  const auto expected = algos::ref::PageRank(g, 0.85, 100);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(state[v].rank, expected[v], 1e-6);
  }
}

TEST(GrouteLikeTest, ReportsPositiveTime) {
  const auto g = SocialGraph(9, 5);
  GrouteLikeEngine<BfsApp> engine(&g, MakePartition(g, 4), {});
  BfsApp app;
  // RMAT leaves some vertices isolated; pick a source with out-edges.
  app.source = 0;
  while (g.OutDegree(app.source) == 0) ++app.source;
  const auto result = engine.Run(app);
  EXPECT_GT(result.total_ms, 0.0);
  EXPECT_GT(result.iterations, 0);  // batch count
  EXPECT_GT(result.edges_processed, 0u);
}

TEST(GrouteLikeTest, OddDeviceCountSlowerPerMessage) {
  // Paper Fig. 7: odd GPU counts cannot form a clean NVLink ring. Compare
  // n=5 vs n=4 wall time on the same communication-heavy workload: 5 devices
  // should not bring a proportional improvement.
  const auto g = SocialGraph(11, 8);
  BfsApp app;
  app.source = 0;
  const auto r4 =
      GrouteLikeEngine<BfsApp>(&g, MakePartition(g, 4), {}).Run(app);
  app.source = 0;
  const auto r5 =
      GrouteLikeEngine<BfsApp>(&g, MakePartition(g, 5), {}).Run(app);
  EXPECT_GT(r5.total_ms, 0.6 * r4.total_ms)
      << "odd ring should not scale cleanly";
}


// ---------- Groute CC (dedicated connected-components engine) ----------

TEST(GrouteCcTest, MatchesUnionFindReference) {
  const auto g = SocialGraphSym(10, 23);
  GrouteCcEngine engine(&g, MakePartition(g, 8), {});
  std::vector<VertexId> labels;
  engine.Run(&labels);
  EXPECT_EQ(labels, algos::ref::Wcc(g));
}

TEST(GrouteCcTest, RoadNetworkConvergesInFewRounds) {
  // The whole point of the algorithm: rounds ~ log |V|, independent of the
  // ~56-hop diameter of this grid.
  const auto g = RoadGraph(28, 24);
  GrouteCcEngine engine(&g, MakePartition(g, 8), {});
  std::vector<VertexId> labels;
  const auto result = engine.Run(&labels);
  EXPECT_EQ(labels, algos::ref::Wcc(g));
  EXPECT_LE(result.iterations, 12) << "should be diameter-independent";
  EXPECT_GT(result.total_ms, 0.0);
}

TEST(GrouteCcTest, FasterThanLabelPropagationOnRoadNetworks) {
  const auto g = RoadGraph(28, 25);
  const auto part = MakePartition(g, 8);
  std::vector<VertexId> cc_labels, lp_labels;
  const auto cc = GrouteCcEngine(&g, part, {}).Run(&cc_labels);
  WccApp app;
  const auto lp =
      GrouteLikeEngine<WccApp>(&g, part, {}).Run(app, &lp_labels);
  EXPECT_EQ(cc_labels, lp_labels);
  EXPECT_LT(cc.total_ms, lp.total_ms);
}

TEST(GrouteCcTest, SingleDevice) {
  const auto g = SocialGraphSym(8, 26);
  GrouteCcEngine engine(&g, MakePartition(g, 1), {});
  std::vector<VertexId> labels;
  engine.Run(&labels);
  EXPECT_EQ(labels, algos::ref::Wcc(g));
}

TEST(GrouteCcTest, DisconnectedGraph) {
  // Two separate triangles.
  graph::EdgeList list;
  list.num_vertices = 6;
  list.edges = {{0, 1, 1}, {1, 2, 1}, {2, 0, 1},
                {3, 4, 1}, {4, 5, 1}, {5, 3, 1}};
  graph::CsrBuildOptions sym;
  sym.symmetrize = true;
  auto g = graph::CsrGraph::FromEdgeList(list, sym);
  ASSERT_TRUE(g.ok());
  GrouteCcEngine engine(&*g, MakePartition(*g, 2), {});
  std::vector<VertexId> labels;
  engine.Run(&labels);
  EXPECT_EQ(labels, (std::vector<VertexId>{0, 0, 0, 3, 3, 3}));
}

// ---------- Cross-engine agreement ----------

TEST(CrossEngineTest, AllThreeEnginesAgreeOnBfs) {
  const auto g = SocialGraph(10, 9);
  const auto part = MakePartition(g, 4);
  BfsApp app;
  std::vector<uint32_t> gum_d, gun_d, gro_d;
  app.source = 5;
  core::GumEngine<BfsApp>(&g, part, Topo(4), test::TestEngineOptions())
      .Run(app, &gum_d);
  app.source = 5;
  GunrockLikeEngine<BfsApp>(&g, part, Topo(4), {}).Run(app, &gun_d);
  app.source = 5;
  GrouteLikeEngine<BfsApp>(&g, part, {}).Run(app, &gro_d);
  EXPECT_EQ(gum_d, gun_d);
  EXPECT_EQ(gum_d, gro_d);
}

}  // namespace
}  // namespace gum::baselines
