#include "core/expand/pull_edges.h"

namespace gum::core {

void PullEdges::Build(const graph::CsrGraph& g,
                      const graph::Partition& partition) {
  const size_t num_v = g.num_vertices();
  offsets.assign(num_v + 1, 0);
  // Counting pass (order-independent): in-degree per destination.
  for (graph::VertexId u = 0; u < num_v; ++u) {
    for (const graph::VertexId v : g.OutNeighbors(u)) {
      ++offsets[static_cast<size_t>(v) + 1];
    }
  }
  for (size_t i = 1; i <= num_v; ++i) offsets[i] += offsets[i - 1];

  // Fill pass in canonical combine order: fragments ascending, vertices
  // ascending within a fragment (part_vertices is ascending), so each
  // destination's in-edge list replays the scatter path's merge order.
  sources.resize(g.num_edges());
  const bool weighted = g.has_weights();
  if (weighted) {
    weights.resize(g.num_edges());
  } else {
    weights.clear();
  }
  std::vector<graph::EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (int i = 0; i < partition.num_parts; ++i) {
    for (const graph::VertexId u : partition.part_vertices[i]) {
      const auto neighbors = g.OutNeighbors(u);
      const auto edge_weights = g.OutWeights(u);
      for (size_t e = 0; e < neighbors.size(); ++e) {
        const graph::VertexId v = neighbors[e];
        const graph::EdgeId slot = cursor[v]++;
        sources[slot] = u;
        if (weighted) weights[slot] = edge_weights[e];
      }
    }
  }
  built = true;
}

}  // namespace gum::core
