// Table IV: the runtime overhead of work stealing (Exp-3/Exp-4).
// SSSP on the uk-2002 and webbase analogs with 2/4/8 vGPUs. For each
// mechanism: Cost = stealing overhead charged to the run (policy
// generation, broadcast, stolen-status copies — simulated) and Ratio =
// time saved by enabling the mechanism / its cost. Host-side decision wall
// time (MILP solve + model inference on this machine) is reported
// separately for reference.

#include <iostream>
#include <vector>

#include "bench/datasets.h"
#include "bench/runner.h"
#include "common/table_printer.h"

using namespace gum;        // NOLINT(build/namespaces)
using namespace gum::bench; // NOLINT(build/namespaces)

namespace {

core::RunResult Run(const DatasetGraphs& data, int devices, bool fsteal,
                    bool osteal) {
  RunConfig config;
  config.system = System::kGum;
  config.algo = Algo::kSssp;
  config.devices = devices;
  // seg partition: pronounced DLB so the FSteal savings are measurable.
  config.partitioner = graph::PartitionerKind::kSegment;
  config.gum.enable_fsteal = fsteal;
  config.gum.enable_osteal = osteal;
  return RunBenchmark(data, config);
}

}  // namespace

int main() {
  std::cout << "=== Table IV: overhead of work stealing — SSSP (Cost in "
               "simulated ms; Ratio = saved / cost) ===\n\n";
  TablePrinter tp({"Graph", "GPUs", "FSteal cost", "FSteal ratio",
                   "FSteal host-ms", "OSteal cost", "OSteal ratio",
                   "OSteal host-ms"});
  for (const std::string abbr : {std::string("U2"), std::string("WB")}) {
    const DatasetGraphs data = BuildDataset(abbr);
    for (int devices : {2, 4, 8}) {
      const core::RunResult none = Run(data, devices, false, false);
      const core::RunResult fs = Run(data, devices, true, false);
      const core::RunResult os = Run(data, devices, false, true);

      const double fs_cost = fs.fsteal_sim_overhead_ms;
      const double fs_saved = none.total_ms - fs.total_ms;
      const double os_cost = os.osteal_sim_overhead_ms;
      const double os_saved = none.total_ms - os.total_ms;

      tp.AddRow({abbr, std::to_string(devices),
                 TablePrinter::Num(fs_cost, 1),
                 fs_cost > 0
                     ? TablePrinter::Num(fs_saved / fs_cost, 0) + "x"
                     : "-",
                 TablePrinter::Num(fs.fsteal_decision_host_ms_total, 1),
                 TablePrinter::Num(os_cost, 1),
                 os_cost > 0
                     ? TablePrinter::Num(os_saved / os_cost, 0) + "x"
                     : "-",
                 TablePrinter::Num(os.osteal_decision_host_ms_total, 1)});
    }
    std::cerr << "done " << abbr << "\n";
  }
  tp.Print(std::cout);
  std::cout << "\nShape check vs paper Table IV: FSteal costs a few ms and "
               "pays back ~20-38x in saved starvation; OSteal costs less "
               "and pays back ~5-32x; both overheads stay small as GPUs "
               "scale.\n";
  return 0;
}
