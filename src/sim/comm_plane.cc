#include "sim/comm_plane.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gum::sim {
namespace {

// Directed-lane id space. Direct NVLink lanes (and the local HBM lane on
// the diagonal) live in [0, n*n); the PCIe/QPI fallback for a pair lives in
// [n*n, 2*n*n) so a sub-PCIe direct link and the PCIe path never share a
// capacity pool.
int DirectLane(int n, int src, int dst) { return src * n + dst; }
int PcieLane(int n, int src, int dst) { return n * n + src * n + dst; }

struct Hop {
  int lane = 0;
  int src = 0;
  int dst = 0;
};

}  // namespace

const char* ContentionModelName(ContentionModel model) {
  switch (model) {
    case ContentionModel::kOff:
      return "off";
    case ContentionModel::kFair:
      return "fair";
  }
  return "unknown";
}

Result<ContentionModel> ParseContentionModel(const std::string& name) {
  if (name == "off") return ContentionModel::kOff;
  if (name == "fair") return ContentionModel::kFair;
  return Status::InvalidArgument("unknown contention model '" + name +
                                 "' (expected off|fair)");
}

CommPlane::CommPlane(Topology topology, ContentionModel model,
                     RoutePolicy policy)
    : topo_(std::move(topology)), model_(model), policy_(policy) {
  const int n = topo_.num_devices();
  link_bytes_.assign(n, std::vector<double>(n, 0.0));
  payload_bytes_.assign(n, std::vector<double>(n, 0.0));
  link_busy_ms_.assign(n, std::vector<double>(n, 0.0));
  lane_busy_until_ms_.assign(static_cast<size_t>(n) * n, 0.0);
}

CommRoute CommPlane::Route(int src, int dst) const {
  CommRoute route;
  route.src = src;
  route.dst = dst;
  route.point_to_point_gbps = LegacyGbps(src, dst);
  if (src == dst) return route;
  const double direct = ScaledDirect(src, dst);
  if (policy_ == RoutePolicy::kDirectOnly) {
    route.via_pcie = direct <= 0.0;
    return route;
  }
  const int n = topo_.num_devices();
  const int transit = faults_active_ ? faulted_transit_[src * n + dst]
                                     : topo_.BestTransit(src, dst);
  if (transit >= 0) {
    route.transit = transit;
  } else if (direct <= 0.0 || direct < Topology::kPcieGBps) {
    // EffectiveBandwidth fell back to PCIe (no direct link, or a direct
    // link slower than the PCIe path).
    route.via_pcie = direct < Topology::kPcieGBps;
  }
  return route;
}

double CommPlane::ScaledDirect(int src, int dst) const {
  const double direct = topo_.DirectBandwidth(src, dst);
  if (!faults_active_ || src == dst) return direct;
  return direct * link_scale_[src * topo_.num_devices() + dst];
}

void CommPlane::SetLinkScale(int a, int b, double scale) {
  const int n = topo_.num_devices();
  GUM_CHECK(a >= 0 && a < n && b >= 0 && b < n && a != b);
  GUM_CHECK(scale >= 0.0 && scale <= 1.0);
  if (link_scale_.empty()) {
    link_scale_.assign(static_cast<size_t>(n) * n, 1.0);
  }
  link_scale_[a * n + b] *= scale;
  link_scale_[b * n + a] *= scale;
  faults_active_ = true;
  RecomputeFaultRouting();
}

void CommPlane::ClearLinkFaults() {
  if (!faults_active_) return;
  std::fill(link_scale_.begin(), link_scale_.end(), 1.0);
  faults_active_ = false;
}

void CommPlane::RecomputeFaultRouting() {
  // The same rule as Topology::FinalizeRouting, over the scaled matrix:
  // best of {scaled direct, PCIe, best 2-hop with both legs alive at
  // kTransitEfficiency of the bottleneck leg}.
  const int n = topo_.num_devices();
  faulted_effective_.assign(static_cast<size_t>(n) * n, 0.0);
  faulted_transit_.assign(static_cast<size_t>(n) * n, -1);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) {
        faulted_effective_[i * n + j] = Topology::kLocalMemoryGBps;
        continue;
      }
      double best = std::max(ScaledDirect(i, j), Topology::kPcieGBps);
      int best_transit = -1;
      for (int k = 0; k < n; ++k) {
        if (k == i || k == j) continue;
        const double leg1 = ScaledDirect(i, k);
        const double leg2 = ScaledDirect(k, j);
        if (leg1 <= 0.0 || leg2 <= 0.0) continue;
        const double routed =
            std::min(leg1, leg2) * Topology::kTransitEfficiency;
        if (routed > best) {
          best = routed;
          best_transit = k;
        }
      }
      faulted_effective_[i * n + j] = best;
      faulted_transit_[i * n + j] = best_transit;
    }
  }
}

CommPlane::Telemetry CommPlane::SnapshotTelemetry() const {
  return Telemetry{link_bytes_, payload_bytes_, link_busy_ms_,
                   lane_busy_until_ms_, multipath_stats_};
}

void CommPlane::RestoreTelemetry(const Telemetry& telemetry) {
  link_bytes_ = telemetry.link_bytes;
  payload_bytes_ = telemetry.payload_bytes;
  link_busy_ms_ = telemetry.link_busy_ms;
  lane_busy_until_ms_ = telemetry.lane_busy_until_ms;
  multipath_stats_ = telemetry.multipath;
}

TransferPlan CommPlane::PlanBulkTransfer(int src, int dst,
                                         double bytes) const {
  const int n = topo_.num_devices();
  TransferPlan plan = TransferPlanner::Build(
      src, dst, n, bytes, [this](int i, int j) { return ScaledDirect(i, j); });
  if (faults_active_) {
    // How many stripes the nominal topology would have offered — the
    // difference is what the fault overlay dropped (re-striped around).
    const TransferPlan nominal = TransferPlanner::Build(
        src, dst, n, bytes,
        [this](int i, int j) { return topo_.DirectBandwidth(i, j); });
    plan.paths_dropped =
        std::max(0, static_cast<int>(nominal.paths.size()) -
                        static_cast<int>(plan.paths.size()));
  }
  return plan;
}

double CommPlane::StripedTransferNs(int src, int dst, double bytes) const {
  if (src == dst) return bytes / Topology::kLocalMemoryGBps;
  const TransferPlan plan = PlanBulkTransfer(src, dst, bytes);
  // Proportional striping finishes every path together when uncontended.
  return bytes / plan.total_gbps;
}

ReductionTree CommPlane::BuildCensusTree(const std::vector<int>& active) const {
  return ReductionTree::Build(
      topo_.num_devices(), active,
      [this](int i, int j) { return ScaledDirect(i, j); });
}

double CommPlane::CheckpointWritebackGbps(int device) const {
  const int n = topo_.num_devices();
  GUM_CHECK(device >= 0 && device < n);
  // The relay leg is capped by both the NVLink hop and the peer's own PCIe
  // host lane, at store-and-forward efficiency.
  double relay = 0.0;
  for (int peer = 0; peer < n; ++peer) {
    if (peer == device) continue;
    const double leg = ScaledDirect(device, peer);
    if (leg <= 0.0) continue;
    relay = std::max(relay, std::min(leg, Topology::kPcieGBps) *
                                Topology::kTransitEfficiency);
  }
  return Topology::kPcieGBps + relay;
}

double CommPlane::MeanPathNs(int src, double bytes) const {
  const int n = topo_.num_devices();
  double mean_bw = 0.0;
  for (int peer = 0; peer < n; ++peer) {
    mean_bw += LegacyGbps(src, peer);
  }
  mean_bw /= n;
  return bytes / mean_bw;
}

double CommPlane::LaneGbps(int src, int dst) const {
  const double direct = ScaledDirect(src, dst);
  if (src == dst || direct > 0.0) return direct;
  return Topology::kPcieGBps;
}

double CommPlane::LegacyGbps(int src, int dst) const {
  if (policy_ == RoutePolicy::kBestPath || src == dst) {
    if (faults_active_) {
      return faulted_effective_[src * topo_.num_devices() + dst];
    }
    return topo_.EffectiveBandwidth(src, dst);
  }
  const double direct = ScaledDirect(src, dst);
  return direct > 0.0 ? direct : Topology::kPcieGBps;
}

SettleResult CommPlane::Settle(const TransferBatch& batch) {
  GUM_TRACE_SCOPE("comm.settle");
  SettleResult out;
  const int n = topo_.num_devices();
  int max_tag = n - 1;
  for (const Transfer& t : batch.transfers_) {
    GUM_CHECK(t.src >= 0 && t.src < n && t.dst >= 0 && t.dst < n);
    max_tag = std::max(max_tag, t.tag);
  }
  out.completion_ns.reserve(batch.transfers_.size());
  out.tag_comm_ns.assign(static_cast<size_t>(max_tag) + 1, 0.0);
  const MultipathStats before = multipath_stats_;
  if (model_ == ContentionModel::kOff) {
    SettleOff(batch.transfers_, &out);
  } else {
    SettleFair(batch.transfers_, &out);
  }
  if (obs::MetricsEnabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("gum_comm_settle_batches_total").Increment();
    reg.GetCounter("gum_comm_transfers_total")
        .Increment(batch.transfers_.size());
    auto& bytes_hist = reg.GetHistogram("gum_comm_transfer_bytes");
    for (const Transfer& t : batch.transfers_) {
      bytes_hist.Observe(static_cast<uint64_t>(t.bytes));
    }
    // Striping counters exist only once a bulk transfer has actually been
    // planned, so non-multipath runs export byte-identical metrics.
    if (multipath_stats_.bulk_transfers > before.bulk_transfers) {
      reg.GetCounter("gum_comm_bulk_transfers_total")
          .Increment(multipath_stats_.bulk_transfers - before.bulk_transfers);
      reg.GetCounter("gum_comm_striped_transfers_total")
          .Increment(multipath_stats_.striped_transfers -
                     before.striped_transfers);
      reg.GetCounter("gum_comm_stripe_paths_total")
          .Increment(multipath_stats_.paths_used - before.paths_used);
    }
  }
  return out;
}

void CommPlane::SettleOff(const std::vector<Transfer>& transfers,
                          SettleResult* out) {
  // The legacy point-to-point model, transfer by transfer in enqueue order:
  // the exact expression (bytes / EffectiveBandwidth) and the exact
  // per-device accumulation order of the pre-CommPlane engines, so the off
  // mode is bit-compatible with the seed.
  for (const Transfer& t : transfers) {
    const double ns = t.bytes / LegacyGbps(t.src, t.dst);
    out->completion_ns.push_back(ns);
    out->tag_comm_ns[t.tag] += ns;
    link_bytes_[t.src][t.dst] += t.bytes;
    payload_bytes_[t.src][t.dst] += t.bytes;
    link_busy_ms_[t.src][t.dst] += ns / 1e6;
  }
}

void CommPlane::SettleFair(const std::vector<Transfer>& transfers,
                           SettleResult* out) {
  const int n = topo_.num_devices();
  const size_t m = transfers.size();
  // Resolve each transfer into flows once. The common case is one flow
  // over the single best path (hop resolution identical to the pre-plan
  // build, so single-path fair stays byte-for-byte). A bulk transfer
  // under multipath expands into one flow per stripe of its TransferPlan;
  // the flows contend per directed lane like any other transfer, and the
  // transfer completes when its last stripe does. A routed flow occupies
  // (and is charged on) both of its lanes; store-and-forward is modeled
  // as both hops being live for the flow's whole duration, which is the
  // pessimistic (fully pipelined chunks) reading of a 2-hop copy.
  std::vector<std::vector<Hop>> hops;
  std::vector<double> remaining;
  std::vector<size_t> flow_transfer;  // flow index -> enqueue index
  hops.reserve(m);
  remaining.reserve(m);
  flow_transfer.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const Transfer& t = transfers[i];
    payload_bytes_[t.src][t.dst] += t.bytes;
    const bool stripe = multipath_ && t.bulk && t.src != t.dst && t.bytes > 0.0;
    if (!stripe) {
      const CommRoute route = Route(t.src, t.dst);
      std::vector<Hop> flow;
      if (route.transit >= 0) {
        flow.push_back(
            {DirectLane(n, t.src, route.transit), t.src, route.transit});
        flow.push_back(
            {DirectLane(n, route.transit, t.dst), route.transit, t.dst});
      } else if (route.via_pcie) {
        flow.push_back({PcieLane(n, t.src, t.dst), t.src, t.dst});
      } else {
        flow.push_back({DirectLane(n, t.src, t.dst), t.src, t.dst});
      }
      for (const Hop& h : flow) link_bytes_[h.src][h.dst] += t.bytes;
      hops.push_back(std::move(flow));
      remaining.push_back(t.bytes);
      flow_transfer.push_back(i);
      continue;
    }
    const TransferPlan plan = PlanBulkTransfer(t.src, t.dst, t.bytes);
    multipath_stats_.bulk_transfers += 1;
    if (plan.striped()) multipath_stats_.striped_transfers += 1;
    multipath_stats_.paths_used += static_cast<int64_t>(plan.paths.size());
    multipath_stats_.paths_dropped += plan.paths_dropped;
    multipath_stats_.single_path_ns += t.bytes / plan.best_single_gbps;
    multipath_stats_.striped_ns += t.bytes / plan.total_gbps;
    double assigned = 0.0;
    for (size_t p = 0; p < plan.paths.size(); ++p) {
      const PlanPath& path = plan.paths[p];
      // The last stripe takes the exact remainder so the chunks conserve
      // the payload byte-for-byte.
      const double chunk = p + 1 == plan.paths.size()
                               ? t.bytes - assigned
                               : t.bytes * path.fraction;
      assigned += chunk;
      std::vector<Hop> flow;
      if (path.transit >= 0) {
        flow.push_back(
            {DirectLane(n, t.src, path.transit), t.src, path.transit});
        flow.push_back(
            {DirectLane(n, path.transit, t.dst), path.transit, t.dst});
        multipath_stats_.transit_bytes += chunk;
      } else if (path.via_pcie) {
        flow.push_back({PcieLane(n, t.src, t.dst), t.src, t.dst});
        multipath_stats_.pcie_bytes += chunk;
      } else {
        flow.push_back({DirectLane(n, t.src, t.dst), t.src, t.dst});
        multipath_stats_.direct_bytes += chunk;
      }
      for (const Hop& h : flow) link_bytes_[h.src][h.dst] += chunk;
      hops.push_back(std::move(flow));
      remaining.push_back(chunk);
      flow_transfer.push_back(i);
    }
  }
  const size_t num_flows = hops.size();

  auto lane_gbps = [&](int lane) {
    if (lane >= n * n) return Topology::kPcieGBps;
    return LaneGbps(lane / n, lane % n);
  };

  std::vector<double> flow_completion_ns(num_flows, 0.0);
  std::vector<char> done(num_flows, 0);
  for (size_t i = 0; i < num_flows; ++i) {
    if (remaining[i] <= 0.0) done[i] = 1;
  }

  // Progressive filling: repeatedly compute the unique max-min fair rate
  // allocation over the active flows, advance to the next completion,
  // and retire finished flows. Each round the bottleneck lane is the
  // one whose equal share is smallest (ties broken on lane id), and all
  // its unfrozen users freeze at that share — the resulting rates do not
  // depend on enqueue order.
  double now_ns = 0.0;
  std::vector<double> rate(num_flows, 0.0);   // bytes per ns
  std::vector<double> lane_frozen(2 * n * n, 0.0);
  std::vector<int> lane_unfrozen(2 * n * n, 0);
  while (true) {
    std::vector<size_t> active;
    for (size_t i = 0; i < num_flows; ++i) {
      if (!done[i]) active.push_back(i);
    }
    if (active.empty()) break;

    // Max-min allocation for this round.
    std::vector<char> frozen(num_flows, 0);
    std::fill(lane_frozen.begin(), lane_frozen.end(), 0.0);
    std::fill(lane_unfrozen.begin(), lane_unfrozen.end(), 0);
    for (size_t i : active) {
      for (const Hop& h : hops[i]) ++lane_unfrozen[h.lane];
    }
    size_t unfrozen_left = active.size();
    while (unfrozen_left > 0) {
      int bottleneck = -1;
      double bottleneck_share = 0.0;
      for (int lane = 0; lane < 2 * n * n; ++lane) {
        if (lane_unfrozen[lane] == 0) continue;
        const double share =
            (lane_gbps(lane) - lane_frozen[lane]) / lane_unfrozen[lane];
        if (bottleneck < 0 || share < bottleneck_share) {
          bottleneck = lane;
          bottleneck_share = share;
        }
      }
      GUM_CHECK(bottleneck >= 0);
      // Freeze every unfrozen user of the bottleneck lane at the share.
      // The share value is identical for all of them, so the per-lane
      // frozen-capacity sums below see the same sequence of additions
      // regardless of enqueue order. The floor guards against the residual
      // capacity dipping an ulp below zero after many freezes.
      const double share = bottleneck_share > 0.0 ? bottleneck_share : 1e-12;
      for (size_t i : active) {
        if (frozen[i]) continue;
        bool uses = false;
        for (const Hop& h : hops[i]) uses = uses || h.lane == bottleneck;
        if (!uses) continue;
        frozen[i] = 1;
        rate[i] = share;
        --unfrozen_left;
        for (const Hop& h : hops[i]) {
          lane_frozen[h.lane] += share;
          --lane_unfrozen[h.lane];
        }
      }
    }

    // Advance to the earliest completion under these rates.
    double dt = 0.0;
    bool first = true;
    for (size_t i : active) {
      GUM_CHECK(rate[i] > 0.0);
      const double finish = remaining[i] / rate[i];
      if (first || finish < dt) dt = finish;
      first = false;
    }
    now_ns += dt;
    const double dt_ms = dt / 1e6;
    for (int lane = 0; lane < 2 * n * n; ++lane) {
      if (lane_unfrozen[lane] == 0 && lane_frozen[lane] <= 0.0) continue;
      const int base = lane >= n * n ? lane - n * n : lane;
      link_busy_ms_[base / n][base % n] += dt_ms;
    }
    for (size_t i : active) {
      if (remaining[i] / rate[i] <= dt) {
        done[i] = 1;
        remaining[i] = 0.0;
        flow_completion_ns[i] = now_ns;
      } else {
        remaining[i] -= rate[i] * dt;
      }
    }
  }

  // A transfer completes when its last flow does (identity for the
  // one-flow common case).
  out->completion_ns.assign(m, 0.0);
  for (size_t f = 0; f < num_flows; ++f) {
    double& completion = out->completion_ns[flow_transfer[f]];
    completion = std::max(completion, flow_completion_ns[f]);
  }

  // Under contention the tag's transfers overlap; the charge is the tag's
  // makespan, not the sum of solo durations.
  for (size_t i = 0; i < m; ++i) {
    const int tag = transfers[i].tag;
    out->tag_comm_ns[tag] = std::max(out->tag_comm_ns[tag],
                                     out->completion_ns[i]);
  }
}

double CommPlane::ReserveLane(int src, int dst, double ready_ms,
                              double bytes) {
  const int n = topo_.num_devices();
  GUM_CHECK(src >= 0 && src < n && dst >= 0 && dst < n);
  const double lane_ms = LaneMs(src, dst, bytes);
  double start_ms = ready_ms;
  if (model_ == ContentionModel::kFair) {
    start_ms = std::max(ready_ms, lane_busy_until_ms_[DirectLane(n, src, dst)]);
    lane_busy_until_ms_[DirectLane(n, src, dst)] = start_ms + lane_ms;
  }
  link_bytes_[src][dst] += bytes;
  link_busy_ms_[src][dst] += lane_ms;
  return start_ms;
}

void CommPlane::RecordLinkTraffic(int src, int dst, double bytes) {
  const int n = topo_.num_devices();
  GUM_CHECK(src >= 0 && src < n && dst >= 0 && dst < n);
  link_bytes_[src][dst] += bytes;
  link_busy_ms_[src][dst] += LaneMs(src, dst, bytes);
}

void CommPlane::RecordPayload(int src, int dst, double bytes) {
  payload_bytes_[src][dst] += bytes;
}

std::string CommPlane::RenderAscii(double total_ms) const {
  return RenderAsciiTable(link_bytes_, link_busy_ms_, total_ms);
}

std::string CommPlane::RenderAsciiTable(
    const std::vector<std::vector<double>>& link_bytes,
    const std::vector<std::vector<double>>& link_busy_ms, double total_ms) {
  const int n = static_cast<int>(link_bytes.size());
  double denom_ms = total_ms;
  if (denom_ms <= 0.0) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        if (i < static_cast<int>(link_busy_ms.size()) &&
            j < static_cast<int>(link_busy_ms[i].size())) {
          denom_ms = std::max(denom_ms, link_busy_ms[i][j]);
        }
      }
    }
  }
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-9s %12s %12s %12s %7s\n", "lane",
                "traffic MB", "busy ms", "GB/s", "util");
  out += line;
  bool any = false;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double bytes = link_bytes[i][j];
      const double busy =
          (i < static_cast<int>(link_busy_ms.size()) &&
           j < static_cast<int>(link_busy_ms[i].size()))
              ? link_busy_ms[i][j]
              : 0.0;
      if (bytes <= 0.0 && busy <= 0.0) continue;
      any = true;
      // 1 GB/s == 1 byte/ns, so achieved GB/s = bytes / (busy_ms * 1e6 ns).
      const double gbps = busy > 0.0 ? bytes / (busy * 1e6) : 0.0;
      const double util = denom_ms > 0.0 ? 100.0 * busy / denom_ms : 0.0;
      std::snprintf(line, sizeof(line), "%3d -> %-3d %12.3f %12.3f %12.2f %6.1f%%\n",
                    i, j, bytes / 1e6, busy, gbps, util);
      out += line;
    }
  }
  if (!any) out += "(no interconnect traffic recorded)\n";
  return out;
}

}  // namespace gum::sim
