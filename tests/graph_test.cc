#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/csr.h"
#include "graph/fragment.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/types.h"

namespace gum::graph {
namespace {

EdgeList Triangle() {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1, 1.0f}, {1, 2, 1.0f}, {2, 0, 1.0f}};
  return list;
}

// ---------- CSR construction ----------

TEST(CsrTest, BasicConstruction) {
  auto g = CsrGraph::FromEdgeList(Triangle());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_EQ(g->OutDegree(0), 1u);
  EXPECT_EQ(g->OutNeighbors(0)[0], 1u);
  EXPECT_EQ(g->InDegree(1), 1u);
  EXPECT_EQ(g->InNeighbors(1)[0], 0u);
}

TEST(CsrTest, RejectsOutOfRangeEndpoint) {
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 5, 1.0f}};
  auto g = CsrGraph::FromEdgeList(list);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsrTest, RemovesSelfLoopsByDefault) {
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 0, 1.0f}, {0, 1, 1.0f}, {1, 1, 1.0f}};
  auto g = CsrGraph::FromEdgeList(list);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(CsrTest, KeepsSelfLoopsWhenAsked) {
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 0, 1.0f}, {0, 1, 1.0f}};
  CsrBuildOptions opt;
  opt.remove_self_loops = false;
  auto g = CsrGraph::FromEdgeList(list, opt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(CsrTest, Deduplicates) {
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 1, 3.0f}, {0, 1, 5.0f}, {0, 1, 7.0f}};
  auto g = CsrGraph::FromEdgeList(list);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_EQ(g->OutWeights(0)[0], 3.0f);  // first kept
}

TEST(CsrTest, SymmetrizeAddsReverseEdges) {
  CsrBuildOptions opt;
  opt.symmetrize = true;
  auto g = CsrGraph::FromEdgeList(Triangle(), opt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 6u);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(g->OutDegree(v), 2u);
    EXPECT_EQ(g->InDegree(v), 2u);
  }
}

TEST(CsrTest, NeighborsSortedAscending) {
  EdgeList list;
  list.num_vertices = 5;
  list.edges = {{0, 4, 1.0f}, {0, 1, 1.0f}, {0, 3, 1.0f}, {0, 2, 1.0f}};
  auto g = CsrGraph::FromEdgeList(list);
  ASSERT_TRUE(g.ok());
  const auto nbrs = g->OutNeighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(CsrTest, UnweightedGraphHasNoWeightArray) {
  auto g = CsrGraph::FromEdgeList(Triangle());
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->has_weights());
  EXPECT_TRUE(g->OutWeights(0).empty());
}

TEST(CsrTest, WeightedGraphKeepsWeights) {
  EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 1, 2.5f}, {1, 0, 4.0f}};
  auto g = CsrGraph::FromEdgeList(list);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->has_weights());
  EXPECT_EQ(g->OutWeights(0)[0], 2.5f);
  EXPECT_EQ(g->OutWeights(1)[0], 4.0f);
}

TEST(CsrTest, InCsrConsistentWithOutCsr) {
  auto list = Rmat({.scale = 8, .edge_factor = 6, .seed = 3});
  auto g = CsrGraph::FromEdgeList(list);
  ASSERT_TRUE(g.ok());
  uint64_t out_total = 0, in_total = 0;
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    out_total += g->OutDegree(v);
    in_total += g->InDegree(v);
  }
  EXPECT_EQ(out_total, g->num_edges());
  EXPECT_EQ(in_total, g->num_edges());
}

TEST(CsrTest, MemoryBytesPositive) {
  auto g = CsrGraph::FromEdgeList(Triangle());
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->MemoryBytes(), 0u);
}

// ---------- generators ----------

TEST(GeneratorTest, RmatSizes) {
  RmatOptions opt;
  opt.scale = 10;
  opt.edge_factor = 8;
  const EdgeList list = Rmat(opt);
  EXPECT_EQ(list.num_vertices, 1024u);
  EXPECT_EQ(list.edges.size(), 8192u);
}

TEST(GeneratorTest, RmatDeterministic) {
  RmatOptions opt;
  opt.scale = 9;
  const EdgeList a = Rmat(opt), b = Rmat(opt);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].src, b.edges[i].src);
    EXPECT_EQ(a.edges[i].dst, b.edges[i].dst);
  }
}

TEST(GeneratorTest, RmatSkewedDegrees) {
  RmatOptions opt;
  opt.scale = 12;
  opt.edge_factor = 8;
  auto g = CsrGraph::FromEdgeList(Rmat(opt));
  ASSERT_TRUE(g.ok());
  uint32_t max_deg = 0;
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    max_deg = std::max(max_deg, g->OutDegree(v));
  }
  // Power-law-ish: hub degree far above the mean (~8).
  EXPECT_GT(max_deg, 80u);
}

TEST(GeneratorTest, RmatWeighted) {
  RmatOptions opt;
  opt.scale = 8;
  opt.weighted = true;
  const EdgeList list = Rmat(opt);
  for (const Edge& e : list.edges) {
    EXPECT_GE(e.weight, 1.0f);
    EXPECT_LT(e.weight, 64.0f);
  }
}

TEST(GeneratorTest, RoadGridConnectedAndSparse) {
  RoadGridOptions opt;
  opt.rows = 24;
  opt.cols = 24;
  auto g = CsrGraph::FromEdgeList(RoadGrid(opt));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 576u);
  // ~4 edges per vertex.
  EXPECT_LT(static_cast<double>(g->num_edges()) / g->num_vertices(), 5.0);
  // Connectivity via spanning comb: BFS from 0 reaches everything.
  std::vector<bool> seen(g->num_vertices(), false);
  std::vector<VertexId> stack = {0};
  seen[0] = true;
  size_t reached = 1;
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    for (VertexId v : g->OutNeighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        ++reached;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(reached, g->num_vertices());
}

TEST(GeneratorTest, RoadGridWeightsInRange) {
  RoadGridOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  for (const Edge& e : RoadGrid(opt).edges) {
    EXPECT_GE(e.weight, 1.0f);
    EXPECT_LT(e.weight, 16.0f);
  }
}

TEST(GeneratorTest, ErdosRenyiNoSelfLoops) {
  const EdgeList list = ErdosRenyi(100, 500, false, 5);
  EXPECT_EQ(list.edges.size(), 500u);
  for (const Edge& e : list.edges) EXPECT_NE(e.src, e.dst);
}

TEST(GeneratorTest, SmallWorldDegreeStructure) {
  const EdgeList list = SmallWorld(200, 3, 0.0, 5);
  // beta=0: pure ring lattice, 2k edges per vertex after symmetrization.
  auto g = CsrGraph::FromEdgeList(list);
  ASSERT_TRUE(g.ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(g->OutDegree(v), 6u);
  }
}

// ---------- fragments ----------

TEST(FragmentTest, CoversAllVerticesOnce) {
  auto g = CsrGraph::FromEdgeList(Rmat({.scale = 9, .seed = 2}));
  ASSERT_TRUE(g.ok());
  PartitionOptions popt;
  popt.kind = PartitionerKind::kRandom;
  auto p = PartitionGraph(*g, 4, popt);
  ASSERT_TRUE(p.ok());
  const auto fragments = BuildFragments(*g, *p);
  ASSERT_EQ(fragments.size(), 4u);
  size_t total_inner = 0;
  EdgeId total_edges = 0;
  for (const Fragment& f : fragments) {
    total_inner += f.inner_vertices.size();
    total_edges += f.num_inner_out_edges;
    // Outer vertices are disjoint from inner.
    std::set<VertexId> inner(f.inner_vertices.begin(),
                             f.inner_vertices.end());
    for (VertexId v : f.outer_vertices) EXPECT_FALSE(inner.count(v));
  }
  EXPECT_EQ(total_inner, g->num_vertices());
  EXPECT_EQ(total_edges, g->num_edges());
}

TEST(FragmentTest, CrossEdgesMatchPartitionCut) {
  auto g = CsrGraph::FromEdgeList(Rmat({.scale = 8, .seed = 4}));
  ASSERT_TRUE(g.ok());
  auto p = PartitionGraph(*g, 3, {.kind = PartitionerKind::kRandom});
  ASSERT_TRUE(p.ok());
  const auto fragments = BuildFragments(*g, *p);
  EdgeId cross = 0;
  for (const Fragment& f : fragments) cross += f.num_cross_edges;
  EXPECT_EQ(cross, p->edge_cut);
}

TEST(FragmentTest, SinglePartHasNoOuterVertices) {
  auto g = CsrGraph::FromEdgeList(Triangle());
  ASSERT_TRUE(g.ok());
  auto p = PartitionGraph(*g, 1);
  ASSERT_TRUE(p.ok());
  const auto fragments = BuildFragments(*g, *p);
  EXPECT_TRUE(fragments[0].outer_vertices.empty());
  EXPECT_EQ(fragments[0].num_cross_edges, 0u);
}

}  // namespace
}  // namespace gum::graph
