#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/stats.h"

namespace gum::graph {
namespace {

TEST(GiniTest, EqualValuesGiveZero) {
  EXPECT_NEAR(GiniCoefficient({5, 5, 5, 5}), 0.0, 1e-12);
}

TEST(GiniTest, ExtremeSkewApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000.0;
  EXPECT_GT(GiniCoefficient(v), 0.95);
}

TEST(GiniTest, KnownTwoValueCase) {
  // {0, 1}: G = 2*(1*0 + 2*1)/(2*1) - 3/2 = 0.5.
  EXPECT_NEAR(GiniCoefficient({0, 1}), 0.5, 1e-12);
}

TEST(GiniTest, EmptyAndZeroSafe) {
  EXPECT_EQ(GiniCoefficient({}), 0.0);
  EXPECT_EQ(GiniCoefficient({0, 0, 0}), 0.0);
}

TEST(EntropyTest, UniformIsOne) {
  EXPECT_NEAR(DegreeEntropy({2, 2, 2, 2}), 1.0, 1e-12);
}

TEST(EntropyTest, ConcentratedIsLow) {
  std::vector<double> v(64, 1e-9);
  v[0] = 100.0;
  EXPECT_LT(DegreeEntropy(v), 0.05);
}

TEST(EntropyTest, DegenerateSafe) {
  EXPECT_EQ(DegreeEntropy({}), 0.0);
  EXPECT_EQ(DegreeEntropy({7}), 0.0);
}

TEST(DegreeStatsTest, RmatVsRoadShapes) {
  auto social = CsrGraph::FromEdgeList(
      Rmat({.scale = 11, .edge_factor = 8, .seed = 1}));
  auto road = CsrGraph::FromEdgeList(RoadGrid({.rows = 40, .cols = 40}));
  ASSERT_TRUE(social.ok());
  ASSERT_TRUE(road.ok());
  const DegreeStats ss = ComputeDegreeStats(*social);
  const DegreeStats rs = ComputeDegreeStats(*road);
  // The social graph is far more skewed than the road grid.
  EXPECT_GT(ss.gini, rs.gini + 0.2);
  EXPECT_GT(ss.max_out_degree, 10 * rs.max_out_degree);
}

TEST(DegreeStatsTest, AveragesMatchTotals) {
  auto g = CsrGraph::FromEdgeList(Rmat({.scale = 9, .edge_factor = 4}));
  ASSERT_TRUE(g.ok());
  const DegreeStats s = ComputeDegreeStats(*g);
  EXPECT_NEAR(s.avg_out_degree * g->num_vertices(),
              static_cast<double>(g->num_edges()), 1e-6);
  EXPECT_NEAR(s.avg_in_degree, s.avg_out_degree, 1e-9);
}

TEST(PseudoDiameterTest, RoadGridFarExceedsRmat) {
  auto road = CsrGraph::FromEdgeList(RoadGrid({.rows = 40, .cols = 40}));
  auto social = CsrGraph::FromEdgeList(
      Rmat({.scale = 11, .edge_factor = 8, .seed = 1}));
  ASSERT_TRUE(road.ok());
  ASSERT_TRUE(social.ok());
  const uint32_t road_diam = PseudoDiameter(*road);
  const uint32_t social_diam = PseudoDiameter(*social);
  EXPECT_GE(road_diam, 40u);   // at least the grid dimension
  EXPECT_LE(social_diam, 16u); // small-world
}

TEST(PseudoDiameterTest, PathGraphExact) {
  EdgeList list;
  list.num_vertices = 50;
  for (VertexId v = 0; v + 1 < 50; ++v) {
    list.edges.push_back({v, v + 1, 1.0f});
  }
  auto g = CsrGraph::FromEdgeList(list);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(PseudoDiameter(*g), 49u);
}

}  // namespace
}  // namespace gum::graph
