// Ground-truth per-edge kernel cost of the virtual devices.
//
// TrueEdgeCostNs is the substrate's *actual* cost of processing one frontier
// edge given the frontier's Table-I characteristics: irregular frontiers
// (high Gini, wide degree ranges) cause warp divergence and scattered
// memory access; hub-heavy frontiers cause atomic contention. This function
// plays the role that real silicon plays in the paper: the learned model
// g(W) of src/ml/* is trained from (features, observed cost) logs and is
// judged by how well it approximates this function (paper Exp-7 runs the
// same comparison against the "exact values of g(W)").
//
// The functional form mixes multiplicative interactions and saturating
// nonlinearities, so a degree-4 polynomial fits it well while a plain
// linear model fails — reproducing the RMSRE gap of paper Table V.

#ifndef GUM_SIM_KERNEL_COST_H_
#define GUM_SIM_KERNEL_COST_H_

#include "graph/frontier_features.h"
#include "sim/device.h"

namespace gum::sim {

// True compute cost (ns) of processing one edge of a frontier with
// characteristics `w` on a device with parameters `params`. Excludes any
// remote-transfer cost (that is bytes / link bandwidth, added separately).
double TrueEdgeCostNs(const graph::FrontierFeatures& w,
                      const DeviceParams& params);

}  // namespace gum::sim

#endif  // GUM_SIM_KERNEL_COST_H_
