#include "ml/linear_regression.h"

#include <algorithm>
#include <cmath>

namespace gum::ml {

Result<std::vector<double>> SolveDenseSystem(
    std::vector<std::vector<double>> a, std::vector<double> b) {
  const int n = static_cast<int>(a.size());
  for (int col = 0; col < n; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-14) {
      return Status::Internal("singular normal-equation matrix");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double inv = 1.0 / a[col][col];
    for (int r = col + 1; r < n; ++r) {
      const double factor = a[r][col] * inv;
      if (factor == 0.0) continue;
      for (int c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (int r = n - 1; r >= 0; --r) {
    double acc = b[r];
    for (int c = r + 1; c < n; ++c) acc -= a[r][c] * x[c];
    x[r] = acc / a[r][r];
  }
  return x;
}

Status LinearRegression::Fit(const Dataset& data) {
  if (data.samples.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  const int d = data.feature_dim() + 1;  // + bias
  std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
  std::vector<double> xty(d, 0.0);
  std::vector<double> row(d);
  for (const Sample& s : data.samples) {
    for (int j = 0; j < d - 1; ++j) row[j] = s.features[j];
    row[d - 1] = 1.0;
    for (int j = 0; j < d; ++j) {
      xty[j] += row[j] * s.target;
      for (int k = 0; k < d; ++k) xtx[j][k] += row[j] * row[k];
    }
  }
  for (int j = 0; j < d; ++j) xtx[j][j] += ridge_;
  GUM_ASSIGN_OR_RETURN(weights_, SolveDenseSystem(std::move(xtx),
                                                  std::move(xty)));
  return Status::OK();
}

double LinearRegression::Predict(std::span<const double> features) const {
  double pred = weights_.back();
  for (size_t j = 0; j + 1 < weights_.size(); ++j) {
    pred += weights_[j] * features[j];
  }
  return std::max(pred, 1e-3);
}

}  // namespace gum::ml
