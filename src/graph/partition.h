// Edge-cut graph partitioning (paper §II, Fig. 11 "seg / random / metis").
//
// A Partition assigns every vertex (and therefore all its out-edges) to one
// of n parts. Three partitioners are provided:
//   * kSegment   — "seg": contiguous vertex ranges balanced by out-edges;
//                  preserves id-locality (the locality-aware partitioner of
//                  paper Exp-6).
//   * kRandom    — hash-based random assignment (the paper's default for the
//                  main comparison, Exp-1).
//   * kMetisLike — a from-scratch multilevel partitioner in the METIS
//                  tradition: heavy-edge-matching coarsening, greedy initial
//                  partition, boundary FM-style refinement minimizing the
//                  edge cut under a balance constraint.

#ifndef GUM_GRAPH_PARTITION_H_
#define GUM_GRAPH_PARTITION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/csr.h"

namespace gum::graph {

enum class PartitionerKind { kSegment, kRandom, kMetisLike };

const char* PartitionerName(PartitionerKind kind);

struct Partition {
  int num_parts = 0;
  std::vector<uint32_t> owner;  // per-vertex part id, size num_vertices

  // Derived views (filled by PartitionGraph):
  std::vector<std::vector<VertexId>> part_vertices;  // sorted vertex lists
  std::vector<EdgeId> part_out_edges;                // out-edge count per part

  // Edges whose endpoints live in different parts.
  EdgeId edge_cut = 0;

  // max(part_out_edges) / mean(part_out_edges); 1.0 is perfectly balanced.
  double EdgeImbalance() const;
};

struct PartitionOptions {
  PartitionerKind kind = PartitionerKind::kRandom;
  uint64_t seed = 1;
  // Maximum allowed part size as a multiple of the average (metis-like).
  double balance_slack = 1.05;
  // Multilevel knobs (metis-like).
  int coarsen_target_multiplier = 8;  // stop when |V| <= multiplier * parts
  int refinement_passes = 4;
};

// Partitions g into num_parts parts. Fails with InvalidArgument for
// num_parts < 1 or an empty graph with num_parts > 0 requested vertices.
Result<Partition> PartitionGraph(const CsrGraph& g, int num_parts,
                                 const PartitionOptions& options = {});

// Recomputes the derived views (part_vertices, part_out_edges, edge_cut)
// of an existing owner assignment against g. Used when the graph mutates
// under pinned ownership (graph/mutation.h): the id space never changes,
// so owners stay valid while degrees and the cut drift per epoch.
// p->owner must cover g.num_vertices().
void RefreshDerivedViews(Partition* p, const CsrGraph& g);

}  // namespace gum::graph

#endif  // GUM_GRAPH_PARTITION_H_
