# Empty compiler generated dependencies file for fig10_incremental.
# This may be replaced when dependencies are built.
