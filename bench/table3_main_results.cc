// Table III: end-to-end runtime of Gunrock / Groute / GUM on 4 algorithms
// x 15 graphs with 8 virtual GPUs and a random partitioner — the paper's
// headline comparison (Exp-1).

#include <iostream>
#include <map>
#include <vector>

#include "bench/datasets.h"
#include "bench/runner.h"
#include "common/table_printer.h"

using namespace gum;        // NOLINT(build/namespaces)
using namespace gum::bench; // NOLINT(build/namespaces)

int main() {
  std::cout << "=== Table III: runtime (simulated ms, lower is better), "
               "8 GPUs, random partitioner ===\n\n";

  const std::vector<Algo> algos = {Algo::kBfs, Algo::kWcc, Algo::kPr,
                                   Algo::kSssp};
  const std::vector<System> systems = {System::kGunrock, System::kGroute,
                                       System::kGum};

  // results[algo][system][abbr] = ms
  std::map<Algo, std::map<System, std::map<std::string, double>>> results;

  for (const DatasetSpec& spec : AllDatasets()) {
    const DatasetGraphs data = BuildDataset(spec.abbr);
    for (Algo algo : algos) {
      for (System system : systems) {
        RunConfig config;
        config.system = system;
        config.algo = algo;
        config.devices = 8;
        const core::RunResult r = RunBenchmark(data, config);
        results[algo][system][spec.abbr] = r.total_ms;
      }
    }
    std::cerr << "done " << spec.abbr << " (|E|="
              << data.directed.num_edges() << ")\n";
  }

  std::vector<std::string> headers = {"Alg.", "Lib."};
  for (const DatasetSpec& spec : AllDatasets()) headers.push_back(spec.abbr);
  TablePrinter tp(headers);
  for (Algo algo : algos) {
    for (System system : systems) {
      std::vector<std::string> row = {AlgoName(algo), SystemName(system)};
      for (const DatasetSpec& spec : AllDatasets()) {
        const double ms = results[algo][system][spec.abbr];
        row.push_back(TablePrinter::Num(ms, ms < 10 ? 1 : 0));
      }
      tp.AddRow(row);
    }
  }
  tp.Print(std::cout);

  // Shape summary against the paper's headline claims.
  std::cout << "\nShape check vs paper Table III:\n";
  int gum_wins = 0, cells = 0;
  double worst_case = 1e18, best_case = 0;
  for (Algo algo : algos) {
    for (const DatasetSpec& spec : AllDatasets()) {
      const double gum = results[algo][System::kGum][spec.abbr];
      const double best_other =
          std::min(results[algo][System::kGunrock][spec.abbr],
                   results[algo][System::kGroute][spec.abbr]);
      ++cells;
      if (gum <= best_other) ++gum_wins;
      best_case = std::max(best_case, best_other / gum);
      worst_case = std::min(worst_case, best_other / gum);
    }
  }
  std::cout << "  GUM wins " << gum_wins << "/" << cells
            << " cells (paper: all but WCC road-nets & a few web cells)\n";
  std::cout << "  best speedup over best baseline: "
            << TablePrinter::Num(best_case, 1) << "x, worst: "
            << TablePrinter::Num(worst_case, 2) << "x\n";
  const double groute_wcc_eu = results[Algo::kWcc][System::kGroute]["EU"];
  const double gum_wcc_eu = results[Algo::kWcc][System::kGum]["EU"];
  std::cout << "  Groute WCC on EU road net: "
            << TablePrinter::Num(groute_wcc_eu, 1) << " ms vs GUM "
            << TablePrinter::Num(gum_wcc_eu, 1)
            << " ms (paper: Groute wins road-net WCC via asynchrony)\n";
  return 0;
}
