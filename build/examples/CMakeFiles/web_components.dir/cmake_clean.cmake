file(REMOVE_RECURSE
  "CMakeFiles/web_components.dir/web_components.cc.o"
  "CMakeFiles/web_components.dir/web_components.cc.o.d"
  "web_components"
  "web_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
