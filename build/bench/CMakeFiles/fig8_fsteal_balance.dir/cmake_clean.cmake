file(REMOVE_RECURSE
  "CMakeFiles/fig8_fsteal_balance.dir/fig8_fsteal_balance.cc.o"
  "CMakeFiles/fig8_fsteal_balance.dir/fig8_fsteal_balance.cc.o.d"
  "fig8_fsteal_balance"
  "fig8_fsteal_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_fsteal_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
