#include <gtest/gtest.h>

#include "core/run_result.h"

namespace gum::core {
namespace {

TEST(RunResultTest, BucketHelpersSumTimeline) {
  RunResult r;
  r.timeline = sim::Timeline(2);
  r.timeline.Add(0, 0, sim::TimeCategory::kCompute, 3.0);
  r.timeline.Add(0, 1, sim::TimeCategory::kCommunication, 2.0);
  r.timeline.Add(1, 0, sim::TimeCategory::kSerialization, 1.0);
  r.timeline.Add(1, 1, sim::TimeCategory::kOverhead, 4.0);
  EXPECT_DOUBLE_EQ(r.ComputeMs(), 3.0);
  EXPECT_DOUBLE_EQ(r.CommunicationMs(), 2.0);
  EXPECT_DOUBLE_EQ(r.SerializationMs(), 1.0);
  EXPECT_DOUBLE_EQ(r.OverheadMs(), 4.0);
}

TEST(RunResultTest, StarvationIsIdleWhileOthersWork) {
  RunResult r;
  r.timeline = sim::Timeline(2);
  // Iteration 0: dev0 busy 5, dev1 busy 2 => dev1 starves 3.
  r.timeline.Add(0, 0, sim::TimeCategory::kCompute, 5.0);
  r.timeline.Add(0, 1, sim::TimeCategory::kCompute, 2.0);
  EXPECT_DOUBLE_EQ(r.StarvationMs(), 3.0);
}

TEST(RunResultTest, IdleDevicesDoNotStarve) {
  RunResult r;
  r.timeline = sim::Timeline(4);
  r.timeline.Add(0, 0, sim::TimeCategory::kCompute, 5.0);
  // Devices 1-3 fully idle (evicted by OSteal): not counted as starvation.
  EXPECT_DOUBLE_EQ(r.StarvationMs(), 0.0);
}

TEST(RunResultTest, RemoteBytesExcludeDiagonal) {
  RunResult r;
  r.link_bytes = {{100.0, 10.0}, {20.0, 200.0}};
  EXPECT_DOUBLE_EQ(r.TotalRemoteBytes(), 30.0);
}

TEST(RunResultTest, PayloadBytesFallBackToLinkBytes) {
  RunResult r;
  // Legacy producers fill only link_bytes (== payload under contention=off).
  r.link_bytes = {{100.0, 10.0}, {20.0, 200.0}};
  EXPECT_DOUBLE_EQ(r.TotalPayloadBytes(), 30.0);
  // A contention-aware producer exports both: traffic counts every hop,
  // payload counts each transfer once, so traffic >= payload.
  r.payload_bytes = {{0.0, 5.0}, {15.0, 0.0}};
  EXPECT_DOUBLE_EQ(r.TotalPayloadBytes(), 20.0);
  EXPECT_DOUBLE_EQ(r.TotalRemoteBytes(), 30.0);
}

TEST(RunResultTest, EmptyResultIsZero) {
  RunResult r;
  EXPECT_DOUBLE_EQ(r.TotalRemoteBytes(), 0.0);
  EXPECT_DOUBLE_EQ(r.StarvationMs(), 0.0);
  EXPECT_EQ(r.iterations, 0);
}

}  // namespace
}  // namespace gum::core
