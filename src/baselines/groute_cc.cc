#include "baselines/groute_cc.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "graph/frontier_features.h"
#include "sim/kernel_cost.h"
#include "sim/timeline.h"

namespace gum::baselines {

namespace {

using graph::VertexId;

VertexId Find(std::vector<VertexId>& parent, VertexId v) {
  while (parent[v] != v) {
    parent[v] = parent[parent[v]];  // path halving
    v = parent[v];
  }
  return v;
}

void Union(std::vector<VertexId>& parent, VertexId a, VertexId b) {
  const VertexId ra = Find(parent, a), rb = Find(parent, b);
  if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
}

}  // namespace

GrouteCcEngine::GrouteCcEngine(const graph::CsrGraph* g,
                               graph::Partition partition,
                               GrouteCcOptions options)
    : g_(g), partition_(std::move(partition)), options_(options) {}

core::RunResult GrouteCcEngine::Run(std::vector<VertexId>* labels_out) {
  const int n = partition_.num_parts;
  const VertexId num_v = g_->num_vertices();
  const sim::DeviceParams& dev = options_.device;

  core::RunResult result;
  result.timeline = sim::Timeline(n);
  // Boundary labels travel one ring hop to the next device (the reduction
  // proceeds around the ring); the plane prices that first hop. Unlike the
  // general Groute engine this model's ring is uniform — the exchange is
  // pipelined, so no segment ever pays the PCIe wrap-around alone.
  sim::CommPlane plane(sim::Topology::Ring(n, options_.ring_gbps),
                       options_.contention, sim::RoutePolicy::kDirectOnly);

  // Current global labels, reduced at the owners after every round.
  std::vector<VertexId> label(num_v);
  std::iota(label.begin(), label.end(), VertexId{0});

  // Per-device UF cost: one whole-fragment feature probe per device,
  // reused across rounds (fragments are static).
  std::vector<double> uf_edge_cost_ns(n, dev.base_edge_ns);
  std::vector<double> fragment_edges(n, 0.0);
  for (int d = 0; d < n; ++d) {
    const auto& inner = partition_.part_vertices[d];
    const auto features = graph::ExtractFrontierFeatures(*g_, inner);
    // Hooking does an extra atomic CAS per edge vs a plain gather.
    uf_edge_cost_ns[d] = 1.15 * sim::TrueEdgeCostNs(features, dev);
    fragment_edges[d] = static_cast<double>(partition_.part_out_edges[d]);
  }

  std::vector<VertexId> parent(num_v);
  std::vector<VertexId> proposed(num_v);
  double clock_ms = 0.0;  // devices run concurrently; rounds synchronize

  int round = 0;
  bool converged = false;
  for (; round < options_.max_rounds && !converged; ++round) {
    std::copy(label.begin(), label.end(), proposed.begin());
    double round_wall_ms = 0.0;
    std::vector<double> boundary_updates(n, 0.0);

    for (int d = 0; d < n; ++d) {
      // Local hooking: union every owned edge plus the (vertex, label)
      // pairs carried over from the previous exchange.
      std::iota(parent.begin(), parent.end(), VertexId{0});
      for (const VertexId u : partition_.part_vertices[d]) {
        Union(parent, u, label[u]);
        for (const VertexId v : g_->OutNeighbors(u)) {
          Union(parent, u, v);
          Union(parent, v, label[v]);
        }
      }
      // Propose the component minimum for every vertex this device touched.
      double updates = 0.0;
      for (const VertexId u : partition_.part_vertices[d]) {
        const VertexId root = Find(parent, u);
        if (root < proposed[u]) proposed[u] = root;
        for (const VertexId v : g_->OutNeighbors(u)) {
          const VertexId vroot = Find(parent, v);
          if (vroot < proposed[v]) {
            proposed[v] = vroot;
            if (partition_.owner[v] != static_cast<uint32_t>(d)) {
              updates += 1.0;  // label shipped to the owner over the ring
            }
          }
        }
      }
      boundary_updates[d] = updates;
      result.edges_processed += partition_.part_out_edges[d];
      result.messages_sent += static_cast<uint64_t>(updates);
    }

    // The round's exchange: each device ships its boundary labels one hop
    // along the ring. Settled as one batch so lane sharing is visible to
    // the contention model.
    sim::TransferBatch batch;
    for (int d = 0; d < n; ++d) {
      batch.Add(d, (d + 1) % n, boundary_updates[d] * dev.bytes_per_message,
                d);
    }
    const sim::SettleResult comm = plane.Settle(batch);

    for (int d = 0; d < n; ++d) {
      const double compute_ms =
          fragment_edges[d] * uf_edge_cost_ns[d] / 1e6;
      const double comm_ms = comm.tag_comm_ns[d] / 1e6;
      const double serial_ms = boundary_updates[d] * dev.bytes_per_message /
                               dev.serialization_gbps / 1e6;
      const double overhead_ms = options_.round_overhead_us / 1000.0;
      result.timeline.Add(round, d, sim::TimeCategory::kCompute, compute_ms);
      result.timeline.Add(round, d, sim::TimeCategory::kCommunication,
                          comm_ms);
      result.timeline.Add(round, d, sim::TimeCategory::kSerialization,
                          serial_ms);
      result.timeline.Add(round, d, sim::TimeCategory::kOverhead,
                          overhead_ms);
      round_wall_ms = std::max(
          round_wall_ms, compute_ms + comm_ms + serial_ms + overhead_ms);
    }

    converged = proposed == label;
    label.swap(proposed);
    clock_ms += round_wall_ms;
  }
  GUM_CHECK(converged || num_v == 0)
      << "Groute CC failed to converge within the round limit";

  result.iterations = round;
  result.total_ms = clock_ms;
  result.link_bytes = plane.link_bytes();
  result.payload_bytes = plane.payload_bytes();
  result.link_busy_ms = plane.link_busy_ms();
  if (labels_out != nullptr) *labels_out = std::move(label);
  return result;
}

}  // namespace gum::baselines
