// Anchor translation unit: instantiates the baseline engine templates with
// the four benchmark apps so template compile errors surface in the library
// build rather than first in tests.

#include "algos/apps.h"
#include "baselines/groute_like.h"
#include "baselines/gunrock_like.h"
#include "core/engine.h"

namespace gum::baselines {

template class GunrockLikeEngine<algos::BfsApp>;
template class GunrockLikeEngine<algos::SsspApp>;
template class GunrockLikeEngine<algos::WccApp>;
template class GunrockLikeEngine<algos::PageRankApp>;
template class GrouteLikeEngine<algos::BfsApp>;
template class GrouteLikeEngine<algos::SsspApp>;
template class GrouteLikeEngine<algos::WccApp>;
template class GrouteLikeEngine<algos::DeltaPageRankApp>;

}  // namespace gum::baselines

namespace gum::core {

template class GumEngine<algos::BfsApp>;
template class GumEngine<algos::SsspApp>;
template class GumEngine<algos::WccApp>;
template class GumEngine<algos::PageRankApp>;
template class GumEngine<algos::DeltaPageRankApp>;

}  // namespace gum::core
