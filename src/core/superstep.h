// Superstep runtime: the per-executor frontier-expansion layer shared by
// the GUM engine and the Gunrock-like baseline (paper §V, Example 4,
// Step 4: "every worker expands the vertices assigned to it").
//
// One iteration's expansion work is decomposed into work *units* — each a
// (fragment, executor, contiguous vertex range) triple. Units are mutually
// independent:
//   * they read the shared graph/partition/hub-cache (immutable);
//   * they mutate only the values of their own frontier vertices, and the
//     per-fragment ranges are disjoint (SelectStolenRanges partitions each
//     frontier; distinct fragments never share vertices);
//   * messages go into a private MessageStaging buffer and counters into a
//     private UnitCounters record.
// They may therefore run on any number of host threads in any order;
// determinism is restored by merging staging buffers into the MessageStore
// in canonical unit order — exactly the serial engine's loop nest. The
// merge and apply phases themselves parallelize over destination shards
// (disjoint contiguous vertex ranges, core/message_store.h), which leaves
// every per-vertex combine chain untouched (see DESIGN.md, "Determinism
// contract" and "Sharded message plane").
//
// Thread-safety requirement on App: OnFrontier and Apply may mutate the
// vertex value they are handed but must not mutate App member state;
// Scatter and Combine must be pure. Every bundled app satisfies this.
// (Apply runs concurrently across destination shards — disjoint vertex
// ranges — in the sharded apply phase below.)

#ifndef GUM_CORE_SUPERSTEP_H_
#define GUM_CORE_SUPERSTEP_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "core/fsteal.h"
#include "core/hub_cache.h"
#include "core/message_store.h"
#include "graph/csr.h"
#include "graph/partition.h"

namespace gum::core {

// One executor's share of one fragment's frontier.
struct WorkUnit {
  int fragment = 0;
  int executor = 0;
  size_t begin = 0;  // [begin, end) into the fragment's frontier
  size_t end = 0;
};

// Per-unit counters; cell (fragment, executor) of the engine's per-
// iteration matrices. All fields are sums of integer quantities, so
// aggregating them in any order is exact.
struct UnitCounters {
  double edges = 0.0;         // out-edges expanded by this unit
  double hub_edges = 0.0;     // of those, hub-cached remote expansions
  double stolen_edges = 0.0;  // expanded away from the fragment's owner
  uint64_t edges_processed = 0;
  std::vector<double> raw_msgs;  // emitted messages per destination fragment

  void Reset(int num_fragments) {
    edges = 0.0;
    hub_edges = 0.0;
    stolen_edges = 0.0;
    edges_processed = 0;
    raw_msgs.assign(static_cast<size_t>(num_fragments), 0.0);
  }
};

// Builds the iteration's units in canonical order: fragments ascending;
// within a stolen fragment, the plan's active-worker order (the row order
// of SelectStolenRanges). Empty ranges produce no unit. This order defines
// the deterministic merge sequence.
inline std::vector<WorkUnit> BuildWorkUnits(
    const graph::CsrGraph& g,
    const std::vector<std::vector<graph::VertexId>>& frontier,
    const FStealDecision& fs, const std::vector<double>& loads,
    const std::vector<int>& owner_of_fragment,
    const std::vector<int>& active) {
  const int n = static_cast<int>(frontier.size());
  std::vector<WorkUnit> units;
  for (int i = 0; i < n; ++i) {
    if (frontier[i].empty()) continue;
    if (fs.applied && loads[i] > 0) {
      const auto ranges =
          SelectStolenRanges(g, frontier[i], fs.assignment[i], active);
      for (size_t w = 0; w < active.size(); ++w) {
        if (ranges[w].first < ranges[w].second) {
          units.push_back(
              {i, active[w], ranges[w].first, ranges[w].second});
        }
      }
    } else {
      units.push_back({i, owner_of_fragment[i], 0, frontier[i].size()});
    }
  }
  return units;
}

// Expands one unit: OnFrontier/Scatter over the unit's vertex range,
// staging every emitted message and recording the unit's counters.
// hub_cache may be null (baselines without the Example-6 optimization).
// The weighted/unweighted branch is selected once per unit, not re-tested
// on every edge, by instantiating the scatter loop per weight accessor.
template <typename App>
void ExpandUnit(const graph::CsrGraph& g, const graph::Partition& partition,
                const HubCache* hub_cache, int fragment_owner, App& app,
                std::vector<typename App::Value>& values,
                const std::vector<graph::VertexId>& frontier,
                const WorkUnit& unit,
                MessageStaging<typename App::Message>* staged,
                UnitCounters* counters) {
  using Message = typename App::Message;
  const auto expand = [&](auto&& weight_of) {
    for (size_t k = unit.begin; k < unit.end; ++k) {
      const graph::VertexId u = frontier[k];
      const uint32_t deg = g.OutDegree(u);
      const Message payload = app.OnFrontier(u, values[u], deg);
      const auto neighbors = g.OutNeighbors(u);
      const auto weights = g.OutWeights(u);
      for (size_t e = 0; e < neighbors.size(); ++e) {
        const graph::VertexId v = neighbors[e];
        std::optional<Message> msg = app.Scatter(payload, v, weight_of(weights, e));
        if (!msg.has_value()) continue;
        counters->raw_msgs[partition.owner[v]] += 1.0;
        staged->Emit(v, *msg);
      }
      counters->edges += deg;
      if (unit.executor != unit.fragment && hub_cache != nullptr &&
          hub_cache->IsHub(u)) {
        counters->hub_edges += deg;
      }
      if (unit.executor != fragment_owner) counters->stolen_edges += deg;
      counters->edges_processed += deg;
    }
  };
  if (g.has_weights()) {
    expand([](std::span<const float> w, size_t e) { return w[e]; });
  } else {
    expand([](std::span<const float>, size_t) { return 1.0f; });
  }
}

// Expands every unit — serially when pool is null or single-threaded,
// otherwise on the pool. Each unit's staging buffer bins messages by the
// destination shards of `shards` (the merge's parallel axis). staged/
// counters are indexed by unit and reused across iterations (grown on
// demand, buffers cleared in place).
template <typename App>
void ExpandSuperstep(
    ThreadPool* pool, const graph::CsrGraph& g,
    const graph::Partition& partition, const HubCache* hub_cache,
    const std::vector<int>& owner_of_fragment, App& app,
    std::vector<typename App::Value>& values,
    const std::vector<std::vector<graph::VertexId>>& frontier,
    const std::vector<WorkUnit>& units, const ShardMap& shards,
    std::vector<MessageStaging<typename App::Message>>* staged,
    std::vector<UnitCounters>* counters) {
  if (staged->size() < units.size()) staged->resize(units.size());
  if (counters->size() < units.size()) counters->resize(units.size());
  const auto expand_one = [&](size_t idx) {
    GUM_TRACE_SCOPE("expand.unit");
    const WorkUnit& unit = units[idx];
    (*staged)[idx].Configure(shards);
    (*staged)[idx].Clear();
    (*counters)[idx].Reset(partition.num_parts);
    ExpandUnit(g, partition, hub_cache, owner_of_fragment[unit.fragment],
               app, values, frontier[unit.fragment], unit, &(*staged)[idx],
               &(*counters)[idx]);
  };
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t idx = 0; idx < units.size(); ++idx) expand_one(idx);
  } else {
    pool->ParallelFor(units.size(), expand_one);
  }
}

// Scratch reused across iterations by the sharded apply phase. Buffers are
// cleared in place, so steady-state supersteps keep their capacity instead
// of re-growing vectors.
struct ApplyScratch {
  // [shard][fragment] -> activated vertices, ascending within the shard.
  std::vector<std::vector<std::vector<graph::VertexId>>> segments;
  // [shard][fragment] -> applied-message counts.
  std::vector<std::vector<double>> counts;
};

// End-of-superstep apply phase, parallel over destination shards: each
// shard drains its store range in ascending vertex order, applies combined
// messages, and (data-driven mode) pushes activated vertices into per-shard
// per-fragment segments. Segments are then concatenated in shard order —
// shards are ascending contiguous vertex ranges, so each fragment's next
// frontier comes out ascending, identical to the serial drain. In
// fixed-round mode every vertex is applied, absent inboxes with the app's
// Combine identity. next_frontier, when non-null, receives the rebuilt
// frontier (cleared first; capacity reused). apply_counts, when non-null,
// accumulates per-fragment applied-message counts. Clears the store.
template <typename App>
void ApplySuperstep(ThreadPool* pool, const ShardMap& shards,
                    const graph::Partition& partition, App& app,
                    MessageStore<typename App::Message>& store,
                    std::vector<typename App::Value>& values,
                    bool fixed_rounds, ApplyScratch* scratch,
                    std::vector<std::vector<graph::VertexId>>* next_frontier,
                    std::vector<double>* apply_counts) {
  using Message = typename App::Message;
  const int s_count = shards.num_shards();
  const size_t n = static_cast<size_t>(partition.num_parts);
  const bool want_frontier = !fixed_rounds && next_frontier != nullptr;
  const bool want_counts = apply_counts != nullptr;
  if (scratch->segments.size() < static_cast<size_t>(s_count)) {
    scratch->segments.resize(s_count);
  }
  if (scratch->counts.size() < static_cast<size_t>(s_count)) {
    scratch->counts.resize(s_count);
  }

  const auto apply_shard = [&](size_t s) {
    GUM_TRACE_SCOPE("apply.shard");
    auto& segs = scratch->segments[s];
    if (want_frontier) {
      if (segs.size() != n) segs.resize(n);
      for (auto& seg : segs) seg.clear();
    }
    auto& cnt = scratch->counts[s];
    if (want_counts) cnt.assign(n, 0.0);
    const size_t begin = shards.ShardBegin(static_cast<int>(s));
    const size_t end =
        std::min(values.size(), shards.ShardEnd(static_cast<int>(s)));
    if (fixed_rounds) {
      for (size_t v = begin; v < end; ++v) {
        const auto vid = static_cast<graph::VertexId>(v);
        const Message msg =
            store.Has(vid) ? store.Get(vid) : app.InitialAccumulator();
        app.Apply(vid, values[v], msg);
        if (want_counts) cnt[partition.owner[vid]] += 1.0;
      }
    } else {
      store.ForEachPendingInRange(
          begin, end, [&](graph::VertexId v, const Message& msg) {
            if (app.Apply(v, values[v], msg) && want_frontier) {
              segs[partition.owner[v]].push_back(v);
            }
            if (want_counts) cnt[partition.owner[v]] += 1.0;
          });
    }
  };
  if (pool == nullptr || pool->num_threads() <= 1 || s_count <= 1) {
    for (int s = 0; s < s_count; ++s) apply_shard(static_cast<size_t>(s));
  } else {
    pool->ParallelForStatic(static_cast<size_t>(s_count), apply_shard);
  }

  if (want_frontier) {
    for (auto& f : *next_frontier) f.clear();
    for (int s = 0; s < s_count; ++s) {
      const auto& segs = scratch->segments[s];
      for (size_t i = 0; i < segs.size(); ++i) {
        (*next_frontier)[i].insert((*next_frontier)[i].end(),
                                   segs[i].begin(), segs[i].end());
      }
    }
  }
  if (want_counts) {
    // Integer-valued doubles: exact under any summation order; shard order
    // keeps it deterministic anyway.
    for (int s = 0; s < s_count; ++s) {
      for (size_t i = 0; i < n && i < scratch->counts[s].size(); ++i) {
        (*apply_counts)[i] += scratch->counts[s][i];
      }
    }
  }
  store.EndSuperstep();
}

}  // namespace gum::core

#endif  // GUM_CORE_SUPERSTEP_H_
