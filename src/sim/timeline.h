// Per-iteration, per-device time accounting (paper Figures 1, 6, 8, 9).
//
// Every simulated millisecond an engine spends lands in one of four buckets,
// matching the paper's Fig. 6 runtime breakdown:
//   kCompute        — kernel time expanding frontiers / applying updates
//   kCommunication  — data movement over NVLink/PCIe plus starvation
//                     (waiting for stragglers)
//   kSerialization  — packing scattered updates into contiguous buffers
//   kOverhead       — id conversion and the FSteal/OSteal decision work
// The Timeline keeps one record per (iteration, device) so timeline-style
// figures (Fig. 1, Fig. 8) can be regenerated.

#ifndef GUM_SIM_TIMELINE_H_
#define GUM_SIM_TIMELINE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace gum::sim {

enum class TimeCategory : int {
  kCompute = 0,
  kCommunication = 1,
  kSerialization = 2,
  kOverhead = 3,
};
inline constexpr int kNumTimeCategories = 4;

const char* TimeCategoryName(TimeCategory cat);

class Timeline {
 public:
  Timeline() = default;
  explicit Timeline(int num_devices) : num_devices_(num_devices) {}

  int num_devices() const { return num_devices_; }
  int num_iterations() const { return static_cast<int>(iterations_.size()); }

  // Adds `ms` of category `cat` time to device `device` in iteration `iter`.
  // Iterations may be appended in order; adding to iteration k grows the
  // timeline to k+1 iterations.
  void Add(int iter, int device, TimeCategory cat, double ms);

  // Busy time of one device in one iteration, one category.
  double Get(int iter, int device, TimeCategory cat) const;

  // Sum over categories for one device in one iteration.
  double DeviceIterationTotal(int iter, int device) const;

  // max over devices of DeviceIterationTotal — the BSP wall time of the
  // iteration.
  double IterationWall(int iter) const;

  // Whole-run totals.
  double TotalByCategory(TimeCategory cat) const;
  double TotalWall() const;  // sum of iteration walls

  // Fraction of device-cycles spent idle waiting for the iteration's
  // straggler, over the whole run (paper Fig. 8 "stall").
  double StallFraction() const;

  // Devices that did any work in the iteration.
  int ActiveDevices(int iter) const;

  // Renders an ASCII utilization timeline (one row per device, one column
  // per iteration bucket) for Fig. 1-style inspection.
  std::string RenderAscii(int max_columns = 100) const;

  // Writes "iteration,device,compute_ms,communication_ms,serialization_ms,
  // overhead_ms" rows (with header) for external plotting.
  void WriteCsv(std::ostream& os) const;

 private:
  struct DeviceCell {
    std::array<double, kNumTimeCategories> ms{};
  };
  int num_devices_ = 0;
  std::vector<std::vector<DeviceCell>> iterations_;  // [iter][device]
};

}  // namespace gum::sim

#endif  // GUM_SIM_TIMELINE_H_
