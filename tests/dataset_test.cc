#include <gtest/gtest.h>

#include "graph/generators.h"
#include "ml/dataset.h"

namespace gum::ml {
namespace {

TEST(DatasetTest, GenerateFromCorpus) {
  auto g = graph::CsrGraph::FromEdgeList(
      graph::Rmat({.scale = 9, .edge_factor = 6, .seed = 3}));
  ASSERT_TRUE(g.ok());
  CostDatasetOptions opt;
  opt.frontiers_per_graph = 50;
  const Dataset data = GenerateCostDataset({&g.value()}, opt);
  EXPECT_EQ(data.size(), 50u);
  EXPECT_EQ(data.feature_dim(), 6);
  for (const Sample& s : data.samples) {
    EXPECT_GT(s.target, 0.0);
    EXPECT_LT(s.target, 1e3);
    EXPECT_EQ(s.features.size(), 6u);
  }
}

TEST(DatasetTest, Deterministic) {
  auto g = graph::CsrGraph::FromEdgeList(
      graph::Rmat({.scale = 8, .seed = 3}));
  ASSERT_TRUE(g.ok());
  CostDatasetOptions opt;
  opt.frontiers_per_graph = 20;
  const Dataset a = GenerateCostDataset({&g.value()}, opt);
  const Dataset b = GenerateCostDataset({&g.value()}, opt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.samples[i].target, b.samples[i].target);
  }
}

TEST(DatasetTest, NoiseChangesTargets) {
  auto g = graph::CsrGraph::FromEdgeList(
      graph::Rmat({.scale = 8, .seed = 3}));
  ASSERT_TRUE(g.ok());
  CostDatasetOptions noisy;
  noisy.frontiers_per_graph = 20;
  noisy.noise_stddev = 0.5;
  CostDatasetOptions clean = noisy;
  clean.noise_stddev = 0.0;
  const Dataset dn = GenerateCostDataset({&g.value()}, noisy);
  const Dataset dc = GenerateCostDataset({&g.value()}, clean);
  int differing = 0;
  for (size_t i = 0; i < dn.size(); ++i) {
    differing += dn.samples[i].target != dc.samples[i].target;
  }
  EXPECT_GT(differing, 10);
}

TEST(DatasetTest, SplitPartitionsSamples) {
  Dataset data;
  for (int i = 0; i < 100; ++i) {
    data.samples.push_back({{static_cast<double>(i)}, 1.0});
  }
  const auto [train, test] = data.Split(0.8, 42);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
  // Same seed => same split.
  const auto [train2, test2] = data.Split(0.8, 42);
  for (size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(train.samples[i].features[0], train2.samples[i].features[0]);
  }
}

TEST(DatasetTest, DefaultCorpusIsDiverse) {
  CostDatasetOptions opt;
  opt.frontiers_per_graph = 30;
  const Dataset data = GenerateDefaultCostDataset(opt);
  EXPECT_EQ(data.size(), 150u);  // 5 corpus graphs x 30
  double min_t = 1e18, max_t = 0;
  for (const Sample& s : data.samples) {
    min_t = std::min(min_t, s.target);
    max_t = std::max(max_t, s.target);
  }
  EXPECT_GT(max_t / min_t, 1.5) << "targets should span a range";
}

}  // namespace
}  // namespace gum::ml
