#include "core/graph_context.h"

#include <utility>

#include "common/logging.h"
#include "obs/trace.h"

namespace gum::core {

GraphContext::GraphContext(const graph::CsrGraph* g,
                           graph::Partition partition, sim::Topology topology,
                           EngineOptions options,
                           const ml::RegressionModel* cost_model)
    : g_(g),
      partition_(std::move(partition)),
      topology_(std::move(topology)),
      options_(options),
      schedule_(sim::ReductionSchedule::Build(topology_)),
      cost_model_(cost_model != nullptr && !options.exact_cost_oracle
                      ? EdgeCostModel::Learned(cost_model, options.device)
                      : EdgeCostModel::ExactOracle(options.device)) {
  GUM_CHECK(partition_.num_parts == topology_.num_devices())
      << "partition parts must match device count";
  if (options_.enable_hub_cache) {
    hub_cache_ = HubCache(*g_, options_.t4_hub_in_degree);
  }
  host_threads_ = options_.num_host_threads <= 0
                      ? ThreadPool::HardwareThreads()
                      : options_.num_host_threads;
  if (host_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(host_threads_);
  }
  shard_map_ = ShardMap(g_->num_vertices(), options_.num_msg_shards > 0
                                                ? options_.num_msg_shards
                                                : host_threads_);
}

const PullEdges& GraphContext::pull_edges() const {
  std::call_once(pull_once_, [this] {
    GUM_TRACE_SCOPE("expand.pull_build");
    pull_.Build(*g_, partition_);
  });
  return pull_;
}

}  // namespace gum::core
