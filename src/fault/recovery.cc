#include "fault/recovery.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/checkpoint.h"

namespace gum::fault {

core::OStealDecision RebuildOwnership(
    const std::vector<std::vector<double>>& cost,
    const std::vector<double>& loads,
    const sim::ReductionSchedule& survivor_schedule, double sync_per_peer_ns,
    const core::OStealConfig& config, int num_survivors, bool enumerate) {
  GUM_CHECK(num_survivors >= 1 &&
            num_survivors <= survivor_schedule.num_devices());
  if (enumerate) {
    return core::DecideOSteal(cost, loads, survivor_schedule,
                              sync_per_peer_ns, config, num_survivors);
  }
  // OSteal disabled: no voluntary shrinking, the group is every survivor.
  core::OStealDecision dec;
  dec.evaluated = true;
  dec.group_size = num_survivors;
  dec.owner = survivor_schedule.OwnerVectorFor(num_survivors);
  dec.active = survivor_schedule.ActiveFor(num_survivors);
  return dec;
}

RecoveryCharge ComputeRecoveryCharge(
    const RecoveryConfig& config, const std::vector<int>& ckpt_owner,
    const std::vector<int>& new_owner, const std::vector<bool>& failed,
    const std::vector<double>& fragment_bytes,
    const sim::CommPlane* multipath_plane) {
  const size_t n = ckpt_owner.size();
  GUM_CHECK(new_owner.size() == n && failed.size() == n &&
            fragment_bytes.size() == n);
  RecoveryCharge charge;
  charge.detect_ms = config.detect_timeout_us / 1000.0;
  charge.per_device_ms.assign(n, 0.0);
  // Per-device read/migration time. Legacy (null plane): every byte rides
  // the single PCIe host lane — bytes accumulate per device and convert
  // once, the exact pre-multipath arithmetic. Multipath: host read-backs
  // stripe over the PCIe lane + the fastest NVLink relay, and a migrated
  // fragment whose checkpoint owner survived skips the host entirely,
  // moving peer-to-peer over the striped transfer plan.
  std::vector<double> restore_ms(n, 0.0);
  std::vector<double> migrate_ms(n, 0.0);
  if (multipath_plane == nullptr) {
    std::vector<double> restore_bytes(n, 0.0);
    std::vector<double> migrate_bytes(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const int owner = new_owner[i];
      GUM_CHECK(owner >= 0 && owner < static_cast<int>(n) && !failed[owner])
          << "recovery assigned fragment " << i << " to a dead device";
      if (owner == ckpt_owner[i]) {
        restore_bytes[owner] += fragment_bytes[i];
      } else {
        migrate_bytes[owner] += fragment_bytes[i];
        ++charge.fragments_migrated;
      }
    }
    for (size_t d = 0; d < n; ++d) {
      restore_ms[d] = CheckpointTransferMs(restore_bytes[d]);
      migrate_ms[d] = CheckpointTransferMs(migrate_bytes[d]);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const int owner = new_owner[i];
      GUM_CHECK(owner >= 0 && owner < static_cast<int>(n) && !failed[owner])
          << "recovery assigned fragment " << i << " to a dead device";
      const double bytes = fragment_bytes[i];
      if (owner == ckpt_owner[i]) {
        restore_ms[owner] +=
            bytes / multipath_plane->CheckpointWritebackGbps(owner) / 1e6;
        continue;
      }
      ++charge.fragments_migrated;
      const int src = ckpt_owner[i];
      migrate_ms[owner] +=
          !failed[src]
              ? multipath_plane->StripedTransferNs(src, owner, bytes) / 1e6
              : bytes / multipath_plane->CheckpointWritebackGbps(owner) / 1e6;
    }
  }
  for (size_t d = 0; d < n; ++d) {
    if (failed[d]) continue;
    charge.restore_ms = std::max(charge.restore_ms, restore_ms[d]);
    charge.migrate_ms = std::max(charge.migrate_ms, migrate_ms[d]);
    charge.per_device_ms[d] = charge.detect_ms + restore_ms[d] + migrate_ms[d];
  }
  return charge;
}

}  // namespace gum::fault
