#include "bench/datasets.h"

#include <map>

#include "common/logging.h"
#include "graph/generators.h"

namespace gum::bench {

namespace {

using graph::CsrBuildOptions;
using graph::CsrGraph;
using graph::EdgeList;
using graph::Rmat;
using graph::RmatOptions;
using graph::RoadGrid;
using graph::RoadGridOptions;

EdgeList Social(int scale, double edge_factor, uint64_t seed) {
  RmatOptions opt;
  opt.scale = scale;
  opt.edge_factor = edge_factor;
  opt.seed = seed;
  opt.weighted = true;
  // Deeper-than-Graph500 skew: at 1/500 scale the hub share of a device's
  // edge budget must stay comparable to twitter/sinaweibo class graphs for
  // per-iteration frontier imbalance (the DLB driver) to survive scaling.
  opt.a = 0.62;
  opt.b = 0.19;
  opt.c = 0.12;
  // Keep RMAT's id-locality (community structure): vertices with nearby ids
  // are correlated, so locality partitions concentrate frontiers — the
  // per-iteration imbalance of paper Fig. 1/8 depends on it.
  opt.permute_vertices = false;
  return Rmat(opt);
}

// Web graphs: RMAT core + tendril chains. chain_len controls the diameter
// (Table II: uk/arabic/it ~25, webbase 379).
EdgeList Web(int scale, double edge_factor, uint32_t chain_len,
             double tendril_fraction, uint64_t seed) {
  graph::WebCrawlOptions opt;
  opt.scale = scale;
  opt.edge_factor = edge_factor;
  opt.avg_chain_length = chain_len;
  opt.tendril_fraction = tendril_fraction;
  opt.weighted = true;
  opt.seed = seed;
  return graph::WebCrawl(opt);
}

EdgeList Road(uint32_t side, uint64_t seed) {
  RoadGridOptions opt;
  opt.rows = side;
  opt.cols = side;
  opt.seed = seed;
  return RoadGrid(opt);
}

EdgeList Generate(const std::string& abbr) {
  // Social networks (Table II rows 1-5, ascending size).
  if (abbr == "LJ") return Social(13, 10, 101);
  if (abbr == "OR") return Social(13, 24, 102);   // orkut: dense
  if (abbr == "SW") return Social(14, 12, 103);   // sinaweibo: big, diam 5
  if (abbr == "TW") return Social(14, 14, 104);
  if (abbr == "CF") return Social(15, 16, 105);   // friendster: largest
  // Web graphs (rows 6-10).
  if (abbr == "U2") return Web(13, 14, 12, 0.25, 106);
  if (abbr == "AR") return Web(14, 16, 14, 0.25, 107);
  if (abbr == "IT") return Web(14, 14, 12, 0.25, 108);
  if (abbr == "U5") return Web(14, 18, 12, 0.25, 109);
  // webbase: largest web graph AND diameter 379 => long deep tendrils.
  if (abbr == "WB") return Web(15, 12, 96, 0.45, 110);
  // Road networks (rows 11-15, ascending size/diameter).
  if (abbr == "TX") return Road(64, 111);
  if (abbr == "CA") return Road(80, 112);
  if (abbr == "GM") return Road(112, 113);
  if (abbr == "USA") return Road(144, 114);
  if (abbr == "EU") return Road(192, 115);
  GUM_CHECK(false) << "unknown dataset abbreviation: " << abbr;
  return {};
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* specs = new std::vector<DatasetSpec>{
      {"LJ", "soc-livejournal-analog", Domain::kSocial},
      {"OR", "soc-orkut-analog", Domain::kSocial},
      {"SW", "soc-sinaweibo-analog", Domain::kSocial},
      {"TW", "soc-twitter-analog", Domain::kSocial},
      {"CF", "com-friendster-analog", Domain::kSocial},
      {"U2", "uk-2002-analog", Domain::kWeb},
      {"AR", "arabic-2005-analog", Domain::kWeb},
      {"IT", "it-2004-analog", Domain::kWeb},
      {"U5", "uk-2005-analog", Domain::kWeb},
      {"WB", "webbase-2001-analog", Domain::kWeb},
      {"TX", "roadnet-tx-analog", Domain::kRoad},
      {"CA", "roadnet-ca-analog", Domain::kRoad},
      {"GM", "germany-osm-analog", Domain::kRoad},
      {"USA", "road-usa-analog", Domain::kRoad},
      {"EU", "europe-osm-analog", Domain::kRoad},
  };
  return *specs;
}

const std::vector<std::string>& LargeDatasetAbbrs() {
  static const std::vector<std::string>* abbrs =
      new std::vector<std::string>{"CF", "U5", "WB", "USA", "EU"};
  return *abbrs;
}

DatasetGraphs BuildDataset(const std::string& abbr) {
  const DatasetSpec* spec = nullptr;
  for (const DatasetSpec& s : AllDatasets()) {
    if (s.abbr == abbr) spec = &s;
  }
  GUM_CHECK(spec != nullptr) << "unknown dataset: " << abbr;

  const EdgeList list = Generate(abbr);
  DatasetGraphs out;
  out.spec = *spec;
  auto directed = CsrGraph::FromEdgeList(list);
  GUM_CHECK_OK(directed.status());
  out.directed = std::move(directed).value();
  CsrBuildOptions sym;
  sym.symmetrize = true;
  auto symmetric = CsrGraph::FromEdgeList(list, sym);
  GUM_CHECK_OK(symmetric.status());
  out.symmetric = std::move(symmetric).value();
  return out;
}

graph::VertexId PickSource(const graph::CsrGraph& g) {
  graph::VertexId best = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(best)) best = v;
  }
  return best;
}

}  // namespace gum::bench
