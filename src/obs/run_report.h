// Schema-versioned JSON run reports (observability plane, DESIGN.md §10).
//
// One report = one engine run, merged into a single machine-diffable JSON
// artifact: run metadata, the RunResult scalars, the steal-decision stats
// (plan sizes, simplex iterations, MILP nodes, decision host-ms), the full
// per-iteration/per-device simulated Timeline, the per-link CommPlane
// telemetry matrices, and (optionally) a metrics registry snapshot.
//
// The report is what CI and the bench harness consume; the schema is
// versioned so downstream diffing can reject mixed-version comparisons.
// For a fixed input the output is byte-deterministic.

#ifndef GUM_OBS_RUN_REPORT_H_
#define GUM_OBS_RUN_REPORT_H_

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/run_result.h"

namespace gum::obs {

class MetricsRegistry;

// v2 adds an optional "faults" section (fault-plane counters); it is only
// emitted when the run had a fault plan, checkpoints, or recoveries, so
// faults-off reports differ from v1 only in this version number. v2 also
// carries an optional "comm.multipath" section (striping telemetry,
// sim/transfer_plan.h), emitted only when multipath was active — reports
// from multipath-off runs stay byte-identical to pre-multipath v2 reports.
// v3 adds an optional "mutations" section (graph/mutation.h: epoch count,
// delta bytes, compactions, lost-monotonicity fallbacks), emitted only
// when a mutation stream was active — mutations-off reports stay
// byte-identical to v2 reports modulo this version number.
// v4 adds an optional "async" section (core/async/, DESIGN.md §15: batch
// and stale-skip counters, the resolved delta, the bucket-occupancy
// histogram, priority-range steal stats, quiescence census rounds),
// emitted only when the run executed under EngineOptions::mode == kAsync —
// mode-off reports stay byte-identical to v3 reports modulo this version
// number.
inline constexpr int kRunReportSchemaVersion = 4;

// Free-form identification of the run. `config` carries whatever knobs the
// caller wants recorded (flag echoes, dataset scale, seeds, ...); pairs are
// emitted in the order given.
struct RunReportMeta {
  std::string system;     // "gum", "gunrock", "groute"
  std::string algorithm;  // "bfs", "sssp", "pr", "wcc"
  std::string dataset;
  int num_devices = 0;
  std::vector<std::pair<std::string, std::string>> config;
};

// Writes the complete report. `metrics` may be null (the "metrics" key is
// then an empty object).
void WriteRunReport(std::ostream& os, const RunReportMeta& meta,
                    const core::RunResult& result,
                    const MetricsRegistry* metrics);

// --- serving-stream report (DESIGN.md §13) ---
// One report = one served query stream against a loaded GraphContext.
// Plain structs (filled by the serve layer) keep obs free of a serve
// dependency — the dependency points serve -> obs, like the engine's.

inline constexpr int kServeReportSchemaVersion = 1;

struct ServeQueryReport {
  int id = 0;
  int batch = 0;
  int lane = 0;
  double latency_ms = 0.0;
};

struct ServeReportStats {
  int batch_width = 0;
  int queries = 0;
  int batches = 0;
  double makespan_ms = 0.0;
  double queries_per_second = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double recovery_ms = 0.0;
  std::vector<ServeQueryReport> queries_detail;
};

// Writes the serving report: schema version, run meta, the stream scalars,
// the per-query table, and (optionally) a metrics snapshot. `metrics` may
// be null. Byte-deterministic for a fixed input.
void WriteServeReport(std::ostream& os, const RunReportMeta& meta,
                      const ServeReportStats& stats,
                      const MetricsRegistry* metrics);

}  // namespace gum::obs

#endif  // GUM_OBS_RUN_REPORT_H_
