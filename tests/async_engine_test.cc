// Async engine mode (src/core/async/, DESIGN.md §15): worklist unit tests,
// convergence-to-reference for every async-capable app, and the relaxed
// determinism contract — byte-reproducible for a fixed seed across the
// full {1,2,4,8} threads x {1,4} shards matrix (DESIGN.md §7).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "algos/apps.h"
#include "algos/astar.h"
#include "algos/reference.h"
#include "core/async/worklist.h"
#include "core/engine.h"
#include "tests/test_util.h"

namespace gum {
namespace {

using algos::AStarApp;
using algos::BfsApp;
using algos::DeltaPageRankApp;
using algos::SsspApp;
using algos::WccApp;
using core::AsyncWorklistKind;
using core::EngineMode;
using core::EngineOptions;
using core::GumEngine;
using core::PriorityWorklist;
using core::RunResult;
using core::WorklistEntry;
using graph::VertexId;
using test::MakePartition;
using test::MaxDegreeSource;
using test::RoadGraph;
using test::SocialGraph;
using test::SocialGraphSym;
using test::TestEngineOptions;
using test::Topo;

PriorityWorklist BucketWl(double delta) {
  return PriorityWorklist(AsyncWorklistKind::kBuckets, delta,
                          /*smq_queues=*/0, /*steal_prob=*/0.0,
                          /*steal_batch_size=*/0, /*seed=*/1);
}

TEST(PriorityWorklistTest, BucketsPopLowestFirstFifoWithin) {
  PriorityWorklist wl = BucketWl(1.0);
  wl.Push(10, 2.5);
  wl.Push(11, 0.5);
  wl.Push(12, 2.1);
  wl.Push(13, 0.9);
  ASSERT_EQ(wl.size(), 4u);
  EXPECT_EQ(wl.MinBucket(), 0);

  std::vector<WorklistEntry> out;
  EXPECT_EQ(wl.Pop(wl.MinBucket(), 100, &out), 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].vertex, 11u);  // FIFO within the bucket
  EXPECT_EQ(out[1].vertex, 13u);

  out.clear();
  EXPECT_EQ(wl.MinBucket(), 2);
  EXPECT_EQ(wl.Pop(wl.MinBucket(), 100, &out), 2);
  EXPECT_EQ(out[0].vertex, 10u);
  EXPECT_EQ(out[1].vertex, 12u);
  EXPECT_TRUE(wl.empty());
}

TEST(PriorityWorklistTest, PopRespectsBandBoundAndBatchCap) {
  PriorityWorklist wl = BucketWl(1.0);
  for (int i = 0; i < 6; ++i) {
    wl.Push(static_cast<VertexId>(i), static_cast<double>(i));
  }
  std::vector<WorklistEntry> out;
  // Band bound: only buckets <= 2.
  EXPECT_EQ(wl.Pop(/*max_bucket=*/2, 100, &out), 3);
  // Batch cap mid-bucket.
  out.clear();
  EXPECT_EQ(wl.Pop(/*max_bucket=*/100, 2, &out), 2);
  EXPECT_EQ(wl.size(), 1u);
}

TEST(PriorityWorklistTest, ExtractTailTakesColdBucketsKeepsHottest) {
  PriorityWorklist wl = BucketWl(1.0);
  // Bucket 0: 2 entries; bucket 5: 3; bucket 9: 3.
  wl.Push(1, 0.1);
  wl.Push(2, 0.2);
  for (int i = 0; i < 3; ++i) wl.Push(static_cast<VertexId>(10 + i), 5.5);
  for (int i = 0; i < 3; ++i) wl.Push(static_cast<VertexId>(20 + i), 9.5);

  std::vector<WorklistEntry> stolen;
  const int got = wl.ExtractTail(/*fraction=*/0.5, &stolen);
  EXPECT_EQ(got, 6);  // whole buckets from the tail: 9 then 5
  EXPECT_EQ(wl.size(), 2u);
  EXPECT_EQ(wl.MinBucket(), 0);  // the hottest bucket never leaves
  // Ascending bucket order in the payload.
  ASSERT_EQ(stolen.size(), 6u);
  EXPECT_EQ(stolen.front().vertex, 10u);
  EXPECT_EQ(stolen.back().vertex, 22u);
}

TEST(PriorityWorklistTest, ExtractTailNeverDrainsSingleBucket) {
  PriorityWorklist wl = BucketWl(1.0);
  for (int i = 0; i < 8; ++i) wl.Push(static_cast<VertexId>(i), 0.5);
  std::vector<WorklistEntry> stolen;
  EXPECT_EQ(wl.ExtractTail(0.9, &stolen), 0);
  EXPECT_EQ(wl.size(), 8u);
}

TEST(PriorityWorklistTest, SmqSameSeedSamePopSequence) {
  auto run = [](uint64_t seed) {
    PriorityWorklist wl(AsyncWorklistKind::kSmq, 1.0, /*smq_queues=*/4,
                        /*steal_prob=*/0.5, /*steal_batch_size=*/4, seed);
    for (int i = 0; i < 64; ++i) {
      wl.Push(static_cast<VertexId>(i), static_cast<double>((i * 7) % 16));
    }
    std::vector<VertexId> order;
    std::vector<WorklistEntry> out;
    while (!wl.empty()) {
      out.clear();
      wl.Pop(wl.MinBucket(), 8, &out);
      for (const auto& e : out) order.push_back(e.vertex);
    }
    return order;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // a different seed explores another order
}

TEST(PriorityWorklistTest, SmqRebalancesAreCountedAndLossless) {
  PriorityWorklist wl(AsyncWorklistKind::kSmq, 1.0, /*smq_queues=*/4,
                      /*steal_prob=*/1.0, /*steal_batch_size=*/4, /*seed=*/3);
  for (int i = 0; i < 128; ++i) {
    wl.Push(static_cast<VertexId>(i), static_cast<double>(i % 10));
  }
  std::vector<WorklistEntry> out;
  size_t popped = 0;
  while (!wl.empty()) {
    const size_t before = out.size();
    wl.Pop(wl.MinBucket(), 8, &out);
    popped += out.size() - before;
  }
  EXPECT_EQ(popped, 128u);  // rebalances never lose or duplicate entries
  EXPECT_GT(wl.stats().smq_rebalances, 0u);
  EXPECT_GT(wl.stats().smq_rebalanced_entries, 0u);
}

EngineOptions AsyncOptions() {
  EngineOptions opt = TestEngineOptions();
  opt.mode = EngineMode::kAsync;
  return opt;
}

TEST(AsyncEngineTest, SsspMatchesDijkstraExactly) {
  const auto g = SocialGraph(10, 7, /*weighted=*/true);
  GumEngine<SsspApp> engine(&g, MakePartition(g, 4), Topo(4),
                            AsyncOptions());
  SsspApp app;
  app.source = MaxDegreeSource(g);
  std::vector<float> dist;
  const RunResult result = engine.Run(app, &dist);
  EXPECT_TRUE(result.async_active);
  EXPECT_GT(result.async_batches, 0);
  EXPECT_GE(result.quiescence_rounds, 1);
  const auto expected = algos::ref::Sssp(g, app.source);
  ASSERT_EQ(dist.size(), expected.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(dist[v], expected[v]) << "vertex " << v;
  }
}

TEST(AsyncEngineTest, BfsMatchesReference) {
  const auto g = SocialGraph();
  GumEngine<BfsApp> engine(&g, MakePartition(g, 4), Topo(4), AsyncOptions());
  BfsApp app;
  app.source = MaxDegreeSource(g);
  std::vector<uint32_t> depth;
  engine.Run(app, &depth);
  EXPECT_EQ(depth, algos::ref::Bfs(g, app.source));
}

TEST(AsyncEngineTest, WccMatchesReference) {
  const auto g = SocialGraphSym(9);
  GumEngine<WccApp> engine(&g, MakePartition(g, 4), Topo(4), AsyncOptions());
  WccApp app;
  std::vector<VertexId> labels;
  engine.Run(app, &labels);
  EXPECT_EQ(labels, algos::ref::Wcc(g));
}

TEST(AsyncEngineTest, AStarMatchesSsspReferenceExactly) {
  const uint32_t side = 28;
  const auto g = RoadGraph(side);
  GumEngine<AStarApp> engine(&g, MakePartition(g, 4), Topo(4),
                             AsyncOptions());
  AStarApp app;
  app.source = 0;
  app.target = g.num_vertices() - 1;
  app.heuristic = algos::GridManhattanHeuristic(g, side, side, app.target);
  std::vector<float> dist;
  const RunResult result = engine.Run(app, &dist);
  EXPECT_TRUE(result.async_active);
  // Any heuristic converges to the exact Dijkstra distances — the
  // heuristic shapes the visit order, never the fixpoint.
  const auto expected = algos::ref::Sssp(g, app.source);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(dist[v], expected[v]) << "vertex " << v;
  }
}

TEST(AsyncEngineTest, DeltaPageRankConvergesToPowerIteration) {
  const auto g = SocialGraph(9, 5);
  GumEngine<DeltaPageRankApp> engine(&g, MakePartition(g, 4), Topo(4),
                                     AsyncOptions());
  DeltaPageRankApp app;
  app.num_vertices = g.num_vertices();
  app.epsilon = 1e-12;
  std::vector<DeltaPageRankApp::State> state;
  const RunResult result = engine.Run(app, &state);
  EXPECT_TRUE(result.async_active);
  const auto expected = algos::ref::PageRank(g, 0.85, 100);
  double max_err = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_err = std::max(max_err, std::abs(state[v].rank - expected[v]));
  }
  EXPECT_LT(max_err, 1e-6);
}

TEST(AsyncEngineTest, SmqWorklistStillExact) {
  const auto g = SocialGraph(10, 7, /*weighted=*/true);
  EngineOptions opt = AsyncOptions();
  opt.async.worklist = AsyncWorklistKind::kSmq;
  opt.async.steal_prob = 0.7;
  opt.async.steal_batch_size = 16;
  GumEngine<SsspApp> engine(&g, MakePartition(g, 4), Topo(4), opt);
  SsspApp app;
  app.source = MaxDegreeSource(g);
  std::vector<float> dist;
  engine.Run(app, &dist);
  EXPECT_EQ(dist, algos::ref::Sssp(g, app.source));
}

// The relaxed determinism contract (DESIGN.md §7): for a fixed
// AsyncConfig::seed the whole run — values, simulated time, batch and
// steal counts — is byte-reproducible across every host-thread and
// message-shard count, for both worklist flavors and all three
// acceptance apps.
template <typename App, typename Value>
void ExpectSeedDeterminism(const graph::CsrGraph& g, App app,
                           EngineOptions base) {
  std::vector<Value> ref_values;
  RunResult ref;
  bool have_ref = false;
  for (const int threads : {1, 2, 4, 8}) {
    for (const int shards : {1, 4}) {
      EngineOptions opt = base;
      opt.num_host_threads = threads;
      opt.num_msg_shards = shards;
      GumEngine<App> engine(&g, MakePartition(g, 4), Topo(4), opt);
      App run_app = app;
      std::vector<Value> values;
      const RunResult result = engine.Run(run_app, &values);
      if (!have_ref) {
        ref_values = values;
        ref = result;
        have_ref = true;
        continue;
      }
      ASSERT_EQ(values.size(), ref_values.size());
      for (size_t v = 0; v < values.size(); ++v) {
        ASSERT_EQ(std::memcmp(&values[v], &ref_values[v], sizeof(Value)), 0)
            << "vertex " << v << " differs at threads=" << threads
            << " shards=" << shards;
      }
      EXPECT_EQ(result.total_ms, ref.total_ms)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(result.async_batches, ref.async_batches);
      EXPECT_EQ(result.messages_sent, ref.messages_sent);
      EXPECT_EQ(result.async_range_steals, ref.async_range_steals);
      EXPECT_EQ(result.quiescence_rounds, ref.quiescence_rounds);
    }
  }
}

TEST(AsyncEngineTest, SsspSeedDeterministicAcrossThreadsAndShards) {
  const auto g = SocialGraph(10, 7, /*weighted=*/true);
  SsspApp app;
  app.source = MaxDegreeSource(g);
  EngineOptions opt = AsyncOptions();
  opt.async.worklist = AsyncWorklistKind::kSmq;  // the stochastic flavor
  opt.async.seed = 42;
  ExpectSeedDeterminism<SsspApp, float>(g, app, opt);
}

TEST(AsyncEngineTest, AStarSeedDeterministicAcrossThreadsAndShards) {
  const uint32_t side = 24;
  const auto g = RoadGraph(side);
  AStarApp app;
  app.source = 0;
  app.target = g.num_vertices() - 1;
  app.heuristic = algos::GridManhattanHeuristic(g, side, side, app.target);
  ExpectSeedDeterminism<AStarApp, float>(g, app, AsyncOptions());
}

TEST(AsyncEngineTest, DeltaPrSeedDeterministicAcrossThreadsAndShards) {
  const auto g = SocialGraph(8, 5);
  DeltaPageRankApp app;
  app.num_vertices = g.num_vertices();
  app.epsilon = 1e-10;
  ExpectSeedDeterminism<DeltaPageRankApp, DeltaPageRankApp::State>(
      g, app, AsyncOptions());
}

TEST(AsyncEngineTest, RangeStealEngagesOnImbalanceAndStaysExact) {
  // Segment partition on a road grid: the wavefront lives in one strip at
  // a time, so the other devices idle — exactly the LT regime the range
  // steal attacks.
  const uint32_t side = 48;
  const auto g = RoadGraph(side);
  EngineOptions opt = AsyncOptions();
  opt.async.range_steal_min_victim = 32;
  GumEngine<SsspApp> engine(
      &g, MakePartition(g, 4, graph::PartitionerKind::kSegment), Topo(4),
      opt);
  SsspApp app;
  app.source = 0;
  std::vector<float> dist;
  const RunResult result = engine.Run(app, &dist);
  EXPECT_GT(result.async_range_steals, 0);
  EXPECT_GT(result.async_range_steal_entries, 0);
  EXPECT_GT(result.async_range_steal_bytes, 0.0);
  EXPECT_EQ(dist, algos::ref::Sssp(g, app.source));
}

TEST(AsyncEngineTest, RangeStealOffStillConverges) {
  const uint32_t side = 32;
  const auto g = RoadGraph(side);
  EngineOptions opt = AsyncOptions();
  opt.async.enable_range_steal = false;
  GumEngine<SsspApp> engine(
      &g, MakePartition(g, 4, graph::PartitionerKind::kSegment), Topo(4),
      opt);
  SsspApp app;
  app.source = 0;
  std::vector<float> dist;
  const RunResult result = engine.Run(app, &dist);
  EXPECT_EQ(result.async_range_steals, 0);
  EXPECT_EQ(dist, algos::ref::Sssp(g, app.source));
}

TEST(AsyncEngineTest, BucketHistogramPopulated) {
  const auto g = RoadGraph(24);
  GumEngine<SsspApp> engine(&g, MakePartition(g, 2), Topo(2),
                            AsyncOptions());
  SsspApp app;
  app.source = 0;
  const RunResult result = engine.Run(app);
  uint64_t total = 0;
  int nonzero = 0;
  for (const uint64_t c : result.async_bucket_histogram) {
    total += c;
    if (c > 0) ++nonzero;
  }
  EXPECT_GT(total, 0u);
  EXPECT_GT(nonzero, 1) << "a road SSSP spans many delta buckets";
  EXPECT_GT(result.async_delta, 0.0);
}

TEST(AsyncEngineTest, BspModeIsUntouchedByDefault) {
  const auto g = SocialGraph(9, 5);
  GumEngine<SsspApp> engine(&g, MakePartition(g, 4), Topo(4),
                            TestEngineOptions());
  SsspApp app;
  app.source = MaxDegreeSource(g);
  const RunResult result = engine.Run(app);
  EXPECT_FALSE(result.async_active);
  EXPECT_EQ(result.async_batches, 0);
  EXPECT_EQ(result.quiescence_rounds, 0);
  EXPECT_TRUE(result.async_bucket_histogram.empty());
}

TEST(AsyncEngineTest, SingleDeviceWorks) {
  const auto g = SocialGraph(9, 5);
  GumEngine<SsspApp> engine(&g, MakePartition(g, 1), Topo(1),
                            AsyncOptions());
  SsspApp app;
  app.source = MaxDegreeSource(g);
  std::vector<float> dist;
  const RunResult result = engine.Run(app, &dist);
  EXPECT_EQ(result.async_range_steals, 0) << "nothing to steal on 1 GPU";
  EXPECT_EQ(dist, algos::ref::Sssp(g, app.source));
}

}  // namespace
}  // namespace gum
