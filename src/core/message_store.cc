#include "core/message_store.h"

namespace gum::core {

MessageStoreBase::MessageStoreBase(size_t num_vertices)
    : set_(num_vertices) {}

size_t MessageStoreBase::PendingCount() const { return set_.Count(); }

void MessageStoreBase::EndSuperstep() { set_.Clear(); }

}  // namespace gum::core
