#include "common/thread_pool.h"

#include <algorithm>
#include <string>

#include "obs/trace.h"

namespace gum {

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads <= 0 ? HardwareThreads() : num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int t = 0; t < num_threads_ - 1; ++t) {
    workers_.emplace_back([this, t] {
      // Deterministic trace lanes: the caller is lane 0 ("host-main"),
      // workers are 1..k-1 — stable across runs, unlike OS thread ids.
      obs::SetThreadLane(t + 1, "pool-worker-" + std::to_string(t + 1));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunIndices() {
  const std::function<void(size_t)>& fn = *task_;
  const size_t grain = grain_;
  for (size_t block = next_.fetch_add(1, std::memory_order_relaxed);
       block * grain < count_;
       block = next_.fetch_add(1, std::memory_order_relaxed)) {
    const size_t begin = block * grain;
    const size_t end = std::min(count_, begin + grain);
    for (size_t i = begin; i < end; ++i) fn(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    {
      GUM_TRACE_SCOPE("pool.busy");
      RunIndices();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --unfinished_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn,
                             size_t grain) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  if (workers_.empty() || count <= grain) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &fn;
    count_ = count;
    grain_ = grain;
    next_.store(0, std::memory_order_relaxed);
    unfinished_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  {
    GUM_TRACE_SCOPE("pool.busy");
    RunIndices();
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return unfinished_ == 0; });
  task_ = nullptr;
}

void ThreadPool::ParallelForStatic(size_t count,
                                   const std::function<void(size_t)>& fn) {
  const size_t threads = static_cast<size_t>(num_threads_);
  ParallelFor(count, fn, (count + threads - 1) / threads);
}

}  // namespace gum
