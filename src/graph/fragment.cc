#include "graph/fragment.h"

#include <algorithm>

namespace gum::graph {

std::vector<Fragment> BuildFragments(const CsrGraph& g, const Partition& p) {
  std::vector<Fragment> fragments(p.num_parts);
  for (int i = 0; i < p.num_parts; ++i) {
    fragments[i].part_id = i;
    fragments[i].inner_vertices = p.part_vertices[i];
    fragments[i].num_inner_out_edges = p.part_out_edges[i];
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const uint32_t pu = p.owner[u];
    Fragment& frag = fragments[pu];
    for (VertexId v : g.OutNeighbors(u)) {
      if (p.owner[v] != pu) {
        ++frag.num_cross_edges;
        frag.outer_vertices.push_back(v);
      }
    }
  }
  for (Fragment& frag : fragments) {
    std::sort(frag.outer_vertices.begin(), frag.outer_vertices.end());
    frag.outer_vertices.erase(
        std::unique(frag.outer_vertices.begin(), frag.outer_vertices.end()),
        frag.outer_vertices.end());
  }
  return fragments;
}

}  // namespace gum::graph
