#include "obs/run_report.h"

#include "common/json.h"
#include "obs/metrics.h"
#include "sim/timeline.h"

namespace gum::obs {

namespace {

void WriteMatrix(JsonWriter& w, const char* key,
                 const std::vector<std::vector<double>>& m) {
  w.Key(key).BeginArray();
  for (const auto& row : m) {
    w.BeginArray();
    for (double v : row) w.Value(v);
    w.EndArray();
  }
  w.EndArray();
}

}  // namespace

void WriteRunReport(std::ostream& os, const RunReportMeta& meta,
                    const core::RunResult& result,
                    const MetricsRegistry* metrics) {
  const sim::Timeline& tl = result.timeline;

  JsonWriter w(os, 1);
  w.BeginObject();
  w.Key("schema_version").Value(kRunReportSchemaVersion);

  w.Key("meta").BeginObject();
  w.Key("system").Value(meta.system);
  w.Key("algorithm").Value(meta.algorithm);
  w.Key("dataset").Value(meta.dataset);
  w.Key("num_devices").Value(meta.num_devices);
  w.Key("config").BeginObject();
  for (const auto& [k, v] : meta.config) w.Key(k).Value(v);
  w.EndObject();
  w.EndObject();

  w.Key("result").BeginObject();
  w.Key("iterations").Value(result.iterations);
  w.Key("total_ms").Value(result.total_ms);
  w.Key("edges_processed").Value(result.edges_processed);
  w.Key("messages_sent").Value(result.messages_sent);
  w.Key("stolen_edges_total").Value(result.stolen_edges_total);
  w.Key("compute_ms").Value(result.ComputeMs());
  w.Key("communication_ms").Value(result.CommunicationMs());
  w.Key("serialization_ms").Value(result.SerializationMs());
  w.Key("overhead_ms").Value(result.OverheadMs());
  w.Key("starvation_ms").Value(result.StarvationMs());
  w.Key("stall_fraction").Value(tl.StallFraction());
  w.EndObject();

  w.Key("steal").BeginObject();
  w.Key("fsteal").BeginObject();
  w.Key("applied_iterations").Value(result.fsteal_applied_iterations);
  w.Key("decision_host_ms_total").Value(result.fsteal_decision_host_ms_total);
  w.Key("sim_overhead_ms").Value(result.fsteal_sim_overhead_ms);
  w.Key("lp_iterations_total").Value(result.fsteal_lp_iterations_total);
  w.Key("milp_nodes_total").Value(result.fsteal_milp_nodes_total);
  w.Key("plan_cells_total").Value(result.fsteal_plan_cells_total);
  w.EndObject();
  w.Key("osteal").BeginObject();
  w.Key("shrink_events").Value(result.osteal_shrink_events);
  w.Key("decision_host_ms_total").Value(result.osteal_decision_host_ms_total);
  w.Key("sim_overhead_ms").Value(result.osteal_sim_overhead_ms);
  w.Key("lp_iterations_total").Value(result.osteal_lp_iterations_total);
  w.Key("milp_nodes_total").Value(result.osteal_milp_nodes_total);
  w.EndObject();
  w.EndObject();

  w.Key("iterations").BeginArray();
  for (const core::IterationStats& it : result.iteration_stats) {
    w.BeginObject();
    w.Key("iteration").Value(it.iteration);
    w.Key("wall_ms").Value(it.wall_ms);
    w.Key("group_size").Value(it.group_size);
    w.Key("fsteal_applied").Value(it.fsteal_applied);
    w.Key("osteal_evaluated").Value(it.osteal_evaluated);
    w.Key("group_size_changed").Value(it.group_size_changed);
    w.Key("fsteal_decision_host_ms").Value(it.fsteal_decision_host_ms);
    w.Key("osteal_decision_host_ms").Value(it.osteal_decision_host_ms);
    w.Key("stolen_edges").Value(it.stolen_edges);
    w.Key("fsteal_plan_cells").Value(it.fsteal_plan_cells);
    w.EndObject();
  }
  w.EndArray();

  // Full per-(iteration, device) bucket matrix — the data behind paper
  // Figs. 1/6/8. Rows are [compute, communication, serialization, overhead]
  // in ms, one row per device.
  w.Key("timeline").BeginObject();
  w.Key("num_devices").Value(tl.num_devices());
  w.Key("num_iterations").Value(tl.num_iterations());
  w.Key("categories").BeginArray();
  for (int c = 0; c < sim::kNumTimeCategories; ++c) {
    w.Value(sim::TimeCategoryName(static_cast<sim::TimeCategory>(c)));
  }
  w.EndArray();
  w.Key("per_iteration").BeginArray();
  for (int iter = 0; iter < tl.num_iterations(); ++iter) {
    w.BeginObject();
    w.Key("wall_ms").Value(tl.IterationWall(iter));
    w.Key("devices").BeginArray();
    for (int d = 0; d < tl.num_devices(); ++d) {
      w.BeginArray();
      for (int c = 0; c < sim::kNumTimeCategories; ++c) {
        w.Value(tl.Get(iter, d, static_cast<sim::TimeCategory>(c)));
      }
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  // Fault-plane counters (DESIGN.md §11). Gated so a faults-off run emits
  // no "faults" key at all — its report stays byte-identical to a build
  // without the fault subsystem (modulo schema_version).
  if (result.fault_plan_active || result.checkpoints_taken > 0 ||
      result.recovery_events > 0) {
    w.Key("faults").BeginObject();
    w.Key("plan_active").Value(result.fault_plan_active);
    w.Key("checkpoints_taken").Value(result.checkpoints_taken);
    w.Key("checkpoint_bytes_total").Value(result.checkpoint_bytes_total);
    w.Key("checkpoint_ms_total").Value(result.checkpoint_ms_total);
    w.Key("devices_failed").Value(result.devices_failed);
    w.Key("recovery_events").Value(result.recovery_events);
    w.Key("fragments_migrated").Value(result.fragments_migrated);
    w.Key("recovery_detect_ms").Value(result.recovery_detect_ms);
    w.Key("recovery_restore_ms").Value(result.recovery_restore_ms);
    w.Key("recovery_migrate_ms").Value(result.recovery_migrate_ms);
    w.Key("recovery_charged_ms").Value(result.RecoveryChargedMs());
    w.Key("lost_work_ms").Value(result.lost_work_ms);
    w.Key("straggler_ms").Value(result.straggler_ms);
    w.Key("link_fault_iterations").Value(result.link_fault_iterations);
    w.EndObject();
  }

  // Mutation-plane counters (DESIGN.md §14). Gated like the faults
  // section: a mutations-off run emits no "mutations" key, so its report
  // stays byte-identical to a v2 report modulo schema_version.
  if (result.mutation_plane_active) {
    w.Key("mutations").BeginObject();
    w.Key("epochs").Value(result.mutation_epochs);
    w.Key("events_applied").Value(result.mutation_events_applied);
    w.Key("noops").Value(result.mutation_noops);
    w.Key("delta_bytes").Value(result.mutation_delta_bytes);
    w.Key("compactions").Value(result.mutation_compactions);
    w.Key("incremental_epochs").Value(result.mutation_incremental_epochs);
    w.Key("skipped_epochs").Value(result.mutation_skipped_epochs);
    w.Key("fallbacks").Value(result.mutation_fallbacks);
    w.Key("apply_ms").Value(result.mutation_apply_ms);
    w.Key("compact_ms").Value(result.mutation_compact_ms);
    w.Key("restore_ms").Value(result.mutation_restore_ms);
    w.EndObject();
  }

  // Async-mode counters (core/async/, DESIGN.md §15). Gated like the
  // faults and mutations sections: a --mode=bsp run emits no "async" key,
  // so its report stays byte-identical to a v3 report modulo
  // schema_version.
  if (result.async_active) {
    w.Key("async").BeginObject();
    w.Key("batches").Value(result.async_batches);
    w.Key("stale_skips").Value(result.async_stale_skips);
    w.Key("delta").Value(result.async_delta);
    w.Key("bucket_histogram").BeginArray();
    for (const uint64_t c : result.async_bucket_histogram) w.Value(c);
    w.EndArray();
    w.Key("range_steals").Value(result.async_range_steals);
    w.Key("range_steal_entries").Value(result.async_range_steal_entries);
    w.Key("range_steal_bytes").Value(result.async_range_steal_bytes);
    w.Key("smq_rebalances").Value(result.async_smq_rebalances);
    w.Key("quiescence_rounds").Value(result.quiescence_rounds);
    w.EndObject();
  }

  w.Key("comm").BeginObject();
  w.Key("total_remote_bytes").Value(result.TotalRemoteBytes());
  w.Key("total_payload_bytes").Value(result.TotalPayloadBytes());
  WriteMatrix(w, "link_bytes", result.link_bytes);
  WriteMatrix(w, "payload_bytes", result.payload_bytes);
  WriteMatrix(w, "link_busy_ms", result.link_busy_ms);
  // Multi-path striping telemetry (sim/transfer_plan.h). Gated like the
  // faults section: with multipath off the comm object is byte-identical
  // to a v2 report without the feature.
  if (result.multipath_active) {
    const sim::MultipathStats& mp = result.multipath;
    w.Key("multipath").BeginObject();
    w.Key("bulk_transfers").Value(mp.bulk_transfers);
    w.Key("striped_transfers").Value(mp.striped_transfers);
    w.Key("paths_used").Value(mp.paths_used);
    w.Key("paths_dropped").Value(mp.paths_dropped);
    w.Key("direct_bytes").Value(mp.direct_bytes);
    w.Key("transit_bytes").Value(mp.transit_bytes);
    w.Key("pcie_bytes").Value(mp.pcie_bytes);
    w.Key("single_path_ns").Value(mp.single_path_ns);
    w.Key("striped_ns").Value(mp.striped_ns);
    w.Key("stripe_efficiency").Value(mp.StripeEfficiency());
    w.EndObject();
  }
  w.EndObject();

  w.Key("metrics");
  if (metrics != nullptr) {
    metrics->AppendJson(w);
  } else {
    w.BeginObject().EndObject();
  }

  w.EndObject();
  os << "\n";
}

void WriteServeReport(std::ostream& os, const RunReportMeta& meta,
                      const ServeReportStats& stats,
                      const MetricsRegistry* metrics) {
  JsonWriter w(os, 1);
  w.BeginObject();
  w.Key("schema_version").Value(kServeReportSchemaVersion);

  w.Key("meta").BeginObject();
  w.Key("system").Value(meta.system);
  w.Key("algorithm").Value(meta.algorithm);
  w.Key("dataset").Value(meta.dataset);
  w.Key("num_devices").Value(meta.num_devices);
  w.Key("config").BeginObject();
  for (const auto& [k, v] : meta.config) w.Key(k).Value(v);
  w.EndObject();
  w.EndObject();

  w.Key("serve").BeginObject();
  w.Key("batch_width").Value(stats.batch_width);
  w.Key("queries").Value(stats.queries);
  w.Key("batches").Value(stats.batches);
  w.Key("makespan_ms").Value(stats.makespan_ms);
  w.Key("queries_per_second").Value(stats.queries_per_second);
  w.Key("p50_ms").Value(stats.p50_ms);
  w.Key("p90_ms").Value(stats.p90_ms);
  w.Key("p99_ms").Value(stats.p99_ms);
  w.Key("recovery_ms").Value(stats.recovery_ms);
  w.EndObject();

  w.Key("queries").BeginArray();
  for (const ServeQueryReport& q : stats.queries_detail) {
    w.BeginObject();
    w.Key("id").Value(q.id);
    w.Key("batch").Value(q.batch);
    w.Key("lane").Value(q.lane);
    w.Key("latency_ms").Value(q.latency_ms);
    w.EndObject();
  }
  w.EndArray();

  w.Key("metrics");
  if (metrics != nullptr) {
    metrics->AppendJson(w);
  } else {
    w.BeginObject().EndObject();
  }

  w.EndObject();
  os << "\n";
}

}  // namespace gum::obs
