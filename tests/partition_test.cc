#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "graph/generators.h"
#include "graph/partition.h"

namespace gum::graph {
namespace {

CsrGraph MakeSocial() {
  auto g = CsrGraph::FromEdgeList(
      Rmat({.scale = 10, .edge_factor = 8, .seed = 21}));
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(PartitionTest, RejectsBadArguments) {
  const CsrGraph g = MakeSocial();
  EXPECT_FALSE(PartitionGraph(g, 0).ok());
  EXPECT_FALSE(PartitionGraph(g, -3).ok());
}

TEST(PartitionTest, SinglePartTrivial) {
  const CsrGraph g = MakeSocial();
  auto p = PartitionGraph(g, 1);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->edge_cut, 0u);
  EXPECT_EQ(p->part_out_edges[0], g.num_edges());
  EXPECT_DOUBLE_EQ(p->EdgeImbalance(), 1.0);
}

TEST(PartitionTest, PartitionerNames) {
  EXPECT_STREQ(PartitionerName(PartitionerKind::kSegment), "seg");
  EXPECT_STREQ(PartitionerName(PartitionerKind::kRandom), "random");
  EXPECT_STREQ(PartitionerName(PartitionerKind::kMetisLike), "metis");
}

class PartitionerSuite
    : public ::testing::TestWithParam<std::tuple<PartitionerKind, int>> {};

TEST_P(PartitionerSuite, CoversAllVerticesExactlyOnce) {
  const auto [kind, parts] = GetParam();
  const CsrGraph g = MakeSocial();
  auto p = PartitionGraph(g, parts, {.kind = kind});
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(static_cast<int>(p->part_vertices.size()), parts);
  size_t total = 0;
  for (const auto& verts : p->part_vertices) total += verts.size();
  EXPECT_EQ(total, g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(p->owner[v], static_cast<uint32_t>(parts));
  }
}

TEST_P(PartitionerSuite, EdgeCountsConsistent) {
  const auto [kind, parts] = GetParam();
  const CsrGraph g = MakeSocial();
  auto p = PartitionGraph(g, parts, {.kind = kind});
  ASSERT_TRUE(p.ok());
  EdgeId total = 0;
  for (EdgeId e : p->part_out_edges) total += e;
  EXPECT_EQ(total, g.num_edges());
  EXPECT_LE(p->edge_cut, g.num_edges());
}

TEST_P(PartitionerSuite, ReasonablyBalanced) {
  const auto [kind, parts] = GetParam();
  const CsrGraph g = MakeSocial();
  auto p = PartitionGraph(g, parts, {.kind = kind});
  ASSERT_TRUE(p.ok());
  // No partitioner should be catastrophically imbalanced on RMAT. The bound
  // is loose because a single hub can dominate a part.
  EXPECT_LT(p->EdgeImbalance(), 2.5) << PartitionerName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSizes, PartitionerSuite,
    ::testing::Combine(::testing::Values(PartitionerKind::kSegment,
                                         PartitionerKind::kRandom,
                                         PartitionerKind::kMetisLike),
                       ::testing::Values(2, 3, 4, 8)),
    [](const auto& info) {
      return std::string(PartitionerName(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(PartitionTest, SegmentIsContiguous) {
  const CsrGraph g = MakeSocial();
  auto p = PartitionGraph(g, 4, {.kind = PartitionerKind::kSegment});
  ASSERT_TRUE(p.ok());
  for (VertexId v = 0; v + 1 < g.num_vertices(); ++v) {
    EXPECT_LE(p->owner[v], p->owner[v + 1]);  // nondecreasing over ids
  }
}

TEST(PartitionTest, RandomIsSeedStable) {
  const CsrGraph g = MakeSocial();
  auto a = PartitionGraph(g, 4, {.kind = PartitionerKind::kRandom,
                                 .seed = 9});
  auto b = PartitionGraph(g, 4, {.kind = PartitionerKind::kRandom,
                                 .seed = 9});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->owner, b->owner);
}

TEST(PartitionTest, MetisLikeCutsLessThanRandomOnLocalGraph) {
  // On a road grid, a locality-aware partitioner must beat random hashing
  // on edge cut by a wide margin.
  auto g = CsrGraph::FromEdgeList(RoadGrid({.rows = 40, .cols = 40}));
  ASSERT_TRUE(g.ok());
  auto metis = PartitionGraph(*g, 4, {.kind = PartitionerKind::kMetisLike});
  auto random = PartitionGraph(*g, 4, {.kind = PartitionerKind::kRandom});
  ASSERT_TRUE(metis.ok());
  ASSERT_TRUE(random.ok());
  EXPECT_LT(metis->edge_cut * 4, random->edge_cut);
}

TEST(PartitionTest, SegmentCutsLessThanRandomOnLocalGraph) {
  auto g = CsrGraph::FromEdgeList(RoadGrid({.rows = 40, .cols = 40}));
  ASSERT_TRUE(g.ok());
  auto seg = PartitionGraph(*g, 4, {.kind = PartitionerKind::kSegment});
  auto random = PartitionGraph(*g, 4, {.kind = PartitionerKind::kRandom});
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(random.ok());
  EXPECT_LT(seg->edge_cut * 2, random->edge_cut);
}


TEST(PartitionTest, MetisBalanceSlackRespected) {
  const CsrGraph g = MakeSocial();
  PartitionOptions tight;
  tight.kind = PartitionerKind::kMetisLike;
  tight.balance_slack = 1.02;
  PartitionOptions loose = tight;
  loose.balance_slack = 1.6;
  auto pt = PartitionGraph(g, 4, tight);
  auto pl = PartitionGraph(g, 4, loose);
  ASSERT_TRUE(pt.ok());
  ASSERT_TRUE(pl.ok());
  // Looser slack lets refinement chase a smaller cut at the cost of
  // balance; the tight run must stay close to 1.0 imbalance.
  EXPECT_LT(pt->EdgeImbalance(), 1.6);
  EXPECT_LE(pl->edge_cut, static_cast<EdgeId>(1.05 * pt->edge_cut));
}

TEST(PartitionTest, MorePartsThanVerticesStillValid) {
  EdgeList list;
  list.num_vertices = 3;
  list.edges = {{0, 1, 1.0f}, {1, 2, 1.0f}};
  auto g = CsrGraph::FromEdgeList(list);
  ASSERT_TRUE(g.ok());
  auto p = PartitionGraph(*g, 8, {.kind = PartitionerKind::kMetisLike});
  ASSERT_TRUE(p.ok());
  size_t total = 0;
  for (const auto& verts : p->part_vertices) total += verts.size();
  EXPECT_EQ(total, 3u);
}

}  // namespace
}  // namespace gum::graph
