#include "graph/frontier_features.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/stats.h"

namespace gum::graph {

FrontierFeatures ExtractFrontierFeatures(
    const CsrGraph& g, std::span<const VertexId> frontier) {
  FrontierFeatures f;
  if (frontier.empty()) return f;

  double in_sum = 0, out_sum = 0;
  uint32_t in_min = std::numeric_limits<uint32_t>::max(), in_max = 0;
  uint32_t out_min = std::numeric_limits<uint32_t>::max(), out_max = 0;
  std::vector<double> out_degrees;
  out_degrees.reserve(frontier.size());
  const bool has_in = g.has_in_csr();
  for (const VertexId v : frontier) {
    const uint32_t od = g.OutDegree(v);
    const uint32_t id = has_in ? g.InDegree(v) : od;
    out_sum += od;
    in_sum += id;
    out_min = std::min(out_min, od);
    out_max = std::max(out_max, od);
    in_min = std::min(in_min, id);
    in_max = std::max(in_max, id);
    out_degrees.push_back(od);
  }
  const double n = static_cast<double>(frontier.size());
  f.avg_in_degree = in_sum / n;
  f.avg_out_degree = out_sum / n;
  f.in_degree_range = static_cast<double>(in_max - in_min);
  f.out_degree_range = static_cast<double>(out_max - out_min);
  f.gini = GiniCoefficient(out_degrees);
  f.entropy = DegreeEntropy(out_degrees);
  return f;
}

}  // namespace gum::graph
