// Figure 8: frontier-stealing effectiveness (Exp-3). SSSP on the sinaweibo
// analog under a locality (seg) partition; with FSteal off the critical
// iterations have stragglers and idle fast GPUs; with FSteal on, per-GPU
// work times flatten and the stall share collapses.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/datasets.h"
#include "bench/runner.h"
#include "common/table_printer.h"

using namespace gum;        // NOLINT(build/namespaces)
using namespace gum::bench; // NOLINT(build/namespaces)

namespace {

double WorkMs(const core::RunResult& r, int it, int d) {
  return r.timeline.Get(it, d, sim::TimeCategory::kCompute) +
         r.timeline.Get(it, d, sim::TimeCategory::kCommunication) +
         r.timeline.Get(it, d, sim::TimeCategory::kSerialization);
}

// Stall fraction over work time (overhead barrier excluded), whole run.
double WorkStallFraction(const core::RunResult& r) {
  double busy = 0, capacity = 0;
  for (int it = 0; it < r.timeline.num_iterations(); ++it) {
    double wall = 0;
    int active = 0;
    for (int d = 0; d < r.timeline.num_devices(); ++d) {
      const double w = WorkMs(r, it, d);
      wall = std::max(wall, w);
      if (w > 0) ++active;
    }
    for (int d = 0; d < r.timeline.num_devices(); ++d) {
      if (WorkMs(r, it, d) > 0) busy += WorkMs(r, it, d);
    }
    capacity += wall * active;
  }
  return capacity > 0 ? 1.0 - busy / capacity : 0.0;
}

}  // namespace

int main() {
  std::cout << "=== Figure 8: FSteal load-balance effectiveness — SSSP on "
               "sinaweibo analog, 8 GPUs, seg partition ===\n\n";
  const DatasetGraphs data = BuildDataset("SW");

  auto run = [&](bool fsteal) {
    RunConfig config;
    config.system = System::kGum;
    config.algo = Algo::kSssp;
    config.devices = 8;
    config.partitioner = graph::PartitionerKind::kSegment;
    config.gum.enable_fsteal = fsteal;
    config.gum.enable_osteal = false;
    return RunBenchmark(data, config);
  };
  const core::RunResult off = run(false);
  const core::RunResult on = run(true);

  // The two critical (heaviest-wall) iterations of the non-stealing run.
  std::vector<int> critical;
  {
    std::vector<std::pair<double, int>> by_wall;
    for (int it = 0; it < off.timeline.num_iterations(); ++it) {
      double wall = 0;
      for (int d = 0; d < 8; ++d) wall = std::max(wall, WorkMs(off, it, d));
      by_wall.push_back({wall, it});
    }
    std::sort(by_wall.rbegin(), by_wall.rend());
    critical = {by_wall[0].second, by_wall[1].second};
    std::sort(critical.begin(), critical.end());
  }

  for (const int it : critical) {
    TablePrinter tp({"iteration " + std::to_string(it), "GPU0", "GPU1",
                     "GPU2", "GPU3", "GPU4", "GPU5", "GPU6", "GPU7",
                     "wall"});
    for (const bool steal : {false, true}) {
      const core::RunResult& r = steal ? on : off;
      std::vector<std::string> row = {steal ? "FSteal on" : "FSteal off"};
      double wall = 0;
      for (int d = 0; d < 8; ++d) {
        const double w =
            it < r.timeline.num_iterations() ? WorkMs(r, it, d) : 0.0;
        wall = std::max(wall, w);
        row.push_back(TablePrinter::Num(w, 2));
      }
      row.push_back(TablePrinter::Num(wall, 2));
      tp.AddRow(row);
    }
    tp.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "whole-run work-stall share: FSteal off "
            << TablePrinter::Num(100.0 * WorkStallFraction(off), 1)
            << "%  ->  FSteal on "
            << TablePrinter::Num(100.0 * WorkStallFraction(on), 1)
            << "%   (paper: 72%/67% idle on the fast GPUs -> ~4%)\n";
  std::cout << "end-to-end: " << TablePrinter::Num(off.total_ms, 1)
            << " ms -> " << TablePrinter::Num(on.total_ms, 1)
            << " ms with FSteal ("
            << TablePrinter::Num(off.total_ms / on.total_ms, 2)
            << "x), stolen edges: "
            << static_cast<long long>(on.stolen_edges_total) << "\n";
  return 0;
}
