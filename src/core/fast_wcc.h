// GUM's production connected-components path (the "WCC" rows of paper
// Table III).
//
// Plain min-label propagation needs ~diameter supersteps — hopeless on
// road networks (2000+ hops). Like libgrape-lite, GUM's WCC instead runs a
// diameter-independent scheme on the BSP substrate:
//   per round: every device hooks a union-find forest over the edges of the
//   fragments it owns plus the labels of the previous round, proposes the
//   component minimum for every touched vertex, and ships boundary
//   proposals to the vertices' owners (aggregated, topology-aware —
//   unlike the Groute version, transfers use the best NVLink path instead
//   of a fixed ring). Rounds synchronize with the usual p*m barrier and
//   converge in O(log |V|).
//
// Exposed as a standalone solver (not an engine App) because it needs
// whole-fragment computation, which the per-vertex GAS concept cannot
// express. The generic WccApp remains available for apples-to-apples
// label-propagation comparisons.

#ifndef GUM_CORE_FAST_WCC_H_
#define GUM_CORE_FAST_WCC_H_

#include <vector>

#include "core/run_result.h"
#include "graph/csr.h"
#include "graph/partition.h"
#include "sim/comm_plane.h"
#include "sim/device.h"
#include "sim/topology.h"

namespace gum::core {

struct FastWccOptions {
  sim::DeviceParams device;
  int max_rounds = 64;
  // Interconnect contention model for the per-round proposal shipments.
  sim::ContentionModel contention = sim::ContentionModel::kOff;
};

// Runs on a symmetrized graph; labels_out[v] = min vertex id of v's
// component.
RunResult FastWcc(const graph::CsrGraph& g, const graph::Partition& partition,
                  const sim::Topology& topology, const FastWccOptions& options,
                  std::vector<graph::VertexId>* labels_out = nullptr);

}  // namespace gum::core

#endif  // GUM_CORE_FAST_WCC_H_
