# Empty dependencies file for social_pagerank.
# This may be replaced when dependencies are built.
