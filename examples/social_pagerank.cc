// Social-network influence ranking: classic and delta PageRank on a skewed
// RMAT social graph, with frontier stealing balancing the hub-heavy
// iterations. Shows how to plug a trained cost model into the engine
// instead of the exact oracle.
//
//   $ ./social_pagerank

#include <algorithm>
#include <iostream>
#include <numeric>

#include "algos/apps.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "ml/dataset.h"
#include "ml/polynomial_regression.h"
#include "sim/topology.h"

using namespace gum;  // NOLINT(build/namespaces)

int main() {
  // A hub-heavy social graph.
  graph::RmatOptions gen;
  gen.scale = 13;
  gen.edge_factor = 16;
  gen.a = 0.6;
  gen.b = 0.19;
  gen.c = 0.13;
  gen.seed = 7;
  auto g = graph::CsrGraph::FromEdgeList(graph::Rmat(gen));
  if (!g.ok()) {
    std::cerr << g.status().ToString() << "\n";
    return 1;
  }
  std::cout << "social graph: " << g->num_vertices() << " users, "
            << g->num_edges() << " follows\n";

  // Train the cost model from running logs, exactly the production setup
  // (paper §III-B). The engine falls back to the exact oracle without one.
  ml::CostDatasetOptions log_opt;
  log_opt.frontiers_per_graph = 80;
  const ml::Dataset logs = ml::GenerateDefaultCostDataset(log_opt);
  ml::PolynomialRegression cost_model(4);
  if (Status s = cost_model.Fit(logs); !s.ok()) {
    std::cerr << "cost model training failed: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "cost model: " << cost_model.name() << ", RMSRE "
            << ml::Rmsre(cost_model, logs) << " on the training logs\n\n";

  auto partition = graph::PartitionGraph(
      *g, 8, {.kind = graph::PartitionerKind::kSegment});
  auto topology = sim::Topology::HybridCubeMeshSubset(8);
  core::EngineOptions options;
  options.exact_cost_oracle = false;  // use the learned model
  options.fsteal.t1_min_max_load = 512;
  options.fsteal.t2_min_imbalance = 256;

  // Classic PageRank: 20 synchronous rounds, every vertex active.
  {
    core::GumEngine<algos::PageRankApp> engine(&*g, *partition, *topology,
                                               options, &cost_model);
    algos::PageRankApp pr;
    pr.num_vertices = g->num_vertices();
    pr.rounds = 20;
    std::vector<double> rank;
    const core::RunResult result = engine.Run(pr, &rank);

    std::vector<graph::VertexId> order(g->num_vertices());
    std::iota(order.begin(), order.end(), 0u);
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](auto a, auto b) { return rank[a] > rank[b]; });
    std::cout << "classic PageRank, " << result.iterations << " rounds, "
              << result.total_ms << " ms simulated\n";
    std::cout << "top influencers:";
    for (int i = 0; i < 5; ++i) {
      std::cout << "  user " << order[i] << " (" << rank[order[i]] << ")";
    }
    std::cout << "\n";
  }

  // Delta PageRank: data-driven; compare iteration counts.
  {
    core::GumEngine<algos::DeltaPageRankApp> engine(
        &*g, *partition, *topology, options, &cost_model);
    algos::DeltaPageRankApp dpr;
    dpr.num_vertices = g->num_vertices();
    dpr.epsilon = 1e-10;
    std::vector<algos::DeltaPageRankApp::State> state;
    const core::RunResult result = engine.Run(dpr, &state);
    std::cout << "delta PageRank to epsilon=1e-10: " << result.iterations
              << " iterations, " << result.total_ms << " ms simulated, "
              << result.fsteal_applied_iterations
              << " iterations rebalanced by FSteal\n";
  }
  return 0;
}
