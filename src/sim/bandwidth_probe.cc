#include "sim/bandwidth_probe.h"

namespace gum::sim {

std::vector<std::vector<double>> ProbeBandwidths(
    const Topology& topology, const BandwidthProbeOptions& options) {
  const int n = topology.num_devices();
  std::vector<std::vector<double>> measured(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      // Simulate `repetitions` bulk copies and time them: the transfer
      // itself takes bytes / effective bandwidth, plus the fixed setup the
      // probe subtracts back out (with the usual averaging).
      double total_us = 0.0;
      for (int rep = 0; rep < options.repetitions; ++rep) {
        const double transfer_us =
            options.transfer_bytes / topology.EffectiveBandwidth(i, j) /
            1000.0;  // bytes / (GB/s) = ns -> us
        total_us += transfer_us + options.setup_us;
      }
      const double mean_us =
          total_us / options.repetitions - options.setup_us;
      measured[i][j] = options.transfer_bytes / (mean_us * 1000.0);
    }
  }
  return measured;
}

}  // namespace gum::sim
