// Deterministic per-superstep message store.
//
// The BSP engines combine every message addressed to a vertex into one
// inbox slot ("early aggregation", paper Fig. 4b). The store pairs the
// typed inbox with a membership Bitmap and supports two write paths:
//
//   * Deposit — direct combine, used when a single thread expands frontiers;
//   * MessageStaging + Merge — each worker records its outgoing messages in
//     a private staging buffer during parallel expansion; the buffers are
//     then merged serially in canonical work-unit order (fragments
//     ascending, executors in plan order). Because a staging buffer
//     preserves generation order and the merge replays the serial engine's
//     loop nest, the combine chain for every vertex — and therefore the
//     "first writer pays the transfer" attribution of agg_msgs — is
//     bit-identical to the single-threaded engine for any thread count.
//
// See DESIGN.md, "Determinism contract".

#ifndef GUM_CORE_MESSAGE_STORE_H_
#define GUM_CORE_MESSAGE_STORE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/bitmap.h"
#include "graph/types.h"

namespace gum::core {

// Untyped membership state shared by every MessageStore<Message>
// instantiation (definitions in message_store.cc).
class MessageStoreBase {
 public:
  MessageStoreBase() = default;
  explicit MessageStoreBase(size_t num_vertices);

  size_t num_vertices() const { return set_.size(); }
  bool Has(graph::VertexId v) const { return set_.Test(v); }
  // Vertices with a pending combined message.
  size_t PendingCount() const;
  // Forgets every pending message; call once the apply phase has drained
  // the store.
  void EndSuperstep();

 protected:
  Bitmap set_;
};

// One worker's staged outgoing messages, in generation order.
template <typename Message>
class MessageStaging {
 public:
  void Emit(graph::VertexId v, const Message& m) {
    entries_.emplace_back(v, m);
  }
  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }
  const std::vector<std::pair<graph::VertexId, Message>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<graph::VertexId, Message>> entries_;
};

template <typename Message>
class MessageStore : public MessageStoreBase {
 public:
  MessageStore() = default;
  explicit MessageStore(size_t num_vertices)
      : MessageStoreBase(num_vertices), inbox_(num_vertices) {}

  // Deposits one message: the first writer stores it, later writers fold
  // theirs in with `combine(old, incoming)`. Returns true iff v had no
  // pending message — the event that pays the transfer under the early-
  // aggregation model.
  template <typename CombineFn>
  bool Deposit(graph::VertexId v, const Message& m, CombineFn&& combine) {
    if (set_.TestAndSet(v)) {
      inbox_[v] = m;
      return true;
    }
    inbox_[v] = combine(inbox_[v], m);
    return false;
  }

  // Replays one staging buffer in its recorded order; `first_writer(v)`
  // fires for each deposit that claimed a fresh slot. Merging every work
  // unit's buffer in canonical unit order reproduces the serial engine's
  // combine chains exactly.
  template <typename CombineFn, typename FirstWriterFn>
  void Merge(const MessageStaging<Message>& staged, CombineFn&& combine,
             FirstWriterFn&& first_writer) {
    for (const auto& [v, m] : staged.entries()) {
      if (Deposit(v, m, combine)) first_writer(v);
    }
  }

  const Message& Get(graph::VertexId v) const { return inbox_[v]; }

  // Pending messages in ascending vertex order: fn(v, combined_message).
  template <typename Fn>
  void ForEachPending(Fn&& fn) const {
    set_.ForEachSet([&](size_t v) {
      fn(static_cast<graph::VertexId>(v), inbox_[v]);
    });
  }

 private:
  std::vector<Message> inbox_;
};

}  // namespace gum::core

#endif  // GUM_CORE_MESSAGE_STORE_H_
