// Compressed Sparse Row graph representation.
//
// CsrGraph stores the out-adjacency in CSR form, optionally the in-adjacency
// (needed for pull-style kernels and for in-degree features of the cost
// model, paper Table I), and optional edge weights (SSSP). Vertices are
// dense uint32 ids in [0, num_vertices).

#ifndef GUM_GRAPH_CSR_H_
#define GUM_GRAPH_CSR_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace gum::graph {

struct CsrBuildOptions {
  bool remove_self_loops = true;
  bool deduplicate = true;      // keep the first of duplicate (src,dst) pairs
  bool symmetrize = false;      // add reverse edge for every edge (for WCC)
  bool build_in_csr = true;     // also build the in-adjacency
  bool sort_neighbors = true;   // sort adjacency lists by target id
};

class CsrGraph {
 public:
  CsrGraph() = default;

  // Builds a CSR graph from an edge list. Fails with InvalidArgument if any
  // endpoint id is >= edges.num_vertices.
  static Result<CsrGraph> FromEdgeList(const EdgeList& list,
                                       const CsrBuildOptions& options = {});

  VertexId num_vertices() const {
    return static_cast<VertexId>(
        out_offsets_.empty() ? 0 : out_offsets_.size() - 1);
  }
  EdgeId num_edges() const { return out_targets_.size(); }
  bool has_in_csr() const { return !in_offsets_.empty(); }
  bool has_weights() const { return !out_weights_.empty(); }

  uint32_t OutDegree(VertexId v) const {
    return static_cast<uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  uint32_t InDegree(VertexId v) const {
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }
  // Weights parallel to OutNeighbors(v); empty span if unweighted.
  std::span<const float> OutWeights(VertexId v) const {
    if (out_weights_.empty()) return {};
    return {out_weights_.data() + out_offsets_[v],
            out_weights_.data() + out_offsets_[v + 1]};
  }
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_targets_.data() + in_offsets_[v],
            in_targets_.data() + in_offsets_[v + 1]};
  }

  // Offset of v's first out-edge in the global edge array; edge e of vertex v
  // has global index OutEdgeBase(v) + e.
  EdgeId OutEdgeBase(VertexId v) const { return out_offsets_[v]; }

  // Approximate resident bytes (topology + weights).
  size_t MemoryBytes() const;

 private:
  std::vector<EdgeId> out_offsets_;    // size num_vertices + 1
  std::vector<VertexId> out_targets_;  // size num_edges
  std::vector<float> out_weights_;     // size num_edges or 0
  std::vector<EdgeId> in_offsets_;     // size num_vertices + 1 or 0
  std::vector<VertexId> in_targets_;   // size num_edges or 0
};

}  // namespace gum::graph

#endif  // GUM_GRAPH_CSR_H_
