// Tests for the observability plane (src/obs/): golden-file Chrome-trace
// export, byte-deterministic metrics export, concurrent recording from
// pool threads (the suite the ThreadSanitizer CI job watches), and the
// run-report schema round-trip through the in-tree JSON parser.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "sim/timeline.h"

namespace gum::obs {
namespace {

// ---------------------------------------------------------------------------
// Chrome trace export

// The exact export of a fixed span set. Two devices, two iterations (the
// second iteration starts at the first's BSP wall = 3 ms), plus two
// explicit host spans. If this golden changes, Perfetto compatibility must
// be re-checked by hand (ISSUE acceptance: the file loads in Perfetto).
constexpr char kChromeTraceGolden[] = R"json({
 "displayTimeUnit": "ms",
 "traceEvents": [
  {
   "ph": "M",
   "pid": 1,
   "name": "process_name",
   "args": {
    "name": "simulated devices (vGPU lanes)"
   }
  },
  {
   "ph": "M",
   "pid": 1,
   "tid": 0,
   "name": "thread_name",
   "args": {
    "name": "vGPU 0"
   }
  },
  {
   "ph": "M",
   "pid": 1,
   "tid": 1,
   "name": "thread_name",
   "args": {
    "name": "vGPU 1"
   }
  },
  {
   "ph": "M",
   "pid": 2,
   "name": "process_name",
   "args": {
    "name": "host runtime (wall clock)"
   }
  },
  {
   "ph": "X",
   "pid": 1,
   "tid": 0,
   "name": "computation",
   "ts": 0,
   "dur": 2000,
   "args": {
    "iteration": 0
   }
  },
  {
   "ph": "X",
   "pid": 1,
   "tid": 0,
   "name": "communication",
   "ts": 2000,
   "dur": 1000,
   "args": {
    "iteration": 0
   }
  },
  {
   "ph": "X",
   "pid": 1,
   "tid": 0,
   "name": "computation",
   "ts": 3000,
   "dur": 1500,
   "args": {
    "iteration": 1
   }
  },
  {
   "ph": "X",
   "pid": 1,
   "tid": 1,
   "name": "computation",
   "ts": 0,
   "dur": 500,
   "args": {
    "iteration": 0
   }
  },
  {
   "ph": "X",
   "pid": 1,
   "tid": 1,
   "name": "overhead",
   "ts": 500,
   "dur": 250,
   "args": {
    "iteration": 0
   }
  },
  {
   "ph": "X",
   "pid": 1,
   "tid": 1,
   "name": "serialization",
   "ts": 3000,
   "dur": 750,
   "args": {
    "iteration": 1
   }
  },
  {
   "ph": "X",
   "pid": 2,
   "tid": 0,
   "name": "gum.expand",
   "ts": 10,
   "dur": 40
  },
  {
   "ph": "X",
   "pid": 2,
   "tid": 1,
   "name": "pool.busy",
   "ts": 12.5,
   "dur": 30
  }
 ]
}
)json";

sim::Timeline GoldenTimeline() {
  sim::Timeline tl(2);
  tl.Add(0, 0, sim::TimeCategory::kCompute, 2.0);
  tl.Add(0, 0, sim::TimeCategory::kCommunication, 1.0);
  tl.Add(0, 1, sim::TimeCategory::kCompute, 0.5);
  tl.Add(0, 1, sim::TimeCategory::kOverhead, 0.25);
  tl.Add(1, 0, sim::TimeCategory::kCompute, 1.5);
  tl.Add(1, 1, sim::TimeCategory::kSerialization, 0.75);
  return tl;
}

TEST(TraceTest, ChromeTraceMatchesGolden) {
  TraceSession session;
  session.AddSimulatedTimeline(GoldenTimeline());
  session.AddHostSpan(0, "gum.expand", 10.0, 40.0);
  session.AddHostSpan(1, "pool.busy", 12.5, 30.0);

  std::ostringstream os;
  session.WriteChromeTrace(os);
  EXPECT_EQ(os.str(), kChromeTraceGolden);
}

TEST(TraceTest, ChromeTraceIsValidJsonAndInsertionOrderIndependent) {
  // Host spans added out of lane/ts order export identically to the golden
  // session: the writer sorts by (lane, ts).
  TraceSession session;
  session.AddHostSpan(1, "pool.busy", 12.5, 30.0);
  session.AddHostSpan(0, "gum.expand", 10.0, 40.0);
  session.AddSimulatedTimeline(GoldenTimeline());

  std::ostringstream os;
  session.WriteChromeTrace(os);
  EXPECT_EQ(os.str(), kChromeTraceGolden);

  const auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->at("displayTimeUnit").string_value(), "ms");
  const auto& events = doc->at("traceEvents").array();
  int metadata = 0, complete = 0;
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").string_value();
    if (ph == "M") ++metadata;
    if (ph == "X") {
      ++complete;
      EXPECT_GE(e.at("dur").number(), 0.0);
    }
  }
  EXPECT_EQ(metadata, 4);  // 2 process names + 2 vGPU lane names
  EXPECT_EQ(complete, 8);  // 6 simulated buckets + 2 host spans
}

TEST(TraceTest, DisabledScopeRecordsNothing) {
  ASSERT_FALSE(TracingEnabled());
  { GUM_TRACE_SCOPE("never-recorded"); }

  TraceSession session;
  session.Start();
  EXPECT_TRUE(TracingEnabled());
  session.Stop();
  EXPECT_FALSE(TracingEnabled());
  EXPECT_EQ(session.host_span_count(), 0u);
}

TEST(TraceTest, ScopedSpansLandInSession) {
  TraceSession session;
  session.Start();
  {
    GUM_TRACE_SCOPE("outer");
    GUM_TRACE_SCOPE("inner");
  }
  session.Stop();
  EXPECT_EQ(session.host_span_count(), 2u);

  // Spans after Stop are dropped, not misattributed.
  { GUM_TRACE_SCOPE("after-stop"); }
  EXPECT_EQ(session.host_span_count(), 2u);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(MetricsTest, HistogramBucketGeometry) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
}

// The determinism contract: the export depends only on the multiset of
// recorded values, never on recording order (integer buckets and sums).
TEST(MetricsTest, ExportIsOrderIndependentAndByteDeterministic) {
  const std::vector<uint64_t> values = {0, 1, 5, 7, 1024, 65535, 3};

  MetricsRegistry a;
  a.GetCounter("gum_iterations_total").Increment(7);
  a.GetGauge("gum_group_size", {{"system", "gum"}}).Set(8.0);
  Histogram& ha = a.GetHistogram("gum_transfer_bytes");
  for (uint64_t v : values) ha.Observe(v);

  MetricsRegistry b;
  Histogram& hb = b.GetHistogram("gum_transfer_bytes");
  for (auto it = values.rbegin(); it != values.rend(); ++it) hb.Observe(*it);
  b.GetGauge("gum_group_size", {{"system", "gum"}}).Set(8.0);
  Counter& cb = b.GetCounter("gum_iterations_total");
  for (int i = 0; i < 7; ++i) cb.Increment();

  std::ostringstream prom_a, prom_b, json_a, json_b;
  a.WritePrometheus(prom_a);
  b.WritePrometheus(prom_b);
  a.WriteJson(json_a);
  b.WriteJson(json_b);
  EXPECT_EQ(prom_a.str(), prom_b.str());
  EXPECT_EQ(json_a.str(), json_b.str());

  const auto doc = ParseJson(json_a.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->at("counters").array().size(), 1u);
  EXPECT_EQ(doc->at("gauges").array().size(), 1u);
  EXPECT_EQ(doc->at("histograms").array().size(), 1u);
  const auto& h = doc->at("histograms").array()[0];
  EXPECT_EQ(h.at("count").int_value(),
            static_cast<int64_t>(values.size()));
  EXPECT_EQ(h.at("sum").int_value(), 66575);
}

TEST(MetricsTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry reg;
  Counter& c1 = reg.GetCounter("x", {{"b", "2"}, {"a", "1"}});
  Counter& c2 = reg.GetCounter("x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(reg.size(), 1u);
}

// ---------------------------------------------------------------------------
// Concurrent recording (exercised under TSan by the parallel CI job)

TEST(ObsConcurrencyTest, PoolThreadsRecordSpansAndMetricsConcurrently) {
  constexpr int kThreads = 4;
  constexpr size_t kItems = 512;

  MetricsRegistry reg;
  Counter& items = reg.GetCounter("items_total");
  Histogram& sizes = reg.GetHistogram("item_size");

  TraceSession session;
  session.Start();
  std::atomic<uint64_t> checksum{0};
  {
    ThreadPool pool(kThreads);
    pool.ParallelFor(
        kItems,
        [&](size_t i) {
          GUM_TRACE_SCOPE("work.item");
          items.Increment();
          sizes.Observe(static_cast<uint64_t>(i));
          checksum.fetch_add(i, std::memory_order_relaxed);
        },
        /*grain=*/8);
  }  // pool joins; worker buffers retire into the registry
  session.Stop();

  EXPECT_EQ(items.value(), kItems);
  EXPECT_EQ(sizes.count(), kItems);
  EXPECT_EQ(checksum.load(), kItems * (kItems - 1) / 2);
  // Every item's span was captured: the per-thread buffers (including the
  // retired pool workers') all drained into the session.
  EXPECT_GE(session.host_span_count(), kItems);

  std::ostringstream os;
  session.WriteChromeTrace(os);
  EXPECT_TRUE(ParseJson(os.str()).ok());
}

// ---------------------------------------------------------------------------
// Run report

TEST(RunReportTest, SchemaRoundTrip) {
  core::RunResult result;
  result.iterations = 2;
  result.total_ms = 3.75;
  result.edges_processed = 1234;
  result.messages_sent = 567;
  result.stolen_edges_total = 89.0;
  result.fsteal_applied_iterations = 1;
  result.fsteal_lp_iterations_total = 42;
  result.fsteal_milp_nodes_total = 7;
  result.fsteal_plan_cells_total = 3;
  result.osteal_lp_iterations_total = 11;
  result.timeline = GoldenTimeline();
  result.link_bytes = {{1.0, 2.0}, {3.0, 4.0}};
  result.payload_bytes = {{0.0, 2.0}, {3.0, 0.0}};
  result.link_busy_ms = {{0.5, 0.25}, {0.125, 0.0}};

  RunReportMeta meta;
  meta.system = "gum";
  meta.algorithm = "pr";
  meta.dataset = "web-scale11";
  meta.num_devices = 2;
  meta.config = {{"partitioner", "seg"}, {"seed", "1"}};

  MetricsRegistry reg;
  reg.GetCounter("gum_iterations_total").Increment(2);

  std::ostringstream os;
  WriteRunReport(os, meta, result, &reg);

  const auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->at("schema_version").int_value(), kRunReportSchemaVersion);

  const JsonValue& m = doc->at("meta");
  EXPECT_EQ(m.at("system").string_value(), "gum");
  EXPECT_EQ(m.at("algorithm").string_value(), "pr");
  EXPECT_EQ(m.at("dataset").string_value(), "web-scale11");
  EXPECT_EQ(m.at("num_devices").int_value(), 2);
  EXPECT_EQ(m.at("config").at("partitioner").string_value(), "seg");

  const JsonValue& r = doc->at("result");
  EXPECT_EQ(r.at("iterations").int_value(), 2);
  EXPECT_DOUBLE_EQ(r.at("total_ms").number(), 3.75);
  EXPECT_EQ(r.at("edges_processed").int_value(), 1234);
  EXPECT_EQ(r.at("messages_sent").int_value(), 567);

  const JsonValue& steal = doc->at("steal");
  EXPECT_EQ(steal.at("fsteal").at("lp_iterations_total").int_value(), 42);
  EXPECT_EQ(steal.at("fsteal").at("milp_nodes_total").int_value(), 7);
  EXPECT_EQ(steal.at("fsteal").at("plan_cells_total").int_value(), 3);
  EXPECT_EQ(steal.at("osteal").at("lp_iterations_total").int_value(), 11);

  const JsonValue& tl = doc->at("timeline");
  EXPECT_EQ(tl.at("num_devices").int_value(), 2);
  EXPECT_EQ(tl.at("num_iterations").int_value(), 2);
  ASSERT_EQ(tl.at("per_iteration").array().size(), 2u);
  const JsonValue& it0 = tl.at("per_iteration").array()[0];
  EXPECT_DOUBLE_EQ(it0.at("wall_ms").number(), 3.0);
  ASSERT_EQ(it0.at("devices").array().size(), 2u);

  const JsonValue& comm = doc->at("comm");
  EXPECT_DOUBLE_EQ(comm.at("total_remote_bytes").number(), 5.0);
  ASSERT_EQ(comm.at("link_bytes").array().size(), 2u);

  EXPECT_EQ(doc->at("metrics").at("counters").array().size(), 1u);
}

bool HasKey(const JsonValue& obj, const std::string& key) {
  for (const auto& [k, v] : obj.members()) {
    if (k == key) return true;
  }
  return false;
}

TEST(RunReportTest, SchemaV4OmitsFaultsSectionWhenInactive) {
  // A faults-off run must not even mention the fault plane: the report
  // stays byte-comparable with pre-fault-plane artifacts.
  core::RunResult result;
  RunReportMeta meta;
  std::ostringstream os;
  WriteRunReport(os, meta, result, nullptr);
  EXPECT_EQ(kRunReportSchemaVersion, 4);
  EXPECT_EQ(os.str().find("faults"), std::string::npos);
  const auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_FALSE(HasKey(*doc, "faults"));
}

TEST(RunReportTest, SchemaV4OmitsMutationsSectionWhenInactive) {
  // A mutations-off run must not even mention the mutation plane: modulo
  // schema_version the report stays byte-identical to a v2 artifact.
  core::RunResult result;
  RunReportMeta meta;
  std::ostringstream os;
  WriteRunReport(os, meta, result, nullptr);
  EXPECT_EQ(os.str().find("mutations"), std::string::npos);
  const auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_FALSE(HasKey(*doc, "mutations"));
}

TEST(RunReportTest, SchemaV4OmitsAsyncSectionWhenInactive) {
  // A --mode=bsp run must not even mention the async plane: modulo
  // schema_version the report stays byte-identical to a v3 artifact.
  core::RunResult result;
  RunReportMeta meta;
  std::ostringstream os;
  WriteRunReport(os, meta, result, nullptr);
  EXPECT_EQ(os.str().find("async"), std::string::npos);
  const auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_FALSE(HasKey(*doc, "async"));
}

TEST(RunReportTest, AsyncSectionRoundTrips) {
  core::RunResult result;
  result.async_active = true;
  result.async_batches = 730;
  result.async_stale_skips = 45;
  result.async_delta = 15.5;
  result.async_bucket_histogram = {4, 0, 9, 2};
  result.async_range_steals = 3;
  result.async_range_steal_entries = 96;
  result.async_range_steal_bytes = 1536.0;
  result.async_smq_rebalances = 12;
  result.quiescence_rounds = 5;

  RunReportMeta meta;
  std::ostringstream os;
  WriteRunReport(os, meta, result, nullptr);
  const auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(HasKey(*doc, "async"));
  const JsonValue& a = doc->at("async");
  EXPECT_EQ(a.at("batches").int_value(), 730);
  EXPECT_EQ(a.at("stale_skips").int_value(), 45);
  EXPECT_DOUBLE_EQ(a.at("delta").number(), 15.5);
  const auto& hist = a.at("bucket_histogram").array();
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0].int_value(), 4);
  EXPECT_EQ(hist[2].int_value(), 9);
  EXPECT_EQ(a.at("range_steals").int_value(), 3);
  EXPECT_EQ(a.at("range_steal_entries").int_value(), 96);
  EXPECT_DOUBLE_EQ(a.at("range_steal_bytes").number(), 1536.0);
  EXPECT_EQ(a.at("smq_rebalances").int_value(), 12);
  EXPECT_EQ(a.at("quiescence_rounds").int_value(), 5);
}

TEST(RunReportTest, MutationsSectionRoundTrips) {
  core::RunResult result;
  result.mutation_plane_active = true;
  result.mutation_epochs = 4;
  result.mutation_events_applied = 96;
  result.mutation_noops = 5;
  result.mutation_delta_bytes = 2048.0;
  result.mutation_compactions = 2;
  result.mutation_incremental_epochs = 3;
  result.mutation_skipped_epochs = 1;
  result.mutation_fallbacks = 1;
  result.mutation_apply_ms = 0.5;
  result.mutation_compact_ms = 1.25;
  result.mutation_restore_ms = 0.75;

  RunReportMeta meta;
  std::ostringstream os;
  WriteRunReport(os, meta, result, nullptr);
  const auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(HasKey(*doc, "mutations"));
  const JsonValue& m = doc->at("mutations");
  EXPECT_EQ(m.at("epochs").int_value(), 4);
  EXPECT_EQ(m.at("events_applied").int_value(), 96);
  EXPECT_EQ(m.at("noops").int_value(), 5);
  EXPECT_DOUBLE_EQ(m.at("delta_bytes").number(), 2048.0);
  EXPECT_EQ(m.at("compactions").int_value(), 2);
  EXPECT_EQ(m.at("incremental_epochs").int_value(), 3);
  EXPECT_EQ(m.at("skipped_epochs").int_value(), 1);
  EXPECT_EQ(m.at("fallbacks").int_value(), 1);
  EXPECT_DOUBLE_EQ(m.at("apply_ms").number(), 0.5);
  EXPECT_DOUBLE_EQ(m.at("compact_ms").number(), 1.25);
  EXPECT_DOUBLE_EQ(m.at("restore_ms").number(), 0.75);
}

TEST(RunReportTest, FaultsSectionRoundTrips) {
  core::RunResult result;
  result.fault_plan_active = true;
  result.checkpoints_taken = 3;
  result.checkpoint_bytes_total = 4096.0;
  result.checkpoint_ms_total = 0.5;
  result.devices_failed = 1;
  result.recovery_events = 2;
  result.fragments_migrated = 5;
  result.recovery_detect_ms = 0.25;
  result.recovery_restore_ms = 1.5;
  result.recovery_migrate_ms = 0.75;
  result.lost_work_ms = 2.0;
  result.straggler_ms = 0.125;
  result.link_fault_iterations = 4;

  RunReportMeta meta;
  std::ostringstream os;
  WriteRunReport(os, meta, result, nullptr);
  const auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(HasKey(*doc, "faults"));
  const JsonValue& f = doc->at("faults");
  EXPECT_TRUE(f.at("plan_active").bool_value());
  EXPECT_EQ(f.at("checkpoints_taken").int_value(), 3);
  EXPECT_DOUBLE_EQ(f.at("checkpoint_bytes_total").number(), 4096.0);
  EXPECT_DOUBLE_EQ(f.at("checkpoint_ms_total").number(), 0.5);
  EXPECT_EQ(f.at("devices_failed").int_value(), 1);
  EXPECT_EQ(f.at("recovery_events").int_value(), 2);
  EXPECT_EQ(f.at("fragments_migrated").int_value(), 5);
  EXPECT_DOUBLE_EQ(f.at("recovery_detect_ms").number(), 0.25);
  EXPECT_DOUBLE_EQ(f.at("recovery_restore_ms").number(), 1.5);
  EXPECT_DOUBLE_EQ(f.at("recovery_migrate_ms").number(), 0.75);
  // recovery_charged_ms = detect + restore + migrate + lost work.
  EXPECT_DOUBLE_EQ(f.at("recovery_charged_ms").number(), 4.5);
  EXPECT_DOUBLE_EQ(f.at("lost_work_ms").number(), 2.0);
  EXPECT_DOUBLE_EQ(f.at("straggler_ms").number(), 0.125);
  EXPECT_EQ(f.at("link_fault_iterations").int_value(), 4);
}

TEST(RunReportTest, CheckpointOnlyRunStillEmitsFaultsSection) {
  // ckpt_every > 0 without a fault plan charges real time; the report must
  // say where it went even though plan_active is false.
  core::RunResult result;
  result.checkpoints_taken = 2;
  result.checkpoint_ms_total = 0.25;
  RunReportMeta meta;
  std::ostringstream os;
  WriteRunReport(os, meta, result, nullptr);
  const auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(HasKey(*doc, "faults"));
  EXPECT_FALSE(doc->at("faults").at("plan_active").bool_value());
  EXPECT_EQ(doc->at("faults").at("checkpoints_taken").int_value(), 2);
}

TEST(RunReportTest, NullMetricsYieldsEmptyObject) {
  core::RunResult result;
  RunReportMeta meta;
  std::ostringstream os;
  WriteRunReport(os, meta, result, nullptr);
  const auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->at("metrics").members().size(), 0u);
}

}  // namespace
}  // namespace gum::obs
