#include "graph/io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

namespace gum::graph {

namespace {
constexpr char kMagic[8] = {'G', 'U', 'M', 'E', 'L', 'I', 'S', 'T'};
constexpr uint32_t kVersion = 1;
}  // namespace

Result<EdgeList> LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  EdgeList list;
  VertexId max_id = 0;
  bool have_declared_vertices = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#' || line[0] == '%') {
      // Optional "# vertices: N" header.
      const auto pos = line.find("vertices:");
      if (pos != std::string::npos) {
        list.num_vertices = static_cast<VertexId>(
            std::strtoull(line.c_str() + pos + 9, nullptr, 10));
        have_declared_vertices = true;
      }
      continue;
    }
    std::istringstream ls(line);
    uint64_t src = 0, dst = 0;
    double weight = 1.0;
    if (!(ls >> src >> dst)) {
      return Status::IoError(path + ":" + std::to_string(line_no) +
                             ": malformed edge line");
    }
    ls >> weight;  // optional
    if (src > 0xFFFFFFFFull || dst > 0xFFFFFFFFull) {
      return Status::IoError(path + ":" + std::to_string(line_no) +
                             ": vertex id exceeds 32 bits");
    }
    list.edges.push_back(Edge{static_cast<VertexId>(src),
                              static_cast<VertexId>(dst),
                              static_cast<float>(weight)});
    max_id = std::max({max_id, static_cast<VertexId>(src),
                       static_cast<VertexId>(dst)});
  }
  if (!have_declared_vertices) {
    list.num_vertices = list.edges.empty() ? 0 : max_id + 1;
  }
  return list;
}

Status SaveEdgeListText(const EdgeList& list, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# vertices: " << list.num_vertices << "\n";
  for (const Edge& e : list.edges) {
    out << e.src << " " << e.dst;
    if (e.weight != 1.0f) out << " " << e.weight;
    out << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<EdgeList> LoadEdgeListBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  char magic[8];
  uint32_t version = 0, num_vertices = 0;
  uint64_t num_edges = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&num_vertices), sizeof(num_vertices));
  in.read(reinterpret_cast<char*>(&num_edges), sizeof(num_edges));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError(path + ": bad magic");
  }
  if (version != kVersion) {
    return Status::IoError(path + ": unsupported version " +
                           std::to_string(version));
  }
  EdgeList list;
  list.num_vertices = num_vertices;
  list.edges.resize(num_edges);
  for (Edge& e : list.edges) {
    in.read(reinterpret_cast<char*>(&e.src), sizeof(e.src));
    in.read(reinterpret_cast<char*>(&e.dst), sizeof(e.dst));
    in.read(reinterpret_cast<char*>(&e.weight), sizeof(e.weight));
  }
  if (!in) return Status::IoError(path + ": truncated edge records");
  return list;
}

Status SaveEdgeListBinary(const EdgeList& list, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  out.write(reinterpret_cast<const char*>(&list.num_vertices),
            sizeof(list.num_vertices));
  const uint64_t num_edges = list.edges.size();
  out.write(reinterpret_cast<const char*>(&num_edges), sizeof(num_edges));
  for (const Edge& e : list.edges) {
    out.write(reinterpret_cast<const char*>(&e.src), sizeof(e.src));
    out.write(reinterpret_cast<const char*>(&e.dst), sizeof(e.dst));
    out.write(reinterpret_cast<const char*>(&e.weight), sizeof(e.weight));
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace gum::graph
