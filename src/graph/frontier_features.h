// Per-frontier characteristics (paper Table I).
//
// These six metric variables describe the computational and data-access
// behaviour of processing the current frontier of a fragment:
//   avg in/out degree  — how many neighbors each frontier vertex touches
//   in/out degree range — diversity of edges (intra-kernel imbalance)
//   Gini coefficient    — skew of the frontier's degree distribution
//   entropy             — spread of the frontier's degree distribution
// They are the inputs of both the substrate's ground-truth kernel cost
// function (src/sim/kernel_cost.*) and the learned cost model (src/ml/*).

#ifndef GUM_GRAPH_FRONTIER_FEATURES_H_
#define GUM_GRAPH_FRONTIER_FEATURES_H_

#include <array>
#include <span>
#include <vector>

#include "graph/csr.h"

namespace gum::graph {

struct FrontierFeatures {
  static constexpr int kNumFeatures = 6;

  double avg_in_degree = 0;
  double avg_out_degree = 0;
  double in_degree_range = 0;
  double out_degree_range = 0;
  double gini = 0;
  double entropy = 0;

  std::array<double, kNumFeatures> ToArray() const {
    return {avg_in_degree, avg_out_degree, in_degree_range, out_degree_range,
            gini, entropy};
  }
};

// Extracts Table-I features for the given frontier (a set of vertex ids of
// g). Cost: one scan over the frontier (paper §VI-C: "features can be
// collected with a scan over active vertices rather than edges").
FrontierFeatures ExtractFrontierFeatures(const CsrGraph& g,
                                         std::span<const VertexId> frontier);

}  // namespace gum::graph

#endif  // GUM_GRAPH_FRONTIER_FEATURES_H_
