#include <gtest/gtest.h>

#include <cmath>

#include "algos/apps.h"
#include "algos/reference.h"
#include "core/engine.h"
#include "tests/test_util.h"

namespace gum::core {
namespace {

using algos::BfsApp;
using algos::DeltaPageRankApp;
using algos::PageRankApp;
using algos::SsspApp;
using algos::WccApp;
using graph::VertexId;
using test::MakePartition;
using test::RoadGraph;
using test::SocialGraph;
using test::SocialGraphSym;
using test::TestEngineOptions;
using test::Topo;

TEST(GumEngineTest, BfsMatchesReferenceOn4Devices) {
  const auto g = SocialGraph();
  GumEngine<BfsApp> engine(&g, MakePartition(g, 4), Topo(4),
                           TestEngineOptions());
  BfsApp app;
  app.source = 1;
  std::vector<uint32_t> depths;
  const RunResult result = engine.Run(app, &depths);
  EXPECT_GT(result.iterations, 1);
  EXPECT_GT(result.total_ms, 0.0);
  EXPECT_EQ(depths, algos::ref::Bfs(g, 1));
}

TEST(GumEngineTest, SsspMatchesDijkstra) {
  const auto g = SocialGraph(10, 4, /*weighted=*/true);
  GumEngine<SsspApp> engine(&g, MakePartition(g, 4), Topo(4),
                            TestEngineOptions());
  SsspApp app;
  app.source = 3;
  std::vector<float> dist;
  engine.Run(app, &dist);
  const auto expected = algos::ref::Sssp(g, 3);
  ASSERT_EQ(dist.size(), expected.size());
  for (size_t v = 0; v < dist.size(); ++v) {
    EXPECT_EQ(dist[v], expected[v]) << "vertex " << v;
  }
}

TEST(GumEngineTest, WccMatchesUnionFind) {
  const auto g = SocialGraphSym();
  GumEngine<WccApp> engine(&g, MakePartition(g, 4), Topo(4),
                           TestEngineOptions());
  WccApp app;
  std::vector<VertexId> labels;
  engine.Run(app, &labels);
  EXPECT_EQ(labels, algos::ref::Wcc(g));
}

TEST(GumEngineTest, PageRankMatchesPowerIteration) {
  const auto g = SocialGraph(9, 5);
  GumEngine<PageRankApp> engine(&g, MakePartition(g, 4), Topo(4),
                                TestEngineOptions());
  PageRankApp app;
  app.num_vertices = g.num_vertices();
  app.rounds = 15;
  std::vector<double> rank;
  const RunResult result = engine.Run(app, &rank);
  EXPECT_EQ(result.iterations, 15);
  const auto expected = algos::ref::PageRank(g, 0.85, 15);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(rank[v], expected[v], 1e-9) << "vertex " << v;
  }
}

TEST(GumEngineTest, DeltaPageRankApproximatesPowerIteration) {
  const auto g = SocialGraph(9, 5);
  GumEngine<DeltaPageRankApp> engine(&g, MakePartition(g, 4), Topo(4),
                                     TestEngineOptions());
  DeltaPageRankApp app;
  app.num_vertices = g.num_vertices();
  app.epsilon = 1e-12;
  std::vector<DeltaPageRankApp::State> state;
  engine.Run(app, &state);
  const auto expected = algos::ref::PageRank(g, 0.85, 100);
  double max_err = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_err = std::max(max_err, std::abs(state[v].rank - expected[v]));
  }
  EXPECT_LT(max_err, 1e-6);
}

TEST(GumEngineTest, SingleDeviceWorks) {
  const auto g = SocialGraph();
  GumEngine<BfsApp> engine(&g, MakePartition(g, 1), Topo(1),
                           TestEngineOptions());
  BfsApp app;
  app.source = 0;
  std::vector<uint32_t> depths;
  const RunResult result = engine.Run(app, &depths);
  EXPECT_EQ(depths, algos::ref::Bfs(g, 0));
  EXPECT_EQ(result.stolen_edges_total, 0.0) << "nothing to steal on 1 GPU";
}

TEST(GumEngineTest, StealingDoesNotChangeResults) {
  const auto g = SocialGraph(10, 7, /*weighted=*/true);
  SsspApp app;
  app.source = 11;
  auto opt_on = TestEngineOptions();
  auto opt_off = TestEngineOptions();
  opt_off.enable_fsteal = false;
  opt_off.enable_osteal = false;
  std::vector<float> with_steal, without_steal;
  GumEngine<SsspApp>(&g, MakePartition(g, 8), Topo(8), opt_on)
      .Run(app, &with_steal);
  GumEngine<SsspApp>(&g, MakePartition(g, 8), Topo(8), opt_off)
      .Run(app, &without_steal);
  EXPECT_EQ(with_steal, without_steal);
}

TEST(GumEngineTest, FStealActuallySteals) {
  // Segment partition + single-source BFS => severe cocooning, so FSteal
  // must move work off the source's device.
  const auto g = SocialGraph(11, 2);
  auto opt = TestEngineOptions();
  opt.enable_osteal = false;
  GumEngine<BfsApp> engine(
      &g, MakePartition(g, 4, graph::PartitionerKind::kSegment), Topo(4),
      opt);
  BfsApp app;
  app.source = 0;
  const RunResult result = engine.Run(app);
  EXPECT_GT(result.fsteal_applied_iterations, 0);
  EXPECT_GT(result.stolen_edges_total, 0.0);
}

TEST(GumEngineTest, FStealReducesMakespanOnSkewedRun) {
  const auto g = SocialGraph(11, 2);
  BfsApp app;
  app.source = 0;
  auto on = TestEngineOptions();
  on.enable_osteal = false;
  // Make the workload compute-bound at this miniature scale so load balance
  // (not per-iteration latency) dominates, as on the paper's full-size runs.
  on.device.base_edge_ns = 200.0;
  on.device.sync_per_peer_us = 5.0;
  auto off = on;
  off.enable_fsteal = false;
  const auto part = MakePartition(g, 4, graph::PartitionerKind::kSegment);
  const RunResult with_steal =
      GumEngine<BfsApp>(&g, part, Topo(4), on).Run(app);
  const RunResult without_steal =
      GumEngine<BfsApp>(&g, part, Topo(4), off).Run(app);
  EXPECT_LT(with_steal.total_ms, without_steal.total_ms);
}

TEST(GumEngineTest, OStealShrinksGroupOnRoadNetwork) {
  const auto g = RoadGraph(24);
  SsspApp app;
  app.source = 0;
  auto opt = TestEngineOptions();
  GumEngine<SsspApp> engine(&g, MakePartition(g, 8), Topo(8), opt);
  const RunResult result = engine.Run(app);
  EXPECT_GT(result.osteal_shrink_events, 0)
      << "long-tail road network should trigger OSteal";
  // Late iterations should run with fewer devices.
  int min_group = 8;
  for (const IterationStats& s : result.iteration_stats) {
    min_group = std::min(min_group, s.group_size);
  }
  EXPECT_LT(min_group, 8);
}

TEST(GumEngineTest, OStealImprovesRoadNetworkRuntime) {
  const auto g = RoadGraph(24);
  SsspApp app;
  app.source = 0;
  auto on = TestEngineOptions();
  on.enable_fsteal = false;
  auto off = on;
  off.enable_osteal = false;
  const auto part = MakePartition(g, 8);
  const RunResult with_osteal =
      GumEngine<SsspApp>(&g, part, Topo(8), on).Run(app);
  const RunResult without_osteal =
      GumEngine<SsspApp>(&g, part, Topo(8), off).Run(app);
  EXPECT_LT(with_osteal.total_ms, without_osteal.total_ms);
  // And results agree.
}

TEST(GumEngineTest, TimelineBucketsSumToBusyTime) {
  const auto g = SocialGraph(9, 3);
  GumEngine<BfsApp> engine(&g, MakePartition(g, 4), Topo(4),
                           TestEngineOptions());
  BfsApp app;
  app.source = 2;
  const RunResult result = engine.Run(app);
  const double buckets = result.ComputeMs() + result.CommunicationMs() +
                         result.SerializationMs() + result.OverheadMs();
  double busy = 0;
  for (int it = 0; it < result.timeline.num_iterations(); ++it) {
    for (int d = 0; d < result.timeline.num_devices(); ++d) {
      busy += result.timeline.DeviceIterationTotal(it, d);
    }
  }
  EXPECT_NEAR(buckets, busy, 1e-6);
  EXPECT_GE(result.total_ms, result.timeline.IterationWall(0));
}

TEST(GumEngineTest, IterationStatsRecorded) {
  const auto g = SocialGraph(9, 3);
  GumEngine<BfsApp> engine(&g, MakePartition(g, 2), Topo(2),
                           TestEngineOptions());
  BfsApp app;
  app.source = 2;
  const RunResult result = engine.Run(app);
  ASSERT_EQ(static_cast<int>(result.iteration_stats.size()),
            result.iterations);
  for (const IterationStats& s : result.iteration_stats) {
    EXPECT_EQ(s.fragment_load.size(), 2u);
    EXPECT_GE(s.group_size, 1);
    EXPECT_LE(s.group_size, 2);
    EXPECT_GE(s.wall_ms, 0.0);
  }
}

TEST(GumEngineTest, EdgesProcessedMatchesReachableWork) {
  // On a BFS, each reachable vertex is expanded at least once; with min-
  // combining it is expanded exactly once.
  const auto g = SocialGraph(9, 6);
  GumEngine<BfsApp> engine(&g, MakePartition(g, 2), Topo(2),
                           TestEngineOptions());
  BfsApp app;
  app.source = 4;
  const RunResult result = engine.Run(app);
  const auto depths = algos::ref::Bfs(g, 4);
  uint64_t expected_edges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (depths[v] != BfsApp::kUnreached) expected_edges += g.OutDegree(v);
  }
  EXPECT_EQ(result.edges_processed, expected_edges);
}

TEST(GumEngineTest, LearnedCostModelStillCorrect) {
  // Plug a deliberately bad cost model in: results must not change (only
  // the schedule quality may).
  struct BadModel : ml::RegressionModel {
    Status Fit(const ml::Dataset&) override { return Status::OK(); }
    double Predict(std::span<const double>) const override { return 1.0; }
    std::string name() const override { return "constant"; }
  };
  const auto g = SocialGraph(10, 7, /*weighted=*/true);
  BadModel model;
  auto opt = TestEngineOptions();
  opt.exact_cost_oracle = false;
  SsspApp app;
  app.source = 11;
  std::vector<float> dist;
  GumEngine<SsspApp>(&g, MakePartition(g, 4), Topo(4), opt, &model)
      .Run(app, &dist);
  const auto expected = algos::ref::Sssp(g, 11);
  for (size_t v = 0; v < dist.size(); ++v) EXPECT_EQ(dist[v], expected[v]);
}


TEST(GumEngineTest, LinkBytesTrackCommunication) {
  const auto g = SocialGraph(10, 40);
  auto opt = TestEngineOptions();
  GumEngine<BfsApp> engine(&g, MakePartition(g, 4), Topo(4), opt);
  BfsApp app;
  app.source = 3;
  const RunResult r = engine.Run(app);
  ASSERT_EQ(r.link_bytes.size(), 4u);
  // Cross-fragment messages under a random partition must move real bytes.
  EXPECT_GT(r.TotalRemoteBytes(), 0.0);
  // Every entry non-negative; diagonal holds local gather traffic.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_GE(r.link_bytes[i][j], 0.0);
  }
  EXPECT_GT(r.link_bytes[0][0] + r.link_bytes[1][1] + r.link_bytes[2][2] +
                r.link_bytes[3][3],
            0.0);
}

TEST(GumEngineTest, HubCacheReducesRemoteBytes) {
  const auto g = SocialGraph(10, 41);
  BfsApp app;
  auto with_cache = TestEngineOptions();
  with_cache.t4_hub_in_degree = 8;  // cache aggressively
  with_cache.enable_osteal = false;
  auto no_cache = with_cache;
  no_cache.enable_hub_cache = false;
  const auto part = MakePartition(g, 4, graph::PartitionerKind::kSegment);
  app.source = 0;
  const RunResult cached =
      GumEngine<BfsApp>(&g, part, Topo(4), with_cache).Run(app);
  app.source = 0;
  const RunResult plain =
      GumEngine<BfsApp>(&g, part, Topo(4), no_cache).Run(app);
  // The hub-cache only matters when frontiers get stolen; same plan or not,
  // cached remote traffic can never exceed the uncached run by more than
  // schedule noise.
  EXPECT_LE(cached.CommunicationMs(), plain.CommunicationMs() * 1.05);
}

TEST(GumEngineTest, SingleDeviceHasNoRemoteBytes) {
  const auto g = SocialGraph(9, 42);
  GumEngine<BfsApp> engine(&g, MakePartition(g, 1), Topo(1),
                           TestEngineOptions());
  BfsApp app;
  app.source = 0;
  const RunResult r = engine.Run(app);
  EXPECT_EQ(r.TotalRemoteBytes(), 0.0);
}

TEST(GumEngineTest, UnreachableSourceTerminatesImmediately) {
  // Source with no out-edges: one iteration, then convergence.
  graph::EdgeList list;
  list.num_vertices = 4;
  list.edges = {{1, 2, 1.0f}, {2, 3, 1.0f}};
  auto g = graph::CsrGraph::FromEdgeList(list);
  ASSERT_TRUE(g.ok());
  GumEngine<BfsApp> engine(&*g, MakePartition(*g, 2), Topo(2),
                           TestEngineOptions());
  BfsApp app;
  app.source = 0;
  std::vector<uint32_t> depths;
  const RunResult result = engine.Run(app, &depths);
  EXPECT_LE(result.iterations, 2);
  EXPECT_EQ(depths[0], 0u);
  EXPECT_EQ(depths[1], BfsApp::kUnreached);
}

}  // namespace
}  // namespace gum::core
