// Table V: accuracy, training time and end-to-end effect of the learned
// cost model (Exp-7). Four model families are trained on the same
// running-log dataset; RMSRE is evaluated on a held-out split; "slowdown"
// is the runtime achieved with the learned g(W) relative to the exact
// oracle (1.0 = as good as knowing the true cost), measured on SSSP with
// stealing engaged.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/datasets.h"
#include "bench/runner.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/linear_regression.h"
#include "ml/polynomial_regression.h"
#include "ml/svr.h"

using namespace gum;        // NOLINT(build/namespaces)
using namespace gum::bench; // NOLINT(build/namespaces)

int main() {
  std::cout << "=== Table V: accuracy and training time of the cost model "
               "===\n\n";

  // Running-log dataset, as in §III-B (the 624-graph corpus stand-in).
  ml::CostDatasetOptions data_opt;
  data_opt.frontiers_per_graph = 250;
  data_opt.noise_stddev = 0.05;  // measurement noise of real running logs
  data_opt.device = BenchDeviceParams();  // logs from the benchmark device
  const ml::Dataset full = ml::GenerateDefaultCostDataset(data_opt);
  const auto [train, test] = full.Split(0.8, 29);
  std::cout << "training samples: " << train.size()
            << ", held-out: " << test.size() << "\n\n";

  const DatasetGraphs sw = BuildDataset("SW");
  auto run_sssp = [&](const ml::RegressionModel* model) {
    RunConfig config;
    config.system = System::kGum;
    config.algo = Algo::kSssp;
    config.devices = 8;
    config.partitioner = graph::PartitionerKind::kSegment;
    config.cost_model = model;
    return RunBenchmark(sw, config).total_ms;
  };
  const double oracle_ms = run_sssp(nullptr);

  std::vector<std::unique_ptr<ml::RegressionModel>> models;
  models.push_back(std::make_unique<ml::LinearRegression>());
  models.push_back(std::make_unique<ml::PolynomialRegression>(4));
  models.push_back(std::make_unique<ml::RbfSvr>());
  models.push_back(std::make_unique<ml::DecisionTreeRegressor>());

  TablePrinter tp({"Learning model", "RMSRE", "Training time (s)",
                   "Slowdown"});
  for (auto& model : models) {
    Stopwatch timer;
    const Status status = model->Fit(train);
    const double train_s = timer.ElapsedSeconds();
    if (!status.ok()) {
      tp.AddRow({model->name(), "fit failed", "-", "-"});
      continue;
    }
    const double rmsre = ml::Rmsre(*model, test);
    const double learned_ms = run_sssp(model.get());
    tp.AddRow({model->name(), TablePrinter::Num(rmsre, 3),
               TablePrinter::Num(train_s, 1),
               TablePrinter::Num(oracle_ms / learned_ms, 2)});
    std::cerr << "done " << model->name() << "\n";
  }
  tp.Print(std::cout);
  std::cout << "\n(exact-oracle SSSP runtime: "
            << TablePrinter::Num(oracle_ms, 1) << " ms)\n";
  std::cout << "\nShape check vs paper Table V: linear regression is far "
               "less accurate on the relative-error metric; polynomial "
               "regression is accurate, fast to train, and within a few "
               "percent of the oracle (paper 0.93); SVR is the most "
               "accurate but ~10x slower to train for a marginal gain "
               "(paper 0.94) — hence GUM ships polynomial regression.\n";
  return 0;
}
