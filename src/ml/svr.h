// Support vector regression with an RBF kernel (Table V row 3).
//
// The RBF kernel is approximated with random Fourier features
// (Rahimi & Recht 2007): z(x) = sqrt(2/D) * cos(W x + b) with
// W ~ N(0, 1/sigma^2); a linear epsilon-SVR is then trained on z(x) by
// subgradient descent on the epsilon-insensitive loss with L2 regularization
// — a from-scratch stand-in for libsvm-style SMO that keeps the hypothesis
// class (and the "slow to train, most accurate" profile of Table V).

#ifndef GUM_ML_SVR_H_
#define GUM_ML_SVR_H_

#include <vector>

#include "ml/model.h"

namespace gum::ml {

struct SvrOptions {
  int num_random_features = 384;
  double sigma = 2.2;       // RBF bandwidth (on standardized inputs)
  double epsilon = 0.01;    // insensitive tube, relative to target scale
  double c = 50.0;          // inverse regularization strength
  double learning_rate = 0.02;
  double lr_decay = 0.99;
  int epochs = 400;
  uint64_t seed = 23;
};

class RbfSvr : public RegressionModel {
 public:
  explicit RbfSvr(SvrOptions options = {}) : options_(options) {}

  Status Fit(const Dataset& data) override;
  double Predict(std::span<const double> features) const override;
  std::string name() const override { return "svr_rbf"; }

 private:
  std::vector<double> Featurize(std::span<const double> features) const;

  SvrOptions options_;
  int input_dim_ = 0;
  std::vector<double> mean_, stddev_;        // input standardization
  std::vector<std::vector<double>> omega_;   // D x input_dim
  std::vector<double> phase_;                // D
  std::vector<double> weights_;              // D
  double bias_ = 0.0;
  double target_scale_ = 1.0;
};

}  // namespace gum::ml

#endif  // GUM_ML_SVR_H_
