# Empty dependencies file for gum_ml_tests.
# This may be replaced when dependencies are built.
