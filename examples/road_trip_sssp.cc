// Road-network shortest paths: the long-tail scenario from the paper's
// introduction. SSSP on a long-diameter weighted road grid takes hundreds
// of latency-bound iterations; this example runs it twice — with and
// without ownership stealing — and shows the communication group shrinking
// through the tail.
//
//   $ ./road_trip_sssp

#include <algorithm>
#include <iostream>

#include "algos/apps.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "sim/topology.h"

using namespace gum;  // NOLINT(build/namespaces)

namespace {

core::RunResult Drive(const graph::CsrGraph& g, bool osteal,
                      std::vector<float>* distances) {
  auto partition = graph::PartitionGraph(g, 8, {});
  auto topology = sim::Topology::HybridCubeMeshSubset(8);
  core::EngineOptions options;
  options.enable_osteal = osteal;
  core::GumEngine<algos::SsspApp> engine(&g, *partition, *topology, options);
  algos::SsspApp sssp;
  sssp.source = 0;  // the top-left "city"
  return engine.Run(sssp, distances);
}

}  // namespace

int main() {
  graph::RoadGridOptions gen;
  gen.rows = 96;
  gen.cols = 96;  // ~9k intersections, diameter ~190
  const graph::EdgeList edges = graph::RoadGrid(gen);
  auto g = graph::CsrGraph::FromEdgeList(edges);
  if (!g.ok()) {
    std::cerr << g.status().ToString() << "\n";
    return 1;
  }
  std::cout << "road network: " << g->num_vertices() << " intersections, "
            << g->num_edges() << " road segments\n\n";

  std::vector<float> dist_off, dist_on;
  const core::RunResult off = Drive(*g, false, &dist_off);
  const core::RunResult on = Drive(*g, true, &dist_on);

  std::cout << "iterations to convergence: " << on.iterations << "\n";
  std::cout << "OSteal off: " << off.total_ms << " ms simulated\n";
  std::cout << "OSteal on:  " << on.total_ms << " ms simulated  ("
            << off.total_ms / on.total_ms << "x)\n";
  std::cout << "results identical: "
            << (dist_off == dist_on ? "yes" : "NO (bug!)") << "\n\n";

  std::cout << "communication group size through the run:\n  ";
  int current = -1;
  for (const core::IterationStats& s : on.iteration_stats) {
    if (s.group_size != current) {
      current = s.group_size;
      std::cout << "iter " << s.iteration << ": m=" << current << "   ";
    }
  }
  std::cout << "\n\nfarthest reachable intersection: ";
  float max_dist = 0;
  for (float d : dist_on) {
    if (d != algos::SsspApp::kUnreached) max_dist = std::max(max_dist, d);
  }
  std::cout << max_dist << " distance units\n";
  return 0;
}
