# Empty dependencies file for road_trip_sssp.
# This may be replaced when dependencies are built.
