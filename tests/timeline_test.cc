#include <gtest/gtest.h>

#include <sstream>

#include "sim/timeline.h"

namespace gum::sim {
namespace {

TEST(TimelineTest, AddAndGet) {
  Timeline tl(2);
  tl.Add(0, 0, TimeCategory::kCompute, 5.0);
  tl.Add(0, 0, TimeCategory::kCompute, 2.0);
  tl.Add(0, 1, TimeCategory::kCommunication, 3.0);
  EXPECT_DOUBLE_EQ(tl.Get(0, 0, TimeCategory::kCompute), 7.0);
  EXPECT_DOUBLE_EQ(tl.Get(0, 1, TimeCategory::kCommunication), 3.0);
  EXPECT_DOUBLE_EQ(tl.Get(0, 1, TimeCategory::kCompute), 0.0);
}

TEST(TimelineTest, IterationWallIsDeviceMax) {
  Timeline tl(3);
  tl.Add(0, 0, TimeCategory::kCompute, 4.0);
  tl.Add(0, 1, TimeCategory::kCompute, 9.0);
  tl.Add(0, 2, TimeCategory::kOverhead, 1.0);
  EXPECT_DOUBLE_EQ(tl.IterationWall(0), 9.0);
}

TEST(TimelineTest, TotalsAcrossIterations) {
  Timeline tl(2);
  tl.Add(0, 0, TimeCategory::kCompute, 1.0);
  tl.Add(1, 0, TimeCategory::kCompute, 2.0);
  tl.Add(1, 1, TimeCategory::kSerialization, 3.0);
  EXPECT_EQ(tl.num_iterations(), 2);
  EXPECT_DOUBLE_EQ(tl.TotalByCategory(TimeCategory::kCompute), 3.0);
  EXPECT_DOUBLE_EQ(tl.TotalByCategory(TimeCategory::kSerialization), 3.0);
  EXPECT_DOUBLE_EQ(tl.TotalWall(), 1.0 + 3.0);
}

TEST(TimelineTest, StallFractionBalancedIsZero) {
  Timeline tl(2);
  tl.Add(0, 0, TimeCategory::kCompute, 5.0);
  tl.Add(0, 1, TimeCategory::kCompute, 5.0);
  EXPECT_DOUBLE_EQ(tl.StallFraction(), 0.0);
}

TEST(TimelineTest, StallFractionSkewed) {
  Timeline tl(2);
  tl.Add(0, 0, TimeCategory::kCompute, 10.0);
  tl.Add(0, 1, TimeCategory::kCompute, 5.0);
  // busy = 15, capacity = 10 * 2 => stall 25%.
  EXPECT_NEAR(tl.StallFraction(), 0.25, 1e-12);
}

TEST(TimelineTest, IdleDevicesNotCountedInStall) {
  Timeline tl(4);
  tl.Add(0, 0, TimeCategory::kCompute, 10.0);
  // Devices 1-3 completely idle: treated as not participating.
  EXPECT_DOUBLE_EQ(tl.StallFraction(), 0.0);
  EXPECT_EQ(tl.ActiveDevices(0), 1);
}

TEST(TimelineTest, SparseIterationGrowth) {
  Timeline tl(1);
  tl.Add(5, 0, TimeCategory::kOverhead, 1.0);
  EXPECT_EQ(tl.num_iterations(), 6);
  EXPECT_DOUBLE_EQ(tl.IterationWall(2), 0.0);
}

TEST(TimelineTest, RenderAsciiShowsDevices) {
  Timeline tl(2);
  tl.Add(0, 0, TimeCategory::kCompute, 10.0);
  tl.Add(0, 1, TimeCategory::kCompute, 1.0);
  const std::string art = tl.RenderAscii();
  EXPECT_NE(art.find("GPU0"), std::string::npos);
  EXPECT_NE(art.find("GPU1"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}


TEST(TimelineTest, WriteCsvRoundTrips) {
  Timeline tl(2);
  tl.Add(0, 0, TimeCategory::kCompute, 1.5);
  tl.Add(0, 0, TimeCategory::kOverhead, 0.5);
  tl.Add(1, 1, TimeCategory::kCommunication, 2.0);
  std::ostringstream os;
  tl.WriteCsv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("iteration,device,compute_ms"), std::string::npos);
  EXPECT_NE(csv.find("0,0,1.5,0,0,0.5"), std::string::npos);
  EXPECT_NE(csv.find("1,1,0,2,0,0"), std::string::npos);
  // Idle (iteration, device) cells are omitted.
  EXPECT_EQ(csv.find("0,1,"), std::string::npos);
}

TEST(TimelineTest, CategoryNames) {
  EXPECT_STREQ(TimeCategoryName(TimeCategory::kCompute), "computation");
  EXPECT_STREQ(TimeCategoryName(TimeCategory::kCommunication),
               "communication");
  EXPECT_STREQ(TimeCategoryName(TimeCategory::kSerialization),
               "serialization");
  EXPECT_STREQ(TimeCategoryName(TimeCategory::kOverhead), "overhead");
}

}  // namespace
}  // namespace gum::sim
