// Engine-facing cost model handle.
//
// The stealing policies need g(W_i) — the per-edge compute cost of a
// frontier (paper §III-B). In production GUM this is always the learned
// model; the exact-oracle mode exists for paper Exp-7, which compares the
// end-to-end slowdown of the learned model against "the exact values of
// g(W_i)".

#ifndef GUM_CORE_EDGE_COST_MODEL_H_
#define GUM_CORE_EDGE_COST_MODEL_H_

#include "graph/frontier_features.h"
#include "ml/model.h"
#include "sim/device.h"
#include "sim/kernel_cost.h"

namespace gum::core {

class EdgeCostModel {
 public:
  // Uses the substrate's true cost function directly.
  static EdgeCostModel ExactOracle(const sim::DeviceParams& params) {
    EdgeCostModel m;
    m.params_ = params;
    return m;
  }

  // Uses a trained regression model; `model` must outlive this handle.
  static EdgeCostModel Learned(const ml::RegressionModel* model,
                               const sim::DeviceParams& params) {
    EdgeCostModel m;
    m.model_ = model;
    m.params_ = params;
    return m;
  }

  bool is_learned() const { return model_ != nullptr; }

  // Estimated compute cost (ns) of one edge of a frontier with
  // characteristics `w`.
  double EdgeCostNs(const graph::FrontierFeatures& w) const {
    if (model_ == nullptr) return sim::TrueEdgeCostNs(w, params_);
    const auto arr = w.ToArray();
    return model_->Predict(arr);
  }

  const sim::DeviceParams& device_params() const { return params_; }

 private:
  const ml::RegressionModel* model_ = nullptr;
  sim::DeviceParams params_;
};

}  // namespace gum::core

#endif  // GUM_CORE_EDGE_COST_MODEL_H_
