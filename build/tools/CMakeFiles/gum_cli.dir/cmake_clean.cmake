file(REMOVE_RECURSE
  "CMakeFiles/gum_cli.dir/gum_cli.cc.o"
  "CMakeFiles/gum_cli.dir/gum_cli.cc.o.d"
  "gum_cli"
  "gum_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gum_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
