// Randomized property tests for the solver substrate: every instance is
// checked against universal invariants (feasibility, conservation, bounds)
// or a brute-force oracle where exhaustive search is affordable.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/random.h"
#include "solver/milp.h"
#include "solver/simplex.h"
#include "solver/steal_problem.h"

namespace gum::solver {
namespace {

TEST(SimplexFuzzTest, SolutionsFeasibleAndNoSampledPointBeatsThem) {
  Rng rng(81);
  int solved = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int num_vars = 2 + static_cast<int>(rng.NextBounded(3));
    const int num_rows = 2 + static_cast<int>(rng.NextBounded(4));
    LinearProgram lp;
    for (int v = 0; v < num_vars; ++v) {
      lp.AddVariable(rng.NextUniform(-2.0, 2.0));
    }
    // Random <= rows with positive rhs keep the origin feasible, so every
    // instance is feasible and (thanks to a box row) bounded.
    for (int r = 0; r < num_rows; ++r) {
      Row row;
      for (int v = 0; v < num_vars; ++v) {
        row.coeffs.push_back(rng.NextUniform(-1.0, 2.0));
      }
      row.type = RowType::kLessEqual;
      row.rhs = rng.NextUniform(0.5, 8.0);
      lp.AddRow(std::move(row));
    }
    Row box;
    box.coeffs.assign(num_vars, 1.0);
    box.type = RowType::kLessEqual;
    box.rhs = 20.0;
    lp.AddRow(std::move(box));

    auto sol = SolveLp(lp);
    ASSERT_TRUE(sol.ok()) << "trial " << trial << ": "
                          << sol.status().ToString();
    ++solved;

    // Feasibility of the reported optimum.
    for (const Row& row : lp.rows) {
      double lhs = 0;
      for (size_t v = 0; v < row.coeffs.size(); ++v) {
        lhs += row.coeffs[v] * sol->x[v];
      }
      EXPECT_LE(lhs, row.rhs + 1e-7) << "trial " << trial;
    }
    for (double x : sol->x) EXPECT_GE(x, -1e-9);

    // No random feasible point may beat the optimum.
    for (int sample = 0; sample < 200; ++sample) {
      std::vector<double> p(num_vars);
      for (double& x : p) x = rng.NextUniform(0.0, 4.0);
      bool feasible = true;
      for (const Row& row : lp.rows) {
        double lhs = 0;
        for (size_t v = 0; v < row.coeffs.size(); ++v) {
          lhs += row.coeffs[v] * p[v];
        }
        if (lhs > row.rhs) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      double obj = 0;
      for (int v = 0; v < num_vars; ++v) obj += lp.objective[v] * p[v];
      EXPECT_GE(obj, sol->objective - 1e-7)
          << "sampled point beats 'optimum' in trial " << trial;
    }
  }
  EXPECT_EQ(solved, 60);
}

TEST(MilpFuzzTest, MatchesBruteForceOnTwoIntegerVariables) {
  Rng rng(82);
  for (int trial = 0; trial < 40; ++trial) {
    LinearProgram lp;
    lp.AddVariable(rng.NextUniform(-3.0, 3.0));
    lp.AddVariable(rng.NextUniform(-3.0, 3.0));
    for (int r = 0; r < 3; ++r) {
      Row row;
      row.coeffs = {rng.NextUniform(0.1, 2.0), rng.NextUniform(0.1, 2.0)};
      row.type = RowType::kLessEqual;
      row.rhs = rng.NextUniform(2.0, 12.0);
      lp.AddRow(std::move(row));
    }
    MilpOptions options;
    options.gap_tolerance = 1e-9;
    auto sol = SolveMilp(lp, {true, true}, options);
    ASSERT_TRUE(sol.ok()) << "trial " << trial;

    double best = 1e18;
    for (int a = 0; a <= 30; ++a) {
      for (int b = 0; b <= 30; ++b) {
        bool feasible = true;
        for (const Row& row : lp.rows) {
          if (row.coeffs[0] * a + row.coeffs[1] * b > row.rhs + 1e-12) {
            feasible = false;
            break;
          }
        }
        if (feasible) {
          best = std::min(best,
                          lp.objective[0] * a + lp.objective[1] * b);
        }
      }
    }
    EXPECT_NEAR(sol->objective, best, 1e-6) << "trial " << trial;
  }
}

TEST(StealFuzzTest, UniversalInvariantsHold) {
  Rng rng(83);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(7));
    std::vector<std::vector<double>> cost(n, std::vector<double>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        cost[i][j] = rng.NextUniform(0.5, 3.0);
        if (i == j) cost[i][j] *= 0.5;  // local is cheaper
      }
    }
    std::vector<double> loads(n);
    for (double& l : loads) {
      l = rng.NextBernoulli(0.2) ? 0.0
                                 : std::floor(rng.NextUniform(1, 5000));
    }
    std::vector<int> workers(n);
    std::iota(workers.begin(), workers.end(), 0);

    auto plan = SolveStealProblem(cost, loads, workers);
    ASSERT_TRUE(plan.ok()) << "trial " << trial;

    // Conservation + integrality + non-negativity.
    for (int i = 0; i < n; ++i) {
      double sum = 0;
      for (double x : plan->assignment[i]) {
        EXPECT_GE(x, 0.0);
        EXPECT_NEAR(x, std::round(x), 1e-9);
        sum += x;
      }
      EXPECT_NEAR(sum, loads[i], 1e-9) << "trial " << trial << " row " << i;
    }

    // Never worse than the no-steal identity plan...
    std::vector<std::vector<double>> identity(n, std::vector<double>(n, 0));
    for (int i = 0; i < n; ++i) identity[i][i] = loads[i];
    const double identity_makespan = PlanMakespan(cost, identity);
    // ...allowing one unit of rounding per row.
    double rounding_slack = 0;
    for (int i = 0; i < n; ++i) {
      double worst_cost = 0;
      for (int j = 0; j < n; ++j) {
        worst_cost = std::max(worst_cost, cost[i][j]);
      }
      rounding_slack += worst_cost;
    }
    EXPECT_LE(plan->makespan, identity_makespan + rounding_slack)
        << "trial " << trial;

    // Lower bound: total work at everyone's cheapest rate over n workers.
    double cheapest_total = 0;
    for (int i = 0; i < n; ++i) {
      double cheapest = 1e18;
      for (int j = 0; j < n; ++j) cheapest = std::min(cheapest, cost[i][j]);
      cheapest_total += cheapest * loads[i];
    }
    EXPECT_GE(plan->makespan + 1e-6, cheapest_total / n)
        << "trial " << trial;
  }
}

TEST(StealFuzzTest, ExactMilpNeverWorseThanRoundedLp) {
  Rng rng(84);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(3));
    std::vector<std::vector<double>> cost(n, std::vector<double>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        cost[i][j] = rng.NextUniform(0.5, 2.0);
      }
    }
    std::vector<double> loads(n);
    for (double& l : loads) l = std::floor(rng.NextUniform(1, 200));
    std::vector<int> workers(n);
    std::iota(workers.begin(), workers.end(), 0);

    auto lp_plan = SolveStealProblem(cost, loads, workers);
    StealProblemOptions exact;
    exact.exact_milp = true;
    auto milp_plan = SolveStealProblem(cost, loads, workers, exact);
    ASSERT_TRUE(lp_plan.ok());
    ASSERT_TRUE(milp_plan.ok());
    EXPECT_LE(milp_plan->makespan, lp_plan->makespan + 1e-6)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace gum::solver
