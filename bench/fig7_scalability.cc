// Figure 7: strong scalability of Gunrock / Groute / GUM from 1 to 8 vGPUs
// (Exp-2). One social graph (TW), one deep web graph (WB) and one road
// network (USA); speedups are relative to each system's own 1-GPU time.
// Odd device counts expose Groute's broken-ring penalty.
//
// Emitted once per (contention model, multipath) combination so one run
// yields every curve side by side in the CI artifact:
//   - contention=off is the legacy point-to-point model (multipath is a
//     no-op there; the table is emitted anyway so the byte-diff proves it);
//   - contention=fair time-slices each lane across concurrent transfers,
//     which deepens the odd-ring dip;
//   - multipath=on stripes GUM's bulk transfers (steal payloads, ownership
//     migrations, census reductions) across link-disjoint paths
//     (sim/transfer_plan.h) — values stay byte-identical, only the
//     simulated makespan moves.
// The trailer prints the measured 8-GPU GUM makespans under fair with
// multipath off vs on, the headline win of the striping plan.

#include <iostream>
#include <string>
#include <vector>

#include "bench/datasets.h"
#include "bench/runner.h"
#include "common/table_printer.h"
#include "sim/comm_plane.h"
#include "sim/transfer_plan.h"

using namespace gum;        // NOLINT(build/namespaces)
using namespace gum::bench; // NOLINT(build/namespaces)

namespace {

struct Combo {
  sim::ContentionModel contention;
  sim::MultipathMode multipath;
};

// Accumulated 8-GPU GUM makespans under contention=fair, keyed by
// multipath mode, for the trailer comparison.
struct FairGumEightDev {
  double off_ms = 0.0;
  double on_ms = 0.0;
};

}  // namespace

int main() {
  std::cout << "=== Figure 7: strong scaling, 1..8 GPUs (speedup vs the "
               "same system on 1 GPU; higher is better) ===\n";
  const std::vector<std::string> graphs = {"TW", "WB", "USA"};
  const std::vector<Algo> algos = {Algo::kBfs, Algo::kWcc, Algo::kPr,
                                   Algo::kSssp};
  const std::vector<System> systems = {System::kGunrock, System::kGroute,
                                       System::kGum};
  const std::vector<int> device_counts = {1, 2, 3, 4, 5, 6, 8};
  const std::vector<Combo> combos = {
      {sim::ContentionModel::kOff, sim::MultipathMode::kOff},
      {sim::ContentionModel::kOff, sim::MultipathMode::kOn},
      {sim::ContentionModel::kFair, sim::MultipathMode::kOff},
      {sim::ContentionModel::kFair, sim::MultipathMode::kOn},
  };

  FairGumEightDev fair_gum;
  for (const Combo& combo : combos) {
    std::cout << "\n--- contention=" << sim::ContentionModelName(combo.contention)
              << " multipath=" << sim::MultipathModeName(combo.multipath)
              << " ---\n";
    std::vector<std::string> headers = {"Graph", "Alg.", "Lib."};
    for (int n : device_counts) headers.push_back(std::to_string(n) + "gpu");
    TablePrinter tp(headers);

    for (const std::string& abbr : graphs) {
      const DatasetGraphs data = BuildDataset(abbr);
      for (Algo algo : algos) {
        for (System system : systems) {
          std::vector<std::string> row = {abbr, AlgoName(algo),
                                          SystemName(system)};
          double base_ms = 0;
          for (int n : device_counts) {
            RunConfig config;
            config.system = system;
            config.algo = algo;
            config.devices = n;
            config.contention = combo.contention;
            // Multipath only applies to GUM under fair; pass it through
            // unconditionally so the off-tables double as a no-op proof.
            config.multipath = combo.multipath;
            const core::RunResult r = RunBenchmark(data, config);
            if (n == 1) base_ms = r.total_ms;
            row.push_back(TablePrinter::Num(base_ms / r.total_ms, 2));
            if (system == System::kGum && n == 8 &&
                combo.contention == sim::ContentionModel::kFair) {
              if (combo.multipath == sim::MultipathMode::kOn) {
                fair_gum.on_ms += r.total_ms;
              } else {
                fair_gum.off_ms += r.total_ms;
              }
            }
          }
          tp.AddRow(row);
        }
        std::cerr << "done " << sim::ContentionModelName(combo.contention)
                  << "/" << sim::MultipathModeName(combo.multipath) << " "
                  << abbr << " " << AlgoName(algo) << "\n";
      }
    }
    tp.Print(std::cout);
  }
  std::cout << "\nGUM 8-GPU makespan under contention=fair (sum over "
            << "graphs x algorithms): multipath=off "
            << TablePrinter::Num(fair_gum.off_ms, 3) << " ms, multipath=on "
            << TablePrinter::Num(fair_gum.on_ms, 3) << " ms ("
            << TablePrinter::Num(fair_gum.off_ms / fair_gum.on_ms, 3)
            << "x)\n";
  std::cout << "\nShape check vs paper Fig. 7: GUM keeps near-linear "
               "speedups to 8 GPUs; Gunrock plateaus (or regresses) beyond "
               "a few GPUs on traversal workloads; Groute dips at odd GPU "
               "counts where its NVLink ring cannot close — and dips harder "
               "under contention=fair, where the PCIe wrap segment queues. "
               "Multi-path striping lifts GUM's fair-mode curve; both "
               "contention=off tables are identical because striping never "
               "engages in the legacy model.\n";
  return 0;
}
