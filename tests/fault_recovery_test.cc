// End-to-end fault-plane tests (DESIGN.md §11): a run that loses a device
// mid-flight must converge to byte-identical algorithm output vs the
// fault-free run, deterministically across host thread counts and
// checkpoint cadences, with the detection / restore / migration time
// charged into the analytic model.

#include <gtest/gtest.h>

#include "algos/apps.h"
#include "core/engine.h"
#include "fault/fault_plane.h"
#include "fault/recovery.h"
#include "tests/test_util.h"

namespace gum::core {
namespace {

using algos::BfsApp;
using algos::PageRankApp;
using algos::SsspApp;
using algos::WccApp;
using graph::VertexId;
using test::MakePartition;
using test::RoadGraph;
using test::SocialGraph;
using test::SocialGraphSym;
using test::TestEngineOptions;
using test::Topo;

fault::FaultPlane MustPlane(const std::string& spec, int num_devices,
                            uint64_t seed = 1) {
  auto plan = fault::FaultPlan::Parse(spec);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  auto plane = fault::FaultPlane::Create(*plan, num_devices, seed);
  EXPECT_TRUE(plane.ok()) << plane.status().ToString();
  return std::move(plane).value();
}

template <typename App>
struct RunOut {
  std::vector<typename App::Value> values;
  RunResult result;
};

template <typename App>
RunOut<App> RunEngine(const graph::CsrGraph& g, const graph::Partition& part,
                      App app, const fault::FaultPlane* plane, int ckpt_every,
                      int threads = 1, bool osteal = true) {
  EngineOptions opt = TestEngineOptions();
  opt.enable_osteal = osteal;
  opt.num_host_threads = threads;
  opt.fault_plane = plane;
  opt.checkpoint.every = ckpt_every;
  GumEngine<App> engine(&g, part, Topo(part.num_parts), opt);
  RunOut<App> out;
  out.result = engine.Run(app, &out.values);
  return out;
}

TEST(FaultRecoveryTest, BfsByteIdenticalAfterFailStop) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 4);
  BfsApp app;
  app.source = 1;
  const auto clean = RunEngine(g, part, app, nullptr, 0);
  ASSERT_GT(clean.result.iterations, 2);  // the failure must fire mid-run

  const auto plane = MustPlane("failstop:1@2", 4);
  const auto faulted = RunEngine(g, part, app, &plane, /*ckpt_every=*/1);
  EXPECT_EQ(faulted.values, clean.values);
  EXPECT_TRUE(faulted.result.fault_plan_active);
  EXPECT_EQ(faulted.result.devices_failed, 1);
  EXPECT_GE(faulted.result.recovery_events, 1);
  EXPECT_GT(faulted.result.RecoveryChargedMs(), 0.0);
  EXPECT_GT(faulted.result.total_ms, clean.result.total_ms);
  EXPECT_FALSE(clean.result.fault_plan_active);
}

TEST(FaultRecoveryTest, SsspByteIdenticalAfterFailStop) {
  const auto g = RoadGraph();
  const auto part = MakePartition(g, 4);
  SsspApp app;
  app.source = 0;
  const auto clean = RunEngine(g, part, app, nullptr, 0);
  ASSERT_GT(clean.result.iterations, 3);

  const auto plane = MustPlane("failstop:2@3", 4);
  const auto faulted = RunEngine(g, part, app, &plane, /*ckpt_every=*/2);
  EXPECT_EQ(faulted.values, clean.values);
  EXPECT_EQ(faulted.result.devices_failed, 1);
  EXPECT_GT(faulted.result.RecoveryChargedMs(), 0.0);
}

TEST(FaultRecoveryTest, PageRankByteIdenticalAfterFailStop) {
  const auto g = SocialGraph(9, 5);
  const auto part = MakePartition(g, 4);
  PageRankApp app;
  app.num_vertices = g.num_vertices();
  app.rounds = 10;
  const auto clean = RunEngine(g, part, app, nullptr, 0);

  const auto plane = MustPlane("failstop:3@4", 4);
  const auto faulted = RunEngine(g, part, app, &plane, /*ckpt_every=*/3);
  EXPECT_EQ(faulted.values, clean.values);  // bit-exact doubles
  EXPECT_EQ(faulted.result.iterations, clean.result.iterations);
  EXPECT_EQ(faulted.result.devices_failed, 1);
}

TEST(FaultRecoveryTest, WccByteIdenticalAfterFailStop) {
  const auto g = SocialGraphSym();
  const auto part = MakePartition(g, 4);
  WccApp app;
  const auto clean = RunEngine(g, part, app, nullptr, 0);
  ASSERT_GT(clean.result.iterations, 2);

  const auto plane = MustPlane("failstop:0@2", 4);
  const auto faulted = RunEngine(g, part, app, &plane, /*ckpt_every=*/1);
  EXPECT_EQ(faulted.values, clean.values);
  EXPECT_EQ(faulted.result.devices_failed, 1);
}

TEST(FaultRecoveryTest, DeterministicAcrossThreadsAndCadences) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 8);
  BfsApp app;
  app.source = 1;
  const auto clean = RunEngine(g, part, app, nullptr, 0);
  const auto plane = MustPlane("failstop:5@2", 8);

  for (const int ckpt : {1, 3}) {
    const auto reference = RunEngine(g, part, app, &plane, ckpt, /*threads=*/1);
    EXPECT_EQ(reference.values, clean.values) << "ckpt_every=" << ckpt;
    for (const int threads : {2, 4, 8}) {
      const auto run = RunEngine(g, part, app, &plane, ckpt, threads);
      EXPECT_EQ(run.values, clean.values)
          << "threads=" << threads << " ckpt_every=" << ckpt;
      // The whole faulted run — time, counters, iteration count — is as
      // deterministic as a fault-free one.
      EXPECT_DOUBLE_EQ(run.result.total_ms, reference.result.total_ms)
          << "threads=" << threads << " ckpt_every=" << ckpt;
      EXPECT_EQ(run.result.iterations, reference.result.iterations);
      EXPECT_EQ(run.result.recovery_events, reference.result.recovery_events);
      EXPECT_DOUBLE_EQ(run.result.RecoveryChargedMs(),
                       reference.result.RecoveryChargedMs());
    }
  }
}

TEST(FaultRecoveryTest, ZeroCadenceRestartsFromIterationZero) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 4);
  BfsApp app;
  app.source = 1;
  const auto clean = RunEngine(g, part, app, nullptr, 0);
  const auto plane = MustPlane("failstop:1@2", 4);
  // No periodic checkpoints: recovery falls back to the implicit
  // iteration-0 snapshot and replays everything; the discarded work is
  // charged as lost time.
  const auto faulted = RunEngine(g, part, app, &plane, /*ckpt_every=*/0);
  EXPECT_EQ(faulted.values, clean.values);
  EXPECT_EQ(faulted.result.checkpoints_taken, 0);
  EXPECT_EQ(faulted.result.devices_failed, 1);
  if (faulted.result.lost_work_ms > 0) {
    EXPECT_GT(faulted.result.RecoveryChargedMs(),
              faulted.result.recovery_detect_ms);
  }
}

TEST(FaultRecoveryTest, TwoFailuresBothRecovered) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 8);
  BfsApp app;
  app.source = 1;
  const auto clean = RunEngine(g, part, app, nullptr, 0);
  const auto plane = MustPlane("failstop:2@1;failstop:6@2", 8);
  const auto faulted = RunEngine(g, part, app, &plane, /*ckpt_every=*/1);
  EXPECT_EQ(faulted.values, clean.values);
  EXPECT_EQ(faulted.result.devices_failed, 2);
  EXPECT_GE(faulted.result.recovery_events, 2);
}

TEST(FaultRecoveryTest, RecoveryWorksWithOStealDisabled) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 4);
  BfsApp app;
  app.source = 1;
  const auto clean = RunEngine(g, part, app, nullptr, 0, 1, /*osteal=*/false);
  const auto plane = MustPlane("failstop:1@2", 4);
  const auto faulted =
      RunEngine(g, part, app, &plane, /*ckpt_every=*/1, 1, /*osteal=*/false);
  EXPECT_EQ(faulted.values, clean.values);
  EXPECT_EQ(faulted.result.devices_failed, 1);
}

TEST(FaultRecoveryTest, StragglerChangesTimeNeverValues) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 4);
  BfsApp app;
  app.source = 1;
  const auto clean = RunEngine(g, part, app, nullptr, 0);
  // Straggle every device with a factor large enough that whoever ends up
  // owning the compute becomes the iteration bottleneck and visibly
  // stretches the wall, not just its own busy time.
  const auto plane = MustPlane(
      "straggler:0@0-50x1000;straggler:1@0-50x1000;"
      "straggler:2@0-50x1000;straggler:3@0-50x1000",
      4);
  const auto slow = RunEngine(g, part, app, &plane, 0);
  EXPECT_EQ(slow.values, clean.values);
  EXPECT_GT(slow.result.straggler_ms, 0.0);
  EXPECT_GT(slow.result.total_ms, clean.result.total_ms);
  EXPECT_EQ(slow.result.devices_failed, 0);
}

TEST(FaultRecoveryTest, LinkFaultsRerouteNeverChangeValues) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 8);
  BfsApp app;
  app.source = 1;
  const auto clean = RunEngine(g, part, app, nullptr, 0);
  const auto plane =
      MustPlane("linkdown:0-1@0-50;degrade:2-3@1-4x0.25;flap:4-5@0-50/1", 8);
  const auto faulted = RunEngine(g, part, app, &plane, 0);
  EXPECT_EQ(faulted.values, clean.values);
  EXPECT_GT(faulted.result.link_fault_iterations, 0);
  EXPECT_EQ(faulted.result.devices_failed, 0);
}

TEST(FaultRecoveryTest, CheckpointsAloneChargeTimeNeverValues) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 4);
  BfsApp app;
  app.source = 1;
  const auto clean = RunEngine(g, part, app, nullptr, 0);
  const auto ckpt = RunEngine(g, part, app, nullptr, /*ckpt_every=*/2);
  EXPECT_EQ(ckpt.values, clean.values);
  EXPECT_GT(ckpt.result.checkpoints_taken, 0);
  EXPECT_GT(ckpt.result.checkpoint_ms_total, 0.0);
  EXPECT_GT(ckpt.result.total_ms, clean.result.total_ms);
  EXPECT_FALSE(ckpt.result.fault_plan_active);
}

TEST(FaultRecoveryTest, FailureAfterConvergenceIsInvisible) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 4);
  BfsApp app;
  app.source = 1;
  const auto clean = RunEngine(g, part, app, nullptr, 0);
  const auto plane = MustPlane("failstop:1@500", 4);
  const auto faulted = RunEngine(g, part, app, &plane, 0);
  EXPECT_EQ(faulted.values, clean.values);
  EXPECT_EQ(faulted.result.devices_failed, 0);
  EXPECT_EQ(faulted.result.recovery_events, 0);
  // The plan is active but nothing fired: identical charged time.
  EXPECT_DOUBLE_EQ(faulted.result.total_ms, clean.result.total_ms);
  EXPECT_TRUE(faulted.result.fault_plan_active);
}

// Checkpoints snapshot the SoA VertexState (values + frontier arena), so
// recovery must be exact under every expand backend — including iterations
// where the auto heuristic picked a pull gather and the frontier was
// rebuilt through the SpMV path.
template <typename App>
void ExpectRecoveryExactUnderBackend(const graph::CsrGraph& g,
                                     const graph::Partition& part, App app,
                                     ExpandBackendKind backend) {
  EngineOptions opt = TestEngineOptions();
  opt.expand_backend = backend;
  std::vector<typename App::Value> clean;
  {
    GumEngine<App> engine(&g, part, Topo(part.num_parts), opt);
    (void)engine.Run(app, &clean);
  }
  const auto plane = MustPlane("failstop:1@2", part.num_parts);
  opt.fault_plane = &plane;
  opt.checkpoint.every = 2;
  GumEngine<App> engine(&g, part, Topo(part.num_parts), opt);
  std::vector<typename App::Value> faulted;
  const RunResult result = engine.Run(app, &faulted);
  EXPECT_EQ(faulted, clean)
      << "backend=" << ExpandBackendKindName(backend);
  EXPECT_EQ(result.devices_failed, 1);
  EXPECT_GE(result.recovery_events, 1);
}

TEST(FaultRecoveryTest, ScatterBackendRecoversExactly) {
  const auto g = SocialGraph();
  BfsApp app;
  app.source = 1;
  ExpectRecoveryExactUnderBackend(g, MakePartition(g, 4), app,
                                  ExpandBackendKind::kScatter);
}

TEST(FaultRecoveryTest, SpmvBackendRecoversExactly) {
  const auto g = SocialGraph(9, 5);
  PageRankApp app;
  app.num_vertices = g.num_vertices();
  app.rounds = 10;
  ExpectRecoveryExactUnderBackend(g, MakePartition(g, 4), app,
                                  ExpandBackendKind::kSpmv);
}

TEST(FaultRecoveryTest, AutoBackendRecoversExactly) {
  const auto g = SocialGraph();
  BfsApp app;
  app.source = 1;
  ExpectRecoveryExactUnderBackend(g, MakePartition(g, 4), app,
                                  ExpandBackendKind::kAuto);
}

// ---------- multi-path striping under the fault overlay ----------

// Link faults hitting a run whose bulk transfers are striped
// (contention=fair, multipath=on) must only drop paths from the plans —
// the transfers always land, so values stay byte-identical to the
// fault-free run, deterministically across thread counts.
TEST(FaultRecoveryTest, LinkFaultsDuringStripedTransfersDropOnlyPaths) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 8);
  BfsApp app;
  app.source = 1;

  auto run = [&](const fault::FaultPlane* plane, int threads,
                 std::vector<uint32_t>* values) {
    EngineOptions opt = TestEngineOptions();
    opt.contention = sim::ContentionModel::kFair;
    opt.multipath = sim::MultipathMode::kOn;
    opt.num_host_threads = threads;
    opt.fault_plane = plane;
    GumEngine<BfsApp> engine(&g, part, Topo(8), opt);
    return engine.Run(app, values);
  };

  std::vector<uint32_t> clean_values;
  const RunResult clean = run(nullptr, 1, &clean_values);
  EXPECT_TRUE(clean.multipath_active);

  const auto plane =
      MustPlane("linkdown:0-1@0-50;degrade:2-3@1-4x0.25;flap:4-5@0-50/1", 8);
  std::vector<uint32_t> reference_values;
  const RunResult reference = run(&plane, 1, &reference_values);
  EXPECT_EQ(reference_values, clean_values);
  EXPECT_GT(reference.link_fault_iterations, 0);
  EXPECT_EQ(reference.devices_failed, 0);

  for (const int threads : {2, 4, 8}) {
    std::vector<uint32_t> values;
    const RunResult r = run(&plane, threads, &values);
    EXPECT_EQ(values, clean_values) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.total_ms, reference.total_ms)
        << "threads=" << threads;
    EXPECT_EQ(r.iterations, reference.iterations) << "threads=" << threads;
    EXPECT_EQ(r.multipath.paths_dropped, reference.multipath.paths_dropped)
        << "threads=" << threads;
  }
}

// A failstop during a multipath run recovers to byte-identical values
// while the migration traffic rides the striped peer-to-peer paths.
TEST(FaultRecoveryTest, FailStopRecoveryExactUnderMultipath) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 8);
  BfsApp app;
  app.source = 1;

  auto run = [&](const fault::FaultPlane* plane, sim::MultipathMode multipath,
                 std::vector<uint32_t>* values) {
    EngineOptions opt = TestEngineOptions();
    opt.contention = sim::ContentionModel::kFair;
    opt.multipath = multipath;
    opt.fault_plane = plane;
    opt.checkpoint.every = 1;
    GumEngine<BfsApp> engine(&g, part, Topo(8), opt);
    return engine.Run(app, values);
  };

  std::vector<uint32_t> clean_values;
  (void)run(nullptr, sim::MultipathMode::kOff, &clean_values);

  const auto plane = MustPlane("failstop:5@2", 8);
  std::vector<uint32_t> on_values;
  const RunResult on = run(&plane, sim::MultipathMode::kOn, &on_values);
  EXPECT_EQ(on_values, clean_values);
  EXPECT_EQ(on.devices_failed, 1);
  EXPECT_GE(on.recovery_events, 1);

  std::vector<uint32_t> off_values;
  const RunResult off = run(&plane, sim::MultipathMode::kOff, &off_values);
  EXPECT_EQ(off_values, clean_values);
  // The striped recovery path is strictly cheaper than the PCIe
  // round-trip on the same migration set.
  EXPECT_LE(on.recovery_migrate_ms, off.recovery_migrate_ms);
}

// Unit-level check of the recovery charge itself: a migrated fragment
// whose checkpoint owner survived rides the striped NVLink paths, which
// beat the legacy host PCIe round-trip.
TEST(FaultRecoveryTest, MultipathRecoveryChargeBeatsLegacy) {
  const fault::RecoveryConfig config;
  // Eight fragments on eight devices. Device 1 is dead: fragment 1
  // migrates to device 2 (host read-back — its checkpoint owner is gone),
  // and fragment 3 is rebalanced from the *surviving* device 3 to device 4
  // (the peer-to-peer striping case). Everything else stays put.
  const std::vector<int> ckpt_owner = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<int> new_owner = {0, 2, 2, 4, 4, 5, 6, 7};
  const std::vector<bool> failed = {false, true, false, false, false,
                                    false, false, false};
  const std::vector<double> fragment_bytes(8, 4e6);

  const fault::RecoveryCharge legacy = fault::ComputeRecoveryCharge(
      config, ckpt_owner, new_owner, failed, fragment_bytes);

  sim::CommPlane plane(sim::Topology::HybridCubeMesh8(),
                       sim::ContentionModel::kFair);
  plane.set_multipath(true);
  const fault::RecoveryCharge striped = fault::ComputeRecoveryCharge(
      config, ckpt_owner, new_owner, failed, fragment_bytes, &plane);

  EXPECT_EQ(legacy.fragments_migrated, 2);
  EXPECT_EQ(striped.fragments_migrated, 2);
  EXPECT_DOUBLE_EQ(legacy.detect_ms, striped.detect_ms);
  // Both the restore read-back (PCIe + NVLink relay) and the migration
  // (striped peer-to-peer) are strictly faster under the plans.
  EXPECT_LT(striped.restore_ms, legacy.restore_ms);
  EXPECT_LT(striped.migrate_ms, legacy.migrate_ms);
  EXPECT_GT(striped.migrate_ms, 0.0);
}

TEST(FaultRecoveryTest, ChaosPlanConvergesByteIdentical) {
  const auto g = SocialGraph();
  const auto part = MakePartition(g, 8);
  PageRankApp app;
  app.num_vertices = g.num_vertices();
  app.rounds = 8;
  const auto clean = RunEngine(g, part, app, nullptr, 0);
  for (const uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto plane = MustPlane("chaos", 8, seed);
    const auto faulted = RunEngine(g, part, app, &plane, /*ckpt_every=*/2);
    EXPECT_EQ(faulted.values, clean.values) << "seed=" << seed;
    EXPECT_EQ(faulted.result.devices_failed, 1) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace gum::core
