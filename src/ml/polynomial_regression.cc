#include "ml/polynomial_regression.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"

namespace gum::ml {

namespace {

void EnumerateMonomials(int dim, int max_degree, std::vector<int>* current,
                        std::vector<std::vector<int>>* out) {
  if (static_cast<int>(current->size()) == dim) {
    out->push_back(*current);
    return;
  }
  const int used = std::accumulate(current->begin(), current->end(), 0);
  for (int e = 0; e <= max_degree - used; ++e) {
    current->push_back(e);
    EnumerateMonomials(dim, max_degree, current, out);
    current->pop_back();
  }
}

}  // namespace

PolynomialRegression::PolynomialRegression(int degree, SgdOptions sgd)
    : degree_(degree), sgd_(sgd) {}

std::string PolynomialRegression::name() const {
  return "polynomial_regression(d=" + std::to_string(degree_) + ")";
}

std::vector<double> PolynomialRegression::Expand(
    std::span<const double> features) const {
  std::vector<double> z(input_dim_);
  for (int j = 0; j < input_dim_; ++j) {
    z[j] = (features[j] - raw_mean_[j]) / raw_std_[j];
  }
  std::vector<double> phi(monomials_.size());
  for (size_t k = 0; k < monomials_.size(); ++k) {
    double term = 1.0;
    for (int j = 0; j < input_dim_; ++j) {
      for (int e = 0; e < monomials_[k][j]; ++e) term *= z[j];
    }
    phi[k] = term;
  }
  return phi;
}

Status PolynomialRegression::Fit(const Dataset& data) {
  if (data.samples.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  input_dim_ = data.feature_dim();
  monomials_.clear();
  std::vector<int> current;
  EnumerateMonomials(input_dim_, degree_, &current, &monomials_);

  // Raw standardization.
  raw_mean_.assign(input_dim_, 0.0);
  raw_std_.assign(input_dim_, 0.0);
  for (const Sample& s : data.samples) {
    for (int j = 0; j < input_dim_; ++j) raw_mean_[j] += s.features[j];
  }
  for (double& m : raw_mean_) m /= static_cast<double>(data.size());
  for (const Sample& s : data.samples) {
    for (int j = 0; j < input_dim_; ++j) {
      const double d = s.features[j] - raw_mean_[j];
      raw_std_[j] += d * d;
    }
  }
  for (double& sd : raw_std_) {
    sd = std::sqrt(sd / static_cast<double>(data.size()));
    if (sd < 1e-12) sd = 1.0;
  }

  // Expand all samples once.
  const size_t n = data.size();
  const size_t terms = monomials_.size();
  std::vector<std::vector<double>> phi(n);
  for (size_t i = 0; i < n; ++i) phi[i] = Expand(data.samples[i].features);

  // Standardize expanded terms (keep the constant term as-is).
  mean_.assign(terms, 0.0);
  stddev_.assign(terms, 1.0);
  for (size_t k = 0; k < terms; ++k) {
    const bool is_bias = std::all_of(monomials_[k].begin(),
                                     monomials_[k].end(),
                                     [](int e) { return e == 0; });
    if (is_bias) continue;
    double m = 0;
    for (size_t i = 0; i < n; ++i) m += phi[i][k];
    m /= static_cast<double>(n);
    double var = 0;
    for (size_t i = 0; i < n; ++i) {
      const double d = phi[i][k] - m;
      var += d * d;
    }
    const double sd = std::sqrt(var / static_cast<double>(n));
    mean_[k] = m;
    stddev_[k] = sd < 1e-12 ? 1.0 : sd;
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < terms; ++k) {
      phi[i][k] = (phi[i][k] - mean_[k]) / stddev_[k];
    }
  }

  // Normalize targets so the SGD step sizes are independent of the cost
  // units (ns vs scaled-ns); the relative-error objective is invariant.
  target_scale_ = 0.0;
  for (const Sample& s : data.samples) target_scale_ += s.target;
  target_scale_ /= static_cast<double>(n);
  if (target_scale_ <= 0.0) target_scale_ = 1.0;

  // Mini-batch SGD on the squared relative error.
  weights_.assign(terms, 0.0);
  Rng rng(sgd_.seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  double lr = sgd_.learning_rate;
  std::vector<double> grad(terms);
  std::vector<double> velocity(terms, 0.0);
  for (int epoch = 0; epoch < sgd_.epochs; ++epoch) {
    for (size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    for (size_t start = 0; start < n;
         start += static_cast<size_t>(sgd_.batch_size)) {
      const size_t end =
          std::min(n, start + static_cast<size_t>(sgd_.batch_size));
      std::fill(grad.begin(), grad.end(), 0.0);
      for (size_t b = start; b < end; ++b) {
        const size_t i = order[b];
        const double t = data.samples[i].target / target_scale_;
        if (t <= 0) continue;
        double pred = 0;
        for (size_t k = 0; k < terms; ++k) pred += weights_[k] * phi[i][k];
        const double err = 2.0 * (pred - t) / (t * t);
        for (size_t k = 0; k < terms; ++k) grad[k] += err * phi[i][k];
      }
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      double norm_sq = 0;
      for (size_t k = 0; k < terms; ++k) {
        grad[k] = grad[k] * inv_batch + sgd_.l2 * weights_[k];
        norm_sq += grad[k] * grad[k];
      }
      const double norm = std::sqrt(norm_sq);
      const double scale =
          norm > sgd_.gradient_clip ? sgd_.gradient_clip / norm : 1.0;
      for (size_t k = 0; k < terms; ++k) {
        velocity[k] = sgd_.momentum * velocity[k] - lr * scale * grad[k];
        weights_[k] += velocity[k];
      }
    }
    lr *= sgd_.lr_decay;
  }
  return Status::OK();
}

double PolynomialRegression::Predict(std::span<const double> features) const {
  const std::vector<double> phi = Expand(features);
  double pred = 0;
  for (size_t k = 0; k < phi.size(); ++k) {
    pred += weights_[k] * (phi[k] - mean_[k]) / stddev_[k];
  }
  pred *= target_scale_;
  return std::max(pred, 1e-3 * target_scale_);
}

}  // namespace gum::ml
