// Incremental recompute over the mutation plane (DESIGN.md §14).
//
// After an epoch's mutation batch, the previous converged values are a
// warm starting point: for the monotone min-combine apps (BFS, SSSP, WCC)
// every value only ever tightens, so resuming from the warm values with a
// frontier re-seeded from mutation-affected vertices converges to the
// *same unique fixed point* a full recompute reaches — byte for byte,
// because both computations take the min over the identical set of
// left-to-right path sums. Deletions can break that argument (a removed
// edge may have been the tight support of its head's value), so each
// epoch is planned first:
//
//   kSkip        — no effective events: values are already the epoch's
//                  fixed point; no engine run at all.
//   kIncremental — warm start is provably sound; run with the affected
//                  seed frontier.
//   kFallback    — monotonicity lost: restore the epoch-0 checkpoint
//                  (fault/checkpoint.h — InitValue state is graph-free,
//                  so the restore point stays valid for every epoch) and
//                  replay forward on the mutated graph. The restore
//                  read-back is charged like any checkpoint restore.
//
// Soundness rules per app:
//   BFS/SSSP — insert (u,v): seed u when u is reached (activation then
//     cascades, so batch-internal chains resolve). delete (u,v,w): safe
//     iff NOT tight, i.e. warm[u] reached implies warm[u] + w != warm[v];
//     a tight delete forces kFallback. A slack edge supports no shortest
//     path (any path through it is strictly beaten by routing optimally
//     to v), so removing it leaves the fixed point untouched.
//   WCC — inserts seed both endpoints (labels only ever shrink); any
//     effective delete may split a component, kFallback.
//   PR  — fixed-round power iteration from warm values computes a
//     different sequence than from InitValue, so *any* effective event
//     forces kFallback; only empty batches skip.
//
// IncrementalApp<App> is the engine-facing wrapper: it forwards the whole
// App concept but redirects InitValue to the warm values and
// IsInitiallyActive to the seed bitmap — the engine re-derives its state
// from the app each run, so warm-starting needs zero engine changes.

#ifndef GUM_ALGOS_INCREMENTAL_H_
#define GUM_ALGOS_INCREMENTAL_H_

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "algos/apps.h"
#include "common/bitmap.h"
#include "core/engine.h"
#include "core/expand/expand_backend.h"
#include "core/graph_context.h"
#include "core/run_context.h"
#include "fault/checkpoint.h"
#include "graph/mutation.h"

namespace gum::algos {

template <typename App>
struct IncrementalApp {
  using Value = typename App::Value;
  using Message = typename App::Message;

  App* inner = nullptr;
  const std::vector<Value>* warm = nullptr;
  const Bitmap* seeds = nullptr;

  std::string name() const { return inner->name() + "+inc"; }
  int fixed_rounds() const { return inner->fixed_rounds(); }
  Value InitValue(VertexId v) const { return (*warm)[v]; }
  bool IsInitiallyActive(VertexId v) const { return seeds->Test(v); }
  Message InitialAccumulator() const { return inner->InitialAccumulator(); }
  Message OnFrontier(VertexId v, Value& val, uint32_t out_degree) {
    return inner->OnFrontier(v, val, out_degree);
  }
  std::optional<Message> Scatter(const Message& payload, VertexId dst,
                                 float weight) const {
    return inner->Scatter(payload, dst, weight);
  }
  Message Combine(const Message& a, const Message& b) const {
    return inner->Combine(a, b);
  }
  Message CombineAll(const Message& acc, const Message& payload,
                     float weight) const
    requires core::HasCombineAll<App>
  {
    return inner->CombineAll(acc, payload, weight);
  }
  bool Apply(VertexId v, Value& val, const Message& msg) const {
    return inner->Apply(v, val, msg);
  }
};

enum class EpochPlanKind { kSkip, kIncremental, kFallback };

inline const char* EpochPlanKindName(EpochPlanKind kind) {
  switch (kind) {
    case EpochPlanKind::kSkip:
      return "skip";
    case EpochPlanKind::kIncremental:
      return "incremental";
    case EpochPlanKind::kFallback:
      return "fallback";
  }
  return "unknown";
}

// The per-epoch soundness decision plus, for kIncremental, the affected
// seed frontier.
struct EpochPlan {
  EpochPlanKind kind = EpochPlanKind::kSkip;
  Bitmap seeds;
  size_t seed_count = 0;

  void Seed(VertexId v) {
    if (seeds.TestAndSet(v)) ++seed_count;
  }
};

// --- per-app epoch planners ---

namespace internal {

// Shared BFS/SSSP planner: `step(warm_u, ev)` is the relaxed value the
// deleted edge would have produced at its head.
template <typename Value, typename Step>
EpochPlan PlanMinPath(std::span<const graph::MutationEvent> effective,
                      const std::vector<Value>& warm, Value unreached,
                      Step&& step) {
  EpochPlan plan;
  if (effective.empty()) return plan;
  plan.seeds.Resize(warm.size());
  plan.kind = EpochPlanKind::kIncremental;
  for (const graph::MutationEvent& ev : effective) {
    if (ev.kind == graph::MutationKind::kInsertEdge) {
      if (warm[ev.u] != unreached) plan.Seed(ev.u);
      continue;
    }
    // Effective deletes: tight edges were (potentially) the head's
    // support — lost monotonicity, restore and replay.
    if (warm[ev.u] != unreached && step(warm[ev.u], ev) == warm[ev.v]) {
      plan.kind = EpochPlanKind::kFallback;
      return plan;
    }
  }
  return plan;
}

}  // namespace internal

inline EpochPlan PlanEpoch(const BfsApp&,
                           std::span<const graph::MutationEvent> effective,
                           const std::vector<BfsApp::Value>& warm) {
  return internal::PlanMinPath(
      effective, warm, BfsApp::kUnreached,
      [](BfsApp::Value warm_u, const graph::MutationEvent&) {
        return warm_u + 1;
      });
}

inline EpochPlan PlanEpoch(const SsspApp&,
                           std::span<const graph::MutationEvent> effective,
                           const std::vector<SsspApp::Value>& warm) {
  return internal::PlanMinPath(
      effective, warm, SsspApp::kUnreached,
      [](SsspApp::Value warm_u, const graph::MutationEvent& ev) {
        return warm_u + ev.weight;
      });
}

inline EpochPlan PlanEpoch(const WccApp&,
                           std::span<const graph::MutationEvent> effective,
                           const std::vector<WccApp::Value>& warm) {
  EpochPlan plan;
  if (effective.empty()) return plan;
  plan.seeds.Resize(warm.size());
  plan.kind = EpochPlanKind::kIncremental;
  for (const graph::MutationEvent& ev : effective) {
    if (ev.kind != graph::MutationKind::kInsertEdge) {
      plan.kind = EpochPlanKind::kFallback;
      return plan;
    }
    plan.Seed(ev.u);
    plan.Seed(ev.v);
  }
  return plan;
}

inline EpochPlan PlanEpoch(const PageRankApp&,
                           std::span<const graph::MutationEvent> effective,
                           const std::vector<PageRankApp::Value>&) {
  EpochPlan plan;
  if (effective.empty()) return plan;
  // Fixed-round power iteration has no warm-start: rounds from converged
  // values compute a different sequence than rounds from InitValue.
  plan.kind = EpochPlanKind::kFallback;
  return plan;
}

// A standing query over an epoching graph: runs the app once in full,
// keeps the converged values warm, and after every AdvanceEpoch re-plans
// and re-runs as cheaply as soundness allows. Engines are rebuilt per
// epoch (they are thin views over the epoch's GraphContext); the two
// RunContexts persist, so arenas keep their high-water capacity across
// epochs — the serving fast path.
template <typename App>
class IncrementalSession {
 public:
  using Value = typename App::Value;

  struct EpochRunStats {
    EpochPlanKind kind = EpochPlanKind::kSkip;
    size_t seed_count = 0;
    // Charged restore read-back (kFallback only): each surviving device
    // reloads its fragment's checkpointed values + frontier over PCIe,
    // devices in parallel.
    double restore_ms = 0.0;
    core::RunResult result;
  };

  // Full run on the epoch-0 graph; captures the epoch-0 restore point.
  core::RunResult RunInitial(const core::GraphContext& ctx, App app,
                             const core::EngineOptions* run_options = nullptr) {
    app_ = app;
    const graph::VertexId num_v = ctx.graph().num_vertices();
    ckpt0_.iteration = 0;
    ckpt0_.state.values.resize(num_v);
    for (graph::VertexId v = 0; v < num_v; ++v) {
      ckpt0_.state.values[v] = app_.InitValue(v);
    }
    init_active_.Resize(num_v);
    for (graph::VertexId v = 0; v < num_v; ++v) {
      if (app_.IsInitiallyActive(v)) init_active_.Set(v);
    }
    ckpt0_.state.frontier.BuildByOwner(
        num_v, ctx.partition().owner, ctx.num_devices(),
        [this](graph::VertexId v) { return init_active_.Test(v); });
    ckpt0_.group_size = ctx.num_devices();

    core::GumEngine<App> engine(&ctx);
    core::RunResult result = engine.Run(app_, rc_full_, nullptr, run_options);
    values_ = rc_full_.state.values;
    return result;
  }

  // Recompute after the context advanced one epoch. `effective` is the
  // batch's effective event set (EpochAdvanceStats::effective).
  EpochRunStats RunEpoch(const core::GraphContext& ctx,
                         std::span<const graph::MutationEvent> effective,
                         const core::EngineOptions* run_options = nullptr) {
    EpochRunStats stats;
    EpochPlan plan = PlanEpoch(app_, effective, values_);
    stats.kind = plan.kind;
    stats.seed_count = plan.seed_count;
    switch (plan.kind) {
      case EpochPlanKind::kSkip:
        // Values are already the mutated graph's fixed point.
        ++skips_;
        return stats;
      case EpochPlanKind::kIncremental: {
        ++incremental_epochs_;
        IncrementalApp<App> inc{&app_, &values_, &plan.seeds};
        core::GumEngine<IncrementalApp<App>> engine(&ctx);
        stats.result = engine.Run(inc, rc_inc_, nullptr, run_options);
        break;
      }
      case EpochPlanKind::kFallback: {
        ++fallbacks_;
        stats.restore_ms = ChargeRestore(ctx);
        IncrementalApp<App> inc{&app_, &ckpt0_.state.values, &init_active_};
        core::GumEngine<IncrementalApp<App>> engine(&ctx);
        stats.result = engine.Run(inc, rc_inc_, nullptr, run_options);
        break;
      }
    }
    values_ = rc_inc_.state.values;
    return stats;
  }

  const App& app() const { return app_; }
  const std::vector<Value>& values() const { return values_; }
  int skips() const { return skips_; }
  int incremental_epochs() const { return incremental_epochs_; }
  int fallbacks() const { return fallbacks_; }

 private:
  double ChargeRestore(const core::GraphContext& ctx) const {
    double ms = 0.0;
    for (int d = 0; d < ctx.num_devices(); ++d) {
      const size_t frag_vertices = ctx.partition().part_vertices[d].size();
      const size_t frontier_vertices =
          ckpt0_.state.frontier.FragmentSize(d);
      ms = std::max(ms, fault::CheckpointTransferMs(fault::FragmentStateBytes(
                            frag_vertices, frontier_vertices, sizeof(Value))));
    }
    return ms;
  }

  App app_{};
  std::vector<Value> values_;
  // Epoch-0 restore point; InitValue state never depends on the edge set,
  // so it stays a valid restart for every epoch's graph.
  fault::Checkpoint<Value> ckpt0_;
  Bitmap init_active_;
  core::RunContext<App> rc_full_;
  core::RunContext<IncrementalApp<App>> rc_inc_;
  int skips_ = 0;
  int incremental_epochs_ = 0;
  int fallbacks_ = 0;
};

}  // namespace gum::algos

#endif  // GUM_ALGOS_INCREMENTAL_H_
