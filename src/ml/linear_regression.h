// Ordinary least squares linear regression (Table V row 1).
//
// Fit by solving the normal equations with Gaussian elimination (ridge
// damping for rank deficiency). Minimizes *absolute* squared error, which is
// why it scores poorly on the relative-error metric used to judge cost
// models — the effect paper Table V reports.

#ifndef GUM_ML_LINEAR_REGRESSION_H_
#define GUM_ML_LINEAR_REGRESSION_H_

#include <vector>

#include "ml/model.h"

namespace gum::ml {

class LinearRegression : public RegressionModel {
 public:
  explicit LinearRegression(double ridge = 1e-8) : ridge_(ridge) {}

  Status Fit(const Dataset& data) override;
  double Predict(std::span<const double> features) const override;
  std::string name() const override { return "linear_regression"; }

 private:
  double ridge_;
  std::vector<double> weights_;  // size input_dim + 1 (bias last)
};

// Solves A x = b for symmetric positive (semi)definite A via Gaussian
// elimination with partial pivoting; shared with the SVR closed-form paths.
Result<std::vector<double>> SolveDenseSystem(
    std::vector<std::vector<double>> a, std::vector<double> b);

}  // namespace gum::ml

#endif  // GUM_ML_LINEAR_REGRESSION_H_
