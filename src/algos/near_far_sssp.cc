#include "algos/near_far_sssp.h"

#include <algorithm>
#include <limits>

#include "common/bitmap.h"
#include "common/logging.h"
#include "graph/frontier_features.h"
#include "sim/kernel_cost.h"
#include "sim/timeline.h"

namespace gum::algos {

namespace {
using graph::VertexId;
constexpr float kUnreached = std::numeric_limits<float>::max();
}  // namespace

core::RunResult NearFarSssp(const graph::CsrGraph& g,
                            const graph::Partition& partition,
                            const sim::Topology& topology,
                            VertexId source, const NearFarOptions& options,
                            std::vector<float>* dist_out,
                            NearFarStats* stats_out) {
  const int n = partition.num_parts;
  const VertexId num_v = g.num_vertices();
  const sim::DeviceParams& dev = options.device;
  const double p_ns = dev.sync_per_peer_us * 1000.0;
  (void)topology;

  double delta = options.delta;
  if (delta <= 0.0) {
    // 2x average edge weight, the usual heuristic.
    double total_weight = 0;
    for (VertexId u = 0; u < num_v; ++u) {
      const auto weights = g.OutWeights(u);
      if (weights.empty()) {
        total_weight += g.OutDegree(u);
      } else {
        for (float w : weights) total_weight += w;
      }
    }
    delta = g.num_edges() > 0 ? 2.0 * total_weight / g.num_edges() : 1.0;
  }

  core::RunResult result;
  result.timeline = sim::Timeline(n);
  NearFarStats stats;

  std::vector<float> dist(num_v, kUnreached);
  dist[source] = 0.0f;
  std::vector<VertexId> near = {source};
  std::vector<VertexId> far;
  Bitmap in_near(num_v);
  in_near.Set(source);

  int band = 0;
  double split = delta;
  int step = 0;

  while (!near.empty() || !far.empty()) {
    if (near.empty()) {
      // Band switch: drain the far pile into near / still-far.
      ++band;
      split = delta * (band + 1);
      std::vector<VertexId> still_far;
      still_far.reserve(far.size());
      for (const VertexId v : far) {
        if (dist[v] < split) {
          if (in_near.TestAndSet(v)) near.push_back(v);
        } else {
          still_far.push_back(v);
        }
      }
      stats.far_pile_moves += far.size();
      // The split is one compaction kernel over the far pile on every
      // device (pile is distributed by ownership).
      for (int d = 0; d < n; ++d) {
        result.timeline.Add(step, d, sim::TimeCategory::kOverhead,
                            (dev.kernel_launch_us * 1000.0 +
                             far.size() / n * 2.0) /
                                1e6);
      }
      far.swap(still_far);
      if (near.empty()) continue;  // next band (possible with gaps)
    }

    // Relax the near pile, bucketed by owner for per-device accounting.
    std::vector<std::vector<VertexId>> by_owner(n);
    for (const VertexId u : near) {
      by_owner[partition.owner[u]].push_back(u);
    }
    near.clear();
    std::vector<VertexId> next_near;
    for (int d = 0; d < n; ++d) {
      if (by_owner[d].empty()) {
        if (n > 1) {
          result.timeline.Add(step, d, sim::TimeCategory::kOverhead,
                              p_ns * n / 1e6);
        }
        continue;
      }
      uint64_t relaxed = 0;
      for (const VertexId u : by_owner[d]) {
        in_near.Reset(u);
        const auto neighbors = g.OutNeighbors(u);
        const auto weights = g.OutWeights(u);
        for (size_t e = 0; e < neighbors.size(); ++e) {
          const VertexId v = neighbors[e];
          const float w = weights.empty() ? 1.0f : weights[e];
          const float nd = dist[u] + w;
          if (nd < dist[v]) {
            dist[v] = nd;
            if (nd < split) {
              if (in_near.TestAndSet(v)) next_near.push_back(v);
            } else {
              far.push_back(v);
            }
          }
          ++relaxed;
        }
      }
      stats.relaxations += relaxed;
      const auto features = graph::ExtractFrontierFeatures(g, by_owner[d]);
      result.timeline.Add(step, d, sim::TimeCategory::kCompute,
                          static_cast<double>(relaxed) *
                              sim::TrueEdgeCostNs(features, dev) / 1e6);
      result.timeline.Add(
          step, d, sim::TimeCategory::kOverhead,
          (options.kernels_per_band * dev.kernel_launch_us * 1000.0 +
           p_ns * n) /
              1e6);
      result.edges_processed += relaxed;
    }
    near.swap(next_near);
    result.total_ms += result.timeline.IterationWall(step);
    ++step;
    GUM_CHECK(step < 10 * 1000 * 1000) << "near-far failed to converge";
  }

  stats.bands = band + 1;
  result.iterations = step;
  if (dist_out != nullptr) *dist_out = std::move(dist);
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace gum::algos
