// Exact single-threaded reference implementations used to validate every
// engine (GUM, Gunrock-like, Groute-like) bit-for-bit (BFS/SSSP/WCC) or to
// numeric tolerance (PageRank).

#ifndef GUM_ALGOS_REFERENCE_H_
#define GUM_ALGOS_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace gum::algos::ref {

// BFS depths; unreached = UINT32_MAX.
std::vector<uint32_t> Bfs(const graph::CsrGraph& g, graph::VertexId source);

// Dijkstra distances over OutWeights (1.0 when unweighted); unreached =
// FLT_MAX. Since the engine's Bellman-Ford accumulates along the same
// shortest path edge-by-edge, results match bitwise.
std::vector<float> Sssp(const graph::CsrGraph& g, graph::VertexId source);

// Union-find components over the out-edge list treated as undirected;
// every vertex labeled with the minimum vertex id of its component.
std::vector<graph::VertexId> Wcc(const graph::CsrGraph& g);

// Synchronous power iteration matching PageRankApp's semantics exactly
// (dangling mass dropped, (1-d)/N base).
std::vector<double> PageRank(const graph::CsrGraph& g, double damping,
                             int rounds);

}  // namespace gum::algos::ref

#endif  // GUM_ALGOS_REFERENCE_H_
