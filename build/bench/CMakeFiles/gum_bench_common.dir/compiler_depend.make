# Empty compiler generated dependencies file for gum_bench_common.
# This may be replaced when dependencies are built.
