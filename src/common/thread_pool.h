// Deterministic host thread pool.
//
// The superstep runtime (core/superstep.h) decomposes Step 4 of every
// iteration into independent work units; this pool runs them concurrently.
// Determinism is a joint contract: ParallelFor distributes *indices*
// dynamically (any thread may claim any index), so callers must make each
// index's effect independent of execution order — write to per-index output
// slots and merge serially afterwards. The engines do exactly that, which is
// why results are bit-identical for any thread count (see DESIGN.md,
// "Determinism contract").
//
// The calling thread participates in the loop, so a pool of size k uses k
// OS threads total (k-1 workers + the caller). Size 1 spawns no workers and
// ParallelFor degenerates to a plain serial loop — the legacy path.

#ifndef GUM_COMMON_THREAD_POOL_H_
#define GUM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gum {

class ThreadPool {
 public:
  // num_threads <= 0 selects the hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Invokes fn(i) exactly once for every i in [0, count), distributing
  // indices dynamically across the pool, and returns once all invocations
  // have completed. fn must not throw and must not call ParallelFor on the
  // same pool (no nesting). grain >= 1 is the number of consecutive indices
  // a thread claims at a time — larger grains cut claim traffic and keep
  // index-adjacent data on one thread.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                   size_t grain = 1);

  // Static-range variant: one contiguous block of ceil(count / num_threads)
  // indices per thread, so index-adjacent work (e.g. ascending vertex
  // shards) stays cache-local within a thread.
  void ParallelForStatic(size_t count, const std::function<void(size_t)>& fn);

  // std::thread::hardware_concurrency() clamped to at least 1.
  static int HardwareThreads();

 private:
  void WorkerLoop();
  void RunIndices();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;  // bumped once per ParallelFor, under mu_
  int unfinished_ = 0;       // workers still inside the current generation
  bool stop_ = false;

  // Current task; valid only while a generation is in flight. next_ claims
  // whole blocks of grain_ consecutive indices.
  const std::function<void(size_t)>* task_ = nullptr;
  std::atomic<size_t> next_{0};
  size_t count_ = 0;
  size_t grain_ = 1;
};

}  // namespace gum

#endif  // GUM_COMMON_THREAD_POOL_H_
