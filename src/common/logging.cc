#include "common/logging.h"

#include <cstdio>
#include <string>

namespace gum {

namespace {
LogLevel g_level = LogLevel::kWarning;
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal),
      enabled_(fatal || static_cast<int>(level) >=
                            static_cast<int>(GetLogLevel())) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // One write per record: operator<< pieces from concurrent ParallelFor
    // bodies interleave mid-line on a shared stream, so the whole record
    // (terminator included) goes out in a single fwrite — POSIX stdio
    // streams are locked per call, keeping each record intact.
    std::string record = stream_.str();
    record.push_back('\n');
    std::fwrite(record.data(), 1, record.size(), stderr);
    std::fflush(stderr);
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace gum
