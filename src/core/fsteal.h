// Frontier stealing (paper §III, Algorithm 1).
//
// Per iteration: build the cost coefficient matrix
//     c_ij = bytes_per_edge / B_eff(i, j) + g(W_i)        [ns per edge]
// (communication plus estimated compute, paper §III-B), solve the min-max
// MILP of Eq. (1) for the touched-edges matrix X, and convert each row of X
// into contiguous frontier-vertex ranges with a prefix-sum over out-degrees
// plus a sorted search (Algorithm 1, lines 9-18).

#ifndef GUM_CORE_FSTEAL_H_
#define GUM_CORE_FSTEAL_H_

#include <span>
#include <utility>
#include <vector>

#include "core/edge_cost_model.h"
#include "graph/csr.h"
#include "graph/frontier_features.h"
#include "sim/comm_plane.h"

namespace gum::core {

struct FStealConfig {
  // Example 5 thresholds: steal only when there is enough work to cover the
  // decision overhead (t1, in active edges) and the loads are actually
  // imbalanced (t2, in active edges).
  double t1_min_max_load = 4096;
  double t2_min_imbalance = 2048;
  bool use_greedy = false;  // LPT heuristic instead of the MILP (ablation)
  bool exact_milp = false;  // exact B&B instead of LP + rounding
};

struct FStealDecision {
  bool applied = false;
  // assignment[i][j]: active edges of fragment i processed by worker j.
  // When !applied, this is the identity plan (everything stays with the
  // fragment's owner).
  std::vector<std::vector<double>> assignment;
  double predicted_makespan_ns = 0.0;
  double decision_host_ms = 0.0;  // measured wall time of the decision
  // Solver effort behind the plan (0 when thresholds skipped the solve):
  // simplex iterations, branch-and-bound nodes (exact mode only), and the
  // number of off-owner assignment cells — the plan's "size".
  int lp_iterations = 0;
  int milp_nodes = 0;
  int plan_cells = 0;
};

// Builds the full n x n cost coefficient matrix. `remote_discount[i]` scales
// the remote-transfer term of row i (hub-cache optimization, Example 6:
// cached adjacency is read locally); 1.0 = no caching. Workers not in
// `active_workers` get +infinity columns (OSteal interaction, §V-A step 3).
// Transfer terms are the plane's uncontended path predictions — the policy
// plans against nominal link speed in both contention modes.
std::vector<std::vector<double>> BuildCostMatrix(
    const std::vector<graph::FrontierFeatures>& features,
    const std::vector<double>& remote_discount, const EdgeCostModel& model,
    const sim::CommPlane& plane, const std::vector<int>& active_workers);

// Decides the iteration's assignment. `loads[i]` = active edges of fragment
// i; `owner_of_fragment[i]` = device that would process fragment i without
// stealing (identity plan). Thresholds are evaluated over active workers'
// *effective* loads (sum of their owned fragments).
FStealDecision DecideFSteal(const std::vector<std::vector<double>>& cost,
                            const std::vector<double>& loads,
                            const std::vector<int>& owner_of_fragment,
                            const std::vector<int>& active_workers,
                            const FStealConfig& config);

// Algorithm 1 lines 9-18: splits `frontier` (vertices of one fragment) into
// per-worker contiguous ranges whose out-edge counts match `quota_row` as
// closely as vertex granularity allows ("we select a group of vertices
// associated with required number of edges"). Returns [begin, end) index
// pairs into `frontier`, one per entry of `workers`.
std::vector<std::pair<size_t, size_t>> SelectStolenRanges(
    const graph::CsrGraph& g, std::span<const graph::VertexId> frontier,
    const std::vector<double>& quota_row, const std::vector<int>& workers);

}  // namespace gum::core

#endif  // GUM_CORE_FSTEAL_H_
