// Deterministic fault injection (DESIGN.md §11).
//
// A FaultPlan is a schedule of fault events — device fail-stop, straggler
// slowdown windows, link degradation / outage / flapping — parsed from a
// spec string or generated from a seed ("chaos"). A FaultPlane binds the
// plan to a device count, validates it, and answers the engine's
// per-superstep queries: which devices die at this barrier, how slow a
// straggler runs, and what scale every link operates at. Everything is a
// pure function of (plan, seed, device count, iteration), so a faulted run
// is exactly as reproducible as a fault-free one.
//
// The plane only *describes* faults. The CommPlane reroutes around link
// faults (sim/comm_plane.h, SetLinkScale), and fault/recovery.h rebuilds
// ownership after a fail-stop; the engine wires the three together.

#ifndef GUM_FAULT_FAULT_PLANE_H_
#define GUM_FAULT_FAULT_PLANE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace gum::fault {

enum class FaultKind {
  kFailStop,     // device permanently dead from iteration `begin` on
  kStraggler,    // device compute runs `factor`x slower in [begin, end]
  kLinkDegrade,  // link (a, b) at `factor` of nominal bandwidth in [begin, end]
  kLinkDown,     // link (a, b) removed in [begin, end]
  kLinkFlap,     // link (a, b) alternates down/up every `period` iterations
};

const char* FaultKindName(FaultKind kind);

// One scheduled fault. Iteration ranges are inclusive on both ends; a
// fail-stop only uses `begin`. Link faults are symmetric (both directions
// of the (a, b) pair).
struct FaultEvent {
  static constexpr int kNoEnd = std::numeric_limits<int>::max();

  FaultKind kind = FaultKind::kFailStop;
  int device = -1;      // kFailStop / kStraggler
  int link_a = -1;      // link kinds
  int link_b = -1;
  int begin = 0;        // first affected iteration
  int end = kNoEnd;     // last affected iteration (inclusive)
  double factor = 1.0;  // straggler slowdown (> 1) or link scale [0, 1)
  int period = 1;       // kLinkFlap half-period in iterations

  // Canonical spec-grammar form of this event (re-parseable).
  std::string Describe() const;
};

// A parsed fault plan. Spec grammar — events separated by ';':
//   failstop:<dev>@<iter>
//   straggler:<dev>@<first>-<last>x<factor>
//   degrade:<a>-<b>@<first>-<last>x<scale>
//   linkdown:<a>-<b>@<first>-<last>
//   flap:<a>-<b>@<first>-<last>/<period>
// "none" (or an empty string) is the empty plan; "chaos" expands into a
// seeded random mix of the above once bound to a device count. Unknown
// event kinds and malformed numbers are InvalidArgument — never a silent
// fallback.
class FaultPlan {
 public:
  static Result<FaultPlan> Parse(const std::string& spec);

  bool empty() const { return !chaos_ && events_.empty(); }
  bool chaos() const { return chaos_; }
  const std::vector<FaultEvent>& events() const { return events_; }

 private:
  friend class FaultPlane;
  bool chaos_ = false;
  std::vector<FaultEvent> events_;
};

// A fault plan bound to a device count (and, for chaos plans, a seed).
class FaultPlane {
 public:
  FaultPlane() = default;

  // Validates every event against `num_devices` (device / link endpoints in
  // range, link endpoints distinct, at least one device never fail-stopped)
  // and expands a chaos plan deterministically from `seed`.
  static Result<FaultPlane> Create(const FaultPlan& plan, int num_devices,
                                   uint64_t seed = 1);

  // True when the plan schedules at least one event. An inactive plane is
  // contractually invisible: the engine treats it exactly like no plane.
  bool active() const { return !events_.empty(); }
  int num_devices() const { return num_devices_; }
  const std::vector<FaultEvent>& events() const { return events_; }

  // Devices whose fail-stop fires exactly at `iter`, ascending. The engine
  // visits iterations in order, so every scheduled failure before
  // convergence is observed exactly once.
  std::vector<int> FailuresAt(int iter) const;
  bool AnyFailStop() const;

  // Compound slowdown factor (>= 1) of `device`'s compute at `iter`.
  double ComputeSlowdown(int device, int iter) const;

  // Bandwidth scale of the symmetric link (a, b) at `iter`: 1 when healthy,
  // 0 when down. Overlapping events compound multiplicatively.
  double LinkScale(int a, int b, int iter) const;

  struct LinkFault {
    int a = 0;
    int b = 0;
    double scale = 1.0;
  };
  // Every link running below nominal at `iter` (a < b), ascending by pair.
  std::vector<LinkFault> LinkFaultsAt(int iter) const;

  // Canonical ';'-joined event list (re-parseable spec), for reports/logs.
  std::string Describe() const;

 private:
  int num_devices_ = 0;
  std::vector<FaultEvent> events_;
};

}  // namespace gum::fault

#endif  // GUM_FAULT_FAULT_PLANE_H_
