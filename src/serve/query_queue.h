// Admission queue for the serving plane (DESIGN.md §13).
//
// FIFO with kind-compatible batching: NextBatch takes the head query, then
// greedily collects further queries of the same kind — preserving arrival
// order, skipping over incompatible ones — until the batch width is hit.
// Skipped queries keep their relative order for later batches, so no query
// starves: every call removes at least the head.

#ifndef GUM_SERVE_QUERY_QUEUE_H_
#define GUM_SERVE_QUERY_QUEUE_H_

#include <deque>
#include <vector>

#include "serve/query.h"

namespace gum::serve {

class QueryQueue {
 public:
  void Admit(Query q) { queue_.push_back(q); }

  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  // Removes and returns the next batch: the head plus up to max_width-1
  // same-kind queries in FIFO order. Empty when the queue is empty.
  std::vector<Query> NextBatch(int max_width);

 private:
  std::deque<Query> queue_;
};

}  // namespace gum::serve

#endif  // GUM_SERVE_QUERY_QUEUE_H_
