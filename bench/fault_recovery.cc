// Recovery overhead: makespan vs checkpoint cadence x fail iteration.
// GUM BFS and PageRank on 8 vGPUs with one device fail-stopping mid-run.
// Rows report the fault-free makespan, the checkpoint-only overhead at
// each cadence, and the faulted makespan / recovery charge for every
// (cadence, fail iteration) cell — the cadence trade-off the fault plane
// exists to expose: frequent checkpoints cost steady-state time but bound
// the lost work replayed after a failure.

#include <iostream>
#include <string>
#include <vector>

#include "bench/datasets.h"
#include "bench/runner.h"
#include "common/table_printer.h"
#include "fault/fault_plane.h"
#include "sim/comm_plane.h"
#include "sim/transfer_plan.h"

using namespace gum;        // NOLINT(build/namespaces)
using namespace gum::bench; // NOLINT(build/namespaces)

namespace {

core::RunResult Run(const DatasetGraphs& data, Algo algo,
                    const fault::FaultPlane* plane, int ckpt_every,
                    sim::ContentionModel contention = sim::ContentionModel::kOff,
                    sim::MultipathMode multipath = sim::MultipathMode::kOff) {
  RunConfig config;
  config.system = System::kGum;
  config.algo = algo;
  config.devices = 8;
  config.contention = contention;
  config.multipath = multipath;
  config.gum.fault_plane = plane;
  config.gum.checkpoint.every = ckpt_every;
  return RunBenchmark(data, config);
}

}  // namespace

int main() {
  std::cout << "=== Recovery overhead: makespan vs checkpoint cadence x "
               "fail iteration — GUM, 8 vGPUs ===\n\n";
  TablePrinter tp({"Graph", "Algo", "Fail@", "Ckpt", "Makespan",
                   "Overhead%", "Recovery ms", "Lost ms"});
  for (const std::string abbr : {std::string("SW"), std::string("U2")}) {
    const DatasetGraphs data = BuildDataset(abbr);
    for (const Algo algo : {Algo::kBfs, Algo::kPr}) {
      const core::RunResult clean = Run(data, algo, nullptr, 0);
      const int iters = clean.iterations;
      tp.AddRow({abbr, AlgoName(algo), "-", "off",
                 TablePrinter::Num(clean.total_ms, 2), "0.0", "-", "-"});
      for (const int ckpt : {1, 2, 4}) {
        const core::RunResult ck = Run(data, algo, nullptr, ckpt);
        tp.AddRow({abbr, AlgoName(algo), "-", std::to_string(ckpt),
                   TablePrinter::Num(ck.total_ms, 2),
                   TablePrinter::Num(
                       100.0 * (ck.total_ms - clean.total_ms) /
                           clean.total_ms,
                       1),
                   "-", "-"});
      }
      // Fail one device early and mid-run; the mid-run point replays the
      // most work at coarse cadences.
      for (const int fail_at : {2, iters / 2}) {
        const auto plan = fault::FaultPlan::Parse(
            "failstop:3@" + std::to_string(fail_at));
        auto plane = fault::FaultPlane::Create(*plan, 8);
        for (const int ckpt : {0, 1, 2, 4}) {
          const core::RunResult r = Run(data, algo, &*plane, ckpt);
          tp.AddRow({abbr, AlgoName(algo), std::to_string(fail_at),
                     ckpt == 0 ? "off" : std::to_string(ckpt),
                     TablePrinter::Num(r.total_ms, 2),
                     TablePrinter::Num(
                         100.0 * (r.total_ms - clean.total_ms) /
                             clean.total_ms,
                         1),
                     TablePrinter::Num(r.RecoveryChargedMs(), 2),
                     TablePrinter::Num(r.lost_work_ms, 2)});
        }
      }
    }
    std::cerr << "done " << abbr << "\n";
  }
  tp.Print(std::cout);

  // Multi-path striping on the recovery path (sim/transfer_plan.h): under
  // contention=fair, migrated fragments travel striped across link-disjoint
  // paths and checkpoint restores ride the PCIe+relay writeback pool, so
  // the faulted makespan drops while values stay byte-identical.
  std::cout << "\n=== Recovery under contention=fair: multipath off vs on "
               "(failstop:3@2, cadence 1) ===\n\n";
  TablePrinter mp({"Graph", "Algo", "Makespan off", "Makespan on",
                   "Recovery off", "Recovery on", "Speedup"});
  for (const std::string abbr : {std::string("SW"), std::string("U2")}) {
    const DatasetGraphs data = BuildDataset(abbr);
    const auto plan = fault::FaultPlan::Parse("failstop:3@2");
    for (const Algo algo : {Algo::kBfs, Algo::kPr}) {
      auto plane = fault::FaultPlane::Create(*plan, 8);
      const core::RunResult off =
          Run(data, algo, &*plane, 1, sim::ContentionModel::kFair,
              sim::MultipathMode::kOff);
      auto plane_on = fault::FaultPlane::Create(*plan, 8);
      const core::RunResult on =
          Run(data, algo, &*plane_on, 1, sim::ContentionModel::kFair,
              sim::MultipathMode::kOn);
      mp.AddRow({abbr, AlgoName(algo), TablePrinter::Num(off.total_ms, 2),
                 TablePrinter::Num(on.total_ms, 2),
                 TablePrinter::Num(off.RecoveryChargedMs(), 2),
                 TablePrinter::Num(on.RecoveryChargedMs(), 2),
                 TablePrinter::Num(off.total_ms / on.total_ms, 3) + "x"});
    }
  }
  mp.Print(std::cout);

  std::cout << "\nShape check: checkpoint-only overhead grows with cadence "
               "frequency; the faulted makespan at cadence off pays the "
               "full replay (lost ms ~ fail iteration), while cadence 1 "
               "bounds lost work to under one iteration.\n";
  return 0;
}
