// Polynomial regression trained with SGD on the RMSRE objective —
// the cost model GUM ships with (paper §III-B, Table V row 2).
//
// The feature vector is expanded into all multivariate monomials up to
// `degree` (degree 4 over the six Table-I variables gives 210 terms); the
// expanded features are z-score standardized, and the weights are fit by
// mini-batch SGD on the squared-relative-error loss of Eq. (3):
//
//     L = mean(((w . phi(x) - t) / t)^2)
//
// which is exactly weighted least squares with weight 1/t^2 — so SGD
// converges to the paper's optimum while keeping the paper's training
// procedure.

#ifndef GUM_ML_POLYNOMIAL_REGRESSION_H_
#define GUM_ML_POLYNOMIAL_REGRESSION_H_

#include <vector>

#include "ml/model.h"

namespace gum::ml {

struct SgdOptions {
  double learning_rate = 0.01;
  double lr_decay = 0.997;    // per-epoch multiplicative decay
  double momentum = 0.9;      // classic heavy-ball momentum
  int epochs = 300;
  int batch_size = 32;
  double l2 = 1e-6;
  double gradient_clip = 1.0;
  uint64_t seed = 17;
};

class PolynomialRegression : public RegressionModel {
 public:
  explicit PolynomialRegression(int degree = 4, SgdOptions sgd = {});

  Status Fit(const Dataset& data) override;
  double Predict(std::span<const double> features) const override;
  std::string name() const override;

  int degree() const { return degree_; }
  // Expanded monomial count after Fit.
  int num_terms() const { return static_cast<int>(weights_.size()); }

 private:
  std::vector<double> Expand(std::span<const double> features) const;

  int degree_;
  SgdOptions sgd_;
  int input_dim_ = 0;
  // Monomial exponent tuples, each of size input_dim_.
  std::vector<std::vector<int>> monomials_;
  std::vector<double> raw_mean_, raw_std_;  // standardization of raw inputs
  std::vector<double> mean_, stddev_;  // standardization of expanded terms
  std::vector<double> weights_;        // includes bias as monomial (0,..,0)
  double target_scale_ = 1.0;          // mean target; SGD runs scale-free
};

}  // namespace gum::ml

#endif  // GUM_ML_POLYNOMIAL_REGRESSION_H_
