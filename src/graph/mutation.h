// Dynamic-graph mutation plane (DESIGN.md §14).
//
// A MutationPlan is a schedule of batched edge/vertex insertions and
// deletions parsed from a spec string (grammar mirroring the fault plan's,
// fault/fault_plane.h) or generated deterministically from a seed. A
// MutationStream binds the plan to a base graph: it validates every event,
// expands seeded random plans, and buckets events by epoch — the update
// batch applied at the superstep/query barrier between two runs.
//
// DeltaCsr is the storage layer: per-vertex added-edge segments plus
// deletion marks layered over an immutable base CsrGraph, so an epoch's
// batch applies without rebuilding the flat CSR. Periodic compaction folds
// the overlay back into a flat CsrGraph. DynamicGraph owns the evolving
// pair (base snapshot + overlay) and reports, per batch, exactly which
// events took effect — the seed set incremental recompute restarts from
// (algos/incremental.h).
//
// Mutation semantics are set-like and history-independent:
//   * inserting an edge that already exists is a no-op;
//   * deleting an edge that does not exist is a no-op;
//   * self-loop inserts are dropped (the CSR builder strips self loops);
//   * a vertex delete (delv) expands to deleting every incident edge —
//     the id space never changes, the vertex just becomes isolated;
//   * under symmetric mode (WCC graphs) every insert/delete also applies
//     to the mirrored direction.
// So the logical edge set after epoch K is a pure function of
// (base graph, plan, seed, K) — a mutated run is exactly as reproducible
// as a static one.

#ifndef GUM_GRAPH_MUTATION_H_
#define GUM_GRAPH_MUTATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/csr.h"

namespace gum::graph {

enum class MutationKind {
  kInsertEdge,    // ins:u-v@K[xW]
  kDeleteEdge,    // del:u-v@K
  kDeleteVertex,  // delv:u@K (drop all incident edges of u)
};

const char* MutationKindName(MutationKind kind);

// One scheduled mutation. `epoch` is 1-based: epoch K's batch applies at
// the barrier after the K-th standing-query run (epoch 0 is the unmutated
// base graph).
struct MutationEvent {
  MutationKind kind = MutationKind::kInsertEdge;
  VertexId u = 0;
  VertexId v = 0;       // unused for kDeleteVertex
  int epoch = 1;
  float weight = 1.0f;  // insert weight

  // Canonical spec-grammar form of this event (re-parseable).
  std::string Describe() const;
};

// A parsed mutation plan. Spec grammar — events separated by ';':
//   ins:<u>-<v>@<epoch>           insert edge (u, v), weight 1
//   ins:<u>-<v>@<epoch>x<weight>  weighted insert
//   del:<u>-<v>@<epoch>           delete edge (u, v)
//   delv:<u>@<epoch>              delete vertex u's incident edges
// "none" (or an empty string) is the empty plan. Two seeded generator
// forms expand once bound to a graph:
//   rand:<epochs>x<per-epoch>      mixed stream (3:1 inserts to deletes)
//   rand-ins:<epochs>x<per-epoch>  insert-only stream
// Unknown event kinds and malformed numbers are InvalidArgument — never a
// silent fallback.
class MutationPlan {
 public:
  static Result<MutationPlan> Parse(const std::string& spec);

  bool empty() const { return !random_ && events_.empty(); }
  bool random() const { return random_; }
  const std::vector<MutationEvent>& events() const { return events_; }

 private:
  friend class MutationStream;
  bool random_ = false;
  bool random_inserts_only_ = false;
  int random_epochs_ = 0;
  int random_per_epoch_ = 0;
  std::vector<MutationEvent> events_;
};

// A mutation plan bound to a base graph (and, for random plans, a seed):
// every endpoint validated against the vertex count, every epoch >= 1,
// random plans expanded deterministically, events bucketed by epoch.
class MutationStream {
 public:
  MutationStream() = default;

  static Result<MutationStream> Create(const MutationPlan& plan,
                                       const CsrGraph& base,
                                       uint64_t seed = 1);

  // True when the plan schedules at least one event. An inactive stream is
  // contractually invisible: callers treat it exactly like no stream.
  bool active() const { return num_epochs_ > 0; }
  int num_epochs() const { return num_epochs_; }
  // Events applying at `epoch` (1..num_epochs), in plan order.
  std::span<const MutationEvent> BatchAt(int epoch) const;

  // Canonical ';'-joined event list (re-parseable spec), for reports/logs.
  std::string Describe() const;

 private:
  int num_epochs_ = 0;
  std::vector<MutationEvent> events_;       // sorted by (epoch, plan order)
  std::vector<size_t> epoch_offsets_;       // num_epochs_ + 1
};

// Per-vertex CSR delta segments over an immutable base graph: added
// out-edges (kept ascending by target) plus deletion marks on base
// targets. The logical out-adjacency of u is
//   (base out-edges of u minus deleted marks) merged with added segment,
// both ascending, so iteration order is canonical for the determinism
// contract. The overlay never touches the base arrays — engines keep
// reading the base CSR until the epoch materializes a new flat snapshot.
class DeltaCsr {
 public:
  // `base` must outlive the overlay.
  explicit DeltaCsr(const CsrGraph* base, bool symmetric = false);

  enum class Effect { kNoop, kInserted, kDeleted };

  // Applies one edge operation (one direction; DynamicGraph mirrors under
  // symmetric mode). Returns what actually happened; `weight_out`, if
  // non-null, receives the weight of a deleted edge (for incremental
  // tightness checks). kDeleteVertex events must be expanded by the caller.
  Effect ApplyEdge(MutationKind kind, VertexId u, VertexId v, float weight,
                   float* weight_out = nullptr);

  bool HasEdge(VertexId u, VertexId v) const;
  // Weight of logical edge (u, v); only valid when HasEdge(u, v).
  float EdgeWeight(VertexId u, VertexId v) const;
  uint32_t OutDegree(VertexId u) const;
  // Merged logical out-adjacency of u, ascending by target:
  // fn(target, weight).
  template <typename Fn>
  void ForEachOut(VertexId u, Fn&& fn) const;

  // --- delta-segment geometry ---
  size_t added_edges() const { return added_count_; }
  size_t deleted_edges() const { return deleted_count_; }
  // Vertices carrying a non-empty segment or deletion mark.
  size_t touched_vertices() const;
  // Resident bytes of the overlay: segment entries, deletion marks, and a
  // directory slot per touched vertex — what an epoch's apply ships to the
  // owning devices.
  size_t delta_bytes() const;
  bool empty() const { return added_count_ == 0 && deleted_count_ == 0; }

  const CsrGraph& base() const { return *base_; }
  bool symmetric() const { return symmetric_; }

  // Folds base + overlay into a fresh flat CsrGraph (same build options the
  // base was produced under: ascending adjacency, in-CSR iff the base has
  // one, weights iff any logical edge weight differs from 1).
  CsrGraph Compact() const;

 private:
  struct AddedEdge {
    VertexId dst;
    float weight;
  };

  const CsrGraph* base_;
  bool symmetric_ = false;
  // Per-vertex segments, lazily grown; empty vectors for untouched ids.
  std::vector<std::vector<AddedEdge>> added_;    // ascending by dst
  std::vector<std::vector<VertexId>> deleted_;   // ascending base targets
  size_t added_count_ = 0;
  size_t deleted_count_ = 0;
};

// The evolving graph: an owned flat base snapshot plus the DeltaCsr
// overlay, advanced one epoch batch at a time. Compact() folds the overlay
// into a new base (the charged CSR rebuild); Materialize() produces the
// flat snapshot engines run on each epoch without disturbing the overlay.
class DynamicGraph {
 public:
  DynamicGraph(CsrGraph base, bool symmetric);

  struct ApplyStats {
    int inserted = 0;
    int deleted = 0;
    int noops = 0;
    // Events that took effect, delv expanded to per-edge deletes and
    // symmetric mirrors included; deletes carry the removed edge's weight.
    // This is the seed set for incremental recompute.
    std::vector<MutationEvent> effective;
    // Sorted unique endpoints of the effective events.
    std::vector<VertexId> affected;
    // Overlay bytes after this batch (what the barrier ships).
    size_t delta_bytes = 0;
  };

  ApplyStats Apply(std::span<const MutationEvent> batch);

  // Flat snapshot of the current logical graph (base ⊕ overlay).
  CsrGraph Materialize() const { return delta_->Compact(); }
  // Folds the overlay into the base and clears it.
  void Compact();

  const CsrGraph& base() const { return *base_; }
  const DeltaCsr& delta() const { return *delta_; }
  bool symmetric() const { return symmetric_; }
  int epochs_applied() const { return epochs_applied_; }

 private:
  std::unique_ptr<CsrGraph> base_;
  std::unique_ptr<DeltaCsr> delta_;
  bool symmetric_ = false;
  int epochs_applied_ = 0;
};

template <typename Fn>
void DeltaCsr::ForEachOut(VertexId u, Fn&& fn) const {
  const std::span<const VertexId> targets = base_->OutNeighbors(u);
  const std::span<const float> weights = base_->OutWeights(u);
  const std::vector<VertexId>* dels =
      u < deleted_.size() ? &deleted_[u] : nullptr;
  const std::vector<AddedEdge>* adds =
      u < added_.size() ? &added_[u] : nullptr;
  size_t b = 0;
  size_t a = 0;
  size_t d = 0;
  const size_t nb = targets.size();
  const size_t na = adds != nullptr ? adds->size() : 0;
  while (b < nb || a < na) {
    // Skip base edges marked deleted (both lists ascending).
    if (b < nb && dels != nullptr) {
      while (d < dels->size() && (*dels)[d] < targets[b]) ++d;
      if (d < dels->size() && (*dels)[d] == targets[b]) {
        ++b;
        continue;
      }
    }
    const bool take_base =
        b < nb && (a >= na || targets[b] < (*adds)[a].dst);
    if (take_base) {
      fn(targets[b], weights.empty() ? 1.0f : weights[b]);
      ++b;
    } else {
      fn((*adds)[a].dst, (*adds)[a].weight);
      ++a;
    }
  }
}

}  // namespace gum::graph

#endif  // GUM_GRAPH_MUTATION_H_
