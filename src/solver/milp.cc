#include "solver/milp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/stopwatch.h"

namespace gum::solver {

namespace {

struct Bound {
  int var;
  bool is_upper;  // x[var] <= value : x[var] >= value
  double value;
};

struct Node {
  double relaxation_value;
  std::vector<Bound> bounds;

  bool operator<(const Node& other) const {
    // priority_queue is a max-heap; invert for best(lowest)-first. On the
    // plateaus typical of min-max programs, dive (prefer deeper nodes) so
    // an integral incumbent appears quickly.
    if (relaxation_value != other.relaxation_value) {
      return relaxation_value > other.relaxation_value;
    }
    return bounds.size() < other.bounds.size();
  }
};

LinearProgram WithBounds(const LinearProgram& base,
                         const std::vector<Bound>& bounds) {
  LinearProgram lp = base;
  for (const Bound& b : bounds) {
    Row row;
    row.coeffs.assign(base.num_vars, 0.0);
    row.coeffs[b.var] = 1.0;
    row.rhs = b.value;
    row.type = b.is_upper ? RowType::kLessEqual : RowType::kGreaterEqual;
    lp.AddRow(std::move(row));
  }
  return lp;
}

// Most-fractional branching variable, or -1 if integral.
int PickBranchVariable(const std::vector<double>& x,
                       const std::vector<bool>& is_integer, double tol) {
  int pick = -1;
  double best_frac_dist = tol;
  for (size_t v = 0; v < x.size(); ++v) {
    if (!is_integer[v]) continue;
    const double frac = x[v] - std::floor(x[v]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_frac_dist) {
      best_frac_dist = dist;
      pick = static_cast<int>(v);
    }
  }
  return pick;
}

}  // namespace

Result<MilpSolution> SolveMilp(const LinearProgram& lp,
                               const std::vector<bool>& is_integer,
                               const MilpOptions& options) {
  if (static_cast<int>(is_integer.size()) != lp.num_vars) {
    return Status::InvalidArgument("is_integer size mismatch");
  }

  auto root = SolveLp(lp, options.simplex);
  if (!root.ok()) return root.status();

  MilpSolution best;
  best.objective = std::numeric_limits<double>::infinity();
  if (options.warm_start != nullptr &&
      static_cast<int>(options.warm_start->size()) == lp.num_vars) {
    best.x = *options.warm_start;
    best.objective = 0.0;
    for (int v = 0; v < lp.num_vars; ++v) {
      best.objective += lp.objective[v] * best.x[v];
    }
  }

  std::priority_queue<Node> open;
  open.push(Node{root->objective, {}});

  Stopwatch timer;
  int nodes = 0;
  while (!open.empty() && nodes < options.max_nodes) {
    if (options.time_limit_ms > 0 &&
        timer.ElapsedMillis() > options.time_limit_ms &&
        std::isfinite(best.objective)) {
      break;  // budget spent; the incumbent stands
    }
    Node node = open.top();
    open.pop();
    ++nodes;

    if (node.relaxation_value >=
        best.objective - options.gap_tolerance *
                             std::max(1.0, std::abs(best.objective))) {
      continue;  // cannot improve the incumbent
    }

    auto relaxed = SolveLp(WithBounds(lp, node.bounds), options.simplex);
    if (!relaxed.ok()) {
      if (relaxed.status().code() == StatusCode::kInfeasible) continue;
      return relaxed.status();
    }
    if (relaxed->objective >=
        best.objective - options.gap_tolerance *
                             std::max(1.0, std::abs(best.objective))) {
      continue;
    }

    const int branch_var = PickBranchVariable(
        relaxed->x, is_integer, options.integrality_tolerance);
    if (branch_var == -1) {
      // Integral (within tolerance): snap and accept.
      MilpSolution candidate;
      candidate.objective = relaxed->objective;
      candidate.x = relaxed->x;
      for (size_t v = 0; v < candidate.x.size(); ++v) {
        if (is_integer[v]) candidate.x[v] = std::round(candidate.x[v]);
      }
      if (candidate.objective < best.objective) {
        best = candidate;
        best.nodes_explored = nodes;
      }
      continue;
    }

    const double value = relaxed->x[branch_var];
    Node down = node;
    down.relaxation_value = relaxed->objective;
    down.bounds.push_back(Bound{branch_var, true, std::floor(value)});
    Node up = node;
    up.relaxation_value = relaxed->objective;
    up.bounds.push_back(Bound{branch_var, false, std::ceil(value)});
    open.push(std::move(down));
    open.push(std::move(up));
  }

  if (!std::isfinite(best.objective)) {
    if (open.empty()) return Status::Infeasible("no integral solution exists");
    return Status::Internal("node limit reached with no incumbent");
  }
  best.nodes_explored = nodes;
  best.proven_optimal = open.empty() || open.top().relaxation_value >=
                                            best.objective -
                                                options.gap_tolerance;
  return best;
}

}  // namespace gum::solver
