#include "fault/checkpoint.h"

#include "graph/types.h"
#include "sim/topology.h"

namespace gum::fault {

double FragmentStateBytes(size_t fragment_vertices, size_t frontier_vertices,
                          size_t bytes_per_value) {
  return static_cast<double>(fragment_vertices) *
             static_cast<double>(bytes_per_value) +
         static_cast<double>(frontier_vertices) * sizeof(graph::VertexId);
}

double CheckpointTransferMs(double bytes) {
  // 1 GB/s == 1 byte/ns, so bytes / GBps is ns.
  return bytes / sim::Topology::kPcieGBps / 1e6;
}

}  // namespace gum::fault
