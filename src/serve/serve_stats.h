// Serving-stream options and statistics (DESIGN.md §13).

#ifndef GUM_SERVE_SERVE_STATS_H_
#define GUM_SERVE_SERVE_STATS_H_

#include <vector>

#include "fault/fault_plane.h"
#include "serve/query.h"

namespace gum::serve {

struct ServeOptions {
  // Maximum queries per wave (1..algos::kMaxBatchLanes). Width 1 is the
  // sequential baseline the soak benchmark compares against.
  int batch_width = 64;
  // Fault compose: when fault_batch >= 0 and fault_plane is set, that
  // batch (0-based index in the served stream) runs under the fault plane
  // with checkpointing every `ckpt_every` iterations — the device loss
  // replays only the affected batch; every other batch runs fault-free.
  int fault_batch = -1;
  const fault::FaultPlane* fault_plane = nullptr;
  int ckpt_every = 0;
  // When false, per-query value vectors are dropped after extraction
  // (latency soaks don't pay the copies).
  bool keep_values = true;
  // Segmented serving (the mutation-plane interleave, DESIGN.md §14):
  // serve at most `max_batches` batches (< 0 = drain the queue), start the
  // simulated clock at `clock_base_ms`, and number batches from
  // `first_batch_index` — so a stream served in segments around epoch
  // barriers carries one continuous clock and batch numbering, and
  // fault_batch keeps addressing the absolute batch index.
  int max_batches = -1;
  double clock_base_ms = 0.0;
  int first_batch_index = 0;
};

struct BatchStats {
  int batch = 0;
  int width = 0;
  QueryKind kind = QueryKind::kBfs;
  int iterations = 0;
  double wall_ms = 0.0;      // simulated wall of this batch's run
  double recovery_ms = 0.0;  // nonzero only for the faulted batch
};

struct ServeStats {
  int queries = 0;
  int batches = 0;
  double makespan_ms = 0.0;   // simulated end-to-end stream time
  double recovery_ms = 0.0;   // total charged recovery across the stream
  std::vector<BatchStats> batch_stats;
  std::vector<QueryResult> query_results;

  // Nearest-rank percentile over per-query latencies, q in [0, 1].
  double LatencyPercentile(double q) const;
  // Stream throughput against the simulated makespan.
  double QueriesPerSecond() const;
};

// A served stream's full outcome. `values[i]` holds query
// `stats.query_results[i]`'s final vertex values (empty when
// ServeOptions::keep_values is false).
template <typename ValueT>
struct ServeOutcome {
  ServeStats stats;
  std::vector<std::vector<ValueT>> values;
};

}  // namespace gum::serve

#endif  // GUM_SERVE_SERVE_STATS_H_
