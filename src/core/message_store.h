// Deterministic per-superstep message store, sharded by destination.
//
// The BSP engines combine every message addressed to a vertex into one
// inbox slot ("early aggregation", paper Fig. 4b). The store pairs the
// typed inbox with a membership Bitmap and supports two write paths:
//
//   * Deposit — direct combine, used when a single thread expands frontiers;
//   * MessageStaging + MergeSharded — each worker bins its outgoing
//     messages by destination shard at generation time (O(1) routing, see
//     ShardMap); shard s then replays every unit's shard-s bin in canonical
//     work-unit order (fragments ascending, executors in plan order). A
//     vertex lives in exactly one shard, so each vertex's combine chain —
//     and therefore the "first writer pays the transfer" attribution of
//     agg_msgs — is bit-identical to the single-threaded engine for any
//     shard x thread count. Shard widths are multiples of 64, so concurrent
//     shard merges never touch the same Bitmap word.
//
// See DESIGN.md, "Determinism contract" and "Sharded message plane".

#ifndef GUM_CORE_MESSAGE_STORE_H_
#define GUM_CORE_MESSAGE_STORE_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "common/bitmap.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "graph/types.h"

namespace gum::core {

// Partition of [0, num_vertices) into contiguous equal-width shards. The
// width is rounded up to a multiple of 64 (the Bitmap word size) so that
// two shards never share a membership word — the invariant that lets
// MergeSharded and the sharded apply run shards on different threads.
// Routing is one integer division: ShardOf(v) = v / width().
class ShardMap {
 public:
  // One shard that routes every vertex to bin 0.
  ShardMap() = default;
  // Splits num_vertices into at most num_shards word-aligned shards (fewer
  // when the graph is too small to fill them).
  ShardMap(size_t num_vertices, int num_shards);

  int num_shards() const { return num_shards_; }
  size_t width() const { return width_; }
  int ShardOf(graph::VertexId v) const { return static_cast<int>(v / width_); }
  size_t ShardBegin(int s) const { return static_cast<size_t>(s) * width_; }
  size_t ShardEnd(int s) const {
    return std::min(num_vertices_, ShardBegin(s) + width_);
  }

 private:
  size_t num_vertices_ = 0;
  // The default width routes every representable vertex to shard 0.
  size_t width_ = std::numeric_limits<size_t>::max();
  int num_shards_ = 1;
};

// One worker's staged outgoing messages, binned by destination shard; each
// bin preserves generation order. Configure() must run before Emit; a
// default-constructed staging routes everything to one bin.
template <typename Message>
class MessageStaging {
 public:
  using Entry = std::pair<graph::VertexId, Message>;

  // Adopts the map's routing. Reshaping to a new shard count re-reserves
  // each bin's previous high-water size so steady-state supersteps stop
  // re-growing vectors.
  void Configure(const ShardMap& shards) {
    width_ = shards.width();
    const size_t n = static_cast<size_t>(shards.num_shards());
    if (bins_.size() != n) {
      bins_.assign(n, {});
      for (size_t s = 0; s < n && s < high_water_.size(); ++s) {
        bins_[s].reserve(high_water_[s]);
      }
    }
    if (high_water_.size() < n) high_water_.resize(n, 0);
  }

  void Emit(graph::VertexId v, const Message& m) {
    bins_[v / width_].emplace_back(v, m);
  }

  // Empties every bin in place, keeping capacity for the next iteration.
  void Clear() {
    for (size_t s = 0; s < bins_.size(); ++s) {
      high_water_[s] = std::max(high_water_[s], bins_[s].size());
      bins_[s].clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& bin : bins_) total += bin.size();
    return total;
  }
  // Resident bytes of the bins (capacity, not size): the high-water memory
  // a long-lived staging buffer keeps across supersteps and queries.
  size_t CapacityBytes() const {
    size_t total = 0;
    for (const auto& bin : bins_) total += bin.capacity() * sizeof(Entry);
    return total;
  }
  int num_bins() const { return static_cast<int>(bins_.size()); }
  const std::vector<Entry>& bin(int s) const { return bins_[s]; }

 private:
  size_t width_ = std::numeric_limits<size_t>::max();
  std::vector<std::vector<Entry>> bins_ =
      std::vector<std::vector<Entry>>(1);
  std::vector<size_t> high_water_ = std::vector<size_t>(1, 0);
};

// Untyped membership state shared by every MessageStore<Message>
// instantiation (definitions in message_store.cc).
class MessageStoreBase {
 public:
  MessageStoreBase() = default;
  explicit MessageStoreBase(size_t num_vertices);

  size_t num_vertices() const { return set_.size(); }
  bool Has(graph::VertexId v) const { return set_.Test(v); }
  // Vertices with a pending combined message.
  size_t PendingCount() const;
  // Forgets every pending message; call once the apply phase has drained
  // the store.
  void EndSuperstep();

 protected:
  // Re-arms the membership set for a new run over num_vertices vertices.
  void ResetMembership(size_t num_vertices);

 protected:
  Bitmap set_;
};

template <typename Message>
class MessageStore : public MessageStoreBase {
 public:
  MessageStore() = default;
  explicit MessageStore(size_t num_vertices)
      : MessageStoreBase(num_vertices), inbox_(num_vertices) {}

  // Reinitializes for a new run over num_vertices vertices, keeping the
  // inbox allocation when the size is unchanged (serving-mode reuse).
  // Stale inbox bytes are never observable: Get is only reached for
  // pending vertices, whose slots a Deposit/Put wrote first.
  void Reset(size_t num_vertices) {
    ResetMembership(num_vertices);
    inbox_.resize(num_vertices);
  }

  // Deposits one message: the first writer stores it, later writers fold
  // theirs in with `combine(old, incoming)`. Returns true iff v had no
  // pending message — the event that pays the transfer under the early-
  // aggregation model.
  template <typename CombineFn>
  bool Deposit(graph::VertexId v, const Message& m, CombineFn&& combine) {
    if (set_.TestAndSet(v)) {
      inbox_[v] = m;
      return true;
    }
    inbox_[v] = combine(inbox_[v], m);
    return false;
  }

  // Stores a pre-combined message, overwriting any pending one. The SpMV
  // pull backend computes each destination's full combine chain itself and
  // deposits exactly once per destination. Safe to call concurrently for
  // vertices of different shards (shards never share a Bitmap word).
  void Put(graph::VertexId v, const Message& m) {
    set_.Set(v);
    inbox_[v] = m;
  }

  // Replays one staging buffer, bins in shard order; `first_writer(v)`
  // fires for each deposit that claimed a fresh slot. Per-vertex combine
  // chains match generation order exactly (a vertex maps to one bin).
  template <typename CombineFn, typename FirstWriterFn>
  void Merge(const MessageStaging<Message>& staged, CombineFn&& combine,
             FirstWriterFn&& first_writer) {
    for (int s = 0; s < staged.num_bins(); ++s) {
      for (const auto& [v, m] : staged.bin(s)) {
        if (Deposit(v, m, combine)) first_writer(v);
      }
    }
  }

  // Replays shard `shard` of staged[0..num_units) in canonical unit order;
  // `first_writer(unit, v)` fires per fresh slot. Distinct shards touch
  // disjoint word-aligned vertex ranges, so calls with different `shard`
  // values may run concurrently.
  template <typename CombineFn, typename FirstWriterFn>
  void MergeShard(int shard,
                  const std::vector<MessageStaging<Message>>& staged,
                  size_t num_units, CombineFn&& combine,
                  FirstWriterFn&& first_writer) {
    for (size_t u = 0; u < num_units; ++u) {
      if (shard >= staged[u].num_bins()) continue;
      for (const auto& [v, m] : staged[u].bin(shard)) {
        if (Deposit(v, m, combine)) first_writer(u, v);
      }
    }
  }

  // The sharded parallel merge: every shard replays in canonical unit
  // order, shards distributed over the pool in static contiguous ranges.
  // `first_writer(shard, unit, v)` runs concurrently for distinct shards —
  // accumulate per shard and reduce afterwards. Bit-identical to a serial
  // Merge of staged[0..num_units) for any shard x thread count.
  template <typename CombineFn, typename FirstWriterFn>
  void MergeSharded(ThreadPool* pool, const ShardMap& shards,
                    const std::vector<MessageStaging<Message>>& staged,
                    size_t num_units, CombineFn&& combine,
                    FirstWriterFn&& first_writer) {
    const int s_count = shards.num_shards();
    const auto merge_one = [&](size_t s) {
      GUM_TRACE_SCOPE("merge.shard");
      MergeShard(static_cast<int>(s), staged, num_units, combine,
                 [&first_writer, s](size_t unit, graph::VertexId v) {
                   first_writer(static_cast<int>(s), unit, v);
                 });
    };
    if (pool == nullptr || pool->num_threads() <= 1 || s_count <= 1) {
      for (int s = 0; s < s_count; ++s) merge_one(static_cast<size_t>(s));
    } else {
      pool->ParallelForStatic(static_cast<size_t>(s_count), merge_one);
    }
  }

  const Message& Get(graph::VertexId v) const { return inbox_[v]; }

  // Pending messages in ascending vertex order: fn(v, combined_message).
  template <typename Fn>
  void ForEachPending(Fn&& fn) const {
    set_.ForEachSet([&](size_t v) {
      fn(static_cast<graph::VertexId>(v), inbox_[v]);
    });
  }

  // Pending messages with begin <= vertex < end, ascending. Safe to call
  // concurrently for word-aligned disjoint ranges (i.e. shard ranges).
  template <typename Fn>
  void ForEachPendingInRange(size_t begin, size_t end, Fn&& fn) const {
    set_.ForEachSetInRange(begin, end, [&](size_t v) {
      fn(static_cast<graph::VertexId>(v), inbox_[v]);
    });
  }

 private:
  std::vector<Message> inbox_;
};

}  // namespace gum::core

#endif  // GUM_CORE_MESSAGE_STORE_H_
