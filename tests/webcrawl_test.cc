#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/stats.h"

namespace gum::graph {
namespace {

TEST(WebCrawlTest, VertexAndEdgeBudget) {
  WebCrawlOptions opt;
  opt.scale = 12;
  opt.edge_factor = 8;
  opt.tendril_fraction = 0.4;
  const EdgeList list = WebCrawl(opt);
  EXPECT_EQ(list.num_vertices, 4096u);
  // Core RMAT edges + two directed edges per tendril vertex.
  const size_t tendril_vertices = static_cast<size_t>(0.4 * 4096);
  EXPECT_GE(list.edges.size(), tendril_vertices * 2);
}

TEST(WebCrawlTest, Deterministic) {
  WebCrawlOptions opt;
  opt.scale = 10;
  const EdgeList a = WebCrawl(opt), b = WebCrawl(opt);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.edges.size(); i += 53) {
    EXPECT_EQ(a.edges[i].src, b.edges[i].src);
    EXPECT_EQ(a.edges[i].dst, b.edges[i].dst);
  }
}

TEST(WebCrawlTest, LongChainsStretchTheDiameter) {
  WebCrawlOptions shallow;
  shallow.scale = 12;
  shallow.tendril_fraction = 0.3;
  shallow.avg_chain_length = 8;
  shallow.seed = 5;
  WebCrawlOptions deep = shallow;
  deep.avg_chain_length = 128;
  auto g_shallow = CsrGraph::FromEdgeList(WebCrawl(shallow));
  auto g_deep = CsrGraph::FromEdgeList(WebCrawl(deep));
  ASSERT_TRUE(g_shallow.ok());
  ASSERT_TRUE(g_deep.ok());
  EXPECT_GT(PseudoDiameter(*g_deep), 2 * PseudoDiameter(*g_shallow));
  EXPECT_GE(PseudoDiameter(*g_deep), 128u);
}

TEST(WebCrawlTest, TendrilsReachableFromCore) {
  WebCrawlOptions opt;
  opt.scale = 11;
  opt.tendril_fraction = 0.5;
  opt.avg_chain_length = 32;
  auto g = CsrGraph::FromEdgeList(WebCrawl(opt));
  ASSERT_TRUE(g.ok());
  // Every tendril vertex (upper half of the id space) has an in-edge: the
  // chain link from its predecessor / anchor.
  const VertexId n_core = static_cast<VertexId>(0.5 * 2048);
  for (VertexId v = n_core; v < g->num_vertices(); ++v) {
    EXPECT_GE(g->InDegree(v), 1u) << "orphan tendril vertex " << v;
  }
}

TEST(WebCrawlTest, WeightedChainsInRange) {
  WebCrawlOptions opt;
  opt.scale = 10;
  opt.weighted = true;
  for (const Edge& e : WebCrawl(opt).edges) {
    EXPECT_GE(e.weight, 1.0f);
    EXPECT_LT(e.weight, 64.0f);
  }
}

TEST(WebCrawlTest, CoreKeepsIdLocality) {
  // permute_vertices is off for the core: low-id vertices carry most core
  // edges, so a contiguous partition concentrates the crawl frontier.
  WebCrawlOptions opt;
  opt.scale = 12;
  opt.tendril_fraction = 0.4;
  opt.seed = 9;
  auto g = CsrGraph::FromEdgeList(WebCrawl(opt));
  ASSERT_TRUE(g.ok());
  const VertexId n_core = static_cast<VertexId>(0.6 * 4096);
  uint64_t core_edges = 0;
  for (VertexId v = 0; v < n_core; ++v) core_edges += g->OutDegree(v);
  EXPECT_GT(core_edges, g->num_edges() / 2);
}

}  // namespace
}  // namespace gum::graph
