#include "core/expand/frontier_scatter.h"

namespace gum::core {

std::vector<WorkUnit> BuildWorkUnits(const graph::CsrGraph& g,
                                     const FrontierSoA& frontier,
                                     const FStealDecision& fs,
                                     const std::vector<double>& loads,
                                     const std::vector<int>& owner_of_fragment,
                                     const std::vector<int>& active) {
  const int n = frontier.num_fragments();
  std::vector<WorkUnit> units;
  for (int i = 0; i < n; ++i) {
    const size_t frontier_size = frontier.FragmentSize(i);
    if (frontier_size == 0) continue;
    if (fs.applied && loads[i] > 0) {
      const auto ranges = SelectStolenRanges(g, frontier.Fragment(i),
                                             fs.assignment[i], active);
      for (size_t w = 0; w < active.size(); ++w) {
        if (ranges[w].first < ranges[w].second) {
          units.push_back({i, active[w], ranges[w].first, ranges[w].second});
        }
      }
    } else {
      units.push_back({i, owner_of_fragment[i], 0, frontier_size});
    }
  }
  return units;
}

}  // namespace gum::core
