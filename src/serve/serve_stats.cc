#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>

namespace gum::serve {

double ServeStats::LatencyPercentile(double q) const {
  if (query_results.empty()) return 0.0;
  std::vector<double> lat;
  lat.reserve(query_results.size());
  for (const auto& r : query_results) lat.push_back(r.latency_ms);
  std::sort(lat.begin(), lat.end());
  // Nearest-rank: the smallest latency with at least q of the mass at or
  // below it.
  const double clamped = std::clamp(q, 0.0, 1.0);
  const size_t rank = static_cast<size_t>(
      std::ceil(clamped * static_cast<double>(lat.size())));
  return lat[rank == 0 ? 0 : rank - 1];
}

double ServeStats::QueriesPerSecond() const {
  if (makespan_ms <= 0.0) return 0.0;
  return static_cast<double>(queries) / (makespan_ms / 1000.0);
}

}  // namespace gum::serve
