#include <gtest/gtest.h>

#include "sim/bandwidth_probe.h"

namespace gum::sim {
namespace {

TEST(BandwidthProbeTest, RecoversGroundTruth) {
  const Topology topo = Topology::HybridCubeMesh8();
  const auto measured = ProbeBandwidths(topo);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(measured[i][j], topo.EffectiveBandwidth(i, j),
                  0.01 * topo.EffectiveBandwidth(i, j))
          << i << "->" << j;
    }
  }
}

TEST(BandwidthProbeTest, DistinguishesLinkClasses) {
  const auto measured = ProbeBandwidths(Topology::HybridCubeMesh8());
  // Two-lane pair (0,3) ~ 50, one-lane pair (0,1) ~ 25, no-link pair (0,7)
  // routed at 25: the probe must separate at least the lane classes.
  EXPECT_GT(measured[0][3], measured[0][1] * 1.5);
  EXPECT_GT(measured[0][0], measured[0][3] * 5.0) << "local HBM dominates";
}

TEST(BandwidthProbeTest, RebuiltTopologyMatchesMeasurements) {
  const Topology original = Topology::HybridCubeMesh8();
  auto measured = ProbeBandwidths(original);
  // Zero the diagonal: FromMatrix supplies its own local bandwidth.
  for (int i = 0; i < 8; ++i) measured[i][i] = 0.0;
  auto rebuilt = Topology::FromMatrix(measured);
  ASSERT_TRUE(rebuilt.ok());
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      if (i == j) continue;
      // The rebuilt fabric treats measurements as direct links; effective
      // bandwidth can only improve (routing may find better paths), and by
      // no more than the probe error + transit slack.
      EXPECT_GE(rebuilt->EffectiveBandwidth(i, j),
                0.99 * original.EffectiveBandwidth(i, j));
    }
  }
}

TEST(BandwidthProbeTest, SmallTransfersUnderestimate) {
  // With a transfer too small to amortize setup, a naive probe would
  // under-report; our probe subtracts setup, so even 64 KiB stays accurate.
  BandwidthProbeOptions tiny;
  tiny.transfer_bytes = 64.0 * 1024;
  const Topology topo = Topology::FullyConnected(4);
  const auto measured = ProbeBandwidths(topo, tiny);
  EXPECT_NEAR(measured[0][1], topo.EffectiveBandwidth(0, 1),
              0.02 * topo.EffectiveBandwidth(0, 1));
}

}  // namespace
}  // namespace gum::sim
