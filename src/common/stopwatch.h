// Wall-clock stopwatch for host-side measurements.
//
// Only the *decision procedures* (MILP solve, model inference, model
// training) are measured in wall-clock time — matching the paper's Table IV
// overhead and Table V training-time columns. Simulated device time never
// touches the wall clock.

#ifndef GUM_COMMON_STOPWATCH_H_
#define GUM_COMMON_STOPWATCH_H_

#include <chrono>

namespace gum {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gum

#endif  // GUM_COMMON_STOPWATCH_H_
