#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "solver/steal_problem.h"

namespace gum::solver {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<std::vector<double>> UniformCost(int n, double local,
                                             double remote) {
  std::vector<std::vector<double>> c(n, std::vector<double>(n, remote));
  for (int i = 0; i < n; ++i) c[i][i] = local;
  return c;
}

void ExpectRowSumsMatchLoads(const StealPlan& plan,
                             const std::vector<double>& load) {
  for (size_t i = 0; i < load.size(); ++i) {
    double sum = 0;
    for (double x : plan.assignment[i]) {
      EXPECT_GE(x, 0.0);
      EXPECT_NEAR(x, std::round(x), 1e-9) << "assignment must be integral";
      sum += x;
    }
    EXPECT_NEAR(sum, load[i], 1e-9) << "row " << i;
  }
}

TEST(StealProblemTest, BalancedLoadStaysPut) {
  const auto cost = UniformCost(4, 1.0, 2.0);
  const std::vector<double> load = {100, 100, 100, 100};
  auto plan = SolveStealProblem(cost, load, {0, 1, 2, 3});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ExpectRowSumsMatchLoads(*plan, load);
  // Local processing of equal loads is already optimal.
  EXPECT_NEAR(plan->makespan, 100.0, 1.0);
}

TEST(StealProblemTest, SkewedLoadGetsBalanced) {
  const auto cost = UniformCost(2, 1.0, 2.0);
  const std::vector<double> load = {10, 2};
  auto plan = SolveStealProblem(cost, load, {0, 1});
  ASSERT_TRUE(plan.ok());
  ExpectRowSumsMatchLoads(*plan, load);
  // Analytic optimum 22/3 (see simplex_test); integral rounding nearby.
  EXPECT_LT(plan->makespan, 8.5);
  EXPECT_GT(plan->assignment[0][1], 0.0) << "worker 1 must steal";
}

TEST(StealProblemTest, RemoteCostDiscouragesStealing) {
  // Remote processing 100x local: keep everything local even if skewed.
  const auto cost = UniformCost(2, 1.0, 100.0);
  const std::vector<double> load = {10, 2};
  auto plan = SolveStealProblem(cost, load, {0, 1});
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->assignment[0][0], 10.0, 1e-9);
  EXPECT_NEAR(plan->makespan, 10.0, 1e-9);
}

TEST(StealProblemTest, ForbiddenWorkerGetsNothing) {
  auto cost = UniformCost(3, 1.0, 2.0);
  for (int i = 0; i < 3; ++i) cost[i][2] = kInf;  // worker 2 evicted
  const std::vector<double> load = {30, 30, 30};
  auto plan = SolveStealProblem(cost, load, {0, 1});
  ASSERT_TRUE(plan.ok());
  ExpectRowSumsMatchLoads(*plan, load);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(plan->assignment[i][2], 0.0);
}

TEST(StealProblemTest, AllForbiddenIsInfeasible) {
  auto cost = UniformCost(2, 1.0, 2.0);
  cost[0][0] = kInf;
  cost[0][1] = kInf;
  auto plan = SolveStealProblem(cost, {5, 5}, {0, 1});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInfeasible);
}

TEST(StealProblemTest, EmptyLoadsTrivial) {
  const auto cost = UniformCost(4, 1.0, 2.0);
  auto plan = SolveStealProblem(cost, {0, 0, 0, 0}, {0, 1, 2, 3});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->makespan, 0.0);
}

TEST(StealProblemTest, SingleWorkerTakesEverything) {
  const auto cost = UniformCost(3, 1.0, 2.0);
  const std::vector<double> load = {5, 7, 9};
  auto plan = SolveStealProblem(cost, load, {1});
  ASSERT_TRUE(plan.ok());
  ExpectRowSumsMatchLoads(*plan, load);
  EXPECT_NEAR(plan->assignment[1][1], 7.0, 1e-9);
  EXPECT_NEAR(plan->assignment[0][1], 5.0, 1e-9);
}

TEST(StealProblemTest, ExactMilpMatchesRoundedLpClosely) {
  const auto cost = UniformCost(3, 1.0, 1.5);
  const std::vector<double> load = {17, 3, 1};
  StealProblemOptions exact;
  exact.exact_milp = true;
  auto lp_plan = SolveStealProblem(cost, load, {0, 1, 2});
  auto milp_plan = SolveStealProblem(cost, load, {0, 1, 2}, exact);
  ASSERT_TRUE(lp_plan.ok());
  ASSERT_TRUE(milp_plan.ok());
  ExpectRowSumsMatchLoads(*milp_plan, load);
  EXPECT_LE(milp_plan->makespan, lp_plan->makespan + 1e-6);
  EXPECT_NEAR(milp_plan->makespan, lp_plan->makespan, 2.0);
}

TEST(StealProblemTest, AsymmetricCostsRouteToCheapWorker) {
  // Worker 1 processes fragment 0's edges almost as cheaply as worker 0,
  // worker 2 is expensive: stealing should prefer worker 1.
  std::vector<std::vector<double>> cost = {
      {1.0, 1.1, 5.0},
      {1.1, 1.0, 5.0},
      {5.0, 5.0, 1.0},
  };
  const std::vector<double> load = {100, 0, 0};
  auto plan = SolveStealProblem(cost, load, {0, 1, 2});
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->assignment[0][1], plan->assignment[0][2]);
}

TEST(GreedyStealTest, RespectsForbiddenAndBalances) {
  auto cost = UniformCost(3, 1.0, 1.2);
  cost[0][2] = kInf;
  cost[1][2] = kInf;
  cost[2][2] = kInf;
  const StealPlan plan = GreedyStealPlan(cost, {50, 10, 0}, {0, 1});
  double sum = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.assignment[i][2], 0.0);
    for (double x : plan.assignment[i]) sum += x;
  }
  EXPECT_NEAR(sum, 60.0, 1e-9);
  EXPECT_GT(plan.makespan, 0.0);
}

TEST(GreedyStealTest, GreedyNeverBeatsLpByMuch) {
  const auto cost = UniformCost(4, 1.0, 1.6);
  const std::vector<double> load = {40, 13, 7, 2};
  auto lp_plan = SolveStealProblem(cost, load, {0, 1, 2, 3});
  const StealPlan greedy = GreedyStealPlan(cost, load, {0, 1, 2, 3});
  ASSERT_TRUE(lp_plan.ok());
  // The LP can split fragments, the greedy cannot: LP <= greedy (+rounding).
  EXPECT_LE(lp_plan->makespan, greedy.makespan + 1.0);
}

TEST(PlanMakespanTest, ComputesColumnMax) {
  const std::vector<std::vector<double>> cost = {{1.0, 2.0}, {3.0, 1.0}};
  const std::vector<std::vector<double>> assignment = {{4.0, 0.0},
                                                       {0.0, 5.0}};
  EXPECT_DOUBLE_EQ(PlanMakespan(cost, assignment), 5.0);
}

}  // namespace
}  // namespace gum::solver
