// Figure 9: ownership-stealing switching process (Exp-4). SSSP on the
// webbase and road-USA analogs: the communication-group size over
// iterations (shrinking through the long tail, re-growing if the workload
// recovers), and the end-to-end gain vs OSteal off.

#include <iostream>
#include <vector>

#include "bench/datasets.h"
#include "bench/runner.h"
#include "common/table_printer.h"

using namespace gum;        // NOLINT(build/namespaces)
using namespace gum::bench; // NOLINT(build/namespaces)

int main() {
  std::cout << "=== Figure 9: OSteal switching process — SSSP, 8 GPUs ===\n";
  for (const std::string abbr : {std::string("WB"), std::string("USA")}) {
    const DatasetGraphs data = BuildDataset(abbr);
    auto run = [&](bool osteal) {
      RunConfig config;
      config.system = System::kGum;
      config.algo = Algo::kSssp;
      config.devices = 8;
      config.gum.enable_osteal = osteal;
      return RunBenchmark(data, config);
    };
    const core::RunResult off = run(false);
    const core::RunResult on = run(true);

    std::cout << "\n--- " << data.spec.name << " (|E|="
              << data.directed.num_edges() << ", " << on.iterations
              << " iterations) ---\n";
    std::cout << "group-size trace (iteration -> m):  8";
    int current = 8;
    for (const core::IterationStats& s : on.iteration_stats) {
      if (s.group_size != current) {
        std::cout << "  #" << s.iteration << "->" << s.group_size;
        current = s.group_size;
      }
    }
    std::cout << "\n";

    // Tail statistics: how much of the run executes with a shrunken group.
    int shrunk_iters = 0;
    for (const core::IterationStats& s : on.iteration_stats) {
      if (s.group_size < 8) ++shrunk_iters;
    }
    std::cout << "iterations with m < 8: " << shrunk_iters << "/"
              << on.iterations << "\n";
    std::cout << "runtime: OSteal off " << TablePrinter::Num(off.total_ms, 1)
              << " ms -> on " << TablePrinter::Num(on.total_ms, 1)
              << " ms  => " << TablePrinter::Num(off.total_ms / on.total_ms, 2)
              << "x speedup\n";
  }
  std::cout << "\nShape check vs paper Fig. 9: webbase shrinks 8->6->4->1 "
               "over the late iterations (+11% there); road-USA spends most "
               "iterations shrunk and gains ~3.2x.\n";
  return 0;
}
