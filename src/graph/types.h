// Fundamental graph types shared across the library.

#ifndef GUM_GRAPH_TYPES_H_
#define GUM_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace gum::graph {

using VertexId = uint32_t;
using EdgeId = uint64_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;
};

// A raw edge list, the interchange format between generators / IO and the
// CSR builder.
struct EdgeList {
  VertexId num_vertices = 0;
  std::vector<Edge> edges;
};

}  // namespace gum::graph

#endif  // GUM_GRAPH_TYPES_H_
