// Serving-plane tests (DESIGN.md §13): QueryQueue batching semantics,
// latency statistics, and ServeSession end-to-end — batched waves must
// return byte-identical per-query values to the sequential stream while
// beating its makespan, stay deterministic across engine geometry, and
// compose with the fault plane so a mid-batch device loss replays only the
// affected batch.

#include <gtest/gtest.h>

#include <vector>

#include "core/graph_context.h"
#include "fault/fault_plane.h"
#include "serve/query.h"
#include "serve/query_queue.h"
#include "serve/serve_stats.h"
#include "serve/serving.h"
#include "tests/test_util.h"

namespace gum::serve {
namespace {

using graph::VertexId;

Query Q(int id, QueryKind kind, VertexId source) {
  Query q;
  q.id = id;
  q.kind = kind;
  q.source = source;
  return q;
}

TEST(QueryQueueTest, BatchesFifoUpToWidth) {
  QueryQueue queue;
  for (int i = 0; i < 5; ++i) queue.Admit(Q(i, QueryKind::kBfs, i));
  const auto b1 = queue.NextBatch(3);
  ASSERT_EQ(b1.size(), 3u);
  EXPECT_EQ(b1[0].id, 0);
  EXPECT_EQ(b1[1].id, 1);
  EXPECT_EQ(b1[2].id, 2);
  const auto b2 = queue.NextBatch(3);
  ASSERT_EQ(b2.size(), 2u);
  EXPECT_EQ(b2[0].id, 3);
  EXPECT_EQ(b2[1].id, 4);
  EXPECT_TRUE(queue.empty());
}

TEST(QueryQueueTest, SkipsIncompatibleKindsPreservingOrder) {
  QueryQueue queue;
  queue.Admit(Q(0, QueryKind::kBfs, 0));
  queue.Admit(Q(1, QueryKind::kSssp, 1));
  queue.Admit(Q(2, QueryKind::kBfs, 2));
  queue.Admit(Q(3, QueryKind::kSssp, 3));

  // Head fixes the kind; the SSSP queries are skipped but keep order.
  const auto b1 = queue.NextBatch(64);
  ASSERT_EQ(b1.size(), 2u);
  EXPECT_EQ(b1[0].id, 0);
  EXPECT_EQ(b1[1].id, 2);
  const auto b2 = queue.NextBatch(64);
  ASSERT_EQ(b2.size(), 2u);
  EXPECT_EQ(b2[0].id, 1);
  EXPECT_EQ(b2[1].id, 3);
}

TEST(QueryQueueTest, EveryCallRemovesAtLeastTheHead) {
  // Starvation-freedom: even with width clamped to 1, the queue drains.
  QueryQueue queue;
  for (int i = 0; i < 4; ++i) {
    queue.Admit(Q(i, i % 2 ? QueryKind::kSssp : QueryKind::kBfs, i));
  }
  int drained = 0;
  while (!queue.empty()) {
    const auto b = queue.NextBatch(0);  // clamps to width 1
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].id, drained);  // strict FIFO at width 1
    ++drained;
  }
  EXPECT_EQ(drained, 4);
}

TEST(QueryQueueTest, EmptyQueueYieldsEmptyBatch) {
  QueryQueue queue;
  EXPECT_TRUE(queue.NextBatch(8).empty());
}

TEST(ServeStatsTest, NearestRankPercentiles) {
  ServeStats stats;
  for (int i = 1; i <= 10; ++i) {
    QueryResult qr;
    qr.id = i;
    qr.latency_ms = static_cast<double>(i);  // 1..10, already what sort gives
    stats.query_results.push_back(qr);
  }
  EXPECT_DOUBLE_EQ(stats.LatencyPercentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(stats.LatencyPercentile(0.9), 9.0);
  EXPECT_DOUBLE_EQ(stats.LatencyPercentile(0.99), 10.0);
  EXPECT_DOUBLE_EQ(stats.LatencyPercentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.LatencyPercentile(1.0), 10.0);
}

// --- end-to-end session fixtures -----------------------------------------

std::vector<Query> BfsStream(const graph::CsrGraph& g, int count) {
  std::vector<Query> qs;
  for (int i = 0; i < count; ++i) {
    qs.push_back(Q(i, QueryKind::kBfs,
                   static_cast<VertexId>((static_cast<uint64_t>(i) * 211 + 3) %
                                         g.num_vertices())));
  }
  return qs;
}

core::EngineOptions ServeTestOptions(int threads = 2, int shards = 2) {
  core::EngineOptions opt = test::TestEngineOptions();
  opt.num_host_threads = threads;
  opt.num_msg_shards = shards;
  return opt;
}

ServeOutcome<uint32_t> ServeBfsStream(const core::GraphContext& ctx,
                                      const std::vector<Query>& stream,
                                      const ServeOptions& opts) {
  QueryQueue queue;
  for (const Query& q : stream) queue.Admit(q);
  ServeSession<BfsServeTraits> session(&ctx);
  return session.ServeAll(queue, opts);
}

TEST(ServeSessionTest, BatchedMatchesSequentialAndBeatsItsMakespan) {
  const auto g = test::SocialGraph(10, 2);
  const auto part = test::MakePartition(g, 4);
  const core::GraphContext ctx(&g, part, test::Topo(4), ServeTestOptions());
  const auto stream = BfsStream(g, 24);

  ServeOptions sequential;
  sequential.batch_width = 1;
  const auto seq = ServeBfsStream(ctx, stream, sequential);
  ASSERT_EQ(seq.stats.queries, 24);
  EXPECT_EQ(seq.stats.batches, 24);

  ServeOptions batched;
  batched.batch_width = 8;
  const auto bat = ServeBfsStream(ctx, stream, batched);
  ASSERT_EQ(bat.stats.queries, 24);
  EXPECT_EQ(bat.stats.batches, 3);

  // Results are keyed by query id in both service orders; here both are
  // FIFO over a single-kind stream, so index i is query i in each.
  ASSERT_EQ(seq.values.size(), bat.values.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(seq.stats.query_results[i].id, bat.stats.query_results[i].id);
    ASSERT_EQ(bat.values[i], seq.values[i]) << "query " << i;
  }

  // The whole point of batching: one wave amortises the superstep
  // machinery over 8 queries.
  EXPECT_LT(bat.stats.makespan_ms, seq.stats.makespan_ms);
  // Latencies are the simulated makespan through each query's own batch —
  // monotone within the stream, final one equal to the makespan.
  EXPECT_DOUBLE_EQ(bat.stats.query_results.back().latency_ms,
                   bat.stats.makespan_ms);
  EXPECT_GT(bat.stats.QueriesPerSecond(), seq.stats.QueriesPerSecond());
}

TEST(ServeSessionTest, StreamIsDeterministicAcrossGeometry) {
  const auto g = test::SocialGraph(10, 2);
  const auto part = test::MakePartition(g, 4);
  const auto stream = BfsStream(g, 16);
  ServeOptions opts;
  opts.batch_width = 8;

  const core::GraphContext ref_ctx(&g, part, test::Topo(4),
                                   ServeTestOptions(1, 1));
  const auto ref = ServeBfsStream(ref_ctx, stream, opts);

  for (const int threads : {2, 4, 8}) {
    for (const int shards : {1, 4}) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " shards=" << shards);
      const core::GraphContext ctx(&g, part, test::Topo(4),
                                   ServeTestOptions(threads, shards));
      const auto got = ServeBfsStream(ctx, stream, opts);
      EXPECT_DOUBLE_EQ(got.stats.makespan_ms, ref.stats.makespan_ms);
      ASSERT_EQ(got.values.size(), ref.values.size());
      for (size_t i = 0; i < ref.values.size(); ++i) {
        ASSERT_EQ(got.values[i], ref.values[i]) << "query " << i;
      }
    }
  }
}

TEST(ServeSessionTest, FaultOnOneBatchReplaysOnlyThatBatch) {
  const auto g = test::SocialGraph(10, 2);
  const auto part = test::MakePartition(g, 4);
  const core::GraphContext ctx(&g, part, test::Topo(4), ServeTestOptions());
  const auto stream = BfsStream(g, 24);

  ServeOptions clean_opts;
  clean_opts.batch_width = 8;
  const auto clean = ServeBfsStream(ctx, stream, clean_opts);
  ASSERT_EQ(clean.stats.batches, 3);
  ASSERT_GT(clean.stats.batch_stats[1].iterations, 2)
      << "batch 1 must run long enough for an iteration-2 fail-stop";

  auto plan = fault::FaultPlan::Parse("failstop:1@2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto plane = fault::FaultPlane::Create(*plan, 4);
  ASSERT_TRUE(plane.ok()) << plane.status().ToString();

  ServeOptions faulted_opts = clean_opts;
  faulted_opts.fault_batch = 1;
  faulted_opts.fault_plane = &*plane;
  faulted_opts.ckpt_every = 1;
  const auto faulted = ServeBfsStream(ctx, stream, faulted_opts);

  // Every per-query result — including the replayed batch's — is
  // byte-identical to the fault-free stream.
  ASSERT_EQ(faulted.values.size(), clean.values.size());
  for (size_t i = 0; i < clean.values.size(); ++i) {
    ASSERT_EQ(faulted.values[i], clean.values[i]) << "query " << i;
  }

  // Only batch 1 pays: recovery charged there and nowhere else, and the
  // surrounding batches' simulated wall times are untouched.
  EXPECT_GT(faulted.stats.batch_stats[1].recovery_ms, 0.0);
  EXPECT_DOUBLE_EQ(faulted.stats.batch_stats[0].recovery_ms, 0.0);
  EXPECT_DOUBLE_EQ(faulted.stats.batch_stats[2].recovery_ms, 0.0);
  EXPECT_DOUBLE_EQ(faulted.stats.batch_stats[0].wall_ms,
                   clean.stats.batch_stats[0].wall_ms);
  EXPECT_DOUBLE_EQ(faulted.stats.batch_stats[2].wall_ms,
                   clean.stats.batch_stats[2].wall_ms);
  EXPECT_GT(faulted.stats.batch_stats[1].wall_ms,
            clean.stats.batch_stats[1].wall_ms);
  EXPECT_GT(faulted.stats.recovery_ms, 0.0);
  EXPECT_GT(faulted.stats.makespan_ms, clean.stats.makespan_ms);
}

TEST(ServeSessionTest, SsspSessionServesWeightedStream) {
  const auto g = test::SocialGraph(9, 3, /*weighted=*/true);
  const auto part = test::MakePartition(g, 4);
  const core::GraphContext ctx(&g, part, test::Topo(4), ServeTestOptions());

  QueryQueue queue;
  for (int i = 0; i < 6; ++i) {
    queue.Admit(Q(i, QueryKind::kSssp,
                  static_cast<VertexId>((i * 97 + 11) % g.num_vertices())));
  }
  ServeOptions opts;
  opts.batch_width = 4;
  ServeSession<SsspServeTraits> session(&ctx);
  const auto out = session.ServeAll(queue, opts);
  EXPECT_EQ(out.stats.queries, 6);
  EXPECT_EQ(out.stats.batches, 2);
  ASSERT_EQ(out.values.size(), 6u);

  // Each query's lane reaches its own source at distance 0.
  for (size_t i = 0; i < out.values.size(); ++i) {
    const VertexId src = static_cast<VertexId>((i * 97 + 11) %
                                               g.num_vertices());
    EXPECT_EQ(out.values[i][src], 0.0f) << "query " << i;
  }
}

}  // namespace
}  // namespace gum::serve
