# Empty dependencies file for gum_base_tests.
# This may be replaced when dependencies are built.
