// Determinism tests for bit-parallel multi-source batching
// (algos/multi_source.h, DESIGN.md §13): every lane of a batched BFS/SSSP
// wave must be byte-identical to the sequential single-source run — for
// every host thread count, shard count, and expand backend — and reusing
// one RunContext across runs must change nothing.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algos/apps.h"
#include "algos/multi_source.h"
#include "core/engine.h"
#include "core/graph_context.h"
#include "core/run_context.h"
#include "tests/test_util.h"

namespace gum {
namespace {

using core::ExpandBackendKind;
using graph::VertexId;

// A deterministic spread of batch sources, including one duplicate pair.
std::vector<VertexId> BatchSources(const graph::CsrGraph& g, int count) {
  std::vector<VertexId> sources;
  for (int i = 0; i < count; ++i) {
    sources.push_back(
        static_cast<VertexId>((static_cast<uint64_t>(i) * 131 + 7) %
                              g.num_vertices()));
  }
  if (count >= 2) sources[count - 1] = sources[0];  // duplicate lanes
  return sources;
}

core::EngineOptions Options(ExpandBackendKind backend, int threads,
                            int shards) {
  core::EngineOptions opt = test::TestEngineOptions();
  opt.expand_backend = backend;
  opt.num_host_threads = threads;
  opt.num_msg_shards = shards;
  return opt;
}

template <typename App, typename Value = typename App::Value>
std::vector<Value> RunOnce(const graph::CsrGraph& g,
                           const graph::Partition& partition,
                           const core::EngineOptions& options, App app) {
  core::GumEngine<App> engine(&g, partition, test::Topo(partition.num_parts),
                              options);
  std::vector<Value> values;
  engine.Run(app, &values);
  return values;
}

struct BfsCase {
  using SingleApp = algos::BfsApp;
  using BatchApp = algos::MultiSourceBfsApp;
  static graph::CsrGraph Graph() { return test::SocialGraph(10, 2); }
  static SingleApp Single(VertexId s) {
    SingleApp app;
    app.source = s;
    return app;
  }
  static std::vector<uint32_t> Lane(
      const std::vector<BatchApp::Value>& vals, int lane) {
    return algos::ExtractBfsLane(vals, lane);
  }
};

struct SsspCase {
  using SingleApp = algos::SsspApp;
  using BatchApp = algos::MultiSourceSsspApp;
  static graph::CsrGraph Graph() {
    return test::SocialGraph(10, 2, /*weighted=*/true);
  }
  static SingleApp Single(VertexId s) {
    SingleApp app;
    app.source = s;
    return app;
  }
  static std::vector<float> Lane(const std::vector<BatchApp::Value>& vals,
                                 int lane) {
    return algos::ExtractSsspLane(vals, lane);
  }
};

template <typename Case>
void CheckBatchedMatchesSequential(int batch_size) {
  const graph::CsrGraph g = Case::Graph();
  const graph::Partition partition = test::MakePartition(g, 4);
  const std::vector<VertexId> sources = BatchSources(g, batch_size);

  // Sequential reference: one single-source run per lane, default
  // (scatter, serial) configuration.
  using SingleValue = typename Case::SingleApp::Value;
  std::vector<std::vector<SingleValue>> reference;
  for (const VertexId s : sources) {
    reference.push_back(RunOnce(
        g, partition, Options(ExpandBackendKind::kScatter, 1, 1),
        Case::Single(s)));
  }

  for (const ExpandBackendKind backend :
       {ExpandBackendKind::kScatter, ExpandBackendKind::kSpmv,
        ExpandBackendKind::kAuto}) {
    for (const int threads : {1, 2, 4, 8}) {
      for (const int shards : {1, 4}) {
        SCOPED_TRACE(testing::Message()
                     << "backend=" << static_cast<int>(backend)
                     << " threads=" << threads << " shards=" << shards);
        const auto batched =
            RunOnce(g, partition, Options(backend, threads, shards),
                    typename Case::BatchApp(sources));
        for (size_t lane = 0; lane < sources.size(); ++lane) {
          // Byte-identical per lane, not approximately equal.
          ASSERT_EQ(Case::Lane(batched, static_cast<int>(lane)),
                    reference[lane])
              << "lane " << lane << " (source " << sources[lane] << ")";
        }
      }
    }
  }
}

TEST(MultiSourceBfsTest, FullWidthBatchMatchesSequentialEverywhere) {
  CheckBatchedMatchesSequential<BfsCase>(algos::kMaxBatchLanes);
}

TEST(MultiSourceBfsTest, PartialBatchMatchesSequential) {
  CheckBatchedMatchesSequential<BfsCase>(5);
}

TEST(MultiSourceSsspTest, FullWidthBatchMatchesSequentialEverywhere) {
  CheckBatchedMatchesSequential<SsspCase>(algos::kMaxBatchLanes);
}

TEST(MultiSourceSsspTest, PartialBatchMatchesSequential) {
  CheckBatchedMatchesSequential<SsspCase>(3);
}

TEST(MultiSourceBfsTest, SingleLaneBatchMatchesPlainBfs) {
  const graph::CsrGraph g = test::SocialGraph(9, 5);
  const graph::Partition partition = test::MakePartition(g, 2);
  const VertexId s = test::MaxDegreeSource(g);
  const auto ref = RunOnce(g, partition,
                           Options(ExpandBackendKind::kScatter, 2, 2),
                           BfsCase::Single(s));
  const auto batched =
      RunOnce(g, partition, Options(ExpandBackendKind::kScatter, 2, 2),
              algos::MultiSourceBfsApp({s}));
  EXPECT_EQ(algos::ExtractBfsLane(batched, 0), ref);
}

// RunContext reuse across runs (the serving fast path) must be invisible
// in the results: run A, then B, then A again in one context — the two A
// runs and a fresh-context A run all agree bit for bit.
TEST(MultiSourceTest, RunContextReuseIsByteIdentical) {
  const graph::CsrGraph g = test::SocialGraph(10, 2);
  const graph::Partition partition = test::MakePartition(g, 4);
  const core::GraphContext ctx(&g, partition, test::Topo(4),
                               Options(ExpandBackendKind::kAuto, 4, 4));
  core::GumEngine<algos::MultiSourceBfsApp> engine(&ctx);
  core::RunContext<algos::MultiSourceBfsApp> rc;

  const std::vector<VertexId> batch_a = BatchSources(g, 16);
  std::vector<VertexId> batch_b = BatchSources(g, 64);
  for (VertexId& v : batch_b) v = (v + 13) % g.num_vertices();

  algos::MultiSourceBfsApp app_a1(batch_a);
  const auto res_a1 = engine.Run(app_a1, rc);
  const auto vals_a1 = rc.state.values;

  algos::MultiSourceBfsApp app_b(batch_b);
  engine.Run(app_b, rc);

  algos::MultiSourceBfsApp app_a2(batch_a);
  const auto res_a2 = engine.Run(app_a2, rc);
  EXPECT_EQ(rc.state.values.size(), vals_a1.size());
  for (size_t lane = 0; lane < batch_a.size(); ++lane) {
    ASSERT_EQ(algos::ExtractBfsLane(rc.state.values, static_cast<int>(lane)),
              algos::ExtractBfsLane(vals_a1, static_cast<int>(lane)))
        << "lane " << lane;
  }
  EXPECT_EQ(res_a2.iterations, res_a1.iterations);
  EXPECT_EQ(res_a2.total_ms, res_a1.total_ms);

  // A fresh RunContext (the legacy overload) agrees too.
  algos::MultiSourceBfsApp app_a3(batch_a);
  std::vector<algos::MultiSourceBfsApp::Value> fresh;
  engine.Run(app_a3, &fresh);
  for (size_t lane = 0; lane < batch_a.size(); ++lane) {
    ASSERT_EQ(algos::ExtractBfsLane(fresh, static_cast<int>(lane)),
              algos::ExtractBfsLane(vals_a1, static_cast<int>(lane)));
  }
}

// Engines of different App types sharing one GraphContext: the context's
// immutable substrate (shard map, schedule, pull edges) serves both.
TEST(MultiSourceTest, SharedContextServesSingleAndBatchedEngines) {
  const graph::CsrGraph g = test::SocialGraph(10, 2);
  const graph::Partition partition = test::MakePartition(g, 4);
  const core::GraphContext ctx(&g, partition, test::Topo(4),
                               Options(ExpandBackendKind::kScatter, 2, 2));

  const VertexId s = test::MaxDegreeSource(g);
  core::GumEngine<algos::BfsApp> single(&ctx);
  std::vector<uint32_t> single_vals;
  algos::BfsApp app = BfsCase::Single(s);
  single.Run(app, &single_vals);

  core::GumEngine<algos::MultiSourceBfsApp> batched(&ctx);
  std::vector<algos::MultiSourceBfsApp::Value> batch_vals;
  algos::MultiSourceBfsApp bapp({s, (s + 1) % g.num_vertices()});
  batched.Run(bapp, &batch_vals);

  EXPECT_EQ(algos::ExtractBfsLane(batch_vals, 0), single_vals);

  // And the legacy-constructed engine (owning its context) agrees.
  const auto legacy = RunOnce(g, partition,
                              Options(ExpandBackendKind::kScatter, 2, 2),
                              BfsCase::Single(s));
  EXPECT_EQ(legacy, single_vals);
}

}  // namespace
}  // namespace gum
