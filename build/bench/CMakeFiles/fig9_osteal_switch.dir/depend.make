# Empty dependencies file for fig9_osteal_switch.
# This may be replaced when dependencies are built.
