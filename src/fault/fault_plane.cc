#include "fault/fault_plane.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/random.h"

namespace gum::fault {
namespace {

// Splits on `sep`, trimming surrounding spaces; empty pieces dropped.
std::vector<std::string> SplitTrim(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) pos = s.size();
    std::string piece = s.substr(start, pos - start);
    const size_t a = piece.find_first_not_of(" \t");
    const size_t b = piece.find_last_not_of(" \t");
    if (a != std::string::npos) out.push_back(piece.substr(a, b - a + 1));
    start = pos + 1;
  }
  return out;
}

bool ParseInt(const std::string& s, int* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

Status BadEvent(const std::string& event, const std::string& why) {
  return Status::InvalidArgument("bad fault event '" + event + "': " + why);
}

// "<a>-<b>" into two ints.
bool ParsePair(const std::string& s, int* a, int* b) {
  const size_t dash = s.find('-');
  if (dash == std::string::npos) return false;
  return ParseInt(s.substr(0, dash), a) && ParseInt(s.substr(dash + 1), b);
}

std::string FormatFactor(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", f);
  return buf;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFailStop:
      return "failstop";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kLinkDegrade:
      return "degrade";
    case FaultKind::kLinkDown:
      return "linkdown";
    case FaultKind::kLinkFlap:
      return "flap";
  }
  return "unknown";
}

std::string FaultEvent::Describe() const {
  char buf[96];
  switch (kind) {
    case FaultKind::kFailStop:
      std::snprintf(buf, sizeof(buf), "failstop:%d@%d", device, begin);
      return buf;
    case FaultKind::kStraggler:
      std::snprintf(buf, sizeof(buf), "straggler:%d@%d-%d", device, begin,
                    end);
      return std::string(buf) + "x" + FormatFactor(factor);
    case FaultKind::kLinkDegrade:
      std::snprintf(buf, sizeof(buf), "degrade:%d-%d@%d-%d", link_a, link_b,
                    begin, end);
      return std::string(buf) + "x" + FormatFactor(factor);
    case FaultKind::kLinkDown:
      std::snprintf(buf, sizeof(buf), "linkdown:%d-%d@%d-%d", link_a, link_b,
                    begin, end);
      return buf;
    case FaultKind::kLinkFlap:
      std::snprintf(buf, sizeof(buf), "flap:%d-%d@%d-%d/%d", link_a, link_b,
                    begin, end, period);
      return buf;
  }
  return "unknown";
}

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty() || spec == "none") return plan;
  if (spec == "chaos") {
    plan.chaos_ = true;
    return plan;
  }
  for (const std::string& piece : SplitTrim(spec, ';')) {
    const size_t colon = piece.find(':');
    if (colon == std::string::npos) {
      return BadEvent(piece, "expected '<kind>:<spec>'");
    }
    const std::string kind = piece.substr(0, colon);
    const std::string body = piece.substr(colon + 1);
    const size_t at = body.find('@');
    if (at == std::string::npos) {
      return BadEvent(piece, "expected '<target>@<iterations>'");
    }
    const std::string target = body.substr(0, at);
    const std::string when = body.substr(at + 1);
    FaultEvent ev;
    if (kind == "failstop") {
      ev.kind = FaultKind::kFailStop;
      if (!ParseInt(target, &ev.device)) {
        return BadEvent(piece, "bad device id '" + target + "'");
      }
      if (!ParseInt(when, &ev.begin)) {
        return BadEvent(piece, "bad iteration '" + when + "'");
      }
      ev.end = ev.begin;
    } else if (kind == "straggler") {
      ev.kind = FaultKind::kStraggler;
      if (!ParseInt(target, &ev.device)) {
        return BadEvent(piece, "bad device id '" + target + "'");
      }
      const size_t x = when.find('x');
      if (x == std::string::npos ||
          !ParsePair(when.substr(0, x), &ev.begin, &ev.end) ||
          !ParseDouble(when.substr(x + 1), &ev.factor)) {
        return BadEvent(piece, "expected '<first>-<last>x<factor>'");
      }
      if (ev.factor < 1.0) {
        return BadEvent(piece, "straggler factor must be >= 1");
      }
    } else if (kind == "degrade" || kind == "linkdown" || kind == "flap") {
      if (!ParsePair(target, &ev.link_a, &ev.link_b)) {
        return BadEvent(piece, "bad link pair '" + target + "'");
      }
      if (kind == "degrade") {
        ev.kind = FaultKind::kLinkDegrade;
        const size_t x = when.find('x');
        if (x == std::string::npos ||
            !ParsePair(when.substr(0, x), &ev.begin, &ev.end) ||
            !ParseDouble(when.substr(x + 1), &ev.factor)) {
          return BadEvent(piece, "expected '<first>-<last>x<scale>'");
        }
        if (ev.factor < 0.0 || ev.factor >= 1.0) {
          return BadEvent(piece, "link scale must be in [0, 1)");
        }
      } else if (kind == "linkdown") {
        ev.kind = FaultKind::kLinkDown;
        ev.factor = 0.0;
        if (!ParsePair(when, &ev.begin, &ev.end)) {
          return BadEvent(piece, "expected '<first>-<last>'");
        }
      } else {
        ev.kind = FaultKind::kLinkFlap;
        ev.factor = 0.0;
        const size_t slash = when.find('/');
        if (slash == std::string::npos ||
            !ParsePair(when.substr(0, slash), &ev.begin, &ev.end) ||
            !ParseInt(when.substr(slash + 1), &ev.period)) {
          return BadEvent(piece, "expected '<first>-<last>/<period>'");
        }
        if (ev.period < 1) return BadEvent(piece, "flap period must be >= 1");
      }
    } else {
      return BadEvent(piece,
                      "unknown kind '" + kind +
                          "' (expected failstop|straggler|degrade|linkdown|"
                          "flap, or the plan literals none|chaos)");
    }
    if (ev.begin < 0 || ev.end < ev.begin) {
      return BadEvent(piece, "bad iteration range");
    }
    plan.events_.push_back(ev);
  }
  return plan;
}

namespace {

// Deterministic chaos mix: one fail-stop, one straggler window, and one
// link fault, all drawn from (seed, n). Iteration numbers stay small so
// short smoke runs actually cross the faults.
std::vector<FaultEvent> ChaosEvents(int n, uint64_t seed) {
  Rng rng(seed ^ (0x5eedc4a05ULL + static_cast<uint64_t>(n) * 0x9e37ULL));
  std::vector<FaultEvent> events;
  if (n > 1) {
    FaultEvent fail;
    fail.kind = FaultKind::kFailStop;
    fail.device = static_cast<int>(rng.NextBounded(n));
    fail.begin = fail.end = 1 + static_cast<int>(rng.NextBounded(4));
    events.push_back(fail);

    FaultEvent slow;
    slow.kind = FaultKind::kStraggler;
    // A different device than the failed one, so both faults matter.
    slow.device = static_cast<int>(rng.NextBounded(n - 1));
    if (slow.device >= fail.device) ++slow.device;
    slow.begin = static_cast<int>(rng.NextBounded(3));
    slow.end = slow.begin + 1 + static_cast<int>(rng.NextBounded(3));
    slow.factor = 1.5 + rng.NextDouble() * 2.0;
    events.push_back(slow);

    FaultEvent link;
    link.kind = rng.NextBernoulli(0.5) ? FaultKind::kLinkDown
                                       : FaultKind::kLinkDegrade;
    link.link_a = static_cast<int>(rng.NextBounded(n));
    link.link_b = static_cast<int>(rng.NextBounded(n - 1));
    if (link.link_b >= link.link_a) ++link.link_b;
    link.begin = static_cast<int>(rng.NextBounded(3));
    link.end = link.begin + 1 + static_cast<int>(rng.NextBounded(4));
    link.factor =
        link.kind == FaultKind::kLinkDown ? 0.0 : 0.1 + rng.NextDouble() * 0.4;
    events.push_back(link);
  } else {
    FaultEvent slow;
    slow.kind = FaultKind::kStraggler;
    slow.device = 0;
    slow.begin = static_cast<int>(rng.NextBounded(3));
    slow.end = slow.begin + 1 + static_cast<int>(rng.NextBounded(3));
    slow.factor = 1.5 + rng.NextDouble() * 2.0;
    events.push_back(slow);
  }
  return events;
}

}  // namespace

Result<FaultPlane> FaultPlane::Create(const FaultPlan& plan, int num_devices,
                                      uint64_t seed) {
  if (num_devices < 1) {
    return Status::InvalidArgument("fault plane needs >= 1 device");
  }
  FaultPlane plane;
  plane.num_devices_ = num_devices;
  plane.events_ =
      plan.chaos_ ? ChaosEvents(num_devices, seed) : plan.events_;
  std::vector<bool> fail_stopped(num_devices, false);
  for (const FaultEvent& ev : plane.events_) {
    const bool device_kind = ev.kind == FaultKind::kFailStop ||
                             ev.kind == FaultKind::kStraggler;
    if (device_kind) {
      if (ev.device < 0 || ev.device >= num_devices) {
        return BadEvent(ev.Describe(), "device id out of range");
      }
      if (ev.kind == FaultKind::kFailStop) fail_stopped[ev.device] = true;
    } else {
      if (ev.link_a < 0 || ev.link_a >= num_devices || ev.link_b < 0 ||
          ev.link_b >= num_devices) {
        return BadEvent(ev.Describe(), "link endpoint out of range");
      }
      if (ev.link_a == ev.link_b) {
        return BadEvent(ev.Describe(), "link endpoints must differ");
      }
    }
  }
  if (std::all_of(fail_stopped.begin(), fail_stopped.end(),
                  [](bool b) { return b; })) {
    return Status::InvalidArgument(
        "fault plan fail-stops every device; at least one must survive");
  }
  return plane;
}

std::vector<int> FaultPlane::FailuresAt(int iter) const {
  std::vector<int> out;
  for (const FaultEvent& ev : events_) {
    if (ev.kind == FaultKind::kFailStop && ev.begin == iter) {
      out.push_back(ev.device);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool FaultPlane::AnyFailStop() const {
  for (const FaultEvent& ev : events_) {
    if (ev.kind == FaultKind::kFailStop) return true;
  }
  return false;
}

double FaultPlane::ComputeSlowdown(int device, int iter) const {
  double factor = 1.0;
  for (const FaultEvent& ev : events_) {
    if (ev.kind == FaultKind::kStraggler && ev.device == device &&
        iter >= ev.begin && iter <= ev.end) {
      factor *= ev.factor;
    }
  }
  return factor;
}

double FaultPlane::LinkScale(int a, int b, int iter) const {
  double scale = 1.0;
  for (const FaultEvent& ev : events_) {
    const bool matches = (ev.link_a == a && ev.link_b == b) ||
                         (ev.link_a == b && ev.link_b == a);
    if (!matches || iter < ev.begin || iter > ev.end) continue;
    switch (ev.kind) {
      case FaultKind::kLinkDegrade:
        scale *= ev.factor;
        break;
      case FaultKind::kLinkDown:
        scale = 0.0;
        break;
      case FaultKind::kLinkFlap:
        // Down for the first `period` iterations of the window, up for the
        // next `period`, and so on.
        if (((iter - ev.begin) / ev.period) % 2 == 0) scale = 0.0;
        break;
      default:
        break;
    }
  }
  return scale;
}

std::vector<FaultPlane::LinkFault> FaultPlane::LinkFaultsAt(int iter) const {
  std::vector<LinkFault> out;
  for (int a = 0; a < num_devices_; ++a) {
    for (int b = a + 1; b < num_devices_; ++b) {
      const double scale = LinkScale(a, b, iter);
      if (scale < 1.0) out.push_back(LinkFault{a, b, scale});
    }
  }
  return out;
}

std::string FaultPlane::Describe() const {
  if (events_.empty()) return "none";
  std::string out;
  for (const FaultEvent& ev : events_) {
    if (!out.empty()) out += ";";
    out += ev.Describe();
  }
  return out;
}

}  // namespace gum::fault
