#include "graph/generators.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace gum::graph {

namespace {

float RandomWeight(Rng& rng, uint32_t bound) {
  return static_cast<float>(1 + rng.NextBounded(bound - 1));
}

}  // namespace

EdgeList Rmat(const RmatOptions& options) {
  GUM_CHECK(options.scale >= 1 && options.scale <= 30)
      << "scale out of range: " << options.scale;
  const VertexId n = VertexId{1} << options.scale;
  const EdgeId m = static_cast<EdgeId>(options.edge_factor * n);
  const double d = 1.0 - options.a - options.b - options.c;
  GUM_CHECK(d >= 0.0) << "RMAT probabilities exceed 1";

  Rng rng(options.seed);
  EdgeList list;
  list.num_vertices = n;
  list.edges.reserve(m);

  for (EdgeId e = 0; e < m; ++e) {
    VertexId src = 0, dst = 0;
    for (int bit = options.scale - 1; bit >= 0; --bit) {
      // Slightly jitter the quadrant probabilities per level (standard
      // "noise" trick that avoids exactly self-similar artifacts).
      const double ab = options.a + options.b;
      const double abc = ab + options.c;
      const double r = rng.NextDouble();
      if (r < options.a) {
        // top-left: nothing set
      } else if (r < ab) {
        dst |= VertexId{1} << bit;
      } else if (r < abc) {
        src |= VertexId{1} << bit;
      } else {
        src |= VertexId{1} << bit;
        dst |= VertexId{1} << bit;
      }
    }
    Edge edge{src, dst, 1.0f};
    if (options.weighted) edge.weight = RandomWeight(rng, 64);
    list.edges.push_back(edge);
  }

  if (options.permute_vertices) {
    std::vector<VertexId> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (VertexId i = n - 1; i > 0; --i) {
      const VertexId j = static_cast<VertexId>(rng.NextBounded(i + 1));
      std::swap(perm[i], perm[j]);
    }
    for (Edge& e : list.edges) {
      e.src = perm[e.src];
      e.dst = perm[e.dst];
    }
  }
  return list;
}

EdgeList RoadGrid(const RoadGridOptions& options) {
  const uint64_t n64 =
      static_cast<uint64_t>(options.rows) * options.cols;
  GUM_CHECK(n64 > 0 && n64 < (uint64_t{1} << 31)) << "grid too large";
  const VertexId n = static_cast<VertexId>(n64);

  Rng rng(options.seed);
  EdgeList list;
  list.num_vertices = n;
  list.edges.reserve(static_cast<size_t>(4.2 * n));

  auto id = [&](uint32_t r, uint32_t c) -> VertexId {
    return static_cast<VertexId>(r * options.cols + c);
  };
  auto add_bidi = [&](VertexId u, VertexId v) {
    const float w =
        options.weighted ? RandomWeight(rng, 16) : 1.0f;
    list.edges.push_back(Edge{u, v, w});
    list.edges.push_back(Edge{v, u, w});
  };

  for (uint32_t r = 0; r < options.rows; ++r) {
    for (uint32_t c = 0; c < options.cols; ++c) {
      // Horizontal edges: always keep column 0 links and the full first row
      // so the graph stays connected (spanning comb).
      if (c + 1 < options.cols) {
        const bool keep = r == 0 || rng.NextBernoulli(options.keep_prob);
        if (keep) add_bidi(id(r, c), id(r, c + 1));
      }
      if (r + 1 < options.rows) {
        const bool keep = c == 0 || rng.NextBernoulli(options.keep_prob);
        if (keep) add_bidi(id(r, c), id(r + 1, c));
      }
      if (options.shortcut_prob > 0 &&
          rng.NextBernoulli(options.shortcut_prob)) {
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        if (v != id(r, c)) add_bidi(id(r, c), v);
      }
    }
  }
  return list;
}

EdgeList WebCrawl(const WebCrawlOptions& options) {
  GUM_CHECK(options.tendril_fraction >= 0 && options.tendril_fraction < 1);
  GUM_CHECK(options.avg_chain_length >= 1u);
  const VertexId n = VertexId{1} << options.scale;
  const VertexId n_core = std::max<VertexId>(
      2, static_cast<VertexId>((1.0 - options.tendril_fraction) * n));

  // Core: locality-preserving RMAT over the first n_core ids.
  RmatOptions core;
  core.scale = options.scale;  // generated over n, then folded into core
  core.edge_factor =
      options.edge_factor * static_cast<double>(n_core) / n;
  core.a = options.a;
  core.b = options.b;
  core.c = options.c;
  core.permute_vertices = false;
  core.weighted = options.weighted;
  core.seed = options.seed;
  EdgeList list = Rmat(core);
  list.num_vertices = n;
  for (Edge& e : list.edges) {
    e.src %= n_core;
    e.dst %= n_core;
  }

  // Tendrils: chains of consecutive ids anchored at random core vertices.
  Rng rng(options.seed ^ 0xC4A1ULL);
  VertexId next = n_core;
  while (next < n) {
    const uint32_t len = static_cast<uint32_t>(
        options.avg_chain_length / 2 +
        rng.NextBounded(options.avg_chain_length));
    const VertexId anchor = static_cast<VertexId>(rng.NextBounded(n_core));
    VertexId prev = anchor;
    for (uint32_t k = 0; k < len && next < n; ++k, ++next) {
      const float w =
          options.weighted ? RandomWeight(rng, 64) : 1.0f;
      list.edges.push_back(Edge{prev, next, w});
      list.edges.push_back(Edge{next, prev, w});
      prev = next;
    }
  }
  return list;
}

EdgeList ErdosRenyi(VertexId num_vertices, EdgeId num_edges, bool weighted,
                    uint64_t seed) {
  GUM_CHECK(num_vertices >= 2);
  Rng rng(seed);
  EdgeList list;
  list.num_vertices = num_vertices;
  list.edges.reserve(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    VertexId src = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId dst = static_cast<VertexId>(rng.NextBounded(num_vertices));
    while (dst == src) {
      dst = static_cast<VertexId>(rng.NextBounded(num_vertices));
    }
    Edge edge{src, dst, 1.0f};
    if (weighted) edge.weight = RandomWeight(rng, 64);
    list.edges.push_back(edge);
  }
  return list;
}

EdgeList SmallWorld(VertexId num_vertices, uint32_t k, double beta,
                    uint64_t seed) {
  GUM_CHECK(num_vertices > 2 * k) << "ring too small for k=" << k;
  Rng rng(seed);
  EdgeList list;
  list.num_vertices = num_vertices;
  list.edges.reserve(static_cast<size_t>(num_vertices) * k * 2);
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (uint32_t j = 1; j <= k; ++j) {
      VertexId v = (u + j) % num_vertices;
      if (rng.NextBernoulli(beta)) {
        v = static_cast<VertexId>(rng.NextBounded(num_vertices));
        if (v == u) v = (u + j) % num_vertices;
      }
      list.edges.push_back(Edge{u, v, 1.0f});
      list.edges.push_back(Edge{v, u, 1.0f});
    }
  }
  return list;
}

}  // namespace gum::graph
