#include <gtest/gtest.h>

#include <numeric>

#include "graph/frontier_features.h"
#include "graph/generators.h"
#include "sim/kernel_cost.h"

namespace gum {
namespace {

using graph::CsrGraph;
using graph::ExtractFrontierFeatures;
using graph::FrontierFeatures;
using graph::VertexId;

CsrGraph Social() {
  auto g = CsrGraph::FromEdgeList(
      graph::Rmat({.scale = 10, .edge_factor = 8, .seed = 2}));
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(FeatureTest, EmptyFrontierIsZero) {
  const CsrGraph g = Social();
  const FrontierFeatures f = ExtractFrontierFeatures(g, {});
  for (double x : f.ToArray()) EXPECT_EQ(x, 0.0);
}

TEST(FeatureTest, SingleVertexFrontier) {
  const CsrGraph g = Social();
  const VertexId v = 7;
  const std::vector<VertexId> frontier = {v};
  const FrontierFeatures f = ExtractFrontierFeatures(g, frontier);
  EXPECT_DOUBLE_EQ(f.avg_out_degree, g.OutDegree(v));
  EXPECT_DOUBLE_EQ(f.avg_in_degree, g.InDegree(v));
  EXPECT_DOUBLE_EQ(f.out_degree_range, 0.0);
  EXPECT_DOUBLE_EQ(f.in_degree_range, 0.0);
  EXPECT_DOUBLE_EQ(f.gini, 0.0);
}

TEST(FeatureTest, WholeGraphAverageMatchesStats) {
  const CsrGraph g = Social();
  std::vector<VertexId> all(g.num_vertices());
  std::iota(all.begin(), all.end(), VertexId{0});
  const FrontierFeatures f = ExtractFrontierFeatures(g, all);
  EXPECT_NEAR(f.avg_out_degree * g.num_vertices(),
              static_cast<double>(g.num_edges()), 1e-6);
  EXPECT_GT(f.gini, 0.3) << "RMAT frontier should be skewed";
  EXPECT_GT(f.entropy, 0.0);
  EXPECT_LE(f.entropy, 1.0);
}

TEST(FeatureTest, HubFrontierMoreSkewedThanUniform) {
  const CsrGraph g = Social();
  // Top-degree frontier vs bottom-degree frontier: ranges differ.
  std::vector<VertexId> all(g.num_vertices());
  std::iota(all.begin(), all.end(), VertexId{0});
  std::sort(all.begin(), all.end(), [&](VertexId a, VertexId b) {
    return g.OutDegree(a) > g.OutDegree(b);
  });
  const std::vector<VertexId> hubs(all.begin(), all.begin() + 32);
  const std::vector<VertexId> tails(all.end() - 32, all.end());
  const FrontierFeatures fh = ExtractFrontierFeatures(g, hubs);
  const FrontierFeatures ft = ExtractFrontierFeatures(g, tails);
  EXPECT_GT(fh.avg_out_degree, ft.avg_out_degree);
}

TEST(FeatureTest, ToArrayOrderStable) {
  FrontierFeatures f;
  f.avg_in_degree = 1;
  f.avg_out_degree = 2;
  f.in_degree_range = 3;
  f.out_degree_range = 4;
  f.gini = 5;
  f.entropy = 6;
  const auto arr = f.ToArray();
  EXPECT_EQ(arr, (std::array<double, 6>{1, 2, 3, 4, 5, 6}));
}

TEST(KernelCostTest, PositiveAndFinite) {
  const sim::DeviceParams dev;
  FrontierFeatures f;
  EXPECT_GT(sim::TrueEdgeCostNs(f, dev), 0.0);
  f.avg_out_degree = 1e6;
  f.gini = 0.99;
  f.out_degree_range = 1e7;
  f.avg_in_degree = 1e6;
  const double cost = sim::TrueEdgeCostNs(f, dev);
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, 1e4) << "cost should stay in a sane ns range";
}

TEST(KernelCostTest, SkewIncreasesCost) {
  const sim::DeviceParams dev;
  FrontierFeatures regular;
  regular.avg_out_degree = 8;
  regular.avg_in_degree = 8;
  regular.entropy = 1.0;
  FrontierFeatures skewed = regular;
  skewed.gini = 0.8;
  skewed.out_degree_range = 5000;
  EXPECT_GT(sim::TrueEdgeCostNs(skewed, dev),
            sim::TrueEdgeCostNs(regular, dev));
}

TEST(KernelCostTest, HubTargetsIncreaseAtomicCost) {
  const sim::DeviceParams dev;
  FrontierFeatures base;
  base.avg_out_degree = 8;
  base.entropy = 0.9;
  FrontierFeatures hubby = base;
  hubby.avg_in_degree = 4096;
  EXPECT_GT(sim::TrueEdgeCostNs(hubby, dev), sim::TrueEdgeCostNs(base, dev));
}

TEST(KernelCostTest, ScalesWithDeviceBaseRate) {
  sim::DeviceParams fast;
  sim::DeviceParams slow;
  slow.base_edge_ns = fast.base_edge_ns * 3;
  FrontierFeatures f;
  f.avg_out_degree = 10;
  f.entropy = 0.8;
  EXPECT_GT(sim::TrueEdgeCostNs(f, slow), sim::TrueEdgeCostNs(f, fast));
}

}  // namespace
}  // namespace gum
