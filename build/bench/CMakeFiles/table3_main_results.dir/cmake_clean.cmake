file(REMOVE_RECURSE
  "CMakeFiles/table3_main_results.dir/table3_main_results.cc.o"
  "CMakeFiles/table3_main_results.dir/table3_main_results.cc.o.d"
  "table3_main_results"
  "table3_main_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_main_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
