#include "ml/model.h"

#include <cmath>

namespace gum::ml {

double Rmsre(const RegressionModel& model, const Dataset& data) {
  if (data.samples.empty()) return 0.0;
  double sum = 0.0;
  for (const Sample& s : data.samples) {
    const double t = s.target;
    if (t == 0.0) continue;
    const double g = model.Predict(s.features);
    const double rel = (g - t) / t;
    sum += rel * rel;
  }
  return std::sqrt(sum / static_cast<double>(data.samples.size()));
}

}  // namespace gum::ml
