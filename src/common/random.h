// Deterministic pseudo-random number generation.
//
// Everything in GUM that needs randomness (graph generators, partitioners,
// model training, noise in the device model) goes through Rng so that every
// test and benchmark is reproducible from a seed. The generator is
// xoshiro256** seeded via SplitMix64, which has good statistical quality and
// is trivially portable.

#ifndef GUM_COMMON_RANDOM_H_
#define GUM_COMMON_RANDOM_H_

#include <cstdint>

namespace gum {

// SplitMix64 step; used for seeding and cheap hash mixing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless 64-bit mix of a value (for hash partitioning etc.).
inline uint64_t HashMix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Standard normal via Box-Muller (one value per call, cached pair).
  double NextGaussian();

  // True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace gum

#endif  // GUM_COMMON_RANDOM_H_
