#include "core/async/async_options.h"

namespace gum::core {

const char* EngineModeName(EngineMode mode) {
  switch (mode) {
    case EngineMode::kBsp:
      return "bsp";
    case EngineMode::kAsync:
      return "async";
  }
  return "unknown";
}

Result<EngineMode> ParseEngineMode(const std::string& name) {
  if (name == "bsp") return EngineMode::kBsp;
  if (name == "async") return EngineMode::kAsync;
  return Status::InvalidArgument("unknown engine mode '" + name +
                                 "' (expected bsp|async)");
}

const char* AsyncWorklistKindName(AsyncWorklistKind kind) {
  switch (kind) {
    case AsyncWorklistKind::kBuckets:
      return "buckets";
    case AsyncWorklistKind::kSmq:
      return "smq";
  }
  return "unknown";
}

Result<AsyncWorklistKind> ParseAsyncWorklistKind(const std::string& name) {
  if (name == "buckets") return AsyncWorklistKind::kBuckets;
  if (name == "smq") return AsyncWorklistKind::kSmq;
  return Status::InvalidArgument("unknown worklist kind '" + name +
                                 "' (expected buckets|smq)");
}

Status ValidateAsyncConfig(const AsyncConfig& config) {
  if (config.delta < 0.0) {
    return Status::InvalidArgument(
        "--delta must be > 0 (omit the flag for the app-aware default)");
  }
  if (config.steal_prob < 0.0 || config.steal_prob > 1.0) {
    return Status::InvalidArgument("--steal-prob must be in [0, 1]");
  }
  if (config.steal_batch_size < 1) {
    return Status::InvalidArgument("--steal-batch must be >= 1");
  }
  if (config.smq_queues < 1) {
    return Status::InvalidArgument("async smq_queues must be >= 1");
  }
  if (config.range_steal_min_victim < 0) {
    return Status::InvalidArgument(
        "async range_steal_min_victim must be >= 0");
  }
  if (config.range_steal_fraction <= 0.0 ||
      config.range_steal_fraction > 1.0) {
    return Status::InvalidArgument(
        "async range_steal_fraction must be in (0, 1]");
  }
  if (config.max_batch < 1) {
    return Status::InvalidArgument("async max_batch must be >= 1");
  }
  return Status::OK();
}

}  // namespace gum::core
