// Ownership stealing (paper §IV, Algorithm 2).
//
// When the per-iteration synchronization overhead p*m rivals the kernel
// time (the long-tail regime), GUM shrinks the communication group: the
// reduction schedule proposes, for every candidate group size m in [1, n],
// which devices survive and who inherits the evicted fragments; the FSteal
// MILP estimates the kernel makespan z(m) under each candidate; and the
// policy minimizing z(m) + p*m wins (Eq. 4).

#ifndef GUM_CORE_OSTEAL_H_
#define GUM_CORE_OSTEAL_H_

#include <vector>

#include "sim/reduction_schedule.h"

namespace gum::core {

struct OStealConfig {
  // Example 5: evaluate OSteal only when the previous iteration's wall time
  // fell below this threshold (synchronization-bound regime).
  double t3_trigger_ms = 2.0;
  bool use_greedy = false;  // LPT instead of the MILP inside the enumeration
};

struct OStealDecision {
  bool evaluated = false;
  int group_size = 0;            // chosen m
  std::vector<int> owner;        // device owning each fragment
  std::vector<int> active;       // surviving devices, ascending
  double predicted_cost_ns = 0;  // z + p*m of the winner
  double decision_host_ms = 0;   // measured wall time of the enumeration
  // Solver effort summed over every candidate group size evaluated.
  int64_t lp_iterations_total = 0;
  int64_t milp_nodes_total = 0;
};

// Enumerates m = 1..n over the reduction schedule. `cost` is the full
// (un-restricted) coefficient matrix from BuildCostMatrix with all devices
// allowed; columns are forbidden per-candidate internally. `sync_per_peer_ns`
// is the estimated p of Eq. (4) in ns. `max_group_size` caps the
// enumeration (0 means every device): after a fail-stop the recovery path
// passes the survivor count so the dead devices' group sizes are never
// candidates.
OStealDecision DecideOSteal(const std::vector<std::vector<double>>& cost,
                            const std::vector<double>& loads,
                            const sim::ReductionSchedule& schedule,
                            double sync_per_peer_ns,
                            const OStealConfig& config,
                            int max_group_size = 0);

}  // namespace gum::core

#endif  // GUM_CORE_OSTEAL_H_
