// Direction-optimized BFS (Beamer's push/pull switching) — the
// algorithm-specific optimization behind Gunrock's strong single-GPU BFS
// numbers (paper Exp-2: "Gunrock's implementation enabled many
// algorithm-specific optimizations").
//
// Level-synchronous; per level the engine picks a direction:
//   push — frontier vertices scatter to out-neighbors (work ~ frontier
//          out-edges);
//   pull — unvisited vertices scan in-neighbors for a parent on the
//          frontier, stopping at the first hit (work ~ scanned in-edges,
//          tiny when the frontier covers most of the graph).
// Switch heuristics follow Beamer: push->pull when the frontier's out-edge
// count exceeds (remaining unvisited edges)/alpha; pull->push when the
// frontier shrinks below |V|/beta.
//
// Depths are identical to plain BFS (both directions are level-exact);
// only the simulated cost differs. Requires a CsrGraph built with in-CSR.

#ifndef GUM_ALGOS_DOBFS_H_
#define GUM_ALGOS_DOBFS_H_

#include <vector>

#include "core/run_result.h"
#include "graph/csr.h"
#include "graph/partition.h"
#include "sim/device.h"
#include "sim/topology.h"

namespace gum::algos {

struct DoBfsOptions {
  sim::DeviceParams device;
  double alpha = 15.0;  // push -> pull threshold
  double beta = 18.0;   // pull -> push threshold
  // Extra per-iteration cost constants mirror the Gunrock baseline's
  // pipeline (barrier + kernel launches).
  int kernels_per_level = 4;
};

struct DoBfsStats {
  int push_levels = 0;
  int pull_levels = 0;
  uint64_t pushed_edges = 0;
  uint64_t pulled_edges = 0;  // scanned in-edges (with early exit)
};

// Runs from `source`; depths_out[v] = level or UINT32_MAX. `stats_out` is
// optional.
core::RunResult DirectionOptimizedBfs(
    const graph::CsrGraph& g, const graph::Partition& partition,
    const sim::Topology& topology, graph::VertexId source,
    const DoBfsOptions& options, std::vector<uint32_t>* depths_out = nullptr,
    DoBfsStats* stats_out = nullptr);

}  // namespace gum::algos

#endif  // GUM_ALGOS_DOBFS_H_
