file(REMOVE_RECURSE
  "CMakeFiles/gum_engine_tests.dir/baselines_test.cc.o"
  "CMakeFiles/gum_engine_tests.dir/baselines_test.cc.o.d"
  "CMakeFiles/gum_engine_tests.dir/dobfs_test.cc.o"
  "CMakeFiles/gum_engine_tests.dir/dobfs_test.cc.o.d"
  "CMakeFiles/gum_engine_tests.dir/engine_edge_cases_test.cc.o"
  "CMakeFiles/gum_engine_tests.dir/engine_edge_cases_test.cc.o.d"
  "CMakeFiles/gum_engine_tests.dir/engine_test.cc.o"
  "CMakeFiles/gum_engine_tests.dir/engine_test.cc.o.d"
  "CMakeFiles/gum_engine_tests.dir/fast_wcc_test.cc.o"
  "CMakeFiles/gum_engine_tests.dir/fast_wcc_test.cc.o.d"
  "CMakeFiles/gum_engine_tests.dir/fsteal_test.cc.o"
  "CMakeFiles/gum_engine_tests.dir/fsteal_test.cc.o.d"
  "CMakeFiles/gum_engine_tests.dir/near_far_test.cc.o"
  "CMakeFiles/gum_engine_tests.dir/near_far_test.cc.o.d"
  "CMakeFiles/gum_engine_tests.dir/osteal_test.cc.o"
  "CMakeFiles/gum_engine_tests.dir/osteal_test.cc.o.d"
  "CMakeFiles/gum_engine_tests.dir/property_test.cc.o"
  "CMakeFiles/gum_engine_tests.dir/property_test.cc.o.d"
  "CMakeFiles/gum_engine_tests.dir/run_result_test.cc.o"
  "CMakeFiles/gum_engine_tests.dir/run_result_test.cc.o.d"
  "gum_engine_tests"
  "gum_engine_tests.pdb"
  "gum_engine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gum_engine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
