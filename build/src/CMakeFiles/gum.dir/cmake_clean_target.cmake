file(REMOVE_RECURSE
  "libgum.a"
)
