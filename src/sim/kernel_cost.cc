#include "sim/kernel_cost.h"

#include <algorithm>
#include <cmath>

namespace gum::sim {

double TrueEdgeCostNs(const graph::FrontierFeatures& w,
                      const DeviceParams& params) {
  const double base = params.base_edge_ns;

  // Scattered gathers: wider average fan-out amortizes per-vertex overhead
  // (fewer, longer coalesced runs) but saturates.
  const double fanout = std::log2(1.0 + w.avg_out_degree);
  const double fanout_factor = 1.0 + 0.9 / (1.0 + 0.5 * fanout);

  // Warp divergence / intra-kernel imbalance from degree diversity; the
  // penalty is super-linear in the (log) range because a single monster
  // vertex serializes its whole warp.
  const double log_range = std::log2(1.0 + w.out_degree_range);
  const double range_term = 0.02 * log_range * log_range +
                            0.05 * std::log2(1.0 + w.in_degree_range);

  // Skewed frontiers: the Gini multiplies both the base AND the divergence
  // penalty (interactions a linear model cannot represent).
  const double skew_factor =
      1.0 + 4.0 * w.gini * w.gini * (1.0 + 0.5 * fanout) +
      0.8 * w.gini * std::log2(1.0 + w.avg_out_degree) / 8.0;

  // Atomic contention: frontiers aiming at hubs (high average in-degree)
  // serialize updates on the same cache lines; contention compounds when
  // the degree distribution is concentrated (low entropy).
  const double log_in = std::log2(1.0 + w.avg_in_degree);
  const double atomic_term =
      0.22 * log_in * log_in / (0.4 + w.entropy + 1e-9);

  // All terms are dimensionless multiples of the device's base per-edge
  // cost, so the cost SHAPE is invariant under device calibration.
  const double cost =
      base * (fanout_factor * skew_factor + range_term + atomic_term);
  return std::max(cost, 0.1 * base);
}

}  // namespace gum::sim
