// Per-query mutable engine state (DESIGN.md §13).
//
// RunContext<App> bundles everything GumEngine::Run mutates: the vertex
// values and frontier, the message store, the expand backends' staging
// arenas, and the apply-phase scratch. A fresh RunContext per run is
// exactly the pre-split engine (the legacy Run overload makes one); a
// long-lived RunContext reused across runs is the serving-mode fast path —
// every buffer keeps its high-water capacity, so steady-state queries
// against one GraphContext stop reallocating. Reuse never changes results:
// each Run re-derives all semantic state (values, frontier, store
// membership) from the app before the first superstep.
//
// The resident-bytes accessors feed the gum_frontier_arena_bytes /
// gum_staging_bytes gauges (serving-mode memory residency, DESIGN.md §10).

#ifndef GUM_CORE_RUN_CONTEXT_H_
#define GUM_CORE_RUN_CONTEXT_H_

#include <vector>

#include "core/expand/expand_backend.h"
#include "core/expand/frontier_scatter.h"
#include "core/expand/spmv.h"
#include "core/message_store.h"
#include "core/superstep.h"
#include "core/vertex_state.h"

namespace gum::core {

template <typename App>
struct RunContext {
  using Value = typename App::Value;
  using Message = typename App::Message;

  // SoA vertex state: dense value array + fragment-major frontier arena.
  VertexState<Value> state;
  MessageStore<Message> store;
  FrontierScatterBackend<App> scatter_backend;
  SpmvBackend<App> spmv_backend;
  ExpandCounters expand_counters;
  ApplyScratch apply_scratch;
  FrontierSoA next_frontier;
  std::vector<double> apply_msgs;

  // Resident bytes retained across queries (capacity, not live size).
  size_t FrontierArenaBytes() const {
    return state.frontier.ArenaBytes() + next_frontier.ArenaBytes();
  }
  size_t StagingBytes() const {
    return scatter_backend.StagingBytes() + spmv_backend.StagingBytes();
  }
};

}  // namespace gum::core

#endif  // GUM_CORE_RUN_CONTEXT_H_
