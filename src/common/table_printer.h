// Fixed-width ASCII table printer used by the benchmark harnesses to emit
// rows in the same layout as the paper's tables.

#ifndef GUM_COMMON_TABLE_PRINTER_H_
#define GUM_COMMON_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace gum {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds one row; cells beyond headers.size() are dropped, missing cells
  // print empty.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 1);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gum

#endif  // GUM_COMMON_TABLE_PRINTER_H_
