// CART regression tree (Table V row 4).
//
// Greedy binary splits minimizing weighted child variance, mean prediction
// at the leaves. Depth / leaf-size limited to avoid memorizing the noise in
// the running logs.

#ifndef GUM_ML_DECISION_TREE_H_
#define GUM_ML_DECISION_TREE_H_

#include <vector>

#include "ml/model.h"

namespace gum::ml {

struct DecisionTreeOptions {
  int max_depth = 12;
  int min_samples_leaf = 8;
  int min_samples_split = 16;
};

class DecisionTreeRegressor : public RegressionModel {
 public:
  explicit DecisionTreeRegressor(DecisionTreeOptions options = {})
      : options_(options) {}

  Status Fit(const Dataset& data) override;
  double Predict(std::span<const double> features) const override;
  std::string name() const override { return "decision_tree"; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    int feature = -1;        // -1 => leaf
    double threshold = 0.0;  // go left if x[feature] <= threshold
    int left = -1, right = -1;
    double value = 0.0;      // leaf prediction
  };

  int BuildNode(std::vector<int>& indices, int begin, int end, int depth,
                const Dataset& data);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
};

}  // namespace gum::ml

#endif  // GUM_ML_DECISION_TREE_H_
