// Ablation: the FSteal decision procedure (DESIGN.md "design choices").
//
// Compares four per-iteration policies on the same workload:
//   none    — no frontier stealing
//   greedy  — LPT heuristic (whole fragments, no splitting)
//   lp      — LP relaxation + rounding (GUM's default; the paper rounds too)
//   milp    — exact branch & bound (warm-started)
// Reports end-to-end simulated time and the total host-side decision cost.
// The paper's implicit claim: the LP is as good as exact while staying
// cheap, and both beat the classic peek-and-grab-style greedy.

#include <iostream>

#include "algos/apps.h"
#include "bench/datasets.h"
#include "bench/runner.h"
#include "common/table_printer.h"
#include "core/engine.h"
#include "graph/partition.h"

using namespace gum;        // NOLINT(build/namespaces)
using namespace gum::bench; // NOLINT(build/namespaces)

int main() {
  std::cout << "=== Ablation: FSteal decision policy — SSSP, 8 vGPUs, seg "
               "partition ===\n\n";
  TablePrinter tp({"Graph", "Policy", "total (ms)", "stolen edges",
                   "decisions", "host decision ms"});
  for (const std::string abbr : {std::string("SW"), std::string("U5")}) {
    const DatasetGraphs data = BuildDataset(abbr);
    const graph::CsrGraph& g = data.directed;
    auto partition = graph::PartitionGraph(
        g, 8, {.kind = graph::PartitionerKind::kSegment});
    const auto topology = sim::Topology::HybridCubeMesh8();

    for (const std::string policy : {"none", "greedy", "lp", "milp"}) {
      core::EngineOptions opt;
      opt.device = BenchDeviceParams();
      opt.enable_osteal = false;
      opt.enable_fsteal = policy != "none";
      opt.fsteal.use_greedy = policy == "greedy";
      opt.fsteal.exact_milp = policy == "milp";
      core::GumEngine<algos::SsspApp> engine(&g, *partition, topology, opt);
      algos::SsspApp app;
      app.source = PickSource(g);
      const core::RunResult r = engine.Run(app);
      tp.AddRow({abbr, policy, TablePrinter::Num(r.total_ms, 1),
                 TablePrinter::Num(r.stolen_edges_total, 0),
                 std::to_string(r.fsteal_applied_iterations),
                 TablePrinter::Num(r.fsteal_decision_host_ms_total, 2)});
    }
    std::cerr << "done " << abbr << "\n";
  }
  tp.Print(std::cout);
  std::cout << "\nObserved shape: lp == milp in end-to-end time (the "
               "rounding loss is below vertex granularity) at a fraction of "
               "milp's host cost; whole-fragment greedy NEVER improves on "
               "the identity assignment when each device owns one fragment "
               "— splitting frontiers is what makes FSteal work.\n";
  return 0;
}
