#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/random.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/linear_regression.h"
#include "ml/model.h"
#include "ml/polynomial_regression.h"
#include "ml/svr.h"

namespace gum::ml {
namespace {

// Small shared dataset for the whole suite (generation dominates runtime).
const Dataset& CostData() {
  static const Dataset* data = [] {
    CostDatasetOptions opt;
    opt.frontiers_per_graph = 120;
    opt.noise_stddev = 0.03;
    return new Dataset(GenerateDefaultCostDataset(opt));
  }();
  return *data;
}

TEST(LinearRegressionTest, FitsExactLinearFunction) {
  Dataset data;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.NextUniform(0, 10), b = rng.NextUniform(0, 5);
    data.samples.push_back({{a, b}, 3.0 * a - 2.0 * b + 7.0});
  }
  LinearRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  const std::vector<double> x = {2.0, 1.0};
  EXPECT_NEAR(model.Predict(x), 3.0 * 2 - 2.0 * 1 + 7.0, 1e-6);
}

TEST(LinearRegressionTest, EmptyDatasetRejected) {
  LinearRegression model;
  EXPECT_FALSE(model.Fit(Dataset{}).ok());
}

TEST(PolynomialRegressionTest, FitsQuadratic) {
  Dataset data;
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.NextUniform(0.5, 4.0);
    data.samples.push_back({{a}, 1.0 + a * a});
  }
  PolynomialRegression model(3);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_LT(Rmsre(model, data), 0.05);
}

TEST(PolynomialRegressionTest, TermCountMatchesCombinatorics) {
  Dataset data;
  data.samples.push_back({{1, 1, 1, 1, 1, 1}, 1.0});
  data.samples.push_back({{2, 1, 0, 1, 3, 1}, 2.0});
  PolynomialRegression model(4);
  ASSERT_TRUE(model.Fit(data).ok());
  // C(6 + 4, 4) = 210 monomials of degree <= 4 over 6 variables.
  EXPECT_EQ(model.num_terms(), 210);
}

TEST(DecisionTreeTest, FitsPiecewiseConstant) {
  Dataset data;
  for (int i = 0; i < 200; ++i) {
    const double x = i / 200.0;
    data.samples.push_back({{x}, x < 0.5 ? 1.0 : 5.0});
  }
  DecisionTreeRegressor model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_NEAR(model.Predict(std::vector<double>{0.2}), 1.0, 1e-9);
  EXPECT_NEAR(model.Predict(std::vector<double>{0.9}), 5.0, 1e-9);
  EXPECT_GT(model.num_nodes(), 1);
}

TEST(DecisionTreeTest, RespectsLeafSizeLimits) {
  Dataset data;
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    data.samples.push_back({{rng.NextDouble()}, rng.NextDouble()});
  }
  DecisionTreeOptions opt;
  opt.max_depth = 2;
  DecisionTreeRegressor model(opt);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_LE(model.num_nodes(), 7);  // depth 2 => at most 7 nodes
}

TEST(SvrTest, FitsSmoothFunction) {
  Dataset data;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.NextUniform(-2, 2);
    data.samples.push_back({{a}, 2.0 + std::sin(a)});
  }
  SvrOptions opt;
  opt.epochs = 150;
  RbfSvr model(opt);
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_LT(Rmsre(model, data), 0.1);
}

TEST(RmsreTest, ZeroForPerfectModel) {
  struct Oracle : RegressionModel {
    Status Fit(const Dataset&) override { return Status::OK(); }
    double Predict(std::span<const double> f) const override {
      return f[0];
    }
    std::string name() const override { return "oracle"; }
  };
  Dataset data;
  data.samples.push_back({{2.0}, 2.0});
  data.samples.push_back({{5.0}, 5.0});
  Oracle oracle;
  EXPECT_DOUBLE_EQ(Rmsre(oracle, data), 0.0);
}

TEST(RmsreTest, RelativeNotAbsolute) {
  struct ConstantModel : RegressionModel {
    Status Fit(const Dataset&) override { return Status::OK(); }
    double Predict(std::span<const double>) const override { return 2.0; }
    std::string name() const override { return "const"; }
  };
  Dataset data;
  data.samples.push_back({{0.0}, 1.0});  // rel err 1.0
  ConstantModel model;
  EXPECT_NEAR(Rmsre(model, data), 1.0, 1e-12);
}

// ---- The Table-V ordering property: on the cost-model learning task the
// polynomial/SVR/tree models must beat plain linear regression on RMSRE. ----

TEST(ModelComparisonTest, PolynomialBeatsLinearOnCostData) {
  const auto [train, test] = CostData().Split(0.8, 11);
  LinearRegression linear;
  PolynomialRegression poly(4);
  ASSERT_TRUE(linear.Fit(train).ok());
  ASSERT_TRUE(poly.Fit(train).ok());
  const double lin = Rmsre(linear, test);
  const double pol = Rmsre(poly, test);
  EXPECT_LT(pol, lin) << "poly=" << pol << " linear=" << lin;
  EXPECT_LT(pol, 0.25) << "polynomial model should be accurate";
}

TEST(ModelComparisonTest, TreeIsReasonableOnCostData) {
  const auto [train, test] = CostData().Split(0.8, 12);
  DecisionTreeRegressor tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  EXPECT_LT(Rmsre(tree, test), 0.6);
}

TEST(ModelComparisonTest, SvrIsAccurateOnCostData) {
  const auto [train, test] = CostData().Split(0.8, 13);
  RbfSvr svr;
  ASSERT_TRUE(svr.Fit(train).ok());
  EXPECT_LT(Rmsre(svr, test), 0.35);
}

TEST(ModelComparisonTest, AllModelsPredictPositiveCosts) {
  const auto [train, test] = CostData().Split(0.8, 14);
  std::vector<std::unique_ptr<RegressionModel>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<PolynomialRegression>(4));
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<RbfSvr>());
  for (auto& model : models) {
    ASSERT_TRUE(model->Fit(train).ok()) << model->name();
    for (const Sample& s : test.samples) {
      EXPECT_GT(model->Predict(s.features), 0.0) << model->name();
    }
  }
}

}  // namespace
}  // namespace gum::ml
