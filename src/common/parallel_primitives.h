// Scan / search primitives used by the frontier-stealing selection step
// (paper Algorithm 1, lines 9-18): exclusive prefix sums over frontier
// out-degrees and a SortedSearch that maps per-destination edge quotas to
// contiguous vertex ranges.
//
// On the real system these are GPU kernels (CUB/ModernGPU); here they are
// the host equivalents with identical semantics.

#ifndef GUM_COMMON_PARALLEL_PRIMITIVES_H_
#define GUM_COMMON_PARALLEL_PRIMITIVES_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace gum {

// Exclusive prefix sum: out[i] = sum of in[0..i), out.size() == in.size()+1,
// out.back() == total.
template <typename T>
std::vector<T> ExclusivePrefixSum(const std::vector<T>& in) {
  std::vector<T> out(in.size() + 1);
  T running = T{};
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = running;
    running += in[i];
  }
  out[in.size()] = running;
  return out;
}

// Inclusive prefix sum: out[i] = sum of in[0..i].
template <typename T>
std::vector<T> InclusivePrefixSum(const std::vector<T>& in) {
  std::vector<T> out(in.size());
  T running = T{};
  for (size_t i = 0; i < in.size(); ++i) {
    running += in[i];
    out[i] = running;
  }
  return out;
}

// SortedSearch (lower-bound flavor): for each needle, the index of the first
// element of haystack that is >= needle. haystack must be sorted ascending.
// Matches ModernGPU's SortedSearch<MgpuBoundsLower> used by Algorithm 1 to
// convert edge-count splits into vertex split points.
template <typename T>
std::vector<size_t> SortedSearchLower(const std::vector<T>& haystack,
                                      const std::vector<T>& needles) {
  std::vector<size_t> out(needles.size());
  for (size_t i = 0; i < needles.size(); ++i) {
    out[i] = static_cast<size_t>(
        std::lower_bound(haystack.begin(), haystack.end(), needles[i]) -
        haystack.begin());
  }
  return out;
}

}  // namespace gum

#endif  // GUM_COMMON_PARALLEL_PRIMITIVES_H_
