#include <gtest/gtest.h>

#include "algos/dobfs.h"
#include "algos/reference.h"
#include "tests/test_util.h"

namespace gum::algos {
namespace {

using graph::VertexId;
using test::MakePartition;
using test::RoadGraph;
using test::SocialGraph;
using test::Topo;

TEST(DoBfsTest, DepthsMatchReference) {
  const auto g = SocialGraph(10, 51);
  std::vector<uint32_t> depths;
  DirectionOptimizedBfs(g, MakePartition(g, 4), Topo(4), 7, {}, &depths);
  EXPECT_EQ(depths, ref::Bfs(g, 7));
}

TEST(DoBfsTest, PullEngagesOnSocialGraphs) {
  // On a small-diameter skewed graph the mid-BFS frontier covers most
  // edges, which is exactly when pull mode pays off.
  const auto g = SocialGraph(11, 52);
  DoBfsStats stats;
  std::vector<uint32_t> depths;
  DirectionOptimizedBfs(g, MakePartition(g, 1), Topo(1),
                        test::MaxDegreeSource(g), {}, &depths, &stats);
  EXPECT_GT(stats.pull_levels, 0);
  EXPECT_GT(stats.push_levels, 0) << "first levels always push";
  EXPECT_EQ(depths, ref::Bfs(g, test::MaxDegreeSource(g)));
}

TEST(DoBfsTest, PullNeverEngagesOnRoadNetworks) {
  // Road wavefronts peak at ~8*side edges against ~4*side^2 total, so on a
  // grid big enough (side > 2*alpha) the alpha fraction is never reached
  // and the heuristic stays in push mode throughout.
  const auto g = RoadGraph(80, 53);
  DoBfsStats stats;
  DirectionOptimizedBfs(g, MakePartition(g, 2), Topo(2), 0, {}, nullptr,
                        &stats);
  EXPECT_EQ(stats.pull_levels, 0);
}

TEST(DoBfsTest, PullScansFewerEdgesThanPushWould) {
  const auto g = SocialGraph(11, 54);
  DoBfsStats stats;
  DirectionOptimizedBfs(g, MakePartition(g, 1), Topo(1),
                        test::MaxDegreeSource(g), {}, nullptr, &stats);
  // Early-exit pull must touch fewer in-edges than the full edge count the
  // pushed levels would have re-scanned.
  EXPECT_LT(stats.pulled_edges + stats.pushed_edges, 2 * g.num_edges());
}

TEST(DoBfsTest, FasterThanForcedPush) {
  const auto g = SocialGraph(11, 55);
  const auto part = MakePartition(g, 1);
  DoBfsOptions adaptive;
  DoBfsOptions push_only;
  push_only.alpha = 1e18;  // never switch to pull
  const auto fast = DirectionOptimizedBfs(g, part, Topo(1),
                                          test::MaxDegreeSource(g), adaptive);
  const auto slow = DirectionOptimizedBfs(g, part, Topo(1),
                                          test::MaxDegreeSource(g), push_only);
  EXPECT_LT(fast.total_ms, slow.total_ms);
}

TEST(DoBfsTest, MultiDeviceDepthsStillExact) {
  const auto g = SocialGraph(10, 56);
  for (int devices : {2, 5, 8}) {
    std::vector<uint32_t> depths;
    DirectionOptimizedBfs(g, MakePartition(g, devices), Topo(devices), 3,
                          {}, &depths);
    EXPECT_EQ(depths, ref::Bfs(g, 3)) << devices << " devices";
  }
}

}  // namespace
}  // namespace gum::algos
