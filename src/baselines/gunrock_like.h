// Gunrock-like baseline engine (paper §VI "Gunrock" comparator).
//
// Same BSP substrate and App concept as the GUM engine, with the execution
// model the paper attributes to multi-GPU Gunrock:
//   * static edge-cut partition, every fragment processed by its owner —
//     no frontier or ownership stealing;
//   * all n devices synchronize every iteration (p * n overhead), however
//     small the frontier — the long-tail pathology of Fig. 1;
//   * communication is not topology-aware: peers talk over their direct
//     link or PCIe, never routing through a transit GPU;
//   * the "separate" kernel bins outgoing vertices into one buffer per peer
//     every iteration (Fig. 4a), without GUM's early per-vertex message
//     aggregation;
//   * strong intra-GPU, algorithm-specific optimizations (direction-
//     optimized BFS, near-far SSSP) modeled as a compute-rate boost that is
//     most effective on a single GPU (paper Exp-2 discussion).
//
// The Scatter/Combine/Apply plumbing is the shared frontier-scatter
// backend (core/expand/frontier_scatter.h + core/message_store.h) with the
// identity plan — one work unit per non-empty fragment, executed by its
// owner. Only the timing model above is Gunrock-specific: it is
// reconstructed per fragment from the backend's counter matrices (one unit
// per non-empty fragment under the identity plan, so the per-fragment
// cells equal the old per-unit counters bit for bit).

#ifndef GUM_BASELINES_GUNROCK_LIKE_H_
#define GUM_BASELINES_GUNROCK_LIKE_H_

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "core/expand/expand_backend.h"
#include "core/expand/frontier_scatter.h"
#include "core/message_store.h"
#include "core/run_result.h"
#include "core/superstep.h"
#include "core/vertex_state.h"
#include "graph/csr.h"
#include "graph/frontier_features.h"
#include "graph/partition.h"
#include "sim/comm_plane.h"
#include "sim/device.h"
#include "sim/kernel_cost.h"
#include "sim/timeline.h"
#include "sim/topology.h"

namespace gum::baselines {

struct GunrockOptions {
  sim::DeviceParams device;
  // Compute-rate multiplier from algorithm-specific kernels; fully effective
  // on one GPU, partially effective across GPUs.
  double single_gpu_compute_factor = 0.70;
  double multi_gpu_compute_factor = 0.95;
  int max_iterations = 200000;
  bool record_iteration_stats = false;
  // Host threads for the superstep runtime; <= 0 = hardware concurrency,
  // 1 = serial. Simulated results are identical for every setting.
  int num_host_threads = 0;
  // Destination shards for the message plane's merge/apply parallelism;
  // <= 0 matches the resolved host thread count. Results are identical for
  // every setting (core/message_store.h ShardMap).
  int num_msg_shards = 0;
  // Interconnect contention model (sim/comm_plane.h). The engine's plane
  // uses RoutePolicy::kDirectOnly either way — Gunrock never routes through
  // a transit GPU.
  sim::ContentionModel contention = sim::ContentionModel::kOff;
};

template <typename App>
class GunrockLikeEngine {
 public:
  using VertexId = graph::VertexId;
  using Value = typename App::Value;
  using Message = typename App::Message;

  GunrockLikeEngine(const graph::CsrGraph* g, graph::Partition partition,
                    sim::Topology topology, GunrockOptions options)
      : g_(g),
        partition_(std::move(partition)),
        topology_(std::move(topology)),
        options_(options) {
    GUM_CHECK(partition_.num_parts == topology_.num_devices());
    host_threads_ = options_.num_host_threads <= 0
                        ? ThreadPool::HardwareThreads()
                        : options_.num_host_threads;
    if (host_threads_ > 1) {
      pool_ = std::make_unique<ThreadPool>(host_threads_);
    }
  }

  core::RunResult Run(App& app, std::vector<Value>* values_out = nullptr) {
    const int n = partition_.num_parts;
    const VertexId num_v = g_->num_vertices();
    const sim::DeviceParams& dev = options_.device;
    const double p_ns = dev.sync_per_peer_us * 1000.0;
    const double compute_factor = n == 1
                                      ? options_.single_gpu_compute_factor
                                      : options_.multi_gpu_compute_factor;

    core::RunResult result;
    result.timeline = sim::Timeline(n);
    sim::CommPlane plane(topology_, options_.contention,
                         sim::RoutePolicy::kDirectOnly);

    core::VertexState<Value> state;
    auto& values = state.values;
    auto& frontier = state.frontier;
    values.resize(num_v);
    for (VertexId v = 0; v < num_v; ++v) values[v] = app.InitValue(v);
    frontier.BuildByOwner(num_v, partition_.owner, n, [&app](VertexId v) {
      return app.IsInitiallyActive(v);
    });
    core::MessageStore<Message> store(num_v);
    const core::ShardMap shard_map(num_v, options_.num_msg_shards > 0
                                              ? options_.num_msg_shards
                                              : host_threads_);
    core::FrontierScatterBackend<App> backend;
    core::ExpandCounters expand_counters;
    core::ApplyScratch apply_scratch;
    core::FrontierSoA next_frontier;
    next_frontier.Reset(n);

    // Identity plan: fragment i is always expanded by device i.
    const core::FStealDecision no_steal;
    const std::vector<double> no_loads(n, 0.0);
    std::vector<int> owner_of_fragment(n);
    for (int i = 0; i < n; ++i) owner_of_fragment[i] = i;

    const int fixed_rounds = app.fixed_rounds();

    for (int iter = 0; iter < options_.max_iterations; ++iter) {
      if (fixed_rounds >= 0) {
        if (iter >= fixed_rounds) break;
        frontier.Assign(partition_.part_vertices);
      }
      if (fixed_rounds < 0 && frontier.TotalSize() == 0) break;

      {
        GUM_TRACE_SCOPE("gunrock.expand");
        backend.Expand(pool_.get(), *g_, partition_, /*hub_cache=*/nullptr,
                       owner_of_fragment, /*active=*/{}, no_steal, no_loads,
                       app, values, frontier, shard_map, store,
                       &expand_counters);
      }
      result.edges_processed += expand_counters.edges_processed;

      // Gunrock-specific timing per fragment (identity plan: one unit per
      // non-empty fragment, fragments ascending, so the counter matrices'
      // diagonal cells equal the old per-unit counters). Pass 1 charges
      // compute/serial/overhead and enqueues each fragment's transfers
      // (local fetch, then one bin per peer — the topology-oblivious
      // direct/PCIe path); Settle prices them jointly; pass 2 posts the
      // buckets.
      sim::TransferBatch batch;
      std::vector<double> frag_compute_ns(n, 0.0);
      std::vector<double> frag_serial_ns(n, 0.0);
      for (int i = 0; i < n; ++i) {
        if (frontier.FragmentSize(i) == 0) continue;
        const auto features =
            graph::ExtractFrontierFeatures(*g_, frontier.Fragment(i));
        const double edge_cost_ns =
            sim::TrueEdgeCostNs(features, dev) * compute_factor;
        const double edges = expand_counters.edges_done[i][i];

        frag_compute_ns[i] = edges * edge_cost_ns;
        batch.Add(i, i, edges * dev.bytes_per_remote_edge, i);
        double serial_ns = 0;
        for (int f = 0; f < n; ++f) {
          const double count = expand_counters.raw_msgs[i][f];
          result.messages_sent += static_cast<uint64_t>(count);
          if (count <= 0) continue;
          const double bytes = count * dev.bytes_per_message;
          serial_ns += bytes / dev.serialization_gbps;
          if (f != i) batch.Add(i, f, bytes, i);
        }
        // The separate kernel always runs with one bin per peer.
        serial_ns += 3000.0 * std::max(1, n - 1);
        frag_serial_ns[i] = serial_ns;
      }
      const sim::SettleResult comm = plane.Settle(batch);
      const double overhead_ns = 5 * dev.kernel_launch_us * 1000.0 + p_ns * n;
      for (int i = 0; i < n; ++i) {
        if (frontier.FragmentSize(i) == 0) continue;
        result.timeline.Add(iter, i, sim::TimeCategory::kCompute,
                            frag_compute_ns[i] / 1e6);
        result.timeline.Add(iter, i, sim::TimeCategory::kCommunication,
                            comm.tag_comm_ns[i] / 1e6);
        result.timeline.Add(iter, i, sim::TimeCategory::kSerialization,
                            frag_serial_ns[i] / 1e6);
        result.timeline.Add(iter, i, sim::TimeCategory::kOverhead,
                            overhead_ns / 1e6);
      }
      // Idle devices still participate in the barrier.
      for (int i = 0; i < n; ++i) {
        if (frontier.FragmentSize(i) == 0 && n > 1) {
          result.timeline.Add(iter, i, sim::TimeCategory::kOverhead,
                              p_ns * n / 1e6);
        }
      }

      {
        GUM_TRACE_SCOPE("gunrock.apply");
        if (fixed_rounds >= 0) {
          core::ApplySuperstep(pool_.get(), shard_map, partition_, app,
                               store, values, /*fixed_rounds=*/true,
                               &apply_scratch, nullptr, nullptr);
        } else {
          core::ApplySuperstep(pool_.get(), shard_map, partition_, app,
                               store, values, /*fixed_rounds=*/false,
                               &apply_scratch, &next_frontier, nullptr);
          std::swap(frontier, next_frontier);
        }
      }

      result.total_ms += result.timeline.IterationWall(iter);
      result.iterations = iter + 1;
    }

    result.link_bytes = plane.link_bytes();
    result.payload_bytes = plane.payload_bytes();
    result.link_busy_ms = plane.link_busy_ms();

    if (values_out != nullptr) *values_out = std::move(values);
    return result;
  }

 private:
  const graph::CsrGraph* g_;
  graph::Partition partition_;
  sim::Topology topology_;
  GunrockOptions options_;
  int host_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace gum::baselines

#endif  // GUM_BASELINES_GUNROCK_LIKE_H_
