// Dense two-phase primal simplex.
//
// Phase 1 minimizes the sum of artificial variables to find a basic feasible
// point; phase 2 optimizes the real objective. Bland's rule is engaged after
// a stall threshold to guarantee termination. Suitable for the small dense
// programs GUM produces every iteration (tens of variables/constraints).

#ifndef GUM_SOLVER_SIMPLEX_H_
#define GUM_SOLVER_SIMPLEX_H_

#include "common/status.h"
#include "solver/linear_program.h"

namespace gum::solver {

struct SimplexOptions {
  int max_iterations = 20000;
  double tolerance = 1e-9;
};

// Returns the optimal solution, Status::Infeasible, or Status::Unbounded.
Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const SimplexOptions& options = {});

}  // namespace gum::solver

#endif  // GUM_SOLVER_SIMPLEX_H_
