// Per-destination in-edge structure for the SpMV pull gather (extracted
// from core/expand/spmv.h so the immutable serving substrate — see
// core/graph_context.h — can own one shared copy across every query).
//
// Unlike the CSR's in-adjacency (sorted by source id, no weights), each
// destination's sources appear in the canonical combine order — (owner
// fragment ascending, source vertex ascending) — and carry the out-edge's
// weight. The pull gather therefore reproduces every combine chain of the
// scatter path bit for bit (see the determinism notes in spmv.h).

#ifndef GUM_CORE_EXPAND_PULL_EDGES_H_
#define GUM_CORE_EXPAND_PULL_EDGES_H_

#include <vector>

#include "graph/csr.h"
#include "graph/partition.h"
#include "graph/types.h"

namespace gum::core {

struct PullEdges {
  std::vector<graph::EdgeId> offsets;    // num_vertices + 1
  std::vector<graph::VertexId> sources;  // concatenated per destination
  std::vector<float> weights;            // parallel to sources; empty when
                                         // the graph is unweighted
  bool built = false;

  void Build(const graph::CsrGraph& g, const graph::Partition& partition);
};

}  // namespace gum::core

#endif  // GUM_CORE_EXPAND_PULL_EDGES_H_
