// Groute's connected-components algorithm (used for the paper's WCC rows).
//
// Unlike the generic label-propagation WCC (which needs ~diameter
// supersteps), Groute's CC is diameter-independent: every device builds a
// union-find forest over the edges it owns, the devices then exchange
// boundary labels (min per vertex, reduced at the vertex's owner) over the
// ring, re-hook locally, and repeat until no label changes. Convergence
// takes O(log |V|) rounds even on 2000-hop road networks — which is exactly
// why the real Groute crushes BSP engines on road-network WCC in paper
// Table III while losing the single-source traversals.
//
// Results are validated against the same union-find reference as every
// other engine; input must be a symmetrized CsrGraph.

#ifndef GUM_BASELINES_GROUTE_CC_H_
#define GUM_BASELINES_GROUTE_CC_H_

#include <vector>

#include "core/run_result.h"
#include "graph/csr.h"
#include "graph/partition.h"
#include "sim/comm_plane.h"
#include "sim/device.h"

namespace gum::baselines {

struct GrouteCcOptions {
  sim::DeviceParams device;
  // Per-round per-device overhead: hooking kernel launches + worklist
  // bookkeeping.
  double round_overhead_us = 40.0;
  double ring_gbps = 25.0;
  int max_rounds = 64;  // safety rail; expected rounds ~ log2(|V|)
  // Interconnect contention model for the per-round boundary exchange.
  sim::ContentionModel contention = sim::ContentionModel::kOff;
};

class GrouteCcEngine {
 public:
  GrouteCcEngine(const graph::CsrGraph* g, graph::Partition partition,
                 GrouteCcOptions options);

  // Runs to convergence; labels_out[v] = min vertex id of v's component.
  core::RunResult Run(std::vector<graph::VertexId>* labels_out = nullptr);

 private:
  const graph::CsrGraph* g_;
  graph::Partition partition_;
  GrouteCcOptions options_;
};

}  // namespace gum::baselines

#endif  // GUM_BASELINES_GROUTE_CC_H_
