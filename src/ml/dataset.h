// Training data for the learned cost model (paper §III-B "Model learning").
//
// A sample pairs the Table-I characteristics of one fragment-frontier with
// the observed per-edge computational cost t_i. The paper extracts samples
// from running logs of BFS/PR/SSSP/CC over 624 graphs; GenerateCostDataset
// reproduces the pipeline against the virtual substrate: it samples diverse
// frontiers from a corpus of generated graphs and records the substrate's
// true kernel cost with measurement noise.

#ifndef GUM_ML_DATASET_H_
#define GUM_ML_DATASET_H_

#include <vector>

#include "common/status.h"
#include "graph/csr.h"
#include "sim/device.h"

namespace gum::ml {

struct Sample {
  std::vector<double> features;  // Table-I metric variables
  double target = 0.0;           // observed per-edge cost (ns)
};

struct Dataset {
  std::vector<Sample> samples;

  size_t size() const { return samples.size(); }
  int feature_dim() const {
    return samples.empty() ? 0
                           : static_cast<int>(samples[0].features.size());
  }

  // Deterministic shuffle + split; fraction in (0, 1) goes to the first
  // returned set.
  std::pair<Dataset, Dataset> Split(double fraction, uint64_t seed) const;
};

struct CostDatasetOptions {
  int frontiers_per_graph = 160;
  double noise_stddev = 0.03;  // multiplicative log-normal-ish noise
  uint64_t seed = 7;
  // Device whose kernels the running logs came from. MUST match the device
  // the trained model will steer (the engine's cost matrix is in the same
  // ns units).
  sim::DeviceParams device;
};

// Samples frontiers of many shapes (uniform random, hub-biased, id-local,
// single-vertex) from each graph, extracts Table-I features and records the
// substrate's true cost with noise.
Dataset GenerateCostDataset(const std::vector<const graph::CsrGraph*>& corpus,
                            const CostDatasetOptions& options = {});

// Builds a small default corpus (RMAT social/web analogs, road grids,
// Erdos-Renyi, small-world) and generates a dataset from it. Stand-in for
// the paper's 624 networkrepository graphs.
Dataset GenerateDefaultCostDataset(const CostDatasetOptions& options = {});

}  // namespace gum::ml

#endif  // GUM_ML_DATASET_H_
