#include "sim/timeline.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace gum::sim {

const char* TimeCategoryName(TimeCategory cat) {
  switch (cat) {
    case TimeCategory::kCompute:
      return "computation";
    case TimeCategory::kCommunication:
      return "communication";
    case TimeCategory::kSerialization:
      return "serialization";
    case TimeCategory::kOverhead:
      return "overhead";
  }
  return "unknown";
}

void Timeline::Add(int iter, int device, TimeCategory cat, double ms) {
  GUM_CHECK(device >= 0 && device < num_devices_);
  GUM_CHECK(iter >= 0);
  if (iter >= static_cast<int>(iterations_.size())) {
    iterations_.resize(iter + 1,
                       std::vector<DeviceCell>(num_devices_));
  }
  iterations_[iter][device].ms[static_cast<int>(cat)] += ms;
}

double Timeline::Get(int iter, int device, TimeCategory cat) const {
  return iterations_[iter][device].ms[static_cast<int>(cat)];
}

double Timeline::DeviceIterationTotal(int iter, int device) const {
  double total = 0;
  for (double v : iterations_[iter][device].ms) total += v;
  return total;
}

double Timeline::IterationWall(int iter) const {
  double wall = 0;
  for (int d = 0; d < num_devices_; ++d) {
    wall = std::max(wall, DeviceIterationTotal(iter, d));
  }
  return wall;
}

double Timeline::TotalByCategory(TimeCategory cat) const {
  double total = 0;
  for (int it = 0; it < num_iterations(); ++it) {
    for (int d = 0; d < num_devices_; ++d) total += Get(it, d, cat);
  }
  return total;
}

double Timeline::TotalWall() const {
  double total = 0;
  for (int it = 0; it < num_iterations(); ++it) total += IterationWall(it);
  return total;
}

double Timeline::StallFraction() const {
  double busy = 0, capacity = 0;
  for (int it = 0; it < num_iterations(); ++it) {
    const double wall = IterationWall(it);
    int active = 0;
    for (int d = 0; d < num_devices_; ++d) {
      const double t = DeviceIterationTotal(it, d);
      if (t > 0) {
        busy += t;
        ++active;
      }
    }
    capacity += wall * active;
  }
  if (capacity <= 0) return 0;
  return 1.0 - busy / capacity;
}

int Timeline::ActiveDevices(int iter) const {
  int active = 0;
  for (int d = 0; d < num_devices_; ++d) {
    if (DeviceIterationTotal(iter, d) > 0) ++active;
  }
  return active;
}

void Timeline::WriteCsv(std::ostream& os) const {
  os << "iteration,device,compute_ms,communication_ms,serialization_ms,"
        "overhead_ms\n";
  for (int it = 0; it < num_iterations(); ++it) {
    for (int d = 0; d < num_devices_; ++d) {
      if (DeviceIterationTotal(it, d) == 0.0) continue;
      os << it << ',' << d;
      for (int c = 0; c < kNumTimeCategories; ++c) {
        os << ',' << iterations_[it][d].ms[c];
      }
      os << '\n';
    }
  }
}

std::string Timeline::RenderAscii(int max_columns) const {
  std::ostringstream os;
  const int iters = num_iterations();
  if (iters == 0) return "(empty timeline)\n";
  const int bucket = std::max(1, (iters + max_columns - 1) / max_columns);
  const int columns = (iters + bucket - 1) / bucket;
  os << "utilization (rows=devices, cols=" << bucket
     << "-iteration buckets; '#'>=90% busy, '+'>=50%, '.'>0, ' '=idle)\n";
  for (int d = 0; d < num_devices_; ++d) {
    os << "GPU" << d << " |";
    for (int col = 0; col < columns; ++col) {
      double busy = 0, wall = 0;
      for (int it = col * bucket; it < std::min(iters, (col + 1) * bucket);
           ++it) {
        busy += DeviceIterationTotal(it, d);
        wall += IterationWall(it);
      }
      const double u = wall > 0 ? busy / wall : 0.0;
      os << (u >= 0.9 ? '#' : u >= 0.5 ? '+' : u > 0.0 ? '.' : ' ');
    }
    os << "|\n";
  }
  return os.str();
}

}  // namespace gum::sim
