// Edge cases and less-traveled engine paths: degenerate graphs, message
// filtering, iteration caps, and determinism of the learned-model pipeline.

#include <gtest/gtest.h>

#include <optional>

#include "algos/apps.h"
#include "algos/reference.h"
#include "core/engine.h"
#include "ml/dataset.h"
#include "ml/polynomial_regression.h"
#include "tests/test_util.h"

namespace gum::core {
namespace {

using algos::BfsApp;
using algos::DeltaPageRankApp;
using algos::PageRankApp;
using graph::VertexId;
using test::MakePartition;
using test::SocialGraph;
using test::TestEngineOptions;
using test::Topo;

TEST(EngineEdgeCaseTest, EdgelessGraph) {
  graph::EdgeList list;
  list.num_vertices = 16;  // no edges at all
  auto g = graph::CsrGraph::FromEdgeList(list);
  ASSERT_TRUE(g.ok());
  GumEngine<BfsApp> engine(&*g, MakePartition(*g, 4), Topo(4),
                           TestEngineOptions());
  BfsApp app;
  app.source = 5;
  std::vector<uint32_t> depths;
  const RunResult result = engine.Run(app, &depths);
  EXPECT_LE(result.iterations, 1);
  EXPECT_EQ(depths[5], 0u);
  for (VertexId v = 0; v < 16; ++v) {
    if (v != 5) EXPECT_EQ(depths[v], BfsApp::kUnreached);
  }
}

TEST(EngineEdgeCaseTest, TwoVertexGraph) {
  graph::EdgeList list;
  list.num_vertices = 2;
  list.edges = {{0, 1, 3.0f}};
  auto g = graph::CsrGraph::FromEdgeList(list);
  ASSERT_TRUE(g.ok());
  GumEngine<algos::SsspApp> engine(&*g, MakePartition(*g, 2), Topo(2),
                                   TestEngineOptions());
  algos::SsspApp app;
  app.source = 0;
  std::vector<float> dist;
  engine.Run(app, &dist);
  EXPECT_EQ(dist[0], 0.0f);
  EXPECT_EQ(dist[1], 3.0f);
}

TEST(EngineEdgeCaseTest, MaxIterationsCapsRun) {
  const auto g = SocialGraph(9, 71);
  auto opt = TestEngineOptions();
  opt.max_iterations = 2;
  GumEngine<PageRankApp> engine(&g, MakePartition(g, 2), Topo(2), opt);
  PageRankApp app;
  app.num_vertices = g.num_vertices();
  app.rounds = 50;  // more than the cap allows
  const RunResult result = engine.Run(app);
  EXPECT_EQ(result.iterations, 2);
}

// An app whose Scatter suppresses edges into odd-numbered vertices: checks
// that nullopt messages are honored everywhere.
struct EvenOnlyBfs : algos::BfsApp {
  std::optional<Message> Scatter(const Message& payload, VertexId dst,
                                 float) const {
    if (dst % 2 == 1) return std::nullopt;
    return payload + 1;
  }
};

TEST(EngineEdgeCaseTest, ScatterFilteringRespected) {
  const auto g = SocialGraph(9, 72);
  GumEngine<EvenOnlyBfs> engine(&g, MakePartition(g, 4), Topo(4),
                                TestEngineOptions());
  EvenOnlyBfs app;
  app.source = test::MaxDegreeSource(g);
  std::vector<uint32_t> depths;
  engine.Run(app, &depths);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v % 2 == 1 && v != app.source) {
      EXPECT_EQ(depths[v], algos::BfsApp::kUnreached)
          << "odd vertex " << v << " must stay unreached";
    }
  }
  // And even vertices match a reference BFS over the filtered graph.
  graph::EdgeList filtered;
  filtered.num_vertices = g.num_vertices();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (v % 2 == 0) filtered.edges.push_back({u, v, 1.0f});
    }
  }
  auto fg = graph::CsrGraph::FromEdgeList(filtered);
  ASSERT_TRUE(fg.ok());
  const auto expected = algos::ref::Bfs(*fg, app.source);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v % 2 == 0 || v == app.source) EXPECT_EQ(depths[v], expected[v]);
  }
}

TEST(EngineEdgeCaseTest, DeltaPrZeroDampingConvergesInstantly) {
  const auto g = SocialGraph(8, 73);
  GumEngine<DeltaPageRankApp> engine(&g, MakePartition(g, 2), Topo(2),
                                     TestEngineOptions());
  DeltaPageRankApp app;
  app.num_vertices = g.num_vertices();
  app.damping = 0.0;  // no propagation: ranks = (1-d)/N after one pass
  std::vector<DeltaPageRankApp::State> state;
  const RunResult result = engine.Run(app, &state);
  EXPECT_LE(result.iterations, 2);
  for (const auto& s : state) {
    EXPECT_NEAR(s.rank, 1.0 / g.num_vertices(), 1e-12);
  }
}


TEST(EngineEdgeCaseTest, OnlinePEstimationMatchesOracleDecisions) {
  // Eq. (4)'s p is estimated from observed iterations; even with a wildly
  // wrong prior the estimator must converge and produce the same OSteal
  // trajectory as the oracle engine on a long-tail workload.
  const auto g = test::RoadGraph(24, 77);
  const auto part = MakePartition(g, 8);
  algos::SsspApp app;

  auto oracle = TestEngineOptions();
  oracle.estimate_sync_online = false;
  auto estimated = TestEngineOptions();
  estimated.estimate_sync_online = true;
  estimated.sync_prior_us = 2000.0;  // 18x too high

  app.source = 0;
  const RunResult r_oracle =
      GumEngine<algos::SsspApp>(&g, part, Topo(8), oracle).Run(app);
  app.source = 0;
  const RunResult r_est =
      GumEngine<algos::SsspApp>(&g, part, Topo(8), estimated).Run(app);

  // Both engage OSteal, and the estimated run lands within 40% of the
  // oracle's end-to-end time despite the bad prior.
  EXPECT_GT(r_oracle.osteal_shrink_events, 0);
  EXPECT_GT(r_est.osteal_shrink_events, 0);
  EXPECT_LT(r_est.total_ms, 1.4 * r_oracle.total_ms);
  EXPECT_GT(r_est.total_ms, 0.6 * r_oracle.total_ms);
}

TEST(EngineEdgeCaseTest, RecordIterationStatsOffSavesMemory) {
  const auto g = SocialGraph(9, 74);
  auto opt = TestEngineOptions();
  opt.record_iteration_stats = false;
  GumEngine<BfsApp> engine(&g, MakePartition(g, 2), Topo(2), opt);
  BfsApp app;
  app.source = 1;
  const RunResult result = engine.Run(app);
  EXPECT_TRUE(result.iteration_stats.empty());
  EXPECT_GT(result.iterations, 0);
}

TEST(EngineEdgeCaseTest, LearnedModelPipelineDeterministic) {
  ml::CostDatasetOptions data_opt;
  data_opt.frontiers_per_graph = 40;
  const ml::Dataset data = ml::GenerateDefaultCostDataset(data_opt);
  ml::PolynomialRegression m1(3), m2(3);
  ASSERT_TRUE(m1.Fit(data).ok());
  ASSERT_TRUE(m2.Fit(data).ok());
  const std::vector<double> probe = {8.0, 9.0, 100.0, 120.0, 0.4, 0.8};
  EXPECT_DOUBLE_EQ(m1.Predict(probe), m2.Predict(probe));

  const auto g = SocialGraph(9, 75, /*weighted=*/true);
  auto opt = TestEngineOptions();
  opt.exact_cost_oracle = false;
  algos::SsspApp app;
  std::vector<float> d1, d2;
  app.source = 4;
  const RunResult r1 =
      GumEngine<algos::SsspApp>(&g, MakePartition(g, 4), Topo(4), opt, &m1)
          .Run(app, &d1);
  app.source = 4;
  const RunResult r2 =
      GumEngine<algos::SsspApp>(&g, MakePartition(g, 4), Topo(4), opt, &m2)
          .Run(app, &d2);
  EXPECT_EQ(d1, d2);
  EXPECT_DOUBLE_EQ(r1.total_ms, r2.total_ms);
}

}  // namespace
}  // namespace gum::core
