// gum_cli — run any engine / algorithm / graph combination from the shell.
//
// Graph sources (pick one):
//   --graph=PATH                 text edge list ("src dst [weight]")
//   --gen=rmat|web|road|er       synthetic generator, with
//       --scale=N --edge-factor=F [--weighted] [--seed=S]      (rmat, web, er)
//       --rows=R --cols=C [--seed=S]                           (road)
//
// Execution:
//   --engine=gum|gunrock|groute  (default gum)
//   --algo=bfs|sssp|wcc|pr|dpr|astar   (default bfs)
//   --target=V                   A* goal vertex (astar only; default: last
//                                vertex). On --gen=road the CLI builds the
//                                admissible Manhattan grid heuristic; on
//                                other graphs A* degenerates to SSSP order.
//   --mode=bsp|async             execution mode (default bsp; async runs the
//                                priority-worklist driver of src/core/async/,
//                                gum engine only, DESIGN.md §15)
//   --delta=W                    async bucket width (> 0; default: app-aware)
//   --worklist=buckets|smq       async worklist flavor (default buckets)
//   --steal-prob=P               SMQ rebalance probability in [0,1]
//   --steal-batch=N              SMQ entries moved per rebalance (>= 1)
//   --async-seed=S               seed behind async ordering; a fixed seed is
//                                byte-reproducible across thread counts
//   --devices=N                  1..8 on the hybrid cube mesh (default 8)
//   --partitioner=random|seg|metis
//   --source=V                   traversal source (default: max out-degree)
//   --sources=a,b,c              batched multi-source traversal: up to 64
//                                bfs/sssp sources run in one bit-parallel
//                                wave (gum engine; DESIGN.md §13);
//                                --save-values then writes one depth or
//                                distance column per source
//   --pr-rounds=N --epsilon=E    PageRank controls
//   --no-fsteal --no-osteal      disable GUM's stealing mechanisms
//   --contention=off|fair        interconnect contention model (default off;
//                                fair time-slices each lane across the
//                                transfers occupying it)
//   --multipath=off|on           stripe bulk transfers across link-disjoint
//                                paths and sync the census over a topology-
//                                aware reduction tree (gum engine, fair
//                                contention; values never change — only
//                                simulated time and link telemetry)
//   --host-threads=N             host threads for the superstep runtime
//                                (0 = hardware concurrency, 1 = serial;
//                                results are identical for every setting)
//   --msg-shards=N               destination shards for the message plane's
//                                parallel merge/apply (0 = match host
//                                threads; results identical for every
//                                setting)
//
// Output:
//   --timeline                   print the per-device utilization chart
//   --show-links                 print the per-link lane utilization table
//   --save-values=PATH           write "vertex value" lines
//
// Observability (src/obs/, DESIGN.md §10; no effect on results or stdout):
//   --trace=PATH                 Chrome/Perfetto trace-event JSON (simulated
//                                vGPU lanes + host wall-clock lanes)
//   --metrics=PATH               metrics registry snapshot as JSON
//   --report=PATH                schema-versioned JSON run report
//
// Fault plane (src/fault/, DESIGN.md §11; gum engine only):
//   --fault-plan=SPEC            "none" (default), "chaos", or ';'-joined
//                                events: failstop:D@K, straggler:D@A-BxF,
//                                degrade:A-B@F-LxS, linkdown:A-B@F-L,
//                                flap:A-B@F-L/P
//   --fault-seed=S               chaos expansion seed (default 1)
//   --ckpt-every=N               checkpoint cadence in iterations (0 = off)
//
// Mutation plane (src/graph/mutation.h, DESIGN.md §14; gum engine only):
//   --mutations=PLAN             "none" (default) or ';'-joined events:
//                                ins:u-v@K[xW], del:u-v@K, delv:u@K, or the
//                                seeded generators rand:ExB / rand-ins:ExB.
//                                Runs the query once per epoch: a full run
//                                on the base graph, then one recompute after
//                                each epoch's update batch.
//   --mutation-seed=S            rand expansion seed (default 1)
//   --compact-every=N            fold the CSR delta overlay back into a flat
//                                CSR every N epochs (0 = never)
//   --incremental=on|off         warm-start recompute from mutation-affected
//                                vertices (default on; off forces a full
//                                recompute per epoch — values are
//                                byte-identical either way)
//
// Example:
//   gum_cli --gen=road --rows=128 --cols=128 --algo=sssp --devices=8

#include <fstream>
#include <iostream>
#include <utility>

#include "algos/apps.h"
#include "algos/astar.h"
#include "algos/incremental.h"
#include "algos/multi_source.h"
#include "core/epoch_context.h"
#include "graph/mutation.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "baselines/groute_cc.h"
#include "baselines/groute_like.h"
#include "baselines/gunrock_like.h"
#include "common/flags.h"
#include "core/engine.h"
#include "core/fast_wcc.h"
#include "fault/fault_plane.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/partition.h"
#include "graph/stats.h"
#include "sim/comm_plane.h"
#include "sim/topology.h"

using namespace gum;  // NOLINT(build/namespaces)

namespace {

constexpr const char* kKnownFlags[] = {
    "graph",     "gen",        "scale",     "edge-factor", "weighted",
    "seed",      "rows",       "cols",      "engine",      "algo",
    "devices",   "partitioner", "source",   "pr-rounds",   "epsilon",
    "no-fsteal", "no-osteal",  "timeline",  "save-values", "help",
    "timeline-csv", "host-threads", "contention", "show-links",
    "msg-shards", "trace", "metrics", "report",
    "fault-plan", "fault-seed", "ckpt-every", "expand", "sources",
    "multipath", "mutations", "mutation-seed", "compact-every", "incremental",
    "mode", "delta", "worklist", "steal-prob", "steal-batch", "async-seed",
    "target",
};

void PrintUsage() {
  std::cout <<
      "usage: gum_cli (--graph=PATH | --gen=rmat|web|road|er [gen flags])\n"
      "               [--engine=gum|gunrock|groute] [--algo=bfs|sssp|wcc|"
      "pr|dpr|astar]\n"
      "               [--mode=bsp|async] [--delta=W] "
      "[--worklist=buckets|smq]\n"
      "               [--steal-prob=P] [--steal-batch=N] [--async-seed=S]\n"
      "               [--target=V]\n"
      "               [--devices=N] [--partitioner=random|seg|metis]\n"
      "               [--source=V] [--sources=a,b,c] [--pr-rounds=N] "
      "[--epsilon=E]\n"
      "               [--no-fsteal] [--no-osteal] [--host-threads=N]\n"
      "               [--msg-shards=N] [--expand=scatter|spmv|auto]\n"
      "               [--contention=off|fair] [--multipath=off|on]\n"
      "               [--timeline] [--show-links]\n"
      "               [--save-values=PATH]\n"
      "               [--trace=PATH] [--metrics=PATH] [--report=PATH]\n"
      "               [--fault-plan=SPEC] [--fault-seed=S] "
      "[--ckpt-every=N]\n"
      "               [--mutations=PLAN] [--mutation-seed=S] "
      "[--compact-every=N]\n"
      "               [--incremental=on|off]\n";
}

Result<graph::EdgeList> LoadOrGenerate(const FlagParser& flags) {
  if (flags.Has("graph")) {
    return graph::LoadEdgeListText(flags.GetString("graph", ""));
  }
  const std::string gen = flags.GetString("gen", "");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  if (gen == "rmat") {
    graph::RmatOptions opt;
    opt.scale = static_cast<int>(flags.GetInt("scale", 14));
    opt.edge_factor = flags.GetDouble("edge-factor", 16);
    opt.weighted = flags.GetBool("weighted", false);
    opt.seed = seed;
    return graph::Rmat(opt);
  }
  if (gen == "web") {
    graph::WebCrawlOptions opt;
    opt.scale = static_cast<int>(flags.GetInt("scale", 14));
    opt.edge_factor = flags.GetDouble("edge-factor", 12);
    opt.weighted = flags.GetBool("weighted", false);
    opt.seed = seed;
    return graph::WebCrawl(opt);
  }
  if (gen == "road") {
    graph::RoadGridOptions opt;
    opt.rows = static_cast<uint32_t>(flags.GetInt("rows", 128));
    opt.cols = static_cast<uint32_t>(flags.GetInt("cols", 128));
    opt.seed = seed;
    return graph::RoadGrid(opt);
  }
  if (gen == "er") {
    const graph::VertexId n = graph::VertexId{1}
                              << flags.GetInt("scale", 14);
    const graph::EdgeId m = static_cast<graph::EdgeId>(
        flags.GetDouble("edge-factor", 16) * n);
    return graph::ErdosRenyi(n, m, flags.GetBool("weighted", false), seed);
  }
  return Status::InvalidArgument(
      "need --graph=PATH or --gen=rmat|web|road|er");
}

template <typename App, typename Value = typename App::Value>
int RunAndReport(const FlagParser& flags, const graph::CsrGraph& g,
                 const graph::Partition& partition,
                 const sim::Topology& topology, App app) {
  const auto engine_or =
      flags.GetEnum("engine", "gum", {"gum", "gunrock", "groute"});
  if (!engine_or.ok()) {
    std::cerr << engine_or.status().ToString() << "\n";
    return 1;
  }
  const std::string engine_name = *engine_or;
  core::RunResult result;
  std::vector<Value> values;

  const bool want_trace = flags.Has("trace");
  const bool want_metrics = flags.Has("metrics");
  const bool want_report = flags.Has("report");
  obs::TraceSession trace;
  if (want_trace) trace.Start();
  // The report embeds a metrics snapshot, so recording is on for both.
  if (want_metrics || want_report) obs::SetMetricsEnabled(true);

  const int host_threads = static_cast<int>(flags.GetInt("host-threads", 0));
  const int msg_shards = static_cast<int>(flags.GetInt("msg-shards", 0));
  auto contention =
      sim::ParseContentionModel(flags.GetString("contention", "off"));
  if (!contention.ok()) {
    std::cerr << contention.status().ToString() << "\n";
    return 1;
  }
  auto multipath =
      sim::ParseMultipathMode(flags.GetString("multipath", "off"));
  if (!multipath.ok()) {
    std::cerr << multipath.status().ToString() << "\n";
    return 1;
  }
  if (*multipath == sim::MultipathMode::kOn && engine_name != "gum") {
    std::cerr << "--multipath=on requires --engine=gum\n";
    return 1;
  }

  // Parse + bind the fault plan before engine dispatch so an invalid spec
  // fails loudly without running anything.
  const std::string fault_spec = flags.GetString("fault-plan", "none");
  const int ckpt_every = static_cast<int>(flags.GetInt("ckpt-every", 0));
  fault::FaultPlane fault_plane;
  {
    auto plan = fault::FaultPlan::Parse(fault_spec);
    if (!plan.ok()) {
      std::cerr << plan.status().ToString() << "\n";
      return 1;
    }
    auto plane = fault::FaultPlane::Create(
        *plan, partition.num_parts,
        static_cast<uint64_t>(flags.GetInt("fault-seed", 1)));
    if (!plane.ok()) {
      std::cerr << plane.status().ToString() << "\n";
      return 1;
    }
    fault_plane = std::move(*plane);
  }
  if ((fault_plane.active() || ckpt_every > 0) && engine_name != "gum") {
    std::cerr << "--fault-plan/--ckpt-every require --engine=gum\n";
    return 1;
  }

  const auto expand_or =
      flags.GetEnum("expand", "scatter", {"scatter", "spmv", "auto"});
  if (!expand_or.ok()) {
    std::cerr << expand_or.status().ToString() << "\n";
    return 1;
  }
  core::ExpandBackendKind expand_backend = core::ExpandBackendKind::kScatter;
  core::ParseExpandBackendKind(*expand_or, &expand_backend);
  if (expand_backend != core::ExpandBackendKind::kScatter &&
      engine_name != "gum") {
    std::cerr << "--expand=spmv|auto requires --engine=gum\n";
    return 1;
  }

  // Execution mode (DESIGN.md §15). Every async knob is rejected loudly
  // under --mode=bsp so a forgotten mode switch can't silently no-op, and
  // the whole config is range-checked before anything runs.
  const auto mode_or = core::ParseEngineMode(flags.GetString("mode", "bsp"));
  if (!mode_or.ok()) {
    std::cerr << mode_or.status().ToString() << "\n";
    return 1;
  }
  const core::EngineMode mode = *mode_or;
  core::AsyncConfig async_cfg;
  if (mode == core::EngineMode::kBsp) {
    for (const char* f :
         {"delta", "worklist", "steal-prob", "steal-batch", "async-seed"}) {
      if (flags.Has(f)) {
        std::cerr << "--" << f << " requires --mode=async\n";
        return 1;
      }
    }
  } else {
    if (engine_name != "gum") {
      std::cerr << "--mode=async requires --engine=gum\n";
      return 1;
    }
    if (fault_plane.active() || ckpt_every > 0) {
      std::cerr << "--mode=async does not compose with --fault-plan/"
                   "--ckpt-every yet\n";
      return 1;
    }
    if constexpr (!core::AsyncCapable<App>) {
      std::cerr << "--mode=async does not support --algo="
                << flags.GetString("algo", "bfs")
                << " (priority-driven apps: bfs, sssp, wcc, dpr, astar; "
                   "for PageRank use --algo=dpr)\n";
      return 1;
    } else {
      if (flags.Has("delta")) {
        async_cfg.delta = flags.GetDouble("delta", 0.0);
        if (async_cfg.delta <= 0.0) {
          std::cerr << "--delta must be > 0\n";
          return 1;
        }
      }
      const auto wl_or = core::ParseAsyncWorklistKind(
          flags.GetString("worklist", "buckets"));
      if (!wl_or.ok()) {
        std::cerr << wl_or.status().ToString() << "\n";
        return 1;
      }
      async_cfg.worklist = *wl_or;
      async_cfg.steal_prob =
          flags.GetDouble("steal-prob", async_cfg.steal_prob);
      async_cfg.steal_batch_size = static_cast<int>(
          flags.GetInt("steal-batch", async_cfg.steal_batch_size));
      async_cfg.seed = static_cast<uint64_t>(flags.GetInt("async-seed", 1));
      if (Status s = core::ValidateAsyncConfig(async_cfg); !s.ok()) {
        std::cerr << s.ToString() << "\n";
        return 1;
      }
    }
  }

  if (engine_name == "gum") {
    core::EngineOptions options;
    options.enable_fsteal = !flags.GetBool("no-fsteal", false);
    options.enable_osteal = !flags.GetBool("no-osteal", false);
    options.num_host_threads = host_threads;
    options.num_msg_shards = msg_shards;
    options.contention = *contention;
    options.multipath = *multipath;
    options.expand_backend = expand_backend;
    options.fault_plane = &fault_plane;
    options.checkpoint.every = ckpt_every;
    options.mode = mode;
    options.async = async_cfg;
    core::GumEngine<App> engine(&g, partition, topology, options);
    result = engine.Run(app, &values);
  } else if (engine_name == "gunrock") {
    baselines::GunrockOptions options;
    options.num_host_threads = host_threads;
    options.num_msg_shards = msg_shards;
    options.contention = *contention;
    baselines::GunrockLikeEngine<App> engine(&g, partition, topology,
                                             options);
    result = engine.Run(app, &values);
  } else if (engine_name == "groute") {
    baselines::GrouteOptions options;
    options.contention = *contention;
    baselines::GrouteLikeEngine<App> engine(&g, partition, options);
    result = engine.Run(app, &values);
  } else {
    std::cerr << "unknown --engine=" << engine_name << "\n";
    return 1;
  }

  if (want_metrics || want_report) obs::SetMetricsEnabled(false);
  if (want_trace) {
    // The engine (and its thread pool) is already destroyed, so every
    // worker buffer has drained to the retired list; Stop collects them
    // plus the main thread's spans.
    trace.Stop();
    trace.AddSimulatedTimeline(result.timeline);
    std::ofstream out(flags.GetString("trace", ""));
    trace.WriteChromeTrace(out);
  }
  if (want_metrics) {
    std::ofstream out(flags.GetString("metrics", ""));
    obs::MetricsRegistry::Global().WriteJson(out);
  }
  if (want_report) {
    obs::RunReportMeta meta;
    meta.system = engine_name;
    meta.algorithm = flags.GetString("algo", "bfs");
    meta.dataset = flags.Has("graph")
                       ? flags.GetString("graph", "")
                       : flags.GetString("gen", "");
    meta.num_devices = partition.num_parts;
    meta.config = {
        {"contention", flags.GetString("contention", "off")},
        {"partitioner", flags.GetString("partitioner", "random")},
        {"host_threads", std::to_string(host_threads)},
        {"msg_shards", std::to_string(msg_shards)},
        {"fsteal", flags.GetBool("no-fsteal", false) ? "off" : "on"},
        {"osteal", flags.GetBool("no-osteal", false) ? "off" : "on"},
        {"expand", core::ExpandBackendKindName(expand_backend)},
    };
    // Only a multipath run records the key, so multipath-off reports stay
    // byte-identical to the pre-multipath schema.
    if (*multipath == sim::MultipathMode::kOn) {
      meta.config.emplace_back("multipath", sim::MultipathModeName(*multipath));
    }
    // Only an async run records async keys, so mode-off reports stay
    // byte-identical to the pre-async schema (modulo schema_version).
    if (mode == core::EngineMode::kAsync) {
      meta.config.emplace_back("mode", core::EngineModeName(mode));
      meta.config.emplace_back("worklist",
                               core::AsyncWorklistKindName(async_cfg.worklist));
      meta.config.emplace_back(
          "delta", flags.Has("delta") ? std::to_string(async_cfg.delta)
                                      : "auto");
      meta.config.emplace_back("steal_prob",
                               std::to_string(async_cfg.steal_prob));
      meta.config.emplace_back("steal_batch",
                               std::to_string(async_cfg.steal_batch_size));
      meta.config.emplace_back("async_seed", std::to_string(async_cfg.seed));
    }
    // Only a fault-plane run records fault keys; faults-off reports stay
    // byte-identical to the pre-fault-plane schema (modulo schema_version).
    if (fault_plane.active() || ckpt_every > 0) {
      meta.config.emplace_back("fault_plan", fault_plane.active()
                                                 ? fault_plane.Describe()
                                                 : "none");
      meta.config.emplace_back("fault_seed",
                               std::to_string(flags.GetInt("fault-seed", 1)));
      meta.config.emplace_back("ckpt_every", std::to_string(ckpt_every));
    }
    std::ofstream out(flags.GetString("report", ""));
    obs::WriteRunReport(out, meta, result,
                        &obs::MetricsRegistry::Global());
  }

  std::cout << "engine:          " << engine_name << "\n"
            << "iterations:      " << result.iterations << "\n"
            << "simulated time:  " << result.total_ms << " ms\n"
            << "edges processed: " << result.edges_processed << "\n"
            << "messages sent:   " << result.messages_sent << "\n";
  if (engine_name == "gum") {
    std::cout << "edges stolen:    " << result.stolen_edges_total << "\n"
              << "group shrinks:   " << result.osteal_shrink_events << "\n";
  }
  // Async-only lines: a --mode=bsp run prints byte-identically to the
  // pre-async build.
  if (result.async_active) {
    std::cout << "async:           " << result.async_batches << " batches, "
              << result.async_stale_skips << " stale skips, delta "
              << result.async_delta << "\n"
              << "range steals:    " << result.async_range_steals << " ("
              << result.async_range_steal_entries << " entries, "
              << result.async_range_steal_bytes << " bytes)\n"
              << "quiescence:      " << result.quiescence_rounds
              << " census rounds\n";
  }
  if (result.fault_plan_active) {
    std::cout << "faults:          devices failed " << result.devices_failed
              << ", recoveries " << result.recovery_events
              << ", fragments migrated " << result.fragments_migrated
              << ", recovery charged " << result.RecoveryChargedMs()
              << " ms\n";
  }
  if (result.checkpoints_taken > 0) {
    std::cout << "checkpoints:     " << result.checkpoints_taken << " ("
              << result.checkpoint_ms_total << " ms charged)\n";
  }
  std::cout << "breakdown (ms):  compute " << result.ComputeMs()
            << ", comm " << result.CommunicationMs() << ", serialization "
            << result.SerializationMs() << ", overhead "
            << result.OverheadMs() << "\n";
  if (flags.GetBool("timeline", false)) {
    std::cout << result.timeline.RenderAscii(96);
  }
  if (flags.GetBool("show-links", false)) {
    std::cout << "link utilization (" << sim::ContentionModelName(*contention)
              << " contention):\n"
              << sim::CommPlane::RenderAsciiTable(
                     result.link_bytes, result.link_busy_ms, result.total_ms);
    if (result.multipath_active) {
      std::cout << sim::RenderMultipathAscii(result.multipath);
    }
  }
  if (flags.Has("timeline-csv")) {
    std::ofstream out(flags.GetString("timeline-csv", ""));
    result.timeline.WriteCsv(out);
  }
  if (flags.Has("save-values")) {
    std::ofstream out(flags.GetString("save-values", ""));
    for (size_t v = 0; v < values.size(); ++v) {
      if constexpr (std::is_same_v<Value,
                                   algos::DeltaPageRankApp::State>) {
        out << v << " " << values[v].rank << "\n";
      } else if constexpr (std::is_same_v<
                               Value, algos::MultiSourceBfsApp::Value>) {
        out << v;
        for (int l = 0; l < app.num_lanes; ++l) out << " " << values[v].depth[l];
        out << "\n";
      } else if constexpr (std::is_same_v<
                               Value, algos::MultiSourceSsspApp::Value>) {
        out << v;
        for (int l = 0; l < app.num_lanes; ++l) out << " " << values[v].dist[l];
        out << "\n";
      } else {
        out << v << " " << values[v] << "\n";
      }
    }
  }
  return 0;
}

// Streaming mode (--mutations): the graph advances in epochs and the query
// re-runs after each update batch — incrementally when sound, as a full
// recompute otherwise, with values byte-identical either way. Gum engine
// only; the per-epoch GraphContext rebuild keeps every derived structure
// honest.
template <typename App, typename Value = typename App::Value>
int RunMutationStream(const FlagParser& flags, const graph::CsrGraph& g,
                      const graph::Partition& partition,
                      const sim::Topology& topology, App app,
                      const graph::MutationStream& stream, bool symmetric) {
  {
    const auto mode_or =
        core::ParseEngineMode(flags.GetString("mode", "bsp"));
    if (!mode_or.ok()) {
      std::cerr << mode_or.status().ToString() << "\n";
      return 1;
    }
    if (*mode_or == core::EngineMode::kAsync) {
      std::cerr << "--mutations requires --mode=bsp\n";
      return 1;
    }
  }
  const int host_threads = static_cast<int>(flags.GetInt("host-threads", 0));
  const int msg_shards = static_cast<int>(flags.GetInt("msg-shards", 0));
  auto contention =
      sim::ParseContentionModel(flags.GetString("contention", "off"));
  if (!contention.ok()) {
    std::cerr << contention.status().ToString() << "\n";
    return 1;
  }
  auto multipath =
      sim::ParseMultipathMode(flags.GetString("multipath", "off"));
  if (!multipath.ok()) {
    std::cerr << multipath.status().ToString() << "\n";
    return 1;
  }
  const auto expand_or =
      flags.GetEnum("expand", "scatter", {"scatter", "spmv", "auto"});
  if (!expand_or.ok()) {
    std::cerr << expand_or.status().ToString() << "\n";
    return 1;
  }
  core::ExpandBackendKind expand_backend = core::ExpandBackendKind::kScatter;
  core::ParseExpandBackendKind(*expand_or, &expand_backend);
  const auto inc_or = flags.GetEnum("incremental", "on", {"on", "off"});
  if (!inc_or.ok()) {
    std::cerr << inc_or.status().ToString() << "\n";
    return 1;
  }
  const bool incremental = *inc_or == "on";
  const int compact_every = static_cast<int>(flags.GetInt("compact-every", 0));
  if (compact_every < 0) {
    std::cerr << "--compact-every must be >= 0\n";
    return 1;
  }

  // The fault plan (if any) replays inside every epoch's run; recovery is
  // byte-exact, so it composes with the incremental/full equivalence.
  fault::FaultPlane fault_plane;
  {
    auto plan = fault::FaultPlan::Parse(flags.GetString("fault-plan", "none"));
    if (!plan.ok()) {
      std::cerr << plan.status().ToString() << "\n";
      return 1;
    }
    auto plane = fault::FaultPlane::Create(
        *plan, partition.num_parts,
        static_cast<uint64_t>(flags.GetInt("fault-seed", 1)));
    if (!plane.ok()) {
      std::cerr << plane.status().ToString() << "\n";
      return 1;
    }
    fault_plane = std::move(*plane);
  }

  const bool want_trace = flags.Has("trace");
  const bool want_metrics = flags.Has("metrics");
  const bool want_report = flags.Has("report");
  obs::TraceSession trace;
  if (want_trace) trace.Start();
  if (want_metrics || want_report) obs::SetMetricsEnabled(true);

  core::EngineOptions options;
  options.enable_fsteal = !flags.GetBool("no-fsteal", false);
  options.enable_osteal = !flags.GetBool("no-osteal", false);
  options.num_host_threads = host_threads;
  options.num_msg_shards = msg_shards;
  options.contention = *contention;
  options.multipath = *multipath;
  options.expand_backend = expand_backend;
  options.fault_plane = &fault_plane;
  options.checkpoint.every = static_cast<int>(flags.GetInt("ckpt-every", 0));

  core::EpochedGraphContext ectx(g, partition, topology, options, symmetric);
  algos::IncrementalSession<App> session;
  core::RunResult aggregate = session.RunInitial(ectx.ctx(), app);
  aggregate.mutation_plane_active = true;

  // Full-recompute state for --incremental=off (the equality baseline).
  core::RunContext<App> rc_full;
  std::vector<Value> values = session.values();

  std::cout << "epoch 0: initial run, " << aggregate.iterations
            << " iterations, " << aggregate.total_ms << " ms\n";

  for (int e = 1; e <= stream.num_epochs(); ++e) {
    const core::EpochAdvanceStats adv =
        ectx.AdvanceEpoch(stream.BatchAt(e), compact_every);
    ++aggregate.mutation_epochs;
    aggregate.mutation_events_applied += adv.inserted + adv.deleted;
    aggregate.mutation_noops += adv.noops;
    aggregate.mutation_delta_bytes += static_cast<double>(adv.delta_bytes);
    if (adv.compacted) ++aggregate.mutation_compactions;
    aggregate.mutation_apply_ms += adv.apply_ms;
    aggregate.mutation_compact_ms += adv.compact_ms;

    const char* plan_name = "full";
    double restore_ms = 0.0;
    core::RunResult r;
    if (incremental) {
      auto er = session.RunEpoch(ectx.ctx(), adv.effective);
      plan_name = algos::EpochPlanKindName(er.kind);
      switch (er.kind) {
        case algos::EpochPlanKind::kSkip:
          ++aggregate.mutation_skipped_epochs;
          break;
        case algos::EpochPlanKind::kIncremental:
          ++aggregate.mutation_incremental_epochs;
          break;
        case algos::EpochPlanKind::kFallback:
          ++aggregate.mutation_fallbacks;
          break;
      }
      restore_ms = er.restore_ms;
      aggregate.mutation_restore_ms += er.restore_ms;
      r = std::move(er.result);
      values = session.values();
    } else {
      core::GumEngine<App> engine(&ectx.ctx());
      r = engine.Run(app, rc_full);
      values = rc_full.state.values;
    }
    aggregate.iterations += r.iterations;
    aggregate.total_ms +=
        adv.apply_ms + adv.compact_ms + restore_ms + r.total_ms;
    aggregate.edges_processed += r.edges_processed;
    aggregate.messages_sent += r.messages_sent;
    aggregate.stolen_edges_total += r.stolen_edges_total;
    if (r.iterations > 0) {
      aggregate.timeline = std::move(r.timeline);
      aggregate.link_bytes = std::move(r.link_bytes);
      aggregate.payload_bytes = std::move(r.payload_bytes);
      aggregate.link_busy_ms = std::move(r.link_busy_ms);
    }

    std::cout << "epoch " << e << ": +" << adv.inserted << "/-" << adv.deleted
              << " edges (" << adv.noops << " noop"
              << (adv.compacted ? ", compacted" : "") << "), plan "
              << plan_name << ", " << r.iterations << " iterations, "
              << (adv.apply_ms + adv.compact_ms + restore_ms + r.total_ms)
              << " ms\n";
  }

  if (want_metrics || want_report) obs::SetMetricsEnabled(false);
  if (want_trace) {
    trace.Stop();
    trace.AddSimulatedTimeline(aggregate.timeline);
    std::ofstream out(flags.GetString("trace", ""));
    trace.WriteChromeTrace(out);
  }
  if (want_metrics) {
    std::ofstream out(flags.GetString("metrics", ""));
    obs::MetricsRegistry::Global().WriteJson(out);
  }
  if (want_report) {
    obs::RunReportMeta meta;
    meta.system = "gum";
    meta.algorithm = flags.GetString("algo", "bfs");
    meta.dataset = flags.Has("graph") ? flags.GetString("graph", "")
                                      : flags.GetString("gen", "");
    meta.num_devices = partition.num_parts;
    meta.config = {
        {"contention", flags.GetString("contention", "off")},
        {"partitioner", flags.GetString("partitioner", "random")},
        {"host_threads", std::to_string(host_threads)},
        {"msg_shards", std::to_string(msg_shards)},
        {"fsteal", flags.GetBool("no-fsteal", false) ? "off" : "on"},
        {"osteal", flags.GetBool("no-osteal", false) ? "off" : "on"},
        {"expand", core::ExpandBackendKindName(expand_backend)},
        {"mutations", flags.GetString("mutations", "none")},
        {"mutation_seed", std::to_string(flags.GetInt("mutation-seed", 1))},
        {"compact_every", std::to_string(compact_every)},
        {"incremental", incremental ? "on" : "off"},
    };
    std::ofstream out(flags.GetString("report", ""));
    obs::WriteRunReport(out, meta, aggregate, &obs::MetricsRegistry::Global());
  }

  std::cout << "engine:          gum\n"
            << "iterations:      " << aggregate.iterations << "\n"
            << "simulated time:  " << aggregate.total_ms << " ms\n"
            << "edges processed: " << aggregate.edges_processed << "\n"
            << "messages sent:   " << aggregate.messages_sent << "\n"
            << "mutations:       " << aggregate.mutation_epochs << " epochs, "
            << aggregate.mutation_events_applied << " applied ("
            << aggregate.mutation_noops << " noop), "
            << aggregate.mutation_delta_bytes << " delta bytes, "
            << aggregate.mutation_compactions << " compactions\n"
            << "recompute:       " << (incremental ? "incremental" : "full")
            << " (" << aggregate.mutation_incremental_epochs
            << " incremental, " << aggregate.mutation_skipped_epochs
            << " skipped, " << aggregate.mutation_fallbacks
            << " fallbacks), apply " << aggregate.mutation_apply_ms
            << " ms, compact " << aggregate.mutation_compact_ms
            << " ms, restore " << aggregate.mutation_restore_ms << " ms\n";
  if (flags.GetBool("timeline", false)) {
    std::cout << aggregate.timeline.RenderAscii(96);
  }
  if (flags.GetBool("show-links", false)) {
    std::cout << "link utilization (" << sim::ContentionModelName(*contention)
              << " contention):\n"
              << sim::CommPlane::RenderAsciiTable(aggregate.link_bytes,
                                                  aggregate.link_busy_ms,
                                                  aggregate.total_ms);
  }
  if (flags.Has("timeline-csv")) {
    std::ofstream out(flags.GetString("timeline-csv", ""));
    aggregate.timeline.WriteCsv(out);
  }
  if (flags.Has("save-values")) {
    std::ofstream out(flags.GetString("save-values", ""));
    for (size_t v = 0; v < values.size(); ++v) {
      out << v << " " << values[v] << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  if (flags.GetBool("help", false)) {
    PrintUsage();
    return 0;
  }
  if (Status s = flags.KnownFlagsOnly(
          {std::begin(kKnownFlags), std::end(kKnownFlags)});
      !s.ok()) {
    std::cerr << s.ToString() << "\n";
    PrintUsage();
    return 1;
  }

  auto edges = LoadOrGenerate(flags);
  if (!edges.ok()) {
    std::cerr << edges.status().ToString() << "\n";
    PrintUsage();
    return 1;
  }

  const auto algo_or = flags.GetEnum(
      "algo", "bfs", {"bfs", "sssp", "wcc", "pr", "dpr", "astar"});
  if (!algo_or.ok()) {
    std::cerr << algo_or.status().ToString() << "\n";
    PrintUsage();
    return 1;
  }
  const std::string algo = *algo_or;
  if (flags.Has("target") && algo != "astar") {
    std::cerr << "--target requires --algo=astar\n";
    return 1;
  }
  graph::CsrBuildOptions build;
  build.symmetrize = algo == "wcc";
  auto g = graph::CsrGraph::FromEdgeList(*edges, build);
  if (!g.ok()) {
    std::cerr << g.status().ToString() << "\n";
    return 1;
  }
  std::cout << "graph:           " << g->num_vertices() << " vertices, "
            << g->num_edges() << " edges\n";

  const int devices = static_cast<int>(flags.GetInt("devices", 8));
  graph::PartitionOptions popt;
  const auto pname_or =
      flags.GetEnum("partitioner", "random", {"random", "seg", "metis"});
  if (!pname_or.ok()) {
    std::cerr << pname_or.status().ToString() << "\n";
    return 1;
  }
  const std::string pname = *pname_or;
  popt.kind = pname == "seg"     ? graph::PartitionerKind::kSegment
              : pname == "metis" ? graph::PartitionerKind::kMetisLike
                                 : graph::PartitionerKind::kRandom;
  auto partition = graph::PartitionGraph(*g, devices, popt);
  if (!partition.ok()) {
    std::cerr << partition.status().ToString() << "\n";
    return 1;
  }
  auto topology = sim::Topology::HybridCubeMeshSubset(devices);
  if (!topology.ok()) {
    std::cerr << topology.status().ToString() << "\n";
    return 1;
  }

  graph::VertexId source = 0;
  if (flags.Has("source")) {
    source = static_cast<graph::VertexId>(flags.GetInt("source", 0));
    if (source >= g->num_vertices()) {
      std::cerr << "--source out of range\n";
      return 1;
    }
  } else {
    for (graph::VertexId v = 0; v < g->num_vertices(); ++v) {
      if (g->OutDegree(v) > g->OutDegree(source)) source = v;
    }
  }

  // Parse + bind the mutation plan before any dispatch so an invalid spec
  // fails loudly without running anything. "none" stays on the static path
  // (byte-identical to a run without the flag).
  graph::MutationStream mstream;
  if (flags.Has("mutations")) {
    auto mplan = graph::MutationPlan::Parse(flags.GetString("mutations", ""));
    if (!mplan.ok()) {
      std::cerr << mplan.status().ToString() << "\n";
      return 1;
    }
    if (!mplan->empty()) {
      auto ms = graph::MutationStream::Create(
          *mplan, *g,
          static_cast<uint64_t>(flags.GetInt("mutation-seed", 1)));
      if (!ms.ok()) {
        std::cerr << ms.status().ToString() << "\n";
        return 1;
      }
      mstream = std::move(*ms);
    }
  }
  if (mstream.active()) {
    if (flags.GetString("engine", "gum") != "gum") {
      std::cerr << "--mutations requires --engine=gum\n";
      return 1;
    }
    if (flags.Has("sources")) {
      std::cerr << "--mutations does not compose with --sources\n";
      return 1;
    }
    if (algo == "bfs") {
      algos::BfsApp app;
      app.source = source;
      return RunMutationStream(flags, *g, *partition, *topology, app, mstream,
                               /*symmetric=*/false);
    }
    if (algo == "sssp") {
      algos::SsspApp app;
      app.source = source;
      return RunMutationStream(flags, *g, *partition, *topology, app, mstream,
                               /*symmetric=*/false);
    }
    if (algo == "wcc") {
      algos::WccApp app;
      return RunMutationStream(flags, *g, *partition, *topology, app, mstream,
                               /*symmetric=*/true);
    }
    if (algo == "pr") {
      algos::PageRankApp app;
      app.num_vertices = g->num_vertices();
      app.rounds = static_cast<int>(flags.GetInt("pr-rounds", 20));
      return RunMutationStream(flags, *g, *partition, *topology, app, mstream,
                               /*symmetric=*/false);
    }
    std::cerr << "--mutations requires --algo=bfs|sssp|wcc|pr\n";
    return 1;
  }

  if (flags.Has("sources")) {
    const auto sources_or = flags.GetIntList("sources", {});
    if (!sources_or.ok()) {
      std::cerr << sources_or.status().ToString() << "\n";
      return 1;
    }
    if (sources_or->empty() ||
        sources_or->size() > static_cast<size_t>(algos::kMaxBatchLanes)) {
      std::cerr << "--sources takes 1.." << algos::kMaxBatchLanes
                << " vertices\n";
      return 1;
    }
    std::vector<graph::VertexId> batch_sources;
    for (const int64_t s : *sources_or) {
      if (s < 0 || s >= static_cast<int64_t>(g->num_vertices())) {
        std::cerr << "--sources vertex " << s << " out of range\n";
        return 1;
      }
      batch_sources.push_back(static_cast<graph::VertexId>(s));
    }
    if (flags.GetString("engine", "gum") != "gum") {
      std::cerr << "--sources requires --engine=gum\n";
      return 1;
    }
    if (flags.GetString("mode", "bsp") == "async") {
      std::cerr << "--mode=async does not compose with --sources (the "
                   "bit-parallel batch has no per-vertex priority)\n";
      return 1;
    }
    if (algo == "bfs") {
      algos::MultiSourceBfsApp app(std::move(batch_sources));
      return RunAndReport(flags, *g, *partition, *topology, std::move(app));
    }
    if (algo == "sssp") {
      algos::MultiSourceSsspApp app(std::move(batch_sources));
      return RunAndReport(flags, *g, *partition, *topology, std::move(app));
    }
    std::cerr << "--sources requires --algo=bfs or --algo=sssp\n";
    return 1;
  }

  if (algo == "bfs") {
    algos::BfsApp app;
    app.source = source;
    return RunAndReport(flags, *g, *partition, *topology, app);
  }
  if (algo == "sssp") {
    algos::SsspApp app;
    app.source = source;
    return RunAndReport(flags, *g, *partition, *topology, app);
  }
  if (algo == "wcc") {
    algos::WccApp app;
    return RunAndReport(flags, *g, *partition, *topology, app);
  }
  if (algo == "pr") {
    algos::PageRankApp app;
    app.num_vertices = g->num_vertices();
    app.rounds = static_cast<int>(flags.GetInt("pr-rounds", 20));
    return RunAndReport(flags, *g, *partition, *topology, app);
  }
  if (algo == "dpr") {
    algos::DeltaPageRankApp app;
    app.num_vertices = g->num_vertices();
    app.epsilon = flags.GetDouble("epsilon", 1e-9);
    return RunAndReport(flags, *g, *partition, *topology, app);
  }
  if (algo == "astar") {
    algos::AStarApp app;
    app.source = source;
    app.target = g->num_vertices() - 1;
    if (flags.Has("target")) {
      const int64_t t = flags.GetInt("target", 0);
      if (t < 0 || t >= static_cast<int64_t>(g->num_vertices())) {
        std::cerr << "--target out of range\n";
        return 1;
      }
      app.target = static_cast<graph::VertexId>(t);
    }
    // The grid layout is only known for the road generator; elsewhere the
    // heuristic stays empty and A* degenerates to SSSP visit order (the
    // converged distances are identical either way).
    if (flags.GetString("gen", "") == "road") {
      app.heuristic = algos::GridManhattanHeuristic(
          *g, static_cast<uint32_t>(flags.GetInt("rows", 128)),
          static_cast<uint32_t>(flags.GetInt("cols", 128)), app.target);
    }
    return RunAndReport(flags, *g, *partition, *topology, std::move(app));
  }
  std::cerr << "unknown --algo=" << algo << "\n";
  PrintUsage();
  return 1;
}
