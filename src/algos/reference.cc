#include "algos/reference.h"

#include <deque>
#include <limits>
#include <numeric>
#include <queue>

namespace gum::algos::ref {

using graph::CsrGraph;
using graph::VertexId;

std::vector<uint32_t> Bfs(const CsrGraph& g, VertexId source) {
  std::vector<uint32_t> depth(g.num_vertices(),
                              std::numeric_limits<uint32_t>::max());
  std::deque<VertexId> queue;
  depth[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.OutNeighbors(u)) {
      if (depth[v] == std::numeric_limits<uint32_t>::max()) {
        depth[v] = depth[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return depth;
}

std::vector<float> Sssp(const CsrGraph& g, VertexId source) {
  std::vector<float> dist(g.num_vertices(),
                          std::numeric_limits<float>::max());
  using Item = std::pair<float, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  dist[source] = 0.0f;
  heap.push({0.0f, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    const auto neighbors = g.OutNeighbors(u);
    const auto weights = g.OutWeights(u);
    for (size_t e = 0; e < neighbors.size(); ++e) {
      const float w = weights.empty() ? 1.0f : weights[e];
      const float nd = d + w;
      if (nd < dist[neighbors[e]]) {
        dist[neighbors[e]] = nd;
        heap.push({nd, neighbors[e]});
      }
    }
  }
  return dist;
}

namespace {

VertexId Find(std::vector<VertexId>& parent, VertexId v) {
  while (parent[v] != v) {
    parent[v] = parent[parent[v]];  // path halving
    v = parent[v];
  }
  return v;
}

}  // namespace

std::vector<VertexId> Wcc(const CsrGraph& g) {
  std::vector<VertexId> parent(g.num_vertices());
  std::iota(parent.begin(), parent.end(), VertexId{0});
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      VertexId ru = Find(parent, u), rv = Find(parent, v);
      if (ru != rv) parent[std::max(ru, rv)] = std::min(ru, rv);
    }
  }
  std::vector<VertexId> label(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    label[v] = Find(parent, v);
  }
  return label;
}

std::vector<double> PageRank(const CsrGraph& g, double damping, int rounds) {
  const VertexId n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / n), next(n);
  for (int r = 0; r < rounds; ++r) {
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId u = 0; u < n; ++u) {
      const uint32_t deg = g.OutDegree(u);
      if (deg == 0) continue;
      const double share = rank[u] / deg;
      for (VertexId v : g.OutNeighbors(u)) next[v] += share;
    }
    for (VertexId v = 0; v < n; ++v) {
      next[v] = (1.0 - damping) / n + damping * next[v];
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace gum::algos::ref
