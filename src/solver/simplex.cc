#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/logging.h"

namespace gum::solver {

namespace {

// Dense simplex tableau. Layout:
//   rows 0..m-1 : constraints (columns 0..total_vars-1, last column = rhs)
//   row  m      : objective row (reduced costs, last column = -objective)
class Tableau {
 public:
  Tableau(int num_rows, int num_cols)
      : rows_(num_rows), cols_(num_cols),
        data_(static_cast<size_t>(num_rows) * num_cols, 0.0) {}

  double& At(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  double At(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  void Pivot(int pivot_row, int pivot_col) {
    const double pv = At(pivot_row, pivot_col);
    const double inv = 1.0 / pv;
    for (int c = 0; c < cols_; ++c) At(pivot_row, c) *= inv;
    At(pivot_row, pivot_col) = 1.0;  // kill roundoff
    for (int r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = At(r, pivot_col);
      if (factor == 0.0) continue;
      for (int c = 0; c < cols_; ++c) {
        At(r, c) -= factor * At(pivot_row, c);
      }
      At(r, pivot_col) = 0.0;
    }
  }

 private:
  int rows_, cols_;
  std::vector<double> data_;
};

enum class PhaseResult { kOptimal, kUnbounded, kIterationLimit };

// Runs simplex on `t` whose last row is the (phase) objective with reduced
// costs for all columns in [0, num_cols). `basis[r]` is the basic column of
// constraint row r. allowed_cols limits entering columns (phase 2 excludes
// artificials).
PhaseResult RunSimplex(Tableau& t, std::vector<int>& basis, int num_cols,
                       const SimplexOptions& options, int* iterations) {
  const int m = t.rows() - 1;
  const int obj = m;
  const int rhs = t.cols() - 1;
  int stall = 0;
  for (int it = 0; it < options.max_iterations; ++it) {
    ++*iterations;
    const bool bland = stall > 2 * (m + num_cols);
    // Entering column: most negative reduced cost (Dantzig) or first
    // negative (Bland).
    int enter = -1;
    double best = -options.tolerance;
    for (int c = 0; c < num_cols; ++c) {
      const double rc = t.At(obj, c);
      if (rc < best) {
        enter = c;
        if (bland) break;
        best = rc;
      }
    }
    if (enter == -1) return PhaseResult::kOptimal;

    // Leaving row: min ratio test, ties to smaller basis index (Bland).
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < m; ++r) {
      const double a = t.At(r, enter);
      if (a > options.tolerance) {
        const double ratio = t.At(r, rhs) / a;
        if (ratio < best_ratio - options.tolerance ||
            (ratio < best_ratio + options.tolerance && leave != -1 &&
             basis[r] < basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == -1) return PhaseResult::kUnbounded;

    if (best_ratio < options.tolerance) {
      ++stall;  // degenerate pivot
    } else {
      stall = 0;
    }
    t.Pivot(leave, enter);
    basis[leave] = enter;
  }
  return PhaseResult::kIterationLimit;
}

}  // namespace

Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const SimplexOptions& options) {
  if (lp.num_vars <= 0) {
    return Status::InvalidArgument("LP has no variables");
  }
  if (static_cast<int>(lp.objective.size()) != lp.num_vars) {
    return Status::InvalidArgument("objective size mismatch");
  }
  const int m = static_cast<int>(lp.rows.size());
  const int n = lp.num_vars;

  // Count auxiliary columns.
  int num_slack = 0;
  for (const Row& row : lp.rows) {
    if (row.type != RowType::kEqual) ++num_slack;
  }
  const int num_artificial = m;  // one per row keeps phase 1 uniform
  const int total = n + num_slack + num_artificial;
  const int rhs_col = total;

  Tableau t(m + 1, total + 1);
  std::vector<int> basis(m, -1);

  int slack_cursor = n;
  for (int r = 0; r < m; ++r) {
    const Row& row = lp.rows[r];
    if (static_cast<int>(row.coeffs.size()) > n) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     " has more coefficients than variables");
    }
    double sign = 1.0;
    double rhs = row.rhs;
    RowType type = row.type;
    if (rhs < 0) {
      sign = -1.0;
      rhs = -rhs;
      if (type == RowType::kLessEqual) {
        type = RowType::kGreaterEqual;
      } else if (type == RowType::kGreaterEqual) {
        type = RowType::kLessEqual;
      }
    }
    for (size_t c = 0; c < row.coeffs.size(); ++c) {
      t.At(r, static_cast<int>(c)) = sign * row.coeffs[c];
    }
    t.At(r, rhs_col) = rhs;
    if (type == RowType::kLessEqual) {
      t.At(r, slack_cursor) = 1.0;
      basis[r] = slack_cursor;  // slack is basic; artificial stays 0
      ++slack_cursor;
    } else if (type == RowType::kGreaterEqual) {
      t.At(r, slack_cursor) = -1.0;  // surplus
      ++slack_cursor;
    }
    // Artificial column (always added; basic unless a slack already is).
    const int art = n + num_slack + r;
    t.At(r, art) = 1.0;
    if (basis[r] == -1) basis[r] = art;
  }

  // Phase 1 objective: minimize the sum of artificials. Give every
  // artificial column cost 1, then price out the rows whose basic variable
  // is an artificial so basic columns have reduced cost 0.
  const int obj = m;
  for (int r = 0; r < m; ++r) t.At(obj, n + num_slack + r) = 1.0;
  for (int r = 0; r < m; ++r) {
    if (basis[r] == n + num_slack + r) {
      for (int c = 0; c <= total; ++c) t.At(obj, c) -= t.At(r, c);
    }
  }

  LpSolution solution;
  PhaseResult phase1 =
      RunSimplex(t, basis, total, options, &solution.iterations);
  if (phase1 == PhaseResult::kIterationLimit) {
    return Status::Internal("simplex phase 1 hit the iteration limit");
  }
  const double phase1_value = -t.At(obj, rhs_col);
  if (phase1 == PhaseResult::kUnbounded || phase1_value > 1e-6) {
    return Status::Infeasible("phase 1 optimum " +
                              std::to_string(phase1_value) + " > 0");
  }

  // Drive any remaining basic artificials out (degenerate rows).
  for (int r = 0; r < m; ++r) {
    const int art_base = n + num_slack;
    if (basis[r] >= art_base) {
      int enter = -1;
      for (int c = 0; c < n + num_slack; ++c) {
        if (std::abs(t.At(r, c)) > 1e-7) {
          enter = c;
          break;
        }
      }
      if (enter >= 0) {
        t.Pivot(r, enter);
        basis[r] = enter;
      }
      // else: the row is all-zero (redundant constraint); harmless.
    }
  }

  // Phase 2: rebuild the objective row from the original costs.
  for (int c = 0; c <= total; ++c) t.At(obj, c) = 0.0;
  for (int c = 0; c < n; ++c) t.At(obj, c) = lp.objective[c];
  for (int r = 0; r < m; ++r) {
    const int bc = basis[r];
    if (bc < n && lp.objective[bc] != 0.0) {
      const double cost = lp.objective[bc];
      for (int c = 0; c <= total; ++c) {
        t.At(obj, c) -= cost * t.At(r, c);
      }
    }
  }
  // Exclude artificial columns from entering in phase 2.
  PhaseResult phase2 =
      RunSimplex(t, basis, n + num_slack, options, &solution.iterations);
  if (phase2 == PhaseResult::kIterationLimit) {
    return Status::Internal("simplex phase 2 hit the iteration limit");
  }
  if (phase2 == PhaseResult::kUnbounded) {
    return Status::Unbounded("LP is unbounded below");
  }

  solution.x.assign(n, 0.0);
  for (int r = 0; r < m; ++r) {
    if (basis[r] < n) solution.x[basis[r]] = t.At(r, rhs_col);
  }
  solution.objective = -t.At(obj, rhs_col);
  return solution;
}

}  // namespace gum::solver
