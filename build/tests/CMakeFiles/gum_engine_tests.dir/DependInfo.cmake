
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/gum_engine_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/gum_engine_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/dobfs_test.cc" "tests/CMakeFiles/gum_engine_tests.dir/dobfs_test.cc.o" "gcc" "tests/CMakeFiles/gum_engine_tests.dir/dobfs_test.cc.o.d"
  "/root/repo/tests/engine_edge_cases_test.cc" "tests/CMakeFiles/gum_engine_tests.dir/engine_edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/gum_engine_tests.dir/engine_edge_cases_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/gum_engine_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/gum_engine_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/fast_wcc_test.cc" "tests/CMakeFiles/gum_engine_tests.dir/fast_wcc_test.cc.o" "gcc" "tests/CMakeFiles/gum_engine_tests.dir/fast_wcc_test.cc.o.d"
  "/root/repo/tests/fsteal_test.cc" "tests/CMakeFiles/gum_engine_tests.dir/fsteal_test.cc.o" "gcc" "tests/CMakeFiles/gum_engine_tests.dir/fsteal_test.cc.o.d"
  "/root/repo/tests/near_far_test.cc" "tests/CMakeFiles/gum_engine_tests.dir/near_far_test.cc.o" "gcc" "tests/CMakeFiles/gum_engine_tests.dir/near_far_test.cc.o.d"
  "/root/repo/tests/osteal_test.cc" "tests/CMakeFiles/gum_engine_tests.dir/osteal_test.cc.o" "gcc" "tests/CMakeFiles/gum_engine_tests.dir/osteal_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/gum_engine_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/gum_engine_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/run_result_test.cc" "tests/CMakeFiles/gum_engine_tests.dir/run_result_test.cc.o" "gcc" "tests/CMakeFiles/gum_engine_tests.dir/run_result_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
