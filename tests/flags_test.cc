#include <gtest/gtest.h>

#include <string>

#include "common/flags.h"
#include "core/async/async_options.h"
#include "graph/mutation.h"

namespace gum {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, KeyValueForm) {
  const auto flags = Parse({"--algo=bfs", "--devices=8"});
  EXPECT_EQ(flags.GetString("algo", "x"), "bfs");
  EXPECT_EQ(flags.GetInt("devices", 0), 8);
}

TEST(FlagsTest, SeparatedValueForm) {
  const auto flags = Parse({"--algo", "sssp", "--scale", "12"});
  EXPECT_EQ(flags.GetString("algo", ""), "sssp");
  EXPECT_EQ(flags.GetInt("scale", 0), 12);
}

TEST(FlagsTest, BareBooleans) {
  const auto flags = Parse({"--timeline", "--weighted"});
  EXPECT_TRUE(flags.GetBool("timeline", false));
  EXPECT_TRUE(flags.GetBool("weighted", false));
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_TRUE(flags.GetBool("missing", true));
}

TEST(FlagsTest, ExplicitBooleanValues) {
  const auto flags = Parse({"--a=true", "--b=0", "--c=off", "--d=garbage"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_FALSE(flags.GetBool("c", true));
  EXPECT_TRUE(flags.GetBool("d", true)) << "garbage falls back to default";
}

TEST(FlagsTest, Doubles) {
  const auto flags = Parse({"--epsilon=1e-9", "--factor=2.5"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("epsilon", 0), 1e-9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("factor", 0), 2.5);
}

TEST(FlagsTest, MalformedNumbersFallBack) {
  const auto flags = Parse({"--n=12x", "--f=abc"});
  EXPECT_EQ(flags.GetInt("n", -1), -1);
  EXPECT_DOUBLE_EQ(flags.GetDouble("f", -2.0), -2.0);
}

TEST(FlagsTest, Positional) {
  const auto flags = Parse({"input.txt", "--algo=bfs", "output.txt"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(FlagsTest, DoubleDashEndsFlags) {
  const auto flags = Parse({"--a=1", "--", "--not-a-flag"});
  EXPECT_TRUE(flags.Has("a"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "--not-a-flag");
}

TEST(FlagsTest, KnownFlagsOnlyValidation) {
  const auto flags = Parse({"--good=1", "--bad=2"});
  EXPECT_TRUE(flags.KnownFlagsOnly({"good", "bad"}).ok());
  const Status s = flags.KnownFlagsOnly({"good"});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("--bad"), std::string::npos);
}

TEST(FlagsTest, GetEnumAcceptsAllowedValues) {
  const auto flags = Parse({"--algo=sssp"});
  const auto v = flags.GetEnum("algo", "bfs", {"bfs", "sssp", "wcc"});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "sssp");
}

TEST(FlagsTest, GetEnumDefaultsWhenAbsent) {
  const auto flags = Parse({});
  const auto v = flags.GetEnum("algo", "bfs", {"bfs", "sssp"});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "bfs");
}

TEST(FlagsTest, GetEnumRejectsUnknownValueLoudly) {
  // The CLI's silent-fallback bug: "--algo=bsf" must fail, naming the
  // flag, the offending value, and the allowed set.
  const auto flags = Parse({"--algo=bsf"});
  const auto v = flags.GetEnum("algo", "bfs", {"bfs", "sssp", "wcc"});
  ASSERT_FALSE(v.ok());
  const std::string msg = v.status().ToString();
  EXPECT_NE(msg.find("bsf"), std::string::npos) << msg;
  EXPECT_NE(msg.find("--algo"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bfs|sssp|wcc"), std::string::npos) << msg;
}

TEST(FlagsTest, GetEnumRejectsEmptyBareFlag) {
  // A bare "--contention" parses as the empty string, which is not an
  // allowed value either.
  const auto flags = Parse({"--contention"});
  EXPECT_FALSE(flags.GetEnum("contention", "off", {"off", "fair"}).ok());
}

TEST(FlagsTest, SeparatedNegativeNumberValue) {
  // "--x -5": -5 does not start with "--", so it is consumed as the value.
  const auto flags = Parse({"--x", "-5"});
  EXPECT_EQ(flags.GetInt("x", 0), -5);
}

TEST(FlagsTest, GetIntListParsesCommaSeparatedValues) {
  const auto flags = Parse({"--sources=3,0,17,-2"});
  const auto v = flags.GetIntList("sources", {});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<int64_t>{3, 0, 17, -2}));
}

TEST(FlagsTest, GetIntListSingleValue) {
  const auto flags = Parse({"--sources=42"});
  const auto v = flags.GetIntList("sources", {});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<int64_t>{42}));
}

TEST(FlagsTest, GetIntListDefaultsWhenAbsent) {
  const auto flags = Parse({});
  const auto v = flags.GetIntList("bench-widths", {1, 8, 64});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<int64_t>{1, 8, 64}));
}

TEST(FlagsTest, GetIntListRejectsMalformedTokenLoudly) {
  // Like GetEnum: a typo must fail naming the flag and the bad token, not
  // silently fall back.
  const auto flags = Parse({"--sources=3,x,7"});
  const auto v = flags.GetIntList("sources", {});
  ASSERT_FALSE(v.ok());
  const std::string msg = v.status().ToString();
  EXPECT_NE(msg.find("'x'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("--sources"), std::string::npos) << msg;
}

TEST(FlagsTest, GetIntListRejectsPartialInteger) {
  const auto flags = Parse({"--sources=1,2x3"});
  EXPECT_FALSE(flags.GetIntList("sources", {}).ok());
}

TEST(FlagsTest, GetIntListRejectsEmptyTokens) {
  EXPECT_FALSE(Parse({"--sources=1,,2"}).GetIntList("sources", {}).ok());
  EXPECT_FALSE(Parse({"--sources=1,2,"}).GetIntList("sources", {}).ok());
  EXPECT_FALSE(Parse({"--sources=,1"}).GetIntList("sources", {}).ok());
}

TEST(FlagsTest, GetIntListRejectsBareFlag) {
  // Bare "--sources" parses as the empty string: one empty token, invalid.
  EXPECT_FALSE(Parse({"--sources"}).GetIntList("sources", {}).ok());
}

// --mutations values flow verbatim into MutationPlan::Parse; like the
// fault-plan grammar, unknown tokens must be loud InvalidArguments the
// CLIs turn into non-zero exits — never a silently empty plan.
TEST(FlagsTest, MutationPlanGrammarRejectsUnknownTokensLoudly) {
  const auto flags = Parse({"--mutations=frob:1-2@3"});
  const auto plan =
      graph::MutationPlan::Parse(flags.GetString("mutations", "none"));
  ASSERT_FALSE(plan.ok());
  const std::string msg = plan.status().ToString();
  EXPECT_NE(msg.find("unknown event kind"), std::string::npos) << msg;
  EXPECT_NE(msg.find("frob"), std::string::npos) << msg;
}

TEST(FlagsTest, MutationPlanGrammarRejectsMalformedEvents) {
  for (const char* spec :
       {"ins:1-2", "ins:x-2@1", "del:1-2@1x2.0", "rand:0x4", "rand:2"}) {
    const auto flags = Parse({(std::string("--mutations=") + spec).c_str()});
    EXPECT_FALSE(
        graph::MutationPlan::Parse(flags.GetString("mutations", "none")).ok())
        << "spec accepted: " << spec;
  }
}

TEST(FlagsTest, MutationPlanDefaultIsEmpty) {
  const auto flags = Parse({});
  const auto plan =
      graph::MutationPlan::Parse(flags.GetString("mutations", "none"));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
}

// --mode / --worklist values flow verbatim into the async-option parsers;
// like every other CLI enum they must reject loudly, naming the bad value
// and the allowed set.
TEST(FlagsTest, EngineModeParsesBothModes) {
  const auto flags = Parse({"--mode=async"});
  const auto mode = core::ParseEngineMode(flags.GetString("mode", "bsp"));
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, core::EngineMode::kAsync);
  EXPECT_EQ(*core::ParseEngineMode("bsp"), core::EngineMode::kBsp);
  EXPECT_STREQ(core::EngineModeName(core::EngineMode::kAsync), "async");
}

TEST(FlagsTest, EngineModeRejectsUnknownValueLoudly) {
  const auto flags = Parse({"--mode=turbo"});
  const auto mode = core::ParseEngineMode(flags.GetString("mode", "bsp"));
  ASSERT_FALSE(mode.ok());
  const std::string msg = mode.status().ToString();
  EXPECT_NE(msg.find("turbo"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bsp|async"), std::string::npos) << msg;
}

TEST(FlagsTest, AsyncWorklistKindParsesAndRejectsLoudly) {
  const auto flags = Parse({"--worklist=smq"});
  const auto kind =
      core::ParseAsyncWorklistKind(flags.GetString("worklist", "buckets"));
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, core::AsyncWorklistKind::kSmq);
  EXPECT_EQ(*core::ParseAsyncWorklistKind("buckets"),
            core::AsyncWorklistKind::kBuckets);

  const auto bad = core::ParseAsyncWorklistKind("deque");
  ASSERT_FALSE(bad.ok());
  const std::string msg = bad.status().ToString();
  EXPECT_NE(msg.find("deque"), std::string::npos) << msg;
  EXPECT_NE(msg.find("buckets|smq"), std::string::npos) << msg;
}

// --delta / --steal-prob / --steal-batch range checks (the CLI turns each
// of these into a non-zero exit before anything runs).
TEST(FlagsTest, AsyncConfigDefaultsValidate) {
  EXPECT_TRUE(core::ValidateAsyncConfig(core::AsyncConfig{}).ok());
}

TEST(FlagsTest, AsyncConfigRejectsOutOfRangeKnobsLoudly) {
  const auto reject = [](auto mutate, const char* needle) {
    core::AsyncConfig cfg;
    mutate(cfg);
    const Status s = core::ValidateAsyncConfig(cfg);
    ASSERT_FALSE(s.ok()) << needle;
    EXPECT_NE(s.ToString().find(needle), std::string::npos) << s.ToString();
  };
  reject([](core::AsyncConfig& c) { c.delta = -0.5; }, "--delta");
  reject([](core::AsyncConfig& c) { c.steal_prob = 1.5; }, "--steal-prob");
  reject([](core::AsyncConfig& c) { c.steal_prob = -0.1; }, "--steal-prob");
  reject([](core::AsyncConfig& c) { c.steal_batch_size = 0; },
         "--steal-batch");
  reject([](core::AsyncConfig& c) { c.smq_queues = 0; }, "smq_queues");
  reject([](core::AsyncConfig& c) { c.range_steal_min_victim = -1; },
         "range_steal_min_victim");
  reject([](core::AsyncConfig& c) { c.range_steal_fraction = 0.0; },
         "range_steal_fraction");
  reject([](core::AsyncConfig& c) { c.range_steal_fraction = 1.5; },
         "range_steal_fraction");
  reject([](core::AsyncConfig& c) { c.max_batch = 0; }, "max_batch");
}

// A parsed flag set maps onto AsyncConfig exactly the way gum_cli binds it.
TEST(FlagsTest, AsyncFlagsBindToConfig) {
  const auto flags = Parse({"--mode=async", "--delta=2.5",
                            "--worklist=smq", "--steal-prob=0.25",
                            "--steal-batch=16", "--async-seed=99"});
  core::AsyncConfig cfg;
  cfg.delta = flags.GetDouble("delta", 0.0);
  cfg.worklist =
      *core::ParseAsyncWorklistKind(flags.GetString("worklist", "buckets"));
  cfg.steal_prob = flags.GetDouble("steal-prob", cfg.steal_prob);
  cfg.steal_batch_size =
      static_cast<int>(flags.GetInt("steal-batch", cfg.steal_batch_size));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("async-seed", 1));
  EXPECT_TRUE(core::ValidateAsyncConfig(cfg).ok());
  EXPECT_EQ(cfg.delta, 2.5);
  EXPECT_EQ(cfg.worklist, core::AsyncWorklistKind::kSmq);
  EXPECT_EQ(cfg.steal_prob, 0.25);
  EXPECT_EQ(cfg.steal_batch_size, 16);
  EXPECT_EQ(cfg.seed, 99u);
}

}  // namespace
}  // namespace gum
