#include <gtest/gtest.h>

#include <cmath>

#include "solver/milp.h"

namespace gum::solver {
namespace {

// Classic knapsack-style MILP where the LP relaxation is fractional:
// max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6, x,y integer.
// LP optimum (3, 1.5) value 21; integer optimum (4, 0)? 6*4=24 ok, 4+0<=6 ok,
// value 20? also (2,2): 5*2+4*2=18. (3,1): 19. (4,0): 20. So 20.
TEST(MilpTest, FractionalRelaxationBranches) {
  LinearProgram lp;
  lp.AddVariable(-5.0);
  lp.AddVariable(-4.0);
  lp.AddRow({{6.0, 4.0}, RowType::kLessEqual, 24.0});
  lp.AddRow({{1.0, 2.0}, RowType::kLessEqual, 6.0});
  auto sol = SolveMilp(lp, {true, true});
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -20.0, 1e-6);
  EXPECT_NEAR(sol->x[0], 4.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 0.0, 1e-6);
  EXPECT_TRUE(sol->proven_optimal);
}

TEST(MilpTest, AlreadyIntegralRelaxationNeedsNoBranching) {
  LinearProgram lp;
  lp.AddVariable(1.0);
  lp.AddRow({{1.0}, RowType::kGreaterEqual, 3.0});
  auto sol = SolveMilp(lp, {true});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 3.0, 1e-9);
  EXPECT_LE(sol->nodes_explored, 2);
}

TEST(MilpTest, MixedIntegerAndContinuous) {
  // min x + 0.5 y  s.t. x + y >= 3.7, x integer, y continuous in [0, 0.5].
  // The relaxation picks x = 3.2; branching down (x <= 3) forces y >= 0.7,
  // infeasible; branching up gives x = 4, y = 0, value 4.0.
  LinearProgram lp;
  lp.AddVariable(1.0);
  lp.AddVariable(0.5);
  lp.AddRow({{1.0, 1.0}, RowType::kGreaterEqual, 3.7});
  lp.AddRow({{0.0, 1.0}, RowType::kLessEqual, 0.5});
  auto sol = SolveMilp(lp, {true, false});
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->x[0], 4.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 0.0, 1e-6);
  EXPECT_NEAR(sol->objective, 4.0, 1e-6);
}

TEST(MilpTest, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 has no integer point.
  LinearProgram lp;
  lp.AddVariable(1.0);
  lp.AddRow({{1.0}, RowType::kGreaterEqual, 0.4});
  lp.AddRow({{1.0}, RowType::kLessEqual, 0.6});
  auto sol = SolveMilp(lp, {true});
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(MilpTest, InfeasibleLpPropagates) {
  LinearProgram lp;
  lp.AddVariable(1.0);
  lp.AddRow({{1.0}, RowType::kLessEqual, 1.0});
  lp.AddRow({{1.0}, RowType::kGreaterEqual, 2.0});
  auto sol = SolveMilp(lp, {true});
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(MilpTest, SizeMismatchRejected) {
  LinearProgram lp;
  lp.AddVariable(1.0);
  EXPECT_FALSE(SolveMilp(lp, {true, false}).ok());
}

TEST(MilpTest, EqualityWithIntegers) {
  // min 3x + 2y s.t. x + y = 5, x,y >= 0 integer => (0,5) cost 10.
  LinearProgram lp;
  lp.AddVariable(3.0);
  lp.AddVariable(2.0);
  lp.AddRow({{1.0, 1.0}, RowType::kEqual, 5.0});
  auto sol = SolveMilp(lp, {true, true});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 10.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 5.0, 1e-6);
}

}  // namespace
}  // namespace gum::solver
