#include "graph/csr.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace gum::graph {

Result<CsrGraph> CsrGraph::FromEdgeList(const EdgeList& list,
                                        const CsrBuildOptions& options) {
  const VertexId n = list.num_vertices;
  for (const Edge& e : list.edges) {
    if (e.src >= n || e.dst >= n) {
      return Status::InvalidArgument(
          "edge endpoint out of range: (" + std::to_string(e.src) + "," +
          std::to_string(e.dst) + ") with num_vertices=" + std::to_string(n));
    }
  }

  // Materialize the working edge set (possibly symmetrized).
  std::vector<Edge> edges;
  edges.reserve(list.edges.size() * (options.symmetrize ? 2 : 1));
  for (const Edge& e : list.edges) {
    if (options.remove_self_loops && e.src == e.dst) continue;
    edges.push_back(e);
    if (options.symmetrize && e.src != e.dst) {
      edges.push_back(Edge{e.dst, e.src, e.weight});
    }
  }

  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  if (options.deduplicate) {
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  CsrGraph g;
  g.out_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges) g.out_offsets_[e.src + 1]++;
  std::partial_sum(g.out_offsets_.begin(), g.out_offsets_.end(),
                   g.out_offsets_.begin());

  const bool weighted =
      std::any_of(edges.begin(), edges.end(),
                  [](const Edge& e) { return e.weight != 1.0f; });
  g.out_targets_.resize(edges.size());
  if (weighted) g.out_weights_.resize(edges.size());
  {
    std::vector<EdgeId> cursor(g.out_offsets_.begin(),
                               g.out_offsets_.end() - 1);
    for (const Edge& e : edges) {
      const EdgeId pos = cursor[e.src]++;
      g.out_targets_[pos] = e.dst;
      if (weighted) g.out_weights_[pos] = e.weight;
    }
  }
  // Sorted insert order is already guaranteed by the sort above; the
  // sort_neighbors option only matters if dedup was off with unstable input,
  // so nothing extra to do here.
  (void)options.sort_neighbors;

  if (options.build_in_csr) {
    g.in_offsets_.assign(n + 1, 0);
    for (const VertexId dst : g.out_targets_) g.in_offsets_[dst + 1]++;
    std::partial_sum(g.in_offsets_.begin(), g.in_offsets_.end(),
                     g.in_offsets_.begin());
    g.in_targets_.resize(g.out_targets_.size());
    std::vector<EdgeId> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (VertexId u = 0; u < n; ++u) {
      for (const VertexId v : g.OutNeighbors(u)) {
        g.in_targets_[cursor[v]++] = u;
      }
    }
  }
  return g;
}

size_t CsrGraph::MemoryBytes() const {
  return out_offsets_.size() * sizeof(EdgeId) +
         out_targets_.size() * sizeof(VertexId) +
         out_weights_.size() * sizeof(float) +
         in_offsets_.size() * sizeof(EdgeId) +
         in_targets_.size() * sizeof(VertexId);
}

}  // namespace gum::graph
