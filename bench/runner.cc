#include "bench/runner.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <string>

#include "algos/apps.h"
#include "algos/dobfs.h"
#include "algos/near_far_sssp.h"
#include "baselines/groute_cc.h"
#include "baselines/groute_like.h"
#include "baselines/gunrock_like.h"
#include "common/logging.h"
#include "core/engine.h"
#include "core/fast_wcc.h"
#include "graph/frontier_features.h"
#include "graph/stats.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "sim/kernel_cost.h"
#include "sim/topology.h"

namespace gum::bench {

const char* SystemName(System system) {
  switch (system) {
    case System::kGunrock:
      return "Gunrock";
    case System::kGroute:
      return "Groute";
    case System::kGum:
      return "Gum";
  }
  return "?";
}

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kBfs:
      return "BFS";
    case Algo::kWcc:
      return "WCC";
    case Algo::kPr:
      return "PR";
    case Algo::kSssp:
      return "SSSP";
  }
  return "?";
}

sim::DeviceParams BenchDeviceParams() {
  sim::DeviceParams dev;
  dev.base_edge_ns = 180.0;  // 0.45 ns/edge x ~400 graph-scale factor
  return dev;
}

namespace {

// Algorithm-specific single-GPU boost of the Gunrock baseline (paper Exp-2:
// direction-optimized BFS and near-far SSSP shine on one GPU).
baselines::GunrockOptions GunrockOptionsFor(Algo algo) {
  baselines::GunrockOptions opt;
  opt.device = BenchDeviceParams();
  // Gunrock's BSP pipeline (advance/filter/separate + per-peer buffer
  // manipulation, paper Fig. 4a) carries a heavier per-iteration constant
  // than GUM's aggregated path; paper Fig. 1 measures it at "several ms"
  // per iteration on 8 GPUs.
  opt.device.sync_per_peer_us = 250.0;
  switch (algo) {
    case Algo::kBfs:
      // BFS gets the real direction-optimized algorithm instead of a
      // factor (see the kGunrock/kBfs dispatch below).
      opt.single_gpu_compute_factor = 1.0;
      break;
    case Algo::kSssp:
      // SSSP gets the real near-far algorithm at n=1 (dispatch below).
      opt.single_gpu_compute_factor = 1.0;
      break;
    case Algo::kWcc:
      opt.single_gpu_compute_factor = 0.90;
      break;
    case Algo::kPr:
      opt.single_gpu_compute_factor = 0.88;
      break;
  }
  return opt;
}

// Executes one cell; the report plumbing lives in the RunBenchmark wrapper.
core::RunResult RunBenchmarkImpl(const DatasetGraphs& data,
                                 const RunConfig& config) {
  const graph::CsrGraph& g =
      config.algo == Algo::kWcc ? data.symmetric : data.directed;

  graph::PartitionOptions popt;
  popt.kind = config.partitioner;
  popt.seed = config.partition_seed;
  auto partition = graph::PartitionGraph(g, config.devices, popt);
  GUM_CHECK_OK(partition.status());

  auto topology = sim::Topology::HybridCubeMeshSubset(config.devices);
  GUM_CHECK_OK(topology.status());

  const graph::VertexId source = PickSource(g);

  switch (config.system) {
    case System::kGum: {
      core::EngineOptions opt = config.gum;
      // Calibrate the device unless the caller supplied custom parameters
      // (fig10 uses Gunrock-grade pipeline constants for its "base" bar).
      if (opt.device.base_edge_ns == sim::DeviceParams{}.base_edge_ns) {
        opt.device = BenchDeviceParams();
      }
      if (config.cost_model != nullptr) opt.exact_cost_oracle = false;
      opt.contention = config.contention;
      opt.multipath = config.multipath;
      switch (config.algo) {
        case Algo::kBfs: {
          algos::BfsApp app;
          app.source = source;
          return core::GumEngine<algos::BfsApp>(&g, *partition, *topology,
                                                opt, config.cost_model)
              .Run(app);
        }
        case Algo::kSssp: {
          algos::SsspApp app;
          app.source = source;
          return core::GumEngine<algos::SsspApp>(&g, *partition, *topology,
                                                 opt, config.cost_model)
              .Run(app);
        }
        case Algo::kWcc: {
          // GSwitch-style variant selection on estimated cost: min-label
          // propagation costs ~diameter barriers + ~2.5 edge passes;
          // FastWcc (core/fast_wcc.h, the libgrape-lite scheme) is
          // diameter-independent but hooks every edge each of ~4 rounds.
          const auto whole = graph::ExtractFrontierFeatures(
              g, partition->part_vertices.empty()
                     ? std::vector<graph::VertexId>{}
                     : partition->part_vertices[0]);
          const double edge_ns = sim::TrueEdgeCostNs(whole, opt.device);
          const double edges = static_cast<double>(g.num_edges());
          const double barrier_ms =
              (opt.device.sync_per_peer_us * config.devices +
               5 * opt.device.kernel_launch_us) /
              1000.0;
          const double fastwcc_ms = 4.0 * 1.15 * edges * edge_ns / 1e6;
          const double labelprop_ms =
              graph::PseudoDiameter(g) * 1.5 * barrier_ms +
              2.5 * edges * edge_ns / 1e6;
          if (!config.force_labelprop_wcc && fastwcc_ms < labelprop_ms) {
            core::FastWccOptions wcc_opt;
            wcc_opt.device = opt.device;
            wcc_opt.contention = config.contention;
            return core::FastWcc(g, *partition, *topology, wcc_opt);
          }
          algos::WccApp app;
          return core::GumEngine<algos::WccApp>(&g, *partition, *topology,
                                                opt, config.cost_model)
              .Run(app);
        }
        case Algo::kPr: {
          // Benchmarked PR is delta-PageRank (the paper's intro names
          // delta-PageRank among the long-tail workloads OSteal targets).
          algos::DeltaPageRankApp app;
          app.num_vertices = g.num_vertices();
          app.epsilon = 1e-13;
          return core::GumEngine<algos::DeltaPageRankApp>(&g, *partition,
                                                          *topology, opt,
                                                          config.cost_model)
              .Run(app);
        }
      }
      break;
    }
    case System::kGunrock: {
      baselines::GunrockOptions opt = GunrockOptionsFor(config.algo);
      opt.contention = config.contention;
      switch (config.algo) {
        case Algo::kBfs: {
          if (config.devices == 1) {
            // Gunrock's celebrated single-GPU BFS is direction-optimized
            // (Beamer push/pull); it is what makes its 1-GPU numbers hard
            // to scale past (paper Exp-2).
            algos::DoBfsOptions dobfs;
            dobfs.device = opt.device;
            return algos::DirectionOptimizedBfs(g, *partition, *topology,
                                                source, dobfs);
          }
          algos::BfsApp app;
          app.source = source;
          return baselines::GunrockLikeEngine<algos::BfsApp>(
                     &g, *partition, *topology, opt)
              .Run(app);
        }
        case Algo::kSssp: {
          if (config.devices == 1) {
            // Near-far delta-stepping (Davidson et al.): Gunrock's strong
            // single-GPU SSSP that is hard to scale out (paper Exp-2).
            algos::NearFarOptions nf;
            nf.device = opt.device;
            return algos::NearFarSssp(g, *partition, *topology, source, nf);
          }
          algos::SsspApp app;
          app.source = source;
          return baselines::GunrockLikeEngine<algos::SsspApp>(
                     &g, *partition, *topology, opt)
              .Run(app);
        }
        case Algo::kWcc: {
          algos::WccApp app;
          return baselines::GunrockLikeEngine<algos::WccApp>(
                     &g, *partition, *topology, opt)
              .Run(app);
        }
        case Algo::kPr: {
          algos::DeltaPageRankApp app;
          app.num_vertices = g.num_vertices();
          app.epsilon = 1e-13;
          return baselines::GunrockLikeEngine<algos::DeltaPageRankApp>(
                     &g, *partition, *topology, opt)
              .Run(app);
        }
      }
      break;
    }
    case System::kGroute: {
      baselines::GrouteOptions opt;
      opt.device = BenchDeviceParams();
      opt.contention = config.contention;
      switch (config.algo) {
        case Algo::kBfs: {
          algos::BfsApp app;
          app.source = source;
          return baselines::GrouteLikeEngine<algos::BfsApp>(&g, *partition,
                                                            opt)
              .Run(app);
        }
        case Algo::kSssp: {
          algos::SsspApp app;
          app.source = source;
          return baselines::GrouteLikeEngine<algos::SsspApp>(&g, *partition,
                                                             opt)
              .Run(app);
        }
        case Algo::kWcc: {
          // Groute's connected components is its dedicated diameter-
          // independent local-UF + label-exchange algorithm, not label
          // propagation (see baselines/groute_cc.h).
          baselines::GrouteCcOptions cc_opt;
          cc_opt.device = opt.device;
          cc_opt.contention = config.contention;
          return baselines::GrouteCcEngine(&g, *partition, cc_opt).Run();
        }
        case Algo::kPr: {
          algos::DeltaPageRankApp app;
          app.num_vertices = g.num_vertices();
          app.epsilon = 1e-13;
          return baselines::GrouteLikeEngine<algos::DeltaPageRankApp>(
                     &g, *partition, opt)
              .Run(app);
        }
      }
      break;
    }
  }
  GUM_CHECK(false) << "unreachable";
  return {};
}

}  // namespace

core::RunResult RunBenchmark(const DatasetGraphs& data,
                             const RunConfig& config) {
  std::string report_dir = config.report_dir;
  if (report_dir.empty()) {
    const char* env = std::getenv("GUM_BENCH_REPORT_DIR");
    if (env != nullptr) report_dir = env;
  }
  if (report_dir.empty()) return RunBenchmarkImpl(data, config);

  // Per-run metrics snapshot: the harnesses run cells serially, so resetting
  // the global registry around the cell leaves exactly this run's series in
  // the report. Metrics recording does not affect simulated results.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.Reset();
  obs::SetMetricsEnabled(true);
  core::RunResult result = RunBenchmarkImpl(data, config);
  obs::SetMetricsEnabled(false);

  obs::RunReportMeta meta;
  meta.system = SystemName(config.system);
  meta.algorithm = AlgoName(config.algo);
  meta.dataset = data.spec.abbr;
  meta.num_devices = config.devices;
  meta.config = {
      {"partitioner", graph::PartitionerName(config.partitioner)},
      {"partition_seed", std::to_string(config.partition_seed)},
      {"contention", sim::ContentionModelName(config.contention)},
      {"pagerank_rounds", std::to_string(config.pagerank_rounds)},
      {"cost_model", config.cost_model != nullptr ? "learned" : "oracle"},
  };
  // Gated like gum_cli: multipath-off cell reports stay byte-identical to
  // the pre-multipath schema.
  if (config.multipath == sim::MultipathMode::kOn) {
    meta.config.emplace_back("multipath",
                             sim::MultipathModeName(config.multipath));
  }

  std::string name;
  name += meta.system;
  name += '_';
  name += meta.algorithm;
  name += '_';
  name += meta.dataset;
  name += '_';
  name += std::to_string(config.devices);
  name += "dev.report.json";
  for (char& c : name) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  const std::string path = report_dir + "/" + name;

  std::ofstream out(path);
  if (!out) {
    GUM_LOG(Warning) << "cannot write run report to " << path;
    return result;
  }
  obs::WriteRunReport(out, meta, result, &metrics);
  return result;
}

}  // namespace gum::bench
