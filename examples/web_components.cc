// Web-graph connected components across all three engines. Builds a
// webbase-style crawl (RMAT core + deep tendrils), symmetrizes it, and runs
// WCC on GUM, the Gunrock-like BSP baseline and the Groute-like async
// baseline — verifying they agree and comparing their simulated runtimes.
//
//   $ ./web_components

#include <iostream>
#include <map>

#include "algos/apps.h"
#include "baselines/groute_like.h"
#include "baselines/gunrock_like.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "sim/topology.h"

using namespace gum;  // NOLINT(build/namespaces)

int main() {
  graph::WebCrawlOptions gen;
  gen.scale = 13;
  gen.edge_factor = 10;
  gen.tendril_fraction = 0.35;
  gen.avg_chain_length = 48;
  gen.seed = 19;
  const graph::EdgeList edges = graph::WebCrawl(gen);

  graph::CsrBuildOptions build;
  build.symmetrize = true;  // WCC needs both directions
  auto g = graph::CsrGraph::FromEdgeList(edges, build);
  if (!g.ok()) {
    std::cerr << g.status().ToString() << "\n";
    return 1;
  }
  std::cout << "web crawl: " << g->num_vertices() << " pages, "
            << g->num_edges() << " links (symmetrized)\n\n";

  auto partition = graph::PartitionGraph(*g, 8, {});
  auto topology = sim::Topology::HybridCubeMeshSubset(8);

  std::vector<graph::VertexId> gum_labels, gunrock_labels, groute_labels;

  algos::WccApp wcc;
  const core::RunResult gum_run =
      core::GumEngine<algos::WccApp>(&*g, *partition, *topology, {})
          .Run(wcc, &gum_labels);
  const core::RunResult gunrock_run =
      baselines::GunrockLikeEngine<algos::WccApp>(&*g, *partition, *topology,
                                                  {})
          .Run(wcc, &gunrock_labels);
  const core::RunResult groute_run =
      baselines::GrouteLikeEngine<algos::WccApp>(&*g, *partition, {})
          .Run(wcc, &groute_labels);

  std::cout << "engines agree: "
            << ((gum_labels == gunrock_labels &&
                 gum_labels == groute_labels)
                    ? "yes"
                    : "NO (bug!)")
            << "\n";

  std::map<graph::VertexId, size_t> component_sizes;
  for (graph::VertexId label : gum_labels) component_sizes[label]++;
  size_t largest = 0;
  for (const auto& [label, size] : component_sizes) {
    largest = std::max(largest, size);
  }
  std::cout << "components: " << component_sizes.size()
            << ", largest covers "
            << 100.0 * largest / gum_labels.size() << "% of pages\n\n";

  std::cout << "simulated runtime (8 vGPUs):\n";
  std::cout << "  GUM          " << gum_run.total_ms << " ms  ("
            << gum_run.iterations << " iterations)\n";
  std::cout << "  Gunrock-like " << gunrock_run.total_ms << " ms  ("
            << gunrock_run.iterations << " iterations)\n";
  std::cout << "  Groute-like  " << groute_run.total_ms << " ms  ("
            << groute_run.iterations << " async batches)\n";
  return 0;
}
