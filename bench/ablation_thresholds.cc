// Ablation: the stealing-activation thresholds of paper Example 5.
//
//   t1 — minimum max-load before FSteal runs ("enough work to cover the
//        decision overhead")
//   t2 — minimum load imbalance before FSteal runs
//   t3 — OSteal evaluates only when the previous iteration wall fell below
//        this (latency-bound regime)
// Sweeps each around GUM's defaults on a mixed workload and reports total
// time + decision overhead: too-eager thresholds pay overhead in balanced
// iterations, too-lazy ones leave starvation on the table.

#include <iostream>

#include "algos/apps.h"
#include "bench/datasets.h"
#include "bench/runner.h"
#include "common/table_printer.h"
#include "core/engine.h"
#include "graph/partition.h"

using namespace gum;        // NOLINT(build/namespaces)
using namespace gum::bench; // NOLINT(build/namespaces)

namespace {

core::RunResult RunWith(const graph::CsrGraph& g,
                        const graph::Partition& partition,
                        const core::EngineOptions& opt) {
  const auto topology = sim::Topology::HybridCubeMesh8();
  core::GumEngine<algos::SsspApp> engine(&g, partition, topology, opt);
  algos::SsspApp app;
  app.source = PickSource(g);
  return engine.Run(app);
}

}  // namespace

int main() {
  std::cout << "=== Ablation: activation thresholds t1/t2 (FSteal) and t3 "
               "(OSteal) — SSSP, 8 vGPUs ===\n\n";

  {
    const DatasetGraphs data = BuildDataset("SW");
    auto partition = graph::PartitionGraph(
        data.directed, 8, {.kind = graph::PartitionerKind::kSegment});
    TablePrinter tp({"t1 (edges)", "t2 (edges)", "total (ms)",
                     "FSteal iters", "sim overhead ms"});
    for (const double t1 : {0.0, 1024.0, 4096.0, 65536.0, 1e18}) {
      core::EngineOptions opt;
      opt.device = BenchDeviceParams();
      opt.enable_osteal = false;
      opt.fsteal.t1_min_max_load = t1;
      opt.fsteal.t2_min_imbalance = t1 / 2;
      const core::RunResult r = RunWith(data.directed, *partition, opt);
      tp.AddRow({t1 >= 1e18 ? "inf" : TablePrinter::Num(t1, 0),
                 t1 >= 1e18 ? "inf" : TablePrinter::Num(t1 / 2, 0),
                 TablePrinter::Num(r.total_ms, 1),
                 std::to_string(r.fsteal_applied_iterations),
                 TablePrinter::Num(r.fsteal_sim_overhead_ms, 2)});
    }
    std::cout << "FSteal thresholds (sinaweibo analog, seg partition):\n";
    tp.Print(std::cout);
  }

  {
    const DatasetGraphs data = BuildDataset("USA");
    auto partition = graph::PartitionGraph(data.directed, 8, {});
    TablePrinter tp({"t3 (ms)", "total (ms)", "group shrinks",
                     "OSteal sim overhead ms"});
    for (const double t3 : {0.0, 0.5, 2.0, 8.0, 1e18}) {
      core::EngineOptions opt;
      opt.device = BenchDeviceParams();
      opt.enable_fsteal = false;
      opt.osteal.t3_trigger_ms = t3;
      const core::RunResult r = RunWith(data.directed, *partition, opt);
      tp.AddRow({t3 >= 1e18 ? "inf" : TablePrinter::Num(t3, 1),
                 TablePrinter::Num(r.total_ms, 1),
                 std::to_string(r.osteal_shrink_events),
                 TablePrinter::Num(r.osteal_sim_overhead_ms, 2)});
    }
    std::cout << "\nOSteal trigger (road-USA analog, random partition):\n";
    tp.Print(std::cout);
  }

  std::cout << "\nExpected shape: both knobs have a sweet spot — t1/t2 = 0 "
               "wastes decisions on balanced iterations, huge thresholds "
               "degenerate to no-stealing; t3 = 0 never engages OSteal "
               "(nothing is 'below' it), huge t3 re-evaluates every "
               "iteration.\n";
  return 0;
}
