// Branch-and-bound mixed-integer solver over the simplex relaxation.
//
// Best-first search: nodes are LP relaxations plus variable bounds added as
// extra rows; the node with the smallest relaxation value is expanded next
// (so the first integral node popped is optimal). A rounding heuristic
// seeds the incumbent, which lets large flat regions prune early. Problems
// here are the Eq.-1 steal MILPs — tiny, so the node limit is a safety net
// rather than an expected exit.

#ifndef GUM_SOLVER_MILP_H_
#define GUM_SOLVER_MILP_H_

#include <vector>

#include "common/status.h"
#include "solver/linear_program.h"
#include "solver/simplex.h"

namespace gum::solver {

struct MilpOptions {
  SimplexOptions simplex;
  int max_nodes = 20000;
  double integrality_tolerance = 1e-6;
  // Stop when (incumbent - best_bound) <= gap_tolerance * max(1,|incumbent|).
  // Min-max steal instances have many alternate optima whose relaxations all
  // tie the incumbent to within rounding; a relative gap keeps B&B from
  // thrashing on those plateaus.
  double gap_tolerance = 1e-4;
  // Optional feasible starting solution (size num_vars). Seeds the incumbent
  // so plateau instances prune immediately; the caller guarantees
  // feasibility (it is NOT re-verified).
  const std::vector<double>* warm_start = nullptr;
  // Wall-clock budget; at expiry the best incumbent (warm start included)
  // is returned with proven_optimal = false. <= 0 disables the limit.
  double time_limit_ms = 0.0;
};

struct MilpSolution {
  double objective = 0.0;
  std::vector<double> x;
  int nodes_explored = 0;
  bool proven_optimal = false;
};

// is_integer[v] marks integral variables (size num_vars). Returns the best
// solution found, Status::Infeasible, or Status::Unbounded (from the root
// relaxation).
Result<MilpSolution> SolveMilp(const LinearProgram& lp,
                               const std::vector<bool>& is_integer,
                               const MilpOptions& options = {});

}  // namespace gum::solver

#endif  // GUM_SOLVER_MILP_H_
