// Whole-graph degree statistics and a BFS pseudo-diameter estimate.
//
// The Gini coefficient and degree-distribution entropy follow the
// definitions of paper Table I (after Kunegis & Preusse, "Fairness on the
// Web"); they are also the whole-graph counterparts of the per-frontier
// features extracted in src/ml/features.*.

#ifndef GUM_GRAPH_STATS_H_
#define GUM_GRAPH_STATS_H_

#include <cstdint>

#include "graph/csr.h"

namespace gum::graph {

struct DegreeStats {
  double avg_out_degree = 0;
  double avg_in_degree = 0;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;
  uint32_t min_out_degree = 0;
  uint32_t min_in_degree = 0;
  double gini = 0;     // of the total (in+out) degree sequence, in [0, 1)
  double entropy = 0;  // normalized degree-distribution entropy, in [0, 1]
};

DegreeStats ComputeDegreeStats(const CsrGraph& g);

// Gini coefficient of a non-negative value sequence (0 = equal, ->1 skewed).
double GiniCoefficient(std::vector<double> values);

// Normalized entropy of the distribution d(u)/sum(d): H / ln(n).
double DegreeEntropy(const std::vector<double>& degrees);

// Double-sweep BFS lower bound on the diameter, treating edges as
// undirected. Good enough to label graphs "long diameter" vs "short".
uint32_t PseudoDiameter(const CsrGraph& g, uint64_t seed = 1);

}  // namespace gum::graph

#endif  // GUM_GRAPH_STATS_H_
