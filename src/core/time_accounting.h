// Per-iteration device time accounting for the superstep runtime.
//
// Converts the iteration's counter matrices (edges expanded, hub-cached
// edges, aggregated/raw messages, applied messages) into simulated time on
// every active device's timeline, split into the four Fig.-6 buckets. This
// is the analytic substrate model of DESIGN.md §1, formerly a private
// template-header method of GumEngine; it depends on nothing App-specific,
// so it lives here as a plain function.
//
// All transfer costs are charged through the CommPlane: the superstep's
// remote-edge gathers and message forwards are enqueued as one
// TransferBatch and settled together, so under contention=fair the
// iteration's transfers genuinely compete for lanes, while contention=off
// reproduces the legacy per-device accumulation bit for bit.

#ifndef GUM_CORE_TIME_ACCOUNTING_H_
#define GUM_CORE_TIME_ACCOUNTING_H_

#include <vector>

#include "core/fsteal.h"
#include "core/run_result.h"
#include "graph/frontier_features.h"
#include "sim/comm_plane.h"
#include "sim/device.h"

namespace gum::core {

// What the accounting actually charged, fed back into the engine's online
// p estimate (Eq. 4): the estimate subtracts the *recorded* kernel-launch
// time instead of guessing a fixed per-iteration kernel count.
struct TimeAccountingSummary {
  // Kernel launches charged per device this iteration (gather kernels +
  // apply kernels + the fixed launch pair); zero for inactive devices.
  std::vector<int> kernel_launches;
  // Total launch time charged across active devices, in ns.
  double kernel_launch_ns_total = 0.0;
};

// Accounts one superstep. `features[i]` describes fragment i's frontier;
// `edges_done[i][j]` / `hub_edges[i][j]` are fragment-i edges expanded by
// device j (hub-cached ones read locally); `agg_msgs[j][f]` / `raw_msgs
// [j][f]` are messages device j sends toward fragment f after / before
// per-vertex aggregation; `apply_msgs[f]` are messages applied to fragment
// f's vertices. Adds to result->timeline, messages_sent and the
// stealing-overhead totals; transfer bytes and lane busy time accumulate
// in `plane` (the engine exports them into RunResult after the run).
//
// Multipath (sim/transfer_plan.h): when `multipath_bulk` is set the
// remote-edge gathers — the FSteal fragment payloads — are enqueued as
// bulk transfers so the plane may stripe them, and when `census_tree` is
// non-null the per-device sync charge follows the tree's SyncFactor
// instead of the all-to-one group factor m. Both default off and leave
// the legacy accounting bit-identical.
TimeAccountingSummary AccountSuperstepTime(
    int iter, sim::CommPlane& plane, const sim::DeviceParams& dev,
    double p_ns, bool aggregate_messages,
    const std::vector<graph::FrontierFeatures>& features,
    const std::vector<std::vector<double>>& edges_done,
    const std::vector<std::vector<double>>& hub_edges,
    const std::vector<std::vector<double>>& agg_msgs,
    const std::vector<std::vector<double>>& raw_msgs,
    const std::vector<double>& apply_msgs,
    const std::vector<int>& owner_of_fragment,
    const std::vector<int>& active, const FStealDecision& fs,
    double stolen_edges, RunResult* result,
    const sim::ReductionTree* census_tree = nullptr,
    bool multipath_bulk = false);

}  // namespace gum::core

#endif  // GUM_CORE_TIME_ACCOUNTING_H_
