#include "core/osteal.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/trace.h"
#include "solver/steal_problem.h"

namespace gum::core {

OStealDecision DecideOSteal(const std::vector<std::vector<double>>& cost,
                            const std::vector<double>& loads,
                            const sim::ReductionSchedule& schedule,
                            double sync_per_peer_ns,
                            const OStealConfig& config,
                            int max_group_size) {
  GUM_TRACE_SCOPE("osteal.decide");
  const int n = schedule.num_devices();
  const int limit =
      max_group_size > 0 ? std::min(max_group_size, n) : n;
  OStealDecision best;
  best.evaluated = true;
  best.predicted_cost_ns = std::numeric_limits<double>::infinity();

  Stopwatch timer;
  for (int m = 1; m <= limit; ++m) {
    const std::vector<int> active = schedule.ActiveFor(m);

    double z;
    if (config.use_greedy) {
      z = solver::GreedyStealPlan(cost, loads, active).makespan;
    } else {
      auto plan = solver::SolveStealProblem(cost, loads, active);
      if (!plan.ok()) {
        GUM_LOG(Warning) << "OSteal inner solve failed for m=" << m << ": "
                         << plan.status().ToString();
        continue;
      }
      best.lp_iterations_total += plan->lp_iterations;
      best.milp_nodes_total += plan->milp_nodes;
      z = plan->makespan;
    }
    const double total = z + sync_per_peer_ns * m;
    if (total < best.predicted_cost_ns) {
      best.predicted_cost_ns = total;
      best.group_size = m;
    }
  }
  GUM_CHECK(best.group_size >= 1) << "OSteal found no feasible group size";
  best.owner = schedule.OwnerVectorFor(best.group_size);
  best.active = schedule.ActiveFor(best.group_size);
  best.decision_host_ms = timer.ElapsedMillis();
  return best;
}

}  // namespace gum::core
