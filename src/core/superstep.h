// Superstep runtime: the apply phase shared by the GUM engine and the
// baseline engines. The expand phase lives in the pluggable backends under
// core/expand/ (frontier_scatter.h re-exported here — it carries the
// WorkUnit decomposition both engines build on; see DESIGN.md §12).
//
// Thread-safety requirement on App: Apply may mutate the vertex value it
// is handed but must not mutate App member state (Apply runs concurrently
// across destination shards — disjoint vertex ranges).

#ifndef GUM_CORE_SUPERSTEP_H_
#define GUM_CORE_SUPERSTEP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "core/expand/frontier_scatter.h"
#include "core/message_store.h"
#include "core/vertex_state.h"
#include "graph/partition.h"

namespace gum::core {

// Scratch reused across iterations by the sharded apply phase. Buffers are
// cleared in place, so steady-state supersteps keep their capacity instead
// of re-growing vectors.
struct ApplyScratch {
  // [shard][fragment] -> activated vertices, ascending within the shard.
  std::vector<std::vector<std::vector<graph::VertexId>>> segments;
  // [shard][fragment] -> applied-message counts.
  std::vector<std::vector<double>> counts;
};

// End-of-superstep apply phase, parallel over destination shards: each
// shard drains its store range in ascending vertex order, applies combined
// messages, and (data-driven mode) pushes activated vertices into per-shard
// per-fragment segments. Segments are then concatenated in shard order —
// shards are ascending contiguous vertex ranges, so each fragment's next
// frontier comes out ascending, identical to the serial drain. In
// fixed-round mode every vertex is applied, absent inboxes with the app's
// Combine identity. next_frontier, when non-null, receives the rebuilt
// frontier (arena reused across iterations). apply_counts, when non-null,
// accumulates per-fragment applied-message counts. Clears the store.
template <typename App>
void ApplySuperstep(ThreadPool* pool, const ShardMap& shards,
                    const graph::Partition& partition, App& app,
                    MessageStore<typename App::Message>& store,
                    std::vector<typename App::Value>& values,
                    bool fixed_rounds, ApplyScratch* scratch,
                    FrontierSoA* next_frontier,
                    std::vector<double>* apply_counts) {
  using Message = typename App::Message;
  const int s_count = shards.num_shards();
  const size_t n = static_cast<size_t>(partition.num_parts);
  const bool want_frontier = !fixed_rounds && next_frontier != nullptr;
  const bool want_counts = apply_counts != nullptr;
  if (scratch->segments.size() < static_cast<size_t>(s_count)) {
    scratch->segments.resize(s_count);
  }
  if (scratch->counts.size() < static_cast<size_t>(s_count)) {
    scratch->counts.resize(s_count);
  }

  const auto apply_shard = [&](size_t s) {
    GUM_TRACE_SCOPE("apply.shard");
    auto& segs = scratch->segments[s];
    if (want_frontier) {
      if (segs.size() != n) segs.resize(n);
      for (auto& seg : segs) seg.clear();
    }
    auto& cnt = scratch->counts[s];
    if (want_counts) cnt.assign(n, 0.0);
    const size_t begin = shards.ShardBegin(static_cast<int>(s));
    const size_t end =
        std::min(values.size(), shards.ShardEnd(static_cast<int>(s)));
    if (fixed_rounds) {
      for (size_t v = begin; v < end; ++v) {
        const auto vid = static_cast<graph::VertexId>(v);
        const Message msg =
            store.Has(vid) ? store.Get(vid) : app.InitialAccumulator();
        app.Apply(vid, values[v], msg);
        if (want_counts) cnt[partition.owner[vid]] += 1.0;
      }
    } else {
      store.ForEachPendingInRange(
          begin, end, [&](graph::VertexId v, const Message& msg) {
            if (app.Apply(v, values[v], msg) && want_frontier) {
              segs[partition.owner[v]].push_back(v);
            }
            if (want_counts) cnt[partition.owner[v]] += 1.0;
          });
    }
  };
  if (pool == nullptr || pool->num_threads() <= 1 || s_count <= 1) {
    for (int s = 0; s < s_count; ++s) apply_shard(static_cast<size_t>(s));
  } else {
    pool->ParallelForStatic(static_cast<size_t>(s_count), apply_shard);
  }

  if (want_frontier) {
    next_frontier->AssignFromShardSegments(scratch->segments, s_count,
                                           static_cast<int>(n));
  }
  if (want_counts) {
    // Integer-valued doubles: exact under any summation order; shard order
    // keeps it deterministic anyway.
    for (int s = 0; s < s_count; ++s) {
      for (size_t i = 0; i < n && i < scratch->counts[s].size(); ++i) {
        (*apply_counts)[i] += scratch->counts[s][i];
      }
    }
  }
  store.EndSuperstep();
}

}  // namespace gum::core

#endif  // GUM_CORE_SUPERSTEP_H_
