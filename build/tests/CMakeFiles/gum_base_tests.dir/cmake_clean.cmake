file(REMOVE_RECURSE
  "CMakeFiles/gum_base_tests.dir/common_test.cc.o"
  "CMakeFiles/gum_base_tests.dir/common_test.cc.o.d"
  "CMakeFiles/gum_base_tests.dir/flags_test.cc.o"
  "CMakeFiles/gum_base_tests.dir/flags_test.cc.o.d"
  "CMakeFiles/gum_base_tests.dir/graph_test.cc.o"
  "CMakeFiles/gum_base_tests.dir/graph_test.cc.o.d"
  "CMakeFiles/gum_base_tests.dir/io_test.cc.o"
  "CMakeFiles/gum_base_tests.dir/io_test.cc.o.d"
  "CMakeFiles/gum_base_tests.dir/partition_test.cc.o"
  "CMakeFiles/gum_base_tests.dir/partition_test.cc.o.d"
  "CMakeFiles/gum_base_tests.dir/stats_test.cc.o"
  "CMakeFiles/gum_base_tests.dir/stats_test.cc.o.d"
  "CMakeFiles/gum_base_tests.dir/webcrawl_test.cc.o"
  "CMakeFiles/gum_base_tests.dir/webcrawl_test.cc.o.d"
  "gum_base_tests"
  "gum_base_tests.pdb"
  "gum_base_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gum_base_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
