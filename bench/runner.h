// Shared bench runner: executes one (system, algorithm, dataset, devices)
// cell and returns the engine's RunResult. Simulated milliseconds are what
// every harness reports (see DESIGN.md §1).

#ifndef GUM_BENCH_RUNNER_H_
#define GUM_BENCH_RUNNER_H_

#include <string>

#include "bench/datasets.h"
#include "core/engine_options.h"
#include "ml/model.h"
#include "core/run_result.h"
#include "graph/partition.h"

namespace gum::bench {

enum class System { kGunrock, kGroute, kGum };
enum class Algo { kBfs, kWcc, kPr, kSssp };

const char* SystemName(System system);
const char* AlgoName(Algo algo);

// Device calibration for the benchmark harness. The Table-II analogs are
// ~400x smaller than the paper's graphs while per-iteration latency
// (kernel launch, barrier, buffer bookkeeping) is size-independent, so an
// unscaled V100 model would make EVERY iteration latency-bound. Scaling the
// per-edge compute cost by the same factor restores the paper's regime:
// heavy iterations compute-bound (DLB territory), tail iterations
// latency-bound (LT territory).
sim::DeviceParams BenchDeviceParams();

struct RunConfig {
  System system = System::kGum;
  Algo algo = Algo::kBfs;
  int devices = 8;
  graph::PartitionerKind partitioner = graph::PartitionerKind::kRandom;
  uint64_t partition_seed = 1;
  int pagerank_rounds = 10;
  // Interconnect contention model, threaded into every engine's options
  // (overrides the `gum` field's setting below).
  sim::ContentionModel contention = sim::ContentionModel::kOff;
  // Multi-path transfer plans (sim/transfer_plan.h); GUM engine only and
  // only meaningful with contention=fair. Overrides the `gum` field.
  sim::MultipathMode multipath = sim::MultipathMode::kOff;
  // GUM-specific toggles (ignored by the baselines).
  core::EngineOptions gum;
  // Learned cost model for the GUM stealing policies; null = exact oracle.
  const ml::RegressionModel* cost_model = nullptr;
  // Force the GAS label-propagation WCC instead of the cost-based
  // FastWcc/label-prop choice — used by fig10, which isolates the stealing
  // increments and must keep the algorithm variant fixed.
  bool force_labelprop_wcc = false;
  // When non-empty, RunBenchmark writes the schema-versioned run report
  // (obs/run_report.h) for this cell to
  //   <report_dir>/<system>_<algo>_<dataset>_<devices>dev.report.json
  // so table/figure results stay machine-diffable across revisions. The
  // GUM_BENCH_REPORT_DIR environment variable supplies a default when this
  // field is empty, letting any harness opt in without a flag change.
  std::string report_dir;
};

// Runs the cell. WCC uses data.symmetric, everything else data.directed.
// PR on the Groute baseline runs as delta-PageRank (the asynchronous model
// has no synchronous rounds).
core::RunResult RunBenchmark(const DatasetGraphs& data,
                             const RunConfig& config);

}  // namespace gum::bench

#endif  // GUM_BENCH_RUNNER_H_
