#include "fault/fault_plane.h"

#include <gtest/gtest.h>

#include "fault/checkpoint.h"
#include "graph/csr.h"
#include "sim/comm_plane.h"
#include "sim/topology.h"

namespace gum::fault {
namespace {

FaultPlane MustCreate(const std::string& spec, int num_devices,
                      uint64_t seed = 1) {
  auto plan = FaultPlan::Parse(spec);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  auto plane = FaultPlane::Create(*plan, num_devices, seed);
  EXPECT_TRUE(plane.ok()) << plane.status().ToString();
  return std::move(plane).value();
}

TEST(FaultPlanTest, NoneAndEmptyAreEmptyPlans) {
  for (const char* spec : {"", "none"}) {
    auto plan = FaultPlan::Parse(spec);
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(plan->empty());
    auto plane = FaultPlane::Create(*plan, 8);
    ASSERT_TRUE(plane.ok());
    EXPECT_FALSE(plane->active());
    EXPECT_FALSE(plane->AnyFailStop());
  }
}

TEST(FaultPlanTest, ParsesEveryEventKind) {
  auto plan = FaultPlan::Parse(
      "failstop:3@2;straggler:1@0-4x2.5;degrade:0-1@1-3x0.25;"
      "linkdown:2-6@2-5;flap:4-5@0-9/2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->events().size(), 5u);
  const auto& ev = plan->events();
  EXPECT_EQ(ev[0].kind, FaultKind::kFailStop);
  EXPECT_EQ(ev[0].device, 3);
  EXPECT_EQ(ev[0].begin, 2);
  EXPECT_EQ(ev[1].kind, FaultKind::kStraggler);
  EXPECT_DOUBLE_EQ(ev[1].factor, 2.5);
  EXPECT_EQ(ev[1].end, 4);
  EXPECT_EQ(ev[2].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(ev[2].link_a, 0);
  EXPECT_EQ(ev[2].link_b, 1);
  EXPECT_DOUBLE_EQ(ev[2].factor, 0.25);
  EXPECT_EQ(ev[3].kind, FaultKind::kLinkDown);
  EXPECT_EQ(ev[4].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(ev[4].period, 2);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  // Unknown kind, malformed numbers, and out-of-domain factors all fail
  // loudly — never a silent fallback.
  for (const char* bad : {
           "meteor:1@2",             // unknown kind
           "failstop:x@2",           // non-numeric device
           "failstop:1",             // missing @iter
           "straggler:1@2-4x0.5",    // slowdown must be >= 1
           "degrade:0-1@2-4x1.5",    // scale must be in [0, 1)
           "degrade:0-1@2-4",        // missing scale
           "linkdown:0-1@5-2",       // end before begin
           "flap:0-1@2-4/0",         // period must be >= 1
           "failstop:1@-3",          // negative iteration
       }) {
    EXPECT_FALSE(FaultPlan::Parse(bad).ok()) << bad;
  }
}

TEST(FaultPlanTest, UnknownKindErrorNamesTheAllowedSet) {
  auto plan = FaultPlan::Parse("meteor:1@2");
  ASSERT_FALSE(plan.ok());
  const std::string msg = plan.status().ToString();
  EXPECT_NE(msg.find("meteor"), std::string::npos) << msg;
  EXPECT_NE(msg.find("failstop"), std::string::npos) << msg;
}

TEST(FaultPlaneTest, CreateValidatesAgainstDeviceCount) {
  auto plan = FaultPlan::Parse("failstop:9@1");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(FaultPlane::Create(*plan, 8).ok());
  EXPECT_TRUE(FaultPlane::Create(*plan, 16).ok());

  auto self_link = FaultPlan::Parse("degrade:2-2@1-3x0.5");
  ASSERT_TRUE(self_link.ok());
  EXPECT_FALSE(FaultPlane::Create(*self_link, 8).ok());
}

TEST(FaultPlaneTest, RejectsPlansThatFailStopEveryDevice) {
  auto plan = FaultPlan::Parse("failstop:0@1;failstop:1@3");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(FaultPlane::Create(*plan, 2).ok());
  EXPECT_TRUE(FaultPlane::Create(*plan, 4).ok());
}

TEST(FaultPlaneTest, DescribeRoundTripsThroughParse) {
  const FaultPlane plane = MustCreate(
      "failstop:3@2;straggler:1@0-4x2.5;degrade:0-1@1-3x0.25;"
      "linkdown:2-6@2-5;flap:4-5@0-9/2",
      8);
  const FaultPlane reparsed = MustCreate(plane.Describe(), 8);
  EXPECT_EQ(plane.Describe(), reparsed.Describe());
  EXPECT_EQ(plane.events().size(), reparsed.events().size());
}

TEST(FaultPlaneTest, ChaosExpansionIsSeedDeterministic) {
  const FaultPlane a = MustCreate("chaos", 8, /*seed=*/7);
  const FaultPlane b = MustCreate("chaos", 8, /*seed=*/7);
  EXPECT_TRUE(a.active());
  EXPECT_TRUE(a.AnyFailStop());
  EXPECT_EQ(a.Describe(), b.Describe());
  // A chaos plan must always leave at least one survivor.
  const FaultPlane single = MustCreate("chaos", 1, /*seed=*/7);
  EXPECT_FALSE(single.AnyFailStop());
}

TEST(FaultPlaneTest, FailuresFireExactlyAtTheirIteration) {
  const FaultPlane plane = MustCreate("failstop:5@3;failstop:2@3", 8);
  EXPECT_TRUE(plane.FailuresAt(2).empty());
  EXPECT_EQ(plane.FailuresAt(3), (std::vector<int>{2, 5}));
  EXPECT_TRUE(plane.FailuresAt(4).empty());
}

TEST(FaultPlaneTest, StragglerWindowIsInclusiveAndCompounds) {
  const FaultPlane plane =
      MustCreate("straggler:2@3-5x2;straggler:2@5-6x3", 8);
  EXPECT_DOUBLE_EQ(plane.ComputeSlowdown(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(plane.ComputeSlowdown(2, 3), 2.0);
  EXPECT_DOUBLE_EQ(plane.ComputeSlowdown(2, 5), 6.0);  // overlap compounds
  EXPECT_DOUBLE_EQ(plane.ComputeSlowdown(2, 6), 3.0);
  EXPECT_DOUBLE_EQ(plane.ComputeSlowdown(2, 7), 1.0);
  EXPECT_DOUBLE_EQ(plane.ComputeSlowdown(1, 4), 1.0);  // other device
}

TEST(FaultPlaneTest, LinkScaleWindowsDownAndFlap) {
  const FaultPlane plane = MustCreate(
      "degrade:0-1@2-4x0.5;linkdown:2-3@3-3;flap:4-5@4-9/2", 8);
  EXPECT_DOUBLE_EQ(plane.LinkScale(0, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(plane.LinkScale(1, 0, 3), 0.5);  // symmetric
  EXPECT_DOUBLE_EQ(plane.LinkScale(0, 1, 5), 1.0);
  EXPECT_DOUBLE_EQ(plane.LinkScale(2, 3, 3), 0.0);
  // Flap with period 2 from iteration 4: down, down, up, up, down, down.
  EXPECT_DOUBLE_EQ(plane.LinkScale(4, 5, 4), 0.0);
  EXPECT_DOUBLE_EQ(plane.LinkScale(4, 5, 5), 0.0);
  EXPECT_DOUBLE_EQ(plane.LinkScale(4, 5, 6), 1.0);
  EXPECT_DOUBLE_EQ(plane.LinkScale(4, 5, 7), 1.0);
  EXPECT_DOUBLE_EQ(plane.LinkScale(4, 5, 8), 0.0);

  const auto at3 = plane.LinkFaultsAt(3);
  ASSERT_EQ(at3.size(), 2u);
  EXPECT_EQ(at3[0].a, 0);
  EXPECT_EQ(at3[0].b, 1);
  EXPECT_DOUBLE_EQ(at3[0].scale, 0.5);
  EXPECT_EQ(at3[1].a, 2);
  EXPECT_EQ(at3[1].b, 3);
  EXPECT_DOUBLE_EQ(at3[1].scale, 0.0);
  EXPECT_TRUE(plane.LinkFaultsAt(0).empty());
}

TEST(CheckpointTest, FragmentStateBytesArithmetic) {
  // values + frontier ids, nothing else.
  EXPECT_DOUBLE_EQ(FragmentStateBytes(100, 10, sizeof(double)),
                   100 * sizeof(double) + 10 * sizeof(graph::VertexId));
  EXPECT_DOUBLE_EQ(FragmentStateBytes(0, 0, 4), 0.0);
}

TEST(CheckpointTest, TransferChargedOverPcie) {
  const double bytes = 1e9;
  EXPECT_DOUBLE_EQ(CheckpointTransferMs(bytes),
                   bytes / sim::Topology::kPcieGBps / 1e6);
  EXPECT_DOUBLE_EQ(CheckpointTransferMs(0.0), 0.0);
}

// --- CommPlane fault overlay ---

TEST(CommPlaneFaultTest, DownedLinkReroutesAndRestores) {
  sim::CommPlane plane(sim::Topology::HybridCubeMesh8());
  const sim::CommPlane nominal(sim::Topology::HybridCubeMesh8());

  const sim::CommRoute before = plane.Route(0, 1);
  ASSERT_EQ(before.transit, -1);
  ASSERT_FALSE(before.via_pcie);
  const double nominal_bw = plane.PathBandwidth(0, 1);

  plane.SetLinkScale(0, 1, 0.0);
  EXPECT_TRUE(plane.HasLinkFaults());
  const sim::CommRoute after = plane.Route(0, 1);
  // The direct lane is gone: either a 2-hop transit or the PCIe fallback.
  EXPECT_TRUE(after.transit >= 0 || after.via_pcie);
  EXPECT_LT(plane.PathBandwidth(0, 1), nominal_bw);
  EXPECT_GT(plane.PathBandwidth(0, 1), 0.0);

  plane.ClearLinkFaults();
  EXPECT_FALSE(plane.HasLinkFaults());
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      EXPECT_DOUBLE_EQ(plane.PathBandwidth(s, d), nominal.PathBandwidth(s, d))
          << s << "->" << d;
      const auto got = plane.Route(s, d);
      const auto want = nominal.Route(s, d);
      EXPECT_EQ(got.transit, want.transit);
      EXPECT_EQ(got.via_pcie, want.via_pcie);
      EXPECT_DOUBLE_EQ(got.point_to_point_gbps, want.point_to_point_gbps);
    }
  }
}

TEST(CommPlaneFaultTest, DegradeScalesAndComposes) {
  sim::CommPlane plane(sim::Topology::HybridCubeMesh8());
  const double nominal_bw = plane.PathBandwidth(0, 1);
  plane.SetLinkScale(0, 1, 0.5);
  const double once = plane.PathBandwidth(0, 1);
  EXPECT_LT(once, nominal_bw);
  plane.SetLinkScale(0, 1, 0.5);  // composes multiplicatively
  EXPECT_LE(plane.PathBandwidth(0, 1), once);
  // An untouched, unrelated pair only improves relative to the faulted one.
  EXPECT_GT(plane.PathBandwidth(2, 3), 0.0);
}

TEST(CommPlaneFaultTest, DownedLinkChargesTheDetour) {
  sim::CommPlane plane(sim::Topology::HybridCubeMesh8());
  sim::TransferBatch batch;
  batch.Add(0, 1, 1 << 20, /*tag=*/0);
  const auto healthy = plane.Settle(batch);
  plane.SetLinkScale(0, 1, 0.0);
  const auto faulted = plane.Settle(batch);
  EXPECT_GT(faulted.tag_comm_ns[0], healthy.tag_comm_ns[0]);
}

TEST(CommPlaneFaultTest, TelemetrySnapshotRoundTrips) {
  sim::CommPlane plane(sim::Topology::HybridCubeMesh8());
  sim::TransferBatch batch;
  batch.Add(0, 1, 4096, /*tag=*/0);
  batch.Add(2, 5, 8192, /*tag=*/2);
  plane.Settle(batch);
  const auto snap = plane.SnapshotTelemetry();
  plane.Settle(batch);
  plane.Settle(batch);
  EXPECT_NE(plane.link_bytes(), snap.link_bytes);
  plane.RestoreTelemetry(snap);
  EXPECT_EQ(plane.link_bytes(), snap.link_bytes);
  EXPECT_EQ(plane.payload_bytes(), snap.payload_bytes);
  EXPECT_EQ(plane.link_busy_ms(), snap.link_busy_ms);
  // Re-accumulation after a restore behaves exactly like the first pass.
  plane.Settle(batch);
  EXPECT_DOUBLE_EQ(plane.payload_bytes()[0][1], 2 * 4096.0);
}

}  // namespace
}  // namespace gum::fault
