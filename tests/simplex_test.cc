#include <gtest/gtest.h>

#include "solver/simplex.h"

namespace gum::solver {
namespace {

// max x + y  s.t. x + 2y <= 4, 3x + y <= 6   =>  min -x - y.
// Optimum at intersection: x = 8/5, y = 6/5, value 14/5.
TEST(SimplexTest, TwoVarInequalities) {
  LinearProgram lp;
  lp.AddVariable(-1.0);
  lp.AddVariable(-1.0);
  lp.AddRow({{1.0, 2.0}, RowType::kLessEqual, 4.0});
  lp.AddRow({{3.0, 1.0}, RowType::kLessEqual, 6.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -14.0 / 5.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 8.0 / 5.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 6.0 / 5.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y  s.t. x + y = 10, x <= 4  => x=4, y=6? No: min x+y with x+y=10
  // is exactly 10 everywhere feasible; check feasibility and value.
  LinearProgram lp;
  lp.AddVariable(1.0);
  lp.AddVariable(1.0);
  lp.AddRow({{1.0, 1.0}, RowType::kEqual, 10.0});
  lp.AddRow({{1.0, 0.0}, RowType::kLessEqual, 4.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 10.0, 1e-9);
  EXPECT_NEAR(sol->x[0] + sol->x[1], 10.0, 1e-9);
  EXPECT_LE(sol->x[0], 4.0 + 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraint) {
  // min 2x + 3y  s.t. x + y >= 4, x >= 1  => x=4,y=0: cost 8.
  LinearProgram lp;
  lp.AddVariable(2.0);
  lp.AddVariable(3.0);
  lp.AddRow({{1.0, 1.0}, RowType::kGreaterEqual, 4.0});
  lp.AddRow({{1.0, 0.0}, RowType::kGreaterEqual, 1.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 8.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 4.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  LinearProgram lp;
  lp.AddVariable(1.0);
  lp.AddRow({{1.0}, RowType::kLessEqual, 1.0});
  lp.AddRow({{1.0}, RowType::kGreaterEqual, 2.0});
  auto sol = SolveLp(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  LinearProgram lp;
  lp.AddVariable(-1.0);  // maximize x with no upper bound
  lp.AddRow({{-1.0}, RowType::kLessEqual, 0.0});  // x >= 0 (redundant)
  auto sol = SolveLp(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // x - y <= -2  (i.e. y >= x + 2), min y => with x >= 0: x=0, y=2.
  LinearProgram lp;
  lp.AddVariable(0.0);
  lp.AddVariable(1.0);
  lp.AddRow({{1.0, -1.0}, RowType::kLessEqual, -2.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LinearProgram lp;
  lp.AddVariable(-1.0);
  lp.AddVariable(-1.0);
  lp.AddRow({{1.0, 0.0}, RowType::kLessEqual, 1.0});
  lp.AddRow({{1.0, 0.0}, RowType::kLessEqual, 1.0});
  lp.AddRow({{1.0, 1.0}, RowType::kLessEqual, 1.0});
  lp.AddRow({{0.0, 1.0}, RowType::kLessEqual, 1.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -1.0, 1e-9);
}

TEST(SimplexTest, RejectsEmptyProgram) {
  LinearProgram lp;
  EXPECT_FALSE(SolveLp(lp).ok());
}

TEST(SimplexTest, MinMaxTransportationShape) {
  // The exact structure of the FSteal LP at n=2:
  // vars x00 x01 x10 x11 z; min z
  //   x00 + x01 = 10, x10 + x11 = 2
  //   c00 x00 + c10 x10 - z <= 0
  //   c01 x01 + c11 x11 - z <= 0
  // with c local = 1, remote = 2: balance point splits the big load.
  LinearProgram lp;
  for (int i = 0; i < 4; ++i) lp.AddVariable(0.0);
  lp.AddVariable(1.0);  // z
  lp.AddRow({{1, 1, 0, 0, 0}, RowType::kEqual, 10.0});
  lp.AddRow({{0, 0, 1, 1, 0}, RowType::kEqual, 2.0});
  lp.AddRow({{1.0, 0, 2.0, 0, -1.0}, RowType::kLessEqual, 0.0});
  lp.AddRow({{0, 2.0, 0, 1.0, -1.0}, RowType::kLessEqual, 0.0});
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  // Optimum: worker0 does x00 = z, worker1 does 2*(10 - x00) + 2 = z.
  // => z = 2(10 - z) + 2 => 3z = 22 => z = 22/3.
  EXPECT_NEAR(sol->objective, 22.0 / 3.0, 1e-6);
}

}  // namespace
}  // namespace gum::solver
