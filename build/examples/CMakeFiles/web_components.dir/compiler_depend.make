# Empty compiler generated dependencies file for web_components.
# This may be replaced when dependencies are built.
