// Bit-parallel multi-source batching for BFS and SSSP (DESIGN.md §13).
//
// MS-BFS-style batched traversal: up to 64 sources run in one superstep
// wave, one bit lane per source, using a 64-bit word as the per-vertex
// source mask (the same word width as common/bitmap.h, so a batch never
// splits across shard boundaries — shard widths are multiples of 64).
// One batched run expands the *union* of the per-source frontiers, so
// shared structure (the social-graph core every search crosses) is paid
// once per wave instead of once per query.
//
// Determinism contract (tests/multi_source_test.cc): for every lane l,
// ExtractBfsLane/ExtractSsspLane of the batched result is byte-identical
// to a sequential BfsApp/SsspApp run from sources[l] — for every host
// thread count, shard count, and expand backend.
//
//  * BFS: batched BFS is depth-lockstep — every message emitted in
//    iteration i carries depth i+1 (induction: sources start at depth 0;
//    OnFrontier at iteration i broadcasts only lanes freshly visited at
//    iteration i-1, all of which recorded depth i). The per-message depth
//    field is therefore uniform within an iteration and the mask-OR /
//    depth-min combiner is exact: a lane's recorded depth is the first
//    iteration any lane-l message arrived, which is the single-source
//    BFS depth.
//  * SSSP: messages carry one float per lane with kUnreached (the min
//    identity) in non-member lanes, so Combine is a branchless per-lane
//    min + mask OR. Lane l's frontier membership, message multiset, and
//    relaxation sequence match the single-source run iteration for
//    iteration; float min over identical operands is order-independent
//    bit for bit, so every lane distance lands byte-identical.
//
// Both combiners are commutative and associative, and both CombineAll
// hooks satisfy CombineAll(acc, p, w) == Combine(acc, *Scatter(p, _, w))
// bit for bit, so all three expand backends agree (see algos/apps.h).

#ifndef GUM_ALGOS_MULTI_SOURCE_H_
#define GUM_ALGOS_MULTI_SOURCE_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "graph/types.h"

namespace gum::algos {

// Widest batch one wave can carry: one bit lane per source.
inline constexpr int kMaxBatchLanes = 64;

namespace detail {

// Sorted (vertex, lane-mask) pairs; duplicate sources fold into one mask.
inline std::vector<std::pair<graph::VertexId, uint64_t>> BuildSourceMasks(
    const std::vector<graph::VertexId>& sources) {
  GUM_CHECK(!sources.empty() &&
            sources.size() <= static_cast<size_t>(kMaxBatchLanes))
      << "batch must carry 1.." << kMaxBatchLanes << " sources, got "
      << sources.size();
  std::vector<std::pair<graph::VertexId, uint64_t>> masks;
  masks.reserve(sources.size());
  for (size_t lane = 0; lane < sources.size(); ++lane) {
    masks.emplace_back(sources[lane], uint64_t{1} << lane);
  }
  std::sort(masks.begin(), masks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t out = 0;
  for (size_t i = 0; i < masks.size(); ++i) {
    if (out > 0 && masks[out - 1].first == masks[i].first) {
      masks[out - 1].second |= masks[i].second;
    } else {
      masks[out++] = masks[i];
    }
  }
  masks.resize(out);
  return masks;
}

inline uint64_t LookupSourceMask(
    const std::vector<std::pair<graph::VertexId, uint64_t>>& masks,
    graph::VertexId v) {
  const auto it = std::lower_bound(
      masks.begin(), masks.end(), v,
      [](const auto& p, graph::VertexId x) { return p.first < x; });
  return it != masks.end() && it->first == v ? it->second : 0;
}

}  // namespace detail

// Batched BFS: depth per (vertex, lane), mask-OR message combining.
struct MultiSourceBfsApp {
  static constexpr uint32_t kUnreached = std::numeric_limits<uint32_t>::max();

  struct State {
    std::array<uint32_t, kMaxBatchLanes> depth;
    uint64_t visited = 0;  // lanes that have reached this vertex
    uint64_t front = 0;    // lanes freshly visited last iteration
    uint32_t front_depth = 0;
  };
  struct Msg {
    uint64_t mask = 0;
    uint32_t depth = 0;  // uniform across lanes (lockstep invariant)
  };
  using Value = State;
  using Message = Msg;

  explicit MultiSourceBfsApp(std::vector<graph::VertexId> sources)
      : num_lanes(static_cast<int>(sources.size())),
        source_masks(detail::BuildSourceMasks(sources)) {}

  int num_lanes;
  std::vector<std::pair<graph::VertexId, uint64_t>> source_masks;

  std::string name() const { return "msbfs"; }
  int fixed_rounds() const { return -1; }
  Value InitValue(graph::VertexId v) const {
    Value val;
    val.depth.fill(kUnreached);
    const uint64_t mask = detail::LookupSourceMask(source_masks, v);
    for (uint64_t m = mask; m != 0; m &= m - 1) {
      val.depth[std::countr_zero(m)] = 0;
    }
    val.visited = mask;
    val.front = mask;
    val.front_depth = 0;
    return val;
  }
  bool IsInitiallyActive(graph::VertexId v) const {
    return detail::LookupSourceMask(source_masks, v) != 0;
  }
  Message InitialAccumulator() const { return Msg{0, kUnreached}; }
  // Broadcast the freshly-visited lanes; `front` is always consumed here
  // before Apply can set it again, so plain assignment below is safe.
  Message OnFrontier(graph::VertexId, Value& val, uint32_t) {
    const Msg m{val.front, val.front_depth};
    val.front = 0;
    return m;
  }
  std::optional<Message> Scatter(const Message& payload, graph::VertexId,
                                 float) const {
    return Msg{payload.mask, payload.depth + 1};
  }
  Message Combine(const Message& a, const Message& b) const {
    return Msg{a.mask | b.mask, std::min(a.depth, b.depth)};
  }
  Message CombineAll(const Message& acc, const Message& payload,
                     float) const {
    return Msg{acc.mask | payload.mask, std::min(acc.depth, payload.depth + 1)};
  }
  bool Apply(graph::VertexId, Value& val, const Message& msg) const {
    const uint64_t fresh = msg.mask & ~val.visited;
    if (fresh == 0) return false;
    val.visited |= fresh;
    val.front = fresh;
    val.front_depth = msg.depth;
    for (uint64_t m = fresh; m != 0; m &= m - 1) {
      val.depth[std::countr_zero(m)] = msg.depth;
    }
    return true;
  }
};

// Batched SSSP: one float distance per lane, per-lane min combining with
// kUnreached as the identity in non-member lanes.
struct MultiSourceSsspApp {
  static constexpr float kUnreached = std::numeric_limits<float>::max();

  struct State {
    std::array<float, kMaxBatchLanes> dist;
    uint64_t front = 0;  // lanes improved last iteration
  };
  struct Msg {
    std::array<float, kMaxBatchLanes> dist;
    uint64_t mask = 0;  // invariant: dist[l] == kUnreached for l not in mask
  };
  using Value = State;
  using Message = Msg;

  explicit MultiSourceSsspApp(std::vector<graph::VertexId> sources)
      : num_lanes(static_cast<int>(sources.size())),
        source_masks(detail::BuildSourceMasks(sources)) {}

  int num_lanes;
  std::vector<std::pair<graph::VertexId, uint64_t>> source_masks;

  std::string name() const { return "mssssp"; }
  int fixed_rounds() const { return -1; }
  Value InitValue(graph::VertexId v) const {
    Value val;
    val.dist.fill(kUnreached);
    const uint64_t mask = detail::LookupSourceMask(source_masks, v);
    for (uint64_t m = mask; m != 0; m &= m - 1) {
      val.dist[std::countr_zero(m)] = 0.0f;
    }
    val.front = mask;
    return val;
  }
  bool IsInitiallyActive(graph::VertexId v) const {
    return detail::LookupSourceMask(source_masks, v) != 0;
  }
  Message InitialAccumulator() const {
    Msg m;
    m.dist.fill(kUnreached);
    return m;
  }
  Message OnFrontier(graph::VertexId, Value& val, uint32_t) {
    Msg m;
    m.dist.fill(kUnreached);
    m.mask = val.front;
    for (uint64_t b = val.front; b != 0; b &= b - 1) {
      const int l = std::countr_zero(b);
      m.dist[l] = val.dist[l];
    }
    val.front = 0;
    return m;
  }
  std::optional<Message> Scatter(const Message& payload, graph::VertexId,
                                 float weight) const {
    Msg m;
    m.dist.fill(kUnreached);
    m.mask = payload.mask;
    for (uint64_t b = payload.mask; b != 0; b &= b - 1) {
      const int l = std::countr_zero(b);
      m.dist[l] = payload.dist[l] + weight;
    }
    return m;
  }
  // Branchless per-lane min: non-member lanes hold the min identity.
  Message Combine(const Message& a, const Message& b) const {
    Msg c;
    c.mask = a.mask | b.mask;
    for (int l = 0; l < kMaxBatchLanes; ++l) {
      c.dist[l] = std::min(a.dist[l], b.dist[l]);
    }
    return c;
  }
  Message CombineAll(const Message& acc, const Message& payload,
                     float weight) const {
    Msg c = acc;
    c.mask |= payload.mask;
    for (uint64_t b = payload.mask; b != 0; b &= b - 1) {
      const int l = std::countr_zero(b);
      c.dist[l] = std::min(c.dist[l], payload.dist[l] + weight);
    }
    return c;
  }
  bool Apply(graph::VertexId, Value& val, const Message& msg) const {
    uint64_t improved = 0;
    for (uint64_t b = msg.mask; b != 0; b &= b - 1) {
      const int l = std::countr_zero(b);
      if (msg.dist[l] < val.dist[l]) {
        val.dist[l] = msg.dist[l];
        improved |= uint64_t{1} << l;
      }
    }
    val.front = improved;
    return improved != 0;
  }
};

// Lane extraction: byte-identical to the single-source apps' value arrays.
inline std::vector<uint32_t> ExtractBfsLane(
    const std::vector<MultiSourceBfsApp::Value>& vals, int lane) {
  std::vector<uint32_t> out(vals.size());
  for (size_t v = 0; v < vals.size(); ++v) out[v] = vals[v].depth[lane];
  return out;
}

inline std::vector<float> ExtractSsspLane(
    const std::vector<MultiSourceSsspApp::Value>& vals, int lane) {
  std::vector<float> out(vals.size());
  for (size_t v = 0; v < vals.size(); ++v) out[v] = vals[v].dist[lane];
  return out;
}

}  // namespace gum::algos

#endif  // GUM_ALGOS_MULTI_SOURCE_H_
