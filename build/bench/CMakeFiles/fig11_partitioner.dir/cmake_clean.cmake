file(REMOVE_RECURSE
  "CMakeFiles/fig11_partitioner.dir/fig11_partitioner.cc.o"
  "CMakeFiles/fig11_partitioner.dir/fig11_partitioner.cc.o.d"
  "fig11_partitioner"
  "fig11_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
