// Frontier-scatter expand backend (paper §V, Example 4, Step 4; extracted
// from core/superstep.h — see DESIGN.md §12).
//
// One iteration's expansion work is decomposed into work *units* — each a
// (fragment, executor, contiguous vertex range) triple. Units are mutually
// independent:
//   * they read the shared graph/partition/hub-cache (immutable);
//   * they mutate only the values of their own frontier vertices, and the
//     per-fragment ranges are disjoint (SelectStolenRanges partitions each
//     frontier; distinct fragments never share vertices);
//   * messages go into a private MessageStaging buffer and counters into a
//     private UnitCounters record.
// They may therefore run on any number of host threads in any order;
// determinism is restored by merging staging buffers into the MessageStore
// in canonical unit order — exactly the serial engine's loop nest. The
// merge parallelizes over destination shards (disjoint contiguous vertex
// ranges, core/message_store.h), which leaves every per-vertex combine
// chain untouched (see DESIGN.md, "Determinism contract" and "Sharded
// message plane").
//
// Thread-safety requirement on App: OnFrontier may mutate the vertex value
// it is handed but must not mutate App member state; Scatter and Combine
// must be pure. Every bundled app satisfies this.

#ifndef GUM_CORE_EXPAND_FRONTIER_SCATTER_H_
#define GUM_CORE_EXPAND_FRONTIER_SCATTER_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "core/expand/expand_backend.h"
#include "core/fsteal.h"
#include "core/hub_cache.h"
#include "core/message_store.h"
#include "core/vertex_state.h"
#include "graph/csr.h"
#include "graph/partition.h"

namespace gum::core {

// One executor's share of one fragment's frontier.
struct WorkUnit {
  int fragment = 0;
  int executor = 0;
  size_t begin = 0;  // [begin, end) into the fragment's frontier
  size_t end = 0;
};

// Per-unit counters; cell (fragment, executor) of the engine's per-
// iteration matrices. All fields are sums of integer quantities, so
// aggregating them in any order is exact.
struct UnitCounters {
  double edges = 0.0;         // out-edges expanded by this unit
  double hub_edges = 0.0;     // of those, hub-cached remote expansions
  double stolen_edges = 0.0;  // expanded away from the fragment's owner
  uint64_t edges_processed = 0;
  std::vector<double> raw_msgs;  // emitted messages per destination fragment

  void Reset(int num_fragments) {
    edges = 0.0;
    hub_edges = 0.0;
    stolen_edges = 0.0;
    edges_processed = 0;
    raw_msgs.assign(static_cast<size_t>(num_fragments), 0.0);
  }
};

// Builds the iteration's units in canonical order: fragments ascending;
// within a stolen fragment, the plan's active-worker order (the row order
// of SelectStolenRanges). Empty ranges produce no unit. This order defines
// the deterministic merge sequence.
std::vector<WorkUnit> BuildWorkUnits(const graph::CsrGraph& g,
                                     const FrontierSoA& frontier,
                                     const FStealDecision& fs,
                                     const std::vector<double>& loads,
                                     const std::vector<int>& owner_of_fragment,
                                     const std::vector<int>& active);

// Expands one unit: OnFrontier/Scatter over the unit's vertex range,
// staging every emitted message and recording the unit's counters.
// hub_cache may be null (baselines without the Example-6 optimization).
// The weighted/unweighted branch is selected once per unit, not re-tested
// on every edge, by instantiating the scatter loop per weight accessor;
// the unit-invariant executor/owner flags and the integer counter sums are
// likewise hoisted out of the scatter loop into locals, written back once.
template <typename App>
void ExpandUnit(const graph::CsrGraph& g, const graph::Partition& partition,
                const HubCache* hub_cache, int fragment_owner, App& app,
                std::vector<typename App::Value>& values,
                std::span<const graph::VertexId> frontier,
                const WorkUnit& unit,
                MessageStaging<typename App::Message>* staged,
                UnitCounters* counters) {
  using Message = typename App::Message;
  const bool count_hub =
      unit.executor != unit.fragment && hub_cache != nullptr;
  const bool stolen = unit.executor != fragment_owner;
  uint64_t edges_sum = 0;
  uint64_t hub_sum = 0;
  const auto expand = [&](auto&& weight_of) {
    for (size_t k = unit.begin; k < unit.end; ++k) {
      const graph::VertexId u = frontier[k];
      const uint32_t deg = g.OutDegree(u);
      const Message payload = app.OnFrontier(u, values[u], deg);
      const auto neighbors = g.OutNeighbors(u);
      const auto weights = g.OutWeights(u);
      for (size_t e = 0; e < neighbors.size(); ++e) {
        const graph::VertexId v = neighbors[e];
        std::optional<Message> msg =
            app.Scatter(payload, v, weight_of(weights, e));
        if (!msg.has_value()) continue;
        counters->raw_msgs[partition.owner[v]] += 1.0;
        staged->Emit(v, *msg);
      }
      edges_sum += deg;
      if (count_hub && hub_cache->IsHub(u)) hub_sum += deg;
    }
  };
  if (g.has_weights()) {
    expand([](std::span<const float> w, size_t e) { return w[e]; });
  } else {
    expand([](std::span<const float>, size_t) { return 1.0f; });
  }
  // Integer-valued sums: identical to per-vertex accumulation.
  counters->edges += static_cast<double>(edges_sum);
  counters->hub_edges += static_cast<double>(hub_sum);
  if (stolen) counters->stolen_edges += static_cast<double>(edges_sum);
  counters->edges_processed += edges_sum;
}

// Expands every unit — serially when pool is null or single-threaded,
// otherwise on the pool. Each unit's staging buffer bins messages by the
// destination shards of `shards` (the merge's parallel axis). staged/
// counters are indexed by unit and reused across iterations (grown on
// demand, buffers cleared in place).
template <typename App>
void ExpandSuperstep(ThreadPool* pool, const graph::CsrGraph& g,
                     const graph::Partition& partition,
                     const HubCache* hub_cache,
                     const std::vector<int>& owner_of_fragment, App& app,
                     std::vector<typename App::Value>& values,
                     const FrontierSoA& frontier,
                     const std::vector<WorkUnit>& units,
                     const ShardMap& shards,
                     std::vector<MessageStaging<typename App::Message>>* staged,
                     std::vector<UnitCounters>* counters) {
  if (staged->size() < units.size()) staged->resize(units.size());
  if (counters->size() < units.size()) counters->resize(units.size());
  const auto expand_one = [&](size_t idx) {
    GUM_TRACE_SCOPE("expand.unit");
    const WorkUnit& unit = units[idx];
    (*staged)[idx].Configure(shards);
    (*staged)[idx].Clear();
    (*counters)[idx].Reset(partition.num_parts);
    ExpandUnit(g, partition, hub_cache, owner_of_fragment[unit.fragment],
               app, values, frontier.Fragment(unit.fragment), unit,
               &(*staged)[idx], &(*counters)[idx]);
  };
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t idx = 0; idx < units.size(); ++idx) expand_one(idx);
  } else {
    pool->ParallelFor(units.size(), expand_one);
  }
}

// The scatter backend: canonical unit decomposition, parallel expand into
// per-unit staging, deterministic sharded merge with first-writer
// attribution, counter aggregation into ExpandCounters. Owns the staging
// buffers and per-shard attribution scratch, reused across iterations.
template <typename App>
class FrontierScatterBackend {
 public:
  using Value = typename App::Value;
  using Message = typename App::Message;

  // Resident bytes across every unit's staging bins (high-water capacity;
  // the serving-mode memory gauge).
  size_t StagingBytes() const {
    size_t total = 0;
    for (const auto& s : staged_) total += s.CapacityBytes();
    return total;
  }

  // Runs one iteration's full expand + merge. `fs`/`loads`/`active` carry
  // the frontier-steal plan (identity when !fs.applied); `hub_cache` may be
  // null. Fills `out` (Reset inside).
  void Expand(ThreadPool* pool, const graph::CsrGraph& g,
              const graph::Partition& partition, const HubCache* hub_cache,
              const std::vector<int>& owner_of_fragment,
              const std::vector<int>& active, const FStealDecision& fs,
              const std::vector<double>& loads, App& app,
              std::vector<Value>& values, const FrontierSoA& frontier,
              const ShardMap& shards, MessageStore<Message>& store,
              ExpandCounters* out) {
    const int n = partition.num_parts;
    out->Reset(n);
    GUM_TRACE_SCOPE("expand.scatter");
    const std::vector<WorkUnit> units =
        BuildWorkUnits(g, frontier, fs, loads, owner_of_fragment, active);
    ExpandSuperstep(pool, g, partition, hub_cache, owner_of_fragment, app,
                    values, frontier, units, shards, &staged_, &counters_);

    // Aggregate per-unit counters serially (cheap, integer-exact sums).
    for (size_t idx = 0; idx < units.size(); ++idx) {
      const WorkUnit& unit = units[idx];
      const UnitCounters& c = counters_[idx];
      out->edges_done[unit.fragment][unit.executor] += c.edges;
      out->hub_edges[unit.fragment][unit.executor] += c.hub_edges;
      for (int f = 0; f < n; ++f) {
        out->raw_msgs[unit.executor][f] += c.raw_msgs[f];
      }
      out->stolen_edges += c.stolen_edges;
      out->edges_processed += c.edges_processed;
    }

    // Sharded merge: every shard replays its bins in canonical unit order
    // (the serial engine's loop nest restricted to the shard's vertices)
    // — combine chains and first-writer attribution stay bit-identical
    // for any shard x thread count.
    const auto combine = [&app](const Message& a, const Message& b) {
      return app.Combine(a, b);
    };
    const int s_count = shards.num_shards();
    if (static_cast<int>(shard_agg_.size()) < s_count) {
      shard_agg_.resize(s_count);
    }
    for (auto& per_exec : shard_agg_) {
      if (static_cast<int>(per_exec.size()) != n) {
        per_exec.assign(n, std::vector<double>(n, 0.0));
      } else {
        for (auto& row : per_exec) std::fill(row.begin(), row.end(), 0.0);
      }
    }
    store.MergeSharded(
        pool, shards, staged_, units.size(), combine,
        [&](int shard, size_t unit_idx, graph::VertexId v) {
          // First writer pays the transfer; attributed per shard, reduced
          // below (integer-valued doubles, exact in any order).
          shard_agg_[shard][units[unit_idx].executor][partition.owner[v]] +=
              1.0;
        });
    for (const auto& per_exec : shard_agg_) {
      for (int e = 0; e < n; ++e) {
        for (int f = 0; f < n; ++f) out->agg_msgs[e][f] += per_exec[e][f];
      }
    }
  }

 private:
  std::vector<MessageStaging<Message>> staged_;
  std::vector<UnitCounters> counters_;
  // Per-shard first-writer attribution ([shard][executor][owner]).
  std::vector<std::vector<std::vector<double>>> shard_agg_;
};

}  // namespace gum::core

#endif  // GUM_CORE_EXPAND_FRONTIER_SCATTER_H_
