file(REMOVE_RECURSE
  "CMakeFiles/gum_solver_sim_tests.dir/bandwidth_probe_test.cc.o"
  "CMakeFiles/gum_solver_sim_tests.dir/bandwidth_probe_test.cc.o.d"
  "CMakeFiles/gum_solver_sim_tests.dir/milp_test.cc.o"
  "CMakeFiles/gum_solver_sim_tests.dir/milp_test.cc.o.d"
  "CMakeFiles/gum_solver_sim_tests.dir/reduction_schedule_test.cc.o"
  "CMakeFiles/gum_solver_sim_tests.dir/reduction_schedule_test.cc.o.d"
  "CMakeFiles/gum_solver_sim_tests.dir/simplex_test.cc.o"
  "CMakeFiles/gum_solver_sim_tests.dir/simplex_test.cc.o.d"
  "CMakeFiles/gum_solver_sim_tests.dir/solver_fuzz_test.cc.o"
  "CMakeFiles/gum_solver_sim_tests.dir/solver_fuzz_test.cc.o.d"
  "CMakeFiles/gum_solver_sim_tests.dir/solver_hardening_test.cc.o"
  "CMakeFiles/gum_solver_sim_tests.dir/solver_hardening_test.cc.o.d"
  "CMakeFiles/gum_solver_sim_tests.dir/steal_problem_test.cc.o"
  "CMakeFiles/gum_solver_sim_tests.dir/steal_problem_test.cc.o.d"
  "CMakeFiles/gum_solver_sim_tests.dir/timeline_test.cc.o"
  "CMakeFiles/gum_solver_sim_tests.dir/timeline_test.cc.o.d"
  "CMakeFiles/gum_solver_sim_tests.dir/topology_test.cc.o"
  "CMakeFiles/gum_solver_sim_tests.dir/topology_test.cc.o.d"
  "gum_solver_sim_tests"
  "gum_solver_sim_tests.pdb"
  "gum_solver_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gum_solver_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
