#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <vector>

#include "common/random.h"

namespace gum::graph {

double GiniCoefficient(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double weighted_sum = 0.0, total = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    weighted_sum += (static_cast<double>(i) + 1.0) * values[i];
    total += values[i];
  }
  if (total <= 0.0) return 0.0;
  return (2.0 * weighted_sum) / (n * total) - (n + 1.0) / n;
}

double DegreeEntropy(const std::vector<double>& degrees) {
  if (degrees.size() <= 1) return 0.0;
  double total = 0.0;
  for (double d : degrees) total += d;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double d : degrees) {
    if (d <= 0.0) continue;
    const double p = d / total;
    h -= p * std::log(p);
  }
  return h / std::log(static_cast<double>(degrees.size()));
}

DegreeStats ComputeDegreeStats(const CsrGraph& g) {
  DegreeStats s;
  const VertexId n = g.num_vertices();
  if (n == 0) return s;
  s.min_out_degree = std::numeric_limits<uint32_t>::max();
  s.min_in_degree = std::numeric_limits<uint32_t>::max();
  std::vector<double> totals(n);
  double out_sum = 0, in_sum = 0;
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t od = g.OutDegree(v);
    const uint32_t id = g.has_in_csr() ? g.InDegree(v) : 0;
    out_sum += od;
    in_sum += id;
    s.max_out_degree = std::max(s.max_out_degree, od);
    s.min_out_degree = std::min(s.min_out_degree, od);
    s.max_in_degree = std::max(s.max_in_degree, id);
    s.min_in_degree = std::min(s.min_in_degree, id);
    totals[v] = static_cast<double>(od) + id;
  }
  s.avg_out_degree = out_sum / n;
  s.avg_in_degree = in_sum / n;
  s.gini = GiniCoefficient(totals);
  s.entropy = DegreeEntropy(totals);
  return s;
}

namespace {

// BFS over the union of out- and in-adjacency; returns (farthest vertex,
// eccentricity from source).
std::pair<VertexId, uint32_t> BfsFarthest(const CsrGraph& g, VertexId source) {
  std::vector<uint32_t> depth(g.num_vertices(),
                              std::numeric_limits<uint32_t>::max());
  std::deque<VertexId> queue;
  depth[source] = 0;
  queue.push_back(source);
  VertexId farthest = source;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    if (depth[u] > depth[farthest]) farthest = u;
    auto visit = [&](VertexId v) {
      if (depth[v] == std::numeric_limits<uint32_t>::max()) {
        depth[v] = depth[u] + 1;
        queue.push_back(v);
      }
    };
    for (VertexId v : g.OutNeighbors(u)) visit(v);
    if (g.has_in_csr()) {
      for (VertexId v : g.InNeighbors(u)) visit(v);
    }
  }
  return {farthest, depth[farthest]};
}

}  // namespace

uint32_t PseudoDiameter(const CsrGraph& g, uint64_t seed) {
  if (g.num_vertices() == 0) return 0;
  Rng rng(seed);
  const VertexId start =
      static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
  const auto [far1, ecc1] = BfsFarthest(g, start);
  const auto [far2, ecc2] = BfsFarthest(g, far1);
  (void)far2;
  return std::max(ecc1, ecc2);
}

}  // namespace gum::graph
