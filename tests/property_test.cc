// Parameterized property suite: the central invariant of work stealing is
// that it NEVER changes algorithm results — across device counts,
// partitioners, stealing configurations and graph families. Each TEST_P
// below sweeps that grid.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "algos/apps.h"
#include "algos/reference.h"
#include "core/engine.h"
#include "tests/test_util.h"

namespace gum::core {
namespace {

using algos::BfsApp;
using algos::SsspApp;
using algos::WccApp;
using graph::PartitionerKind;
using graph::VertexId;
using test::MakePartition;
using test::RoadGraph;
using test::SocialGraph;
using test::SocialGraphSym;
using test::TestEngineOptions;
using test::Topo;

struct PropertyParam {
  int devices;
  PartitionerKind partitioner;
  bool fsteal;
  bool osteal;

  std::string Name() const {
    std::string s = std::to_string(devices) + "dev_";
    s += graph::PartitionerName(partitioner);
    s += fsteal ? "_fs1" : "_fs0";
    s += osteal ? "_os1" : "_os0";
    return s;
  }
};

class StealingInvariance : public ::testing::TestWithParam<PropertyParam> {
 protected:
  EngineOptions Options() const {
    auto opt = TestEngineOptions();
    opt.enable_fsteal = GetParam().fsteal;
    opt.enable_osteal = GetParam().osteal;
    return opt;
  }
};

TEST_P(StealingInvariance, BfsExact) {
  const auto& p = GetParam();
  const auto g = SocialGraph(9, 13);
  GumEngine<BfsApp> engine(
      &g, MakePartition(g, p.devices, p.partitioner), Topo(p.devices),
      Options());
  BfsApp app;
  app.source = 9;
  std::vector<uint32_t> depths;
  engine.Run(app, &depths);
  EXPECT_EQ(depths, algos::ref::Bfs(g, 9));
}

TEST_P(StealingInvariance, SsspExact) {
  const auto& p = GetParam();
  const auto g = SocialGraph(9, 14, /*weighted=*/true);
  GumEngine<SsspApp> engine(
      &g, MakePartition(g, p.devices, p.partitioner), Topo(p.devices),
      Options());
  SsspApp app;
  app.source = 2;
  std::vector<float> dist;
  engine.Run(app, &dist);
  const auto expected = algos::ref::Sssp(g, 2);
  for (size_t v = 0; v < dist.size(); ++v) {
    ASSERT_EQ(dist[v], expected[v]) << "vertex " << v;
  }
}

TEST_P(StealingInvariance, WccExact) {
  const auto& p = GetParam();
  const auto g = SocialGraphSym(9, 15);
  GumEngine<WccApp> engine(
      &g, MakePartition(g, p.devices, p.partitioner), Topo(p.devices),
      Options());
  WccApp app;
  std::vector<VertexId> labels;
  engine.Run(app, &labels);
  EXPECT_EQ(labels, algos::ref::Wcc(g));
}

TEST_P(StealingInvariance, RoadSsspExact) {
  const auto& p = GetParam();
  const auto g = RoadGraph(20, 16);
  GumEngine<SsspApp> engine(
      &g, MakePartition(g, p.devices, p.partitioner), Topo(p.devices),
      Options());
  SsspApp app;
  app.source = 7;
  std::vector<float> dist;
  engine.Run(app, &dist);
  const auto expected = algos::ref::Sssp(g, 7);
  for (size_t v = 0; v < dist.size(); ++v) {
    ASSERT_EQ(dist[v], expected[v]) << "vertex " << v;
  }
}


TEST_P(StealingInvariance, WebCrawlBfsExact) {
  const auto& p = GetParam();
  graph::WebCrawlOptions web;
  web.scale = 10;
  web.tendril_fraction = 0.35;
  web.avg_chain_length = 24;
  web.seed = 44;
  auto g = graph::CsrGraph::FromEdgeList(graph::WebCrawl(web));
  ASSERT_TRUE(g.ok());
  GumEngine<BfsApp> engine(
      &*g, MakePartition(*g, p.devices, p.partitioner), Topo(p.devices),
      Options());
  BfsApp app;
  app.source = 0;
  std::vector<uint32_t> depths;
  engine.Run(app, &depths);
  EXPECT_EQ(depths, algos::ref::Bfs(*g, 0));
}

std::vector<PropertyParam> MakeGrid() {
  std::vector<PropertyParam> grid;
  for (int devices : {1, 2, 3, 5, 8}) {
    for (PartitionerKind kind :
         {PartitionerKind::kSegment, PartitionerKind::kRandom,
          PartitionerKind::kMetisLike}) {
      grid.push_back({devices, kind, true, true});
    }
  }
  // Stealing-configuration corners at a fixed device count.
  grid.push_back({4, PartitionerKind::kRandom, false, false});
  grid.push_back({4, PartitionerKind::kRandom, true, false});
  grid.push_back({4, PartitionerKind::kRandom, false, true});
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, StealingInvariance,
                         ::testing::ValuesIn(MakeGrid()),
                         [](const auto& info) { return info.param.Name(); });

// ---- Determinism: identical configs give identical timing and results ----

TEST(DeterminismTest, RepeatRunsIdentical) {
  const auto g = SocialGraph(9, 17, /*weighted=*/true);
  const auto part = MakePartition(g, 4);
  SsspApp app;
  std::vector<float> d1, d2;
  app.source = 3;
  const RunResult r1 = GumEngine<SsspApp>(&g, part, Topo(4),
                                          TestEngineOptions())
                           .Run(app, &d1);
  app.source = 3;
  const RunResult r2 = GumEngine<SsspApp>(&g, part, Topo(4),
                                          TestEngineOptions())
                           .Run(app, &d2);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_DOUBLE_EQ(r1.total_ms, r2.total_ms);
  EXPECT_EQ(r1.edges_processed, r2.edges_processed);
  EXPECT_DOUBLE_EQ(r1.stolen_edges_total, r2.stolen_edges_total);
}

// ---- Ablation: the greedy solver is a valid (if weaker) policy ----

TEST(AblationTest, GreedySolverKeepsCorrectness) {
  const auto g = SocialGraph(9, 18, /*weighted=*/true);
  auto opt = TestEngineOptions();
  opt.fsteal.use_greedy = true;
  opt.osteal.use_greedy = true;
  SsspApp app;
  app.source = 1;
  std::vector<float> dist;
  GumEngine<SsspApp>(&g, MakePartition(g, 8), Topo(8), opt).Run(app, &dist);
  const auto expected = algos::ref::Sssp(g, 1);
  for (size_t v = 0; v < dist.size(); ++v) EXPECT_EQ(dist[v], expected[v]);
}

TEST(AblationTest, ExactMilpKeepsCorrectness) {
  const auto g = SocialGraph(8, 19);
  auto opt = TestEngineOptions();
  opt.fsteal.exact_milp = true;
  BfsApp app;
  app.source = 1;
  std::vector<uint32_t> depths;
  GumEngine<BfsApp>(&g, MakePartition(g, 4), Topo(4), opt).Run(app, &depths);
  EXPECT_EQ(depths, algos::ref::Bfs(g, 1));
}

TEST(AblationTest, HubCacheAndAggregationOff) {
  const auto g = SocialGraph(9, 20);
  auto opt = TestEngineOptions();
  opt.enable_hub_cache = false;
  opt.enable_message_aggregation = false;
  BfsApp app;
  app.source = 6;
  std::vector<uint32_t> depths;
  GumEngine<BfsApp>(&g, MakePartition(g, 4), Topo(4), opt).Run(app, &depths);
  EXPECT_EQ(depths, algos::ref::Bfs(g, 6));
}

TEST(AblationTest, AggregationReducesCommunication) {
  const auto g = SocialGraph(10, 21);
  BfsApp app;
  auto agg_on = TestEngineOptions();
  auto agg_off = TestEngineOptions();
  agg_off.enable_message_aggregation = false;
  const auto part = MakePartition(g, 4);
  app.source = 0;
  const auto r_on =
      GumEngine<BfsApp>(&g, part, Topo(4), agg_on).Run(app);
  app.source = 0;
  const auto r_off =
      GumEngine<BfsApp>(&g, part, Topo(4), agg_off).Run(app);
  EXPECT_LE(r_on.CommunicationMs(), r_off.CommunicationMs());
}

}  // namespace
}  // namespace gum::core
