// Hub-vertex cache (paper Example 6).
//
// Vertices with in-degree above t4 are "hub" vertices: they receive many
// messages and are activated often, so GUM caches their adjacency lists on
// every device in advance and marks them in a bitmap. A stolen frontier
// vertex found in the bitmap is expanded from the local cache instead of
// over NVLink.

#ifndef GUM_CORE_HUB_CACHE_H_
#define GUM_CORE_HUB_CACHE_H_

#include "common/bitmap.h"
#include "graph/csr.h"

namespace gum::core {

class HubCache {
 public:
  HubCache() = default;

  // Marks every vertex with in-degree > t4 (falls back to out-degree when
  // the graph has no in-CSR).
  HubCache(const graph::CsrGraph& g, uint32_t t4_hub_in_degree);

  bool IsHub(graph::VertexId v) const {
    return enabled_ && bitmap_.Test(v);
  }
  size_t num_hubs() const { return enabled_ ? bitmap_.Count() : 0; }
  // Cached adjacency bytes replicated per device.
  size_t cache_bytes() const { return cache_bytes_; }
  bool enabled() const { return enabled_; }

 private:
  bool enabled_ = false;
  Bitmap bitmap_;
  size_t cache_bytes_ = 0;
};

}  // namespace gum::core

#endif  // GUM_CORE_HUB_CACHE_H_
