#include "ml/svr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"

namespace gum::ml {

std::vector<double> RbfSvr::Featurize(
    std::span<const double> features) const {
  const int d = options_.num_random_features;
  std::vector<double> z(d);
  const double scale = std::sqrt(2.0 / d);
  for (int k = 0; k < d; ++k) {
    double dot = phase_[k];
    for (int j = 0; j < input_dim_; ++j) {
      const double x = (features[j] - mean_[j]) / stddev_[j];
      dot += omega_[k][j] * x;
    }
    z[k] = scale * std::cos(dot);
  }
  return z;
}

Status RbfSvr::Fit(const Dataset& data) {
  if (data.samples.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  input_dim_ = data.feature_dim();
  const size_t n = data.size();

  mean_.assign(input_dim_, 0.0);
  stddev_.assign(input_dim_, 0.0);
  for (const Sample& s : data.samples) {
    for (int j = 0; j < input_dim_; ++j) mean_[j] += s.features[j];
  }
  for (double& m : mean_) m /= static_cast<double>(n);
  for (const Sample& s : data.samples) {
    for (int j = 0; j < input_dim_; ++j) {
      const double d = s.features[j] - mean_[j];
      stddev_[j] += d * d;
    }
  }
  for (double& sd : stddev_) {
    sd = std::sqrt(sd / static_cast<double>(n));
    if (sd < 1e-12) sd = 1.0;
  }

  Rng rng(options_.seed);
  const int d = options_.num_random_features;
  omega_.assign(d, std::vector<double>(input_dim_));
  phase_.assign(d, 0.0);
  for (int k = 0; k < d; ++k) {
    for (int j = 0; j < input_dim_; ++j) {
      omega_[k][j] = rng.NextGaussian() / options_.sigma;
    }
    phase_[k] = rng.NextUniform(0.0, 2.0 * M_PI);
  }

  // Train on unit-mean targets so subgradient step sizes are independent of
  // the cost units; Predict() scales back.
  target_scale_ = 0.0;
  for (const Sample& s : data.samples) target_scale_ += std::abs(s.target);
  target_scale_ /= static_cast<double>(n);
  if (target_scale_ <= 0) target_scale_ = 1.0;
  const double eps = options_.epsilon;

  // Precompute random features.
  std::vector<std::vector<double>> z(n);
  for (size_t i = 0; i < n; ++i) z[i] = Featurize(data.samples[i].features);

  weights_.assign(d, 0.0);
  bias_ = 1.0;
  const double lambda = 1.0 / (options_.c * static_cast<double>(n));

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  double lr = options_.learning_rate;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    for (size_t idx : order) {
      double pred = bias_;
      for (int k = 0; k < d; ++k) pred += weights_[k] * z[idx][k];
      const double err = pred - data.samples[idx].target / target_scale_;
      double g = 0.0;  // subgradient of the epsilon-insensitive loss
      if (err > eps) {
        g = 1.0;
      } else if (err < -eps) {
        g = -1.0;
      }
      for (int k = 0; k < d; ++k) {
        weights_[k] -= lr * (g * z[idx][k] + lambda * weights_[k]);
      }
      bias_ -= lr * g;
    }
    lr *= options_.lr_decay;
  }
  return Status::OK();
}

double RbfSvr::Predict(std::span<const double> features) const {
  const std::vector<double> z = Featurize(features);
  double pred = bias_;
  for (size_t k = 0; k < z.size(); ++k) pred += weights_[k] * z[k];
  pred *= target_scale_;
  return std::max(pred, 1e-3 * target_scale_);
}

}  // namespace gum::ml
