// Struct-of-arrays per-vertex engine state (DESIGN.md §12).
//
// The engines keep two dense per-vertex arrays: the value array and the
// frontier. FrontierSoA stores the per-fragment frontiers in one flat
// fragment-major arena (`verts_`) indexed by an offsets table, instead of
// n separate std::vectors:
//   * expand walks each fragment's frontier as a contiguous span — the
//     layout the scatter loop and the SpMV payload pre-pass stream over;
//   * rebuilding the frontier each iteration clears the arena in place, so
//     steady-state supersteps reuse the high-water capacity instead of
//     re-growing n vectors (the PR 3 staging pattern, generalized);
//   * a snapshot/restore (fault plane) copies two flat vectors.
// Within a fragment, vertices are kept ascending — the canonical order the
// determinism contract (DESIGN.md §7) is proved against.
//
// VertexState bundles the value array with the frontier; it is the unit
// the fault plane's Checkpoint snapshots.

#ifndef GUM_CORE_VERTEX_STATE_H_
#define GUM_CORE_VERTEX_STATE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace gum::core {

class FrontierSoA {
 public:
  // Empties the frontier and sets the fragment count; the vertex arena
  // keeps its capacity.
  void Reset(int num_fragments);

  int num_fragments() const {
    return static_cast<int>(offsets_.size()) - 1;
  }
  size_t TotalSize() const { return verts_.size(); }
  size_t FragmentSize(int i) const {
    return offsets_[static_cast<size_t>(i) + 1] - offsets_[i];
  }
  std::span<const graph::VertexId> Fragment(int i) const {
    return {verts_.data() + offsets_[i], FragmentSize(i)};
  }
  // The flat fragment-major arena (fragment 0's vertices, then 1's, ...).
  std::span<const graph::VertexId> Flat() const { return verts_; }

  // Replaces the contents with per-fragment vertex lists.
  void Assign(const std::vector<std::vector<graph::VertexId>>& per_fragment);

  // Replaces the contents with the sharded apply phase's output layout:
  // fragment i's frontier is segments[0][i] + segments[1][i] + ... —
  // shards are ascending contiguous vertex ranges, so the concatenation
  // comes out ascending per fragment.
  void AssignFromShardSegments(
      const std::vector<std::vector<std::vector<graph::VertexId>>>& segments,
      int num_shards, int num_fragments);

  // Builds the initial frontier: vertex v joins fragment owner[v] iff
  // is_active(v). Two passes (count, then fill) keep the arena exact.
  template <typename Pred>
  void BuildByOwner(graph::VertexId num_vertices,
                    const std::vector<uint32_t>& owner, int num_fragments,
                    Pred&& is_active) {
    offsets_.assign(static_cast<size_t>(num_fragments) + 1, 0);
    for (graph::VertexId v = 0; v < num_vertices; ++v) {
      if (is_active(v)) ++offsets_[static_cast<size_t>(owner[v]) + 1];
    }
    for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
    verts_.resize(offsets_.back());
    std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (graph::VertexId v = 0; v < num_vertices; ++v) {
      if (is_active(v)) verts_[cursor[owner[v]]++] = v;
    }
  }

  // Resident bytes of the arena (capacity, not size): the high-water
  // memory a long-lived serving RunContext keeps across queries.
  size_t ArenaBytes() const {
    return verts_.capacity() * sizeof(graph::VertexId) +
           offsets_.capacity() * sizeof(size_t);
  }

  // Per-fragment vectors (the pre-SoA layout); test/debug helper.
  std::vector<std::vector<graph::VertexId>> ToVectors() const;

 private:
  std::vector<graph::VertexId> verts_;  // fragment-major arena
  std::vector<size_t> offsets_;         // num_fragments + 1
};

// The engine's dense per-vertex state: values plus the current frontier.
template <typename Value>
struct VertexState {
  std::vector<Value> values;
  FrontierSoA frontier;
};

}  // namespace gum::core

#endif  // GUM_CORE_VERTEX_STATE_H_
