# Empty compiler generated dependencies file for gum_cli.
# This may be replaced when dependencies are built.
