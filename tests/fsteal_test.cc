#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

#include "core/fsteal.h"
#include "graph/generators.h"
#include "sim/comm_plane.h"

namespace gum::core {
namespace {

using graph::CsrGraph;
using graph::FrontierFeatures;
using graph::VertexId;

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<FrontierFeatures> UniformFeatures(int n) {
  std::vector<FrontierFeatures> f(n);
  for (auto& w : f) {
    w.avg_out_degree = 8;
    w.avg_in_degree = 8;
    w.entropy = 0.9;
  }
  return f;
}

std::vector<int> AllWorkers(int n) {
  std::vector<int> all(n);
  std::iota(all.begin(), all.end(), 0);
  return all;
}

TEST(CostMatrixTest, LocalCheaperThanRemote) {
  const sim::CommPlane plane(sim::Topology::HybridCubeMesh8());
  const auto model = EdgeCostModel::ExactOracle(sim::DeviceParams{});
  const auto cost = BuildCostMatrix(UniformFeatures(8),
                                    std::vector<double>(8, 1.0), model, plane,
                                    AllWorkers(8));
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      if (i != j) {
        EXPECT_LT(cost[i][i], cost[i][j]);
      }
    }
  }
}

TEST(CostMatrixTest, DoubleLaneCheaperThanSingleLane) {
  const sim::CommPlane plane(sim::Topology::HybridCubeMesh8());
  const auto model = EdgeCostModel::ExactOracle(sim::DeviceParams{});
  const auto cost = BuildCostMatrix(UniformFeatures(8),
                                    std::vector<double>(8, 1.0), model, plane,
                                    AllWorkers(8));
  // 0-3 has two lanes, 0-1 has one: processing 0's edges on 3 is cheaper
  // than on 1 (paper §III-B intuition).
  EXPECT_LT(cost[0][3], cost[0][1]);
}

TEST(CostMatrixTest, EvictedColumnsInfinite) {
  const sim::CommPlane plane(sim::Topology::HybridCubeMesh8());
  const auto model = EdgeCostModel::ExactOracle(sim::DeviceParams{});
  const auto cost = BuildCostMatrix(UniformFeatures(8),
                                    std::vector<double>(8, 1.0), model, plane,
                                    {0, 3});
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(cost[i][5], kInf);
    EXPECT_LT(cost[i][0], kInf);
    EXPECT_LT(cost[i][3], kInf);
  }
}

TEST(CostMatrixTest, HubDiscountReducesRemoteCost) {
  const sim::CommPlane plane(sim::Topology::HybridCubeMesh8());
  const auto model = EdgeCostModel::ExactOracle(sim::DeviceParams{});
  std::vector<double> no_cache(8, 1.0), cached(8, 0.2);
  const auto plain = BuildCostMatrix(UniformFeatures(8), no_cache, model,
                                     plane, AllWorkers(8));
  const auto disc = BuildCostMatrix(UniformFeatures(8), cached, model, plane,
                                    AllWorkers(8));
  EXPECT_LT(disc[0][7], plain[0][7]);
  EXPECT_DOUBLE_EQ(disc[0][0], plain[0][0]);  // local unaffected
}

TEST(DecideFStealTest, BelowT1KeepsIdentity) {
  const sim::CommPlane plane(sim::Topology::FullyConnected(4));
  const auto model = EdgeCostModel::ExactOracle(sim::DeviceParams{});
  const auto cost = BuildCostMatrix(UniformFeatures(4),
                                    std::vector<double>(4, 1.0), model, plane,
                                    AllWorkers(4));
  FStealConfig config;
  config.t1_min_max_load = 1000;
  const std::vector<double> loads = {500, 10, 10, 10};  // max < t1
  std::vector<int> owners = {0, 1, 2, 3};
  const auto dec = DecideFSteal(cost, loads, owners, AllWorkers(4), config);
  EXPECT_FALSE(dec.applied);
  EXPECT_DOUBLE_EQ(dec.assignment[0][0], 500.0);
}

TEST(DecideFStealTest, BalancedLoadSkipsViaT2) {
  const sim::CommPlane plane(sim::Topology::FullyConnected(4));
  const auto model = EdgeCostModel::ExactOracle(sim::DeviceParams{});
  const auto cost = BuildCostMatrix(UniformFeatures(4),
                                    std::vector<double>(4, 1.0), model, plane,
                                    AllWorkers(4));
  FStealConfig config;
  config.t1_min_max_load = 100;
  config.t2_min_imbalance = 500;
  const std::vector<double> loads = {10000, 9900, 9800, 9700};
  std::vector<int> owners = {0, 1, 2, 3};
  const auto dec = DecideFSteal(cost, loads, owners, AllWorkers(4), config);
  EXPECT_FALSE(dec.applied) << "imbalance below t2 must not steal";
}

TEST(DecideFStealTest, SkewTriggersStealing) {
  const sim::CommPlane plane(sim::Topology::FullyConnected(4));
  const auto model = EdgeCostModel::ExactOracle(sim::DeviceParams{});
  const auto cost = BuildCostMatrix(UniformFeatures(4),
                                    std::vector<double>(4, 1.0), model, plane,
                                    AllWorkers(4));
  FStealConfig config;
  config.t1_min_max_load = 0;
  config.t2_min_imbalance = 0;
  const std::vector<double> loads = {100000, 0, 0, 0};
  std::vector<int> owners = {0, 1, 2, 3};
  const auto dec = DecideFSteal(cost, loads, owners, AllWorkers(4), config);
  EXPECT_TRUE(dec.applied);
  double stolen = 0;
  for (int j = 1; j < 4; ++j) stolen += dec.assignment[0][j];
  EXPECT_GT(stolen, 10000.0);
  // Conservation.
  double total = 0;
  for (int j = 0; j < 4; ++j) total += dec.assignment[0][j];
  EXPECT_NEAR(total, 100000.0, 1e-6);
}

TEST(DecideFStealTest, GreedyModeAlsoBalances) {
  const sim::CommPlane plane(sim::Topology::FullyConnected(4));
  const auto model = EdgeCostModel::ExactOracle(sim::DeviceParams{});
  const auto cost = BuildCostMatrix(UniformFeatures(4),
                                    std::vector<double>(4, 1.0), model, plane,
                                    AllWorkers(4));
  FStealConfig config;
  config.t1_min_max_load = 0;
  config.t2_min_imbalance = 0;
  config.use_greedy = true;
  // Several whole fragments so the greedy (which cannot split) can balance.
  const std::vector<double> loads = {10000, 10000, 10000, 0};
  std::vector<int> owners = {0, 0, 0, 3};  // device 0 owns everything
  const auto dec = DecideFSteal(cost, loads, owners, AllWorkers(4), config);
  EXPECT_TRUE(dec.applied);
}

TEST(SelectStolenRangesTest, PartitionsWholeFrontier) {
  auto g = graph::CsrGraph::FromEdgeList(
      graph::Rmat({.scale = 9, .edge_factor = 6, .seed = 8}));
  ASSERT_TRUE(g.ok());
  std::vector<VertexId> frontier;
  for (VertexId v = 0; v < 200; ++v) frontier.push_back(v * 2);
  double total_edges = 0;
  for (VertexId v : frontier) total_edges += g->OutDegree(v);

  std::vector<double> quota(4, 0.0);
  quota[0] = std::floor(total_edges * 0.5);
  quota[1] = std::floor(total_edges * 0.3);
  quota[3] = total_edges - quota[0] - quota[1];
  const auto ranges =
      SelectStolenRanges(*g, frontier, quota, {0, 1, 2, 3});
  ASSERT_EQ(ranges.size(), 4u);
  // Contiguous cover of [0, frontier.size()).
  size_t cursor = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, cursor);
    EXPECT_GE(end, begin);
    cursor = end;
  }
  EXPECT_EQ(cursor, frontier.size());
  // Zero-quota worker 2 gets nothing.
  EXPECT_EQ(ranges[2].first, ranges[2].second);
}

TEST(SelectStolenRangesTest, EdgeQuotasApproximatelyRespected) {
  auto g = graph::CsrGraph::FromEdgeList(
      graph::Rmat({.scale = 10, .edge_factor = 8, .seed = 9}));
  ASSERT_TRUE(g.ok());
  std::vector<VertexId> frontier;
  for (VertexId v = 0; v < 500; ++v) frontier.push_back(v);
  double total = 0;
  uint32_t max_deg = 0;
  for (VertexId v : frontier) {
    total += g->OutDegree(v);
    max_deg = std::max(max_deg, g->OutDegree(v));
  }
  std::vector<double> quota = {total / 2, total / 2};
  const auto ranges = SelectStolenRanges(*g, frontier, quota, {0, 1});
  double first = 0;
  for (size_t k = ranges[0].first; k < ranges[0].second; ++k) {
    first += g->OutDegree(frontier[k]);
  }
  // Off by at most one vertex's adjacency (vertex granularity).
  EXPECT_NEAR(first, total / 2, static_cast<double>(max_deg) + 1);
}

TEST(SelectStolenRangesTest, AllQuotaToOneWorker) {
  auto g = graph::CsrGraph::FromEdgeList(
      graph::Rmat({.scale = 8, .seed = 10}));
  ASSERT_TRUE(g.ok());
  std::vector<VertexId> frontier = {1, 5, 9, 13};
  double total = 0;
  for (VertexId v : frontier) total += g->OutDegree(v);
  const auto ranges =
      SelectStolenRanges(*g, frontier, {0.0, total, 0.0}, {0, 1, 2});
  EXPECT_EQ(ranges[0].first, ranges[0].second);
  EXPECT_EQ(ranges[1].first, 0u);
  EXPECT_EQ(ranges[1].second, frontier.size());
  EXPECT_EQ(ranges[2].first, ranges[2].second);
}

}  // namespace
}  // namespace gum::core
