// Fail-stop recovery via ownership migration (DESIGN.md §11).
//
// On fail-stop detection at a superstep barrier the engine (1) restores the
// last checkpoint, (2) rebuilds fragment ownership over the survivors by
// driving the existing OSteal enumeration with the dead devices' columns
// forbidden (the survivor ReductionSchedule evicts them first — see
// sim::ReductionSchedule::BuildWithForbidden), and (3) resumes. This header
// owns steps (2)'s decision and the honest cost accounting of the whole
// event: detection timeout, checkpoint read-back for kept fragments,
// migration of inherited fragments, and the rolled-back (lost) work.

#ifndef GUM_FAULT_RECOVERY_H_
#define GUM_FAULT_RECOVERY_H_

#include <vector>

#include "core/osteal.h"
#include "sim/comm_plane.h"
#include "sim/reduction_schedule.h"

namespace gum::fault {

struct RecoveryConfig {
  // Simulated barrier timeout before the survivors declare a silent peer
  // dead and start recovery (charged to every survivor).
  double detect_timeout_us = 500.0;
};

// Per-event recovery charges (simulated ms). restore/migrate are the
// slowest device's share (the barrier waits for the last reader);
// per_device_ms carries each survivor's own detect + read-back time for the
// timeline.
struct RecoveryCharge {
  double detect_ms = 0.0;
  double restore_ms = 0.0;
  double migrate_ms = 0.0;
  int fragments_migrated = 0;  // fragments whose owner changed vs checkpoint
  std::vector<double> per_device_ms;
};

// Rebuilds ownership over the survivors. `survivor_schedule` must be built
// with the failed devices forbidden; `num_survivors` caps the enumeration
// (the dead can never rejoin). With `enumerate` false (OSteal disabled) the
// group stays at full survivor strength and ownership follows the
// schedule's receiver chains directly.
core::OStealDecision RebuildOwnership(
    const std::vector<std::vector<double>>& cost,
    const std::vector<double>& loads,
    const sim::ReductionSchedule& survivor_schedule, double sync_per_peer_ns,
    const core::OStealConfig& config, int num_survivors, bool enumerate);

// Charges for one recovery event. `ckpt_owner` / `new_owner` are the
// fragment ownership vectors before and after RebuildOwnership;
// `fragment_bytes[i]` is the checkpointed state of fragment i (see
// FragmentStateBytes). Every surviving owner reads its fragments back from
// host checkpoint storage; a fragment whose owner changed counts as
// migrated (same read-back path, tracked separately because it is the
// ownership-migration traffic a smarter protocol would optimize).
//
// With a `multipath_plane` (contention=fair, multipath=on) that smarter
// protocol is in effect: a migrated fragment whose checkpoint owner
// survived moves peer-to-peer over the plane's striped NVLink paths
// (sim/transfer_plan.h) instead of a host PCIe round-trip, and host
// read-backs stripe across the device's PCIe lane plus its fastest NVLink
// relay. Null reproduces the single-path PCIe charges bit for bit.
RecoveryCharge ComputeRecoveryCharge(
    const RecoveryConfig& config, const std::vector<int>& ckpt_owner,
    const std::vector<int>& new_owner, const std::vector<bool>& failed,
    const std::vector<double>& fragment_bytes,
    const sim::CommPlane* multipath_plane = nullptr);

}  // namespace gum::fault

#endif  // GUM_FAULT_RECOVERY_H_
