file(REMOVE_RECURSE
  "CMakeFiles/fig10_incremental.dir/fig10_incremental.cc.o"
  "CMakeFiles/fig10_incremental.dir/fig10_incremental.cc.o.d"
  "fig10_incremental"
  "fig10_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
