// The min-max work-reassignment problem of paper Eq. (1):
//
//   min_X max_j sum_i c_ij * x_ij    s.t.  sum_j x_ij = l_i,  x_ij >= 0 int
//
// linearized with an auxiliary variable z (paper Theorem 1 / Algorithm 1
// lines 3-7). SolveStealProblem builds the LP/MILP and returns the touched-
// edges matrix X plus the achieved makespan z. GreedyStealPlan is the
// LPT-style heuristic used as a fallback and as an ablation baseline.

#ifndef GUM_SOLVER_STEAL_PROBLEM_H_
#define GUM_SOLVER_STEAL_PROBLEM_H_

#include <vector>

#include "common/status.h"
#include "solver/simplex.h"

namespace gum::solver {

struct StealPlan {
  // assignment[i][j]: edges of source fragment i processed by worker j.
  // Integral values; rows sum exactly to load[i].
  std::vector<std::vector<double>> assignment;
  double makespan = 0.0;  // max_j sum_i c_ij x_ij under the plan
  int lp_iterations = 0;
  int milp_nodes = 0;
};

struct StealProblemOptions {
  // Exact integer solve via branch & bound. The default (false) solves the
  // LP relaxation and rounds, like the paper ("the exact solution of the
  // MILP problem may not be an integer, thus we round up the results").
  bool exact_milp = false;
  SimplexOptions simplex;
  // Budget for the exact solve; the rounded-LP warm start is always a valid
  // fallback, so expiring just means "as good as the default policy".
  double milp_time_limit_ms = 25.0;
  // The min-max plateau makes proving tiny gaps expensive; half a percent
  // is far below the vertex-granularity rounding error anyway.
  double milp_gap_tolerance = 5e-3;
};

// cost: square matrix, cost[i][j] = per-edge cost for worker j to process an
//       edge resident on fragment i. Entries may be +infinity ("forbidden",
//       used for OSteal-evicted devices).
// load: per-fragment active edge counts l_i (non-negative).
// active_workers: worker (column) indices allowed to receive work.
// A fragment with load > 0 whose every allowed cost is infinite makes the
// problem infeasible.
Result<StealPlan> SolveStealProblem(
    const std::vector<std::vector<double>>& cost,
    const std::vector<double>& load, const std::vector<int>& active_workers,
    const StealProblemOptions& options = {});

// Longest-processing-time-first heuristic: whole fragments are assigned to
// the worker that finishes them earliest. Never splits a fragment's load.
StealPlan GreedyStealPlan(const std::vector<std::vector<double>>& cost,
                          const std::vector<double>& load,
                          const std::vector<int>& active_workers);

// Makespan of an arbitrary assignment under `cost`.
double PlanMakespan(const std::vector<std::vector<double>>& cost,
                    const std::vector<std::vector<double>>& assignment);

}  // namespace gum::solver

#endif  // GUM_SOLVER_STEAL_PROBLEM_H_
