// Per-device priority worklists for the async engine mode (DESIGN.md §15).
//
// One abstraction, two flavors:
//   kBuckets — classic delta-stepping: entries live in buckets of width
//       `delta` keyed by floor(priority / delta); Pop drains the lowest
//       buckets first, FIFO within a bucket. Near-far SSSP is the
//       degenerate two-bucket configuration of this structure (the near
//       pile is every bucket at or below the current band).
//   kSmq — stealing multi-queue (the MultiQueue/SMQ family): several
//       internal min-heaps; Pop samples two queues and serves the better
//       top, and with probability `steal_prob` first rebalances a batch of
//       `steal_batch_size` entries from the fuller sampled queue to the
//       emptier one. All sampling is driven by a seeded Rng, so a fixed
//       seed reproduces the exact pop order (seed-determinism, §7).
//
// Entries are hints, not truth: the driver keeps a dirty bitmap and skips
// popped entries whose vertex is no longer dirty (lazy deletion), so a
// vertex may be pushed many times as its priority improves and only the
// first live pop processes it. Priorities may be negative (delta-PageRank
// pushes -residual); bucket keys are signed.

#ifndef GUM_CORE_ASYNC_WORKLIST_H_
#define GUM_CORE_ASYNC_WORKLIST_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/random.h"
#include "core/async/async_options.h"
#include "graph/types.h"

namespace gum::core {

struct WorklistEntry {
  graph::VertexId vertex = 0;
  double priority = 0.0;
};

struct WorklistStats {
  uint64_t pushes = 0;
  uint64_t pops = 0;
  uint64_t smq_rebalances = 0;       // intra-worklist queue-to-queue steals
  uint64_t smq_rebalanced_entries = 0;
  // Pushes per bucket index, relative to the first bucket ever pushed and
  // clamped into [0, kHistogramBuckets) — the run report's occupancy
  // histogram.
  static constexpr int kHistogramBuckets = 32;
  std::vector<uint64_t> bucket_histogram =
      std::vector<uint64_t>(kHistogramBuckets, 0);
};

class PriorityWorklist {
 public:
  static constexpr int64_t kNoBucket = INT64_MAX;

  // delta must be > 0 (resolve the auto default before constructing).
  PriorityWorklist(AsyncWorklistKind kind, double delta, int smq_queues,
                   double steal_prob, int steal_batch_size, uint64_t seed);

  void Push(graph::VertexId v, double priority);

  // Lowest occupied bucket index, kNoBucket when empty. For SMQ this is
  // the bucket of the best sampled-free minimum (exact: scans queue tops).
  int64_t MinBucket() const;

  // Pops up to max_entries entries into *out (appended). Bucketed: drains
  // buckets with index <= max_bucket, lowest first, FIFO within. SMQ:
  // samples two queues per call, optionally rebalances, then serves from
  // the better queue — max_bucket is ignored (the SMQ family is only
  // approximately priority-ordered by construction). Returns the count.
  int Pop(int64_t max_bucket, int max_entries,
          std::vector<WorklistEntry>* out);

  // Removes ~`fraction` of the live entries from the high-priority tail
  // downward — whole buckets at a time, never touching the lowest occupied
  // bucket — and appends them to *out in deterministic order. This is the
  // priority-range steal payload: a contiguous span of the victim's
  // coldest buckets. Returns the number of entries extracted.
  int ExtractTail(double fraction, std::vector<WorklistEntry>* out);

  size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }
  int64_t BucketOf(double priority) const;
  double delta() const { return delta_; }
  const WorklistStats& stats() const { return stats_; }

 private:
  struct Bucket {
    std::vector<WorklistEntry> entries;
    size_t head = 0;  // entries[0, head) already popped
    size_t Live() const { return entries.size() - head; }
  };
  // Heap entry for the SMQ flavor: ordered by (priority, seq) so ties
  // break on push order, never on container internals.
  struct HeapEntry {
    double priority = 0.0;
    uint64_t seq = 0;
    graph::VertexId vertex = 0;
    bool operator>(const HeapEntry& other) const {
      if (priority != other.priority) return priority > other.priority;
      return seq > other.seq;
    }
  };

  void RecordHistogram(int64_t bucket);
  int PopBuckets(int64_t max_bucket, int max_entries,
                 std::vector<WorklistEntry>* out);
  int PopSmq(int max_entries, std::vector<WorklistEntry>* out);

  AsyncWorklistKind kind_;
  double delta_ = 1.0;
  double steal_prob_ = 0.0;
  int steal_batch_size_ = 0;
  Rng rng_;

  std::map<int64_t, Bucket> buckets_;           // kBuckets
  std::vector<std::vector<HeapEntry>> queues_;  // kSmq (std::*_heap order)
  uint64_t next_seq_ = 0;

  size_t live_ = 0;
  bool histogram_based_ = false;
  int64_t histogram_base_ = 0;
  WorklistStats stats_;
};

}  // namespace gum::core

#endif  // GUM_CORE_ASYNC_WORKLIST_H_
