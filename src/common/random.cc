#include "common/random.h"

#include <cmath>

namespace gum {

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace gum
