// Reduction schedule for ownership stealing (paper §IV-A, Fig. 4b).
//
// Instead of enumerating all sum_{i<n} C(n,i) * i^(n-i) ownership vectors,
// GUM folds devices in a fixed order derived from the topology: at every
// step the (victim, receiver) pair is chosen so that the residual active
// set keeps the largest aggregate bandwidth, with the receiver being the
// victim's best-connected active peer. The schedule is computed once per
// topology; OwnerVectorFor(m)/ActiveFor(m) answer Algorithm 2's O(m)/R(m)
// queries in O(n).

#ifndef GUM_SIM_REDUCTION_SCHEDULE_H_
#define GUM_SIM_REDUCTION_SCHEDULE_H_

#include <vector>

#include "sim/comm_plane.h"
#include "sim/topology.h"

namespace gum::sim {

struct ReductionStep {
  int victim = -1;    // device evicted at this step
  int receiver = -1;  // device that takes over the victim's fragments
};

class ReductionSchedule {
 public:
  // Builds the elimination order over the plane's path bandwidths (the
  // receiver choice follows the same routes transfers actually take).
  static ReductionSchedule Build(const CommPlane& plane);
  // Convenience: a point-to-point plane over `topo`.
  static ReductionSchedule Build(const Topology& topo);

  // Elimination order that evicts the `forbidden` devices first — the
  // recovery path after a fail-stop (fault/recovery.h): the dead devices
  // must leave the group before any voluntary shrink, and receivers are
  // always chosen among allowed devices so every fragment chain terminates
  // at a survivor. Within each phase the max-residual-bandwidth rule and
  // tie-breaks of Build apply unchanged; with `forbidden` empty the result
  // equals Build. At least one device must remain allowed. The forbidden
  // set may be an arbitrary subset — ActiveFor(m) for any
  // m <= n - |forbidden| never contains a forbidden device.
  static ReductionSchedule BuildWithForbidden(const CommPlane& plane,
                                              const std::vector<int>& forbidden);
  static ReductionSchedule BuildWithForbidden(const Topology& topo,
                                              const std::vector<int>& forbidden);

  int num_devices() const { return n_; }

  // Steps in order; step k shrinks the active set from n-k to n-k-1 devices.
  const std::vector<ReductionStep>& steps() const { return steps_; }

  // Ownership vector when m devices remain active: entry i is the device
  // responsible for fragment i (follows receiver chains). m in [1, n].
  std::vector<int> OwnerVectorFor(int m) const;

  // The m devices still active, ascending.
  std::vector<int> ActiveFor(int m) const;

 private:
  int n_ = 0;
  std::vector<ReductionStep> steps_;
};

}  // namespace gum::sim

#endif  // GUM_SIM_REDUCTION_SCHEDULE_H_
