#include "core/async/worklist.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.h"

namespace gum::core {

PriorityWorklist::PriorityWorklist(AsyncWorklistKind kind, double delta,
                                   int smq_queues, double steal_prob,
                                   int steal_batch_size, uint64_t seed)
    : kind_(kind),
      delta_(delta),
      steal_prob_(steal_prob),
      steal_batch_size_(steal_batch_size),
      rng_(seed) {
  GUM_CHECK(delta_ > 0.0) << "worklist delta must be positive";
  if (kind_ == AsyncWorklistKind::kSmq) {
    queues_.resize(static_cast<size_t>(std::max(1, smq_queues)));
  }
}

int64_t PriorityWorklist::BucketOf(double priority) const {
  return static_cast<int64_t>(std::floor(priority / delta_));
}

void PriorityWorklist::RecordHistogram(int64_t bucket) {
  if (!histogram_based_) {
    histogram_based_ = true;
    histogram_base_ = bucket;
  }
  const int64_t idx = std::clamp<int64_t>(
      bucket - histogram_base_, 0, WorklistStats::kHistogramBuckets - 1);
  ++stats_.bucket_histogram[static_cast<size_t>(idx)];
}

void PriorityWorklist::Push(graph::VertexId v, double priority) {
  const int64_t bucket = BucketOf(priority);
  RecordHistogram(bucket);
  ++stats_.pushes;
  ++live_;
  if (kind_ == AsyncWorklistKind::kBuckets) {
    buckets_[bucket].entries.push_back(WorklistEntry{v, priority});
  } else {
    auto& q = queues_[rng_.NextBounded(queues_.size())];
    q.push_back(HeapEntry{priority, next_seq_++, v});
    std::push_heap(q.begin(), q.end(), std::greater<>());
  }
}

int64_t PriorityWorklist::MinBucket() const {
  if (live_ == 0) return kNoBucket;
  if (kind_ == AsyncWorklistKind::kBuckets) {
    return buckets_.begin()->first;
  }
  int64_t best = kNoBucket;
  double best_priority = 0.0;
  for (const auto& q : queues_) {
    if (q.empty()) continue;
    if (best == kNoBucket || q.front().priority < best_priority) {
      best_priority = q.front().priority;
      best = BucketOf(best_priority);
    }
  }
  return best;
}

int PriorityWorklist::Pop(int64_t max_bucket, int max_entries,
                          std::vector<WorklistEntry>* out) {
  if (kind_ == AsyncWorklistKind::kBuckets) {
    return PopBuckets(max_bucket, max_entries, out);
  }
  return PopSmq(max_entries, out);
}

int PriorityWorklist::PopBuckets(int64_t max_bucket, int max_entries,
                                 std::vector<WorklistEntry>* out) {
  int popped = 0;
  while (popped < max_entries && !buckets_.empty()) {
    auto it = buckets_.begin();
    if (it->first > max_bucket) break;
    Bucket& bucket = it->second;
    while (popped < max_entries && bucket.head < bucket.entries.size()) {
      out->push_back(bucket.entries[bucket.head++]);
      ++popped;
    }
    if (bucket.head == bucket.entries.size()) {
      buckets_.erase(it);
    } else {
      break;  // max_entries hit mid-bucket
    }
  }
  live_ -= static_cast<size_t>(popped);
  stats_.pops += static_cast<uint64_t>(popped);
  return popped;
}

int PriorityWorklist::PopSmq(int max_entries,
                             std::vector<WorklistEntry>* out) {
  const size_t nq = queues_.size();
  const size_t a = rng_.NextBounded(nq);
  const size_t b = rng_.NextBounded(nq);
  // Rebalance first: move a batch of the fuller sampled queue's best
  // entries to the other one (the SMQ steal).
  if (a != b && steal_prob_ > 0.0 && rng_.NextBernoulli(steal_prob_)) {
    const size_t src = queues_[a].size() >= queues_[b].size() ? a : b;
    const size_t dst = src == a ? b : a;
    int moved = 0;
    while (moved < steal_batch_size_ && queues_[src].size() > 1) {
      std::pop_heap(queues_[src].begin(), queues_[src].end(),
                    std::greater<>());
      const HeapEntry e = queues_[src].back();
      queues_[src].pop_back();
      queues_[dst].push_back(e);
      std::push_heap(queues_[dst].begin(), queues_[dst].end(),
                     std::greater<>());
      ++moved;
    }
    if (moved > 0) {
      ++stats_.smq_rebalances;
      stats_.smq_rebalanced_entries += static_cast<uint64_t>(moved);
    }
  }
  // Serve from the sampled queue with the better top; an empty queue
  // loses, and with both sampled queues empty the first non-empty queue
  // serves (never a spurious empty pop while work remains).
  size_t pick;
  if (queues_[a].empty() && queues_[b].empty()) {
    pick = nq;
    for (size_t i = 0; i < nq; ++i) {
      if (!queues_[i].empty()) {
        pick = i;
        break;
      }
    }
    if (pick == nq) return 0;
  } else if (queues_[a].empty()) {
    pick = b;
  } else if (queues_[b].empty()) {
    pick = a;
  } else {
    pick = queues_[b].front() > queues_[a].front() ? a : b;
  }
  auto& q = queues_[pick];
  int popped = 0;
  while (popped < max_entries && !q.empty()) {
    std::pop_heap(q.begin(), q.end(), std::greater<>());
    const HeapEntry e = q.back();
    q.pop_back();
    out->push_back(WorklistEntry{e.vertex, e.priority});
    ++popped;
  }
  live_ -= static_cast<size_t>(popped);
  stats_.pops += static_cast<uint64_t>(popped);
  return popped;
}

int PriorityWorklist::ExtractTail(double fraction,
                                  std::vector<WorklistEntry>* out) {
  if (live_ == 0) return 0;
  const size_t target =
      static_cast<size_t>(fraction * static_cast<double>(live_));
  if (target == 0) return 0;
  size_t extracted = 0;
  if (kind_ == AsyncWorklistKind::kBuckets) {
    // Whole buckets from the tail, never the lowest occupied bucket (the
    // victim keeps its hot work; the thief takes the cold span).
    std::vector<int64_t> span;
    size_t count = 0;
    const int64_t lowest = buckets_.begin()->first;
    for (auto it = buckets_.rbegin(); it != buckets_.rend(); ++it) {
      if (it->first == lowest) break;
      span.push_back(it->first);
      count += it->second.Live();
      if (count >= target) break;
    }
    std::reverse(span.begin(), span.end());
    for (const int64_t key : span) {
      auto it = buckets_.find(key);
      Bucket& bucket = it->second;
      for (size_t i = bucket.head; i < bucket.entries.size(); ++i) {
        out->push_back(bucket.entries[i]);
      }
      extracted += bucket.Live();
      buckets_.erase(it);
    }
  } else {
    // Pick the cut bucket over the union of all internal queues, then
    // filter each queue in container order (deterministic for a fixed
    // seed) and emit the taken entries in canonical (priority, seq) order.
    std::map<int64_t, size_t> counts;
    for (const auto& q : queues_) {
      for (const auto& e : q) ++counts[BucketOf(e.priority)];
    }
    if (counts.size() < 2) return 0;
    const int64_t lowest = counts.begin()->first;
    size_t count = 0;
    int64_t cut = kNoBucket;
    for (auto it = counts.rbegin(); it != counts.rend(); ++it) {
      if (it->first == lowest) break;
      count += it->second;
      cut = it->first;
      if (count >= target) break;
    }
    if (cut == kNoBucket) return 0;
    std::vector<HeapEntry> taken;
    for (auto& q : queues_) {
      std::vector<HeapEntry> keep;
      keep.reserve(q.size());
      for (const auto& e : q) {
        if (BucketOf(e.priority) >= cut) {
          taken.push_back(e);
        } else {
          keep.push_back(e);
        }
      }
      q.swap(keep);
      std::make_heap(q.begin(), q.end(), std::greater<>());
    }
    std::sort(taken.begin(), taken.end(),
              [](const HeapEntry& x, const HeapEntry& y) {
                if (x.priority != y.priority) return x.priority < y.priority;
                return x.seq < y.seq;
              });
    for (const auto& e : taken) {
      out->push_back(WorklistEntry{e.vertex, e.priority});
    }
    extracted = taken.size();
  }
  live_ -= extracted;
  return static_cast<int>(extracted);
}

}  // namespace gum::core
