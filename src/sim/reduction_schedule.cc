#include "sim/reduction_schedule.h"

#include <algorithm>

#include "common/logging.h"

namespace gum::sim {

ReductionSchedule ReductionSchedule::Build(const Topology& topo) {
  return Build(CommPlane(topo));
}

ReductionSchedule ReductionSchedule::Build(const CommPlane& plane) {
  return BuildWithForbidden(plane, {});
}

ReductionSchedule ReductionSchedule::BuildWithForbidden(
    const Topology& topo, const std::vector<int>& forbidden) {
  return BuildWithForbidden(CommPlane(topo), forbidden);
}

ReductionSchedule ReductionSchedule::BuildWithForbidden(
    const CommPlane& plane, const std::vector<int>& forbidden) {
  ReductionSchedule schedule;
  const int n = plane.num_devices();
  schedule.n_ = n;

  std::vector<bool> is_forbidden(n, false);
  for (const int d : forbidden) {
    GUM_CHECK(d >= 0 && d < n) << "forbidden device " << d << " out of range";
    is_forbidden[d] = true;
  }
  int num_forbidden = 0;
  for (int i = 0; i < n; ++i) num_forbidden += is_forbidden[i] ? 1 : 0;
  GUM_CHECK(num_forbidden < n) << "at least one device must remain allowed";

  std::vector<int> active(n);
  for (int i = 0; i < n; ++i) active[i] = i;

  while (active.size() > 1) {
    int forbidden_active = 0;
    for (const int d : active) forbidden_active += is_forbidden[d] ? 1 : 0;
    // Choose the eviction that leaves the residual network with maximum
    // aggregate bandwidth; ties broken toward the strongest victim-receiver
    // link (cheap migration), then lowest ids (determinism).
    double best_residual = -1.0;
    double best_link = -1.0;
    ReductionStep best_step;
    for (size_t vi = 0; vi < active.size(); ++vi) {
      // Forbidden devices leave first: until they are all evicted, only
      // they are eligible victims.
      if (forbidden_active > 0 && !is_forbidden[active[vi]]) continue;
      std::vector<int> residual;
      residual.reserve(active.size() - 1);
      for (size_t k = 0; k < active.size(); ++k) {
        if (k != vi) residual.push_back(active[k]);
      }
      const double residual_bw = plane.AggregateBandwidth(residual);
      // Receiver: the victim's best-connected allowed peer (fragment
      // chains must terminate at a survivor).
      int receiver = -1;
      double link = -1.0;
      for (int r : residual) {
        if (is_forbidden[r]) continue;
        const double bw = plane.PathBandwidth(active[vi], r);
        if (receiver < 0 || bw > link || (bw == link && r < receiver)) {
          receiver = r;
          link = bw;
        }
      }
      GUM_CHECK(receiver >= 0);
      const bool better =
          residual_bw > best_residual ||
          (residual_bw == best_residual && link > best_link) ||
          (residual_bw == best_residual && link == best_link &&
           best_step.victim >= 0 && active[vi] > best_step.victim);
      if (better) {
        best_residual = residual_bw;
        best_link = link;
        best_step = ReductionStep{active[vi], receiver};
      }
    }
    schedule.steps_.push_back(best_step);
    active.erase(std::find(active.begin(), active.end(), best_step.victim));
  }
  return schedule;
}

std::vector<int> ReductionSchedule::OwnerVectorFor(int m) const {
  GUM_CHECK(m >= 1 && m <= n_) << "m=" << m << " n=" << n_;
  std::vector<int> owner(n_);
  for (int i = 0; i < n_; ++i) owner[i] = i;
  const int evictions = n_ - m;
  for (int k = 0; k < evictions; ++k) {
    const ReductionStep& step = steps_[k];
    // Re-point every fragment owned by the victim at the receiver.
    for (int i = 0; i < n_; ++i) {
      if (owner[i] == step.victim) owner[i] = step.receiver;
    }
  }
  return owner;
}

std::vector<int> ReductionSchedule::ActiveFor(int m) const {
  GUM_CHECK(m >= 1 && m <= n_);
  std::vector<bool> evicted(n_, false);
  const int evictions = n_ - m;
  for (int k = 0; k < evictions; ++k) evicted[steps_[k].victim] = true;
  std::vector<int> active;
  active.reserve(m);
  for (int i = 0; i < n_; ++i) {
    if (!evicted[i]) active.push_back(i);
  }
  return active;
}

}  // namespace gum::sim
