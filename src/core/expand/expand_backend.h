// Pluggable expand backends (DESIGN.md §12).
//
// Step 4 of a superstep — "process the frontiers" — is served by one of two
// interchangeable backends:
//
//   * frontier scatter (expand/frontier_scatter.h) — the paper's native
//     model: per-executor work units walk their frontier range and push one
//     message per out-edge, merged shard-by-shard (Gunrock-style advance);
//   * SpMV (expand/spmv.h) — the GraphBLAST-style linear-algebra
//     formulation: a payload vector per frontier vertex, then either a push
//     SpMSpV (sparse frontiers) or a pull gather over a per-destination
//     in-edge structure (dense frontiers), combining each destination's
//     messages in one pass.
//
// A per-iteration density heuristic (frontier out-edges vs. total edges,
// mirroring direction-optimized BFS's push/pull switch) selects the mode.
// Every backend produces byte-identical vertex values for every thread and
// shard count — the determinism contract (DESIGN.md §7) is backend-
// agnostic. Only accounted time and message telemetry differ: the pull
// gather reads remote adjacency instead of forwarding messages, so its
// iterations charge remote-gather bytes and send zero messages.

#ifndef GUM_CORE_EXPAND_EXPAND_BACKEND_H_
#define GUM_CORE_EXPAND_EXPAND_BACKEND_H_

#include <concepts>
#include <cstdint>
#include <string_view>
#include <vector>

namespace gum::core {

// What the user asked for (EngineOptions / gum_cli --expand).
enum class ExpandBackendKind {
  kScatter,  // always frontier scatter (the pre-backend engine, bit for bit)
  kSpmv,     // always SpMV: pull when dense, push when sparse
  kAuto,     // density heuristic: pull when dense, scatter when sparse
};

// What one iteration actually runs.
enum class ExpandMode {
  kScatter,
  kSpmvPush,
  kSpmvPull,
};

struct SpmvConfig {
  // An iteration is "dense" when the frontier's out-edges are at least this
  // fraction of all edges; dense iterations take the pull direction. The
  // default mirrors DOBFS-style switch points: pull pays a full edge scan,
  // so it must be amortized over a busy frontier.
  double density_threshold = 0.05;
};

const char* ExpandBackendKindName(ExpandBackendKind kind);
const char* ExpandModeName(ExpandMode mode);
// Trace-span name for the mode ("expand.scatter", "expand.spmv_push", ...).
const char* ExpandModeSpanName(ExpandMode mode);

// Parses "scatter" | "spmv" | "auto"; returns false on anything else.
bool ParseExpandBackendKind(std::string_view text, ExpandBackendKind* out);

// The per-iteration direction decision. Depends only on the census loads
// and the (constant) edge count, so it is deterministic across thread and
// shard counts.
ExpandMode SelectExpandMode(ExpandBackendKind kind, double frontier_edges,
                            double total_edges, const SpmvConfig& config);

// One iteration's expansion telemetry, in the shapes the time-accounting
// layer consumes. All cells are sums of integer quantities (exact in any
// accumulation order); the backends reduce their per-unit / per-shard
// scratch into this in a deterministic order anyway.
struct ExpandCounters {
  // [fragment][executor] out-edges of `fragment` expanded by `executor`.
  std::vector<std::vector<double>> edges_done;
  // [fragment][executor] of those, hub-cached remote expansions.
  std::vector<std::vector<double>> hub_edges;
  // [executor][fragment] aggregated messages toward `fragment`.
  std::vector<std::vector<double>> agg_msgs;
  // [executor][fragment] raw (pre-aggregation) messages toward `fragment`.
  std::vector<std::vector<double>> raw_msgs;
  double stolen_edges = 0.0;   // expanded away from the fragment's owner
  uint64_t edges_processed = 0;

  void Reset(int num_fragments);
};

// Optional App hook consumed by the SpMV pull gather: folds one source's
// payload straight into the accumulator, fusing Scatter and Combine:
//
//   Message CombineAll(const Message& acc, const Message& payload,
//                      float weight) const;
//
// Contract: CombineAll(acc, p, w) == Combine(acc, *Scatter(p, dst, w)) for
// every acc/p/w, Scatter never returns nullopt, and InitialAccumulator()
// is a true Combine identity (it seeds the chain). Apps whose Scatter can
// suppress edges (delta-PageRank) must not define it; the pull gather then
// falls back to the Scatter/Combine pair.
template <typename App>
concept HasCombineAll =
    requires(const App& app, const typename App::Message& m, float w) {
      { app.CombineAll(m, m, w) } ->
          std::convertible_to<typename App::Message>;
    };

}  // namespace gum::core

#endif  // GUM_CORE_EXPAND_EXPAND_BACKEND_H_
