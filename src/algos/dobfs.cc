#include "algos/dobfs.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "graph/frontier_features.h"
#include "sim/comm_plane.h"
#include "sim/kernel_cost.h"
#include "sim/timeline.h"

namespace gum::algos {

namespace {
using graph::VertexId;
constexpr uint32_t kUnreached = std::numeric_limits<uint32_t>::max();
}  // namespace

core::RunResult DirectionOptimizedBfs(
    const graph::CsrGraph& g, const graph::Partition& partition,
    const sim::Topology& topology, VertexId source,
    const DoBfsOptions& options, std::vector<uint32_t>* depths_out,
    DoBfsStats* stats_out) {
  GUM_CHECK(g.has_in_csr()) << "direction-optimized BFS needs the in-CSR";
  const int n = partition.num_parts;
  const VertexId num_v = g.num_vertices();
  const sim::DeviceParams& dev = options.device;
  const double p_ns = dev.sync_per_peer_us * 1000.0;

  core::RunResult result;
  result.timeline = sim::Timeline(n);
  // Prediction-only plane: DO-BFS charges statistical estimates (mean path
  // bandwidth for pull probes, a nominal lane for push messages), not
  // individual transfers.
  const sim::CommPlane plane(topology);
  DoBfsStats stats;

  std::vector<uint32_t> depth(num_v, kUnreached);
  depth[source] = 0;
  // Frontier per owning device.
  std::vector<std::vector<VertexId>> frontier(n);
  frontier[partition.owner[source]].push_back(source);

  uint64_t unvisited_edges = g.num_edges() - g.OutDegree(source);
  size_t frontier_size = 1;
  uint64_t frontier_edges = g.OutDegree(source);
  uint64_t prev_frontier_edges = 0;
  bool pulling = false;

  for (uint32_t level = 0; frontier_size > 0; ++level) {
    // Beamer's direction heuristic: switch to pull only while the frontier
    // is GROWING past the alpha fraction of the unexplored edges (a
    // shrinking wavefront — the road-network tail — must never pull).
    if (!pulling && frontier_edges > prev_frontier_edges &&
        frontier_edges * options.alpha > unvisited_edges) {
      pulling = true;
    } else if (pulling && frontier_size * options.beta < num_v) {
      pulling = false;
    }

    std::vector<std::vector<VertexId>> next(n);
    if (pulling) {
      ++stats.pull_levels;
      for (int d = 0; d < n; ++d) {
        uint64_t scanned = 0;
        for (const VertexId v : partition.part_vertices[d]) {
          if (depth[v] != kUnreached) continue;
          for (const VertexId u : g.InNeighbors(v)) {
            ++scanned;
            if (depth[u] == level) {
              depth[v] = level + 1;
              next[d].push_back(v);
              break;  // early exit: one parent suffices
            }
          }
        }
        stats.pulled_edges += scanned;
        const auto features = graph::ExtractFrontierFeatures(
            g, partition.part_vertices[d]);
        // Pull gathers are scattered in-CSR reads: worse coalescing than
        // the push direction's sequential adjacency streams.
        constexpr double kPullRandomAccessPenalty = 1.5;
        const double compute_ms =
            static_cast<double>(scanned) * kPullRandomAccessPenalty *
            sim::TrueEdgeCostNs(features, dev) / 1e6;
        // Pull scans are random-access in-CSR reads of a remote-or-local
        // depth array: 4 bytes per depth probe at the mean path bandwidth
        // of this device's peers.
        const double comm_ms =
            plane.MeanPathNs(d, static_cast<double>(scanned) * 4.0) / 1e6;
        result.timeline.Add(level, d, sim::TimeCategory::kCompute,
                            compute_ms);
        result.timeline.Add(level, d, sim::TimeCategory::kCommunication,
                            comm_ms);
        result.timeline.Add(
            level, d, sim::TimeCategory::kOverhead,
            (options.kernels_per_level * dev.kernel_launch_us * 1000.0 +
             p_ns * n) /
                1e6);
        result.edges_processed += scanned;
      }
    } else {
      ++stats.push_levels;
      for (int d = 0; d < n; ++d) {
        if (frontier[d].empty()) {
          result.timeline.Add(level, d, sim::TimeCategory::kOverhead,
                              p_ns * n / 1e6);
          continue;
        }
        uint64_t edges = 0;
        double remote_msgs = 0;
        for (const VertexId u : frontier[d]) {
          edges += g.OutDegree(u);
          for (const VertexId v : g.OutNeighbors(u)) {
            if (depth[v] == kUnreached) {
              depth[v] = level + 1;
              next[partition.owner[v]].push_back(v);
              if (partition.owner[v] != static_cast<uint32_t>(d)) {
                remote_msgs += 1.0;
              }
            }
          }
        }
        stats.pushed_edges += edges;
        const auto features =
            graph::ExtractFrontierFeatures(g, frontier[d]);
        const double compute_ms =
            static_cast<double>(edges) *
            sim::TrueEdgeCostNs(features, dev) / 1e6;
        const double comm_ms =
            sim::CommPlane::NominalLaneNs(remote_msgs *
                                          dev.bytes_per_message) /
            1e6;
        result.timeline.Add(level, d, sim::TimeCategory::kCompute,
                            compute_ms);
        result.timeline.Add(level, d, sim::TimeCategory::kCommunication,
                            comm_ms);
        result.timeline.Add(
            level, d, sim::TimeCategory::kOverhead,
            (options.kernels_per_level * dev.kernel_launch_us * 1000.0 +
             p_ns * n) /
                1e6);
        result.edges_processed += edges;
        result.messages_sent += static_cast<uint64_t>(remote_msgs);
      }
    }

    frontier = std::move(next);
    prev_frontier_edges = frontier_edges;
    frontier_size = 0;
    frontier_edges = 0;
    for (const auto& f : frontier) {
      frontier_size += f.size();
      for (const VertexId v : f) frontier_edges += g.OutDegree(v);
    }
    unvisited_edges =
        unvisited_edges >= frontier_edges ? unvisited_edges - frontier_edges
                                          : 0;
    result.total_ms += result.timeline.IterationWall(level);
    result.iterations = static_cast<int>(level) + 1;
  }

  if (depths_out != nullptr) *depths_out = std::move(depth);
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace gum::algos
