#include "common/flags.h"

#include <algorithm>
#include <cstdlib>

namespace gum {

FlagParser::FlagParser(int argc, const char* const* argv) {
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (flags_done || arg.size() < 3 || arg.substr(0, 2) != "--") {
      if (arg == "--") {
        flags_done = true;
        continue;
      }
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).substr(0, 2) != "--") {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";  // bare boolean
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return default_value;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  return (end == nullptr || *end != '\0') ? default_value : value;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return default_value;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  return (end == nullptr || *end != '\0') ? default_value : value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return default_value;
}

Result<std::string> FlagParser::GetEnum(
    const std::string& name, const std::string& default_value,
    const std::vector<std::string>& allowed) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  if (std::find(allowed.begin(), allowed.end(), it->second) !=
      allowed.end()) {
    return it->second;
  }
  std::string expected;
  for (const std::string& v : allowed) {
    if (!expected.empty()) expected += "|";
    expected += v;
  }
  return Status::InvalidArgument("unknown value '" + it->second +
                                 "' for --" + name + " (expected " +
                                 expected + ")");
}

Result<std::vector<int64_t>> FlagParser::GetIntList(
    const std::string& name, std::vector<int64_t> default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  const std::string& raw = it->second;
  const auto bad = [&](const std::string& token) {
    return Status::InvalidArgument("bad integer '" + token + "' in --" +
                                   name + "=" + raw +
                                   " (expected comma-separated integers)");
  };
  std::vector<int64_t> values;
  size_t start = 0;
  // A trailing comma yields a final empty token, rejected like any other.
  while (start <= raw.size()) {
    size_t comma = raw.find(',', start);
    if (comma == std::string::npos) comma = raw.size();
    const std::string token = raw.substr(start, comma - start);
    char* end = nullptr;
    const long long value = std::strtoll(token.c_str(), &end, 10);
    if (token.empty() || end == nullptr || *end != '\0') return bad(token);
    values.push_back(value);
    start = comma + 1;
  }
  return values;
}

Status FlagParser::KnownFlagsOnly(
    const std::vector<std::string>& known) const {
  std::string unknown;
  for (const auto& [name, value] : flags_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "--" + name;
    }
  }
  if (!unknown.empty()) {
    return Status::InvalidArgument("unknown flags: " + unknown);
  }
  return Status::OK();
}

}  // namespace gum
