// Hardening tests for the solver substrate: the plateau pathologies of
// min-max steal MILPs (many alternate optima) and the warm-start machinery
// that keeps branch & bound tractable on them.

#include <gtest/gtest.h>

#include <numeric>

#include "common/stopwatch.h"
#include "solver/milp.h"
#include "solver/steal_problem.h"

namespace gum::solver {
namespace {

std::vector<int> AllWorkers(int n) {
  std::vector<int> workers(n);
  std::iota(workers.begin(), workers.end(), 0);
  return workers;
}

TEST(MilpWarmStartTest, SeedsIncumbent) {
  // min x st x >= 2.5, x integer: warm start with the known answer 3.
  LinearProgram lp;
  lp.AddVariable(1.0);
  lp.AddRow({{1.0}, RowType::kGreaterEqual, 2.5});
  const std::vector<double> warm = {3.0};
  MilpOptions options;
  options.warm_start = &warm;
  auto sol = SolveMilp(lp, {true}, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 3.0, 1e-6);
}

TEST(MilpWarmStartTest, BetterSolutionStillFound) {
  // Warm start is deliberately bad (x = 10); B&B must still return the
  // optimum x = 3.
  LinearProgram lp;
  lp.AddVariable(1.0);
  lp.AddRow({{1.0}, RowType::kGreaterEqual, 2.5});
  const std::vector<double> warm = {10.0};
  MilpOptions options;
  options.warm_start = &warm;
  auto sol = SolveMilp(lp, {true}, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 3.0, 1e-6);
}

TEST(StealExactMilpTest, LargePlateauInstancesTerminateFast) {
  // The regression case: uniform costs + quadratic loads create a plateau
  // of alternate optima that exploded the un-warm-started B&B. With the
  // rounded-LP warm start this must finish in well under a second per n.
  for (int n : {4, 6, 8}) {
    std::vector<std::vector<double>> cost(n, std::vector<double>(n, 1.6));
    for (int i = 0; i < n; ++i) cost[i][i] = 1.0;
    std::vector<double> loads(n);
    for (int i = 0; i < n; ++i) loads[i] = 1000.0 * (i + 1) * (i + 1);
    StealProblemOptions options;
    options.exact_milp = true;

    Stopwatch timer;
    auto plan = SolveStealProblem(cost, loads, AllWorkers(n), options);
    ASSERT_TRUE(plan.ok()) << "n=" << n;
    EXPECT_LT(timer.ElapsedSeconds(), 1.0) << "n=" << n;

    // Exact makespan can only match or beat the rounded relaxation.
    auto lp_plan = SolveStealProblem(cost, loads, AllWorkers(n));
    ASSERT_TRUE(lp_plan.ok());
    EXPECT_LE(plan->makespan, lp_plan->makespan + 1e-6);
    // Conservation still holds.
    for (int i = 0; i < n; ++i) {
      double sum = 0;
      for (double x : plan->assignment[i]) sum += x;
      EXPECT_NEAR(sum, loads[i], 1e-9);
    }
  }
}

TEST(StealExactMilpTest, MatchesBruteForceOnTinyInstance) {
  // 2 fragments x 2 workers with loads small enough to brute-force.
  const std::vector<std::vector<double>> cost = {{1.0, 3.0}, {2.0, 1.0}};
  const std::vector<double> loads = {4, 3};
  StealProblemOptions options;
  options.exact_milp = true;
  auto plan = SolveStealProblem(cost, loads, {0, 1}, options);
  ASSERT_TRUE(plan.ok());

  double best = 1e18;
  for (int a = 0; a <= 4; ++a) {      // x00 = a, x01 = 4-a
    for (int b = 0; b <= 3; ++b) {    // x10 = b, x11 = 3-b
      const double w0 = 1.0 * a + 2.0 * b;
      const double w1 = 3.0 * (4 - a) + 1.0 * (3 - b);
      best = std::min(best, std::max(w0, w1));
    }
  }
  EXPECT_NEAR(plan->makespan, best, best * 2e-4);  // within the B&B gap
}

}  // namespace
}  // namespace gum::solver
