#include "algos/astar.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace gum::algos {

std::vector<float> GridManhattanHeuristic(const graph::CsrGraph& g,
                                          uint32_t rows, uint32_t cols,
                                          VertexId target) {
  const VertexId num_v = g.num_vertices();
  GUM_CHECK(static_cast<uint64_t>(rows) * cols == num_v)
      << "grid heuristic: rows*cols must equal the vertex count";
  GUM_CHECK(target < num_v) << "grid heuristic: target out of range";

  float min_w = std::numeric_limits<float>::max();
  bool any_edge = false;
  for (VertexId u = 0; u < num_v; ++u) {
    const auto weights = g.OutWeights(u);
    if (weights.empty()) {
      if (g.OutDegree(u) > 0) {
        min_w = std::min(min_w, 1.0f);
        any_edge = true;
      }
    } else {
      for (float w : weights) min_w = std::min(min_w, w);
      any_edge = any_edge || !weights.empty();
    }
  }
  if (!any_edge) min_w = 1.0f;

  const int64_t tr = target / cols;
  const int64_t tc = target % cols;
  std::vector<float> h(num_v);
  for (VertexId v = 0; v < num_v; ++v) {
    const int64_t r = v / cols;
    const int64_t c = v % cols;
    const int64_t manhattan = std::llabs(r - tr) + std::llabs(c - tc);
    h[v] = min_w * static_cast<float>(manhattan);
  }
  return h;
}

}  // namespace gum::algos
