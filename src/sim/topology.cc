#include "sim/topology.h"

#include <algorithm>

#include "common/logging.h"

namespace gum::sim {

Topology::Topology(int n)
    : n_(n),
      direct_(static_cast<size_t>(n) * n, 0.0),
      effective_(static_cast<size_t>(n) * n, 0.0),
      transit_(static_cast<size_t>(n) * n, -1) {
  for (int i = 0; i < n; ++i) direct_[Index(i, i)] = kLocalMemoryGBps;
}

void Topology::SetLink(int i, int j, double gbps) {
  direct_[Index(i, j)] = gbps;
  direct_[Index(j, i)] = gbps;
}

void Topology::SetDirectedLink(int i, int j, double gbps) {
  direct_[Index(i, j)] = gbps;
}

void Topology::FinalizeRouting() {
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      if (i == j) {
        effective_[Index(i, j)] = kLocalMemoryGBps;
        continue;
      }
      double best = std::max(direct_[Index(i, j)], kPcieGBps);
      int best_transit = -1;
      for (int k = 0; k < n_; ++k) {
        if (k == i || k == j) continue;
        const double leg1 = direct_[Index(i, k)];
        const double leg2 = direct_[Index(k, j)];
        if (leg1 <= 0.0 || leg2 <= 0.0) continue;
        const double routed = std::min(leg1, leg2) * kTransitEfficiency;
        if (routed > best) {
          best = routed;
          best_transit = k;
        }
      }
      effective_[Index(i, j)] = best;
      transit_[Index(i, j)] = best_transit;
    }
  }
}

Topology Topology::HybridCubeMesh8() {
  Topology t(8);
  const double one = kNvlinkLaneGBps;
  const double two = 2 * kNvlinkLaneGBps;
  // DGX-1V hybrid cube mesh: six lanes per GPU.
  t.SetLink(0, 1, one);
  t.SetLink(0, 2, one);
  t.SetLink(0, 3, two);
  t.SetLink(0, 4, two);
  t.SetLink(1, 2, two);
  t.SetLink(1, 3, one);
  t.SetLink(1, 5, two);
  t.SetLink(2, 3, one);
  t.SetLink(2, 6, two);
  t.SetLink(3, 7, two);
  t.SetLink(4, 5, one);
  t.SetLink(4, 6, one);
  t.SetLink(4, 7, two);
  t.SetLink(5, 6, two);
  t.SetLink(5, 7, one);
  t.SetLink(6, 7, one);
  t.FinalizeRouting();
  return t;
}

Result<Topology> Topology::HybridCubeMeshSubset(int n) {
  if (n < 1 || n > 8) {
    return Status::InvalidArgument("hybrid cube mesh subset needs n in [1,8]");
  }
  const Topology full = HybridCubeMesh8();
  Topology t(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      t.SetLink(i, j, full.DirectBandwidth(i, j));
    }
  }
  t.FinalizeRouting();
  return t;
}

Topology Topology::Ring(int n, double gbps, bool pcie_odd_wrap) {
  GUM_CHECK(n >= 1);
  Topology t(n);
  if (n > 1) {
    for (int i = 0; i < n; ++i) t.SetDirectedLink(i, (i + 1) % n, gbps);
    if (pcie_odd_wrap && n % 2 == 1) t.SetDirectedLink(n - 1, 0, kPcieGBps);
  }
  t.FinalizeRouting();
  return t;
}

Topology Topology::FullyConnected(int n, double gbps) {
  GUM_CHECK(n >= 1);
  Topology t(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) t.SetLink(i, j, gbps);
  }
  t.FinalizeRouting();
  return t;
}

Result<Topology> Topology::FromMatrix(std::vector<std::vector<double>> gbps) {
  const int n = static_cast<int>(gbps.size());
  if (n == 0) return Status::InvalidArgument("empty topology matrix");
  for (const auto& row : gbps) {
    if (static_cast<int>(row.size()) != n) {
      return Status::InvalidArgument("topology matrix must be square");
    }
  }
  Topology t(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && gbps[i][j] > 0) t.SetDirectedLink(i, j, gbps[i][j]);
    }
  }
  t.FinalizeRouting();
  return t;
}

double Topology::AggregateBandwidth(const std::vector<int>& active) const {
  double total = 0;
  for (size_t a = 0; a < active.size(); ++a) {
    for (size_t b = a + 1; b < active.size(); ++b) {
      total += direct_[Index(active[a], active[b])];
      total += direct_[Index(active[b], active[a])];
    }
  }
  return total / 2.0;  // symmetric links counted twice above
}

}  // namespace gum::sim
