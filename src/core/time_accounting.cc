#include "core/time_accounting.h"

#include "sim/kernel_cost.h"
#include "sim/timeline.h"

namespace gum::core {

TimeAccountingSummary AccountSuperstepTime(
    int iter, sim::CommPlane& plane, const sim::DeviceParams& dev,
    double p_ns, bool aggregate_messages,
    const std::vector<graph::FrontierFeatures>& features,
    const std::vector<std::vector<double>>& edges_done,
    const std::vector<std::vector<double>>& hub_edges,
    const std::vector<std::vector<double>>& agg_msgs,
    const std::vector<std::vector<double>>& raw_msgs,
    const std::vector<double>& apply_msgs,
    const std::vector<int>& owner_of_fragment,
    const std::vector<int>& active, const FStealDecision& fs,
    double stolen_edges, RunResult* result,
    const sim::ReductionTree* census_tree, bool multipath_bulk) {
  sim::Timeline& tl = result->timeline;
  const int n = static_cast<int>(edges_done.size());
  const int m = static_cast<int>(active.size());
  TimeAccountingSummary summary;
  summary.kernel_launches.assign(n, 0);
  // Pass 1: charge compute/serialization/overhead per device and enqueue
  // the superstep's transfers. Enqueue order mirrors the legacy per-device
  // accumulation (per active j: remote gather, local gather per source
  // fragment, then message forwards per destination), so contention=off is
  // bit-identical to the pre-CommPlane accounting.
  sim::TransferBatch batch;
  std::vector<double> compute_ns(n, 0.0);
  std::vector<double> serial_ns(n, 0.0);
  std::vector<double> overhead_ns(n, 0.0);
  for (const int j : active) {
    int kernels = 0;
    int destinations = 0;
    double worked = 0;
    for (int i = 0; i < n; ++i) {
      const double edges = edges_done[i][j];
      if (edges <= 0) continue;
      worked += edges;
      ++kernels;  // one gather kernel per source fragment
      compute_ns[j] += edges * sim::TrueEdgeCostNs(features[i], dev);
      const double remote_edges = (i == j) ? 0.0 : edges - hub_edges[i][j];
      const double local_edges = edges - remote_edges;
      // Remote gathers are the FSteal fragment payloads — plan-eligible
      // bulk when multipath is on; local reads never stripe.
      if (multipath_bulk && i != j) {
        batch.AddBulk(i, j, remote_edges * dev.bytes_per_remote_edge, j);
      } else {
        batch.Add(i, j, remote_edges * dev.bytes_per_remote_edge, j);
      }
      batch.Add(j, j, local_edges * dev.bytes_per_remote_edge, j);
    }
    // Message forwarding to each destination fragment's owner.
    for (int f = 0; f < n; ++f) {
      const double count =
          aggregate_messages ? agg_msgs[j][f] : raw_msgs[j][f];
      if (count <= 0) continue;
      const double bytes = count * dev.bytes_per_message;
      const int owner = owner_of_fragment[f];
      serial_ns[j] += bytes / dev.serialization_gbps + 3000.0;  // binning
      ++destinations;
      if (owner != j) {
        batch.Add(j, owner, bytes, j);
      }
    }
    // Apply kernel on the fragments this device owns.
    for (int f = 0; f < n; ++f) {
      if (owner_of_fragment[f] == j && apply_msgs[f] > 0) {
        compute_ns[j] += apply_msgs[f] * 3.0;  // per-message update cost
        ++kernels;
      }
    }
    const int launches = kernels + 2;
    const double launch_ns = launches * dev.kernel_launch_us * 1000.0;
    summary.kernel_launches[j] = launches;
    summary.kernel_launch_ns_total += launch_ns;
    overhead_ns[j] += launch_ns;
    // Barrier + buffer bookkeeping, Eq. (4). The legacy charge is the
    // all-to-one group factor m; with a reduction tree each device pays
    // only for its tree neighbors plus the barrier's critical path.
    overhead_ns[j] +=
        p_ns * (census_tree != nullptr ? census_tree->SyncFactor(j) : m);
    // Id conversion for outgoing messages.
    overhead_ns[j] += 0.5 * (worked > 0 ? 1.0 : 0.0) * destinations * 1000.0;
    if (fs.applied) {
      // Decision broadcast + stolen-status copies (Table IV overhead).
      const double fsteal_us = 18.0 + 2.5 * m;
      overhead_ns[j] += fsteal_us * 1000.0;
      result->fsteal_sim_overhead_ms += fsteal_us / 1000.0;
    }
  }
  // Pass 2: settle the batch against the interconnect and post the buckets.
  const sim::SettleResult comm = plane.Settle(batch);
  for (const int j : active) {
    tl.Add(iter, j, sim::TimeCategory::kCompute, compute_ns[j] / 1e6);
    tl.Add(iter, j, sim::TimeCategory::kCommunication,
           comm.tag_comm_ns[j] / 1e6);
    tl.Add(iter, j, sim::TimeCategory::kSerialization, serial_ns[j] / 1e6);
    tl.Add(iter, j, sim::TimeCategory::kOverhead, overhead_ns[j] / 1e6);
  }
  if (fs.applied && stolen_edges > 0) {
    result->fsteal_sim_overhead_ms +=
        stolen_edges * 0.000008;  // 8 B status copy per stolen edge, ~GB/s
  }
  for (int f = 0; f < n; ++f) {
    double sent = 0;
    for (int j = 0; j < n; ++j) sent += raw_msgs[j][f];
    result->messages_sent += static_cast<uint64_t>(sent);
  }
  return summary;
}

}  // namespace gum::core
