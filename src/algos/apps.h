// The four benchmark applications (paper §VI: BFS, WCC, PR, SSSP) expressed
// against the engine's GAS-style App concept (see core/engine.h), plus the
// delta-PageRank variant the paper cites as a long-tail-prone workload.
//
// All message combiners are commutative and associative, so results are
// independent of the stealing policy, the partitioner and the device count
// (the property suite in tests/ checks exactly this).
//
// Apps whose Scatter never suppresses an edge and whose
// InitialAccumulator is a true Combine identity additionally provide the
// optional CombineAll hook (core/expand/expand_backend.h): the SpMV pull
// gather fuses Scatter+Combine per in-edge through it. It must satisfy
// CombineAll(acc, p, w) == Combine(acc, *Scatter(p, dst, w)) bit for bit.
// Delta-PageRank suppresses zero payloads, so it defines no hook and the
// pull gather falls back to the Scatter/Combine pair.

#ifndef GUM_ALGOS_APPS_H_
#define GUM_ALGOS_APPS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>

#include "graph/types.h"

namespace gum::algos {

using graph::VertexId;

// Breadth-first search: depth from a source vertex.
struct BfsApp {
  using Value = uint32_t;
  using Message = uint32_t;
  static constexpr Value kUnreached = std::numeric_limits<Value>::max();

  VertexId source = 0;

  std::string name() const { return "bfs"; }
  int fixed_rounds() const { return -1; }
  Value InitValue(VertexId v) const { return v == source ? 0 : kUnreached; }
  bool IsInitiallyActive(VertexId v) const { return v == source; }
  Message InitialAccumulator() const { return kUnreached; }
  Message OnFrontier(VertexId, Value& val, uint32_t) { return val; }
  std::optional<Message> Scatter(const Message& payload, VertexId,
                                 float) const {
    return payload + 1;
  }
  Message Combine(const Message& a, const Message& b) const {
    return std::min(a, b);
  }
  Message CombineAll(const Message& acc, const Message& payload,
                     float) const {
    return std::min(acc, payload + 1);
  }
  bool Apply(VertexId, Value& val, const Message& msg) const {
    if (msg < val) {
      val = msg;
      return true;
    }
    return false;
  }
  // Async mode (core/async/): hotter = shallower; one bucket per level.
  double AsyncPriority(VertexId, const Value& val) const {
    return static_cast<double>(val);
  }
  double AsyncDefaultDelta(VertexId, double) const { return 1.0; }
};

// Single-source shortest paths over non-negative float edge weights
// (frontier-driven Bellman-Ford, the standard GAS formulation).
struct SsspApp {
  using Value = float;
  using Message = float;
  static constexpr Value kUnreached = std::numeric_limits<Value>::max();

  VertexId source = 0;

  std::string name() const { return "sssp"; }
  int fixed_rounds() const { return -1; }
  Value InitValue(VertexId v) const { return v == source ? 0.0f : kUnreached; }
  bool IsInitiallyActive(VertexId v) const { return v == source; }
  Message InitialAccumulator() const { return kUnreached; }
  Message OnFrontier(VertexId, Value& val, uint32_t) { return val; }
  std::optional<Message> Scatter(const Message& payload, VertexId,
                                 float weight) const {
    return payload + weight;
  }
  Message Combine(const Message& a, const Message& b) const {
    return std::min(a, b);
  }
  Message CombineAll(const Message& acc, const Message& payload,
                     float weight) const {
    return std::min(acc, payload + weight);
  }
  bool Apply(VertexId, Value& val, const Message& msg) const {
    if (msg < val) {
      val = msg;
      return true;
    }
    return false;
  }
  // Async mode: delta-stepping on the tentative distance (bucket width
  // defaults to 2x the average edge weight, resolved by the driver).
  double AsyncPriority(VertexId, const Value& val) const {
    return static_cast<double>(val);
  }
};

// Weakly connected components via min-label propagation. Run on a
// symmetrized CsrGraph (CsrBuildOptions::symmetrize) so labels can travel
// both directions; every vertex converges to the minimum vertex id of its
// component.
struct WccApp {
  using Value = VertexId;
  using Message = VertexId;

  std::string name() const { return "wcc"; }
  int fixed_rounds() const { return -1; }
  Value InitValue(VertexId v) const { return v; }
  bool IsInitiallyActive(VertexId) const { return true; }
  Message InitialAccumulator() const {
    return std::numeric_limits<Message>::max();
  }
  Message OnFrontier(VertexId, Value& val, uint32_t) { return val; }
  std::optional<Message> Scatter(const Message& payload, VertexId,
                                 float) const {
    return payload;
  }
  Message Combine(const Message& a, const Message& b) const {
    return std::min(a, b);
  }
  Message CombineAll(const Message& acc, const Message& payload,
                     float) const {
    return std::min(acc, payload);
  }
  bool Apply(VertexId, Value& val, const Message& msg) const {
    if (msg < val) {
      val = msg;
      return true;
    }
    return false;
  }
  // Async mode: spread small labels first (they win every merge).
  double AsyncPriority(VertexId, const Value& val) const {
    return static_cast<double>(val);
  }
  double AsyncDefaultDelta(VertexId num_vertices, double) const {
    return std::max(1.0, static_cast<double>(num_vertices) / 32.0);
  }
};

// Classic synchronous PageRank: a fixed number of power-iteration rounds
// with every vertex active ("the workload does not change in each
// iteration", paper Exp-5). Dangling mass is dropped, matching the
// reference implementation.
struct PageRankApp {
  using Value = double;
  using Message = double;

  VertexId num_vertices = 1;
  double damping = 0.85;
  int rounds = 20;

  std::string name() const { return "pagerank"; }
  int fixed_rounds() const { return rounds; }
  Value InitValue(VertexId) const { return 1.0 / num_vertices; }
  bool IsInitiallyActive(VertexId) const { return true; }
  Message InitialAccumulator() const { return 0.0; }
  Message OnFrontier(VertexId, Value& val, uint32_t out_degree) {
    return out_degree > 0 ? val / out_degree : 0.0;
  }
  std::optional<Message> Scatter(const Message& payload, VertexId,
                                 float) const {
    return payload;
  }
  Message Combine(const Message& a, const Message& b) const { return a + b; }
  // Exact: the 0.0 seed is an additive identity for the non-negative
  // contributions, so the pull chain reproduces the scatter chain's
  // double sums bit for bit.
  Message CombineAll(const Message& acc, const Message& payload,
                     float) const {
    return acc + payload;
  }
  bool Apply(VertexId, Value& val, const Message& msg) const {
    val = (1.0 - damping) / num_vertices + damping * msg;
    return true;
  }
};

// Delta-PageRank: data-driven residual propagation (the long-tail workload
// of the paper's introduction). A vertex re-activates only while its
// accumulated residual exceeds epsilon, so late iterations carry tiny
// frontiers.
struct DeltaPageRankApp {
  struct State {
    double rank = 0.0;
    double residual = 0.0;
  };
  using Value = State;
  using Message = double;

  VertexId num_vertices = 1;
  double damping = 0.85;
  double epsilon = 1e-9;

  std::string name() const { return "delta_pagerank"; }
  int fixed_rounds() const { return -1; }
  Value InitValue(VertexId) const {
    return State{0.0, (1.0 - damping) / num_vertices};
  }
  bool IsInitiallyActive(VertexId) const { return true; }
  Message InitialAccumulator() const { return 0.0; }
  Message OnFrontier(VertexId, Value& val, uint32_t out_degree) {
    const double delta = val.residual;
    val.residual = 0.0;
    val.rank += delta;
    return out_degree > 0 ? damping * delta / out_degree : 0.0;
  }
  std::optional<Message> Scatter(const Message& payload, VertexId,
                                 float) const {
    if (payload == 0.0) return std::nullopt;
    return payload;
  }
  Message Combine(const Message& a, const Message& b) const { return a + b; }
  bool Apply(VertexId, Value& val, const Message& msg) const {
    val.residual += msg;
    return val.residual > epsilon;
  }
  // Async mode: residual pushing — the largest residual is the hottest
  // work, so the priority is its negation; the default bucket width slices
  // the uniform initial residual into a handful of bands.
  double AsyncPriority(VertexId, const Value& val) const {
    return -val.residual;
  }
  double AsyncDefaultDelta(VertexId num_vertices, double) const {
    return (1.0 - damping) / num_vertices / 8.0;
  }
};

}  // namespace gum::algos

#endif  // GUM_ALGOS_APPS_H_
