#include <gtest/gtest.h>

#include "algos/apps.h"
#include "algos/near_far_sssp.h"
#include "algos/reference.h"
#include "core/engine.h"
#include "tests/test_util.h"

namespace gum::algos {
namespace {

using graph::VertexId;
using test::MakePartition;
using test::MaxDegreeSource;
using test::RoadGraph;
using test::SocialGraph;
using test::Topo;

TEST(NearFarTest, DistancesMatchDijkstraOnSocial) {
  const auto g = SocialGraph(10, 61, /*weighted=*/true);
  std::vector<float> dist;
  NearFarSssp(g, MakePartition(g, 1), Topo(1), 5, {}, &dist);
  const auto expected = ref::Sssp(g, 5);
  for (size_t v = 0; v < dist.size(); ++v) {
    ASSERT_EQ(dist[v], expected[v]) << "vertex " << v;
  }
}

TEST(NearFarTest, DistancesMatchDijkstraOnRoad) {
  const auto g = RoadGraph(40, 62);
  std::vector<float> dist;
  NearFarSssp(g, MakePartition(g, 1), Topo(1), 0, {}, &dist);
  const auto expected = ref::Sssp(g, 0);
  for (size_t v = 0; v < dist.size(); ++v) {
    ASSERT_EQ(dist[v], expected[v]) << "vertex " << v;
  }
}

TEST(NearFarTest, UnweightedGraphWorks) {
  const auto g = SocialGraph(9, 63, /*weighted=*/false);
  std::vector<float> dist;
  NearFarSssp(g, MakePartition(g, 1), Topo(1), 2, {}, &dist);
  const auto expected = ref::Sssp(g, 2);
  for (size_t v = 0; v < dist.size(); ++v) EXPECT_EQ(dist[v], expected[v]);
}

TEST(NearFarTest, UsesMultipleBands) {
  const auto g = RoadGraph(32, 64);
  NearFarStats stats;
  NearFarSssp(g, MakePartition(g, 1), Topo(1), 0, {}, nullptr, &stats);
  EXPECT_GT(stats.bands, 4) << "long weighted paths need many bands";
  EXPECT_GT(stats.far_pile_moves, 0u);
}

TEST(NearFarTest, FewerRelaxationsThanPlainBellmanFord) {
  // The pile discipline avoids re-relaxing vertices whose distance will
  // still drop; compare total relaxations against the frontier engine.
  const auto g = SocialGraph(10, 65, /*weighted=*/true);
  const VertexId source = MaxDegreeSource(g);
  NearFarStats stats;
  NearFarSssp(g, MakePartition(g, 1), Topo(1), source, {}, nullptr, &stats);

  auto opt = test::TestEngineOptions();
  opt.enable_fsteal = false;
  opt.enable_osteal = false;
  core::GumEngine<SsspApp> engine(&g, MakePartition(g, 1), Topo(1), opt);
  SsspApp app;
  app.source = source;
  const core::RunResult plain = engine.Run(app);
  EXPECT_LT(stats.relaxations, plain.edges_processed);
}

TEST(NearFarTest, MultiDeviceStillExact) {
  const auto g = SocialGraph(9, 66, /*weighted=*/true);
  for (int devices : {2, 4}) {
    std::vector<float> dist;
    NearFarSssp(g, MakePartition(g, devices), Topo(devices), 1, {}, &dist);
    const auto expected = ref::Sssp(g, 1);
    for (size_t v = 0; v < dist.size(); ++v) {
      ASSERT_EQ(dist[v], expected[v]) << devices << " devices, v=" << v;
    }
  }
}

TEST(NearFarTest, ExplicitDeltaRespected) {
  const auto g = RoadGraph(24, 67);
  NearFarStats coarse_stats, fine_stats;
  NearFarOptions coarse;
  coarse.delta = 1e9;  // one giant band: degenerates to Bellman-Ford
  NearFarOptions fine;
  fine.delta = 2.0;
  NearFarSssp(g, MakePartition(g, 1), Topo(1), 0, coarse, nullptr,
              &coarse_stats);
  NearFarSssp(g, MakePartition(g, 1), Topo(1), 0, fine, nullptr,
              &fine_stats);
  EXPECT_EQ(coarse_stats.bands, 1);
  EXPECT_GT(fine_stats.bands, 10);
  EXPECT_LE(fine_stats.relaxations, coarse_stats.relaxations);
}

}  // namespace
}  // namespace gum::algos
