#include "core/run_result.h"

namespace gum::core {

double RunResult::TotalRemoteBytes() const {
  double total = 0;
  for (size_t i = 0; i < link_bytes.size(); ++i) {
    for (size_t j = 0; j < link_bytes[i].size(); ++j) {
      if (i != j) total += link_bytes[i][j];
    }
  }
  return total;
}

double RunResult::TotalPayloadBytes() const {
  // Engines that predate payload telemetry only fill link_bytes; under the
  // point-to-point model the two are the same thing.
  const auto& matrix = payload_bytes.empty() ? link_bytes : payload_bytes;
  double total = 0;
  for (size_t i = 0; i < matrix.size(); ++i) {
    for (size_t j = 0; j < matrix[i].size(); ++j) {
      if (i != j) total += matrix[i][j];
    }
  }
  return total;
}

double RunResult::RecoveryChargedMs() const {
  return recovery_detect_ms + recovery_restore_ms + recovery_migrate_ms +
         lost_work_ms;
}

double RunResult::StarvationMs() const {
  double starvation = 0;
  for (int it = 0; it < timeline.num_iterations(); ++it) {
    const double wall = timeline.IterationWall(it);
    for (int d = 0; d < timeline.num_devices(); ++d) {
      const double busy = timeline.DeviceIterationTotal(it, d);
      if (busy > 0) starvation += wall - busy;
    }
  }
  return starvation;
}

}  // namespace gum::core
