// Google-benchmark micro benchmarks for GUM's per-iteration decision
// machinery and the supporting substrates. These bound the overhead terms
// of paper Table IV from below: everything on the critical decision path
// (cost matrix, MILP solve, vertex-range selection, feature extraction)
// must stay in the tens-of-microseconds range for n <= 8 devices.
//
// JSON output goes through the repo's own writer (common/json.h), not
// google-benchmark's built-in --benchmark_out: pass --bench-json=FILE and
// the collected runs (including aggregates and user counters) are emitted
// in the same shape CI's figure harness reads, with the writer's uniform
// escaping and round-trip-safe doubles.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

#include "algos/apps.h"
#include "common/parallel_primitives.h"
#include "common/thread_pool.h"
#include "core/edge_cost_model.h"
#include "core/engine.h"
#include "core/expand/frontier_scatter.h"
#include "core/expand/spmv.h"
#include "core/fsteal.h"
#include "core/message_store.h"
#include "core/osteal.h"
#include "core/superstep.h"
#include "core/vertex_state.h"
#include "graph/csr.h"
#include "graph/frontier_features.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "ml/dataset.h"
#include "ml/polynomial_regression.h"
#include "sim/comm_plane.h"
#include "sim/reduction_schedule.h"
#include "sim/topology.h"
#include "sim/transfer_plan.h"
#include "solver/steal_problem.h"

namespace {

using namespace gum;  // NOLINT(build/namespaces)

const graph::CsrGraph& BenchGraph() {
  static const graph::CsrGraph* g = [] {
    graph::RmatOptions opt;
    opt.scale = 14;
    opt.edge_factor = 12;
    opt.seed = 33;
    auto built = graph::CsrGraph::FromEdgeList(graph::Rmat(opt));
    return new graph::CsrGraph(std::move(built).value());
  }();
  return *g;
}

std::vector<std::vector<double>> StealCost(int n) {
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 1.6));
  for (int i = 0; i < n; ++i) cost[i][i] = 1.0;
  return cost;
}

std::vector<double> StealLoads(int n) {
  std::vector<double> loads(n);
  for (int i = 0; i < n; ++i) loads[i] = 1000.0 * (i + 1) * (i + 1);
  return loads;
}

std::vector<int> AllWorkers(int n) {
  std::vector<int> workers(n);
  std::iota(workers.begin(), workers.end(), 0);
  return workers;
}

// --- the per-iteration decision path ---

void BM_StealLpSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto cost = StealCost(n);
  const auto loads = StealLoads(n);
  const auto workers = AllWorkers(n);
  for (auto _ : state) {
    auto plan = solver::SolveStealProblem(cost, loads, workers);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_StealLpSolve)->Arg(2)->Arg(4)->Arg(8);

void BM_StealMilpExact(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto cost = StealCost(n);
  const auto loads = StealLoads(n);
  const auto workers = AllWorkers(n);
  solver::StealProblemOptions options;
  options.exact_milp = true;
  for (auto _ : state) {
    auto plan = solver::SolveStealProblem(cost, loads, workers, options);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_StealMilpExact)->Arg(2)->Arg(4);

void BM_StealGreedy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto cost = StealCost(n);
  const auto loads = StealLoads(n);
  const auto workers = AllWorkers(n);
  for (auto _ : state) {
    auto plan = solver::GreedyStealPlan(cost, loads, workers);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_StealGreedy)->Arg(8);

void BM_OStealEnumeration(benchmark::State& state) {
  const auto topo = sim::Topology::HybridCubeMesh8();
  const auto schedule = sim::ReductionSchedule::Build(topo);
  const auto cost = StealCost(8);
  const auto loads = StealLoads(8);
  for (auto _ : state) {
    auto decision = core::DecideOSteal(cost, loads, schedule, 1e5, {});
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_OStealEnumeration);

void BM_FrontierFeatureExtraction(benchmark::State& state) {
  const auto& g = BenchGraph();
  std::vector<graph::VertexId> frontier(state.range(0));
  for (size_t i = 0; i < frontier.size(); ++i) {
    frontier[i] =
        static_cast<graph::VertexId>((i * 2654435761u) % g.num_vertices());
  }
  for (auto _ : state) {
    auto features = graph::ExtractFrontierFeatures(g, frontier);
    benchmark::DoNotOptimize(features);
  }
  state.SetItemsProcessed(state.iterations() * frontier.size());
}
BENCHMARK(BM_FrontierFeatureExtraction)->Arg(1024)->Arg(16384);

void BM_SelectStolenRanges(benchmark::State& state) {
  const auto& g = BenchGraph();
  std::vector<graph::VertexId> frontier(16384);
  double total = 0;
  for (size_t i = 0; i < frontier.size(); ++i) {
    frontier[i] = static_cast<graph::VertexId>(i);
    total += g.OutDegree(frontier[i]);
  }
  std::vector<double> quota(8, total / 8);
  const auto workers = AllWorkers(8);
  for (auto _ : state) {
    auto ranges = core::SelectStolenRanges(g, frontier, quota, workers);
    benchmark::DoNotOptimize(ranges);
  }
  state.SetItemsProcessed(state.iterations() * frontier.size());
}
BENCHMARK(BM_SelectStolenRanges);

void BM_CostModelInference(benchmark::State& state) {
  ml::CostDatasetOptions opt;
  opt.frontiers_per_graph = 60;
  const ml::Dataset data = ml::GenerateDefaultCostDataset(opt);
  ml::PolynomialRegression model(4);
  (void)model.Fit(data);
  graph::FrontierFeatures w;
  w.avg_out_degree = 12;
  w.avg_in_degree = 9;
  w.gini = 0.4;
  w.entropy = 0.8;
  const auto arr = w.ToArray();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(arr));
  }
}
BENCHMARK(BM_CostModelInference);

// --- the superstep runtime (Step 4 of every iteration) ---

// 8-vGPU all-active BFS expansion under an even steal plan: every executor
// expands a slice of every fragment — the heaviest Step-4 shape. This is
// the loop the host thread pool parallelizes; wall-clock should drop
// roughly with core count while results stay bit-identical (the thread
// count is the benchmark argument).
struct SuperstepFixture {
  const graph::CsrGraph& g = BenchGraph();
  graph::Partition partition;
  core::FrontierSoA frontier;
  core::FStealDecision fs;
  std::vector<int> owner;
  std::vector<core::WorkUnit> units;
  std::vector<uint32_t> values;

  SuperstepFixture() {
    const int n = 8;
    partition =
        std::move(graph::PartitionGraph(g, n, graph::PartitionOptions{}))
            .value();
    frontier.Assign(partition.part_vertices);
    std::vector<double> loads(n, 0.0);
    for (int i = 0; i < n; ++i) {
      for (const graph::VertexId v : frontier.Fragment(i)) {
        loads[i] += g.OutDegree(v);
      }
    }
    fs.applied = true;
    fs.assignment.assign(n, std::vector<double>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) fs.assignment[i][j] = loads[i] / n;
    }
    owner.resize(n);
    std::iota(owner.begin(), owner.end(), 0);
    std::vector<int> active(n);
    std::iota(active.begin(), active.end(), 0);
    units = core::BuildWorkUnits(g, frontier, fs, loads, owner, active);
    values.assign(g.num_vertices(), 0);
  }
};

const SuperstepFixture& GetSuperstepFixture() {
  static const SuperstepFixture* fx = new SuperstepFixture;
  return *fx;
}

void BM_SuperstepExpandBfs8Dev(benchmark::State& state) {
  const SuperstepFixture& fx = GetSuperstepFixture();
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  const core::ShardMap shards(fx.g.num_vertices(), threads);
  algos::BfsApp app;
  std::vector<uint32_t> values = fx.values;
  std::vector<core::MessageStaging<uint32_t>> staged;
  std::vector<core::UnitCounters> counters;
  for (auto _ : state) {
    core::ExpandSuperstep(&pool, fx.g, fx.partition, nullptr, fx.owner, app,
                          values, fx.frontier, fx.units, shards, &staged,
                          &counters);
    benchmark::DoNotOptimize(staged.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.g.num_edges()));
}
BENCHMARK(BM_SuperstepExpandBfs8Dev)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

// Expansion plus the destination-sharded merge and store drain — one full
// Step 4. Merge and apply parallelize over shards (= threads here, the
// default knob), so end-to-end scaling is no longer capped by a serial
// drain.
void BM_SuperstepFullBfs8Dev(benchmark::State& state) {
  const SuperstepFixture& fx = GetSuperstepFixture();
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  const core::ShardMap shards(fx.g.num_vertices(), threads);
  algos::BfsApp app;
  std::vector<uint32_t> values = fx.values;
  std::vector<core::MessageStaging<uint32_t>> staged;
  std::vector<core::UnitCounters> counters;
  core::MessageStore<uint32_t> store(fx.g.num_vertices());
  const auto combine = [](uint32_t a, uint32_t b) { return std::min(a, b); };
  for (auto _ : state) {
    core::ExpandSuperstep(&pool, fx.g, fx.partition, nullptr, fx.owner, app,
                          values, fx.frontier, fx.units, shards, &staged,
                          &counters);
    store.MergeSharded(&pool, shards, staged, fx.units.size(), combine,
                       [](int, size_t, graph::VertexId) {});
    benchmark::DoNotOptimize(store.PendingCount());
    store.EndSuperstep();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.g.num_edges()));
}
BENCHMARK(BM_SuperstepFullBfs8Dev)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

// --- phase-split superstep timings (expand / merge / apply) ---
//
// PageRank on the rmat fixture: every vertex active, double-sum combiner —
// the message-heaviest Step-4 shape, where merge+apply dominate wall-clock.
// The CI bench-smoke job emits these rows as BENCH_superstep.json
// (workload in the name, threads/shards as named args, wall-ms as
// real_time), the machine-readable perf trajectory of the message plane.

struct PrPhaseFixture {
  const SuperstepFixture& fx = GetSuperstepFixture();
  algos::PageRankApp app;
  std::vector<double> values;

  PrPhaseFixture() {
    app.num_vertices = fx.g.num_vertices();
    values.assign(fx.g.num_vertices(), 1.0 / fx.g.num_vertices());
  }
};

PrPhaseFixture& GetPrPhaseFixture() {
  static PrPhaseFixture* fx = new PrPhaseFixture;
  return *fx;
}

void BM_SuperstepMergePr8Dev(benchmark::State& state) {
  PrPhaseFixture& pf = GetPrPhaseFixture();
  const SuperstepFixture& fx = pf.fx;
  ThreadPool pool(static_cast<int>(state.range(0)));
  const core::ShardMap shards(fx.g.num_vertices(),
                              static_cast<int>(state.range(1)));
  std::vector<double> values = pf.values;
  std::vector<core::MessageStaging<double>> staged;
  std::vector<core::UnitCounters> counters;
  core::ExpandSuperstep(&pool, fx.g, fx.partition, nullptr, fx.owner, pf.app,
                        values, fx.frontier, fx.units, shards, &staged,
                        &counters);
  core::MessageStore<double> store(fx.g.num_vertices());
  const auto combine = [](double a, double b) { return a + b; };
  for (auto _ : state) {
    store.MergeSharded(&pool, shards, staged, fx.units.size(), combine,
                       [](int, size_t, graph::VertexId) {});
    benchmark::DoNotOptimize(store.PendingCount());
    store.EndSuperstep();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.g.num_edges()));
}
BENCHMARK(BM_SuperstepMergePr8Dev)
    ->ArgNames({"threads", "shards"})
    ->Args({1, 1})->Args({2, 2})->Args({4, 4})->Args({8, 8})->Args({8, 32})
    ->UseRealTime();

void BM_SuperstepApplyPr8Dev(benchmark::State& state) {
  PrPhaseFixture& pf = GetPrPhaseFixture();
  const SuperstepFixture& fx = pf.fx;
  ThreadPool pool(static_cast<int>(state.range(0)));
  const core::ShardMap shards(fx.g.num_vertices(),
                              static_cast<int>(state.range(1)));
  std::vector<double> values = pf.values;
  std::vector<core::MessageStaging<double>> staged;
  std::vector<core::UnitCounters> counters;
  core::ExpandSuperstep(&pool, fx.g, fx.partition, nullptr, fx.owner, pf.app,
                        values, fx.frontier, fx.units, shards, &staged,
                        &counters);
  core::MessageStore<double> store(fx.g.num_vertices());
  const auto combine = [](double a, double b) { return a + b; };
  core::ApplyScratch scratch;
  for (auto _ : state) {
    state.PauseTiming();
    store.MergeSharded(&pool, shards, staged, fx.units.size(), combine,
                       [](int, size_t, graph::VertexId) {});
    state.ResumeTiming();
    core::ApplySuperstep(&pool, shards, fx.partition, pf.app, store, values,
                         /*fixed_rounds=*/true, &scratch, nullptr, nullptr);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.g.num_vertices()));
}
BENCHMARK(BM_SuperstepApplyPr8Dev)
    ->ArgNames({"threads", "shards"})
    ->Args({1, 1})->Args({2, 2})->Args({4, 4})->Args({8, 8})->Args({8, 32})
    ->UseRealTime();

// Merge + apply back to back — the phase the sharded message plane
// parallelizes; compare {t,s}={1,1} (the pre-shard serial drain) against
// {8,8}.
void BM_SuperstepMergeApplyPr8Dev(benchmark::State& state) {
  PrPhaseFixture& pf = GetPrPhaseFixture();
  const SuperstepFixture& fx = pf.fx;
  ThreadPool pool(static_cast<int>(state.range(0)));
  const core::ShardMap shards(fx.g.num_vertices(),
                              static_cast<int>(state.range(1)));
  std::vector<double> values = pf.values;
  std::vector<core::MessageStaging<double>> staged;
  std::vector<core::UnitCounters> counters;
  core::ExpandSuperstep(&pool, fx.g, fx.partition, nullptr, fx.owner, pf.app,
                        values, fx.frontier, fx.units, shards, &staged,
                        &counters);
  core::MessageStore<double> store(fx.g.num_vertices());
  const auto combine = [](double a, double b) { return a + b; };
  core::ApplyScratch scratch;
  for (auto _ : state) {
    store.MergeSharded(&pool, shards, staged, fx.units.size(), combine,
                       [](int, size_t, graph::VertexId) {});
    core::ApplySuperstep(&pool, shards, fx.partition, pf.app, store, values,
                         /*fixed_rounds=*/true, &scratch, nullptr, nullptr);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.g.num_edges()));
}
BENCHMARK(BM_SuperstepMergeApplyPr8Dev)
    ->ArgNames({"threads", "shards"})
    ->Args({1, 1})->Args({2, 2})->Args({4, 4})->Args({8, 8})->Args({8, 32})
    ->UseRealTime();

// --- pluggable expand backends (core/expand/, DESIGN.md §12) ---
//
// One full expand (payloads + traversal + message deposit) of an all-active
// PageRank iteration on the rmat fixture — the dense shape where the pull
// SpMV gather should beat frontier scatter (no per-unit staging, no sharded
// merge, one combined deposit per destination). All three backends run the
// identity plan on the same workload, so BENCH_superstep.json carries a
// direct scatter-vs-spmv trajectory per thread count.

void BM_ExpandScatterPr8Dev(benchmark::State& state) {
  PrPhaseFixture& pf = GetPrPhaseFixture();
  const SuperstepFixture& fx = pf.fx;
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  const core::ShardMap shards(fx.g.num_vertices(), threads);
  std::vector<double> values = pf.values;
  core::FrontierScatterBackend<algos::PageRankApp> backend;
  core::ExpandCounters counters;
  core::MessageStore<double> store(fx.g.num_vertices());
  const core::FStealDecision no_steal;
  const std::vector<double> no_loads(8, 0.0);
  for (auto _ : state) {
    backend.Expand(&pool, fx.g, fx.partition, nullptr, fx.owner,
                   /*active=*/{}, no_steal, no_loads, pf.app, values,
                   fx.frontier, shards, store, &counters);
    benchmark::DoNotOptimize(store.PendingCount());
    store.EndSuperstep();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.g.num_edges()));
}
BENCHMARK(BM_ExpandScatterPr8Dev)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_ExpandSpmvPushPr8Dev(benchmark::State& state) {
  PrPhaseFixture& pf = GetPrPhaseFixture();
  const SuperstepFixture& fx = pf.fx;
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  const core::ShardMap shards(fx.g.num_vertices(), threads);
  std::vector<double> values = pf.values;
  core::SpmvBackend<algos::PageRankApp> backend;
  core::ExpandCounters counters;
  core::MessageStore<double> store(fx.g.num_vertices());
  for (auto _ : state) {
    backend.ExpandPush(&pool, fx.g, fx.partition, fx.owner, pf.app, values,
                       fx.frontier, shards, store, &counters);
    benchmark::DoNotOptimize(store.PendingCount());
    store.EndSuperstep();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.g.num_edges()));
}
BENCHMARK(BM_ExpandSpmvPushPr8Dev)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_ExpandSpmvPullPr8Dev(benchmark::State& state) {
  PrPhaseFixture& pf = GetPrPhaseFixture();
  const SuperstepFixture& fx = pf.fx;
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  const core::ShardMap shards(fx.g.num_vertices(), threads);
  std::vector<double> values = pf.values;
  core::SpmvBackend<algos::PageRankApp> backend;
  core::ExpandCounters counters;
  core::MessageStore<double> store(fx.g.num_vertices());
  // Warm-up run so the one-time PullEdges build is not timed.
  backend.ExpandPull(&pool, fx.g, fx.partition, fx.owner, pf.app, values,
                     fx.frontier, shards, store, &counters);
  store.EndSuperstep();
  for (auto _ : state) {
    backend.ExpandPull(&pool, fx.g, fx.partition, fx.owner, pf.app, values,
                       fx.frontier, shards, store, &counters);
    benchmark::DoNotOptimize(store.PendingCount());
    store.EndSuperstep();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.g.num_edges()));
}
BENCHMARK(BM_ExpandSpmvPullPr8Dev)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

// Whole-engine host wall-clock on 8 vGPUs (census + stealing decisions +
// superstep + accounting). Arg is num_host_threads; 0 = hardware
// concurrency.
void BM_GumEngineBfs8Dev(benchmark::State& state) {
  const SuperstepFixture& fx = GetSuperstepFixture();
  const auto topo = sim::Topology::HybridCubeMesh8();
  core::EngineOptions opt;
  opt.record_iteration_stats = false;
  opt.num_host_threads = static_cast<int>(state.range(0));
  graph::VertexId source = 0;
  for (graph::VertexId v = 0; v < fx.g.num_vertices(); ++v) {
    if (fx.g.OutDegree(v) > fx.g.OutDegree(source)) source = v;
  }
  for (auto _ : state) {
    core::GumEngine<algos::BfsApp> engine(&fx.g, fx.partition, topo, opt);
    algos::BfsApp app;
    app.source = source;
    const auto result = engine.Run(app);
    benchmark::DoNotOptimize(result.total_ms);
  }
}
BENCHMARK(BM_GumEngineBfs8Dev)->Arg(1)->Arg(0)->UseRealTime();

// --- the interconnect plane ---

// A deterministic batch mixing direct-lane, 2-hop-transit and PCIe
// transfers on the 8-GPU hybrid cube mesh. The stride-5 walk visits every
// (src, dst) flavor; sizes vary so fair-share settling sees staggered
// completions instead of one synchronized wave.
sim::TransferBatch CommBatch(int transfers) {
  sim::TransferBatch batch;
  for (int i = 0; i < transfers; ++i) {
    const int src = i % 8;
    const int dst = (src + 1 + (i * 5) % 7) % 8;
    const double bytes = 1e5 * (1 + i % 13);
    batch.Add(src, dst, bytes, src);
  }
  return batch;
}

// Settle cost vs. transfer count. kOff is a linear pass; kFair runs the
// progressive-filling event simulation, whose rounds grow with the number
// of distinct completion times. Both must stay far below the per-iteration
// decision budget (tens of microseconds for engine-sized batches).
void BM_CommPlaneSettleOff(benchmark::State& state) {
  const auto topo = sim::Topology::HybridCubeMesh8();
  const auto batch = CommBatch(static_cast<int>(state.range(0)));
  sim::CommPlane plane(topo, sim::ContentionModel::kOff);
  for (auto _ : state) {
    auto settled = plane.Settle(batch);
    benchmark::DoNotOptimize(settled.completion_ns.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CommPlaneSettleOff)->Arg(8)->Arg(64)->Arg(512);

void BM_CommPlaneSettleFair(benchmark::State& state) {
  const auto topo = sim::Topology::HybridCubeMesh8();
  const auto batch = CommBatch(static_cast<int>(state.range(0)));
  sim::CommPlane plane(topo, sim::ContentionModel::kFair);
  for (auto _ : state) {
    auto settled = plane.Settle(batch);
    benchmark::DoNotOptimize(settled.completion_ns.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CommPlaneSettleFair)->Arg(8)->Arg(64)->Arg(512);

// --- multi-path transfer plans (sim/transfer_plan.h) ---

// A migration-shaped bulk batch: every device ships one large ownership-
// migration payload to a rebalance target, the traffic pattern OSteal and
// fault recovery put on the wire. Sizes are staggered like CommBatch's.
sim::TransferBatch MigrationBatch() {
  sim::TransferBatch batch;
  for (int src = 0; src < 8; ++src) {
    const int dst = (src + 3) % 8;
    const double bytes = 4e6 * (1 + src % 3);
    batch.AddBulk(src, dst, bytes, dst);
  }
  return batch;
}

// Host cost of building one striping plan. Planning runs per bulk transfer
// inside Settle, so it must stay well under the settle loop's own cost.
void BM_TransferPlanStripe(benchmark::State& state) {
  const auto topo = sim::Topology::HybridCubeMesh8();
  sim::CommPlane plane(topo, sim::ContentionModel::kFair);
  plane.set_multipath(true);
  for (auto _ : state) {
    auto transfer_plan = plane.PlanBulkTransfer(0, 5, 4e6);
    benchmark::DoNotOptimize(transfer_plan.paths.data());
  }
}
BENCHMARK(BM_TransferPlanStripe);

// Host cost of building the census reduction tree (once per iteration).
void BM_TransferPlanReductionTree(benchmark::State& state) {
  const auto topo = sim::Topology::HybridCubeMesh8();
  sim::CommPlane plane(topo, sim::ContentionModel::kFair);
  std::vector<int> active(8);
  std::iota(active.begin(), active.end(), 0);
  for (auto _ : state) {
    auto tree = plane.BuildCensusTree(active);
    benchmark::DoNotOptimize(tree.parent.data());
  }
}
BENCHMARK(BM_TransferPlanReductionTree);

// Simulated makespan of the striped migration batch under fair sharing.
// UseManualTime + SetIterationTime report the *simulated* seconds as the
// benchmark's real_time, so CI's bench_diff gate can assert that the
// multipath=on cell beats multipath=off on identical traffic.
void BM_TransferPlanStripedMigration8DevMultipathOff(
    benchmark::State& state) {
  const auto topo = sim::Topology::HybridCubeMesh8();
  const auto batch = MigrationBatch();
  sim::CommPlane plane(topo, sim::ContentionModel::kFair);
  for (auto _ : state) {
    auto settled = plane.Settle(batch);
    double makespan_ns = 0.0;
    for (const double ns : settled.completion_ns) {
      makespan_ns = std::max(makespan_ns, ns);
    }
    state.SetIterationTime(makespan_ns * 1e-9);
  }
}
BENCHMARK(BM_TransferPlanStripedMigration8DevMultipathOff)->UseManualTime();

void BM_TransferPlanStripedMigration8DevMultipathOn(
    benchmark::State& state) {
  const auto topo = sim::Topology::HybridCubeMesh8();
  const auto batch = MigrationBatch();
  sim::CommPlane plane(topo, sim::ContentionModel::kFair);
  plane.set_multipath(true);
  for (auto _ : state) {
    auto settled = plane.Settle(batch);
    double makespan_ns = 0.0;
    for (const double ns : settled.completion_ns) {
      makespan_ns = std::max(makespan_ns, ns);
    }
    state.SetIterationTime(makespan_ns * 1e-9);
  }
}
BENCHMARK(BM_TransferPlanStripedMigration8DevMultipathOn)->UseManualTime();

// Whole-engine cost of the contention knob: the same 8-vGPU BFS as
// BM_GumEngineBfs8Dev but with fair lane sharing. The host-side delta
// against the Arg(0) rows of that benchmark is the price of the event
// simulation; the simulated total_ms delta is the modeled contention.
void BM_GumEngineBfs8DevFairContention(benchmark::State& state) {
  const SuperstepFixture& fx = GetSuperstepFixture();
  const auto topo = sim::Topology::HybridCubeMesh8();
  core::EngineOptions opt;
  opt.record_iteration_stats = false;
  opt.num_host_threads = static_cast<int>(state.range(0));
  opt.contention = sim::ContentionModel::kFair;
  graph::VertexId source = 0;
  for (graph::VertexId v = 0; v < fx.g.num_vertices(); ++v) {
    if (fx.g.OutDegree(v) > fx.g.OutDegree(source)) source = v;
  }
  for (auto _ : state) {
    core::GumEngine<algos::BfsApp> engine(&fx.g, fx.partition, topo, opt);
    algos::BfsApp app;
    app.source = source;
    const auto result = engine.Run(app);
    benchmark::DoNotOptimize(result.total_ms);
  }
}
BENCHMARK(BM_GumEngineBfs8DevFairContention)->Arg(1)->Arg(0)->UseRealTime();

// --- substrates ---

void BM_ReductionScheduleBuild(benchmark::State& state) {
  const auto topo = sim::Topology::HybridCubeMesh8();
  for (auto _ : state) {
    auto schedule = sim::ReductionSchedule::Build(topo);
    benchmark::DoNotOptimize(schedule);
  }
}
BENCHMARK(BM_ReductionScheduleBuild);

void BM_CsrBuild(benchmark::State& state) {
  graph::RmatOptions opt;
  opt.scale = static_cast<int>(state.range(0));
  opt.edge_factor = 8;
  const graph::EdgeList list = graph::Rmat(opt);
  for (auto _ : state) {
    auto g = graph::CsrGraph::FromEdgeList(list);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * list.edges.size());
}
BENCHMARK(BM_CsrBuild)->Arg(12)->Arg(14);

void BM_Partition(benchmark::State& state) {
  const auto& g = BenchGraph();
  graph::PartitionOptions opt;
  opt.kind = static_cast<graph::PartitionerKind>(state.range(0));
  for (auto _ : state) {
    auto p = graph::PartitionGraph(g, 8, opt);
    benchmark::DoNotOptimize(p);
  }
  state.SetLabel(graph::PartitionerName(opt.kind));
}
BENCHMARK(BM_Partition)->Arg(0)->Arg(1)->Arg(2);

void BM_RmatGeneration(benchmark::State& state) {
  graph::RmatOptions opt;
  opt.scale = 13;
  opt.edge_factor = 8;
  for (auto _ : state) {
    auto list = graph::Rmat(opt);
    benchmark::DoNotOptimize(list);
  }
}
BENCHMARK(BM_RmatGeneration);

void BM_PrefixSumAndSearch(benchmark::State& state) {
  std::vector<uint64_t> degrees(65536);
  for (size_t i = 0; i < degrees.size(); ++i) degrees[i] = i % 37;
  for (auto _ : state) {
    auto prefix = InclusivePrefixSum(degrees);
    const std::vector<uint64_t> needles = {prefix.back() / 4,
                                           prefix.back() / 2,
                                           3 * prefix.back() / 4};
    auto splits = SortedSearchLower(prefix, needles);
    benchmark::DoNotOptimize(splits);
  }
  state.SetItemsProcessed(state.iterations() * degrees.size());
}
BENCHMARK(BM_PrefixSumAndSearch);

// --- the --bench-json reporter ---

// Console output as usual, plus a copy of every finished run for the JSON
// dump below.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    runs_.insert(runs_.end(), runs.begin(), runs.end());
    ConsoleReporter::ReportRuns(runs);
  }
  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

void WriteBenchJson(std::ostream& os,
                    const std::vector<benchmark::BenchmarkReporter::Run>&
                        runs) {
  using Run = benchmark::BenchmarkReporter::Run;
  JsonWriter w(os, 1);
  w.BeginObject();
  w.Key("benchmarks").BeginArray();
  for (const Run& run : runs) {
    w.BeginObject();
    w.Key("name").Value(run.benchmark_name());
    w.Key("run_type").Value(
        run.run_type == Run::RT_Aggregate ? "aggregate" : "iteration");
    if (run.run_type == Run::RT_Aggregate) {
      w.Key("aggregate_name").Value(run.aggregate_name);
    }
    w.Key("iterations").Value(static_cast<int64_t>(run.iterations));
    w.Key("real_time").Value(run.GetAdjustedRealTime());
    w.Key("cpu_time").Value(run.GetAdjustedCPUTime());
    w.Key("time_unit").Value(benchmark::GetTimeUnitString(run.time_unit));
    if (!run.report_label.empty()) w.Key("label").Value(run.report_label);
    for (const auto& [name, counter] : run.counters) {
      w.Key(name).Value(static_cast<double>(counter));
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --bench-json=FILE before google-benchmark sees the arguments.
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    constexpr std::string_view kPrefix = "--bench-json=";
    const std::string_view arg = argv[i];
    if (arg.substr(0, kPrefix.size()) == kPrefix) {
      json_path = std::string(arg.substr(kPrefix.size()));
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    WriteBenchJson(out, reporter.runs());
  }
  benchmark::Shutdown();
  return 0;
}
