file(REMOVE_RECURSE
  "CMakeFiles/gum_ml_tests.dir/dataset_test.cc.o"
  "CMakeFiles/gum_ml_tests.dir/dataset_test.cc.o.d"
  "CMakeFiles/gum_ml_tests.dir/features_test.cc.o"
  "CMakeFiles/gum_ml_tests.dir/features_test.cc.o.d"
  "CMakeFiles/gum_ml_tests.dir/models_test.cc.o"
  "CMakeFiles/gum_ml_tests.dir/models_test.cc.o.d"
  "gum_ml_tests"
  "gum_ml_tests.pdb"
  "gum_ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gum_ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
