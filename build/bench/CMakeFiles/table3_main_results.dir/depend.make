# Empty dependencies file for table3_main_results.
# This may be replaced when dependencies are built.
