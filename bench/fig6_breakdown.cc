// Figure 6: GUM runtime breakdown (computation / communication /
// serialization / overhead) on the five large graphs, for 1/2/4/8 vGPUs,
// and the resulting strong-scaling speedups (Exp-2).
//
// As in the paper, "communication" includes starvation (waiting for the
// iteration straggler).

#include <iostream>
#include <map>
#include <vector>

#include "bench/datasets.h"
#include "bench/runner.h"
#include "common/table_printer.h"

using namespace gum;        // NOLINT(build/namespaces)
using namespace gum::bench; // NOLINT(build/namespaces)

int main() {
  std::cout << "=== Figure 6: GUM runtime breakdown on the five large "
               "graphs (simulated ms) ===\n\n";
  const std::vector<Algo> algos = {Algo::kBfs, Algo::kWcc, Algo::kPr,
                                   Algo::kSssp};
  const std::vector<int> device_counts = {1, 2, 4, 8};

  TablePrinter tp({"Graph", "Alg.", "GPUs", "compute", "comm(+starv)",
                   "serial", "overhead", "total", "speedup"});
  std::map<std::string, std::map<Algo, double>> single_gpu_ms;

  for (const std::string& abbr : LargeDatasetAbbrs()) {
    const DatasetGraphs data = BuildDataset(abbr);
    for (Algo algo : algos) {
      for (int n : device_counts) {
        RunConfig config;
        config.system = System::kGum;
        config.algo = algo;
        config.devices = n;
        const core::RunResult r = RunBenchmark(data, config);
        if (n == 1) single_gpu_ms[abbr][algo] = r.total_ms;
        const double speedup = single_gpu_ms[abbr][algo] / r.total_ms;
        tp.AddRow({abbr, AlgoName(algo), std::to_string(n),
                   TablePrinter::Num(r.ComputeMs(), 1),
                   TablePrinter::Num(r.CommunicationMs() + r.StarvationMs(),
                                     1),
                   TablePrinter::Num(r.SerializationMs(), 1),
                   TablePrinter::Num(r.OverheadMs(), 1),
                   TablePrinter::Num(r.total_ms, 1),
                   TablePrinter::Num(speedup, 2) + "x"});
      }
      std::cerr << "done " << abbr << " " << AlgoName(algo) << "\n";
    }
  }
  tp.Print(std::cout);

  std::cout << "\nShape check vs paper Fig. 6: GUM reaches up to ~6.5x "
               "(BFS), ~5.3x (SSSP), ~7.5x (PR) at 8 GPUs on the large "
               "graphs; scalability is bound by computation, and the "
               "overhead slice stays small.\n";
  return 0;
}
