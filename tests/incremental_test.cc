// Incremental-recompute tests (DESIGN.md §14). The load-bearing contract:
// after every mutation epoch, the incremental session's values byte-equal
// a full recompute on the mutated graph — across batch sizes, host thread
// counts, shard counts, and expand backends. Plus the planner's soundness
// decisions (skip / warm incremental / checkpoint fallback) and the
// mutations x fault-plane compose.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algos/apps.h"
#include "algos/incremental.h"
#include "core/engine.h"
#include "core/epoch_context.h"
#include "fault/fault_plane.h"
#include "graph/mutation.h"
#include "tests/test_util.h"

namespace gum::algos {
namespace {

using graph::CsrGraph;
using graph::Edge;
using graph::EdgeList;
using graph::MutationPlan;
using graph::MutationStream;
using graph::VertexId;

CsrGraph MakeGraph(VertexId n, std::vector<Edge> edges,
                   bool symmetrize = false) {
  EdgeList list;
  list.num_vertices = n;
  list.edges = std::move(edges);
  graph::CsrBuildOptions opt;
  opt.symmetrize = symmetrize;
  auto g = CsrGraph::FromEdgeList(list, opt);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

// Runs `app` through the mutation stream twice per epoch — once through
// the incremental session, once as a from-scratch engine run on the same
// epoch context — and asserts byte equality after every epoch.
template <typename App>
void ExpectIncrementalEqualsFull(const CsrGraph& base, bool symmetric,
                                 const std::string& spec, uint64_t seed,
                                 App app, core::EngineOptions options,
                                 int devices = 4, int compact_every = 2) {
  auto plan = MutationPlan::Parse(spec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto stream = MutationStream::Create(*plan, base, seed);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  core::EpochedGraphContext ectx(base, test::MakePartition(base, devices),
                                 test::Topo(devices), options, symmetric);
  IncrementalSession<App> session;
  session.RunInitial(ectx.ctx(), app);

  for (int e = 1; e <= stream->num_epochs(); ++e) {
    const auto adv = ectx.AdvanceEpoch(stream->BatchAt(e), compact_every);
    session.RunEpoch(ectx.ctx(), adv.effective);

    App fresh = app;
    core::GumEngine<App> engine(&ectx.ctx());
    std::vector<typename App::Value> full;
    engine.Run(fresh, &full);

    ASSERT_EQ(session.values().size(), full.size());
    for (size_t v = 0; v < full.size(); ++v) {
      ASSERT_EQ(session.values()[v], full[v])
          << "epoch " << e << " vertex " << v << " diverged (threads="
          << options.num_host_threads << ", shards="
          << options.num_msg_shards << ", expand="
          << core::ExpandBackendKindName(options.expand_backend) << ")";
    }
  }
}

core::EngineOptions Options(int threads, int shards,
                            core::ExpandBackendKind backend) {
  core::EngineOptions opt = test::TestEngineOptions();
  opt.num_host_threads = threads;
  opt.num_msg_shards = shards;
  opt.expand_backend = backend;
  return opt;
}

constexpr core::ExpandBackendKind kBackends[] = {
    core::ExpandBackendKind::kScatter, core::ExpandBackendKind::kSpmv,
    core::ExpandBackendKind::kAuto};

// --- the determinism matrix: every algorithm, geometry, and backend ---

TEST(IncrementalEqualsFullTest, BfsAcrossGeometryAndBackends) {
  const CsrGraph base = test::SocialGraph(8);
  BfsApp app;
  app.source = test::MaxDegreeSource(base);
  for (const int threads : {1, 2, 4, 8}) {
    for (const int shards : {1, 4}) {
      for (const auto backend : kBackends) {
        ExpectIncrementalEqualsFull(base, false, "rand:3x16", 21, app,
                                    Options(threads, shards, backend));
      }
    }
  }
}

TEST(IncrementalEqualsFullTest, SsspAcrossGeometryAndBackends) {
  const CsrGraph base = test::SocialGraph(8, 2, /*weighted=*/true);
  SsspApp app;
  app.source = test::MaxDegreeSource(base);
  for (const int threads : {1, 2, 4, 8}) {
    for (const int shards : {1, 4}) {
      for (const auto backend : kBackends) {
        ExpectIncrementalEqualsFull(base, false, "rand:3x16", 22, app,
                                    Options(threads, shards, backend));
      }
    }
  }
}

TEST(IncrementalEqualsFullTest, WccAcrossGeometryAndBackends) {
  const CsrGraph base = test::SocialGraphSym(8);
  WccApp app;
  for (const int threads : {1, 2, 4, 8}) {
    for (const int shards : {1, 4}) {
      for (const auto backend : kBackends) {
        ExpectIncrementalEqualsFull(base, /*symmetric=*/true, "rand:3x16", 23,
                                    app, Options(threads, shards, backend));
      }
    }
  }
}

TEST(IncrementalEqualsFullTest, PageRankAcrossGeometryAndBackends) {
  const CsrGraph base = test::SocialGraph(8);
  PageRankApp app;
  app.num_vertices = base.num_vertices();
  app.rounds = 10;
  for (const int threads : {1, 2, 4, 8}) {
    for (const int shards : {1, 4}) {
      for (const auto backend : kBackends) {
        ExpectIncrementalEqualsFull(base, false, "rand:3x16", 24, app,
                                    Options(threads, shards, backend));
      }
    }
  }
}

TEST(IncrementalEqualsFullTest, BatchSizeSweep) {
  // Batch size is the per-epoch event count; the contract holds from a
  // single event per epoch up to wide batches, insert-only and mixed.
  const CsrGraph base = test::SocialGraph(8);
  BfsApp app;
  app.source = test::MaxDegreeSource(base);
  for (const int per_epoch : {1, 4, 64, 256}) {
    for (const char* kind : {"rand", "rand-ins"}) {
      const std::string spec =
          std::string(kind) + ":2x" + std::to_string(per_epoch);
      ExpectIncrementalEqualsFull(
          base, false, spec, 31, app,
          Options(4, 4, core::ExpandBackendKind::kScatter));
    }
  }
}

// --- planner soundness decisions ---

template <typename App>
struct SessionHarness {
  core::EpochedGraphContext ectx;
  IncrementalSession<App> session;
  MutationStream stream;

  SessionHarness(const CsrGraph& base, bool symmetric, const std::string& spec,
                 App app, int devices = 2)
      : ectx(base, test::MakePartition(base, devices), test::Topo(devices),
             test::TestEngineOptions(), symmetric) {
    auto plan = MutationPlan::Parse(spec);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto s = MutationStream::Create(*plan, base, 1);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    stream = std::move(*s);
    session.RunInitial(ectx.ctx(), app);
  }

  typename IncrementalSession<App>::EpochRunStats Advance(
      int epoch, const core::EngineOptions* run_options = nullptr) {
    const auto adv = ectx.AdvanceEpoch(stream.BatchAt(epoch), 0);
    return session.RunEpoch(ectx.ctx(), adv.effective, run_options);
  }

  void ExpectMatchesFull(App app) {
    core::GumEngine<App> engine(&ectx.ctx());
    std::vector<typename App::Value> full;
    engine.Run(app, &full);
    EXPECT_EQ(session.values(), full);
  }
};

TEST(EpochPlanTest, NoopBatchSkipsTheRunEntirely) {
  // Deleting an absent edge is a noop; the effective set is empty and the
  // warm values are already the epoch's fixed point.
  const CsrGraph base = MakeGraph(6, {{0, 1}, {1, 2}});
  BfsApp app;
  app.source = 0;
  SessionHarness<BfsApp> h(base, false, "del:3-4@1", app);
  const auto stats = h.Advance(1);
  EXPECT_EQ(stats.kind, EpochPlanKind::kSkip);
  EXPECT_EQ(h.session.skips(), 1);
  EXPECT_EQ(h.session.fallbacks(), 0);
  h.ExpectMatchesFull(app);
}

TEST(EpochPlanTest, TightDeleteFallsBackToCheckpointReplay) {
  // 0 -> 1 -> 2 -> 3 chain: edge (1, 2) is tight support of warm[2]
  // (warm[1] + 1 == warm[2]), so deleting it breaks monotonicity.
  const CsrGraph base = MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}});
  BfsApp app;
  app.source = 0;
  SessionHarness<BfsApp> h(base, false, "del:1-2@1", app);
  const auto stats = h.Advance(1);
  EXPECT_EQ(stats.kind, EpochPlanKind::kFallback);
  EXPECT_EQ(h.session.fallbacks(), 1);
  EXPECT_GT(stats.restore_ms, 0.0);
  h.ExpectMatchesFull(app);
  // 2 and 3 lost their only path.
  EXPECT_EQ(h.session.values()[2], BfsApp::kUnreached);
  EXPECT_EQ(h.session.values()[3], BfsApp::kUnreached);
}

TEST(EpochPlanTest, SlackDeleteStaysIncremental) {
  // warm[2] == 1 via (0, 2); the deleted edge (1, 2) would relax to
  // warm[1] + 1 == 2 != 1, so it supports no shortest path.
  const CsrGraph base = MakeGraph(6, {{0, 1}, {0, 2}, {1, 2}});
  BfsApp app;
  app.source = 0;
  SessionHarness<BfsApp> h(base, false, "del:1-2@1", app);
  const auto stats = h.Advance(1);
  EXPECT_EQ(stats.kind, EpochPlanKind::kIncremental);
  EXPECT_EQ(stats.seed_count, 0u);
  EXPECT_EQ(h.session.fallbacks(), 0);
  h.ExpectMatchesFull(app);
}

TEST(EpochPlanTest, InsertFromUnreachedVertexSeedsNothing) {
  // (2, 3) hangs off an unreached component: no seed, yet the run is still
  // planned incremental (and trivially converges to the warm values).
  const CsrGraph base = MakeGraph(6, {{0, 1}});
  BfsApp app;
  app.source = 0;
  SessionHarness<BfsApp> h(base, false, "ins:2-3@1", app);
  const auto stats = h.Advance(1);
  EXPECT_EQ(stats.kind, EpochPlanKind::kIncremental);
  EXPECT_EQ(stats.seed_count, 0u);
  h.ExpectMatchesFull(app);
  EXPECT_EQ(h.session.values()[3], BfsApp::kUnreached);
}

TEST(EpochPlanTest, InsertChainCascadesThroughOneEpoch) {
  // Both inserts land in one batch; only 1 is reached when the epoch is
  // planned, but activating it cascades through the new (2, 3) edge too.
  const CsrGraph base = MakeGraph(6, {{0, 1}});
  BfsApp app;
  app.source = 0;
  SessionHarness<BfsApp> h(base, false, "ins:1-2@1;ins:2-3@1", app);
  const auto stats = h.Advance(1);
  EXPECT_EQ(stats.kind, EpochPlanKind::kIncremental);
  EXPECT_EQ(stats.seed_count, 1u);
  h.ExpectMatchesFull(app);
  EXPECT_EQ(h.session.values()[2], 2u);
  EXPECT_EQ(h.session.values()[3], 3u);
}

TEST(EpochPlanTest, SsspTightnessUsesEdgeWeights) {
  // (0, 1, w=5) is tight for warm[1] = 5. A slack parallel route via 2
  // keeps the delete of (2, 1) incremental; deleting (0, 1) falls back.
  const CsrGraph base =
      MakeGraph(4, {{0, 1, 5.0f}, {0, 2, 3.0f}, {2, 1, 4.0f}});
  SsspApp app;
  app.source = 0;
  {
    SessionHarness<SsspApp> h(base, false, "del:2-1@1", app);
    EXPECT_EQ(h.Advance(1).kind, EpochPlanKind::kIncremental);
    h.ExpectMatchesFull(app);
  }
  {
    SessionHarness<SsspApp> h(base, false, "del:0-1@1", app);
    EXPECT_EQ(h.Advance(1).kind, EpochPlanKind::kFallback);
    h.ExpectMatchesFull(app);
    EXPECT_FLOAT_EQ(h.session.values()[1], 7.0f);  // 0 -> 2 -> 1
  }
}

TEST(EpochPlanTest, WccInsertMergesComponentsIncrementally) {
  const CsrGraph base = MakeGraph(4, {{0, 1}, {2, 3}}, /*symmetrize=*/true);
  WccApp app;
  SessionHarness<WccApp> h(base, /*symmetric=*/true, "ins:1-2@1", app);
  const auto stats = h.Advance(1);
  EXPECT_EQ(stats.kind, EpochPlanKind::kIncremental);
  h.ExpectMatchesFull(app);
  EXPECT_EQ(h.session.values()[3], h.session.values()[0]);
}

TEST(EpochPlanTest, WccDeleteFallsBack) {
  const CsrGraph base = MakeGraph(4, {{0, 1}, {1, 2}}, /*symmetrize=*/true);
  WccApp app;
  SessionHarness<WccApp> h(base, /*symmetric=*/true, "del:1-2@1", app);
  EXPECT_EQ(h.Advance(1).kind, EpochPlanKind::kFallback);
  h.ExpectMatchesFull(app);
  // The split leaves 2 in its own component.
  EXPECT_NE(h.session.values()[2], h.session.values()[0]);
}

TEST(EpochPlanTest, PageRankFallsBackOnAnyEffectiveEvent) {
  const CsrGraph base = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}});
  PageRankApp app;
  app.num_vertices = base.num_vertices();
  app.rounds = 5;
  SessionHarness<PageRankApp> h(base, false, "ins:2-3@1", app);
  EXPECT_EQ(h.Advance(1).kind, EpochPlanKind::kFallback);
  EXPECT_EQ(h.session.fallbacks(), 1);
  h.ExpectMatchesFull(app);
}

// --- mutations x fault plane compose ---

TEST(MutationFaultComposeTest, FailStopMidEpochRecoversToMutatedResult) {
  // A device fail-stop inside an epoch's (fallback) replay must still land
  // on the mutated graph's exact result: recovery restores the last
  // checkpoint, migrates the lost fragment, and replays forward.
  const CsrGraph base = test::SocialGraph(8);
  BfsApp app;
  app.source = test::MaxDegreeSource(base);
  SessionHarness<BfsApp> h(base, false, "rand:2x32", app, /*devices=*/4);

  auto plan = fault::FaultPlan::Parse("failstop:1@2");
  ASSERT_TRUE(plan.ok());
  auto plane = fault::FaultPlane::Create(*plan, 4, /*seed=*/1);
  ASSERT_TRUE(plane.ok());
  core::EngineOptions faulted = test::TestEngineOptions();
  faulted.fault_plane = &*plane;
  faulted.checkpoint.every = 1;

  for (int e = 1; e <= h.stream.num_epochs(); ++e) {
    const auto stats = h.Advance(e, &faulted);
    // Fallback replays run long enough to hit the scheduled fail-stop;
    // short incremental epochs may converge before it fires.
    if (stats.kind == EpochPlanKind::kFallback) {
      EXPECT_GT(stats.result.recovery_events, 0) << "epoch " << e;
    }
    h.ExpectMatchesFull(app);
  }
}

}  // namespace
}  // namespace gum::algos
