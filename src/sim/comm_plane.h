// Link-level interconnect plane (paper §IV-A Eq. 1, Fig. 2 opportunity (2)).
//
// A CommPlane wraps a Topology and owns EVERY bytes -> time conversion in
// the system: engines describe transfers ({src, dst, bytes, tag}) and the
// plane decides the path (direct lane / 2-hop transit / PCIe fallback),
// how concurrent transfers share each directed lane, and what each device
// is charged. Nothing outside src/sim/ may touch Topology bandwidths
// directly — that invariant is what makes the residual-bandwidth stealing
// story of the paper honest at the link level.
//
// Two contention models, selected per engine run:
//   ContentionModel::kOff   — the legacy point-to-point model: every
//       transfer sees the full EffectiveBandwidth of its path,
//       independently of every other transfer. Bit-compatible with the
//       pre-CommPlane engines (same arithmetic, same accumulation order).
//   ContentionModel::kFair  — max-min fair sharing: a batch of transfers
//       is settled by progressive filling; each directed lane time-slices
//       its bandwidth across the transfers occupying it, a routed transfer
//       occupies (and is charged on) BOTH hops, and per-transfer
//       completion times fall out of the event simulation. Deterministic:
//       rates are the unique max-min allocation, ties break on lane id /
//       enqueue index, and completion times are independent of enqueue
//       order.
//
// The plane also accumulates per-directed-link telemetry (payload bytes,
// per-hop traffic bytes, lane busy time) that the engines export into
// RunResult, and renders a lane-utilization table (RenderAscii) alongside
// Timeline::RenderAscii.

#ifndef GUM_SIM_COMM_PLANE_H_
#define GUM_SIM_COMM_PLANE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sim/topology.h"
#include "sim/transfer_plan.h"

namespace gum::sim {

enum class ContentionModel {
  kOff,   // legacy uncontended point-to-point (bit-compatible with seed)
  kFair,  // max-min fair lane sharing with transit double-charging
};

const char* ContentionModelName(ContentionModel model);
Result<ContentionModel> ParseContentionModel(const std::string& name);

// How the plane picks paths. GUM routes over the best path the topology
// offers; the Gunrock-like baseline is deliberately topology-oblivious
// (direct link or PCIe, never a transit GPU — paper §VI).
enum class RoutePolicy {
  kBestPath,
  kDirectOnly,
};

// The explicit path chosen for a (src, dst) pair.
struct CommRoute {
  int src = 0;
  int dst = 0;
  int transit = -1;      // >= 0: 2-hop route via this device
  bool via_pcie = false; // no usable NVLink path; PCIe/QPI fallback
  // Bandwidth of the whole path under the legacy point-to-point model
  // (what EffectiveBandwidth reported for kBestPath).
  double point_to_point_gbps = 0.0;
};

// One enqueued transfer. `tag` is the charging bucket — engines use the
// initiating device id, and Settle() folds per-transfer times into a
// per-tag communication charge. `bulk` marks the transfer plan-eligible:
// under `fair` with multipath enabled it may be striped across the
// link-disjoint paths of a TransferPlan (sim/transfer_plan.h); everywhere
// else the hint is ignored and the transfer settles single-path.
struct Transfer {
  int src = 0;
  int dst = 0;
  double bytes = 0.0;
  int tag = 0;
  bool bulk = false;
};

// A per-iteration batch of transfers that are in flight together.
class TransferBatch {
 public:
  void Add(int src, int dst, double bytes, int tag) {
    transfers_.push_back(Transfer{src, dst, bytes, tag});
  }
  // A plan-eligible bulk payload (FSteal fragments, ownership migrations).
  void AddBulk(int src, int dst, double bytes, int tag) {
    transfers_.push_back(Transfer{src, dst, bytes, tag, /*bulk=*/true});
  }
  size_t size() const { return transfers_.size(); }
  bool empty() const { return transfers_.empty(); }
  void clear() { transfers_.clear(); }

 private:
  friend class CommPlane;
  std::vector<Transfer> transfers_;
};

struct SettleResult {
  // Completion time of each transfer (ns after the batch epoch), in
  // enqueue order. Under kOff this is the transfer's solo duration.
  std::vector<double> completion_ns;
  // Communication charge per tag: under kOff the sum of the tag's
  // transfer durations in enqueue order (the legacy accumulator, bit for
  // bit); under kFair the makespan of the tag's transfers (they overlap).
  std::vector<double> tag_comm_ns;
};

class CommPlane {
 public:
  CommPlane() = default;
  explicit CommPlane(Topology topology,
                     ContentionModel model = ContentionModel::kOff,
                     RoutePolicy policy = RoutePolicy::kBestPath);

  int num_devices() const { return topo_.num_devices(); }
  const Topology& topology() const { return topo_; }
  ContentionModel model() const { return model_; }
  RoutePolicy policy() const { return policy_; }

  // The explicit path this plane uses for (src, dst).
  CommRoute Route(int src, int dst) const;

  // --- multi-path transfer plans (sim/transfer_plan.h) ---
  // Enables striping of bulk-hinted transfers across link-disjoint paths
  // under the fair model. Off by default; kOff contention and non-bulk
  // transfers are never affected, so disabled runs stay byte-identical.
  void set_multipath(bool on) { multipath_ = on; }
  bool multipath() const { return multipath_; }
  // The plan this plane would stripe a bulk (src, dst) payload across,
  // over the fault-scaled direct matrix: a downed link is not offered as
  // a path and a degraded link receives a proportionally smaller stripe.
  TransferPlan PlanBulkTransfer(int src, int dst, double bytes) const;
  // Uncontended duration of `bytes` striped under PlanBulkTransfer —
  // the multi-path analogue of PointToPointNs, used by recovery migration
  // when multipath is enabled.
  double StripedTransferNs(int src, int dst, double bytes) const;
  // Topology-aware census/aggregation tree over the active devices,
  // built over the fault-scaled direct matrix (link faults reshape it).
  ReductionTree BuildCensusTree(const std::vector<int>& active) const;
  // Multi-path checkpoint write-back bandwidth for `device` (GB/s): its
  // own host PCIe link plus a relay through its fastest (fault-scaled)
  // NVLink peer forwarding over that peer's PCIe lane at transit
  // efficiency. Without multipath the write-back is plain kPcieGBps.
  double CheckpointWritebackGbps(int device) const;
  // Striping telemetry accumulated across bulk settles.
  const MultipathStats& multipath_stats() const { return multipath_stats_; }

  // --- prediction API (no telemetry, no contention) ---
  // Static uncontended estimates over the legacy path bandwidth. These are
  // the only sanctioned bytes -> time conversions for *predictions*: the
  // FSteal/OSteal cost coefficients and migration estimates use them in
  // both contention modes, so plan quality never depends on the model knob.
  double PathBandwidth(int src, int dst) const { return LegacyGbps(src, dst); }
  double PointToPointNs(int src, int dst, double bytes) const {
    return bytes / LegacyGbps(src, dst);
  }
  // Mean path bandwidth from `src` to every device (self included) — the
  // DO-BFS pull-phase estimate of scattered status probes.
  double MeanPathNs(int src, double bytes) const;
  // Flat single-NVLink-lane estimate for models that assume a nominal lane.
  static double NominalLaneNs(double bytes) {
    return bytes / Topology::kNvlinkLaneGBps;
  }
  double AggregateBandwidth(const std::vector<int>& active) const {
    return topo_.AggregateBandwidth(active);
  }

  // --- batch API (the engines' per-iteration transfers) ---
  // Settles every transfer of the batch against the contention model,
  // records link/payload/busy telemetry, and returns per-transfer
  // completion times plus the per-tag charge.
  SettleResult Settle(const TransferBatch& batch);

  // --- single-lane API (the event-driven Groute ring) ---
  // Duration of `bytes` over the single directed lane src -> dst (its
  // direct link, or PCIe if none; the local HBM lane when src == dst).
  // Pure conversion; no reservation, no telemetry.
  double LaneMs(int src, int dst, double bytes) const {
    return bytes / LaneGbps(src, dst) / 1e6;
  }
  // Reserves the lane for one transfer starting no earlier than ready_ms
  // and records telemetry. Returns the start time: ready_ms under kOff
  // (lanes are infinitely shareable, legacy), max(ready_ms, lane free)
  // under kFair (a store-and-forward hop waits for the lane to drain).
  double ReserveLane(int src, int dst, double ready_ms, double bytes);
  // Accounts bytes and occupancy on a lane without FIFO queueing — for
  // pipelined forwarding hops whose latency the caller models itself.
  // Telemetry-identical to ReserveLane; never delays.
  void RecordLinkTraffic(int src, int dst, double bytes);
  // Records the logical payload of a multi-hop send (once per transfer,
  // where ReserveLane/RecordLinkTraffic record per-hop traffic).
  void RecordPayload(int src, int dst, double bytes);

  // --- fault overlay (fault/fault_plane.h; applied by the engine) ---
  // Scales the direct link pair (a, b) to `scale` of its nominal bandwidth
  // for all subsequent conversions; 0 removes the link. Routing is
  // recomputed over the degraded matrix, so transfers fall back to the
  // next-best 2-hop transit or the PCIe path and every prediction and
  // charge sees the detour honestly. The local HBM lane and the PCIe pool
  // are never faulted. Scales compose per call (multiplicative).
  void SetLinkScale(int a, int b, double scale);
  // Restores every link to nominal. A plane whose faults are cleared (or
  // that never had any) is bit-identical to one without the overlay.
  void ClearLinkFaults();
  bool HasLinkFaults() const { return faults_active_; }

  // --- telemetry snapshot (fault/checkpoint.h) ---
  // Accumulated telemetry as a value, so a rolled-back run restores the
  // exact counters it had at the checkpoint barrier and re-accumulates.
  struct Telemetry {
    std::vector<std::vector<double>> link_bytes;
    std::vector<std::vector<double>> payload_bytes;
    std::vector<std::vector<double>> link_busy_ms;
    std::vector<double> lane_busy_until_ms;
    MultipathStats multipath;
  };
  Telemetry SnapshotTelemetry() const;
  void RestoreTelemetry(const Telemetry& telemetry);

  // --- telemetry (accumulated across Settle/ReserveLane calls) ---
  // Per-hop traffic: bytes that crossed the directed lane i -> j. A routed
  // transfer appears on both of its hops. [i][i] is local memory traffic.
  const std::vector<std::vector<double>>& link_bytes() const {
    return link_bytes_;
  }
  // Logical payload: bytes of transfers whose endpoints were (i, j),
  // counted once regardless of routing.
  const std::vector<std::vector<double>>& payload_bytes() const {
    return payload_bytes_;
  }
  // Time each directed lane spent occupied by at least one transfer.
  const std::vector<std::vector<double>>& link_busy_ms() const {
    return link_busy_ms_;
  }

  // Lane-utilization table over the accumulated telemetry. total_ms <= 0
  // uses the busiest lane as the utilization denominator.
  std::string RenderAscii(double total_ms = 0.0) const;
  // Same table over exported matrices (e.g. RunResult::link_bytes /
  // link_busy_ms) for callers that no longer hold the plane.
  static std::string RenderAsciiTable(
      const std::vector<std::vector<double>>& link_bytes,
      const std::vector<std::vector<double>>& link_busy_ms, double total_ms);

 private:
  // Raw capacity of the directed lane src -> dst: its direct link if one
  // exists, the PCIe fallback otherwise; local HBM on the diagonal.
  double LaneGbps(int src, int dst) const;
  // Legacy point-to-point bandwidth under this plane's route policy.
  double LegacyGbps(int src, int dst) const;
  // Direct bandwidth with the fault overlay applied (nominal when none).
  double ScaledDirect(int src, int dst) const;
  // Re-derives effective bandwidth / best transit over the degraded direct
  // matrix — the same routing rule as Topology::FinalizeRouting.
  void RecomputeFaultRouting();

  void SettleOff(const std::vector<Transfer>& transfers, SettleResult* out);
  void SettleFair(const std::vector<Transfer>& transfers, SettleResult* out);

  Topology topo_;
  ContentionModel model_ = ContentionModel::kOff;
  RoutePolicy policy_ = RoutePolicy::kBestPath;
  bool multipath_ = false;
  MultipathStats multipath_stats_;

  // Fault overlay: per directed pair scale (1 = nominal) plus the routing
  // tables recomputed over the scaled matrix. Inactive (and unallocated)
  // until the first SetLinkScale, so a fault-free run never consults it.
  bool faults_active_ = false;
  std::vector<double> link_scale_;
  std::vector<double> faulted_effective_;
  std::vector<int> faulted_transit_;

  std::vector<std::vector<double>> link_bytes_;
  std::vector<std::vector<double>> payload_bytes_;
  std::vector<std::vector<double>> link_busy_ms_;
  // ReserveLane bookkeeping: when each directed lane next frees up.
  std::vector<double> lane_busy_until_ms_;
};

}  // namespace gum::sim

#endif  // GUM_SIM_COMM_PLANE_H_
