#include "ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"
#include "graph/frontier_features.h"
#include "graph/generators.h"
#include "sim/device.h"
#include "sim/kernel_cost.h"

namespace gum::ml {

std::pair<Dataset, Dataset> Dataset::Split(double fraction,
                                           uint64_t seed) const {
  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), size_t{0});
  Rng rng(seed);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  const size_t cut = static_cast<size_t>(fraction * samples.size());
  Dataset first, second;
  for (size_t k = 0; k < order.size(); ++k) {
    (k < cut ? first : second).samples.push_back(samples[order[k]]);
  }
  return {std::move(first), std::move(second)};
}

namespace {

using graph::CsrGraph;
using graph::VertexId;

// Draws a frontier of `size` vertices using one of four selection modes so
// the dataset covers the frontier shapes real algorithms produce.
std::vector<VertexId> SampleFrontier(const CsrGraph& g, size_t size, int mode,
                                     Rng& rng) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> frontier;
  frontier.reserve(size);
  switch (mode % 4) {
    case 0:  // uniform random (mid-phase traversal)
      for (size_t k = 0; k < size; ++k) {
        frontier.push_back(static_cast<VertexId>(rng.NextBounded(n)));
      }
      break;
    case 1: {  // hub-biased (the frontiers that trigger the DLB problem)
      for (size_t k = 0; k < size * 4 && frontier.size() < size; ++k) {
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
        if (g.OutDegree(v) >= 4 || rng.NextBernoulli(0.2)) {
          frontier.push_back(v);
        }
      }
      break;
    }
    case 2: {  // id-contiguous (cocooning: early BFS under seg partitions)
      const VertexId start = static_cast<VertexId>(rng.NextBounded(n));
      for (size_t k = 0; k < size; ++k) {
        frontier.push_back(static_cast<VertexId>((start + k) % n));
      }
      break;
    }
    default: {  // neighborhood ball (wavefront shape)
      VertexId seed_v = static_cast<VertexId>(rng.NextBounded(n));
      frontier.push_back(seed_v);
      size_t cursor = 0;
      while (frontier.size() < size && cursor < frontier.size()) {
        for (VertexId nb : g.OutNeighbors(frontier[cursor])) {
          if (frontier.size() >= size) break;
          frontier.push_back(nb);
        }
        ++cursor;
      }
      break;
    }
  }
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());
  if (frontier.empty()) frontier.push_back(0);
  return frontier;
}

}  // namespace

Dataset GenerateCostDataset(const std::vector<const graph::CsrGraph*>& corpus,
                            const CostDatasetOptions& options) {
  Dataset data;
  Rng rng(options.seed);
  const sim::DeviceParams& device = options.device;
  for (const graph::CsrGraph* g : corpus) {
    if (g->num_vertices() == 0) continue;
    for (int k = 0; k < options.frontiers_per_graph; ++k) {
      // Frontier sizes log-uniform between 1 and |V|/2.
      const double log_max =
          std::log(std::max<double>(2.0, g->num_vertices() / 2.0));
      const size_t size = static_cast<size_t>(
          std::exp(rng.NextUniform(0.0, log_max)));
      const auto frontier = SampleFrontier(*g, std::max<size_t>(1, size),
                                           k, rng);
      const auto features = graph::ExtractFrontierFeatures(*g, frontier);
      const double true_cost = sim::TrueEdgeCostNs(features, device);
      const double noise =
          std::exp(options.noise_stddev * rng.NextGaussian());
      Sample sample;
      const auto arr = features.ToArray();
      sample.features.assign(arr.begin(), arr.end());
      sample.target = true_cost * noise;
      data.samples.push_back(std::move(sample));
    }
  }
  return data;
}

Dataset GenerateDefaultCostDataset(const CostDatasetOptions& options) {
  using namespace graph;  // NOLINT(build/namespaces)
  std::vector<CsrGraph> graphs;
  auto add = [&](EdgeList list) {
    auto g = CsrGraph::FromEdgeList(list);
    if (g.ok()) graphs.push_back(std::move(g).value());
  };
  RmatOptions social;
  social.scale = 12;
  social.edge_factor = 12;
  social.seed = 11;
  add(Rmat(social));

  RmatOptions web;
  web.scale = 12;
  web.edge_factor = 10;
  web.a = 0.45;
  web.b = 0.25;
  web.c = 0.15;
  web.permute_vertices = false;
  web.seed = 12;
  add(Rmat(web));

  RoadGridOptions road;
  road.rows = 72;
  road.cols = 72;
  road.seed = 13;
  add(RoadGrid(road));

  add(ErdosRenyi(4096, 40000, false, 14));
  add(SmallWorld(4096, 4, 0.1, 15));

  std::vector<const CsrGraph*> corpus;
  for (const auto& g : graphs) corpus.push_back(&g);
  return GenerateCostDataset(corpus, options);
}

}  // namespace gum::ml
