// Fragments: the per-device view of a partitioned graph (paper §V-A).
//
// Under an edge-cut partition every vertex ("inner" vertex) lives on exactly
// one fragment together with all its out-edges; destinations of
// cross-fragment edges are additionally kept as "outer" (ghost) vertices so
// that outgoing messages can be aggregated device-side before transfer
// (the paper's message-aggregation optimization).
//
// The whole-graph CSR is shared (the paper assumes the aggregated device
// memory holds the graph, and peers access remote adjacency over NVLink);
// a Fragment records ownership and the locality structure, which is what the
// cost model and the stealing policies consume.

#ifndef GUM_GRAPH_FRAGMENT_H_
#define GUM_GRAPH_FRAGMENT_H_

#include <vector>

#include "graph/csr.h"
#include "graph/partition.h"

namespace gum::graph {

struct Fragment {
  int part_id = 0;
  std::vector<VertexId> inner_vertices;  // sorted ascending
  std::vector<VertexId> outer_vertices;  // sorted ascending, disjoint w/inner
  EdgeId num_inner_out_edges = 0;        // out-edges of inner vertices
  EdgeId num_cross_edges = 0;            // inner->remote-owner edges
};

// Builds one Fragment per part. O(V + E).
std::vector<Fragment> BuildFragments(const CsrGraph& g, const Partition& p);

}  // namespace gum::graph

#endif  // GUM_GRAPH_FRAGMENT_H_
