// CommPlane: routing, the two contention models, telemetry semantics, and
// the engine-level contract that the `contention` knob changes only time
// and telemetry — never results.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algos/apps.h"
#include "baselines/groute_like.h"
#include "baselines/gunrock_like.h"
#include "core/engine.h"
#include "sim/comm_plane.h"
#include "sim/topology.h"
#include "tests/test_util.h"

namespace gum::sim {
namespace {

using algos::BfsApp;
using algos::DeltaPageRankApp;
using algos::SsspApp;
using test::MakePartition;
using test::MaxDegreeSource;
using test::SocialGraph;
using test::TestEngineOptions;
using test::Topo;

Topology Line3() {
  // 0 -- 1 -- 2 at 50 GB/s; no direct 0 -- 2 link, so (0, 2) routes via 1
  // (2-hop at kTransitEfficiency * 50 = 25 GB/s, better than PCIe's 10).
  auto t = Topology::FromMatrix(
      {{0.0, 50.0, 0.0}, {50.0, 0.0, 50.0}, {0.0, 50.0, 0.0}});
  EXPECT_TRUE(t.ok());
  return *t;
}

Topology Isolated2() {
  // No NVLink at all: every pair falls back to PCIe.
  auto t = Topology::FromMatrix({{0.0, 0.0}, {0.0, 0.0}});
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(CommPlaneTest, ParseContentionModel) {
  auto off = ParseContentionModel("off");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*off, ContentionModel::kOff);
  auto fair = ParseContentionModel("fair");
  ASSERT_TRUE(fair.ok());
  EXPECT_EQ(*fair, ContentionModel::kFair);
  EXPECT_FALSE(ParseContentionModel("tcp").ok());
  EXPECT_STREQ(ContentionModelName(ContentionModel::kOff), "off");
  EXPECT_STREQ(ContentionModelName(ContentionModel::kFair), "fair");
}

TEST(CommPlaneTest, RoutePicksTransitAndPcie) {
  const CommPlane plane(Line3());
  const CommRoute direct = plane.Route(0, 1);
  EXPECT_EQ(direct.transit, -1);
  EXPECT_FALSE(direct.via_pcie);
  EXPECT_DOUBLE_EQ(direct.point_to_point_gbps, 50.0);

  const CommRoute routed = plane.Route(0, 2);
  EXPECT_EQ(routed.transit, 1);
  EXPECT_DOUBLE_EQ(routed.point_to_point_gbps,
                   50.0 * Topology::kTransitEfficiency);

  const CommPlane pcie(Isolated2());
  const CommRoute fallback = pcie.Route(0, 1);
  EXPECT_EQ(fallback.transit, -1);
  EXPECT_TRUE(fallback.via_pcie);
  EXPECT_DOUBLE_EQ(fallback.point_to_point_gbps, Topology::kPcieGBps);
}

TEST(CommPlaneTest, DirectOnlyPolicyNeverRoutes) {
  const CommPlane plane(Line3(), ContentionModel::kOff,
                        RoutePolicy::kDirectOnly);
  const CommRoute r = plane.Route(0, 2);
  EXPECT_EQ(r.transit, -1);
  EXPECT_TRUE(r.via_pcie);
  EXPECT_DOUBLE_EQ(r.point_to_point_gbps, Topology::kPcieGBps);
  EXPECT_DOUBLE_EQ(plane.PointToPointNs(0, 2, 100.0),
                   100.0 / Topology::kPcieGBps);
}

TEST(CommPlaneTest, OffModeMatchesEffectiveBandwidth) {
  const auto topo = Topology::HybridCubeMesh8();
  CommPlane plane(topo);  // kOff
  TransferBatch batch;
  batch.Add(0, 1, 1e6, 0);
  batch.Add(0, 5, 2e6, 0);
  batch.Add(3, 2, 5e5, 3);
  const SettleResult settled = plane.Settle(batch);
  ASSERT_EQ(settled.completion_ns.size(), 3u);
  // Solo duration at the legacy path bandwidth, bit for bit.
  EXPECT_DOUBLE_EQ(settled.completion_ns[0],
                   1e6 / topo.EffectiveBandwidth(0, 1));
  EXPECT_DOUBLE_EQ(settled.completion_ns[1],
                   2e6 / topo.EffectiveBandwidth(0, 5));
  EXPECT_DOUBLE_EQ(settled.completion_ns[2],
                   5e5 / topo.EffectiveBandwidth(3, 2));
  // Tag charge is the legacy accumulator: enqueue-order sum per tag.
  EXPECT_DOUBLE_EQ(settled.tag_comm_ns[0],
                   1e6 / topo.EffectiveBandwidth(0, 1) +
                       2e6 / topo.EffectiveBandwidth(0, 5));
  EXPECT_DOUBLE_EQ(settled.tag_comm_ns[3],
                   5e5 / topo.EffectiveBandwidth(3, 2));
  // Off-mode telemetry records endpoints: link bytes == payload bytes.
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][1], 1e6);
  EXPECT_DOUBLE_EQ(plane.payload_bytes()[0][1], 1e6);
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][5], 2e6);
}

TEST(CommPlaneTest, FairSharesASingleLane) {
  const auto topo = Topology::FullyConnected(2, 50.0);
  // Solo: the full 50 GB/s lane.
  {
    CommPlane plane(topo, ContentionModel::kFair);
    TransferBatch batch;
    batch.Add(0, 1, 1e6, 0);
    const SettleResult s = plane.Settle(batch);
    EXPECT_DOUBLE_EQ(s.completion_ns[0], 1e6 / 50.0);
  }
  // Two transfers on the same directed lane: each gets half the bandwidth,
  // both finish at twice the solo time.
  CommPlane plane(topo, ContentionModel::kFair);
  TransferBatch batch;
  batch.Add(0, 1, 1e6, 0);
  batch.Add(0, 1, 1e6, 1);
  const SettleResult s = plane.Settle(batch);
  EXPECT_DOUBLE_EQ(s.completion_ns[0], 1e6 / 25.0);
  EXPECT_DOUBLE_EQ(s.completion_ns[1], 1e6 / 25.0);
  // Fair tag charge is the makespan of the tag's transfers.
  EXPECT_DOUBLE_EQ(s.tag_comm_ns[0], 1e6 / 25.0);
  EXPECT_DOUBLE_EQ(s.tag_comm_ns[1], 1e6 / 25.0);
  // The lane was busy for the whole batch; bytes sum over both users.
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][1], 2e6);
  EXPECT_DOUBLE_EQ(plane.link_busy_ms()[0][1], (1e6 / 25.0) / 1e6);
}

TEST(CommPlaneTest, FairDisjointLanesAreIndependent) {
  const auto topo = Topology::FullyConnected(2, 50.0);
  CommPlane plane(topo, ContentionModel::kFair);
  TransferBatch batch;
  batch.Add(0, 1, 1e6, 0);
  batch.Add(1, 0, 4e6, 1);  // the opposite directed lane: no sharing
  const SettleResult s = plane.Settle(batch);
  EXPECT_DOUBLE_EQ(s.completion_ns[0], 1e6 / 50.0);
  EXPECT_DOUBLE_EQ(s.completion_ns[1], 4e6 / 50.0);
}

TEST(CommPlaneTest, FairTransitChargesBothHops) {
  CommPlane plane(Line3(), ContentionModel::kFair);
  TransferBatch batch;
  batch.Add(0, 2, 1e6, 0);  // routed via device 1
  batch.Add(0, 1, 1e6, 1);  // competes on the first hop
  const SettleResult s = plane.Settle(batch);
  // Both transfers share lane 0 -> 1 (25 GB/s each); the routed one holds
  // lane 1 -> 2 as well but that lane is uncontended.
  EXPECT_DOUBLE_EQ(s.completion_ns[0], 1e6 / 25.0);
  EXPECT_DOUBLE_EQ(s.completion_ns[1], 1e6 / 25.0);
  // Traffic telemetry charges the routed transfer on BOTH hops...
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][1], 2e6);
  EXPECT_DOUBLE_EQ(plane.link_bytes()[1][2], 1e6);
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][2], 0.0);
  // ...while payload telemetry counts endpoints exactly once.
  EXPECT_DOUBLE_EQ(plane.payload_bytes()[0][2], 1e6);
  EXPECT_DOUBLE_EQ(plane.payload_bytes()[0][1], 1e6);
  EXPECT_DOUBLE_EQ(plane.payload_bytes()[1][2], 0.0);
}

TEST(CommPlaneTest, FairPcieFallbackSharesThePciePool) {
  CommPlane plane(Isolated2(), ContentionModel::kFair);
  TransferBatch batch;
  batch.Add(0, 1, 1e6, 0);
  batch.Add(0, 1, 1e6, 1);
  const SettleResult s = plane.Settle(batch);
  // Two transfers split the 10 GB/s PCIe path.
  EXPECT_DOUBLE_EQ(s.completion_ns[0], 1e6 / 5.0);
  EXPECT_DOUBLE_EQ(s.completion_ns[1], 1e6 / 5.0);
}

TEST(CommPlaneTest, FairCompletionsAreEnqueueOrderInvariant) {
  const auto topo = Topology::HybridCubeMesh8();
  TransferBatch forward;
  TransferBatch reversed;
  std::vector<Transfer> transfers;
  for (int i = 0; i < 24; ++i) {
    const int src = i % 8;
    const int dst = (src + 1 + (i * 5) % 7) % 8;
    transfers.push_back({src, dst, 1e5 * (1 + i % 13), src});
  }
  for (const Transfer& t : transfers) {
    forward.Add(t.src, t.dst, t.bytes, t.tag);
  }
  for (auto it = transfers.rbegin(); it != transfers.rend(); ++it) {
    reversed.Add(it->src, it->dst, it->bytes, it->tag);
  }
  CommPlane plane_f(topo, ContentionModel::kFair);
  CommPlane plane_r(topo, ContentionModel::kFair);
  const SettleResult sf = plane_f.Settle(forward);
  const SettleResult sr = plane_r.Settle(reversed);
  const size_t m = transfers.size();
  for (size_t i = 0; i < m; ++i) {
    EXPECT_DOUBLE_EQ(sf.completion_ns[i], sr.completion_ns[m - 1 - i]);
  }
  for (size_t tag = 0; tag < sf.tag_comm_ns.size(); ++tag) {
    EXPECT_DOUBLE_EQ(sf.tag_comm_ns[tag], sr.tag_comm_ns[tag]);
  }
  EXPECT_EQ(plane_f.link_bytes(), plane_r.link_bytes());
}

TEST(CommPlaneTest, FairConservesBytes) {
  // Total traffic absorbed by the lanes at their achieved rates equals the
  // enqueued per-hop bytes (the max-min allocation never loses work).
  const auto topo = Topology::HybridCubeMesh8();
  CommPlane plane(topo, ContentionModel::kFair);
  TransferBatch batch;
  double payload = 0.0;
  for (int i = 0; i < 16; ++i) {
    const int src = (i * 3) % 8;
    const int dst = (src + 2 + i % 5) % 8;
    if (src == dst) continue;
    batch.Add(src, dst, 7e4 * (1 + i), src);
    payload += 7e4 * (1 + i);
  }
  (void)plane.Settle(batch);
  double total_payload = 0.0;
  double total_traffic = 0.0;
  for (const auto& row : plane.payload_bytes()) {
    for (double v : row) total_payload += v;
  }
  for (const auto& row : plane.link_bytes()) {
    for (double v : row) total_traffic += v;
  }
  EXPECT_DOUBLE_EQ(total_payload, payload);
  // Per-hop traffic is at least the payload (transit doubles some of it).
  EXPECT_GE(total_traffic, payload);
}

TEST(CommPlaneTest, ReserveLaneQueuesOnlyUnderFair) {
  const auto topo = Topology::FullyConnected(2, 50.0);
  const double lane_ms = 1e6 / 50.0 / 1e6;
  {
    CommPlane plane(topo, ContentionModel::kOff);
    EXPECT_DOUBLE_EQ(plane.ReserveLane(0, 1, 0.0, 1e6), 0.0);
    // Legacy lanes are infinitely shareable: no queueing, ever.
    EXPECT_DOUBLE_EQ(plane.ReserveLane(0, 1, 0.0, 1e6), 0.0);
  }
  CommPlane plane(topo, ContentionModel::kFair);
  EXPECT_DOUBLE_EQ(plane.ReserveLane(0, 1, 0.0, 1e6), 0.0);
  // The lane drains at lane_ms; a second transfer queues behind it.
  EXPECT_DOUBLE_EQ(plane.ReserveLane(0, 1, 0.0, 1e6), lane_ms);
  // A transfer already ready after the drain starts on time.
  EXPECT_DOUBLE_EQ(plane.ReserveLane(0, 1, 10.0, 1e6), 10.0);
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][1], 3e6);
}

TEST(CommPlaneTest, RecordLinkTrafficAccountsWithoutQueueing) {
  const auto topo = Topology::FullyConnected(2, 50.0);
  const double lane_ms = 1e6 / 50.0 / 1e6;
  CommPlane plane(topo, ContentionModel::kFair);
  plane.RecordLinkTraffic(0, 1, 1e6);
  // Telemetry matches a ReserveLane of the same bytes...
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][1], 1e6);
  EXPECT_DOUBLE_EQ(plane.link_busy_ms()[0][1], lane_ms);
  // ...but the lane FIFO is untouched: the next reservation starts on time.
  EXPECT_DOUBLE_EQ(plane.ReserveLane(0, 1, 0.0, 1e6), 0.0);
  // Payload matrix is the caller's job, as with ReserveLane.
  EXPECT_DOUBLE_EQ(plane.payload_bytes()[0][1], 0.0);
}

TEST(CommPlaneTest, RenderAsciiListsBusyLanes) {
  CommPlane plane(Topology::FullyConnected(2, 50.0), ContentionModel::kFair);
  TransferBatch batch;
  batch.Add(0, 1, 1e6, 0);
  (void)plane.Settle(batch);
  const std::string table = plane.RenderAscii();
  EXPECT_NE(table.find("0 -> 1"), std::string::npos);
  EXPECT_EQ(table.find("1 -> 0"), std::string::npos);
  const std::string empty = CommPlane(Topology::FullyConnected(2)).RenderAscii();
  EXPECT_NE(empty.find("no interconnect traffic"), std::string::npos);
}

// ---------- engine-level contract ----------

template <typename App, typename Value = typename App::Value>
core::RunResult RunGum(const graph::CsrGraph& g, App app,
                       ContentionModel model, std::vector<Value>* values,
                       int host_threads = 0, bool enable_osteal = false) {
  auto opt = TestEngineOptions();
  opt.contention = model;
  opt.num_host_threads = host_threads;
  // OSteal triggers on the previous iteration's *simulated* wall time, so
  // the contention model may legitimately change its schedule; disable it
  // where the test demands bitwise-equal schedules across models.
  opt.enable_osteal = enable_osteal;
  core::GumEngine<App> engine(&g, MakePartition(g, 4), Topo(4), opt);
  return engine.Run(app, values);
}

TEST(CommPlaneEngineTest, GumContentionChangesOnlyTimeAndTelemetry) {
  const auto g = SocialGraph(10, 21);
  BfsApp app;
  app.source = MaxDegreeSource(g);
  std::vector<uint32_t> depths_off;
  std::vector<uint32_t> depths_fair;
  const auto off = RunGum(g, app, ContentionModel::kOff, &depths_off);
  const auto fair = RunGum(g, app, ContentionModel::kFair, &depths_fair);
  EXPECT_EQ(depths_off, depths_fair);
  EXPECT_EQ(off.iterations, fair.iterations);
  EXPECT_EQ(off.edges_processed, fair.edges_processed);
  EXPECT_EQ(off.messages_sent, fair.messages_sent);
  EXPECT_EQ(off.stolen_edges_total, fair.stolen_edges_total);
  // The same transfers moved: logical payload is model-invariant.
  EXPECT_DOUBLE_EQ(off.TotalPayloadBytes(), fair.TotalPayloadBytes());
  // Off-mode legacy semantics: link bytes ARE the payload bytes.
  EXPECT_EQ(off.link_bytes, off.payload_bytes);
  // Fair mode never reports less per-hop traffic than payload.
  EXPECT_GE(fair.TotalRemoteBytes(), fair.TotalPayloadBytes() - 1e-9);
  // Busy-time telemetry only exists for lanes that carried traffic.
  ASSERT_EQ(fair.link_busy_ms.size(), fair.link_bytes.size());
}

TEST(CommPlaneEngineTest, GumSsspContentionPreservesValues) {
  const auto g = SocialGraph(10, 22, /*weighted=*/true);
  SsspApp app;
  app.source = MaxDegreeSource(g);
  std::vector<float> dist_off;
  std::vector<float> dist_fair;
  // Full default machinery (OSteal on): results must still be identical —
  // schedules may differ, answers may not.
  (void)RunGum(g, app, ContentionModel::kOff, &dist_off, 0, true);
  (void)RunGum(g, app, ContentionModel::kFair, &dist_fair, 0, true);
  EXPECT_EQ(dist_off, dist_fair);
}

TEST(CommPlaneEngineTest, GumDeltaPageRankContentionPreservesValues) {
  const auto g = SocialGraph(9, 23);
  DeltaPageRankApp app;
  app.num_vertices = g.num_vertices();
  app.epsilon = 1e-12;
  std::vector<DeltaPageRankApp::State> off_state;
  std::vector<DeltaPageRankApp::State> fair_state;
  const auto off = RunGum(g, app, ContentionModel::kOff, &off_state);
  const auto fair = RunGum(g, app, ContentionModel::kFair, &fair_state);
  ASSERT_EQ(off_state.size(), fair_state.size());
  for (size_t v = 0; v < off_state.size(); ++v) {
    EXPECT_EQ(off_state[v].rank, fair_state[v].rank);
  }
  EXPECT_EQ(off.iterations, fair.iterations);
}

TEST(CommPlaneEngineTest, FairModeIsDeterministicAcrossThreadCounts) {
  const auto g = SocialGraph(10, 24);
  BfsApp app;
  app.source = MaxDegreeSource(g);
  std::vector<uint32_t> d1;
  std::vector<uint32_t> d4;
  const auto r1 = RunGum(g, app, ContentionModel::kFair, &d1, 1);
  const auto r4 = RunGum(g, app, ContentionModel::kFair, &d4, 4);
  EXPECT_EQ(d1, d4);
  EXPECT_EQ(r1.total_ms, r4.total_ms);  // bitwise, not approximately
  EXPECT_EQ(r1.link_bytes, r4.link_bytes);
  EXPECT_EQ(r1.link_busy_ms, r4.link_busy_ms);
}

TEST(CommPlaneEngineTest, GunrockContentionChangesOnlyTime) {
  const auto g = SocialGraph(10, 25);
  BfsApp app;
  app.source = MaxDegreeSource(g);
  baselines::GunrockOptions off_opt;
  baselines::GunrockOptions fair_opt;
  fair_opt.contention = ContentionModel::kFair;
  std::vector<uint32_t> depths_off;
  std::vector<uint32_t> depths_fair;
  const auto part = MakePartition(g, 4);
  const auto off =
      baselines::GunrockLikeEngine<BfsApp>(&g, part, Topo(4), off_opt)
          .Run(app, &depths_off);
  app.source = MaxDegreeSource(g);
  const auto fair =
      baselines::GunrockLikeEngine<BfsApp>(&g, part, Topo(4), fair_opt)
          .Run(app, &depths_fair);
  EXPECT_EQ(depths_off, depths_fair);
  EXPECT_EQ(off.iterations, fair.iterations);
  EXPECT_EQ(off.messages_sent, fair.messages_sent);
  EXPECT_DOUBLE_EQ(off.TotalPayloadBytes(), fair.TotalPayloadBytes());
  // No direction is asserted on the charge: `off` sums a device's per-peer
  // flushes serially while `fair` overlaps them (makespan), so fair can be
  // faster on disjoint lanes even though shared lanes slow it down.
  EXPECT_GT(fair.CommunicationMs(), 0.0);
}

TEST(CommPlaneEngineTest, GrouteContentionPreservesValuesAndSlowsRing) {
  const auto g = SocialGraph(10, 26);
  BfsApp app;
  app.source = MaxDegreeSource(g);
  baselines::GrouteOptions off_opt;
  baselines::GrouteOptions fair_opt;
  fair_opt.contention = ContentionModel::kFair;
  std::vector<uint32_t> depths_off;
  std::vector<uint32_t> depths_fair;
  const auto part = MakePartition(g, 4);
  const auto off = baselines::GrouteLikeEngine<BfsApp>(&g, part, off_opt)
                       .Run(app, &depths_off);
  app.source = MaxDegreeSource(g);
  const auto fair = baselines::GrouteLikeEngine<BfsApp>(&g, part, fair_opt)
                        .Run(app, &depths_fair);
  EXPECT_EQ(depths_off, depths_fair);
  // Store-and-forward hops now queue on busy lanes: the simulated clock
  // can only move later.
  EXPECT_GE(fair.total_ms, off.total_ms - 1e-9);
}

}  // namespace
}  // namespace gum::sim
