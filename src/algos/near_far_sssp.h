// Near-far SSSP (Davidson et al., IPDPS'14) — the algorithm-specific
// optimization behind Gunrock's strong single-GPU SSSP (paper Exp-2:
// "Gunrock's implementation adopts an algorithm-specific 'near-far'
// optimization that runs faster on a single GPU while hard to scale out").
//
// Work is split by a moving distance threshold: vertices relaxed below
// `split = delta * (band + 1)` go to the NEAR pile and are processed this
// band; the rest wait in the FAR pile. Compared with plain Bellman-Ford
// frontiers this avoids re-relaxing vertices whose tentative distance will
// drop again, at the cost of extra pile-management passes — great on one
// GPU, awkward to coordinate across many (which is why the baseline only
// uses it at n=1).
//
// Distances are exact (it is a delta-stepping variant with near/far piles);
// validated against Dijkstra.

#ifndef GUM_ALGOS_NEAR_FAR_SSSP_H_
#define GUM_ALGOS_NEAR_FAR_SSSP_H_

#include <vector>

#include "core/run_result.h"
#include "graph/csr.h"
#include "graph/partition.h"
#include "sim/device.h"
#include "sim/topology.h"

namespace gum::algos {

struct NearFarOptions {
  sim::DeviceParams device;
  // Band width; 0 picks `average edge weight * 2` automatically.
  double delta = 0.0;
  int kernels_per_band = 5;  // relax + 2-way split + compaction kernels
};

struct NearFarStats {
  int bands = 0;
  uint64_t relaxations = 0;      // edges relaxed
  uint64_t far_pile_moves = 0;   // vertices parked in the far pile
};

core::RunResult NearFarSssp(const graph::CsrGraph& g,
                            const graph::Partition& partition,
                            const sim::Topology& topology,
                            graph::VertexId source,
                            const NearFarOptions& options,
                            std::vector<float>* dist_out = nullptr,
                            NearFarStats* stats_out = nullptr);

}  // namespace gum::algos

#endif  // GUM_ALGOS_NEAR_FAR_SSSP_H_
