// Figure 1: the motivation timeline — SSSP on the webbase analog, 8 GPUs,
// static partition, NO stealing. Reproduces the two pathologies:
//   (1) dynamic load imbalance: per-iteration straggler/fastest ratios;
//   (2) long tail: thousands of latency-bound iterations where
//       synchronization dominates.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/datasets.h"
#include "bench/runner.h"
#include "common/table_printer.h"

using namespace gum;        // NOLINT(build/namespaces)
using namespace gum::bench; // NOLINT(build/namespaces)

int main() {
  std::cout << "=== Figure 1: SSSP timeline on webbase analog (8 GPUs, no "
               "stealing) ===\n\n";
  const DatasetGraphs data = BuildDataset("WB");
  std::cout << "graph: " << data.spec.name << "  |V|="
            << data.directed.num_vertices()
            << " |E|=" << data.directed.num_edges() << "\n\n";

  RunConfig config;
  config.system = System::kGum;
  config.algo = Algo::kSssp;
  config.devices = 8;
  // "The input graph is well-partitioned with each GPU processing the same
  // amount of edges" (paper Example 1) — the locality-preserving seg
  // partitioner with balanced edge quotas.
  config.partitioner = graph::PartitionerKind::kSegment;
  config.gum.enable_fsteal = false;
  config.gum.enable_osteal = false;
  const core::RunResult result = RunBenchmark(data, config);

  std::cout << result.timeline.RenderAscii(96) << "\n";

  // (1) DLB: straggler/fastest ratio of per-iteration WORK time (compute +
  // data movement, excluding the barrier every device pays equally — the
  // paper's Fig. 1/8 measures kernel time).
  auto work_ms = [&](int it, int d) {
    return result.timeline.Get(it, d, sim::TimeCategory::kCompute) +
           result.timeline.Get(it, d, sim::TimeCategory::kCommunication) +
           result.timeline.Get(it, d, sim::TimeCategory::kSerialization);
  };
  double worst_ratio = 1.0;
  int worst_iter = -1;
  double imbalance_sum = 0;
  int busy_iters = 0;
  for (int it = 0; it < result.timeline.num_iterations(); ++it) {
    double max_busy = 0, min_busy = 1e18;
    int active = 0;
    for (int d = 0; d < 8; ++d) {
      const double busy = work_ms(it, d);
      if (busy > 0) {
        ++active;
        max_busy = std::max(max_busy, busy);
        min_busy = std::min(min_busy, busy);
      }
    }
    // Paper-style comparison: every worker has meaningful work.
    if (active >= 4 && max_busy > 0.5 && min_busy > 0.05 * max_busy) {
      const double ratio = max_busy / min_busy;
      imbalance_sum += ratio;
      ++busy_iters;
      if (ratio > worst_ratio) {
        worst_ratio = ratio;
        worst_iter = it;
      }
    }
  }
  std::cout << "[DLB] busy iterations: " << busy_iters
            << ", mean straggler/fastest ratio: "
            << TablePrinter::Num(busy_iters ? imbalance_sum / busy_iters : 0,
                                 2)
            << ", worst: " << TablePrinter::Num(worst_ratio, 2)
            << "x at iteration " << worst_iter
            << "   (paper reports up to 4.2x)\n";

  // (2) LT: share of wall time in sync/overhead during the tail.
  const double stall = result.StarvationMs();
  const double overhead = result.OverheadMs();
  const double busy_total = result.ComputeMs() + result.CommunicationMs() +
                            result.SerializationMs() + overhead;
  std::cout << "[LT ] iterations: " << result.iterations
            << ", total (simulated): " << TablePrinter::Num(result.total_ms, 1)
            << " ms, synchronization overhead share: "
            << TablePrinter::Num(100.0 * overhead / (busy_total + stall), 1)
            << "% of device cycles, starvation share: "
            << TablePrinter::Num(100.0 * stall / (busy_total + stall), 1)
            << "%   (paper: sync ~21% of total on this workload)\n";
  return 0;
}
