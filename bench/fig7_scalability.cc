// Figure 7: strong scalability of Gunrock / Groute / GUM from 1 to 8 vGPUs
// (Exp-2). One social graph (TW), one deep web graph (WB) and one road
// network (USA); speedups are relative to each system's own 1-GPU time.
// Odd device counts expose Groute's broken-ring penalty.
//
// Emitted once per interconnect contention model: `off` is the legacy
// point-to-point model; `fair` time-slices each lane across concurrent
// transfers, which deepens the odd-ring dip (the PCIe wrap segment is now
// a genuine queue, not just a slower pipe).

#include <iostream>
#include <vector>

#include "bench/datasets.h"
#include "bench/runner.h"
#include "common/table_printer.h"
#include "sim/comm_plane.h"

using namespace gum;        // NOLINT(build/namespaces)
using namespace gum::bench; // NOLINT(build/namespaces)

int main() {
  std::cout << "=== Figure 7: strong scaling, 1..8 GPUs (speedup vs the "
               "same system on 1 GPU; higher is better) ===\n";
  const std::vector<std::string> graphs = {"TW", "WB", "USA"};
  const std::vector<Algo> algos = {Algo::kBfs, Algo::kWcc, Algo::kPr,
                                   Algo::kSssp};
  const std::vector<System> systems = {System::kGunrock, System::kGroute,
                                       System::kGum};
  const std::vector<int> device_counts = {1, 2, 3, 4, 5, 6, 8};
  const std::vector<sim::ContentionModel> models = {
      sim::ContentionModel::kOff, sim::ContentionModel::kFair};

  for (const sim::ContentionModel model : models) {
    std::cout << "\n--- contention=" << sim::ContentionModelName(model)
              << " ---\n";
    std::vector<std::string> headers = {"Graph", "Alg.", "Lib."};
    for (int n : device_counts) headers.push_back(std::to_string(n) + "gpu");
    TablePrinter tp(headers);

    for (const std::string& abbr : graphs) {
      const DatasetGraphs data = BuildDataset(abbr);
      for (Algo algo : algos) {
        for (System system : systems) {
          std::vector<std::string> row = {abbr, AlgoName(algo),
                                          SystemName(system)};
          double base_ms = 0;
          for (int n : device_counts) {
            RunConfig config;
            config.system = system;
            config.algo = algo;
            config.devices = n;
            config.contention = model;
            const core::RunResult r = RunBenchmark(data, config);
            if (n == 1) base_ms = r.total_ms;
            row.push_back(TablePrinter::Num(base_ms / r.total_ms, 2));
          }
          tp.AddRow(row);
        }
        std::cerr << "done " << sim::ContentionModelName(model) << " "
                  << abbr << " " << AlgoName(algo) << "\n";
      }
    }
    tp.Print(std::cout);
  }
  std::cout << "\nShape check vs paper Fig. 7: GUM keeps near-linear "
               "speedups to 8 GPUs; Gunrock plateaus (or regresses) beyond "
               "a few GPUs on traversal workloads; Groute dips at odd GPU "
               "counts where its NVLink ring cannot close — and dips harder "
               "under contention=fair, where the PCIe wrap segment queues.\n";
  return 0;
}
