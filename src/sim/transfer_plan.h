// Multi-path transfer plans and topology-aware reduction trees
// (DESIGN.md §8; Sojoodi et al. "Accelerating Intra-Node GPU-to-GPU
// Communication Through Multi-Path Transfers", Pan et al. "Multi-GPU Graph
// Analytics" — see PAPERS.md).
//
// Single-path routing leaves parallel NVLink/PCIe capacity idle for bulk
// payloads: a TransferPlan stripes one (src, dst) transfer across
// link-disjoint paths — the direct lane, 2-hop routes via distinct transit
// devices, and the PCIe/QPI pool — splitting bytes proportionally to path
// bandwidth so every stripe finishes together when uncontended. Striped
// chunks are settled as ordinary flows under the CommPlane's `fair`
// max-min model, so they contend honestly per directed lane. The planner
// consults *fault-scaled* direct bandwidths: a downed link simply is not
// offered as a path and a degraded link gets a proportionally smaller
// stripe — the fault overlay drops a path from the plan, never the whole
// transfer.
//
// A ReductionTree replaces the census/aggregation phase's all-to-one sync
// with a deterministic topology-aware tree (hybrid-cube-mesh-shaped where
// the NVLink graph supports it, falling back to the legacy star): each
// device synchronizes with its tree neighbors plus the tree height
// (the barrier's critical path) instead of the whole group.
//
// Everything here is disabled by default (`--multipath=off`); `kOff`
// contention and single-path `fair` stay byte-identical to the pre-plan
// build. Plans only ever change simulated time and telemetry — never
// algorithm values (DESIGN.md §7).

#ifndef GUM_SIM_TRANSFER_PLAN_H_
#define GUM_SIM_TRANSFER_PLAN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace gum::sim {

// The feature knob (EngineOptions::multipath, --multipath=off|on).
enum class MultipathMode {
  kOff,  // single-path routing everywhere (byte-identical to pre-plan build)
  kOn,   // stripe bulk transfers + tree-shaped census sync (fair model only)
};

const char* MultipathModeName(MultipathMode mode);
Result<MultipathMode> ParseMultipathMode(const std::string& name);

// One link-disjoint path of a striped transfer.
struct PlanPath {
  int transit = -1;       // >= 0: 2-hop route via this device
  bool via_pcie = false;  // the PCIe/QPI pool path
  double gbps = 0.0;      // planning bandwidth of the whole path
  double fraction = 0.0;  // share of the payload striped onto this path
};

// The multi-path split chosen for one (src, dst) bulk transfer.
struct TransferPlan {
  int src = 0;
  int dst = 0;
  std::vector<PlanPath> paths;    // bandwidth-descending, deterministic
  double total_gbps = 0.0;        // sum of path bandwidths
  double best_single_gbps = 0.0;  // what single-path routing would use
  int paths_dropped = 0;          // nominal paths removed by the fault overlay
  bool striped() const { return paths.size() > 1; }
  // Aggregate-over-best-single bandwidth ratio (>= 1; the up-to-~3x link
  // utilization headline of the multi-path papers).
  double StripeEfficiency() const {
    return best_single_gbps > 0.0 ? total_gbps / best_single_gbps : 1.0;
  }
};

struct TransferPlannerConfig {
  int max_paths = 4;                // stripe across at most this many paths
  double min_stripe_bytes = 32768;  // smaller payloads stay single-path
  // Paths slower than this fraction of the best candidate are not worth a
  // stripe (their chunk would dominate the makespan under contention).
  double min_path_gbps_fraction = 0.10;
};

class TransferPlanner {
 public:
  // `direct(i, j)` returns the (possibly fault-scaled) direct link
  // bandwidth in GB/s, 0 when the pair has no usable direct link. The
  // candidate set — direct lane, one 2-hop route per transit device, the
  // PCIe pool — is mutually link-disjoint by construction. Deterministic:
  // candidates order by (bandwidth desc, kind, transit id).
  using DirectFn = std::function<double(int, int)>;
  static TransferPlan Build(int src, int dst, int num_devices, double bytes,
                            const DirectFn& direct,
                            const TransferPlannerConfig& config = {});
};

// Deterministic topology-aware aggregation tree over the active devices:
// a maximum-bandwidth spanning tree grown Prim-style over the (possibly
// fault-scaled) direct NVLink graph. Devices unreachable over NVLink
// attach directly to the root (the legacy star edge); with no NVLink at
// all the tree degenerates to the star and SyncFactor reproduces the
// legacy all-to-one charge exactly.
struct ReductionTree {
  int root = -1;
  int members = 0;            // active devices spanned
  int height = 0;             // max depth (root = 0)
  bool star = false;          // pure all-to-one fallback (no NVLink edge)
  std::vector<int> parent;    // device-indexed; -1 for the root / non-members
  std::vector<int> children;  // child count per device
  std::vector<int> depth;     // hops to the root; -1 for non-members

  bool InTree(int device) const {
    return device >= 0 && device < static_cast<int>(depth.size()) &&
           depth[device] >= 0;
  }
  // Per-device synchronization multiplier replacing the all-to-one group
  // factor m of Eq. (4): tree neighbors (children + the parent link) plus
  // the tree height (the barrier's critical path). Star fallback returns
  // m for every member — bit-identical to the legacy charge.
  double SyncFactor(int device) const;

  static ReductionTree Build(int num_devices, const std::vector<int>& active,
                             const TransferPlanner::DirectFn& direct);
};

// Per-run striping telemetry, accumulated by the CommPlane across bulk
// settles and exported through RunResult (rendered by gum_cli
// --show-links; the run report's `comm.multipath` section).
struct MultipathStats {
  int64_t bulk_transfers = 0;    // plan-eligible transfers settled
  int64_t striped_transfers = 0; // split across more than one path
  int64_t paths_used = 0;        // stripes launched across all plans
  int64_t paths_dropped = 0;     // nominal paths removed by the fault overlay
  double direct_bytes = 0.0;     // striped bytes by path kind
  double transit_bytes = 0.0;
  double pcie_bytes = 0.0;
  double single_path_ns = 0.0;   // solo time of the payloads, best single path
  double striped_ns = 0.0;       // solo time of the payloads under the plans
  // Aggregate stripe efficiency: uncontended single-path time over striped
  // time (>= 1 when striping helps).
  double StripeEfficiency() const {
    return striped_ns > 0.0 ? single_path_ns / striped_ns : 1.0;
  }
};

// Human-readable striping summary (gum_cli --show-links).
std::string RenderMultipathAscii(const MultipathStats& stats);

}  // namespace gum::sim

#endif  // GUM_SIM_TRANSFER_PLAN_H_
