#include "fault/recovery.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/checkpoint.h"

namespace gum::fault {

core::OStealDecision RebuildOwnership(
    const std::vector<std::vector<double>>& cost,
    const std::vector<double>& loads,
    const sim::ReductionSchedule& survivor_schedule, double sync_per_peer_ns,
    const core::OStealConfig& config, int num_survivors, bool enumerate) {
  GUM_CHECK(num_survivors >= 1 &&
            num_survivors <= survivor_schedule.num_devices());
  if (enumerate) {
    return core::DecideOSteal(cost, loads, survivor_schedule,
                              sync_per_peer_ns, config, num_survivors);
  }
  // OSteal disabled: no voluntary shrinking, the group is every survivor.
  core::OStealDecision dec;
  dec.evaluated = true;
  dec.group_size = num_survivors;
  dec.owner = survivor_schedule.OwnerVectorFor(num_survivors);
  dec.active = survivor_schedule.ActiveFor(num_survivors);
  return dec;
}

RecoveryCharge ComputeRecoveryCharge(
    const RecoveryConfig& config, const std::vector<int>& ckpt_owner,
    const std::vector<int>& new_owner, const std::vector<bool>& failed,
    const std::vector<double>& fragment_bytes) {
  const size_t n = ckpt_owner.size();
  GUM_CHECK(new_owner.size() == n && failed.size() == n &&
            fragment_bytes.size() == n);
  RecoveryCharge charge;
  charge.detect_ms = config.detect_timeout_us / 1000.0;
  charge.per_device_ms.assign(n, 0.0);
  std::vector<double> restore_bytes(n, 0.0);
  std::vector<double> migrate_bytes(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const int owner = new_owner[i];
    GUM_CHECK(owner >= 0 && owner < static_cast<int>(n) && !failed[owner])
        << "recovery assigned fragment " << i << " to a dead device";
    if (owner == ckpt_owner[i]) {
      restore_bytes[owner] += fragment_bytes[i];
    } else {
      migrate_bytes[owner] += fragment_bytes[i];
      ++charge.fragments_migrated;
    }
  }
  for (size_t d = 0; d < n; ++d) {
    if (failed[d]) continue;
    const double restore_ms = CheckpointTransferMs(restore_bytes[d]);
    const double migrate_ms = CheckpointTransferMs(migrate_bytes[d]);
    charge.restore_ms = std::max(charge.restore_ms, restore_ms);
    charge.migrate_ms = std::max(charge.migrate_ms, migrate_ms);
    charge.per_device_ms[d] = charge.detect_ms + restore_ms + migrate_ms;
  }
  return charge;
}

}  // namespace gum::fault
