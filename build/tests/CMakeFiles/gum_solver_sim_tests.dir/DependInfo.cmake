
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bandwidth_probe_test.cc" "tests/CMakeFiles/gum_solver_sim_tests.dir/bandwidth_probe_test.cc.o" "gcc" "tests/CMakeFiles/gum_solver_sim_tests.dir/bandwidth_probe_test.cc.o.d"
  "/root/repo/tests/milp_test.cc" "tests/CMakeFiles/gum_solver_sim_tests.dir/milp_test.cc.o" "gcc" "tests/CMakeFiles/gum_solver_sim_tests.dir/milp_test.cc.o.d"
  "/root/repo/tests/reduction_schedule_test.cc" "tests/CMakeFiles/gum_solver_sim_tests.dir/reduction_schedule_test.cc.o" "gcc" "tests/CMakeFiles/gum_solver_sim_tests.dir/reduction_schedule_test.cc.o.d"
  "/root/repo/tests/simplex_test.cc" "tests/CMakeFiles/gum_solver_sim_tests.dir/simplex_test.cc.o" "gcc" "tests/CMakeFiles/gum_solver_sim_tests.dir/simplex_test.cc.o.d"
  "/root/repo/tests/solver_fuzz_test.cc" "tests/CMakeFiles/gum_solver_sim_tests.dir/solver_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/gum_solver_sim_tests.dir/solver_fuzz_test.cc.o.d"
  "/root/repo/tests/solver_hardening_test.cc" "tests/CMakeFiles/gum_solver_sim_tests.dir/solver_hardening_test.cc.o" "gcc" "tests/CMakeFiles/gum_solver_sim_tests.dir/solver_hardening_test.cc.o.d"
  "/root/repo/tests/steal_problem_test.cc" "tests/CMakeFiles/gum_solver_sim_tests.dir/steal_problem_test.cc.o" "gcc" "tests/CMakeFiles/gum_solver_sim_tests.dir/steal_problem_test.cc.o.d"
  "/root/repo/tests/timeline_test.cc" "tests/CMakeFiles/gum_solver_sim_tests.dir/timeline_test.cc.o" "gcc" "tests/CMakeFiles/gum_solver_sim_tests.dir/timeline_test.cc.o.d"
  "/root/repo/tests/topology_test.cc" "tests/CMakeFiles/gum_solver_sim_tests.dir/topology_test.cc.o" "gcc" "tests/CMakeFiles/gum_solver_sim_tests.dir/topology_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
