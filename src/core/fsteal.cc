#include "core/fsteal.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/parallel_primitives.h"
#include "common/stopwatch.h"
#include "obs/trace.h"
#include "solver/steal_problem.h"

namespace gum::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Off-owner cells of the plan — its "size" in the run report.
int CountPlanCells(const std::vector<std::vector<double>>& assignment,
                   const std::vector<int>& owner_of_fragment) {
  int cells = 0;
  for (size_t i = 0; i < assignment.size(); ++i) {
    for (size_t j = 0; j < assignment[i].size(); ++j) {
      if (assignment[i][j] > 0.0 &&
          static_cast<int>(j) != owner_of_fragment[i]) {
        ++cells;
      }
    }
  }
  return cells;
}
}  // namespace

std::vector<std::vector<double>> BuildCostMatrix(
    const std::vector<graph::FrontierFeatures>& features,
    const std::vector<double>& remote_discount, const EdgeCostModel& model,
    const sim::CommPlane& plane, const std::vector<int>& active_workers) {
  const int n = plane.num_devices();
  GUM_CHECK(static_cast<int>(features.size()) == n);
  GUM_CHECK(static_cast<int>(remote_discount.size()) == n);

  std::vector<bool> active(n, false);
  for (int j : active_workers) active[j] = true;

  const double bytes = model.device_params().bytes_per_remote_edge;
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, kInf));
  for (int i = 0; i < n; ++i) {
    const double g = model.EdgeCostNs(features[i]);
    for (int j = 0; j < n; ++j) {
      if (!active[j]) continue;  // OSteal-evicted: c_ij = infinity
      const double transfer =
          plane.PointToPointNs(i, j, bytes) *
          (i == j ? 1.0 : remote_discount[i]);
      cost[i][j] = transfer + g;
    }
  }
  return cost;
}

FStealDecision DecideFSteal(const std::vector<std::vector<double>>& cost,
                            const std::vector<double>& loads,
                            const std::vector<int>& owner_of_fragment,
                            const std::vector<int>& active_workers,
                            const FStealConfig& config) {
  GUM_TRACE_SCOPE("fsteal.decide");
  const int n = static_cast<int>(loads.size());
  FStealDecision decision;
  decision.assignment.assign(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    decision.assignment[i][owner_of_fragment[i]] = loads[i];
  }
  decision.predicted_makespan_ns =
      solver::PlanMakespan(cost, decision.assignment);

  // Example 5 activation thresholds, evaluated on per-worker effective
  // loads.
  std::vector<double> worker_load(n, 0.0);
  for (int i = 0; i < n; ++i) worker_load[owner_of_fragment[i]] += loads[i];
  double max_load = 0.0, min_load = kInf;
  for (int j : active_workers) {
    max_load = std::max(max_load, worker_load[j]);
    min_load = std::min(min_load, worker_load[j]);
  }
  if (max_load < config.t1_min_max_load ||
      max_load - min_load < config.t2_min_imbalance) {
    return decision;  // identity plan, stealing not worth it
  }

  Stopwatch timer;
  if (config.use_greedy) {
    solver::StealPlan plan =
        solver::GreedyStealPlan(cost, loads, active_workers);
    decision.decision_host_ms = timer.ElapsedMillis();
    if (plan.makespan < decision.predicted_makespan_ns) {
      decision.assignment = std::move(plan.assignment);
      decision.predicted_makespan_ns = plan.makespan;
      decision.applied = true;
      decision.plan_cells =
          CountPlanCells(decision.assignment, owner_of_fragment);
    }
    return decision;
  }

  solver::StealProblemOptions options;
  options.exact_milp = config.exact_milp;
  auto plan = solver::SolveStealProblem(cost, loads, active_workers, options);
  decision.decision_host_ms = timer.ElapsedMillis();
  if (!plan.ok()) {
    GUM_LOG(Warning) << "FSteal solver failed (" << plan.status().ToString()
                     << "); keeping identity plan";
    return decision;
  }
  decision.lp_iterations = plan->lp_iterations;
  decision.milp_nodes = plan->milp_nodes;
  if (plan->makespan < decision.predicted_makespan_ns) {
    decision.assignment = std::move(plan->assignment);
    decision.predicted_makespan_ns = plan->makespan;
    decision.applied = true;
    decision.plan_cells =
        CountPlanCells(decision.assignment, owner_of_fragment);
  }
  return decision;
}

std::vector<std::pair<size_t, size_t>> SelectStolenRanges(
    const graph::CsrGraph& g, std::span<const graph::VertexId> frontier,
    const std::vector<double>& quota_row, const std::vector<int>& workers) {
  // D = exclusive prefix sum of frontier out-degrees (Algorithm 1 line 13).
  std::vector<uint64_t> degrees(frontier.size());
  for (size_t k = 0; k < frontier.size(); ++k) {
    degrees[k] = g.OutDegree(frontier[k]);
  }
  const std::vector<uint64_t> d_prefix = InclusivePrefixSum(degrees);

  // F = prefix sum of the quota row in worker order (line 14).
  std::vector<uint64_t> quota_prefix(workers.size());
  double running = 0.0;
  for (size_t w = 0; w < workers.size(); ++w) {
    running += quota_row[workers[w]];
    quota_prefix[w] = static_cast<uint64_t>(std::llround(running));
  }

  // F = SortedSearch(F, D) (line 15): split after the vertex where the
  // cumulative degree first reaches each quota boundary.
  const std::vector<size_t> splits =
      SortedSearchLower(d_prefix, quota_prefix);

  // The last worker with a positive quota also absorbs the rounding
  // remainder (and any zero-out-degree tail of the frontier).
  size_t last_pos = workers.size();
  for (size_t w = 0; w < workers.size(); ++w) {
    const uint64_t prev = w == 0 ? 0 : quota_prefix[w - 1];
    if (quota_prefix[w] > prev) last_pos = w;
  }

  std::vector<std::pair<size_t, size_t>> ranges(workers.size());
  size_t begin = 0;
  for (size_t w = 0; w < workers.size(); ++w) {
    const uint64_t prev = w == 0 ? 0 : quota_prefix[w - 1];
    size_t end;
    if (quota_prefix[w] <= prev) {
      end = begin;  // zero quota: empty range
    } else if (w == last_pos) {
      end = frontier.size();
    } else {
      end = std::clamp(splits[w] + 1, begin, frontier.size());
    }
    ranges[w] = {begin, end};
    begin = end;
  }
  return ranges;
}

}  // namespace gum::core
