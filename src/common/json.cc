#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace gum {

void JsonEscape(std::string_view s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  std::string s(buf, res.ptr);
#else
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
#endif
  // "1e+300" and "1E300" are both valid JSON, but bare "1" for 1.0 is too —
  // shortest-form integers are fine; consumers treat them as numbers either
  // way.
  return s;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  Raw("{");
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  GUM_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "EndObject outside an object";
  GUM_CHECK(!key_pending_) << "EndObject after a dangling key";
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) NewlineIndent();
  Raw("}");
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  Raw("[");
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  GUM_CHECK(!stack_.empty() && stack_.back() == Scope::kArray)
      << "EndArray outside an array";
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) NewlineIndent();
  Raw("]");
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  GUM_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "Key outside an object";
  GUM_CHECK(!key_pending_) << "two keys in a row";
  if (has_items_.back()) Raw(",");
  has_items_.back() = true;
  NewlineIndent();
  std::string out = "\"";
  JsonEscape(key, &out);
  out += indent_ > 0 ? "\": " : "\":";
  Raw(out);
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  BeforeValue();
  std::string out = "\"";
  JsonEscape(v, &out);
  out += '"';
  Raw(out);
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  Raw(JsonNumber(v));
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  Raw(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  Raw(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  Raw(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  Raw("null");
  return *this;
}

void JsonWriter::BeforeValue() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the Key() already positioned us
  }
  if (stack_.empty()) return;  // root value
  GUM_CHECK(stack_.back() == Scope::kArray)
      << "object member without a Key()";
  if (has_items_.back()) Raw(",");
  has_items_.back() = true;
  NewlineIndent();
}

void JsonWriter::NewlineIndent() {
  if (indent_ <= 0) return;
  std::string s = "\n";
  s.append(static_cast<size_t>(indent_) * stack_.size(), ' ');
  Raw(s);
}

// --- parser ---

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    if (Status s = ParseValue(&root, 0); !s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 200;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out->type_ = JsonValue::Type::kBool;
          out->bool_ = true;
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out->type_ = JsonValue::Type::kBool;
          out->bool_ = false;
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->type_ = JsonValue::Type::kNull;
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      if (Status s = ParseString(&key); !s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      // First occurrence wins on duplicate keys.
      if (out->Find(key) == nullptr) {
        out->members_.emplace_back(std::move(key), std::move(value));
      }
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point; surrogate pairs are passed
          // through as two 3-byte sequences (the writer never emits them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string_view token = text_.substr(start, pos_ - start);
    out->type_ = JsonValue::Type::kNumber;
    double d = 0.0;
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (res.ec != std::errc() || res.ptr != token.data() + token.size()) {
      return Error("malformed number");
    }
    out->number_ = d;
    int64_t i = 0;
    const auto ires =
        std::from_chars(token.data(), token.data() + token.size(), i);
    if (ires.ec == std::errc() && ires.ptr == token.data() + token.size()) {
      out->is_integer_ = true;
      out->int_ = i;
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = Find(key);
  GUM_CHECK(v != nullptr) << "missing JSON member: " << std::string(key);
  return *v;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace gum
