// The GUM multi-GPU graph processing engine (paper §V).
//
// BSP execution with remote work stealing. Per iteration (paper Example 4):
//   Step 1  generate frontiers (apply previous messages);
//   Step 2  ownership stealing — when the previous iteration was
//           synchronization-bound, enumerate group sizes over the reduction
//           tree and possibly shrink/grow the communication group;
//   Step 3  frontier stealing — solve the Eq.-1 MILP over the cost
//           coefficient matrix (with evicted devices forbidden) and split
//           each fragment's frontier into per-worker contiguous ranges;
//   Step 4  process the frontiers — every worker expands the vertices
//           assigned to it (remote adjacency over NVLink unless hub-cached),
//           messages are combined per target vertex and forwarded to the
//           target fragment's owner.
//
// GumEngine is a thin orchestrator over layered components (see
// docs/architecture.md):
//   core/graph_context.h   — the immutable per-graph substrate (partition,
//                            topology geometry, cost model, hub cache,
//                            shard map, thread pool, shared PullEdges)
//   core/run_context.h     — the per-query mutable state (values, frontier,
//                            message store, backend staging arenas)
//   core/superstep.h       — Step-4 decomposition into per-executor work
//                            units, expanded on a host ThreadPool
//   core/message_store.h   — deterministic inbox + per-worker staging,
//                            destination-sharded merge/apply
//   core/time_accounting.h — the analytic device-time model
// Results are bit-identical for every num_host_threads and num_msg_shards
// setting; see DESIGN.md, "Determinism contract".
//
// Serving mode (DESIGN.md §13): build one GraphContext, then run many
// queries against it — GumEngine(&context) plus a reused RunContext keeps
// every high-water arena warm between runs. The legacy constructor builds
// and owns a context internally, so existing call sites are unchanged.
//
// Algorithm semantics are exact; device time is accounted by the analytic
// substrate model (see DESIGN.md §1). The App concept:
//
//   struct App {
//     using Value = ...;            // per-vertex state
//     using Message = ...;          // combined per target vertex
//     std::string name() const;
//     int fixed_rounds() const;     // -1 => data-driven, else round count
//     Value InitValue(VertexId v) const;
//     bool IsInitiallyActive(VertexId v) const;
//     Message InitialAccumulator() const;  // Combine identity (fixed-rounds)
//     // Called exactly once per active vertex per iteration; may mutate the
//     // vertex value (delta-PageRank consumes its residual here). Returns
//     // the payload broadcast along the vertex's out-edges. Must not mutate
//     // App member state (runs concurrently on host threads).
//     Message OnFrontier(VertexId u, Value& val, uint32_t out_degree);
//     // Per-edge message; nullopt suppresses the edge.
//     std::optional<Message> Scatter(const Message& payload, VertexId dst,
//                                    float weight) const;
//     Message Combine(const Message& a, const Message& b) const;  // assoc.
//     // Applies the combined message; true activates dst next iteration.
//     bool Apply(VertexId v, Value& val, const Message& msg) const;
//     // Optional (SpMV pull fusion, core/expand/expand_backend.h):
//     // Message CombineAll(const Message& acc, const Message& payload,
//     //                    float weight) const;
//   };
//
// Step 4 runs on one of the pluggable expand backends (core/expand/,
// selected by EngineOptions::expand_backend + the per-iteration density
// heuristic). Vertex values are byte-identical across backends.

#ifndef GUM_CORE_ENGINE_H_
#define GUM_CORE_ENGINE_H_

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/async/async_engine.h"
#include "core/edge_cost_model.h"
#include "core/engine_options.h"
#include "core/expand/expand_backend.h"
#include "core/expand/frontier_scatter.h"
#include "core/expand/spmv.h"
#include "core/graph_context.h"
#include "core/hub_cache.h"
#include "core/message_store.h"
#include "core/run_context.h"
#include "core/run_result.h"
#include "core/superstep.h"
#include "core/time_accounting.h"
#include "core/vertex_state.h"
#include "fault/checkpoint.h"
#include "fault/fault_plane.h"
#include "fault/recovery.h"
#include "graph/csr.h"
#include "graph/fragment.h"
#include "graph/frontier_features.h"
#include "graph/partition.h"
#include "ml/model.h"
#include "sim/comm_plane.h"
#include "sim/kernel_cost.h"
#include "sim/reduction_schedule.h"
#include "sim/timeline.h"
#include "sim/topology.h"

namespace gum::core {

template <typename App>
class GumEngine {
 public:
  using VertexId = graph::VertexId;
  using Value = typename App::Value;
  using Message = typename App::Message;

  // Legacy constructor: builds and owns the immutable context. `g` and
  // `cost_model` (if non-null) must outlive the engine. A null cost_model
  // forces the exact oracle regardless of options.
  GumEngine(const graph::CsrGraph* g, graph::Partition partition,
            sim::Topology topology, EngineOptions options,
            const ml::RegressionModel* cost_model = nullptr)
      : owned_ctx_(std::make_unique<GraphContext>(g, std::move(partition),
                                                  std::move(topology), options,
                                                  cost_model)),
        ctx_(owned_ctx_.get()) {}

  // Serving constructor: runs against an externally owned context (which
  // must outlive the engine). Many engines — including engines of
  // different App types — may share one context.
  explicit GumEngine(const GraphContext* ctx) : ctx_(ctx) {
    GUM_CHECK(ctx_ != nullptr) << "GumEngine needs a GraphContext";
  }

  const GraphContext& context() const { return *ctx_; }

  // Repoints the engine at a new externally owned context (which must
  // outlive the engine) — the mutation-plane epoch barrier, where the
  // GraphContext is rebuilt over the mutated graph. Only valid between
  // runs; any legacy-constructor-owned context is released.
  void Rebind(const GraphContext* ctx) {
    GUM_CHECK(ctx != nullptr) << "GumEngine needs a GraphContext";
    ctx_ = ctx;
    owned_ctx_.reset();
  }

  // Runs the app to convergence; returns timing statistics and, optionally,
  // the final vertex values. Allocates a fresh RunContext — byte-identical
  // to the pre-context-split engine.
  RunResult Run(App& app, std::vector<Value>* values_out = nullptr) {
    RunContext<App> rc;
    return Run(app, rc, values_out);
  }

  // Runs the app against a caller-owned RunContext (reusable across runs —
  // the serving fast path; results are identical to a fresh context).
  // `run_options`, when non-null, overrides the context's options for this
  // run only. It may change run-scoped knobs (fault plane, checkpoint and
  // recovery configs, steal switches, max_iterations, expand backend,
  // record_iteration_stats) but must keep the geometry-defining fields the
  // context was built from (device, threads, shards, hub cache, topology).
  RunResult Run(App& app, RunContext<App>& rc,
                std::vector<Value>* values_out = nullptr,
                const EngineOptions* run_options = nullptr) {
    const graph::CsrGraph& g = ctx_->graph();
    const graph::Partition& partition = ctx_->partition();
    const EngineOptions& options =
        run_options != nullptr ? *run_options : ctx_->options();
    // Async mode routes the whole run through the priority-worklist driver
    // (core/async/async_engine.h); everything below is the BSP superstep
    // loop, untouched when mode == kBsp.
    if (options.mode == EngineMode::kAsync) {
      if constexpr (AsyncCapable<App>) {
        AsyncDriver<App> driver(ctx_);
        return driver.Run(app, rc, values_out, options);
      } else {
        GUM_CHECK(false) << "async mode requires an app with AsyncPriority ("
                         << app.name() << " is BSP-only)";
      }
    }
    ThreadPool* pool = ctx_->pool();
    const int n = partition.num_parts;
    const VertexId num_v = g.num_vertices();
    const sim::DeviceParams& dev = options.device;
    const double p_ns = dev.sync_per_peer_us * 1000.0;

    RunResult result;
    result.timeline = sim::Timeline(n);
    // Every transfer of the run is charged and recorded through this plane;
    // its telemetry is exported into the result after the last iteration.
    sim::CommPlane plane(ctx_->topology(), options.contention);
    // Multi-path plans only compose with the fair model: kOff is the
    // bit-compatible legacy conversion, so striping stays disabled there
    // and contention=off runs are byte-identical regardless of the knob.
    const bool multipath =
        options.multipath == sim::MultipathMode::kOn &&
        options.contention == sim::ContentionModel::kFair;
    plane.set_multipath(multipath);

    // SoA vertex state: dense value array + fragment-major frontier arena
    // (core/vertex_state.h), ascending within each fragment.
    VertexState<Value>& state = rc.state;
    auto& values = state.values;
    auto& frontier = state.frontier;
    values.resize(num_v);
    for (VertexId v = 0; v < num_v; ++v) values[v] = app.InitValue(v);
    frontier.BuildByOwner(num_v, partition.owner, n, [&app](VertexId v) {
      return app.IsInitiallyActive(v);
    });

    MessageStore<Message>& store = rc.store;
    store.Reset(num_v);
    // Destination shards: the parallel axis of the merge and apply phases.
    const ShardMap& shard_map = ctx_->shard_map();

    std::vector<int> owner_of_fragment(n);
    for (int i = 0; i < n; ++i) owner_of_fragment[i] = i;
    std::vector<int> active(n);
    for (int i = 0; i < n; ++i) active[i] = i;
    int group_size = n;

    const int fixed_rounds = app.fixed_rounds();
    double prev_wall_ms = 1e18;  // first iteration never triggers OSteal
    // Eq. (4)'s p, estimated online from observed iterations (paper §IV-A:
    // "a parameter that can be estimated during previous iterations").
    double p_estimate_ns = options.estimate_sync_online
                               ? options.sync_prior_us * 1000.0
                               : p_ns;

    // Expand backends and scratch live in the RunContext, reused across
    // iterations (and across runs in serving mode). The SpMV backend's
    // heavy structures are built lazily on first use — and the pull
    // gather's in-edge CSR comes from the shared GraphContext build — so
    // scatter-only runs never pay for them.
    FrontierScatterBackend<App>& scatter_backend = rc.scatter_backend;
    SpmvBackend<App>& spmv_backend = rc.spmv_backend;
    ExpandCounters& expand_counters = rc.expand_counters;
    std::vector<double>& apply_msgs = rc.apply_msgs;
    apply_msgs.assign(n, 0.0);
    ApplyScratch& apply_scratch = rc.apply_scratch;
    FrontierSoA& next_frontier = rc.next_frontier;
    next_frontier.Reset(n);

    // --- fault plane state (DESIGN.md §11) ---
    // With no plane (or an empty plan) every guard below is dead and the
    // run is bit-identical to a fault-free build.
    const fault::FaultPlane* faults =
        options.fault_plane != nullptr && options.fault_plane->active()
            ? options.fault_plane
            : nullptr;
    if (faults != nullptr) {
      GUM_CHECK(faults->num_devices() == n)
          << "fault plane bound to " << faults->num_devices()
          << " devices, engine has " << n;
    }
    const int ckpt_every = options.checkpoint.every;
    std::vector<bool> failed(n, false);
    std::vector<int> survivors = AllDevices(n);
    sim::ReductionSchedule survivor_schedule = ctx_->schedule();
    fault::Checkpoint<Value> ckpt;
    bool recovery_pending = false;
    double pending_lost_ms = 0.0;
    // Monotonic fault accounting, kept outside RunResult so checkpoint
    // rollback never erases it; folded into the result after the loop.
    // Timeline charges DO roll back — the discarded execution (including
    // any recovery charged on it) is re-charged as lost work at restore.
    struct FaultAccounting {
      int checkpoints_taken = 0;
      double checkpoint_bytes_total = 0.0;
      double checkpoint_ms_total = 0.0;
      int devices_failed = 0;
      int recovery_events = 0;
      int fragments_migrated = 0;
      double recovery_detect_ms = 0.0;
      double recovery_restore_ms = 0.0;
      double recovery_migrate_ms = 0.0;
      double lost_work_ms = 0.0;
      double straggler_ms = 0.0;
      int link_fault_iterations = 0;
    } facct;
    const auto fragment_state_bytes = [&](int i) {
      return fault::FragmentStateBytes(partition.part_vertices[i].size(),
                                       frontier.FragmentSize(i),
                                       sizeof(Value));
    };
    // Snapshots everything the loop needs to re-enter at `next_iter`. The
    // initial snapshot is free (state is still host-resident); periodic
    // ones charge their owners a PCIe read-back before being taken.
    const auto take_checkpoint = [&](int next_iter) {
      ckpt.iteration = next_iter;
      ckpt.state = state;
      ckpt.owner_of_fragment = owner_of_fragment;
      ckpt.active = active;
      ckpt.group_size = group_size;
      ckpt.p_estimate_ns = p_estimate_ns;
      ckpt.prev_wall_ms = prev_wall_ms;
      ckpt.result = result;
      ckpt.comm = plane.SnapshotTelemetry();
    };
    if (faults != nullptr) take_checkpoint(0);

    for (int iter = 0; iter < options.max_iterations; ++iter) {
      // --- fail-stop detection at the superstep barrier ---
      if (faults != nullptr) {
        std::vector<int> newly;
        for (const int d : faults->FailuresAt(iter)) {
          // Replay re-crosses the failure iteration; already-dead devices
          // never re-trigger.
          if (!failed[d]) newly.push_back(d);
        }
        if (!newly.empty()) {
          obs::TraceInstant("fault.failstop");
          for (const int d : newly) failed[d] = true;
          survivors.clear();
          std::vector<int> failed_list;
          for (int i = 0; i < n; ++i) {
            (failed[i] ? failed_list : survivors).push_back(i);
          }
          GUM_CHECK(!survivors.empty()) << "fault plan killed every device";
          survivor_schedule =
              sim::ReductionSchedule::BuildWithForbidden(ctx_->topology(),
                                                         failed_list);
          // State is lost only if a dead device owned fragments or worked
          // in the group; a device OSteal already evicted takes nothing
          // with it, so the run continues from live state.
          bool state_lost = false;
          for (const int d : newly) {
            for (int i = 0; i < n; ++i) {
              state_lost = state_lost || owner_of_fragment[i] == d;
            }
            state_lost = state_lost ||
                         std::find(active.begin(), active.end(), d) !=
                             active.end();
          }
          facct.devices_failed += static_cast<int>(newly.size());
          if (state_lost) {
            // Roll back to the last checkpoint; everything charged since
            // (including the lost iterations' walls) becomes lost work,
            // re-charged at the restore barrier below.
            pending_lost_ms = result.total_ms - ckpt.result.total_ms;
            state = ckpt.state;
            owner_of_fragment = ckpt.owner_of_fragment;
            active = ckpt.active;
            group_size = ckpt.group_size;
            p_estimate_ns = ckpt.p_estimate_ns;
            prev_wall_ms = ckpt.prev_wall_ms;
            result = ckpt.result;
            plane.RestoreTelemetry(ckpt.comm);
            iter = ckpt.iteration;
            recovery_pending = true;
          } else {
            // Nothing rolls back: charge the barrier timeout and continue
            // with the shrunk candidate set.
            const double detect_ms =
                options.recovery.detect_timeout_us / 1000.0;
            for (const int d : survivors) {
              result.timeline.Add(iter, d, sim::TimeCategory::kOverhead,
                                  detect_ms);
            }
            facct.recovery_detect_ms += detect_ms;
            ++facct.recovery_events;
          }
        }
        // --- link-fault overlay for this iteration ---
        plane.ClearLinkFaults();
        const auto link_faults = faults->LinkFaultsAt(iter);
        for (const auto& lf : link_faults) {
          plane.SetLinkScale(lf.a, lf.b, lf.scale);
        }
        if (!link_faults.empty()) ++facct.link_fault_iterations;
      }
      if (fixed_rounds >= 0) {
        if (iter >= fixed_rounds) break;
        // Stationary workload: every inner vertex is active each round.
        frontier.Assign(partition.part_vertices);
      }

      // --- Step 1: workload census ---
      std::vector<double> loads(n, 0.0);
      std::vector<graph::FrontierFeatures> features(n);
      std::vector<double> remote_discount(n, 1.0);
      double total_load = 0.0;
      size_t total_frontier = 0;
      {
      GUM_TRACE_SCOPE("gum.census");
      const HubCache& hub_cache = ctx_->hub_cache();
      for (int i = 0; i < n; ++i) {
        double hub_load = 0.0;
        for (VertexId v : frontier.Fragment(i)) {
          loads[i] += g.OutDegree(v);
          if (hub_cache.IsHub(v)) hub_load += g.OutDegree(v);
        }
        total_load += loads[i];
        total_frontier += frontier.FragmentSize(i);
        features[i] = graph::ExtractFrontierFeatures(g, frontier.Fragment(i));
        if (loads[i] > 0) remote_discount[i] = 1.0 - hub_load / loads[i];
      }
      }
      if (fixed_rounds < 0 && total_frontier == 0) break;

      IterationStats stats;
      stats.iteration = iter;
      stats.fragment_load = loads;

      // Per-iteration expand-mode decision (DESIGN.md §12): depends only
      // on the census loads and the constant edge count, so it is
      // deterministic for every thread and shard count.
      const ExpandMode expand_mode = SelectExpandMode(
          options.expand_backend, total_load,
          static_cast<double>(g.num_edges()), options.spmv);

      // --- fault recovery: rebuild ownership over the survivors ---
      // Runs at the first barrier after a rollback: drive the OSteal
      // enumeration over the survivor schedule (dead columns forbidden),
      // then charge detection, checkpoint read-back, migration, and the
      // rolled-back work at this barrier.
      bool recovered_this_iter = false;
      if (recovery_pending) {
        recovery_pending = false;
        recovered_this_iter = true;
        GUM_TRACE_SCOPE("fault.recover");
        const auto cost_surv = BuildCostMatrix(
            features, remote_discount, ctx_->cost_model(), plane, survivors);
        OStealDecision dec = fault::RebuildOwnership(
            cost_surv, loads, survivor_schedule, p_estimate_ns,
            options.osteal, static_cast<int>(survivors.size()),
            options.enable_osteal);
        stats.osteal_evaluated = options.enable_osteal;
        stats.osteal_decision_host_ms = dec.decision_host_ms;
        result.osteal_decision_host_ms_total += dec.decision_host_ms;
        result.osteal_lp_iterations_total += dec.lp_iterations_total;
        result.osteal_milp_nodes_total += dec.milp_nodes_total;
        std::vector<double> frag_bytes(n);
        for (int i = 0; i < n; ++i) frag_bytes[i] = fragment_state_bytes(i);
        const fault::RecoveryCharge charge = fault::ComputeRecoveryCharge(
            options.recovery, owner_of_fragment, dec.owner, failed,
            frag_bytes, multipath ? &plane : nullptr);
        if (dec.group_size != group_size) {
          stats.group_size_changed = true;
          ++result.osteal_shrink_events;
        }
        group_size = dec.group_size;
        owner_of_fragment = dec.owner;
        active = dec.active;
        for (const int d : survivors) {
          result.timeline.Add(iter, d, sim::TimeCategory::kOverhead,
                              charge.per_device_ms[d] + pending_lost_ms);
        }
        facct.recovery_detect_ms += charge.detect_ms;
        facct.recovery_restore_ms += charge.restore_ms;
        facct.recovery_migrate_ms += charge.migrate_ms;
        facct.lost_work_ms += pending_lost_ms;
        facct.fragments_migrated += charge.fragments_migrated;
        ++facct.recovery_events;
        pending_lost_ms = 0.0;
        obs::TraceInstant("fault.recover");
        if (obs::MetricsEnabled()) {
          auto& reg = obs::MetricsRegistry::Global();
          reg.GetCounter("gum_fault_recoveries_total").Increment();
          reg.GetCounter("gum_fault_fragments_migrated_total")
              .Increment(charge.fragments_migrated);
        }
      }

      // --- Step 2: ownership stealing ---
      // Evaluate OSteal when the previous iteration was latency-bound, or
      // whenever the group is already shrunk (so it can grow back as the
      // workload recovers, paper §IV-B). After a fail-stop the enumeration
      // runs over the survivor schedule, capped at the survivor count —
      // with no failures both equal the full schedule, bit for bit.
      if (!recovered_this_iter && options.enable_osteal && n > 1 &&
          (prev_wall_ms < options.osteal.t3_trigger_ms ||
           group_size < n)) {
        GUM_TRACE_SCOPE("gum.osteal");
        const auto cost_full =
            BuildCostMatrix(features, remote_discount, ctx_->cost_model(),
                            plane, survivors);
        OStealDecision dec = DecideOSteal(cost_full, loads,
                                          survivor_schedule, p_estimate_ns,
                                          options.osteal,
                                          static_cast<int>(survivors.size()));
        stats.osteal_evaluated = true;
        stats.osteal_decision_host_ms = dec.decision_host_ms;
        result.osteal_decision_host_ms_total += dec.decision_host_ms;
        result.osteal_lp_iterations_total += dec.lp_iterations_total;
        result.osteal_milp_nodes_total += dec.milp_nodes_total;
        if (dec.group_size != group_size) {
          // Migrate residual frontier status from re-owned fragments.
          if (multipath) {
            // Bulk ownership migrations stripe across link-disjoint paths
            // and contend with each other as one settled batch.
            sim::TransferBatch migration;
            for (int i = 0; i < n; ++i) {
              if (dec.owner[i] != owner_of_fragment[i] &&
                  frontier.FragmentSize(i) > 0) {
                const double bytes =
                    static_cast<double>(frontier.FragmentSize(i)) *
                    dev.bytes_per_message;
                migration.AddBulk(owner_of_fragment[i], dec.owner[i], bytes,
                                  dec.owner[i]);
              }
            }
            if (!migration.empty()) {
              const sim::SettleResult settled = plane.Settle(migration);
              for (int d = 0; d < n; ++d) {
                if (settled.tag_comm_ns[d] > 0.0) {
                  result.timeline.Add(iter, d, sim::TimeCategory::kOverhead,
                                      settled.tag_comm_ns[d] / 1e6);
                }
              }
            }
          } else {
            for (int i = 0; i < n; ++i) {
              if (dec.owner[i] != owner_of_fragment[i] &&
                  frontier.FragmentSize(i) > 0) {
                const double bytes =
                    static_cast<double>(frontier.FragmentSize(i)) *
                    dev.bytes_per_message;
                const double ns = plane.PointToPointNs(
                    owner_of_fragment[i], dec.owner[i], bytes);
                result.timeline.Add(iter, dec.owner[i],
                                    sim::TimeCategory::kOverhead, ns / 1e6);
              }
            }
          }
          group_size = dec.group_size;
          owner_of_fragment = dec.owner;
          active = dec.active;
          stats.group_size_changed = true;
          ++result.osteal_shrink_events;
        }
        // Policy generation itself costs time on the coordinator and a
        // broadcast to every worker.
        const double osteal_sim_us = 12.0 + 4.0 * n;
        for (int d : active) {
          result.timeline.Add(iter, d, sim::TimeCategory::kOverhead,
                              osteal_sim_us / 1000.0);
        }
        result.osteal_sim_overhead_ms += osteal_sim_us / 1000.0;
      }
      stats.group_size = group_size;

      // --- Step 3: frontier stealing ---
      // Non-scatter modes take the identity plan: the linear-algebra
      // backend has no per-executor frontier ranges to steal (push runs
      // the identity plan, pull parallelizes over destinations).
      FStealDecision fs;
      if (expand_mode == ExpandMode::kScatter && options.enable_fsteal &&
          group_size > 1) {
        GUM_TRACE_SCOPE("gum.fsteal");
        const auto cost = BuildCostMatrix(features, remote_discount,
                                          ctx_->cost_model(), plane, active);
        fs = DecideFSteal(cost, loads, owner_of_fragment, active,
                          options.fsteal);
      } else {
        fs.assignment.assign(n, std::vector<double>(n, 0.0));
        for (int i = 0; i < n; ++i) {
          fs.assignment[i][owner_of_fragment[i]] = loads[i];
        }
      }
      stats.fsteal_applied = fs.applied;
      stats.fsteal_decision_host_ms = fs.decision_host_ms;
      stats.fsteal_plan_cells = fs.plan_cells;
      result.fsteal_decision_host_ms_total += fs.decision_host_ms;
      result.fsteal_lp_iterations_total += fs.lp_iterations;
      result.fsteal_milp_nodes_total += fs.milp_nodes;
      result.fsteal_plan_cells_total += fs.plan_cells;
      if (fs.applied) ++result.fsteal_applied_iterations;

      // --- Step 4: process the frontiers (pluggable expand backend) ---
      std::fill(apply_msgs.begin(), apply_msgs.end(), 0.0);
      {
        GUM_TRACE_SCOPE("gum.expand");
        switch (expand_mode) {
          case ExpandMode::kScatter:
            scatter_backend.Expand(pool, g, partition, &ctx_->hub_cache(),
                                   owner_of_fragment, active, fs, loads, app,
                                   values, frontier, shard_map, store,
                                   &expand_counters);
            break;
          case ExpandMode::kSpmvPush:
            spmv_backend.ExpandPush(pool, g, partition,
                                    owner_of_fragment, app, values, frontier,
                                    shard_map, store, &expand_counters);
            break;
          case ExpandMode::kSpmvPull:
            spmv_backend.UseSharedPullEdges(&ctx_->pull_edges());
            spmv_backend.ExpandPull(pool, g, partition,
                                    owner_of_fragment, app, values, frontier,
                                    shard_map, store, &expand_counters);
            break;
        }
      }
      const std::vector<std::vector<double>>& edges_done =
          expand_counters.edges_done;
      const std::vector<std::vector<double>>& hub_edges =
          expand_counters.hub_edges;
      const std::vector<std::vector<double>>& agg_msgs =
          expand_counters.agg_msgs;
      const std::vector<std::vector<double>>& raw_msgs =
          expand_counters.raw_msgs;
      const double stolen_edges_this_iter = expand_counters.stolen_edges;
      result.edges_processed += expand_counters.edges_processed;
      result.stolen_edges_total += stolen_edges_this_iter;
      stats.stolen_edges = stolen_edges_this_iter;

      // --- apply phase (end of superstep; next frontier) ---
      {
        GUM_TRACE_SCOPE("gum.apply");
        if (fixed_rounds >= 0) {
          // Stationary workload: the frontier is rebuilt from part_vertices
          // at the top of the next round, so no next-frontier is built.
          ApplySuperstep(pool, shard_map, partition, app, store,
                         values, /*fixed_rounds=*/true, &apply_scratch,
                         nullptr, &apply_msgs);
        } else {
          ApplySuperstep(pool, shard_map, partition, app, store,
                         values, /*fixed_rounds=*/false, &apply_scratch,
                         &next_frontier, &apply_msgs);
          std::swap(frontier, next_frontier);
        }
      }

      // --- time accounting ---
      // With multipath the census/aggregation sync follows a topology-aware
      // reduction tree over this iteration's active group (rebuilt per
      // iteration so link faults and group changes reshape it), and the
      // FSteal fragment payloads are bulk-hinted for striping.
      sim::ReductionTree census_tree;
      if (multipath) census_tree = plane.BuildCensusTree(active);
      const TimeAccountingSummary acct = [&] {
        GUM_TRACE_SCOPE("gum.account");
        return AccountSuperstepTime(
            iter, plane, dev, p_ns, options.enable_message_aggregation,
            features, edges_done, hub_edges, agg_msgs, raw_msgs, apply_msgs,
            owner_of_fragment, active, fs, stolen_edges_this_iter, &result,
            multipath ? &census_tree : nullptr, multipath);
      }();

      // --- fault plane: straggler slowdown ---
      // A straggler's kernels run `factor`x slower this iteration; charge
      // the extra compute on whatever the accounting layer charged it
      // (including stolen work it executed).
      if (faults != nullptr) {
        for (const int d : active) {
          const double slow = faults->ComputeSlowdown(d, iter);
          if (slow > 1.0) {
            const double extra =
                (slow - 1.0) *
                result.timeline.Get(iter, d, sim::TimeCategory::kCompute);
            if (extra > 0.0) {
              result.timeline.Add(iter, d, sim::TimeCategory::kCompute,
                                  extra);
              facct.straggler_ms += extra;
            }
          }
        }
      }

      // Refresh the p estimate from this iteration's observed barrier cost:
      // average per-device overhead minus the kernel-launch time actually
      // charged by the accounting layer, divided by the group size.
      if (options.estimate_sync_online && !active.empty()) {
        double overhead_sum = 0;
        for (const int d : active) {
          overhead_sum +=
              result.timeline.Get(iter, d, sim::TimeCategory::kOverhead);
        }
        const double per_device_ns =
            (overhead_sum * 1e6 - acct.kernel_launch_ns_total) /
            active.size();
        const double observed_p =
            std::max(0.0, per_device_ns / active.size());
        p_estimate_ns = (1.0 - options.sync_ewma_alpha) * p_estimate_ns +
                        options.sync_ewma_alpha * observed_p;
      }

      // --- fault plane: periodic checkpoint ---
      // Each active owner writes its fragments' state to host storage over
      // PCIe; the write is charged inside this iteration's wall (and is
      // therefore part of its own snapshot's accounted past).
      const bool checkpoint_due =
          ckpt_every > 0 && (iter + 1) % ckpt_every == 0;
      if (checkpoint_due) {
        GUM_TRACE_SCOPE("fault.checkpoint");
        double slowest_ms = 0.0;
        for (const int d : active) {
          double dev_bytes = 0.0;
          for (int i = 0; i < n; ++i) {
            if (owner_of_fragment[i] == d) dev_bytes += fragment_state_bytes(i);
          }
          // With multipath the write-back stripes across the device's own
          // PCIe host lane plus an NVLink relay through its fastest peer.
          const double ms =
              multipath
                  ? dev_bytes / plane.CheckpointWritebackGbps(d) / 1e6
                  : fault::CheckpointTransferMs(dev_bytes);
          result.timeline.Add(iter, d, sim::TimeCategory::kOverhead, ms);
          facct.checkpoint_bytes_total += dev_bytes;
          slowest_ms = std::max(slowest_ms, ms);
        }
        ++facct.checkpoints_taken;
        facct.checkpoint_ms_total += slowest_ms;
        obs::TraceInstant("fault.checkpoint");
      }

      const double wall = result.timeline.IterationWall(iter);
      result.total_ms += wall;
      stats.wall_ms = wall;
      stats.device_busy_ms.resize(n);
      for (int d = 0; d < n; ++d) {
        stats.device_busy_ms[d] = result.timeline.DeviceIterationTotal(iter, d);
      }
      if (options.record_iteration_stats) {
        result.iteration_stats.push_back(std::move(stats));
      }
      if (obs::MetricsEnabled()) {
        auto& reg = obs::MetricsRegistry::Global();
        reg.GetCounter("gum_iterations_total").Increment();
        if (fs.applied) reg.GetCounter("gum_fsteal_applied_total").Increment();
        if (stats.osteal_evaluated) {
          reg.GetCounter("gum_osteal_evaluations_total").Increment();
        }
        reg.GetHistogram("gum_fsteal_decision_us")
            .Observe(static_cast<uint64_t>(fs.decision_host_ms * 1000.0));
        reg.GetHistogram("gum_iteration_frontier_vertices")
            .Observe(static_cast<uint64_t>(total_frontier));
        reg.GetGauge("gum_group_size").Set(group_size);
        reg.GetGauge("gum_expand_backend").Set(static_cast<int>(expand_mode));
        reg.GetCounter("gum_expand_iterations_total",
                       {{"backend", ExpandModeName(expand_mode)}})
            .Increment();
        // Serving-mode memory residency: the high-water arenas this
        // RunContext keeps across iterations and queries.
        reg.GetGauge("gum_frontier_arena_bytes")
            .Set(static_cast<double>(rc.FrontierArenaBytes()));
        reg.GetGauge("gum_staging_bytes")
            .Set(static_cast<double>(rc.StagingBytes()));
      }
      prev_wall_ms = wall;
      result.iterations = iter + 1;
      // Snapshot after the wall is in total_ms, so a restore resumes with
      // exactly the accounted past of this barrier. Without a fault plan
      // the snapshot is never read; only the charge above matters.
      if (checkpoint_due && faults != nullptr) take_checkpoint(iter + 1);
    }

    // Fold the monotonic fault accounting into the result.
    result.fault_plan_active = faults != nullptr;
    result.checkpoints_taken = facct.checkpoints_taken;
    result.checkpoint_bytes_total = facct.checkpoint_bytes_total;
    result.checkpoint_ms_total = facct.checkpoint_ms_total;
    result.devices_failed = facct.devices_failed;
    result.recovery_events = facct.recovery_events;
    result.fragments_migrated = facct.fragments_migrated;
    result.recovery_detect_ms = facct.recovery_detect_ms;
    result.recovery_restore_ms = facct.recovery_restore_ms;
    result.recovery_migrate_ms = facct.recovery_migrate_ms;
    result.lost_work_ms = facct.lost_work_ms;
    result.straggler_ms = facct.straggler_ms;
    result.link_fault_iterations = facct.link_fault_iterations;
    if (faults != nullptr) plane.ClearLinkFaults();

    result.link_bytes = plane.link_bytes();
    result.payload_bytes = plane.payload_bytes();
    result.link_busy_ms = plane.link_busy_ms();
    result.multipath_active = multipath;
    result.multipath = plane.multipath_stats();

    if (values_out != nullptr) *values_out = std::move(values);
    return result;
  }

 private:
  static std::vector<int> AllDevices(int n) {
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    return all;
  }

  std::unique_ptr<GraphContext> owned_ctx_;
  const GraphContext* ctx_;
};

}  // namespace gum::core

#endif  // GUM_CORE_ENGINE_H_
