file(REMOVE_RECURSE
  "CMakeFiles/table5_cost_model.dir/table5_cost_model.cc.o"
  "CMakeFiles/table5_cost_model.dir/table5_cost_model.cc.o.d"
  "table5_cost_model"
  "table5_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
