// Regression model interface + the RMSRE metric of paper Eq. (3).

#ifndef GUM_ML_MODEL_H_
#define GUM_ML_MODEL_H_

#include <memory>
#include <span>
#include <string>

#include "common/status.h"
#include "ml/dataset.h"

namespace gum::ml {

class RegressionModel {
 public:
  virtual ~RegressionModel() = default;

  virtual Status Fit(const Dataset& data) = 0;
  virtual double Predict(std::span<const double> features) const = 0;
  virtual std::string name() const = 0;
};

// Root mean squared *relative* error: sqrt(mean(((g - t) / t)^2)).
// The paper's loss function (Eq. 3) and Table-V accuracy metric.
double Rmsre(const RegressionModel& model, const Dataset& data);

}  // namespace gum::ml

#endif  // GUM_ML_MODEL_H_
