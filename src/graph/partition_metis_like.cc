// Multilevel k-way partitioner in the METIS tradition (Karypis & Kumar).
//
// Phases:
//   1. Coarsening: repeated heavy-edge matching; matched pairs merge into a
//      super-vertex whose weight is the sum of member weights (weight =
//      1 + out-degree so that balancing super-vertices balances edges).
//   2. Initial partition: greedy growing — parts claim the heaviest
//      unassigned super-vertex and grow along the strongest adjacency until
//      their weight quota is met.
//   3. Uncoarsening + refinement: project the assignment down one level and
//      run boundary FM-style passes: move a boundary vertex to the adjacent
//      part with the best cut gain whenever balance slack allows.
//
// This is a faithful simplification, not a METIS clone: it minimizes the
// same objective (edge cut under a balance constraint) with the same
// multilevel structure, which is what paper Exp-6 (Fig. 11) needs from its
// "metis" configuration.

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "graph/partition.h"

namespace gum::graph {

namespace {

// Symmetric weighted adjacency for one coarsening level.
struct Level {
  // adj[u] = list of (neighbor, edge_weight); symmetric, no self loops.
  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> adj;
  std::vector<uint64_t> vertex_weight;
  // Map from this level's vertex to the coarser level's vertex.
  std::vector<uint32_t> coarse_of;
};

Level BuildFinestLevel(const CsrGraph& g) {
  Level level;
  const VertexId n = g.num_vertices();
  level.vertex_weight.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    level.vertex_weight[v] = 1 + g.OutDegree(v);
  }
  // Symmetrize and accumulate multi-edge weights.
  std::vector<std::unordered_map<uint32_t, uint64_t>> acc(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u == v) continue;
      acc[u][v] += 1;
      acc[v][u] += 1;
    }
  }
  level.adj.resize(n);
  for (VertexId u = 0; u < n; ++u) {
    level.adj[u].assign(acc[u].begin(), acc[u].end());
    std::sort(level.adj[u].begin(), level.adj[u].end());
  }
  return level;
}

// Heavy-edge matching; returns the coarser level. Sets level.coarse_of.
Level Coarsen(Level& level, Rng& rng) {
  const uint32_t n = static_cast<uint32_t>(level.adj.size());
  std::vector<uint32_t> match(n, n);  // n = unmatched
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (uint32_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  for (uint32_t u : order) {
    if (match[u] != n) continue;
    uint32_t best = n;
    uint64_t best_weight = 0;
    for (const auto& [v, w] : level.adj[u]) {
      if (match[v] == n && w > best_weight) {
        best = v;
        best_weight = w;
      }
    }
    if (best != n) {
      match[u] = best;
      match[best] = u;
    } else {
      match[u] = u;  // matched with itself
    }
  }

  level.coarse_of.assign(n, 0);
  uint32_t next_id = 0;
  for (uint32_t u = 0; u < n; ++u) {
    if (match[u] >= u || match[u] == n) {
      // u is the representative of its pair (or solo).
      if (match[u] == n) match[u] = u;
      if (match[u] >= u) {
        level.coarse_of[u] = next_id;
        if (match[u] != u) level.coarse_of[match[u]] = next_id;
        ++next_id;
      }
    }
  }

  Level coarse;
  coarse.vertex_weight.assign(next_id, 0);
  std::vector<std::unordered_map<uint32_t, uint64_t>> acc(next_id);
  for (uint32_t u = 0; u < n; ++u) {
    const uint32_t cu = level.coarse_of[u];
    coarse.vertex_weight[cu] += level.vertex_weight[u];
  }
  // Each symmetric edge appears in both endpoint lists; visiting all lists
  // double-counts, so accumulate from u's list only toward cv != cu once per
  // direction and halve implicitly by only adding from the u side.
  for (uint32_t u = 0; u < n; ++u) {
    const uint32_t cu = level.coarse_of[u];
    for (const auto& [v, w] : level.adj[u]) {
      const uint32_t cv = level.coarse_of[v];
      if (cu != cv) acc[cu][cv] += w;  // symmetric input keeps acc symmetric
    }
  }
  coarse.adj.resize(next_id);
  for (uint32_t cu = 0; cu < next_id; ++cu) {
    coarse.adj[cu].assign(acc[cu].begin(), acc[cu].end());
    std::sort(coarse.adj[cu].begin(), coarse.adj[cu].end());
  }
  return coarse;
}

// Greedy growing initial partition on the coarsest level.
std::vector<uint32_t> InitialPartition(const Level& level, int num_parts,
                                       double balance_slack, Rng& rng) {
  const uint32_t n = static_cast<uint32_t>(level.adj.size());
  const uint64_t total_weight =
      std::accumulate(level.vertex_weight.begin(), level.vertex_weight.end(),
                      uint64_t{0});
  const double quota =
      balance_slack * static_cast<double>(total_weight) / num_parts;

  std::vector<uint32_t> part(n, static_cast<uint32_t>(num_parts));
  std::vector<uint64_t> part_weight(num_parts, 0);

  // Seed order: heaviest vertices first (hubs anchor parts).
  std::vector<uint32_t> by_weight(n);
  std::iota(by_weight.begin(), by_weight.end(), 0);
  std::sort(by_weight.begin(), by_weight.end(), [&](uint32_t a, uint32_t b) {
    return level.vertex_weight[a] > level.vertex_weight[b];
  });

  uint32_t seed_cursor = 0;
  for (int p = 0; p < num_parts; ++p) {
    // Grow part p from the next unassigned seed.
    while (seed_cursor < n && part[by_weight[seed_cursor]] !=
                                  static_cast<uint32_t>(num_parts)) {
      ++seed_cursor;
    }
    if (seed_cursor >= n) break;
    std::vector<uint32_t> frontier{by_weight[seed_cursor]};
    part[by_weight[seed_cursor]] = static_cast<uint32_t>(p);
    part_weight[p] += level.vertex_weight[by_weight[seed_cursor]];
    while (!frontier.empty() &&
           static_cast<double>(part_weight[p]) < quota) {
      const uint32_t u = frontier.back();
      frontier.pop_back();
      // Strongest-first expansion.
      std::vector<std::pair<uint32_t, uint64_t>> nbrs(level.adj[u]);
      std::sort(nbrs.begin(), nbrs.end(),
                [](const auto& a, const auto& b) {
                  return a.second > b.second;
                });
      for (const auto& [v, w] : nbrs) {
        (void)w;
        if (part[v] != static_cast<uint32_t>(num_parts)) continue;
        if (static_cast<double>(part_weight[p] + level.vertex_weight[v]) >
            quota) {
          continue;
        }
        part[v] = static_cast<uint32_t>(p);
        part_weight[p] += level.vertex_weight[v];
        frontier.push_back(v);
      }
    }
  }
  // Any leftovers go to the lightest part.
  for (uint32_t u = 0; u < n; ++u) {
    if (part[u] == static_cast<uint32_t>(num_parts)) {
      const int lightest = static_cast<int>(
          std::min_element(part_weight.begin(), part_weight.end()) -
          part_weight.begin());
      part[u] = static_cast<uint32_t>(lightest);
      part_weight[lightest] += level.vertex_weight[u];
    }
  }
  (void)rng;
  return part;
}

// Boundary FM-style refinement on one level; mutates `part` in place.
void Refine(const Level& level, std::vector<uint32_t>& part, int num_parts,
            double balance_slack, int passes) {
  const uint32_t n = static_cast<uint32_t>(level.adj.size());
  std::vector<uint64_t> part_weight(num_parts, 0);
  for (uint32_t u = 0; u < n; ++u) {
    part_weight[part[u]] += level.vertex_weight[u];
  }
  const uint64_t total_weight =
      std::accumulate(part_weight.begin(), part_weight.end(), uint64_t{0});
  const double quota =
      balance_slack * static_cast<double>(total_weight) / num_parts;

  std::vector<uint64_t> gain(num_parts);
  for (int pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (uint32_t u = 0; u < n; ++u) {
      if (level.adj[u].empty()) continue;
      std::fill(gain.begin(), gain.end(), 0);
      for (const auto& [v, w] : level.adj[u]) gain[part[v]] += w;
      const uint32_t from = part[u];
      uint32_t best = from;
      for (int p = 0; p < num_parts; ++p) {
        if (p == static_cast<int>(from)) continue;
        if (gain[p] > gain[best] &&
            static_cast<double>(part_weight[p] + level.vertex_weight[u]) <=
                quota) {
          best = static_cast<uint32_t>(p);
        }
      }
      if (best != from && gain[best] > gain[from]) {
        part[u] = best;
        part_weight[from] -= level.vertex_weight[u];
        part_weight[best] += level.vertex_weight[u];
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

std::vector<uint32_t> MetisLikeAssign(const CsrGraph& g, int num_parts,
                                      const PartitionOptions& options) {
  Rng rng(options.seed);
  std::vector<Level> levels;
  levels.push_back(BuildFinestLevel(g));
  const uint32_t target = static_cast<uint32_t>(
      std::max(16, options.coarsen_target_multiplier * num_parts));
  while (levels.back().adj.size() > target && levels.size() < 40) {
    Level coarse = Coarsen(levels.back(), rng);
    if (coarse.adj.size() >= levels.back().adj.size() * 95 / 100) {
      break;  // matching stalled (e.g. star graph)
    }
    levels.push_back(std::move(coarse));
  }

  std::vector<uint32_t> part = InitialPartition(
      levels.back(), num_parts, options.balance_slack, rng);
  Refine(levels.back(), part, num_parts, options.balance_slack,
         options.refinement_passes);

  // Project back down through the levels, refining at each.
  for (size_t li = levels.size(); li-- > 1;) {
    const Level& fine = levels[li - 1];
    std::vector<uint32_t> fine_part(fine.adj.size());
    for (size_t u = 0; u < fine.adj.size(); ++u) {
      fine_part[u] = part[fine.coarse_of[u]];
    }
    part = std::move(fine_part);
    Refine(fine, part, num_parts, options.balance_slack,
           options.refinement_passes);
  }
  GUM_CHECK(part.size() == g.num_vertices());
  return part;
}

}  // namespace gum::graph
