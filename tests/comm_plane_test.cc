// CommPlane: routing, the two contention models, telemetry semantics, and
// the engine-level contract that the `contention` knob changes only time
// and telemetry — never results.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "algos/apps.h"
#include "baselines/groute_like.h"
#include "baselines/gunrock_like.h"
#include "core/engine.h"
#include "sim/comm_plane.h"
#include "sim/topology.h"
#include "tests/test_util.h"

namespace gum::sim {
namespace {

using algos::BfsApp;
using algos::DeltaPageRankApp;
using algos::SsspApp;
using test::MakePartition;
using test::MaxDegreeSource;
using test::SocialGraph;
using test::TestEngineOptions;
using test::Topo;

Topology Line3() {
  // 0 -- 1 -- 2 at 50 GB/s; no direct 0 -- 2 link, so (0, 2) routes via 1
  // (2-hop at kTransitEfficiency * 50 = 25 GB/s, better than PCIe's 10).
  auto t = Topology::FromMatrix(
      {{0.0, 50.0, 0.0}, {50.0, 0.0, 50.0}, {0.0, 50.0, 0.0}});
  EXPECT_TRUE(t.ok());
  return *t;
}

Topology Isolated2() {
  // No NVLink at all: every pair falls back to PCIe.
  auto t = Topology::FromMatrix({{0.0, 0.0}, {0.0, 0.0}});
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(CommPlaneTest, ParseContentionModel) {
  auto off = ParseContentionModel("off");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*off, ContentionModel::kOff);
  auto fair = ParseContentionModel("fair");
  ASSERT_TRUE(fair.ok());
  EXPECT_EQ(*fair, ContentionModel::kFair);
  EXPECT_FALSE(ParseContentionModel("tcp").ok());
  EXPECT_STREQ(ContentionModelName(ContentionModel::kOff), "off");
  EXPECT_STREQ(ContentionModelName(ContentionModel::kFair), "fair");
}

TEST(CommPlaneTest, RoutePicksTransitAndPcie) {
  const CommPlane plane(Line3());
  const CommRoute direct = plane.Route(0, 1);
  EXPECT_EQ(direct.transit, -1);
  EXPECT_FALSE(direct.via_pcie);
  EXPECT_DOUBLE_EQ(direct.point_to_point_gbps, 50.0);

  const CommRoute routed = plane.Route(0, 2);
  EXPECT_EQ(routed.transit, 1);
  EXPECT_DOUBLE_EQ(routed.point_to_point_gbps,
                   50.0 * Topology::kTransitEfficiency);

  const CommPlane pcie(Isolated2());
  const CommRoute fallback = pcie.Route(0, 1);
  EXPECT_EQ(fallback.transit, -1);
  EXPECT_TRUE(fallback.via_pcie);
  EXPECT_DOUBLE_EQ(fallback.point_to_point_gbps, Topology::kPcieGBps);
}

TEST(CommPlaneTest, DirectOnlyPolicyNeverRoutes) {
  const CommPlane plane(Line3(), ContentionModel::kOff,
                        RoutePolicy::kDirectOnly);
  const CommRoute r = plane.Route(0, 2);
  EXPECT_EQ(r.transit, -1);
  EXPECT_TRUE(r.via_pcie);
  EXPECT_DOUBLE_EQ(r.point_to_point_gbps, Topology::kPcieGBps);
  EXPECT_DOUBLE_EQ(plane.PointToPointNs(0, 2, 100.0),
                   100.0 / Topology::kPcieGBps);
}

TEST(CommPlaneTest, OffModeMatchesEffectiveBandwidth) {
  const auto topo = Topology::HybridCubeMesh8();
  CommPlane plane(topo);  // kOff
  TransferBatch batch;
  batch.Add(0, 1, 1e6, 0);
  batch.Add(0, 5, 2e6, 0);
  batch.Add(3, 2, 5e5, 3);
  const SettleResult settled = plane.Settle(batch);
  ASSERT_EQ(settled.completion_ns.size(), 3u);
  // Solo duration at the legacy path bandwidth, bit for bit.
  EXPECT_DOUBLE_EQ(settled.completion_ns[0],
                   1e6 / topo.EffectiveBandwidth(0, 1));
  EXPECT_DOUBLE_EQ(settled.completion_ns[1],
                   2e6 / topo.EffectiveBandwidth(0, 5));
  EXPECT_DOUBLE_EQ(settled.completion_ns[2],
                   5e5 / topo.EffectiveBandwidth(3, 2));
  // Tag charge is the legacy accumulator: enqueue-order sum per tag.
  EXPECT_DOUBLE_EQ(settled.tag_comm_ns[0],
                   1e6 / topo.EffectiveBandwidth(0, 1) +
                       2e6 / topo.EffectiveBandwidth(0, 5));
  EXPECT_DOUBLE_EQ(settled.tag_comm_ns[3],
                   5e5 / topo.EffectiveBandwidth(3, 2));
  // Off-mode telemetry records endpoints: link bytes == payload bytes.
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][1], 1e6);
  EXPECT_DOUBLE_EQ(plane.payload_bytes()[0][1], 1e6);
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][5], 2e6);
}

TEST(CommPlaneTest, FairSharesASingleLane) {
  const auto topo = Topology::FullyConnected(2, 50.0);
  // Solo: the full 50 GB/s lane.
  {
    CommPlane plane(topo, ContentionModel::kFair);
    TransferBatch batch;
    batch.Add(0, 1, 1e6, 0);
    const SettleResult s = plane.Settle(batch);
    EXPECT_DOUBLE_EQ(s.completion_ns[0], 1e6 / 50.0);
  }
  // Two transfers on the same directed lane: each gets half the bandwidth,
  // both finish at twice the solo time.
  CommPlane plane(topo, ContentionModel::kFair);
  TransferBatch batch;
  batch.Add(0, 1, 1e6, 0);
  batch.Add(0, 1, 1e6, 1);
  const SettleResult s = plane.Settle(batch);
  EXPECT_DOUBLE_EQ(s.completion_ns[0], 1e6 / 25.0);
  EXPECT_DOUBLE_EQ(s.completion_ns[1], 1e6 / 25.0);
  // Fair tag charge is the makespan of the tag's transfers.
  EXPECT_DOUBLE_EQ(s.tag_comm_ns[0], 1e6 / 25.0);
  EXPECT_DOUBLE_EQ(s.tag_comm_ns[1], 1e6 / 25.0);
  // The lane was busy for the whole batch; bytes sum over both users.
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][1], 2e6);
  EXPECT_DOUBLE_EQ(plane.link_busy_ms()[0][1], (1e6 / 25.0) / 1e6);
}

TEST(CommPlaneTest, FairDisjointLanesAreIndependent) {
  const auto topo = Topology::FullyConnected(2, 50.0);
  CommPlane plane(topo, ContentionModel::kFair);
  TransferBatch batch;
  batch.Add(0, 1, 1e6, 0);
  batch.Add(1, 0, 4e6, 1);  // the opposite directed lane: no sharing
  const SettleResult s = plane.Settle(batch);
  EXPECT_DOUBLE_EQ(s.completion_ns[0], 1e6 / 50.0);
  EXPECT_DOUBLE_EQ(s.completion_ns[1], 4e6 / 50.0);
}

TEST(CommPlaneTest, FairTransitChargesBothHops) {
  CommPlane plane(Line3(), ContentionModel::kFair);
  TransferBatch batch;
  batch.Add(0, 2, 1e6, 0);  // routed via device 1
  batch.Add(0, 1, 1e6, 1);  // competes on the first hop
  const SettleResult s = plane.Settle(batch);
  // Both transfers share lane 0 -> 1 (25 GB/s each); the routed one holds
  // lane 1 -> 2 as well but that lane is uncontended.
  EXPECT_DOUBLE_EQ(s.completion_ns[0], 1e6 / 25.0);
  EXPECT_DOUBLE_EQ(s.completion_ns[1], 1e6 / 25.0);
  // Traffic telemetry charges the routed transfer on BOTH hops...
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][1], 2e6);
  EXPECT_DOUBLE_EQ(plane.link_bytes()[1][2], 1e6);
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][2], 0.0);
  // ...while payload telemetry counts endpoints exactly once.
  EXPECT_DOUBLE_EQ(plane.payload_bytes()[0][2], 1e6);
  EXPECT_DOUBLE_EQ(plane.payload_bytes()[0][1], 1e6);
  EXPECT_DOUBLE_EQ(plane.payload_bytes()[1][2], 0.0);
}

TEST(CommPlaneTest, FairPcieFallbackSharesThePciePool) {
  CommPlane plane(Isolated2(), ContentionModel::kFair);
  TransferBatch batch;
  batch.Add(0, 1, 1e6, 0);
  batch.Add(0, 1, 1e6, 1);
  const SettleResult s = plane.Settle(batch);
  // Two transfers split the 10 GB/s PCIe path.
  EXPECT_DOUBLE_EQ(s.completion_ns[0], 1e6 / 5.0);
  EXPECT_DOUBLE_EQ(s.completion_ns[1], 1e6 / 5.0);
}

TEST(CommPlaneTest, FairCompletionsAreEnqueueOrderInvariant) {
  const auto topo = Topology::HybridCubeMesh8();
  TransferBatch forward;
  TransferBatch reversed;
  std::vector<Transfer> transfers;
  for (int i = 0; i < 24; ++i) {
    const int src = i % 8;
    const int dst = (src + 1 + (i * 5) % 7) % 8;
    transfers.push_back({src, dst, 1e5 * (1 + i % 13), src});
  }
  for (const Transfer& t : transfers) {
    forward.Add(t.src, t.dst, t.bytes, t.tag);
  }
  for (auto it = transfers.rbegin(); it != transfers.rend(); ++it) {
    reversed.Add(it->src, it->dst, it->bytes, it->tag);
  }
  CommPlane plane_f(topo, ContentionModel::kFair);
  CommPlane plane_r(topo, ContentionModel::kFair);
  const SettleResult sf = plane_f.Settle(forward);
  const SettleResult sr = plane_r.Settle(reversed);
  const size_t m = transfers.size();
  for (size_t i = 0; i < m; ++i) {
    EXPECT_DOUBLE_EQ(sf.completion_ns[i], sr.completion_ns[m - 1 - i]);
  }
  for (size_t tag = 0; tag < sf.tag_comm_ns.size(); ++tag) {
    EXPECT_DOUBLE_EQ(sf.tag_comm_ns[tag], sr.tag_comm_ns[tag]);
  }
  EXPECT_EQ(plane_f.link_bytes(), plane_r.link_bytes());
}

TEST(CommPlaneTest, FairConservesBytes) {
  // Total traffic absorbed by the lanes at their achieved rates equals the
  // enqueued per-hop bytes (the max-min allocation never loses work).
  const auto topo = Topology::HybridCubeMesh8();
  CommPlane plane(topo, ContentionModel::kFair);
  TransferBatch batch;
  double payload = 0.0;
  for (int i = 0; i < 16; ++i) {
    const int src = (i * 3) % 8;
    const int dst = (src + 2 + i % 5) % 8;
    if (src == dst) continue;
    batch.Add(src, dst, 7e4 * (1 + i), src);
    payload += 7e4 * (1 + i);
  }
  (void)plane.Settle(batch);
  double total_payload = 0.0;
  double total_traffic = 0.0;
  for (const auto& row : plane.payload_bytes()) {
    for (double v : row) total_payload += v;
  }
  for (const auto& row : plane.link_bytes()) {
    for (double v : row) total_traffic += v;
  }
  EXPECT_DOUBLE_EQ(total_payload, payload);
  // Per-hop traffic is at least the payload (transit doubles some of it).
  EXPECT_GE(total_traffic, payload);
}

TEST(CommPlaneTest, ReserveLaneQueuesOnlyUnderFair) {
  const auto topo = Topology::FullyConnected(2, 50.0);
  const double lane_ms = 1e6 / 50.0 / 1e6;
  {
    CommPlane plane(topo, ContentionModel::kOff);
    EXPECT_DOUBLE_EQ(plane.ReserveLane(0, 1, 0.0, 1e6), 0.0);
    // Legacy lanes are infinitely shareable: no queueing, ever.
    EXPECT_DOUBLE_EQ(plane.ReserveLane(0, 1, 0.0, 1e6), 0.0);
  }
  CommPlane plane(topo, ContentionModel::kFair);
  EXPECT_DOUBLE_EQ(plane.ReserveLane(0, 1, 0.0, 1e6), 0.0);
  // The lane drains at lane_ms; a second transfer queues behind it.
  EXPECT_DOUBLE_EQ(plane.ReserveLane(0, 1, 0.0, 1e6), lane_ms);
  // A transfer already ready after the drain starts on time.
  EXPECT_DOUBLE_EQ(plane.ReserveLane(0, 1, 10.0, 1e6), 10.0);
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][1], 3e6);
}

TEST(CommPlaneTest, RecordLinkTrafficAccountsWithoutQueueing) {
  const auto topo = Topology::FullyConnected(2, 50.0);
  const double lane_ms = 1e6 / 50.0 / 1e6;
  CommPlane plane(topo, ContentionModel::kFair);
  plane.RecordLinkTraffic(0, 1, 1e6);
  // Telemetry matches a ReserveLane of the same bytes...
  EXPECT_DOUBLE_EQ(plane.link_bytes()[0][1], 1e6);
  EXPECT_DOUBLE_EQ(plane.link_busy_ms()[0][1], lane_ms);
  // ...but the lane FIFO is untouched: the next reservation starts on time.
  EXPECT_DOUBLE_EQ(plane.ReserveLane(0, 1, 0.0, 1e6), 0.0);
  // Payload matrix is the caller's job, as with ReserveLane.
  EXPECT_DOUBLE_EQ(plane.payload_bytes()[0][1], 0.0);
}

TEST(CommPlaneTest, RenderAsciiListsBusyLanes) {
  CommPlane plane(Topology::FullyConnected(2, 50.0), ContentionModel::kFair);
  TransferBatch batch;
  batch.Add(0, 1, 1e6, 0);
  (void)plane.Settle(batch);
  const std::string table = plane.RenderAscii();
  EXPECT_NE(table.find("0 -> 1"), std::string::npos);
  EXPECT_EQ(table.find("1 -> 0"), std::string::npos);
  const std::string empty = CommPlane(Topology::FullyConnected(2)).RenderAscii();
  EXPECT_NE(empty.find("no interconnect traffic"), std::string::npos);
}

// ---------- engine-level contract ----------

template <typename App, typename Value = typename App::Value>
core::RunResult RunGum(const graph::CsrGraph& g, App app,
                       ContentionModel model, std::vector<Value>* values,
                       int host_threads = 0, bool enable_osteal = false) {
  auto opt = TestEngineOptions();
  opt.contention = model;
  opt.num_host_threads = host_threads;
  // OSteal triggers on the previous iteration's *simulated* wall time, so
  // the contention model may legitimately change its schedule; disable it
  // where the test demands bitwise-equal schedules across models.
  opt.enable_osteal = enable_osteal;
  core::GumEngine<App> engine(&g, MakePartition(g, 4), Topo(4), opt);
  return engine.Run(app, values);
}

TEST(CommPlaneEngineTest, GumContentionChangesOnlyTimeAndTelemetry) {
  const auto g = SocialGraph(10, 21);
  BfsApp app;
  app.source = MaxDegreeSource(g);
  std::vector<uint32_t> depths_off;
  std::vector<uint32_t> depths_fair;
  const auto off = RunGum(g, app, ContentionModel::kOff, &depths_off);
  const auto fair = RunGum(g, app, ContentionModel::kFair, &depths_fair);
  EXPECT_EQ(depths_off, depths_fair);
  EXPECT_EQ(off.iterations, fair.iterations);
  EXPECT_EQ(off.edges_processed, fair.edges_processed);
  EXPECT_EQ(off.messages_sent, fair.messages_sent);
  EXPECT_EQ(off.stolen_edges_total, fair.stolen_edges_total);
  // The same transfers moved: logical payload is model-invariant.
  EXPECT_DOUBLE_EQ(off.TotalPayloadBytes(), fair.TotalPayloadBytes());
  // Off-mode legacy semantics: link bytes ARE the payload bytes.
  EXPECT_EQ(off.link_bytes, off.payload_bytes);
  // Fair mode never reports less per-hop traffic than payload.
  EXPECT_GE(fair.TotalRemoteBytes(), fair.TotalPayloadBytes() - 1e-9);
  // Busy-time telemetry only exists for lanes that carried traffic.
  ASSERT_EQ(fair.link_busy_ms.size(), fair.link_bytes.size());
}

TEST(CommPlaneEngineTest, GumSsspContentionPreservesValues) {
  const auto g = SocialGraph(10, 22, /*weighted=*/true);
  SsspApp app;
  app.source = MaxDegreeSource(g);
  std::vector<float> dist_off;
  std::vector<float> dist_fair;
  // Full default machinery (OSteal on): results must still be identical —
  // schedules may differ, answers may not.
  (void)RunGum(g, app, ContentionModel::kOff, &dist_off, 0, true);
  (void)RunGum(g, app, ContentionModel::kFair, &dist_fair, 0, true);
  EXPECT_EQ(dist_off, dist_fair);
}

TEST(CommPlaneEngineTest, GumDeltaPageRankContentionPreservesValues) {
  const auto g = SocialGraph(9, 23);
  DeltaPageRankApp app;
  app.num_vertices = g.num_vertices();
  app.epsilon = 1e-12;
  std::vector<DeltaPageRankApp::State> off_state;
  std::vector<DeltaPageRankApp::State> fair_state;
  const auto off = RunGum(g, app, ContentionModel::kOff, &off_state);
  const auto fair = RunGum(g, app, ContentionModel::kFair, &fair_state);
  ASSERT_EQ(off_state.size(), fair_state.size());
  for (size_t v = 0; v < off_state.size(); ++v) {
    EXPECT_EQ(off_state[v].rank, fair_state[v].rank);
  }
  EXPECT_EQ(off.iterations, fair.iterations);
}

TEST(CommPlaneEngineTest, FairModeIsDeterministicAcrossThreadCounts) {
  const auto g = SocialGraph(10, 24);
  BfsApp app;
  app.source = MaxDegreeSource(g);
  std::vector<uint32_t> d1;
  std::vector<uint32_t> d4;
  const auto r1 = RunGum(g, app, ContentionModel::kFair, &d1, 1);
  const auto r4 = RunGum(g, app, ContentionModel::kFair, &d4, 4);
  EXPECT_EQ(d1, d4);
  EXPECT_EQ(r1.total_ms, r4.total_ms);  // bitwise, not approximately
  EXPECT_EQ(r1.link_bytes, r4.link_bytes);
  EXPECT_EQ(r1.link_busy_ms, r4.link_busy_ms);
}

// ---------- multi-path transfer plans ----------

TEST(TransferPlanTest, ParseMultipathMode) {
  auto off = ParseMultipathMode("off");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*off, MultipathMode::kOff);
  auto on = ParseMultipathMode("on");
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(*on, MultipathMode::kOn);
  EXPECT_FALSE(ParseMultipathMode("auto").ok());
  EXPECT_STREQ(MultipathModeName(MultipathMode::kOff), "off");
  EXPECT_STREQ(MultipathModeName(MultipathMode::kOn), "on");
}

TEST(TransferPlanTest, StripesAcrossLinkDisjointPaths) {
  CommPlane plane(Topology::HybridCubeMesh8(), ContentionModel::kFair);
  plane.set_multipath(true);
  const TransferPlan plan = plane.PlanBulkTransfer(0, 5, 4e6);
  ASSERT_TRUE(plan.striped());
  EXPECT_LE(plan.paths.size(), 4u);
  // Candidates are mutually link-disjoint: at most one direct path, at
  // most one PCIe path, and every transit device distinct.
  int direct = 0;
  int pcie = 0;
  std::vector<int> transits;
  double fraction_sum = 0.0;
  double gbps_sum = 0.0;
  for (const PlanPath& p : plan.paths) {
    if (p.via_pcie) {
      ++pcie;
    } else if (p.transit < 0) {
      ++direct;
    } else {
      transits.push_back(p.transit);
    }
    fraction_sum += p.fraction;
    gbps_sum += p.gbps;
    EXPECT_GT(p.gbps, 0.0);
  }
  EXPECT_LE(direct, 1);
  EXPECT_LE(pcie, 1);
  std::sort(transits.begin(), transits.end());
  EXPECT_EQ(std::adjacent_find(transits.begin(), transits.end()),
            transits.end());
  EXPECT_NEAR(fraction_sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(gbps_sum, plan.total_gbps);
  // Paths come bandwidth-descending; striping beats the best single path.
  for (size_t i = 1; i < plan.paths.size(); ++i) {
    EXPECT_LE(plan.paths[i].gbps, plan.paths[i - 1].gbps);
  }
  EXPECT_GT(plan.StripeEfficiency(), 1.0);
  EXPECT_LT(plane.StripedTransferNs(0, 5, 4e6),
            plane.PointToPointNs(0, 5, 4e6));
}

TEST(TransferPlanTest, SmallPayloadsStaySinglePath) {
  CommPlane plane(Topology::HybridCubeMesh8(), ContentionModel::kFair);
  plane.set_multipath(true);
  const TransferPlan plan = plane.PlanBulkTransfer(0, 5, 1024.0);
  ASSERT_EQ(plan.paths.size(), 1u);
  EXPECT_FALSE(plan.striped());
  EXPECT_DOUBLE_EQ(plan.paths[0].fraction, 1.0);
  // The single path is what single-path routing would use, so the striped
  // estimate degenerates to the point-to-point one.
  EXPECT_DOUBLE_EQ(plane.StripedTransferNs(0, 5, 1024.0),
                   plane.PointToPointNs(0, 5, 1024.0));
}

TEST(TransferPlanTest, StripingReducesFairMakespan) {
  TransferBatch bulk;
  TransferBatch plain;
  for (int src = 0; src < 8; ++src) {
    const int dst = (src + 3) % 8;
    bulk.AddBulk(src, dst, 4e6, src);
    plain.Add(src, dst, 4e6, src);
  }
  CommPlane on(Topology::HybridCubeMesh8(), ContentionModel::kFair);
  on.set_multipath(true);
  CommPlane off(Topology::HybridCubeMesh8(), ContentionModel::kFair);
  off.set_multipath(true);  // enabled, but no bulk hint -> no striping
  const SettleResult s_on = on.Settle(bulk);
  const SettleResult s_off = off.Settle(plain);
  double makespan_on = 0.0;
  double makespan_off = 0.0;
  for (double ns : s_on.completion_ns) makespan_on = std::max(makespan_on, ns);
  for (double ns : s_off.completion_ns) {
    makespan_off = std::max(makespan_off, ns);
  }
  EXPECT_LT(makespan_on, makespan_off);
  EXPECT_EQ(on.multipath_stats().bulk_transfers, 8);
  EXPECT_GT(on.multipath_stats().striped_transfers, 0);
  EXPECT_GT(on.multipath_stats().paths_used,
            on.multipath_stats().bulk_transfers);
  EXPECT_EQ(off.multipath_stats().bulk_transfers, 0);
}

TEST(TransferPlanTest, OffContentionIgnoresBulkHint) {
  // Under kOff the bulk hint is dead: completions, charges, and telemetry
  // are bit-identical to the plain Add path even with multipath enabled.
  const auto topo = Topology::HybridCubeMesh8();
  TransferBatch bulk;
  TransferBatch plain;
  for (int i = 0; i < 12; ++i) {
    const int src = i % 8;
    const int dst = (src + 1 + (i * 5) % 7) % 8;
    bulk.AddBulk(src, dst, 1e6 * (1 + i % 3), src);
    plain.Add(src, dst, 1e6 * (1 + i % 3), src);
  }
  CommPlane plane_bulk(topo, ContentionModel::kOff);
  plane_bulk.set_multipath(true);
  CommPlane plane_plain(topo, ContentionModel::kOff);
  const SettleResult sb = plane_bulk.Settle(bulk);
  const SettleResult sp = plane_plain.Settle(plain);
  EXPECT_EQ(sb.completion_ns, sp.completion_ns);
  EXPECT_EQ(sb.tag_comm_ns, sp.tag_comm_ns);
  EXPECT_EQ(plane_bulk.link_bytes(), plane_plain.link_bytes());
  EXPECT_EQ(plane_bulk.multipath_stats().bulk_transfers, 0);
}

TEST(TransferPlanTest, NonBulkFairSettlingIsUnchangedByTheKnob) {
  // The multipath flag alone (no bulk transfers) must not perturb the fair
  // settle arithmetic: single-path flows are the pre-plan code path.
  const auto topo = Topology::HybridCubeMesh8();
  TransferBatch batch;
  for (int i = 0; i < 24; ++i) {
    const int src = i % 8;
    const int dst = (src + 1 + (i * 5) % 7) % 8;
    batch.Add(src, dst, 1e5 * (1 + i % 13), src);
  }
  CommPlane plane_on(topo, ContentionModel::kFair);
  plane_on.set_multipath(true);
  CommPlane plane_off(topo, ContentionModel::kFair);
  const SettleResult on = plane_on.Settle(batch);
  const SettleResult off = plane_off.Settle(batch);
  EXPECT_EQ(on.completion_ns, off.completion_ns);
  EXPECT_EQ(on.tag_comm_ns, off.tag_comm_ns);
  EXPECT_EQ(plane_on.link_bytes(), plane_off.link_bytes());
  EXPECT_EQ(plane_on.link_busy_ms(), plane_off.link_busy_ms());
}

TEST(TransferPlanTest, LinkFaultDropsThePathNeverTheTransfer) {
  CommPlane plane(Topology::HybridCubeMesh8(), ContentionModel::kFair);
  plane.set_multipath(true);
  const TransferPlan nominal = plane.PlanBulkTransfer(0, 3, 4e6);
  ASSERT_TRUE(nominal.striped());
  EXPECT_EQ(nominal.paths_dropped, 0);

  // Kill the direct 0 -- 3 link: the plan re-stripes over the survivors.
  plane.SetLinkScale(0, 3, 0.0);
  const TransferPlan faulted = plane.PlanBulkTransfer(0, 3, 4e6);
  EXPECT_GT(faulted.paths_dropped, 0);
  EXPECT_LT(faulted.paths.size(), nominal.paths.size());
  for (const PlanPath& p : faulted.paths) {
    EXPECT_FALSE(p.transit < 0 && !p.via_pcie)
        << "downed direct link must not be offered as a path";
  }
  // The payload still moves — a settled bulk transfer completes.
  TransferBatch batch;
  batch.AddBulk(0, 3, 4e6, 0);
  const SettleResult s = plane.Settle(batch);
  ASSERT_EQ(s.completion_ns.size(), 1u);
  EXPECT_GT(s.completion_ns[0], 0.0);
  EXPECT_GT(plane.multipath_stats().paths_dropped, 0);

  // Degrading (not killing) a link shrinks its stripe proportionally
  // instead of dropping it.
  CommPlane degraded(Topology::HybridCubeMesh8(), ContentionModel::kFair);
  degraded.set_multipath(true);
  degraded.SetLinkScale(0, 3, 0.25);
  const TransferPlan thin = degraded.PlanBulkTransfer(0, 3, 4e6);
  double nominal_direct = 0.0;
  double thin_direct = 0.0;
  for (const PlanPath& p : nominal.paths) {
    if (p.transit < 0 && !p.via_pcie) nominal_direct = p.fraction;
  }
  for (const PlanPath& p : thin.paths) {
    if (p.transit < 0 && !p.via_pcie) thin_direct = p.fraction;
  }
  ASSERT_GT(nominal_direct, 0.0);
  if (thin_direct > 0.0) EXPECT_LT(thin_direct, nominal_direct);
}

TEST(TransferPlanTest, ReductionTreeIsDeterministicAndBeatsTheStar) {
  CommPlane plane(Topology::HybridCubeMesh8(), ContentionModel::kFair);
  std::vector<int> active = {0, 1, 2, 3, 4, 5, 6, 7};
  const ReductionTree a = plane.BuildCensusTree(active);
  const ReductionTree b = plane.BuildCensusTree(active);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.root, b.root);
  EXPECT_FALSE(a.star);
  EXPECT_EQ(a.members, 8);
  EXPECT_GE(a.height, 1);
  for (int d : active) EXPECT_TRUE(a.InTree(d));
  // The tree's whole point: leaves sync with their neighborhood + height,
  // strictly less than the all-to-one group factor m = 8.
  double max_factor = 0.0;
  for (int d : active) max_factor = std::max(max_factor, a.SyncFactor(d));
  EXPECT_LT(max_factor, 8.0);
}

TEST(TransferPlanTest, ReductionTreeStarFallbackMatchesLegacyCharge) {
  CommPlane plane(Isolated2(), ContentionModel::kFair);
  const ReductionTree tree = plane.BuildCensusTree({0, 1});
  EXPECT_TRUE(tree.star);
  EXPECT_EQ(tree.members, 2);
  // Star fallback reproduces the legacy all-to-one charge: factor == m.
  EXPECT_DOUBLE_EQ(tree.SyncFactor(0), 2.0);
  EXPECT_DOUBLE_EQ(tree.SyncFactor(1), 2.0);
}

TEST(CommPlaneEngineTest, MultipathChangesOnlyTimeAcrossThreadsAndShards) {
  const auto g = SocialGraph(10, 27);
  BfsApp app;
  app.source = MaxDegreeSource(g);
  const auto part = MakePartition(g, 4);
  auto run = [&](MultipathMode multipath, int threads, int shards,
                 std::vector<uint32_t>* depths) {
    auto opt = TestEngineOptions();
    opt.contention = ContentionModel::kFair;
    opt.multipath = multipath;
    opt.num_host_threads = threads;
    opt.num_msg_shards = shards;
    opt.enable_osteal = true;
    core::GumEngine<BfsApp> engine(&g, part, Topo(4), opt);
    return engine.Run(app, depths);
  };
  std::vector<uint32_t> base;
  const auto off = run(MultipathMode::kOff, 1, 1, &base);
  for (const int threads : {1, 2, 4, 8}) {
    for (const int shards : {1, 4}) {
      std::vector<uint32_t> depths;
      const auto on = run(MultipathMode::kOn, threads, shards, &depths);
      EXPECT_EQ(depths, base) << threads << " threads, " << shards
                              << " shards";
      EXPECT_EQ(on.iterations, off.iterations);
      EXPECT_EQ(on.edges_processed, off.edges_processed);
      EXPECT_TRUE(on.multipath_active);
    }
  }
  // And the knob is observable: the on-run exports striping telemetry,
  // the off-run none.
  EXPECT_FALSE(off.multipath_active);
  EXPECT_EQ(off.multipath.bulk_transfers, 0);
}

TEST(CommPlaneEngineTest, GunrockContentionChangesOnlyTime) {
  const auto g = SocialGraph(10, 25);
  BfsApp app;
  app.source = MaxDegreeSource(g);
  baselines::GunrockOptions off_opt;
  baselines::GunrockOptions fair_opt;
  fair_opt.contention = ContentionModel::kFair;
  std::vector<uint32_t> depths_off;
  std::vector<uint32_t> depths_fair;
  const auto part = MakePartition(g, 4);
  const auto off =
      baselines::GunrockLikeEngine<BfsApp>(&g, part, Topo(4), off_opt)
          .Run(app, &depths_off);
  app.source = MaxDegreeSource(g);
  const auto fair =
      baselines::GunrockLikeEngine<BfsApp>(&g, part, Topo(4), fair_opt)
          .Run(app, &depths_fair);
  EXPECT_EQ(depths_off, depths_fair);
  EXPECT_EQ(off.iterations, fair.iterations);
  EXPECT_EQ(off.messages_sent, fair.messages_sent);
  EXPECT_DOUBLE_EQ(off.TotalPayloadBytes(), fair.TotalPayloadBytes());
  // No direction is asserted on the charge: `off` sums a device's per-peer
  // flushes serially while `fair` overlaps them (makespan), so fair can be
  // faster on disjoint lanes even though shared lanes slow it down.
  EXPECT_GT(fair.CommunicationMs(), 0.0);
}

TEST(CommPlaneEngineTest, GrouteContentionPreservesValuesAndSlowsRing) {
  const auto g = SocialGraph(10, 26);
  BfsApp app;
  app.source = MaxDegreeSource(g);
  baselines::GrouteOptions off_opt;
  baselines::GrouteOptions fair_opt;
  fair_opt.contention = ContentionModel::kFair;
  std::vector<uint32_t> depths_off;
  std::vector<uint32_t> depths_fair;
  const auto part = MakePartition(g, 4);
  const auto off = baselines::GrouteLikeEngine<BfsApp>(&g, part, off_opt)
                       .Run(app, &depths_off);
  app.source = MaxDegreeSource(g);
  const auto fair = baselines::GrouteLikeEngine<BfsApp>(&g, part, fair_opt)
                        .Run(app, &depths_fair);
  EXPECT_EQ(depths_off, depths_fair);
  // Store-and-forward hops now queue on busy lanes: the simulated clock
  // can only move later.
  EXPECT_GE(fair.total_ms, off.total_ms - 1e-9);
}

}  // namespace
}  // namespace gum::sim
