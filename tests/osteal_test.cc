#include <gtest/gtest.h>

#include <numeric>

#include "core/fsteal.h"
#include "core/osteal.h"
#include "sim/reduction_schedule.h"

namespace gum::core {
namespace {

std::vector<std::vector<double>> UniformCost(int n, double local,
                                             double remote) {
  std::vector<std::vector<double>> c(n, std::vector<double>(n, remote));
  for (int i = 0; i < n; ++i) c[i][i] = local;
  return c;
}

TEST(OStealTest, TinyWorkloadShrinksToOne) {
  const auto schedule =
      sim::ReductionSchedule::Build(sim::Topology::HybridCubeMesh8());
  // A handful of edges per fragment; sync costs 100us per peer.
  const auto cost = UniformCost(8, 1.0, 2.0);  // ns/edge
  const std::vector<double> loads = {3, 1, 0, 2, 0, 0, 1, 0};
  const auto dec =
      DecideOSteal(cost, loads, schedule, /*sync_per_peer_ns=*/100000.0, {});
  EXPECT_EQ(dec.group_size, 1);
  EXPECT_EQ(dec.active.size(), 1u);
}

TEST(OStealTest, HeavyWorkloadKeepsAllDevices) {
  const auto schedule =
      sim::ReductionSchedule::Build(sim::Topology::HybridCubeMesh8());
  const auto cost = UniformCost(8, 1.0, 1.2);
  std::vector<double> loads(8, 5e7);  // 50M edges each
  const auto dec =
      DecideOSteal(cost, loads, schedule, /*sync_per_peer_ns=*/100000.0, {});
  EXPECT_EQ(dec.group_size, 8);
}

TEST(OStealTest, IntermediateWorkloadPicksMiddleGroup) {
  const auto schedule =
      sim::ReductionSchedule::Build(sim::Topology::HybridCubeMesh8());
  const auto cost = UniformCost(8, 1.0, 1.1);
  // Total work W, m workers => z ~ W*1.05/m, overhead = p*m.
  // Optimum m = sqrt(W*1.05/p). Choose W so optimum ~ 3-5.
  const double p = 100000.0;
  std::vector<double> loads(8, 2e5);  // W = 1.6e6 => m* ~ sqrt(16.8) ~ 4
  const auto dec = DecideOSteal(cost, loads, schedule, p, {});
  EXPECT_GE(dec.group_size, 2);
  EXPECT_LE(dec.group_size, 6);
}

TEST(OStealTest, OwnerVectorConsistentWithActive) {
  const auto schedule =
      sim::ReductionSchedule::Build(sim::Topology::HybridCubeMesh8());
  const auto cost = UniformCost(8, 1.0, 2.0);
  const std::vector<double> loads = {10, 10, 10, 10, 10, 10, 10, 10};
  const auto dec =
      DecideOSteal(cost, loads, schedule, /*sync_per_peer_ns=*/50000.0, {});
  ASSERT_EQ(static_cast<int>(dec.active.size()), dec.group_size);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(std::find(dec.active.begin(), dec.active.end(), dec.owner[i]),
              dec.active.end());
  }
}

TEST(OStealTest, ZeroSyncCostNeverShrinks) {
  const auto schedule =
      sim::ReductionSchedule::Build(sim::Topology::HybridCubeMesh8());
  const auto cost = UniformCost(8, 1.0, 1.5);
  std::vector<double> loads(8, 1000);
  const auto dec = DecideOSteal(cost, loads, schedule, 0.0, {});
  // With free synchronization, more parallelism is never worse.
  EXPECT_EQ(dec.group_size, 8);
}

TEST(OStealTest, GreedyModeProducesValidDecision) {
  const auto schedule =
      sim::ReductionSchedule::Build(sim::Topology::HybridCubeMesh8());
  const auto cost = UniformCost(8, 1.0, 2.0);
  OStealConfig config;
  config.use_greedy = true;
  const std::vector<double> loads = {5, 0, 0, 0, 0, 0, 0, 0};
  const auto dec = DecideOSteal(cost, loads, schedule, 100000.0, config);
  EXPECT_EQ(dec.group_size, 1);
}

TEST(OStealTest, PredictedCostMatchesEquationFour) {
  // With one loaded fragment and uniform costs, z = load * c and the total
  // is z + p*m; verify for m=1 directly.
  const auto schedule =
      sim::ReductionSchedule::Build(sim::Topology::FullyConnected(2));
  const auto cost = UniformCost(2, 2.0, 3.0);
  const std::vector<double> loads = {100, 0};
  const double p = 1000.0;
  const auto dec = DecideOSteal(cost, loads, schedule, p, {});
  // m=1 options: either device alone. If device 0 survives: z=200;
  // if device 1: z=300. Schedule picks its canonical survivor; m=2 would be
  // z>=120 (split) + 2000 sync. Best should be m=1 with cost ~ z + 1000.
  EXPECT_EQ(dec.group_size, 1);
  EXPECT_NEAR(dec.predicted_cost_ns,
              (dec.active[0] == 0 ? 200.0 : 300.0) + p, 1e-6);
}

TEST(OStealTest, MaxGroupSizeCapsEnumeration) {
  const auto schedule =
      sim::ReductionSchedule::Build(sim::Topology::HybridCubeMesh8());
  const auto cost = UniformCost(8, 1.0, 1.2);
  std::vector<double> loads(8, 5e7);  // heavy: uncapped picks all 8
  const auto uncapped =
      DecideOSteal(cost, loads, schedule, 100000.0, {});
  ASSERT_EQ(uncapped.group_size, 8);
  const auto capped = DecideOSteal(cost, loads, schedule, 100000.0, {},
                                   /*max_group_size=*/5);
  EXPECT_LE(capped.group_size, 5);
  ASSERT_EQ(static_cast<int>(capped.active.size()), capped.group_size);
  // Zero (the default) means "no cap" and must match the legacy signature.
  const auto zero = DecideOSteal(cost, loads, schedule, 100000.0, {},
                                 /*max_group_size=*/0);
  EXPECT_EQ(zero.group_size, uncapped.group_size);
  EXPECT_EQ(zero.owner, uncapped.owner);
}

// --- BuildWithForbidden: ownership inheritance over arbitrary survivor
// subsets (the recovery path when failed devices are mid-range, not a
// prefix). ---

void ExpectForbiddenNeverOwn(const sim::ReductionSchedule& schedule,
                             const std::vector<int>& forbidden) {
  const int n = schedule.num_devices();
  const int max_m = n - static_cast<int>(forbidden.size());
  for (int m = 1; m <= max_m; ++m) {
    const auto active = schedule.ActiveFor(m);
    ASSERT_EQ(static_cast<int>(active.size()), m);
    for (int dead : forbidden) {
      EXPECT_EQ(std::find(active.begin(), active.end(), dead), active.end())
          << "m=" << m << " dead=" << dead;
    }
    const auto owner = schedule.OwnerVectorFor(m);
    for (int frag = 0; frag < n; ++frag) {
      EXPECT_NE(
          std::find(active.begin(), active.end(), owner[frag]), active.end())
          << "m=" << m << " fragment " << frag << " owned by " << owner[frag];
    }
  }
}

TEST(ReductionScheduleForbiddenTest, MidRangeSubsetNeverOwnsFragments) {
  const auto topo = sim::Topology::HybridCubeMesh8();
  // Arbitrary mid-range / scattered subsets, not prefixes.
  for (const auto& forbidden : std::vector<std::vector<int>>{
           {3}, {2, 5}, {1, 4, 6}, {0, 3, 7}, {2, 3, 4, 5}}) {
    const auto schedule =
        sim::ReductionSchedule::BuildWithForbidden(topo, forbidden);
    ExpectForbiddenNeverOwn(schedule, forbidden);
  }
}

TEST(ReductionScheduleForbiddenTest, ForbiddenDevicesAreEvictedFirst) {
  const std::vector<int> forbidden = {2, 5, 6};
  const auto schedule = sim::ReductionSchedule::BuildWithForbidden(
      sim::Topology::HybridCubeMesh8(), forbidden);
  const auto& steps = schedule.steps();
  ASSERT_EQ(steps.size(), 7u);
  // The first |forbidden| victims are exactly the forbidden set, and their
  // receivers are always allowed devices.
  std::vector<int> first_victims;
  for (size_t k = 0; k < forbidden.size(); ++k) {
    first_victims.push_back(steps[k].victim);
    EXPECT_EQ(std::find(forbidden.begin(), forbidden.end(),
                        steps[k].receiver),
              forbidden.end())
        << "step " << k << " receiver " << steps[k].receiver;
  }
  std::sort(first_victims.begin(), first_victims.end());
  EXPECT_EQ(first_victims, forbidden);
}

TEST(ReductionScheduleForbiddenTest, EmptyForbiddenEqualsBuild) {
  const auto topo = sim::Topology::HybridCubeMesh8();
  const auto plain = sim::ReductionSchedule::Build(topo);
  const auto empty = sim::ReductionSchedule::BuildWithForbidden(topo, {});
  ASSERT_EQ(plain.steps().size(), empty.steps().size());
  for (size_t k = 0; k < plain.steps().size(); ++k) {
    EXPECT_EQ(plain.steps()[k].victim, empty.steps()[k].victim) << k;
    EXPECT_EQ(plain.steps()[k].receiver, empty.steps()[k].receiver) << k;
  }
}

TEST(ReductionScheduleForbiddenTest, DecisionOverSurvivorsAvoidsTheDead) {
  // The recovery flow: forbid the dead device, cap the group at the
  // survivor count, and check no fragment lands on the dead device.
  const std::vector<int> forbidden = {4};
  const auto schedule = sim::ReductionSchedule::BuildWithForbidden(
      sim::Topology::HybridCubeMesh8(), forbidden);
  const auto cost = UniformCost(8, 1.0, 1.5);
  std::vector<double> loads(8, 2e5);
  const auto dec = DecideOSteal(cost, loads, schedule, 100000.0, {},
                                /*max_group_size=*/7);
  EXPECT_LE(dec.group_size, 7);
  for (int frag = 0; frag < 8; ++frag) EXPECT_NE(dec.owner[frag], 4);
  for (int d : dec.active) EXPECT_NE(d, 4);
}

}  // namespace
}  // namespace gum::core
