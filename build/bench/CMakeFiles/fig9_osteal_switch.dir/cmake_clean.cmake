file(REMOVE_RECURSE
  "CMakeFiles/fig9_osteal_switch.dir/fig9_osteal_switch.cc.o"
  "CMakeFiles/fig9_osteal_switch.dir/fig9_osteal_switch.cc.o.d"
  "fig9_osteal_switch"
  "fig9_osteal_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_osteal_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
