// Mutation-plane concurrency cases for the ThreadSanitizer job: the
// epoch barrier (delta apply + context rebuild) interleaved with warm
// incremental runs on multi-threaded, multi-shard engine geometry — the
// pool-thread race surface TSan watches. Small matrices; the exhaustive
// incremental-equals-full sweep lives in incremental_test.cc.

#include <gtest/gtest.h>

#include <vector>

#include "algos/apps.h"
#include "algos/incremental.h"
#include "core/engine.h"
#include "core/epoch_context.h"
#include "graph/mutation.h"
#include "tests/test_util.h"

namespace gum::algos {
namespace {

TEST(MutationConcurrencyTest, EpochedBfsUnderThreadsAndShards) {
  const graph::CsrGraph base = test::SocialGraph(8);
  auto plan = graph::MutationPlan::Parse("rand:2x32");
  ASSERT_TRUE(plan.ok());
  auto stream = graph::MutationStream::Create(*plan, base, 17);
  ASSERT_TRUE(stream.ok());

  core::EngineOptions options = test::TestEngineOptions();
  options.num_host_threads = 4;
  options.num_msg_shards = 4;
  core::EpochedGraphContext ectx(base, test::MakePartition(base, 4),
                                 test::Topo(4), options,
                                 /*symmetric=*/false);
  BfsApp app;
  app.source = test::MaxDegreeSource(base);
  IncrementalSession<BfsApp> session;
  session.RunInitial(ectx.ctx(), app);

  for (int e = 1; e <= stream->num_epochs(); ++e) {
    const auto adv = ectx.AdvanceEpoch(stream->BatchAt(e),
                                       /*compact_every=*/1);
    session.RunEpoch(ectx.ctx(), adv.effective);

    BfsApp fresh = app;
    core::GumEngine<BfsApp> engine(&ectx.ctx());
    std::vector<BfsApp::Value> full;
    engine.Run(fresh, &full);
    EXPECT_EQ(session.values(), full) << "epoch " << e;
  }
}

TEST(MutationConcurrencyTest, EpochedPageRankSpmvUnderThreads) {
  const graph::CsrGraph base = test::SocialGraph(8);
  auto plan = graph::MutationPlan::Parse("rand-ins:2x32");
  ASSERT_TRUE(plan.ok());
  auto stream = graph::MutationStream::Create(*plan, base, 19);
  ASSERT_TRUE(stream.ok());

  core::EngineOptions options = test::TestEngineOptions();
  options.num_host_threads = 4;
  options.num_msg_shards = 2;
  options.expand_backend = core::ExpandBackendKind::kSpmv;
  core::EpochedGraphContext ectx(base, test::MakePartition(base, 4),
                                 test::Topo(4), options,
                                 /*symmetric=*/false);
  PageRankApp app;
  app.num_vertices = base.num_vertices();
  app.rounds = 5;
  IncrementalSession<PageRankApp> session;
  session.RunInitial(ectx.ctx(), app);

  for (int e = 1; e <= stream->num_epochs(); ++e) {
    const auto adv = ectx.AdvanceEpoch(stream->BatchAt(e),
                                       /*compact_every=*/0);
    session.RunEpoch(ectx.ctx(), adv.effective);

    PageRankApp fresh = app;
    core::GumEngine<PageRankApp> engine(&ectx.ctx());
    std::vector<PageRankApp::Value> full;
    engine.Run(fresh, &full);
    EXPECT_EQ(session.values(), full) << "epoch " << e;
  }
}

}  // namespace
}  // namespace gum::algos
